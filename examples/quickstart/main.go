// Quickstart: decompose ranks over a hierarchy, reorder them with a level
// permutation, and characterize the resulting communicator mappings —
// the paper's core technique in a few lines.
package main

import (
	"fmt"
	"log"

	"repro/internal/metrics"
	"repro/internal/perm"
	"repro/internal/reorder"
	"repro/internal/topology"
)

func main() {
	// Figure 1's machine: 2 nodes × 2 sockets × 4 cores.
	h := topology.MustParse("2,2,4")
	fmt.Printf("machine %s with %d cores\n\n", h, h.Size())

	// Algorithm 1: every rank has coordinates in the hierarchy.
	fmt.Printf("rank 10 sits at coordinates %v (node, socket, core)\n\n", h.Coordinates(10))

	// Pick an order: enumerate nodes first (level 0 varies fastest).
	sigma, err := perm.Parse("0-1-2")
	if err != nil {
		log.Fatal(err)
	}
	ro, err := reorder.New(h, sigma)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("order %s reorders the ranks:\n", perm.Format(sigma))
	for old := 0; old < h.Size(); old++ {
		fmt.Printf("  core %2d: world rank %2d -> reordered rank %2d\n", old, old, ro.NewRank(old))
	}

	// Split the reordered world into 4 communicators of 4 and see how the
	// first one is mapped: ring cost and pairs-per-level (§3.3).
	ch, err := metrics.Characterize(h, sigma, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfirst communicator of 4 under %s\n", ch)
	fmt.Printf("spread score %.2f (0 = packed, 1 = fully spread)\n", ch.SpreadScore())

	// Compare all orders at a glance.
	fmt.Println("\nall orders:")
	for _, s := range perm.All(h.Depth()) {
		c, err := metrics.Characterize(h, s, 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", c)
	}
}
