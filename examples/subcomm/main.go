// Subcommunicator collectives: run MPI_Alltoall in 8 simultaneous
// 16-rank communicators on a simulated 4-node Hydra cluster, once with a
// packed rank order and once with a spread one, and watch the placement
// change the measured bandwidth — the paper's §4.1 protocol in miniature.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/mixedradix"
	"repro/internal/mpi"
	"repro/internal/perm"
)

func main() {
	const nodes = 4
	spec := cluster.Hydra(nodes, 1)
	h := cluster.HydraHierarchy(nodes)
	n := h.Size() // 128 ranks
	const commSize = 16
	const blockBytes = 64 << 10 // 64 KB per destination

	for _, name := range []string{"3-2-1-0 (packed)", "0-1-2-3 (spread)"} {
		sigma, err := perm.Parse(name[:7])
		if err != nil {
			log.Fatal(err)
		}
		ro, err := mixedradix.NewReorderer(h.Arities(), sigma)
		if err != nil {
			log.Fatal(err)
		}
		table := ro.Table()

		binding := make([]int, n)
		for i := range binding {
			binding[i] = i
		}
		var dur float64
		_, err = mpi.Run(spec, binding, mpi.Config{}, func(r *mpi.Rank) {
			world := r.World()
			// The paper's first method: split with the reordered rank as key.
			newRank := table[r.ID()]
			comm := world.Split(r, newRank/commSize, newRank%commSize)
			world.Barrier(r)
			start := r.Now()
			for i := 0; i < 3; i++ {
				comm.AlltoallBytes(r, blockBytes)
			}
			if r.ID() == 0 {
				dur = (r.Now() - start) / 3
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		total := float64(commSize * commSize * blockBytes)
		fmt.Printf("order %s: %d comms × Alltoall(%d KB/pair): %.1f µs/op, %.0f MB/s per comm\n",
			name, n/commSize, blockBytes>>10, dur*1e6, total/dur/1e6)
	}
	fmt.Println("\nPacked communicators keep traffic inside a socket; spread ones")
	fmt.Println("share every NIC between all 8 communicators at once.")
}
