// Splatt reordering: run the simulated distributed CPD on a small Hydra
// cluster under the Slurm default order and under a packed order, report
// the improvement, and print the mpisee-style per-communicator profile
// that attributes it to the 16-rank Alltoallv communicators (§4.2).
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/perm"
	"repro/internal/splatt"
	"repro/internal/tensor"
)

func main() {
	const nodes = 8 // 256 ranks
	ten := tensor.SyntheticNell([3]int{400000, 2000, 2000}, 1_000_000, 17)
	fmt.Printf("synthetic tensor: %v, %d nonzeros (nell-1 stand-in)\n\n", ten.Dims, ten.NNZ())

	run := func(name string) float64 {
		sigma, err := perm.Parse(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := splatt.Run(splatt.Config{
			Spec:      cluster.Hydra(nodes, 1),
			Hierarchy: cluster.HydraHierarchy(nodes),
			Order:     sigma,
			Grid:      tensor.Grid{16, 4, 4},
			Tensor:    ten,
			Rank:      16,
			Iters:     2,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("order %s: CPD %.3f ms (Alltoallv in 16-rank comms: %.3f ms)\n",
			name, res.Duration*1e3, res.Trace.MaxTimeIn("Alltoall", 16)*1e3)
		if name == "1-3-2-0" {
			fmt.Println("\nmpisee-style profile for the Slurm default order:")
			fmt.Print(res.Trace.Report())
			fmt.Println()
		}
		return res.Duration
	}

	def := run("1-3-2-0") // Slurm default on Hydra (block:cyclic)
	best := run("3-2-1-0")
	fmt.Printf("\nthe packed order improves the Slurm default by %.0f%%\n", 100*(def-best)/def)
}
