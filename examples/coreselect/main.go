// Core selection beyond Slurm: generate --cpu-bind=map_cpu lists for a
// LUMI node with Algorithm 3, showing selections (one core per L3, per
// NUMA, …) that no --distribution value can express, and the hierarchy
// each selection induces for a second reordering step (§3.4).
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/perm"
	"repro/internal/slurm"
)

func main() {
	node := cluster.LUMINodeHierarchy() // ⟦2, 4, 2, 8⟧
	fmt.Printf("LUMI compute node: %s — 128 cores\n\n", node)

	const nprocs = 8
	fmt.Printf("selecting %d cores with every hierarchy order:\n\n", nprocs)
	seen := map[string]bool{}
	for _, sigma := range perm.All(node.Depth()) {
		list, err := slurm.MapCPU(node, sigma, nprocs)
		if err != nil {
			log.Fatal(err)
		}
		key := fmt.Sprint(list)
		if seen[key] {
			continue
		}
		seen[key] = true
		induced := "non-uniform"
		if arities, err := slurm.InducedHierarchy(node, list); err == nil {
			induced = fmt.Sprint(arities)
		}
		caption := ""
		if d, ok := slurm.DistributionForOrder(node, sigma); ok {
			caption = " (slurm: " + d.String() + ")"
		}
		fmt.Printf("order %-10s -> %s\n", perm.Format(sigma), slurm.FormatMapCPU(list))
		fmt.Printf("  induced hierarchy %s%s\n", induced, caption)
	}

	fmt.Println("\nSlurm's --distribution only reaches the node and socket levels;")
	fmt.Println("the orders above also place ranks per NUMA domain and per L3 cache.")
}
