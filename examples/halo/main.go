// Halo exchange: a 2D stencil's communication pattern on a Cartesian
// communicator (MPI_Cart_create). The job was launched with Slurm's
// cyclic:cyclic distribution — fine for the embarrassingly parallel phase
// it was tuned for, but terrible for the stencil: every grid neighbour
// lands on another node. reorder=true renumbers the grid with the
// mixed-radix order minimizing the hierarchy crossing cost of the
// neighbour pattern (§2's "rank reordering when creating virtual
// topologies", realized with the paper's technique).
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/slurm"
)

func main() {
	const nodes = 4 // 128 cores → 4×32 process grid
	spec := cluster.Hydra(nodes, 1)
	h := cluster.HydraHierarchy(nodes)

	// The launcher placed ranks cyclically over nodes and sockets.
	dist := slurm.Distribution{Node: slurm.Cyclic, Socket: slurm.Cyclic}
	binding, err := dist.Binding(h)
	if err != nil {
		log.Fatal(err)
	}

	const haloBytes = 256 << 10
	const steps = 5

	for _, reorderFlag := range []bool{false, true} {
		var dur float64
		_, err := mpi.Run(spec, binding, mpi.Config{}, func(r *mpi.Rank) {
			w := r.World()
			cart, err := w.CartCreate(r, []int{4, 32}, []bool{true, true}, reorderFlag)
			if err != nil {
				log.Fatal(err)
			}
			w.Barrier(r)
			start := r.Now()
			for s := 0; s < steps; s++ {
				// One halo pass per dimension per step.
				cart.NeighborExchange(r, 0, mpi.BytesBuf(haloBytes))
				cart.NeighborExchange(r, 1, mpi.BytesBuf(haloBytes))
			}
			if r.ID() == 0 {
				dur = r.Now() - start
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("4×32 grid on a cyclic:cyclic launch, %d halo steps of %d KB, reorder=%-5v: %.1f µs/step\n",
			steps, haloBytes>>10, reorderFlag, dur/steps*1e6)
	}
	fmt.Println("\nreorder=true pulls the stencil neighbours back into sockets and")
	fmt.Println("nodes that the cyclic launch had scattered them across.")
}
