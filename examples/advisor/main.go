// Advisor: ask the analytic model which rank order to use for a workload
// (here: Figure 3's Alltoall in 32 simultaneous 16-rank communicators on
// Hydra), then verify the top and bottom recommendations against the
// discrete-event simulator.
package main

import (
	"fmt"
	"log"

	"repro/internal/advisor"
	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/perm"
)

func main() {
	sc := advisor.Scenario{
		Spec:         cluster.Hydra(16, 1),
		Hierarchy:    cluster.HydraHierarchy(16),
		Coll:         advisor.Alltoall,
		CommSize:     16,
		Simultaneous: true,
		Bytes:        16 << 20,
	}
	ranked, err := advisor.Recommend(sc, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("analytic ranking of all 24 orders (top 3 and bottom 1):")
	for i := 0; i < 3; i++ {
		fmt.Printf("  %d. %s\n", i+1, advisor.Explain(sc, ranked[i]))
	}
	worst := ranked[len(ranked)-1]
	fmt.Printf("  ⋮\n  24. %s\n\n", advisor.Explain(sc, worst))

	// Verify against the simulator.
	cfg := bench.Config{
		Spec:      sc.Spec,
		Hierarchy: sc.Hierarchy,
		CommSize:  sc.CommSize,
		Coll:      bench.Alltoall,
		Iters:     1,
	}
	for _, pr := range []advisor.Prediction{ranked[0], worst} {
		pt, err := bench.Measure(cfg, pr.Order, sc.Bytes, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("order %s: predicted %6.0f MB/s, simulated %6.0f MB/s\n",
			perm.Format(pr.Order), pr.Bandwidth/1e6, pt.Bandwidth/1e6)
	}
	fmt.Println("\nThe model is first-order — use it to pick candidates, the")
	fmt.Println("simulator (or the real machine) to confirm.")
}
