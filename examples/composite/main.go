// Composite reordering (§5's outlook): one job, two behaviours. The first
// half of the cluster runs a latency-sensitive solver in small packed
// communicators; the second half streams large Alltoalls in one spread
// communicator per node group. Each machine segment gets its own
// mixed-radix order, and the subcommunicators have different sizes —
// both generalizations the paper lists as future work.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/reorder"
)

func main() {
	const nodes = 8
	spec := cluster.Hydra(nodes, 1)
	h := cluster.HydraHierarchy(nodes)
	n := h.Size() // 256

	comp, err := reorder.NewComposite(h, []reorder.Segment{
		{Nodes: 4, Order: []int{3, 2, 1, 0}}, // solver half: packed
		{Nodes: 4, Order: []int{0, 1, 2, 3}}, // streaming half: spread
	})
	if err != nil {
		log.Fatal(err)
	}

	// Variable communicator sizes: 8 solver comms of 16 on the first half,
	// 2 streaming comms of 64 on the second.
	sizes := []int{16, 16, 16, 16, 16, 16, 16, 16, 64, 64}
	color, key, err := reorder.VariableSubcomms(n, sizes)
	if err != nil {
		log.Fatal(err)
	}

	binding := make([]int, n)
	for i := range binding {
		binding[i] = i
	}
	var solver, stream float64
	_, err = mpi.Run(spec, binding, mpi.Config{}, func(r *mpi.Rank) {
		w := r.World()
		newRank := comp.NewRank(r.ID())
		comm := w.Split(r, color[newRank], key[newRank])
		w.Barrier(r)
		start := r.Now()
		if comm.Size() == 16 {
			for i := 0; i < 20; i++ {
				comm.AllreduceBytes(r, 4096) // latency-bound solver step
			}
		} else {
			comm.AlltoallBytes(r, 1<<20) // bandwidth-bound stream
		}
		if comm.Rank() == 0 && color[newRank] == 0 {
			solver = r.Now() - start
		}
		if comm.Rank() == 0 && color[newRank] == len(sizes)-1 {
			stream = r.Now() - start
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("composite world over %s:\n", h)
	fmt.Printf("  packed half: 8 solver comms of 16, 20 small Allreduce steps: %.1f µs\n", solver*1e6)
	fmt.Printf("  spread half: 2 streaming comms of 64, Alltoall of 1 MB blocks:  %.1f µs\n", stream*1e6)
	fmt.Println("\nEach half of the machine follows its own mixed-radix order, and the")
	fmt.Println("subcommunicators have different sizes — the paper's §5 generalization.")
}
