// Package repro's benchmark harness: one benchmark per table and figure of
// the paper (see DESIGN.md §4 for the experiment index), plus the ablation
// benchmarks of DESIGN.md §5. Each benchmark regenerates the corresponding
// result on the simulated clusters and reports the headline quantities as
// custom metrics; `go test -bench=.` therefore reproduces the paper's
// evaluation end to end. The cmd/mrbench, cmd/mrsplatt and cmd/mrcg tools
// print the full tables.
package repro

import (
	"context"
	"fmt"

	"testing"

	"repro/internal/advisor"
	"repro/internal/bench"
	"repro/internal/cg"
	"repro/internal/cluster"
	"repro/internal/figures"
	"repro/internal/heat"
	"repro/internal/mixedradix"
	"repro/internal/mpi"
	"repro/internal/perm"
	"repro/internal/slurm"
	"repro/internal/splatt"
	"repro/internal/tensor"
	"repro/internal/topology"
	"repro/internal/trace"
)

// BenchmarkTable1 regenerates Table 1 (rank 10 on ⟦2,2,4⟧ under all six
// orders) each iteration.
func BenchmarkTable1(b *testing.B) {
	h := []int{2, 2, 4}
	for i := 0; i < b.N; i++ {
		c := mixedradix.Decompose(h, 10)
		for _, sigma := range perm.All(3) {
			_ = mixedradix.Compose(h, c, sigma)
			_ = mixedradix.PermutedCoordinates(c, sigma)
			_ = mixedradix.PermutedHierarchy(h, sigma)
		}
	}
}

// BenchmarkFigure2 regenerates every order's full rank layout of Figure 2.
func BenchmarkFigure2(b *testing.B) {
	h := []int{2, 2, 4}
	for i := 0; i < b.N; i++ {
		for _, sigma := range perm.All(3) {
			if _, err := mixedradix.ReorderAll(h, sigma); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// microFigure measures one figure's spread and packed orders at a large
// message size in both scenarios and reports the four bandwidths — the
// shape the corresponding paper plot shows.
func microFigure(b *testing.B, mb figures.MicroBench, spread, packed string, size int64) {
	b.Helper()
	sp, err := perm.Parse(spread)
	if err != nil {
		b.Fatal(err)
	}
	pk, err := perm.Parse(packed)
	if err != nil {
		b.Fatal(err)
	}
	cfg := mb.Config
	cfg.Iters = 1
	var s1, sA, p1, pA bench.Point
	for i := 0; i < b.N; i++ {
		if s1, err = bench.Measure(cfg, sp, size, false); err != nil {
			b.Fatal(err)
		}
		if sA, err = bench.Measure(cfg, sp, size, true); err != nil {
			b.Fatal(err)
		}
		if p1, err = bench.Measure(cfg, pk, size, false); err != nil {
			b.Fatal(err)
		}
		if pA, err = bench.Measure(cfg, pk, size, true); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(s1.Bandwidth/1e6, "spread-1comm-MB/s")
	b.ReportMetric(sA.Bandwidth/1e6, "spread-all-MB/s")
	b.ReportMetric(p1.Bandwidth/1e6, "packed-1comm-MB/s")
	b.ReportMetric(pA.Bandwidth/1e6, "packed-all-MB/s")
}

// BenchmarkFigure3 — Hydra, Alltoall, 16 ranks/comm (spread vs packed).
func BenchmarkFigure3(b *testing.B) {
	microFigure(b, figures.Figure3(nil), "0-1-2-3", "3-2-1-0", 4<<20)
}

// BenchmarkFigure4 — Hydra, Alltoall, 128 ranks/comm.
func BenchmarkFigure4(b *testing.B) {
	microFigure(b, figures.Figure4(nil), "0-1-2-3", "3-2-1-0", 16<<20)
}

// BenchmarkFigure5 — LUMI, Alltoall, 16 ranks/comm.
func BenchmarkFigure5(b *testing.B) {
	microFigure(b, figures.Figure5(nil), "0-1-2-3-4", "4-3-2-1-0", 4<<20)
}

// BenchmarkFigure6 — Hydra, Allreduce, 64 ranks/comm.
func BenchmarkFigure6(b *testing.B) {
	microFigure(b, figures.Figure6(nil), "0-1-2-3", "3-2-1-0", 8<<20)
}

// BenchmarkFigure7 — LUMI, Allgather, 256 ranks/comm.
func BenchmarkFigure7(b *testing.B) {
	microFigure(b, figures.Figure7(nil), "0-1-2-3-4", "4-3-2-1-0", 8<<20)
}

// splattBench runs the Figure 8 CPD once under one order on 8 Hydra nodes.
func splattBench(b *testing.B, order string, nics int) *splatt.Result {
	b.Helper()
	sigma, err := perm.Parse(order)
	if err != nil {
		b.Fatal(err)
	}
	res, err := splatt.Run(splatt.Config{
		Spec:      cluster.Hydra(8, nics),
		Hierarchy: cluster.HydraHierarchy(8),
		Order:     sigma,
		Grid:      tensor.Grid{16, 4, 4},
		Tensor:    figure8Tensor(),
		Rank:      16,
		Iters:     2,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

var figure8TensorCache *tensor.Tensor

func figure8Tensor() *tensor.Tensor {
	if figure8TensorCache == nil {
		figure8TensorCache = tensor.SyntheticNell([3]int{400000, 2000, 2000}, 1_000_000, 17)
	}
	return figure8TensorCache
}

// BenchmarkFigure8 compares the Slurm default order with the packed order
// on the simulated Splatt CPD (Figure 8a, 1 NIC).
func BenchmarkFigure8(b *testing.B) {
	var def, best *splatt.Result
	for i := 0; i < b.N; i++ {
		def = splattBench(b, "1-3-2-0", 1) // Slurm default on Hydra
		best = splattBench(b, "3-2-1-0", 1)
	}
	b.ReportMetric(def.Duration*1e3, "slurm-default-ms")
	b.ReportMetric(best.Duration*1e3, "packed-ms")
	b.ReportMetric(100*(def.Duration-best.Duration)/def.Duration, "improvement-%")
}

// BenchmarkFigure8TwoNICs is Figure 8b: the second NIC lifts every order.
func BenchmarkFigure8TwoNICs(b *testing.B) {
	var one, two *splatt.Result
	for i := 0; i < b.N; i++ {
		one = splattBench(b, "0-1-2-3", 1)
		two = splattBench(b, "0-1-2-3", 2)
	}
	b.ReportMetric(one.Duration*1e3, "one-nic-ms")
	b.ReportMetric(two.Duration*1e3, "two-nic-ms")
}

// BenchmarkFigure8Correlation reproduces §4.2's attribution: Pearson
// correlation between CPD duration and Alltoallv time in 16-rank comms.
func BenchmarkFigure8Correlation(b *testing.B) {
	orders := []string{"0-1-2-3", "1-3-2-0", "3-2-1-0", "2-1-0-3"}
	var r float64
	for i := 0; i < b.N; i++ {
		var durations, a16 []float64
		for _, o := range orders {
			res := splattBench(b, o, 1)
			durations = append(durations, res.Duration)
			a16 = append(a16, res.Trace.MaxTimeIn("Alltoall", 16))
		}
		r = trace.Pearson(durations, a16)
	}
	b.ReportMetric(r, "pearson")
}

// BenchmarkFigure9 runs the CG strong-scaling bars for 8 processes: every
// distinct core selection of one LUMI node.
func BenchmarkFigure9(b *testing.B) {
	prob := cg.Problem{N: 16384, NNZPerRow: 8, OuterIters: 1, InnerIters: 15, Lambda: 15, Seed: 5}
	var best, def float64
	for i := 0; i < b.N; i++ {
		sels, err := figures.DistinctSelections(8)
		if err != nil {
			b.Fatal(err)
		}
		best, def = 0, 0
		for _, s := range sels {
			res, err := cg.Run(cluster.LUMINode(), s.Cores, prob, mpi.Config{})
			if err != nil {
				b.Fatal(err)
			}
			if best == 0 || res.Duration < best {
				best = res.Duration
			}
			if isIdentity(s.Cores) {
				def = res.Duration
			}
		}
	}
	b.ReportMetric(best*1e3, "best-selection-ms")
	b.ReportMetric(def*1e3, "slurm-default-ms")
}

func isIdentity(cores []int) bool {
	for i, c := range cores {
		if c != i {
			return false
		}
	}
	return true
}

// BenchmarkAblationCollAlgorithms forces each Alltoall algorithm on the
// same communicator and size ("results with a fixed algorithm show similar
// trends", §4.1.1).
func BenchmarkAblationCollAlgorithms(b *testing.B) {
	for _, alg := range []string{"pairwise", "bruck", "linear"} {
		b.Run(alg, func(b *testing.B) {
			cfg := figures.Figure3(nil).Config
			cfg.Iters = 1
			cfg.MPI.ForceAlltoall = alg
			var pt bench.Point
			var err error
			for i := 0; i < b.N; i++ {
				if pt, err = bench.Measure(cfg, []int{3, 2, 1, 0}, 1<<20, true); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pt.Bandwidth/1e6, "MB/s")
		})
	}
}

// BenchmarkAblationFakeLevel contrasts Hydra with its fake half-socket
// level (⟦16,2,2,8⟧, 24 orders) against the physical ⟦16,2,16⟧ (6 orders):
// the fake level exposes strictly more distinct placements.
func BenchmarkAblationFakeLevel(b *testing.B) {
	faked := cluster.HydraHierarchy(16)
	real := cluster.HydraReal(16, 1).Hierarchy()
	var fakedPlacements, realPlacements int
	for i := 0; i < b.N; i++ {
		fakedPlacements = distinctPlacements(b, faked.Arities())
		realPlacements = distinctPlacements(b, real.Arities())
	}
	b.ReportMetric(float64(fakedPlacements), "faked-placements")
	b.ReportMetric(float64(realPlacements), "real-placements")
	if fakedPlacements <= realPlacements {
		b.Fatalf("fake level added no placements: %d vs %d", fakedPlacements, realPlacements)
	}
}

func distinctPlacements(b *testing.B, h []int) int {
	b.Helper()
	seen := map[string]bool{}
	for _, sigma := range perm.All(len(h)) {
		tab, err := mixedradix.ReorderAll(h, sigma)
		if err != nil {
			b.Fatal(err)
		}
		seen[fmt.Sprint(tab[:64])] = true // prefix suffices as fingerprint
	}
	return len(seen)
}

// BenchmarkAblationContention disables max-min bandwidth sharing: the
// paper's one-vs-32-communicator gap for spread mappings collapses,
// demonstrating the substrate's sharing model is what carries the result.
func BenchmarkAblationContention(b *testing.B) {
	base := figures.Figure3(nil).Config
	base.Iters = 1
	spread := []int{0, 1, 2, 3}
	var gapShared, gapFree float64
	for i := 0; i < b.N; i++ {
		one, err := bench.Measure(base, spread, 4<<20, false)
		if err != nil {
			b.Fatal(err)
		}
		all, err := bench.Measure(base, spread, 4<<20, true)
		if err != nil {
			b.Fatal(err)
		}
		gapShared = one.Bandwidth / all.Bandwidth

		free := base
		free.Spec.NoContention = true
		oneF, err := bench.Measure(free, spread, 4<<20, false)
		if err != nil {
			b.Fatal(err)
		}
		allF, err := bench.Measure(free, spread, 4<<20, true)
		if err != nil {
			b.Fatal(err)
		}
		gapFree = oneF.Bandwidth / allF.Bandwidth
	}
	b.ReportMetric(gapShared, "gap-with-contention")
	b.ReportMetric(gapFree, "gap-without-contention")
}

// BenchmarkAblationNICs generalizes Figure 8a vs 8b: the spread order's
// micro-benchmark bandwidth scales with the NIC count.
func BenchmarkAblationNICs(b *testing.B) {
	spread := []int{0, 1, 2, 3}
	var bw1, bw2 float64
	for i := 0; i < b.N; i++ {
		for _, nics := range []int{1, 2} {
			cfg := figures.Figure3(nil).Config
			cfg.Spec = cluster.Hydra(16, nics)
			cfg.Iters = 1
			pt, err := bench.Measure(cfg, spread, 4<<20, true)
			if err != nil {
				b.Fatal(err)
			}
			if nics == 1 {
				bw1 = pt.Bandwidth
			} else {
				bw2 = pt.Bandwidth
			}
		}
	}
	b.ReportMetric(bw1/1e6, "one-nic-MB/s")
	b.ReportMetric(bw2/1e6, "two-nic-MB/s")
}

// orderSearchScenario is the depth-6 search of the order-search fast-path
// benchmarks: ⟦4,2,4,2,4,2⟧ enumerates 512 cores under 6! = 720 candidate
// orders, but the alltoall signature (pairs-only) collapses them to a few
// dozen §3.3 equivalence classes.
func orderSearchScenario() advisor.Scenario {
	return advisor.Scenario{
		Spec:      cluster.Hydra(16, 1),
		Hierarchy: topology.MustNew(4, 2, 4, 2, 4, 2),
		Coll:      advisor.Alltoall,
		CommSize:  64,
		Bytes:     4 << 20,
	}
}

// benchmarkOrderSearch ranks all 720 orders single-threaded, so the
// Full/Pruned ratio is the algorithmic speedup of the equivalence-class
// fast path, not a parallelism artifact.
func benchmarkOrderSearch(b *testing.B, noPrune bool) {
	sc := orderSearchScenario()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ranked, err := advisor.Rank(ctx, sc, nil, advisor.RankOptions{Workers: 1, NoPrune: noPrune})
		if err != nil {
			b.Fatal(err)
		}
		if len(ranked) != 720 {
			b.Fatalf("ranked %d orders, want 720", len(ranked))
		}
	}
}

// BenchmarkOrderSearchFull evaluates the analytic model on every order —
// the pre-fast-path behaviour (NoPrune).
func BenchmarkOrderSearchFull(b *testing.B) { benchmarkOrderSearch(b, true) }

// BenchmarkOrderSearchPruned groups the orders by placement signature and
// evaluates one representative per class.
func BenchmarkOrderSearchPruned(b *testing.B) { benchmarkOrderSearch(b, false) }

// BenchmarkLegendMetrics regenerates every figure legend characterization.
func BenchmarkLegendMetrics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = figures.LegendCharacterizations()
	}
}

// BenchmarkHeatReorder measures the extension application (2D Jacobi heat
// solver on a Cartesian communicator): a cyclic launch with and without
// the mixed-radix reorder of CartCreate.
func BenchmarkHeatReorder(b *testing.B) {
	h := cluster.HydraHierarchy(4)
	dist := slurm.Distribution{Node: slurm.Cyclic, Socket: slurm.Cyclic}
	binding, err := dist.Binding(h)
	if err != nil {
		b.Fatal(err)
	}
	prob := heat.Problem{NX: 128, NY: 128, Iters: 20, Top: 1}
	var plain, reordered float64
	for i := 0; i < b.N; i++ {
		p, err := heat.Run(cluster.Hydra(4, 1), binding, 16, 8, prob, false, mpi.Config{})
		if err != nil {
			b.Fatal(err)
		}
		r, err := heat.Run(cluster.Hydra(4, 1), binding, 16, 8, prob, true, mpi.Config{})
		if err != nil {
			b.Fatal(err)
		}
		plain, reordered = p.Duration, r.Duration
	}
	b.ReportMetric(plain*1e6, "cyclic-launch-us")
	b.ReportMetric(reordered*1e6, "reordered-us")
}
