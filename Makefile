GO ?= go

# SMOKE_TRACE is where the serving-telemetry smoke run writes the server's
# Perfetto trace; CI uploads it as an artifact when the job fails.
SMOKE_TRACE ?= /tmp/mrserved-smoke-trace.json
SMOKE_ADDR  ?= 127.0.0.1:18077
SMOKE_DEBUG ?= 127.0.0.1:18078

.PHONY: all build test check race smoke smoke-fleet bench bench-gate clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the concurrency-heavy packages under the race detector: the
# service, its telemetry layer, the simulator core, the fault-injection
# layer, and the advisor search engine the service dispatches to.
race:
	$(GO) test -race ./internal/mapd/... ./internal/obs/... ./internal/sim/... ./internal/fault/... ./internal/mpi/... ./internal/procmap/... ./internal/fleet/... ./internal/advisor/... ./internal/metrics/...

# check is the tier-1 gate: formatting, vet, staticcheck (when installed),
# build (including the serving commands), the full test suite under the
# race detector, and a fault injection smoke run of the benchmark driver.
check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi
	$(GO) build ./...
	$(GO) build ./cmd/mrserved ./cmd/mrload ./cmd/mrgate
	$(GO) test -race ./...
	$(GO) run ./cmd/mrbench -fig 3 -maxsize 16KB -iters 1 \
		-faults "straggle:rank=3,factor=4;link:level=1,degrade=0.8" > /dev/null
	$(GO) run ./cmd/mrperf smoke
	$(MAKE) smoke
	$(MAKE) smoke-fleet

# smoke boots a real mrserved with the pprof debug listener and trace
# export, probes every telemetry surface (/metrics incl. runtime-sampler
# series, /v1/slo, /debug/pprof/heap), issues one traced request, drives
# the matrix-aware mapping end to end (mrmap matrix -emit → -server →
# /v1/map/matrix), shuts the daemon down gracefully, and validates the
# written Perfetto trace by opening it with mrtrace.
smoke:
	$(GO) build -o /tmp/mrserved.smoke ./cmd/mrserved
	$(GO) build -o /tmp/mrtrace.smoke ./cmd/mrtrace
	$(GO) build -o /tmp/mrmap.smoke ./cmd/mrmap
	@set -e; \
	rm -f $(SMOKE_TRACE); \
	/tmp/mrserved.smoke -addr $(SMOKE_ADDR) -debug-addr $(SMOKE_DEBUG) \
		-trace $(SMOKE_TRACE) -announce 100ms & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	up=0; for i in $$(seq 1 50); do \
		if curl -fsS http://$(SMOKE_ADDR)/healthz >/dev/null 2>&1; then up=1; break; fi; \
		sleep 0.1; \
	done; \
	test $$up = 1 || { echo "smoke: mrserved never came up on $(SMOKE_ADDR)"; exit 1; }; \
	curl -fsS -X POST -H 'traceparent: 00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01' \
		-d '{"hierarchy":"2,2,4","rank":5}' http://$(SMOKE_ADDR)/v1/map >/dev/null; \
	curl -fsS http://$(SMOKE_ADDR)/metrics | grep -q '^rt_goroutines'; \
	curl -fsS http://$(SMOKE_ADDR)/metrics | grep -q '^slo_burn_rate'; \
	curl -fsS http://$(SMOKE_ADDR)/v1/slo | grep -q '"availability_burn"'; \
	curl -fsS -o /dev/null http://$(SMOKE_DEBUG)/debug/pprof/heap; \
	/tmp/mrmap.smoke matrix -gen halo:4x8 -emit > /tmp/mrmap-smoke-matrix.json; \
	/tmp/mrmap.smoke matrix -h 2,4,4 -matrix /tmp/mrmap-smoke-matrix.json \
		-server http://$(SMOKE_ADDR) | grep -q 'matrix-aware \[matrix\]'; \
	curl -fsS http://$(SMOKE_ADDR)/metrics | grep -q '^procmap_map_seconds'; \
	kill -TERM $$pid; wait $$pid; \
	trap - EXIT; \
	/tmp/mrtrace.smoke -open $(SMOKE_TRACE) | grep -q 'http /v1/map'; \
	grep -q 'trace 0af7651916cd43dd8448eb211c80319c' $(SMOKE_TRACE) || \
		{ echo "smoke: injected trace id missing from server trace"; exit 1; }; \
	rm -f /tmp/mrserved.smoke /tmp/mrtrace.smoke /tmp/mrmap.smoke /tmp/mrmap-smoke-matrix.json; \
	echo "smoke: serving telemetry OK ($(SMOKE_TRACE))"

# smoke-fleet is the chaos e2e: three real mrserved replicas behind
# mrgate, mrload closed-loop traffic through the gate, and a seeded fault
# plan that picks the victim replica, the kill time, and the restart
# time. Mid-run the victim dies; the run must finish with zero unretried
# failures (gave_up = 0, no client-visible 5xx) and the surviving fleet
# must answer non-degraded. Then the drill executes the plan's restart:
# the victim comes back on its old address, the gate's health checker
# must re-admit it (state healthy in /v1/fleet), and a second load run
# must show traffic attributed to the restarted replica. It also probes
# the fleet observability plane: /v1/fleet/stats and /v1/fleet/slo must
# serve merged rollups, and one advise issued with a fixed traceparent
# must — after every process has drained and written its trace export —
# stitch (mrtrace -stitch) into a single cross-process trace carrying
# both gate and replica spans on that id. Finally, with every replica
# killed, the gate must still answer, flagged degraded, from its local
# σ-order fallback. On CI failure the trace exports under
# /tmp/fleet-stitch* and /tmp/mr*-trace.json upload as artifacts.
SMOKE_FLEET_GATE    ?= 127.0.0.1:18070
SMOKE_FLEET_R0      ?= 127.0.0.1:18071
SMOKE_FLEET_R1      ?= 127.0.0.1:18072
SMOKE_FLEET_R2      ?= 127.0.0.1:18073
SMOKE_FLEET_PLAN    ?= seed=42;replica-chaos:kills=1,by=1.6s,restart=2s@t=1.1s
SMOKE_FLEET_TRACEID ?= 1af7651916cd43dd8448eb211c80319d

smoke-fleet:
	$(GO) build -o /tmp/mrserved.smoke ./cmd/mrserved
	$(GO) build -o /tmp/mrgate.smoke ./cmd/mrgate
	$(GO) build -o /tmp/mrload.smoke ./cmd/mrload
	$(GO) build -o /tmp/mrtrace.smoke ./cmd/mrtrace
	@set -e; \
	rm -f /tmp/mrgate-smoke-trace.json /tmp/mrserved-r0-trace.json \
		/tmp/mrserved-r1-trace.json /tmp/mrserved-r2-trace.json; \
	rm -rf /tmp/fleet-stitch; \
	/tmp/mrserved.smoke -addr $(SMOKE_FLEET_R0) -name r0 -announce 50ms \
		-trace /tmp/mrserved-r0-trace.json & p0=$$!; \
	/tmp/mrserved.smoke -addr $(SMOKE_FLEET_R1) -name r1 -announce 50ms \
		-trace /tmp/mrserved-r1-trace.json & p1=$$!; \
	/tmp/mrserved.smoke -addr $(SMOKE_FLEET_R2) -name r2 -announce 50ms \
		-trace /tmp/mrserved-r2-trace.json & p2=$$!; \
	/tmp/mrgate.smoke -addr $(SMOKE_FLEET_GATE) \
		-replicas http://$(SMOKE_FLEET_R0),http://$(SMOKE_FLEET_R1),http://$(SMOKE_FLEET_R2) \
		-check-interval 100ms -backoff 1ms -max-backoff 20ms -announce 50ms \
		-trace /tmp/mrgate-smoke-trace.json & pg=$$!; \
	trap 'kill $$p0 $$p1 $$p2 $$pg 2>/dev/null || true' EXIT; \
	up=0; for i in $$(seq 1 50); do \
		if curl -fsS http://$(SMOKE_FLEET_GATE)/healthz >/dev/null 2>&1; then up=1; break; fi; \
		sleep 0.1; \
	done; \
	test $$up = 1 || { echo "smoke-fleet: mrgate never came up on $(SMOKE_FLEET_GATE)"; exit 1; }; \
	curl -fsS -X POST -H 'traceparent: 00-$(SMOKE_FLEET_TRACEID)-b7ad6b7169203331-01' \
		-d '{"machine":"hydra","nodes":4,"collective":"allreduce","comm_size":16}' \
		http://$(SMOKE_FLEET_GATE)/v1/advise >/dev/null; \
	victim=$$(/tmp/mrgate.smoke -print-plan -plan '$(SMOKE_FLEET_PLAN)' -fleet-size 3 \
		| awk '/^kill/{print $$2; exit}'); \
	killat=$$(/tmp/mrgate.smoke -print-plan -plan '$(SMOKE_FLEET_PLAN)' -fleet-size 3 \
		| awk '/^kill/{gsub(/[@s]/,"",$$3); print $$3; exit}'); \
	restartat=$$(/tmp/mrgate.smoke -print-plan -plan '$(SMOKE_FLEET_PLAN)' -fleet-size 3 \
		| awk '/^restart/{gsub(/[@s]/,"",$$3); print $$3; exit}'); \
	test -n "$$restartat" || { echo "smoke-fleet: plan has no restart event"; exit 1; }; \
	echo "smoke-fleet: seeded plan kills r$$victim at t=$${killat}s, restarts it at t=$${restartat}s"; \
	/tmp/mrload.smoke -url http://$(SMOKE_FLEET_GATE) -c 16 -warmup 300ms -d 3s \
		-backoff 1ms -maxbackoff 50ms -json > /tmp/mrload-fleet.json & pl=$$!; \
	sleep $$killat; \
	eval vpid=\$$p$$victim; \
	kill $$vpid 2>/dev/null || { echo "smoke-fleet: victim r$$victim already gone"; exit 1; }; \
	wait $$pl || { echo "smoke-fleet: mrload run failed"; cat /tmp/mrload-fleet.json; exit 1; }; \
	grep -q '"gave_up": 0' /tmp/mrload-fleet.json || \
		{ echo "smoke-fleet: client-visible unretried failures"; cat /tmp/mrload-fleet.json; exit 1; }; \
	grep -q '"other_5xx": 0' /tmp/mrload-fleet.json || \
		{ echo "smoke-fleet: unretried 5xx leaked through the gate"; cat /tmp/mrload-fleet.json; exit 1; }; \
	recovered=$$(curl -fsS -X POST -d '{"hierarchy":"2,2,4","rank":5}' http://$(SMOKE_FLEET_GATE)/v1/map); \
	case "$$recovered" in *'"degraded":true'*) \
		echo "smoke-fleet: fleet still degraded after recovery: $$recovered"; exit 1;; esac; \
	case "$$victim" in \
		0) vaddr=$(SMOKE_FLEET_R0);; 1) vaddr=$(SMOKE_FLEET_R1);; 2) vaddr=$(SMOKE_FLEET_R2);; \
		*) echo "smoke-fleet: unexpected victim index $$victim"; exit 1;; esac; \
	/tmp/mrserved.smoke -addr $$vaddr -name r$$victim -announce 50ms & pvr=$$!; \
	eval p$$victim=$$pvr; \
	readmitted=0; for i in $$(seq 1 100); do \
		if curl -fsS http://$(SMOKE_FLEET_GATE)/v1/fleet \
			| grep -q "\"name\":\"r$$victim\",\"url\":\"[^\"]*\",\"state\":\"healthy\""; then readmitted=1; break; fi; \
		sleep 0.1; \
	done; \
	test $$readmitted = 1 || { echo "smoke-fleet: gate never re-admitted restarted r$$victim"; \
		curl -fsS http://$(SMOKE_FLEET_GATE)/v1/fleet; exit 1; }; \
	curl -fsS http://$(SMOKE_FLEET_GATE)/v1/fleet/stats | grep -q '"merged"' || \
		{ echo "smoke-fleet: /v1/fleet/stats has no merged rollup"; exit 1; }; \
	curl -fsS http://$(SMOKE_FLEET_GATE)/v1/fleet/slo | grep -q '"per_replica"' || \
		{ echo "smoke-fleet: /v1/fleet/slo has no per-replica rollup"; exit 1; }; \
	/tmp/mrload.smoke -url http://$(SMOKE_FLEET_GATE) -c 8 -warmup 200ms -d 1s \
		-backoff 1ms -maxbackoff 50ms -json > /tmp/mrload-fleet2.json || \
		{ echo "smoke-fleet: post-restart mrload run failed"; cat /tmp/mrload-fleet2.json; exit 1; }; \
	grep -A1 "\"target\": \"r$$victim\"" /tmp/mrload-fleet2.json \
		| grep '"ok":' | grep -qv '"ok": 0,' || \
		{ echo "smoke-fleet: no traffic reached restarted r$$victim"; cat /tmp/mrload-fleet2.json; exit 1; }; \
	kill $$p0 $$p1 $$p2 2>/dev/null || true; \
	ok=0; for i in $$(seq 1 50); do \
		if curl -fsS http://$(SMOKE_FLEET_GATE)/healthz | grep -q degraded; then ok=1; break; fi; \
		sleep 0.1; \
	done; \
	test $$ok = 1 || { echo "smoke-fleet: gate never reported degraded with the fleet down"; exit 1; }; \
	fallback=$$(curl -fsS -X POST -d '{"machine":"hydra","nodes":4,"collective":"alltoall","comm_size":16}' \
		http://$(SMOKE_FLEET_GATE)/v1/advise); \
	case "$$fallback" in *'"degraded":true'*) ;; *) \
		echo "smoke-fleet: fleet-down advise not served degraded: $$fallback"; exit 1;; esac; \
	kill -TERM $$pg; wait $$pg; \
	trap - EXIT; \
	wait $$vpid $$p0 $$p1 $$p2 2>/dev/null || true; \
	mkdir -p /tmp/fleet-stitch; \
	/tmp/mrtrace.smoke -stitch /tmp/mrgate-smoke-trace.json,/tmp/mrserved-r0-trace.json,/tmp/mrserved-r1-trace.json,/tmp/mrserved-r2-trace.json \
		-o /tmp/fleet-stitch > /tmp/fleet-stitch/stitch.txt; \
	grep -E 'trace $(SMOKE_FLEET_TRACEID): .*mrgate.*mrserved' /tmp/fleet-stitch/stitch.txt || \
		{ echo "smoke-fleet: stitched trace lacks gate+replica spans on the injected id"; \
		  cat /tmp/fleet-stitch/stitch.txt; exit 1; }; \
	rm -f /tmp/mrserved.smoke /tmp/mrgate.smoke /tmp/mrload.smoke /tmp/mrtrace.smoke \
		/tmp/mrload-fleet.json /tmp/mrload-fleet2.json; \
	echo "smoke-fleet: kill/failover/restart/rollup/stitch/fallback OK (victim r$$victim from seeded plan)"

# BENCH_SUITES are the committed trajectory baselines the regression gate
# compares against; BENCH_GIT/BENCH_TS stamp fresh records so trajectory
# points are attributable (CI passes the workflow's SHA explicitly).
BENCH_SUITES ?= kernels order_search procmap fleet
BENCH_GIT    ?= $(shell git rev-parse --short HEAD 2>/dev/null)
BENCH_TS     ?= $(shell date -u +%Y-%m-%dT%H:%M:%SZ)

# bench regenerates the committed BENCH_<suite>.json trajectory points via
# the in-process observatory harness (5 reps each, with significance-ready
# samples). The legacy go-test stream is kept as BENCH_1.json.
bench:
	@for s in $(BENCH_SUITES); do \
		$(GO) run ./cmd/mrperf run -suite $$s -git "$(BENCH_GIT)" -ts "$(BENCH_TS)" || exit 1; \
	done

# bench-gate reruns every gated suite and compares it against the
# committed baseline with the suite's own threshold and a Mann-Whitney
# significance test; it exits nonzero when any benchmark regressed beyond
# the gate. Fresh records land in /tmp for artifact upload.
bench-gate:
	@mkdir -p /tmp/bench-gate
	$(GO) run ./cmd/mrperf gate -suites "$$(echo $(BENCH_SUITES) | tr ' ' ',')" \
		-keep /tmp/bench-gate -git "$(BENCH_GIT)" -ts "$(BENCH_TS)"

clean:
	rm -f BENCH_1.json
