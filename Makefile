GO ?= go

.PHONY: all build test check race bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the concurrency-heavy packages under the race detector: the
# service, the simulator core, and the fault-injection layer.
race:
	$(GO) test -race ./internal/mapd/... ./internal/sim/... ./internal/fault/... ./internal/mpi/...

# check is the tier-1 gate: formatting, vet, staticcheck (when installed),
# build (including the serving commands), the full test suite under the
# race detector, and a fault injection smoke run of the benchmark driver.
check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi
	$(GO) build ./...
	$(GO) build ./cmd/mrserved ./cmd/mrload
	$(GO) test -race ./...
	$(GO) run ./cmd/mrbench -fig 3 -maxsize 16KB -iters 1 \
		-faults "straggle:rank=3,factor=4;link:level=1,degrade=0.8" > /dev/null

# bench regenerates the headline benchmark numbers as a JSON stream, plus
# the order-search fast-path comparison (full vs. equivalence-class pruned
# ranking of the 720 depth-6 orders) as BENCH_order_search.json.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -timeout 60m -json . > BENCH_1.json
	$(GO) test -run '^$$' -bench 'OrderSearch|Characterize' -benchmem -json . ./internal/metrics > BENCH_order_search.json

clean:
	rm -f BENCH_1.json
