GO ?= go

.PHONY: all build test check bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the tier-1 gate: formatting, vet, build (including the serving
# commands), and the full test suite under the race detector.
check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) build ./cmd/mrserved ./cmd/mrload
	$(GO) test -race ./...

# bench regenerates the headline benchmark numbers as a JSON stream.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -timeout 60m -json . > BENCH_1.json

clean:
	rm -f BENCH_1.json
