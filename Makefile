GO ?= go

.PHONY: all build test check race bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the concurrency-heavy packages under the race detector: the
# service, the simulator core, and the fault-injection layer.
race:
	$(GO) test -race ./internal/mapd/... ./internal/sim/... ./internal/fault/... ./internal/mpi/...

# check is the tier-1 gate: formatting, vet, build (including the serving
# commands), the full test suite under the race detector, and a fault
# injection smoke run of the benchmark driver.
check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) build ./cmd/mrserved ./cmd/mrload
	$(GO) test -race ./...
	$(GO) run ./cmd/mrbench -fig 3 -maxsize 16KB -iters 1 \
		-faults "straggle:rank=3,factor=4;link:level=1,degrade=0.8" > /dev/null

# bench regenerates the headline benchmark numbers as a JSON stream.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -timeout 60m -json . > BENCH_1.json

clean:
	rm -f BENCH_1.json
