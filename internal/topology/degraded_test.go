package topology

import (
	"errors"
	"reflect"
	"testing"
)

func TestDegradeBasics(t *testing.T) {
	h := MustNew(2, 2, 4)        // node/socket/core, 16 cores
	d, err := h.Degrade(3, 7, 3) // duplicate failure is idempotent
	if err != nil {
		t.Fatal(err)
	}
	if got := d.NumAlive(); got != 14 {
		t.Fatalf("NumAlive = %d, want 14", got)
	}
	if got := d.NumFailed(); got != 2 {
		t.Fatalf("NumFailed = %d, want 2", got)
	}
	if d.Alive(3) || d.Alive(7) || !d.Alive(0) || d.Alive(16) || d.Alive(-1) {
		t.Fatal("Alive mask wrong")
	}
	if got := d.FailedCores(); !reflect.DeepEqual(got, []int{3, 7}) {
		t.Fatalf("FailedCores = %v", got)
	}
	alive := d.AliveCores()
	if len(alive) != 14 || alive[0] != 0 || alive[3] != 4 {
		t.Fatalf("AliveCores = %v", alive)
	}
	if got := d.String(); got != h.String()+"-2" {
		t.Fatalf("String = %q", got)
	}
	if _, err := h.Degrade(16); !errors.Is(err, ErrBadLevel) {
		t.Fatalf("out-of-range core error = %v", err)
	}
}

func TestDegradeDomainSurvivors(t *testing.T) {
	h := MustNew(2, 2, 4)
	d, err := h.Degrade(0, 1, 2, 3, 9) // socket 0 of node 0 wiped, one core on node 1
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := d.DomainSurvivors(0)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{4, 7}; !reflect.DeepEqual(nodes, want) {
		t.Fatalf("per-node survivors = %v, want %v", nodes, want)
	}
	sockets, err := d.DomainSurvivors(1)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 4, 3, 4}; !reflect.DeepEqual(sockets, want) {
		t.Fatalf("per-socket survivors = %v, want %v", sockets, want)
	}
	cores, err := d.DomainSurvivors(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cores) != 16 || cores[0] != 0 || cores[4] != 1 || cores[9] != 0 {
		t.Fatalf("per-core aliveness = %v", cores)
	}
	if _, err := d.DomainSurvivors(3); !errors.Is(err, ErrBadLevel) {
		t.Fatalf("bad level error = %v", err)
	}
}

func TestDegradeUniform(t *testing.T) {
	h := MustNew(2, 2, 4)

	// No failures: the base comes back.
	d, _ := h.Degrade()
	if u, ok := d.Uniform(); !ok || u.String() != h.String() {
		t.Fatalf("undamaged Uniform = %v, %v", u, ok)
	}

	// Socket 0 lost on both nodes: survivors are a regular 2-node x 4-core
	// machine; the collapsed socket level disappears.
	d, _ = h.Degrade(0, 1, 2, 3, 8, 9, 10, 11)
	u, ok := d.Uniform()
	if !ok {
		t.Fatal("symmetric socket loss should stay uniform")
	}
	if got := u.Arities(); !reflect.DeepEqual(got, []int{2, 4}) {
		t.Fatalf("uniform arities = %v, want [2 4]", got)
	}
	if u.Levels()[0].Name != h.Levels()[0].Name {
		t.Fatalf("uniform level names lost: %v", u.Levels())
	}

	// Two cores lost in every socket: ⟦2,2,2⟧.
	d, _ = h.Degrade(0, 1, 4, 5, 8, 9, 12, 13)
	if u, ok := d.Uniform(); !ok || !reflect.DeepEqual(u.Arities(), []int{2, 2, 2}) {
		t.Fatalf("uniform = %v, %v; want [2 2 2]", u, ok)
	}

	// A single lost core breaks regularity.
	d, _ = h.Degrade(5)
	if _, ok := d.Uniform(); ok {
		t.Fatal("asymmetric loss reported uniform")
	}

	// Everything lost.
	all := make([]int, 16)
	for i := range all {
		all[i] = i
	}
	d, _ = h.Degrade(all...)
	if _, ok := d.Uniform(); ok {
		t.Fatal("empty machine reported uniform")
	}
}
