// Package topology models the deeply hierarchical machines the paper
// targets: a hierarchy is a list of levels, outermost first, each stating
// how many children every component of that level has — e.g. ⟦2, 2, 4⟧ for
// 2 nodes × 2 sockets × 4 cores (Figure 1).
//
// The package provides parsing and formatting of hierarchy descriptions,
// coordinate/rank conversion, fake-level manipulation (§3.2: "a socket
// containing 16 cores can be faked as containing 2 components with 8 cores
// each"), level naming, and the relative-position queries (first differing
// level, crossing cost) that the ordering metrics of §3.3 are built on.
package topology

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/mixedradix"
)

// ErrBadLevel reports an invalid level description.
var ErrBadLevel = errors.New("topology: invalid level")

// Common level names, outermost to innermost, used when a hierarchy is
// built without explicit names.
var defaultNames = []string{"node", "socket", "numa", "l3", "core"}

// Level is one stage of a hierarchy: every component of the enclosing level
// contains Arity components of this level.
type Level struct {
	Name  string
	Arity int
}

// Hierarchy is an ordered list of levels, outermost first. The zero value
// is invalid; use New or Parse.
type Hierarchy struct {
	levels []Level
}

// New builds a hierarchy from arities, outermost first, assigning default
// level names (the innermost level is always "core"; preceding levels take
// names from node, socket, numa, l3 as depth allows, falling back to
// "level<i>" for very deep hierarchies).
func New(arities ...int) (Hierarchy, error) {
	if err := mixedradix.CheckHierarchy(arities); err != nil {
		return Hierarchy{}, err
	}
	levels := make([]Level, len(arities))
	for i, a := range arities {
		levels[i] = Level{Name: defaultName(i, len(arities)), Arity: a}
	}
	return Hierarchy{levels: levels}, nil
}

// MustNew is New panicking on error, for tests and literals.
func MustNew(arities ...int) Hierarchy {
	h, err := New(arities...)
	if err != nil {
		panic(err)
	}
	return h
}

// NewNamed builds a hierarchy from explicit levels.
func NewNamed(levels ...Level) (Hierarchy, error) {
	arities := make([]int, len(levels))
	for i, l := range levels {
		arities[i] = l.Arity
		if l.Name == "" {
			return Hierarchy{}, fmt.Errorf("%w: level %d has empty name", ErrBadLevel, i)
		}
	}
	if err := mixedradix.CheckHierarchy(arities); err != nil {
		return Hierarchy{}, err
	}
	return Hierarchy{levels: append([]Level(nil), levels...)}, nil
}

func defaultName(i, depth int) string {
	if i == depth-1 {
		return "core"
	}
	if i < len(defaultNames)-1 {
		return defaultNames[i]
	}
	return "level" + strconv.Itoa(i)
}

// Parse reads a hierarchy description. Accepted forms:
//
//	"2x2x4"            arities separated by x
//	"[2, 2, 4]"        bracketed list
//	"2,2,4"            comma list
//	"node:2,socket:2,core:4"  named levels
func Parse(s string) (Hierarchy, error) {
	t := strings.TrimSpace(s)
	t = strings.TrimPrefix(t, "[")
	t = strings.TrimSuffix(t, "]")
	if t == "" {
		return Hierarchy{}, fmt.Errorf("%w: empty hierarchy %q", ErrBadLevel, s)
	}
	sep := ","
	if strings.Contains(t, "x") && !strings.Contains(t, ",") {
		sep = "x"
	}
	fields := strings.Split(t, sep)
	named := strings.Contains(t, ":")
	if named {
		levels := make([]Level, 0, len(fields))
		for _, f := range fields {
			parts := strings.SplitN(strings.TrimSpace(f), ":", 2)
			if len(parts) != 2 {
				return Hierarchy{}, fmt.Errorf("%w: %q in %q", ErrBadLevel, f, s)
			}
			a, err := strconv.Atoi(strings.TrimSpace(parts[1]))
			if err != nil {
				return Hierarchy{}, fmt.Errorf("%w: arity %q in %q: %v", ErrBadLevel, parts[1], s, err)
			}
			levels = append(levels, Level{Name: strings.TrimSpace(parts[0]), Arity: a})
		}
		return NewNamed(levels...)
	}
	arities := make([]int, 0, len(fields))
	for _, f := range fields {
		f = strings.TrimSpace(f)
		if f == "" {
			return Hierarchy{}, fmt.Errorf("%w: empty arity in %q", ErrBadLevel, s)
		}
		a, err := strconv.Atoi(f)
		if err != nil {
			return Hierarchy{}, fmt.Errorf("%w: arity %q in %q: %v", ErrBadLevel, f, s, err)
		}
		arities = append(arities, a)
	}
	return New(arities...)
}

// MustParse is Parse panicking on error.
func MustParse(s string) Hierarchy {
	h, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return h
}

// Depth returns the number of levels.
func (h Hierarchy) Depth() int { return len(h.levels) }

// Size returns the total number of cores (leaf components) enumerated.
func (h Hierarchy) Size() int { return mixedradix.Size(h.Arities()) }

// Arities returns a copy of the level arities, outermost first. This is the
// mixed-radix base of the paper.
func (h Hierarchy) Arities() []int {
	a := make([]int, len(h.levels))
	for i, l := range h.levels {
		a[i] = l.Arity
	}
	return a
}

// Levels returns a copy of the levels.
func (h Hierarchy) Levels() []Level { return append([]Level(nil), h.levels...) }

// Level returns level i (0 = outermost).
func (h Hierarchy) Level(i int) Level { return h.levels[i] }

// Names returns the level names, outermost first.
func (h Hierarchy) Names() []string {
	n := make([]string, len(h.levels))
	for i, l := range h.levels {
		n[i] = l.Name
	}
	return n
}

// String renders the hierarchy in the paper's ⟦…⟧ notation.
func (h Hierarchy) String() string {
	var b strings.Builder
	b.WriteString("⟦")
	for i, l := range h.levels {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(strconv.Itoa(l.Arity))
	}
	b.WriteString("⟧")
	return b.String()
}

// Coordinates returns the hierarchy coordinates of a core (or of the rank
// initially enumerated onto it), outermost level first — Algorithm 1.
func (h Hierarchy) Coordinates(rank int) []int {
	return mixedradix.Decompose(h.Arities(), rank)
}

// Rank is the inverse of Coordinates for the initial enumeration.
func (h Hierarchy) Rank(coords []int) int {
	return mixedradix.Compose(h.Arities(), coords, mixedradix.IdentityOrder(h.Depth()))
}

// FirstDiffLevel returns the outermost level index at which the coordinates
// of two ranks differ, or Depth() if the ranks are equal. A result of
// Depth()-1 means the two ranks share everything but the core — they sit in
// the same lowest level of the hierarchy.
func (h Hierarchy) FirstDiffLevel(a, b int) int {
	if a == b {
		return h.Depth()
	}
	ar := h.Arities()
	// Walk from the outermost level: the leading mixed-radix digits of a and
	// b are their quotients by the size of the suffix.
	suffix := h.Size()
	for i := 0; i < len(ar); i++ {
		suffix /= ar[i]
		if a/suffix != b/suffix {
			return i
		}
		a %= suffix
		b %= suffix
	}
	return h.Depth()
}

// CrossCost returns the communication cost between two ranks as defined in
// §3.3: 1 when both sit inside the same lowest hierarchy level, plus 1 for
// each additional level the communication has to cross. Equal ranks cost 0.
func (h Hierarchy) CrossCost(a, b int) int {
	d := h.FirstDiffLevel(a, b)
	if d == h.Depth() {
		return 0
	}
	return h.Depth() - d
}

// SplitLevel returns a new hierarchy where level i of arity n is replaced by
// two levels of arities parts and n/parts — the paper's "fake level"
// construction. The new outer sub-level keeps the original name with a
// "-group" suffix; the inner one keeps the original name.
func (h Hierarchy) SplitLevel(i, parts int) (Hierarchy, error) {
	if i < 0 || i >= len(h.levels) {
		return Hierarchy{}, fmt.Errorf("%w: no level %d in %s", ErrBadLevel, i, h)
	}
	n := h.levels[i].Arity
	if parts <= 1 || n%parts != 0 || n/parts <= 1 {
		return Hierarchy{}, fmt.Errorf("%w: cannot split arity %d into %d parts", ErrBadLevel, n, parts)
	}
	levels := make([]Level, 0, len(h.levels)+1)
	levels = append(levels, h.levels[:i]...)
	levels = append(levels,
		Level{Name: h.levels[i].Name + "-group", Arity: parts},
		Level{Name: h.levels[i].Name, Arity: n / parts})
	levels = append(levels, h.levels[i+1:]...)
	return NewNamed(levels...)
}

// MergeLevels returns a new hierarchy where adjacent levels i and i+1 are
// merged into one of arity Arity(i)*Arity(i+1), named after level i+1 (the
// inner, more specific level).
func (h Hierarchy) MergeLevels(i int) (Hierarchy, error) {
	if i < 0 || i+1 >= len(h.levels) {
		return Hierarchy{}, fmt.Errorf("%w: cannot merge at %d in %s", ErrBadLevel, i, h)
	}
	levels := make([]Level, 0, len(h.levels)-1)
	levels = append(levels, h.levels[:i]...)
	levels = append(levels, Level{
		Name:  h.levels[i+1].Name,
		Arity: h.levels[i].Arity * h.levels[i+1].Arity,
	})
	levels = append(levels, h.levels[i+2:]...)
	return NewNamed(levels...)
}

// Prepend returns the hierarchy with an extra outermost level, e.g. adding
// the compute-node count above a per-node hierarchy, or network levels
// above the node level.
func (h Hierarchy) Prepend(l Level) (Hierarchy, error) {
	levels := append([]Level{l}, h.levels...)
	return NewNamed(levels...)
}

// Sub returns the sub-hierarchy formed by levels [from, to).
func (h Hierarchy) Sub(from, to int) (Hierarchy, error) {
	if from < 0 || to > len(h.levels) || from >= to {
		return Hierarchy{}, fmt.Errorf("%w: Sub(%d, %d) of depth %d", ErrBadLevel, from, to, len(h.levels))
	}
	return NewNamed(h.levels[from:to]...)
}

// ValidateProcessCount checks the paper's constraint (1) of §3.2: the
// product of all hierarchy arities must equal the number of MPI processes.
func (h Hierarchy) ValidateProcessCount(nprocs int) error {
	if h.Size() != nprocs {
		return fmt.Errorf("topology: hierarchy %s enumerates %d cores but the job has %d processes",
			h, h.Size(), nprocs)
	}
	return nil
}

// ValidateNetworkPrefix checks the paper's network-hierarchy constraint
// (§3.2): if the first netLevels levels describe the network, the number of
// compute nodes must equal the product of those levels times the next level
// removed — i.e. the nodes must exactly fill the selected switches. Here
// nodes is the allocated compute-node count and the level at index
// netLevels is the per-switch node count folded into the description, so
// the product of levels [0, netLevels] must equal nodes.
func (h Hierarchy) ValidateNetworkPrefix(netLevels, nodes int) error {
	if netLevels <= 0 || netLevels >= h.Depth() {
		return fmt.Errorf("%w: network prefix of %d levels in depth-%d hierarchy", ErrBadLevel, netLevels, h.Depth())
	}
	p := 1
	for i := 0; i <= netLevels-1; i++ {
		p *= h.levels[i].Arity
	}
	if p != nodes {
		return fmt.Errorf("topology: network prefix %v of %s covers %d nodes, job has %d (nodes must entirely fill the selected switches)",
			h.Arities()[:netLevels], h, p, nodes)
	}
	return nil
}
