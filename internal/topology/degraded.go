// Degraded hierarchies: a regular hierarchy with failed cores punched out.
// After a crash the machine is no longer a clean mixed-radix space — some
// domains have fewer survivors than their arity — so the degraded view
// keeps the regular base (coordinates and crossing costs still follow the
// original radices) plus an aliveness mask, and exposes the per-domain
// survivor counts (the "irregular radices with holes") that recovery
// enumeration works over.

package topology

import (
	"fmt"
	"strconv"
	"strings"
)

// Degraded is a hierarchy with a set of failed cores. The zero value is
// invalid; use Hierarchy.Degrade.
type Degraded struct {
	base  Hierarchy
	alive []bool
	n     int // number of alive cores
}

// Degrade returns the degraded view of the hierarchy with the given cores
// failed. Failing a core twice is allowed; out-of-range cores are an error.
func (h Hierarchy) Degrade(failedCores ...int) (Degraded, error) {
	size := h.Size()
	alive := make([]bool, size)
	for i := range alive {
		alive[i] = true
	}
	n := size
	for _, c := range failedCores {
		if c < 0 || c >= size {
			return Degraded{}, fmt.Errorf("%w: failed core %d outside hierarchy %s", ErrBadLevel, c, h)
		}
		if alive[c] {
			alive[c] = false
			n--
		}
	}
	return Degraded{base: h, alive: alive, n: n}, nil
}

// Base returns the regular hierarchy the degraded view is built on.
func (d Degraded) Base() Hierarchy { return d.base }

// NumAlive returns the number of surviving cores.
func (d Degraded) NumAlive() int { return d.n }

// NumFailed returns the number of failed cores.
func (d Degraded) NumFailed() int { return len(d.alive) - d.n }

// Alive reports whether a core survived.
func (d Degraded) Alive(core int) bool { return core >= 0 && core < len(d.alive) && d.alive[core] }

// AliveCores returns the surviving cores in initial-enumeration order.
func (d Degraded) AliveCores() []int {
	out := make([]int, 0, d.n)
	for c, ok := range d.alive {
		if ok {
			out = append(out, c)
		}
	}
	return out
}

// FailedCores returns the failed cores, ascending.
func (d Degraded) FailedCores() []int {
	out := make([]int, 0, len(d.alive)-d.n)
	for c, ok := range d.alive {
		if !ok {
			out = append(out, c)
		}
	}
	return out
}

// DomainSurvivors returns, for every level-l domain in enumeration order,
// how many cores inside it survived — the irregular radices of the
// degraded hierarchy. A level-l domain is one entity of that level and
// spans the product of the arities below it: on a node/socket/core
// machine, level 0 gives per-node survivor counts, level 1 per-socket
// counts, and the core level a 0/1 aliveness vector.
func (d Degraded) DomainSurvivors(level int) ([]int, error) {
	depth := d.base.Depth()
	if level < 0 || level >= depth {
		return nil, fmt.Errorf("%w: no level %d in %s", ErrBadLevel, level, d.base)
	}
	ar := d.base.Arities()
	domainSize := 1
	for i := level + 1; i < depth; i++ {
		domainSize *= ar[i]
	}
	counts := make([]int, len(d.alive)/domainSize)
	for c, ok := range d.alive {
		if ok {
			counts[c/domainSize]++
		}
	}
	return counts, nil
}

// Uniform reports whether the surviving cores still form a regular
// mixed-radix hierarchy — true exactly when, at every level, every domain
// with any survivor has the same number of surviving children. When true,
// the returned hierarchy re-enumerates the survivors with the original
// level names (levels whose arity collapses to 1 are dropped unless the
// hierarchy would become empty).
func (d Degraded) Uniform() (Hierarchy, bool) {
	if d.n == 0 {
		return Hierarchy{}, false
	}
	if d.n == len(d.alive) {
		return d.base, true
	}
	depth := d.base.Depth()
	ar := d.base.Arities()
	// Walk bottom-up: a domain is live when it contains at least one
	// survivor; at each level, every live domain must hold the same count
	// of live child domains for the survivors to stay mixed-radix.
	newAr := make([]int, depth)
	liveChild := map[int]bool{} // live domains at level l+1 (child granularity)
	for c, ok := range d.alive {
		if ok {
			liveChild[c] = true
		}
	}
	for l := depth - 1; l >= 0; l-- {
		liveParent := map[int]bool{}
		children := map[int]int{}
		for child := range liveChild {
			parent := child / ar[l]
			liveParent[parent] = true
			children[parent]++
		}
		want := -1
		for _, n := range children {
			if want == -1 {
				want = n
			} else if n != want {
				return Hierarchy{}, false
			}
		}
		newAr[l] = want
		liveChild = liveParent
	}
	levels := make([]Level, 0, depth)
	for l, a := range newAr {
		if a > 1 {
			levels = append(levels, Level{Name: d.base.Level(l).Name, Arity: a})
		}
	}
	if len(levels) < 1 {
		// Every level collapsed to a single live child: one lone survivor.
		return Hierarchy{}, false
	}
	h, err := NewNamed(levels...)
	if err != nil {
		return Hierarchy{}, false
	}
	return h, true
}

// String renders the degraded hierarchy as the base with the failure count,
// e.g. "⟦2, 2, 4⟧-3" for three failed cores.
func (d Degraded) String() string {
	if d.n == len(d.alive) {
		return d.base.String()
	}
	var b strings.Builder
	b.WriteString(d.base.String())
	b.WriteString("-")
	b.WriteString(strconv.Itoa(len(d.alive) - d.n))
	return b.String()
}
