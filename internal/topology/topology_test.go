package topology

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	h, err := New(2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Depth() != 3 {
		t.Errorf("Depth = %d", h.Depth())
	}
	if h.Size() != 16 {
		t.Errorf("Size = %d", h.Size())
	}
	if got := h.Arities(); !reflect.DeepEqual(got, []int{2, 2, 4}) {
		t.Errorf("Arities = %v", got)
	}
	if got := h.Names(); !reflect.DeepEqual(got, []string{"node", "socket", "core"}) {
		t.Errorf("Names = %v", got)
	}
	if h.Level(1).Arity != 2 {
		t.Errorf("Level(1) = %+v", h.Level(1))
	}
}

func TestDefaultNamesDeep(t *testing.T) {
	h := MustNew(16, 2, 4, 2, 8) // LUMI shape
	want := []string{"node", "socket", "numa", "l3", "core"}
	if got := h.Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("Names = %v, want %v", got, want)
	}
	h6 := MustNew(2, 2, 2, 2, 2, 2)
	names := h6.Names()
	if names[5] != "core" || names[4] != "level4" {
		t.Errorf("deep names = %v", names)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("empty hierarchy accepted")
	}
	if _, err := New(2, 1); err == nil {
		t.Error("arity 1 accepted")
	}
	if _, err := NewNamed(Level{Name: "", Arity: 2}); err == nil {
		t.Error("empty name accepted")
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want []int
	}{
		{"2x2x4", []int{2, 2, 4}},
		{"[2, 2, 4]", []int{2, 2, 4}},
		{"2,2,4", []int{2, 2, 4}},
		{"16,2,2,8", []int{16, 2, 2, 8}},
	}
	for _, c := range cases {
		h, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(h.Arities(), c.want) {
			t.Errorf("Parse(%q) = %v, want %v", c.in, h.Arities(), c.want)
		}
	}
}

func TestParseNamed(t *testing.T) {
	h, err := Parse("node:2,socket:2,core:4")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h.Names(), []string{"node", "socket", "core"}) {
		t.Errorf("Names = %v", h.Names())
	}
	if !reflect.DeepEqual(h.Arities(), []int{2, 2, 4}) {
		t.Errorf("Arities = %v", h.Arities())
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "[]", "2xax4", "a:b:c", "node:x", "1,2", "2,,"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestString(t *testing.T) {
	h := MustNew(2, 2, 4)
	if got := h.String(); got != "⟦2, 2, 4⟧" {
		t.Errorf("String = %q", got)
	}
}

func TestCoordinatesRankRoundTrip(t *testing.T) {
	h := MustNew(16, 2, 2, 8)
	for r := 0; r < h.Size(); r += 7 {
		c := h.Coordinates(r)
		if got := h.Rank(c); got != r {
			t.Errorf("Rank(Coordinates(%d)) = %d", r, got)
		}
	}
}

func TestFirstDiffLevel(t *testing.T) {
	h := MustNew(2, 2, 4) // Figure 1
	cases := []struct {
		a, b, want int
	}{
		{0, 0, 3}, // same core
		{0, 1, 2}, // same socket, different core
		{0, 4, 1}, // same node, different socket
		{0, 8, 0}, // different node
		{10, 14, 1},
		{10, 11, 2},
		{5, 13, 0},
	}
	for _, c := range cases {
		if got := h.FirstDiffLevel(c.a, c.b); got != c.want {
			t.Errorf("FirstDiffLevel(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := h.FirstDiffLevel(c.b, c.a); got != c.want {
			t.Errorf("FirstDiffLevel(%d, %d) not symmetric", c.b, c.a)
		}
	}
}

func TestCrossCost(t *testing.T) {
	h := MustNew(2, 2, 4)
	cases := []struct {
		a, b, want int
	}{
		{0, 0, 0},
		{0, 1, 1}, // inside lowest level
		{0, 4, 2}, // crosses socket boundary
		{0, 8, 3}, // crosses node boundary
	}
	for _, c := range cases {
		if got := h.CrossCost(c.a, c.b); got != c.want {
			t.Errorf("CrossCost(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// FirstDiffLevel computed by quotients must agree with comparing the
// coordinate vectors directly.
func TestFirstDiffLevelProperty(t *testing.T) {
	h := MustNew(3, 2, 4, 2)
	n := h.Size()
	f := func(x, y uint16) bool {
		a, b := int(x)%n, int(y)%n
		ca, cb := h.Coordinates(a), h.Coordinates(b)
		want := h.Depth()
		for i := range ca {
			if ca[i] != cb[i] {
				want = i
				break
			}
		}
		return h.FirstDiffLevel(a, b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSplitLevel(t *testing.T) {
	// Hydra: each 16-core socket faked as 2 groups of 8 (§4, machine descr.)
	h := MustNew(16, 2, 16)
	split, err := h.SplitLevel(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(split.Arities(), []int{16, 2, 2, 8}) {
		t.Errorf("split arities = %v", split.Arities())
	}
	if split.Size() != h.Size() {
		t.Errorf("split changed size: %d != %d", split.Size(), h.Size())
	}
	names := split.Names()
	if names[2] != "core-group" || names[3] != "core" {
		t.Errorf("split names = %v", names)
	}
}

func TestSplitLevelErrors(t *testing.T) {
	h := MustNew(2, 2, 16)
	if _, err := h.SplitLevel(5, 2); err == nil {
		t.Error("split of missing level accepted")
	}
	if _, err := h.SplitLevel(2, 3); err == nil {
		t.Error("non-divisible split accepted")
	}
	if _, err := h.SplitLevel(2, 16); err == nil {
		t.Error("split leaving arity 1 accepted")
	}
	if _, err := h.SplitLevel(2, 1); err == nil {
		t.Error("split into 1 part accepted")
	}
}

func TestMergeLevels(t *testing.T) {
	h := MustNew(16, 2, 2, 8)
	m, err := h.MergeLevels(2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Arities(), []int{16, 2, 16}) {
		t.Errorf("merged arities = %v", m.Arities())
	}
	if _, err := h.MergeLevels(3); err == nil {
		t.Error("merge at last level accepted")
	}
}

func TestSplitMergeInverse(t *testing.T) {
	h := MustNew(4, 2, 16)
	s, err := h.SplitLevel(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.MergeLevels(2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Arities(), h.Arities()) {
		t.Errorf("split+merge != original: %v", m.Arities())
	}
}

func TestPrepend(t *testing.T) {
	node := MustNew(2, 4, 2, 8)
	full, err := node.Prepend(Level{Name: "node", Arity: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full.Arities(), []int{16, 2, 4, 2, 8}) {
		t.Errorf("Prepend arities = %v", full.Arities())
	}
	if full.Size() != 2048 {
		t.Errorf("Size = %d", full.Size())
	}
}

func TestSub(t *testing.T) {
	h := MustNew(16, 2, 4, 2, 8)
	s, err := h.Sub(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Arities(), []int{2, 4, 2, 8}) {
		t.Errorf("Sub = %v", s.Arities())
	}
	if _, err := h.Sub(3, 3); err == nil {
		t.Error("empty Sub accepted")
	}
	if _, err := h.Sub(-1, 2); err == nil {
		t.Error("negative Sub accepted")
	}
}

func TestValidateProcessCount(t *testing.T) {
	h := MustNew(2, 2, 4)
	if err := h.ValidateProcessCount(16); err != nil {
		t.Errorf("valid count rejected: %v", err)
	}
	if err := h.ValidateProcessCount(15); err == nil {
		t.Error("wrong count accepted")
	}
}

func TestValidateNetworkPrefix(t *testing.T) {
	// §3.2 example: ⟦2, 3, 16, 2, 2, 8⟧ with the first three numbers
	// describing the network needs 2×3×16 = 96 compute nodes.
	h := MustNew(2, 3, 16, 2, 2, 8)
	if err := h.ValidateNetworkPrefix(3, 96); err != nil {
		t.Errorf("valid network prefix rejected: %v", err)
	}
	if err := h.ValidateNetworkPrefix(3, 64); err == nil {
		t.Error("wrong node count accepted")
	}
	if err := h.ValidateNetworkPrefix(0, 96); err == nil {
		t.Error("zero prefix accepted")
	}
	if err := h.ValidateNetworkPrefix(6, 96); err == nil {
		t.Error("full-depth prefix accepted")
	}
}

func BenchmarkFirstDiffLevel(b *testing.B) {
	h := MustNew(16, 2, 4, 2, 8)
	n := h.Size()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.FirstDiffLevel(i%n, (i*7+13)%n)
	}
}
