package topology

import "testing"

// FuzzParse checks that hierarchy parsing never panics and accepted
// hierarchies are internally consistent.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{"2,2,4", "2x2x4", "[16, 2, 2, 8]", "node:2,core:4", "", "1,2", "a,b", "2,,4"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		h, err := Parse(s)
		if err != nil {
			return
		}
		if h.Depth() == 0 || h.Size() <= 1 {
			t.Fatalf("Parse(%q) accepted degenerate hierarchy %v", s, h)
		}
		for _, a := range h.Arities() {
			if a <= 1 {
				t.Fatalf("Parse(%q) accepted arity %d", s, a)
			}
		}
		// Coordinates/Rank must round-trip for a few ranks.
		if h.Size() < 1<<20 {
			for _, r := range []int{0, h.Size() - 1, h.Size() / 2} {
				if got := h.Rank(h.Coordinates(r)); got != r {
					t.Fatalf("Parse(%q): rank %d round-trips to %d", s, r, got)
				}
			}
		}
	})
}
