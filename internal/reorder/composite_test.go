package reorder

import (
	"testing"

	"repro/internal/perm"
	"repro/internal/topology"
)

func TestCompositeBijection(t *testing.T) {
	h := topology.MustNew(4, 2, 4) // 4 nodes × 8 cores
	c, err := NewComposite(h, []Segment{
		{Nodes: 2, Order: []int{0, 1, 2}}, // spread over its 2 nodes
		{Nodes: 2, Order: []int{2, 1, 0}}, // packed on its 2 nodes
	})
	if err != nil {
		t.Fatal(err)
	}
	tab := make([]int, c.Size())
	for old := 0; old < c.Size(); old++ {
		tab[old] = c.NewRank(old)
	}
	if !perm.IsPermutation(tab) {
		t.Fatalf("composite table is not a bijection: %v", tab)
	}
	for old := 0; old < c.Size(); old++ {
		if c.OldRank(c.NewRank(old)) != old {
			t.Fatalf("inverse broken at %d", old)
		}
	}
}

func TestCompositeSegmentsStayDisjoint(t *testing.T) {
	h := topology.MustNew(4, 2, 4)
	c, err := NewComposite(h, []Segment{
		{Nodes: 2, Order: []int{0, 1, 2}},
		{Nodes: 2, Order: []int{2, 1, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Cores of nodes 0-1 (0..15) must keep reordered ranks 0..15; the
	// second segment keeps 16..31.
	for old := 0; old < 16; old++ {
		if nr := c.NewRank(old); nr < 0 || nr >= 16 {
			t.Errorf("segment-1 core %d escaped to rank %d", old, nr)
		}
	}
	for old := 16; old < 32; old++ {
		if nr := c.NewRank(old); nr < 16 || nr >= 32 {
			t.Errorf("segment-2 core %d escaped to rank %d", old, nr)
		}
	}
	// Segment 1 is spread: consecutive reordered ranks alternate nodes.
	if c.OldRank(0) == c.OldRank(1)/8*8 && c.OldRank(1) < 8 {
		t.Error("segment 1 does not look spread")
	}
	// Segment 2 is packed: the identity within its range.
	for old := 16; old < 32; old++ {
		if c.NewRank(old) != old {
			t.Errorf("packed segment moved rank %d to %d", old, c.NewRank(old))
		}
	}
}

func TestCompositeSpreadSegmentLayout(t *testing.T) {
	h := topology.MustNew(4, 2, 4)
	c, err := NewComposite(h, []Segment{
		{Nodes: 2, Order: []int{0, 1, 2}},
		{Nodes: 2, Order: []int{2, 1, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// In the spread segment (hierarchy ⟦2,2,4⟧, order [0,1,2]), old rank 1
	// (core 1 of node 0) gets rank 4, exactly as in Figure 2a.
	if got := c.NewRank(1); got != 4 {
		t.Errorf("spread segment NewRank(1) = %d, want 4", got)
	}
}

func TestCompositeSingleNodeSegment(t *testing.T) {
	h := topology.MustNew(3, 2, 4)
	c, err := NewComposite(h, []Segment{
		{Nodes: 1, Order: []int{0, 1}},    // per-node hierarchy ⟦2,4⟧
		{Nodes: 2, Order: []int{2, 1, 0}}, // ⟦2,2,4⟧
	})
	if err != nil {
		t.Fatal(err)
	}
	tab := make([]int, c.Size())
	for old := range tab {
		tab[old] = c.NewRank(old)
	}
	if !perm.IsPermutation(tab) {
		t.Fatal("single-node segment broke the bijection")
	}
	// Within node 0 the ⟦2,4⟧ spread order maps core 1 to rank 2
	// (sockets vary fastest: [0,1] means socket fastest... core 1 is
	// socket 0 core 1 → new rank 0 + 2·1 = 2).
	if got := c.NewRank(1); got != 2 {
		t.Errorf("single-node segment NewRank(1) = %d, want 2", got)
	}
}

func TestCompositeErrors(t *testing.T) {
	h := topology.MustNew(4, 2, 4)
	if _, err := NewComposite(h, nil); err == nil {
		t.Error("empty segments accepted")
	}
	if _, err := NewComposite(h, []Segment{{Nodes: 3, Order: []int{0, 1, 2}}}); err == nil {
		t.Error("short segment coverage accepted")
	}
	if _, err := NewComposite(h, []Segment{{Nodes: 0, Order: []int{0, 1, 2}}, {Nodes: 4, Order: []int{0, 1, 2}}}); err == nil {
		t.Error("zero-node segment accepted")
	}
	if _, err := NewComposite(h, []Segment{{Nodes: 4, Order: []int{0, 1}}}); err == nil {
		t.Error("wrong-depth order accepted")
	}
}

func TestVariableSubcomms(t *testing.T) {
	color, key, err := VariableSubcomms(10, []int{4, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	wantColor := []int{0, 0, 0, 0, 1, 1, 2, 2, 2, 2}
	wantKey := []int{0, 1, 2, 3, 0, 1, 0, 1, 2, 3}
	for i := range wantColor {
		if color[i] != wantColor[i] || key[i] != wantKey[i] {
			t.Fatalf("rank %d: color %d key %d, want %d %d",
				i, color[i], key[i], wantColor[i], wantKey[i])
		}
	}
}

func TestVariableSubcommsErrors(t *testing.T) {
	if _, _, err := VariableSubcomms(10, []int{4, 4}); err == nil {
		t.Error("short sizes accepted")
	}
	if _, _, err := VariableSubcomms(4, []int{4, 0}); err == nil {
		t.Error("zero size accepted")
	}
}
