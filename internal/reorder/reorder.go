// Package reorder implements the paper's first use case (§3.2): reordering
// the ranks of MPI_COMM_WORLD with the mixed-radix technique and building
// subcommunicators on top of the new numbering.
//
// Two deployment methods are modelled, matching the paper:
//
//   - CommSplit-style: every rank computes its reordered rank and passes it
//     as the key of an MPI_Comm_split with a single colour (SplitKey), then
//     derives subcommunicators from the reordered rank (SubcommColor).
//   - Rankfile-style: a rank→core placement file is generated so the
//     launcher binds the already-reordered ranks (Rankfile / ParseRankfile);
//     this is transparent to the application.
package reorder

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/mixedradix"
	"repro/internal/topology"
)

// Reordering binds a hierarchy and an order σ, precomputing both rank
// mappings.
type Reordering struct {
	h     topology.Hierarchy
	sigma []int
	// table[old] = new, inverse[new] = old.
	table   []int
	inverse []int
}

// New validates the inputs and precomputes the mapping. The hierarchy's
// size must equal the number of processes enumerated.
func New(h topology.Hierarchy, sigma []int) (*Reordering, error) {
	ro, err := mixedradix.NewReorderer(h.Arities(), sigma)
	if err != nil {
		return nil, err
	}
	tab := ro.Table()
	inv := make([]int, len(tab))
	for old, nw := range tab {
		inv[nw] = old
	}
	return &Reordering{
		h:       h,
		sigma:   append([]int(nil), sigma...),
		table:   tab,
		inverse: inv,
	}, nil
}

// Hierarchy returns the hierarchy the reordering was built for.
func (ro *Reordering) Hierarchy() topology.Hierarchy { return ro.h }

// Order returns a copy of σ.
func (ro *Reordering) Order() []int { return append([]int(nil), ro.sigma...) }

// Size returns the number of processes.
func (ro *Reordering) Size() int { return len(ro.table) }

// NewRank returns the reordered rank of an original world rank — the value
// the paper passes as the key of MPI_Comm_split.
func (ro *Reordering) NewRank(old int) int { return ro.table[old] }

// SplitKey is an alias of NewRank named after its use in the CommSplit
// deployment method.
func (ro *Reordering) SplitKey(old int) int { return ro.table[old] }

// OldRank returns the original rank (hence the core, under the initial
// one-rank-per-core enumeration) holding a reordered rank.
func (ro *Reordering) OldRank(new int) int { return ro.inverse[new] }

// Binding returns the rank→core binding of the reordered world when the
// initial enumeration binds rank i to core i: core of new rank n is
// OldRank(n). This is the binding handed to the simulated MPI runtime.
func (ro *Reordering) Binding() []int {
	return append([]int(nil), ro.inverse...)
}

// SubcommColor returns the colour used to split the reordered communicator
// into blocks of commSize consecutive reordered ranks (the quotient
// colouring of §3.2).
func (ro *Reordering) SubcommColor(newRank, commSize int) int {
	if commSize <= 0 {
		panic("reorder: non-positive communicator size")
	}
	return newRank / commSize
}

// SubcommRank returns the rank within the subcommunicator under the
// quotient colouring.
func (ro *Reordering) SubcommRank(newRank, commSize int) int {
	if commSize <= 0 {
		panic("reorder: non-positive communicator size")
	}
	return newRank % commSize
}

// NumSubcomms returns the number of subcommunicators of the given size;
// commSize must divide the world size.
func (ro *Reordering) NumSubcomms(commSize int) (int, error) {
	if commSize <= 0 || ro.Size()%commSize != 0 {
		return 0, fmt.Errorf("reorder: communicator size %d does not divide world size %d", commSize, ro.Size())
	}
	return ro.Size() / commSize, nil
}

// Rankfile writes an Open MPI-style rankfile describing the reordered
// placement: line i binds (reordered) rank i to the core holding original
// rank i's slot.
//
//	rank 0=node0 slot=0
//	rank 1=node0 slot=1
//
// Node and slot are derived from the hierarchy: the node is the outermost
// coordinate, the slot the core index within the node.
func (ro *Reordering) Rankfile(w io.Writer) error {
	ar := ro.h.Arities()
	coresPerNode := 1
	for _, a := range ar[1:] {
		coresPerNode *= a
	}
	for newRank := 0; newRank < ro.Size(); newRank++ {
		core := ro.inverse[newRank]
		node := core / coresPerNode
		slot := core % coresPerNode
		if _, err := fmt.Fprintf(w, "rank %d=node%d slot=%d\n", newRank, node, slot); err != nil {
			return err
		}
	}
	return nil
}

// ParseRankfile reads a rankfile in the format emitted by Rankfile and
// returns the rank→core binding for a machine with coresPerNode cores per
// node.
func ParseRankfile(r io.Reader, coresPerNode int) ([]int, error) {
	if coresPerNode <= 0 {
		return nil, fmt.Errorf("reorder: non-positive cores per node")
	}
	type entry struct{ rank, core int }
	var entries []entry
	maxRank := -1
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var rank, node, slot int
		if _, err := fmt.Sscanf(line, "rank %d=node%d slot=%d", &rank, &node, &slot); err != nil {
			return nil, fmt.Errorf("reorder: rankfile line %d %q: %w", lineNo, line, err)
		}
		if rank < 0 || node < 0 || slot < 0 || slot >= coresPerNode {
			return nil, fmt.Errorf("reorder: rankfile line %d out of range", lineNo)
		}
		entries = append(entries, entry{rank: rank, core: node*coresPerNode + slot})
		if rank > maxRank {
			maxRank = rank
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("reorder: empty rankfile")
	}
	binding := make([]int, maxRank+1)
	seen := make([]bool, maxRank+1)
	for _, e := range entries {
		if e.rank > maxRank {
			continue
		}
		if seen[e.rank] {
			return nil, fmt.Errorf("reorder: duplicate rank %d in rankfile", e.rank)
		}
		seen[e.rank] = true
		binding[e.rank] = e.core
	}
	for rank, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("reorder: rank %d missing from rankfile", rank)
		}
	}
	return binding, nil
}

// OrderName formats σ in the paper's hyphenated notation for labels.
func OrderName(sigma []int) string {
	parts := make([]string, len(sigma))
	for i, v := range sigma {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, "-")
}
