// Fuzz harness for the Decompose∘Compose bijection (satellite of the
// order-search fast path): random hierarchies × random orders × random
// survivor masks, checking that the reorder table is always a permutation,
// that UndoOrder really inverts the reordering, and that the degraded
// survivor enumeration is exactly the alive cores in σ-order. Under plain
// `go test` only the seed corpus runs; `go test -fuzz=FuzzReorderBijection
// ./internal/reorder` explores further.

package reorder

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/mixedradix"
	"repro/internal/topology"
)

// caseFromSeed derives a random-but-reproducible hierarchy, order, and
// failure set from one fuzz input.
func caseFromSeed(seed uint64) (ar []int, sigma []int, failed []int) {
	rng := rand.New(rand.NewSource(int64(seed)))
	depth := 1 + rng.Intn(6)
	ar = make([]int, depth)
	size := 1
	for i := range ar {
		ar[i] = 2 + rng.Intn(3)
		size *= ar[i]
	}
	sigma = rng.Perm(depth)
	// Fail up to a quarter of the cores (possibly none, possibly repeats —
	// Degrade must tolerate duplicates).
	for i := 0; i < rng.Intn(size/4+1); i++ {
		failed = append(failed, rng.Intn(size))
	}
	return ar, sigma, failed
}

func FuzzReorderBijection(f *testing.F) {
	for _, seed := range []uint64{0, 1, 7, 42, 1234, 99999, 1 << 40, 0xdeadbeef} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		ar, sigma, failed := caseFromSeed(seed)
		h, err := topology.New(ar...)
		if err != nil {
			t.Fatalf("topology.New(%v): %v", ar, err)
		}
		ro, err := New(h, sigma)
		if err != nil {
			t.Fatalf("New(%v, %v): %v", ar, sigma, err)
		}
		n := ro.Size()

		// The table must be a permutation of [0, n): every new rank hit
		// exactly once.
		seen := make([]bool, n)
		for old := 0; old < n; old++ {
			nw := ro.NewRank(old)
			if nw < 0 || nw >= n {
				t.Fatalf("h=%v σ=%v: NewRank(%d) = %d outside [0, %d)", ar, sigma, old, nw, n)
			}
			if seen[nw] {
				t.Fatalf("h=%v σ=%v: new rank %d assigned twice", ar, sigma, nw)
			}
			seen[nw] = true
			if ro.OldRank(nw) != old {
				t.Fatalf("h=%v σ=%v: inverse[%d] = %d, want %d", ar, sigma, nw, ro.OldRank(nw), old)
			}
		}

		// UndoOrder inverts the reordering: composing the new rank against
		// the reordered hierarchy with τ = UndoOrder(σ) restores the
		// original rank.
		rh := mixedradix.ReorderedHierarchy(ar, sigma)
		tau := mixedradix.UndoOrder(sigma)
		for old := 0; old < n; old++ {
			back := mixedradix.NewRank(rh, ro.NewRank(old), tau)
			if back != old {
				t.Fatalf("h=%v σ=%v τ=%v: rank %d round-trips to %d", ar, sigma, tau, old, back)
			}
		}

		// Degraded survivor enumeration: exactly the alive cores, each once,
		// in the same relative order the full σ-enumeration visits them.
		d, err := h.Degrade(failed...)
		if err != nil {
			t.Fatalf("Degrade(%v): %v", failed, err)
		}
		surv, err := SurvivorOrder(d, sigma)
		if err != nil {
			t.Fatalf("SurvivorOrder(%v, %v): %v", failed, sigma, err)
		}
		if len(surv) != d.NumAlive() {
			t.Fatalf("h=%v σ=%v failed=%v: %d survivors enumerated, want %d", ar, sigma, failed, len(surv), d.NumAlive())
		}
		pos := make(map[int]int, n) // core → position in the full σ-enumeration
		for nw := 0; nw < n; nw++ {
			pos[ro.OldRank(nw)] = nw
		}
		for i, core := range surv {
			if !d.Alive(core) {
				t.Fatalf("h=%v σ=%v failed=%v: survivor %d is a failed core %d", ar, sigma, failed, i, core)
			}
			if i > 0 && pos[surv[i-1]] >= pos[core] {
				t.Fatalf("h=%v σ=%v failed=%v: survivors %d,%d out of σ-order", ar, sigma, failed, surv[i-1], core)
			}
		}
		got := append([]int(nil), surv...)
		sort.Ints(got)
		want := d.AliveCores()
		sort.Ints(want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("h=%v σ=%v failed=%v: survivor set %v, want alive set %v", ar, sigma, failed, got, want)
			}
		}
	})
}
