// Composite reorderings: the paper's closing outlook (§5) asks for the
// algorithm to become "more general and dynamic: being able to follow an
// order for a set of communicators and another order for remaining
// communicators and to have subcommunicators with different sizes". This
// file provides both generalizations:
//
//   - Composite splits the machine at the outermost level into contiguous
//     node groups and reorders each group with its own order — e.g. the
//     nodes running a latency-bound solver packed, the nodes running an
//     I/O pipeline spread.
//   - VariableSubcomms colours a reordered world into subcommunicators of
//     caller-chosen (possibly different) sizes.
package reorder

import (
	"fmt"

	"repro/internal/topology"
)

// Segment is one part of a composite reordering: the sub-machine made of
// Nodes consecutive outermost-level components, reordered by Order (whose
// depth must match the segment's sub-hierarchy: the original depth when
// Nodes > 1, one level less when Nodes == 1).
type Segment struct {
	Nodes int
	Order []int
}

// Composite reorders a machine piecewise: the hierarchy's outermost level
// is split into consecutive segments, and each segment's cores are
// renumbered with its own order. Reordered ranks remain globally unique:
// segment s's ranks occupy [start, start+size) where start is the total
// size of the preceding segments, so a composite reordering is still a
// bijection on the world (verified by tests).
type Composite struct {
	h        topology.Hierarchy
	segments []Segment
	table    []int // old rank -> new rank
	inverse  []int
}

// NewComposite validates the segments (their node counts must sum to the
// hierarchy's outermost arity) and precomputes the mapping.
func NewComposite(h topology.Hierarchy, segments []Segment) (*Composite, error) {
	if len(segments) == 0 {
		return nil, fmt.Errorf("reorder: no segments")
	}
	totalNodes := 0
	for _, s := range segments {
		if s.Nodes <= 0 {
			return nil, fmt.Errorf("reorder: segment with %d nodes", s.Nodes)
		}
		totalNodes += s.Nodes
	}
	ar := h.Arities()
	if totalNodes != ar[0] {
		return nil, fmt.Errorf("reorder: segments cover %d nodes, machine has %d", totalNodes, ar[0])
	}
	coresPerNode := h.Size() / ar[0]
	c := &Composite{
		h:        h,
		segments: append([]Segment(nil), segments...),
		table:    make([]int, h.Size()),
		inverse:  make([]int, h.Size()),
	}
	start := 0 // first core (and first reordered rank) of the segment
	for _, seg := range segments {
		sub, err := segmentHierarchy(h, seg.Nodes)
		if err != nil {
			return nil, err
		}
		ro, err := New(sub, seg.Order)
		if err != nil {
			return nil, fmt.Errorf("reorder: segment of %d nodes: %w", seg.Nodes, err)
		}
		size := seg.Nodes * coresPerNode
		for local := 0; local < size; local++ {
			c.table[start+local] = start + ro.NewRank(local)
		}
		start += size
	}
	for old, nw := range c.table {
		c.inverse[nw] = old
	}
	return c, nil
}

// segmentHierarchy returns the sub-hierarchy of a segment: nodes × the
// per-node levels, dropping the node level entirely for single-node
// segments (a level of arity 1 is not a valid radix).
func segmentHierarchy(h topology.Hierarchy, nodes int) (topology.Hierarchy, error) {
	if nodes == 1 {
		return h.Sub(1, h.Depth())
	}
	perNode, err := h.Sub(1, h.Depth())
	if err != nil {
		return topology.Hierarchy{}, err
	}
	return perNode.Prepend(topology.Level{Name: h.Level(0).Name, Arity: nodes})
}

// Hierarchy returns the machine hierarchy.
func (c *Composite) Hierarchy() topology.Hierarchy { return c.h }

// Size returns the number of processes.
func (c *Composite) Size() int { return len(c.table) }

// NewRank returns the reordered rank of an original world rank.
func (c *Composite) NewRank(old int) int { return c.table[old] }

// OldRank returns the original rank holding a reordered rank.
func (c *Composite) OldRank(new int) int { return c.inverse[new] }

// Binding returns the rank→core binding of the composite reordering.
func (c *Composite) Binding() []int { return append([]int(nil), c.inverse...) }

// VariableSubcomms assigns reordered ranks to subcommunicators of the
// given sizes (which must sum to n): consecutive reordered ranks fill the
// communicators in order. It returns color[newRank] and key[newRank] —
// the MPI_Comm_split arguments realizing §5's "subcommunicators with
// different sizes".
func VariableSubcomms(n int, sizes []int) (color, key []int, err error) {
	total := 0
	for i, s := range sizes {
		if s <= 0 {
			return nil, nil, fmt.Errorf("reorder: subcommunicator %d has size %d", i, s)
		}
		total += s
	}
	if total != n {
		return nil, nil, fmt.Errorf("reorder: subcommunicator sizes sum to %d, world has %d", total, n)
	}
	color = make([]int, n)
	key = make([]int, n)
	rank := 0
	for c, s := range sizes {
		for k := 0; k < s; k++ {
			color[rank] = c
			key[rank] = k
			rank++
		}
	}
	return color, key, nil
}
