// Degraded re-enumeration: after cores fail, the recovery order of the
// survivors is obtained by running the same mixed-radix enumeration that
// produced the original reordering and simply skipping the holes. The
// survivors keep their relative σ-order, so a recovery launcher can reuse
// the rankfile machinery with a shrunken world.

package reorder

import (
	"fmt"
	"io"

	"repro/internal/topology"
)

// SurvivorOrder enumerates the surviving cores of a degraded hierarchy in
// σ-order: position i of the result is the core that (shrunken) recovery
// rank i should bind to. It is the existing mixed-radix core selection
// (Reordering.Binding) filtered to the alive mask.
func SurvivorOrder(d topology.Degraded, sigma []int) ([]int, error) {
	ro, err := New(d.Base(), sigma)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, d.NumAlive())
	for newRank := 0; newRank < ro.Size(); newRank++ {
		core := ro.OldRank(newRank)
		if d.Alive(core) {
			out = append(out, core)
		}
	}
	return out, nil
}

// SurvivorRankfile writes the recovery rankfile: shrunken rank i is bound
// to the i-th surviving core of the σ-enumeration.
func SurvivorRankfile(w io.Writer, d topology.Degraded, sigma []int) error {
	order, err := SurvivorOrder(d, sigma)
	if err != nil {
		return err
	}
	ar := d.Base().Arities()
	coresPerNode := 1
	for _, a := range ar[1:] {
		coresPerNode *= a
	}
	for rank, core := range order {
		if _, err := fmt.Fprintf(w, "rank %d=node%d slot=%d\n", rank, core/coresPerNode, core%coresPerNode); err != nil {
			return err
		}
	}
	return nil
}
