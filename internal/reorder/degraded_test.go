package reorder

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/topology"
)

func TestSurvivorOrderIdentity(t *testing.T) {
	h := topology.MustNew(2, 2, 4)
	d, err := h.Degrade(3, 7, 12)
	if err != nil {
		t.Fatal(err)
	}
	// σ = [2 1 0] (core varies fastest) reproduces the natural enumeration,
	// minus the holes.
	got, err := SurvivorOrder(d, []int{2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 4, 5, 6, 8, 9, 10, 11, 13, 14, 15}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SurvivorOrder = %v, want %v", got, want)
	}
}

func TestSurvivorOrderReordered(t *testing.T) {
	h := topology.MustNew(2, 2, 4)
	// σ = [0 1 2]: the node level varies fastest — round-robin across nodes.
	ro, err := New(h, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	full := ro.Binding()

	d, err := h.Degrade(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SurvivorOrder(d, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// The survivor order is the full σ-enumeration with the holes removed,
	// preserving relative order.
	want := make([]int, 0, 14)
	for _, core := range full {
		if core != 0 && core != 8 {
			want = append(want, core)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SurvivorOrder = %v, want %v", got, want)
	}
	if len(got) != d.NumAlive() {
		t.Fatalf("len = %d, want %d", len(got), d.NumAlive())
	}

	if _, err := SurvivorOrder(d, []int{0, 1}); err == nil {
		t.Fatal("bad σ accepted")
	}
}

func TestSurvivorRankfile(t *testing.T) {
	h := topology.MustNew(2, 2, 4)
	d, err := h.Degrade(1)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := SurvivorRankfile(&b, d, []int{2, 1, 0}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 15 {
		t.Fatalf("%d rankfile lines, want 15", len(lines))
	}
	if lines[0] != "rank 0=node0 slot=0" {
		t.Fatalf("line 0 = %q", lines[0])
	}
	// Core 1 failed, so recovery rank 1 lands on core 2.
	if lines[1] != "rank 1=node0 slot=2" {
		t.Fatalf("line 1 = %q", lines[1])
	}
	// The shrunken rankfile must round-trip through the existing parser.
	binding, err := ParseRankfile(strings.NewReader(b.String()), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(binding) != 15 || binding[1] != 2 || binding[14] != 15 {
		t.Fatalf("parsed binding = %v", binding)
	}
}
