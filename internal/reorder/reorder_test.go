package reorder

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/perm"
	"repro/internal/topology"
)

func TestNewRankMatchesTable1(t *testing.T) {
	h := topology.MustNew(2, 2, 4)
	ro, err := New(h, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := ro.NewRank(10); got != 9 {
		t.Errorf("NewRank(10) = %d, want 9", got)
	}
	if got := ro.SplitKey(10); got != 9 {
		t.Errorf("SplitKey(10) = %d, want 9", got)
	}
	if got := ro.OldRank(9); got != 10 {
		t.Errorf("OldRank(9) = %d, want 10", got)
	}
}

func TestBindingIsInverse(t *testing.T) {
	h := topology.MustNew(2, 2, 4)
	for _, sigma := range perm.All(3) {
		ro, err := New(h, sigma)
		if err != nil {
			t.Fatal(err)
		}
		b := ro.Binding()
		for newRank, core := range b {
			if ro.NewRank(core) != newRank {
				t.Errorf("sigma=%v: binding[%d]=%d but NewRank(%d)=%d",
					sigma, newRank, core, core, ro.NewRank(core))
			}
		}
	}
}

func TestSubcommColoring(t *testing.T) {
	h := topology.MustNew(2, 2, 4)
	ro, err := New(h, []int{2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	n, err := ro.NumSubcomms(4)
	if err != nil || n != 4 {
		t.Fatalf("NumSubcomms = %d, %v", n, err)
	}
	// Quotient colouring: reordered ranks 0..3 share colour 0.
	for newRank := 0; newRank < 16; newRank++ {
		if got := ro.SubcommColor(newRank, 4); got != newRank/4 {
			t.Errorf("color(%d) = %d", newRank, got)
		}
		if got := ro.SubcommRank(newRank, 4); got != newRank%4 {
			t.Errorf("subrank(%d) = %d", newRank, got)
		}
	}
	if _, err := ro.NumSubcomms(3); err == nil {
		t.Error("non-dividing communicator size accepted")
	}
}

func TestOrderErrors(t *testing.T) {
	h := topology.MustNew(2, 2, 4)
	if _, err := New(h, []int{0, 0, 1}); err == nil {
		t.Error("invalid order accepted")
	}
	if _, err := New(h, []int{0, 1}); err == nil {
		t.Error("short order accepted")
	}
}

func TestRankfileRoundTrip(t *testing.T) {
	h := topology.MustNew(2, 2, 4)
	ro, err := New(h, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ro.Rankfile(&buf); err != nil {
		t.Fatal(err)
	}
	binding, err := ParseRankfile(&buf, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := ro.Binding()
	for i := range want {
		if binding[i] != want[i] {
			t.Errorf("binding[%d] = %d, want %d", i, binding[i], want[i])
		}
	}
}

func TestRankfileFormat(t *testing.T) {
	h := topology.MustNew(2, 2, 4)
	ro, err := New(h, []int{2, 1, 0}) // identity enumeration
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ro.Rankfile(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 16 {
		t.Fatalf("%d rankfile lines", len(lines))
	}
	if lines[0] != "rank 0=node0 slot=0" {
		t.Errorf("line 0 = %q", lines[0])
	}
	if lines[9] != "rank 9=node1 slot=1" {
		t.Errorf("line 9 = %q", lines[9])
	}
}

func TestParseRankfileErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"garbage", "hello world\n"},
		{"duplicate", "rank 0=node0 slot=0\nrank 0=node0 slot=1\n"},
		{"missing", "rank 1=node0 slot=1\n"},
		{"slot range", "rank 0=node0 slot=99\n"},
		{"empty", ""},
	}
	for _, c := range cases {
		if _, err := ParseRankfile(strings.NewReader(c.in), 8); err == nil {
			t.Errorf("%s: ParseRankfile should fail", c.name)
		}
	}
	if _, err := ParseRankfile(strings.NewReader("rank 0=node0 slot=0\n"), 0); err == nil {
		t.Error("zero coresPerNode accepted")
	}
}

func TestParseRankfileComments(t *testing.T) {
	in := "# a comment\n\nrank 0=node0 slot=3\nrank 1=node1 slot=0\n"
	b, err := ParseRankfile(strings.NewReader(in), 8)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 3 || b[1] != 8 {
		t.Errorf("binding = %v", b)
	}
}

func TestOrderName(t *testing.T) {
	if got := OrderName([]int{2, 1, 0, 3}); got != "2-1-0-3" {
		t.Errorf("OrderName = %q", got)
	}
}
