package mpi

import (
	"reflect"
	"testing"
)

func TestCartCreateNoReorder(t *testing.T) {
	runWorld(t, 16, Config{}, func(r *Rank) {
		cc, err := r.World().CartCreate(r, []int{4, 4}, nil, false)
		if err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
			return
		}
		if cc.Rank() != r.ID() {
			t.Errorf("rank %d renumbered to %d without reorder", r.ID(), cc.Rank())
		}
		coords := cc.Coords(cc.Rank())
		want := []int{r.ID() / 4, r.ID() % 4}
		if !reflect.DeepEqual(coords, want) {
			t.Errorf("rank %d coords %v, want %v", r.ID(), coords, want)
		}
		back, err := cc.CartRank(coords)
		if err != nil || back != cc.Rank() {
			t.Errorf("CartRank(Coords) = %d, %v", back, err)
		}
	})
}

func TestCartCreateErrors(t *testing.T) {
	runWorld(t, 16, Config{}, func(r *Rank) {
		if _, err := r.World().CartCreate(r, []int{3, 4}, nil, false); err == nil {
			t.Error("wrong-size grid accepted")
		}
		if _, err := r.World().CartCreate(r, []int{4, 4}, []bool{true}, false); err == nil {
			t.Error("short periodicity accepted")
		}
		if _, err := r.World().CartCreate(r, []int{16, 1}, nil, false); err == nil {
			t.Error("unit dimension accepted")
		}
	})
}

func TestCartShiftPeriodicity(t *testing.T) {
	runWorld(t, 16, Config{}, func(r *Rank) {
		cc, err := r.World().CartCreate(r, []int{4, 4}, []bool{false, true}, false)
		if err != nil {
			t.Fatal(err)
		}
		row, col := r.ID()/4, r.ID()%4
		src, dst := cc.Shift(0, 1) // non-periodic rows
		if row == 3 && dst != -1 {
			t.Errorf("rank %d: dst beyond non-periodic edge = %d", r.ID(), dst)
		}
		if row == 0 && src != -1 {
			t.Errorf("rank %d: src beyond non-periodic edge = %d", r.ID(), src)
		}
		if row < 3 && dst != r.ID()+4 {
			t.Errorf("rank %d: row dst = %d", r.ID(), dst)
		}
		src, dst = cc.Shift(1, 1) // periodic columns wrap
		if dst != row*4+(col+1)%4 {
			t.Errorf("rank %d: col dst = %d", r.ID(), dst)
		}
		if src != row*4+(col+3)%4 {
			t.Errorf("rank %d: col src = %d", r.ID(), src)
		}
	})
}

func TestCartNeighborExchange(t *testing.T) {
	runWorld(t, 16, Config{}, func(r *Rank) {
		cc, err := r.World().CartCreate(r, []int{4, 4}, []bool{true, true}, false)
		if err != nil {
			t.Fatal(err)
		}
		// Ring along dimension 1: everyone receives its left neighbour's rank.
		got, ok := cc.NeighborExchange(r, 1, F64Buf([]float64{float64(cc.Rank())}))
		if !ok {
			t.Errorf("rank %d: no source on periodic ring", r.ID())
			return
		}
		row, col := cc.Rank()/4, cc.Rank()%4
		want := float64(row*4 + (col+3)%4)
		if got.Data[0] != want {
			t.Errorf("rank %d received %v, want %v", r.ID(), got.Data[0], want)
		}
	})
}

func TestCartNeighborExchangeBoundary(t *testing.T) {
	runWorld(t, 16, Config{}, func(r *Rank) {
		cc, err := r.World().CartCreate(r, []int{4, 4}, nil, false)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := cc.NeighborExchange(r, 0, F64Buf([]float64{1}))
		row := cc.Rank() / 4
		if row == 0 && ok {
			t.Errorf("rank %d on the edge received %v", r.ID(), got.Data)
		}
		if row > 0 && !ok {
			t.Errorf("rank %d missed its halo", r.ID())
		}
	})
}

// With reorder=true, grid neighbours must end up at least as close in the
// hierarchy (by ring cost of the grid walk) as without reordering.
func TestCartReorderImprovesLocality(t *testing.T) {
	// Bind ranks so the row-major grid walk is poor: interleave nodes.
	binding := make([]int, 16)
	for i := range binding {
		binding[i] = (i%2)*8 + i/2 // even ranks node 0, odd ranks node 1
	}
	var plainCost, reorderedCost int
	_, err := Run(testSpec16(), binding, Config{}, func(r *Rank) {
		plain, err := r.World().CartCreate(r, []int{2, 2, 4}, nil, false)
		if err != nil {
			t.Error(err)
			return
		}
		re, err := r.World().CartCreate(r, []int{2, 2, 4}, nil, true)
		if err != nil {
			t.Error(err)
			return
		}
		if r.ID() == 0 {
			plainCost = gridWalkCost(r, plain)
			reorderedCost = gridWalkCost(r, re)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if reorderedCost > plainCost {
		t.Errorf("reorder made the grid walk worse: %d > %d", reorderedCost, plainCost)
	}
	if reorderedCost == 0 || plainCost == 0 {
		t.Fatalf("degenerate costs %d, %d", reorderedCost, plainCost)
	}
}

// gridWalkCost recomputes the ring cost of the comm's rank walk using the
// world binding (test helper; only sound on rank 0 after CartCreate).
func gridWalkCost(r *Rank, cc *CartComm) int {
	h := r.w.platform.Hierarchy()
	cores := make([]int, cc.Size())
	for i, w := range cc.Group() {
		cores[i] = r.w.binding[w]
	}
	total := 0
	for i := 0; i+1 < len(cores); i++ {
		total += h.CrossCost(cores[i], cores[i+1])
	}
	return total
}
