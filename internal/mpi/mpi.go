// Package mpi is a simulated MPI runtime: ranks are goroutines executing
// against the virtual clock of a discrete-event engine, point-to-point
// messages are fluid flows over the machine's link graph, and collective
// operations are the real message schedules of the textbook algorithms
// (ring, Bruck, recursive doubling, pairwise exchange, binomial trees), so
// their cost depends on where each rank is mapped — which is exactly the
// effect the paper studies.
//
// A World is created over a netmodel platform with a binding (rank → core).
// Each rank's body receives a *Rank handle giving MPI-style operations:
// Send/Recv/Isend/Irecv/Sendrecv, communicator Split, and the collectives
// used in the paper's evaluation (§4): Alltoall(v), Allreduce, Allgather,
// Bcast, Reduce, Gather, Scatter, Scan, Barrier.
package mpi

import (
	"fmt"
	"sync"

	"repro/internal/fault"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/sim"
)

// EagerThreshold is the message size (bytes) up to which sends complete
// immediately (eager protocol); larger messages use a rendezvous handshake
// costing one extra round trip of path latency.
const defaultEagerThreshold = 16 * 1024

// Tracer observes completed operations for profiling (the mpisee-style
// per-communicator accounting of §4.2). Implementations must be safe for
// concurrent use — ranks call it from their own goroutines.
type Tracer interface {
	// Collective records one collective call: the communicator id and size,
	// the operation name, the per-rank payload bytes, the world rank, and
	// the operation's virtual start/end times.
	Collective(commID, commSize int, op string, bytes int64, worldRank int, start, end float64)
}

// P2PTracer observes every point-to-point message (including the ones
// collective algorithms issue), e.g. to build a communication matrix at
// runtime (§2 of the paper). Implementations must be safe for concurrent
// use.
type P2PTracer interface {
	P2P(srcWorldRank, dstWorldRank int, bytes int64)
}

// Config tunes the runtime.
type Config struct {
	// EagerThreshold in bytes; 0 uses the default (16 KiB).
	EagerThreshold int64
	// Tracer receives per-operation records; nil disables tracing.
	Tracer Tracer
	// P2P receives every point-to-point message; nil disables it.
	P2P P2PTracer
	// Obs is the unified observability scope: collective spans, per-level
	// byte counters, per-communicator ring costs, and (via Run) engine
	// health metrics. nil disables all of it at the cost of one nil check
	// per operation.
	Obs *obs.Scope
	// Force* pin a collective to one algorithm ("" = size-based decision).
	ForceAlltoall  string
	ForceAllgather string
	ForceAllreduce string
	ForceBcast     string
	// Faults is a deterministic fault plan injected into the world (node
	// crashes, stragglers, link degradation); nil runs a perfect machine.
	Faults *fault.Plan
}

// World is one simulated MPI job.
type World struct {
	engine   *sim.Engine
	platform *netmodel.Platform
	binding  []int
	cfg      Config

	mu      sync.Mutex
	mail    []map[matchKey]*matchQueue // per destination rank
	commSeq int
	splits  map[splitKey]*splitState

	// Fault-injection state (see fault.go). faulty is set once by
	// ApplyFaults before the engine runs, so the hot paths skip every
	// fault check on a perfect machine with one predictable branch.
	faulty   bool
	procs    []*sim.Process // by world rank, recorded at Spawn
	lost     []bool         // by world rank
	lostList []int          // world ranks lost, in crash order
	lastLoss fault.RankLostError
	epoch    int // bumped on every crash; revokes pre-crash communicators
	straggle []float64
	shrinks  map[shrinkKey]*shrinkState

	// Observability state, pre-resolved at NewWorld so the hot paths pay
	// one nil check when disabled and no registry lookups when enabled.
	coresPerNode  int
	obsBytesTotal *obs.Counter   // nil when cfg.Obs is nil
	obsLevelBytes []*obs.Counter // by FirstDiffLevel index; [depth] = same core
	obsMsgs       *obs.Counter
}

// nodeOf returns the Perfetto pid for a core: its outermost-level domain.
func (w *World) nodeOf(core int) int { return core / w.coresPerNode }

type matchKey struct {
	src int
	tag int64
}

// matchQueue holds unmatched sends and unmatched recvs for one (src, tag)
// channel at one destination; at most one of the two lists is non-empty.
type matchQueue struct {
	sends []*sendRec
	recvs []*recvRec
}

type sendRec struct {
	buf       Buf
	srcCore   int
	dstCore   int
	started   bool           // transfer already launched (eager)
	transfer  *sim.Condition // completion of the data movement (set when started)
	senderFin *sim.Condition // fired when the sender may complete
}

type recvRec struct {
	fin *sim.Condition // fired when data has arrived
	buf *Buf           // destination for the received payload
}

// Rank is the per-process handle passed to the rank body.
type Rank struct {
	w     *World
	proc  *sim.Process
	id    int
	world *Comm
}

// NewWorld builds a world over the platform with the given rank→core
// binding. Every core index must be valid; ranks may share cores
// (oversubscription) although the experiments never do.
func NewWorld(engine *sim.Engine, platform *netmodel.Platform, binding []int, cfg Config) (*World, error) {
	n := len(binding)
	if n == 0 {
		return nil, fmt.Errorf("mpi: empty binding")
	}
	for r, c := range binding {
		if c < 0 || c >= platform.NumCores() {
			return nil, fmt.Errorf("mpi: rank %d bound to invalid core %d (machine has %d)", r, c, platform.NumCores())
		}
	}
	if cfg.EagerThreshold == 0 {
		cfg.EagerThreshold = defaultEagerThreshold
	}
	w := &World{
		engine:   engine,
		platform: platform,
		binding:  append([]int(nil), binding...),
		cfg:      cfg,
		mail:     make([]map[matchKey]*matchQueue, n),
		splits:   make(map[splitKey]*splitState),
	}
	for i := range w.mail {
		w.mail[i] = make(map[matchKey]*matchQueue)
	}
	w.commSeq = 1 // id 0 is the world communicator
	w.procs = make([]*sim.Process, n)
	w.lost = make([]bool, n)
	w.straggle = make([]float64, n)
	for i := range w.straggle {
		w.straggle[i] = 1
	}
	w.shrinks = make(map[shrinkKey]*shrinkState)
	hier := platform.Hierarchy()
	w.coresPerNode = platform.NumCores() / hier.Level(0).Arity
	if sc := cfg.Obs; sc != nil {
		reg := sc.Registry()
		w.obsBytesTotal = reg.Counter("mpi_bytes_total")
		w.obsMsgs = reg.Counter("mpi_messages_total")
		depth := hier.Depth()
		w.obsLevelBytes = make([]*obs.Counter, depth+1)
		for l := 0; l < depth; l++ {
			w.obsLevelBytes[l] = reg.Counter("mpi_level_bytes_total", obs.L("level", hier.Level(l).Name))
		}
		w.obsLevelBytes[depth] = reg.Counter("mpi_level_bytes_total", obs.L("level", "self"))
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.binding) }

// Core returns the core a world rank is bound to.
func (w *World) Core(rank int) int { return w.binding[rank] }

// Spawn launches every rank's body as a simulation process. Call before
// engine.Run.
func (w *World) Spawn(body func(r *Rank)) {
	group := make([]int, w.Size())
	for i := range group {
		group[i] = i
	}
	for i := 0; i < w.Size(); i++ {
		rank := i
		name := fmt.Sprintf("rank%d", rank)
		if sc := w.cfg.Obs; sc != nil {
			core := w.binding[rank]
			node := w.nodeOf(core)
			sc.SetProcessName(node, fmt.Sprintf("node%d", node))
			sc.SetThreadName(node, rank, fmt.Sprintf("rank%d@core%d", rank, core))
			sc.BindProc(name, node, rank)
		}
		w.procs[rank] = w.engine.Spawn(name, func(p *sim.Process) {
			r := &Rank{w: w, proc: p, id: rank}
			r.world = &Comm{w: w, id: 0, group: group, rank: rank}
			body(r)
		})
	}
}

// Run builds a world on a fresh engine, spawns nprocs ranks with the given
// binding and body, and runs the simulation to completion, returning the
// final virtual time.
func Run(spec netmodel.Spec, binding []int, cfg Config, body func(r *Rank)) (float64, error) {
	engine := sim.NewEngine()
	platform := netmodel.NewPlatform(engine, spec)
	w, err := NewWorld(engine, platform, binding, cfg)
	if err != nil {
		return 0, err
	}
	var eo *obs.EngineObserver
	if cfg.Obs != nil {
		eo = obs.NewEngineObserver(cfg.Obs)
		engine.SetObserver(eo)
	}
	w.Spawn(body)
	if err := w.ApplyFaults(cfg.Faults); err != nil {
		return 0, err
	}
	runErr := engine.Run()
	eo.Finish()
	if runErr != nil {
		return 0, runErr
	}
	return engine.Now(), nil
}

// ID returns the world rank.
func (r *Rank) ID() int { return r.id }

// World returns the communicator containing every rank.
func (r *Rank) World() *Comm { return r.world }

// Now returns the rank's current virtual time in seconds.
func (r *Rank) Now() float64 { return r.proc.Now() }

// Core returns the core this rank is bound to.
func (r *Rank) Core() int { return r.w.binding[r.id] }

// Wait advances the rank's virtual time by d seconds (pure local work).
// A straggling rank's local work is stretched by its slowdown factor.
func (r *Rank) Wait(d float64) {
	if r.w.faulty {
		d *= r.w.straggleOf(r.id)
	}
	r.proc.Wait(d)
}

// Compute models a roofline kernel on the rank's core: flops of arithmetic
// and bytes of memory traffic through the core's shared memory domains.
// A straggling rank's kernel does the same work at 1/factor speed.
func (r *Rank) Compute(flops, bytes float64) {
	if r.w.faulty {
		f := r.w.straggleOf(r.id)
		flops *= f
		bytes *= f
	}
	r.w.platform.Compute(r.proc, r.w.binding[r.id], flops, bytes)
}

// Request is a pending non-blocking operation. The op/peer/tag fields
// describe it for deadlock diagnostics (static strings and ints only, so
// labelling costs no allocation on the hot path).
type Request struct {
	fin  *sim.Condition
	buf  *Buf // receive destination (nil for sends)
	op   string
	peer int // world rank of the remote side
	tag  int64
	chk  bool // fault injection active: Wait must check for a failed condition
}

// Wait blocks the rank until the operation completes; for receives it
// returns the received payload. If the operation failed because the peer
// crashed, Wait aborts the rank with an error wrapping fault.ErrRankLost
// (recoverable on survivors via fault.Catch).
func (req *Request) Wait(r *Rank) Buf {
	req.fin.AwaitOp(r.proc, req.op, req.peer, req.tag)
	if req.chk {
		if err := req.fin.Err(); err != nil {
			panic(sim.Abort{Err: err})
		}
	}
	if req.buf != nil {
		return *req.buf
	}
	return Buf{}
}

// WaitAll completes all requests.
func WaitAll(r *Rank, reqs ...*Request) {
	for _, q := range reqs {
		q.Wait(r)
	}
}

// queueFor returns (creating if needed) the match queue at destination dst
// for messages from src with the tag. Callers hold w.mu.
func (w *World) queueFor(dst, src int, tag int64) *matchQueue {
	k := matchKey{src: src, tag: tag}
	q := w.mail[dst][k]
	if q == nil {
		q = &matchQueue{}
		w.mail[dst][k] = q
	}
	return q
}

// isend posts a message from world rank src to world rank dst.
func (w *World) isend(src, dst int, tag int64, buf Buf) *Request {
	buf.check()
	if w.cfg.P2P != nil {
		w.cfg.P2P.P2P(src, dst, buf.Bytes)
	}
	srcCore, dstCore := w.binding[src], w.binding[dst]
	if w.obsBytesTotal != nil {
		w.obsBytesTotal.AddInt(buf.Bytes)
		w.obsMsgs.AddInt(1)
		w.obsLevelBytes[w.platform.Hierarchy().FirstDiffLevel(srcCore, dstCore)].AddInt(buf.Bytes)
		if w.cfg.Obs.Options().P2PEvents {
			w.cfg.Obs.Instant(w.nodeOf(srcCore), src, "p2p", "p2p", w.engine.Now(),
				obs.Arg{Key: "dst", Val: int64(dst)}, obs.Arg{Key: "bytes", Val: buf.Bytes})
		}
	}
	eager := buf.Bytes <= w.cfg.EagerThreshold

	w.mu.Lock()
	stretch := w.stretchLocked(src, dst)
	q := w.queueFor(dst, src, tag)
	if len(q.recvs) > 0 {
		// A receive is already posted: start the transfer now. Rendezvous
		// pays no extra handshake because the receiver was ready.
		rv := q.recvs[0]
		q.recvs = q.recvs[1:]
		w.mu.Unlock()
		payload := buf.Clone()
		c := w.platform.StartTransferStretched(srcCore, dstCore, float64(buf.Bytes), 0, stretch)
		c.OnFire(func() {
			*rv.buf = payload
			rv.fin.FireLocked()
		})
		if eager {
			// Eager sends complete locally right away.
			fin := w.engine.NewCondition()
			fin.Fire()
			return &Request{fin: fin, op: "Send", peer: dst, tag: tag, chk: w.faulty}
		}
		return &Request{fin: c, op: "Send", peer: dst, tag: tag, chk: w.faulty}
	}
	// No receive yet: enqueue.
	rec := &sendRec{buf: buf.Clone(), srcCore: srcCore, dstCore: dstCore}
	fin := w.engine.NewCondition()
	rec.senderFin = fin
	if eager {
		// Launch the transfer immediately; the sender is done already.
		// The transfer must be attached before the record becomes visible.
		rec.started = true
		rec.transfer = w.platform.StartTransferStretched(srcCore, dstCore, float64(buf.Bytes), 0, stretch)
	}
	q.sends = append(q.sends, rec)
	w.mu.Unlock()
	if eager {
		fin.Fire()
	}
	return &Request{fin: fin, op: "Send", peer: dst, tag: tag, chk: w.faulty}
}

// irecv posts a receive at world rank dst for a message from src.
func (w *World) irecv(dst, src int, tag int64) *Request {
	fin := w.engine.NewCondition()
	out := new(Buf)
	dstCore := w.binding[dst]

	w.mu.Lock()
	stretch := w.stretchLocked(src, dst)
	q := w.queueFor(dst, src, tag)
	if len(q.sends) > 0 {
		rec := q.sends[0]
		q.sends = q.sends[1:]
		w.mu.Unlock()
		if rec.started {
			// Eager message already in flight (or arrived).
			rec.transfer.OnFire(func() {
				*out = rec.buf
				fin.FireLocked()
			})
		} else {
			// Rendezvous: the receiver triggers the transfer and pays the
			// handshake round trip on top of the path latency.
			c := w.platform.StartTransferStretched(rec.srcCore, dstCore, float64(rec.buf.Bytes), 1, stretch)
			c.OnFire(func() {
				*out = rec.buf
				fin.FireLocked()
				rec.senderFin.FireLocked()
			})
		}
		return &Request{fin: fin, buf: out, op: "Recv", peer: src, tag: tag, chk: w.faulty}
	}
	q.recvs = append(q.recvs, &recvRec{fin: fin, buf: out})
	w.mu.Unlock()
	return &Request{fin: fin, buf: out, op: "Recv", peer: src, tag: tag, chk: w.faulty}
}
