// Alltoall and Alltoallv: pairwise exchange for large messages, Bruck's
// algorithm for small ones, and a linear (all-posted) variant, mirroring
// the decision rules of production MPI implementations. The paper's
// micro-benchmarks (Figures 3–5) and Splatt's dominant operation
// (MPI_Alltoallv, §4.2) run on these schedules.

package mpi

import "fmt"

// alltoallBruckThreshold is the per-destination block size (bytes) up to
// which Bruck's algorithm is preferred.
const alltoallBruckThreshold = 2048

// Alltoall exchanges send[i] with every rank i of the communicator and
// returns recv with recv[i] = the buffer rank i sent to the caller.
// Every rank must pass a slice of length Size(). Uneven block sizes are
// allowed (this is MPI_Alltoallv); evenly sized small blocks use Bruck.
func (c *Comm) Alltoall(r *Rank, send []Buf) []Buf {
	p := len(c.group)
	if len(send) != p {
		panic(fmt.Sprintf("mpi: Alltoall with %d buffers on a size-%d communicator", len(send), p))
	}
	var total int64
	even := true
	for i, b := range send {
		b.check()
		total += b.Bytes
		if b.Bytes != send[0].Bytes {
			even = false
		}
		_ = i
	}
	seq := c.nextSeq()
	start := r.Now()
	alg := c.w.cfg.ForceAlltoall
	if alg == "" {
		if even && p > 2 && send[0].Bytes <= alltoallBruckThreshold {
			alg = "bruck"
		} else {
			alg = "pairwise"
		}
	}
	var recv []Buf
	switch alg {
	case "pairwise":
		recv = c.alltoallPairwise(r, seq, send)
	case "bruck":
		if !even {
			panic("mpi: Bruck alltoall requires equal block sizes")
		}
		recv = c.alltoallBruck(r, seq, send)
	case "linear":
		recv = c.alltoallLinear(r, seq, send)
	default:
		panic(fmt.Sprintf("mpi: unknown alltoall algorithm %q", alg))
	}
	c.trace(r, "Alltoall", total, start)
	return recv
}

// alltoallPairwise runs p-1 rounds; in round k the caller exchanges with
// ranks at distance k (XOR pattern when p is a power of two, shift pattern
// otherwise), one blocking sendrecv per round.
func (c *Comm) alltoallPairwise(r *Rank, seq int64, send []Buf) []Buf {
	p := len(c.group)
	me := c.rank
	recv := make([]Buf, p)
	recv[me] = send[me].Clone()
	pow2 := p&(p-1) == 0
	for k := 1; k < p; k++ {
		var dst, src int
		if pow2 {
			dst = me ^ k
			src = dst
		} else {
			dst = (me + k) % p
			src = (me - k + p) % p
		}
		t := c.tag(seq, int64(k))
		rr := c.irecvTag(src, t)
		sr := c.isendTag(dst, t, send[dst])
		recv[src] = rr.Wait(r)
		sr.Wait(r)
	}
	return recv
}

// alltoallLinear posts every receive and send at once and waits for all —
// maximum overlap, maximum instantaneous contention.
func (c *Comm) alltoallLinear(r *Rank, seq int64, send []Buf) []Buf {
	p := len(c.group)
	me := c.rank
	recv := make([]Buf, p)
	recv[me] = send[me].Clone()
	rreqs := make([]*Request, 0, p-1)
	sreqs := make([]*Request, 0, p-1)
	srcs := make([]int, 0, p-1)
	for k := 1; k < p; k++ {
		src := (me - k + p) % p
		rreqs = append(rreqs, c.irecvTag(src, c.tag(seq, 0)))
		srcs = append(srcs, src)
	}
	for k := 1; k < p; k++ {
		dst := (me + k) % p
		sreqs = append(sreqs, c.isendTag(dst, c.tag(seq, 0), send[dst]))
	}
	for i, rq := range rreqs {
		recv[srcs[i]] = rq.Wait(r)
	}
	WaitAll(r, sreqs...)
	return recv
}

// alltoallBruck implements Bruck's log-round algorithm for equal blocks.
// Invariant: after the rounds, local block i holds the data sent by rank
// (me-i+p)%p to the caller.
func (c *Comm) alltoallBruck(r *Rank, seq int64, send []Buf) []Buf {
	p := len(c.group)
	me := c.rank
	// Step 1: local rotation. tmp[i] = block destined to (me+i)%p.
	tmp := make([]Buf, p)
	for i := 0; i < p; i++ {
		tmp[i] = send[(me+i)%p].Clone()
	}
	// Step 2: log2(p) rounds.
	round := int64(0)
	for k := 1; k < p; k <<= 1 {
		dst := (me + k) % p
		src := (me - k + p) % p
		idx := make([]int, 0, p/2+1)
		for i := 0; i < p; i++ {
			if i&k != 0 {
				idx = append(idx, i)
			}
		}
		parts := make([]Buf, len(idx))
		for j, i := range idx {
			parts[j] = tmp[i]
		}
		t := c.tag(seq, round)
		rr := c.irecvTag(src, t)
		sr := c.isendTag(dst, t, Concat(parts...))
		in := rr.Wait(r)
		sr.Wait(r)
		inParts := in.SplitEven(len(idx))
		for j, i := range idx {
			tmp[i] = inParts[j].Clone()
		}
		round++
	}
	// Step 3: inverse rotation — tmp[i] came from rank (me-i+p)%p.
	recv := make([]Buf, p)
	for i := 0; i < p; i++ {
		recv[(me-i+p)%p] = tmp[i]
	}
	return recv
}
