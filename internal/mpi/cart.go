// Cartesian virtual topologies (MPI_Cart_create and friends). The paper's
// related work (§2) recalls that "Cartesian topologies … define
// communication relationships between processes. When creating such
// virtual topologies, it is possible to request a rank reordering to
// better match the system topology." Here the requested reordering is the
// paper's own technique: the Cartesian dimensions become the mixed-radix
// base and the machine hierarchy guides which grid dimension varies
// fastest, so grid neighbours land close in the hierarchy.

package mpi

import (
	"fmt"

	"repro/internal/mixedradix"
	"repro/internal/perm"
	"repro/internal/topology"
)

// CartComm is a communicator with Cartesian topology information.
type CartComm struct {
	*Comm
	dims     []int
	periodic []bool
}

// CartCreate builds a Cartesian grid over the communicator like
// MPI_Cart_create. dims must multiply to the communicator size. With
// reorder=false ranks keep their order (row-major grid). With
// reorder=true, the grid is renumbered with the mixed-radix order that
// minimizes the total §3.3 crossing cost of all grid-neighbour pairs over
// the machine hierarchy — the "reordering to better match the system
// topology" the MPI standard allows.
func (c *Comm) CartCreate(r *Rank, dims []int, periodic []bool, reorder bool) (*CartComm, error) {
	p := len(c.group)
	if err := mixedradix.CheckHierarchy(dims); err != nil {
		return nil, fmt.Errorf("mpi: CartCreate dims: %w", err)
	}
	if mixedradix.Size(dims) != p {
		return nil, fmt.Errorf("mpi: Cartesian grid %v needs %d ranks, communicator has %d",
			dims, mixedradix.Size(dims), p)
	}
	if periodic == nil {
		periodic = make([]bool, len(dims))
	}
	if len(periodic) != len(dims) {
		return nil, fmt.Errorf("mpi: %d periodicity flags for %d dims", len(periodic), len(dims))
	}
	key := c.rank
	if reorder {
		sigma := bestCartOrder(c.w.platform.Hierarchy(), c, dims, periodic)
		key = mixedradix.NewRank(dims, c.rank, sigma)
	}
	sub := c.Split(r, 0, key)
	return &CartComm{
		Comm:     sub,
		dims:     append([]int(nil), dims...),
		periodic: append([]bool(nil), periodic...),
	}, nil
}

// bestCartOrder scores every order of the grid dims by the total hierarchy
// crossing cost of all grid-neighbour pairs (the halo-exchange traffic of
// the topology) and returns the cheapest. All ranks compute the same
// deterministic answer.
func bestCartOrder(h topology.Hierarchy, c *Comm, dims []int, periodic []bool) []int {
	// Placement of comm rank i: the core of its world rank.
	cores := make([]int, len(c.group))
	for i, w := range c.group {
		cores[i] = c.w.binding[w]
	}
	best := mixedradix.IdentityOrder(len(dims))
	bestCost := -1
	for _, sigma := range perm.All(len(dims)) {
		// Under sigma, grid position g (row-major index i) is held by the
		// comm rank whose reordered key equals i.
		place := make([]int, len(cores))
		for old, core := range cores {
			place[mixedradix.NewRank(dims, old, sigma)] = core
		}
		cost := gridNeighborCost(h, dims, periodic, place)
		if bestCost < 0 || cost < bestCost {
			bestCost = cost
			best = sigma
		}
	}
	return best
}

// gridNeighborCost sums the §3.3 crossing cost over every +1 grid
// neighbour pair in every dimension (wrapping on periodic dimensions).
func gridNeighborCost(h topology.Hierarchy, dims []int, periodic []bool, place []int) int {
	k := len(dims)
	coords := make([]int, k)
	total := 0
	for i := range place {
		mixedradix.DecomposeInto(dims, i, coords)
		for d := 0; d < k; d++ {
			orig := coords[d]
			coords[d]++
			if coords[d] == dims[d] {
				if !periodic[d] {
					coords[d] = orig
					continue
				}
				coords[d] = 0
			}
			j := mixedradix.Compose(dims, coords, mixedradix.IdentityOrder(k))
			total += h.CrossCost(place[i], place[j])
			coords[d] = orig
		}
	}
	return total
}

// Dims returns the grid dimensions.
func (cc *CartComm) Dims() []int { return append([]int(nil), cc.dims...) }

// Coords returns the Cartesian coordinates of a comm rank (row-major,
// dimension 0 outermost — MPI_Cart_coords).
func (cc *CartComm) Coords(rank int) []int {
	return mixedradix.Decompose(cc.dims, rank)
}

// CartRank is the inverse of Coords (MPI_Cart_rank). Out-of-range
// coordinates wrap on periodic dimensions and return an error otherwise.
func (cc *CartComm) CartRank(coords []int) (int, error) {
	if len(coords) != len(cc.dims) {
		return 0, fmt.Errorf("mpi: %d coordinates for %d dims", len(coords), len(cc.dims))
	}
	fixed := make([]int, len(coords))
	for d, v := range coords {
		switch {
		case v >= 0 && v < cc.dims[d]:
			fixed[d] = v
		case cc.periodic[d]:
			fixed[d] = ((v % cc.dims[d]) + cc.dims[d]) % cc.dims[d]
		default:
			return 0, fmt.Errorf("mpi: coordinate %d out of range on non-periodic dim %d", v, d)
		}
	}
	return mixedradix.Compose(cc.dims, fixed, mixedradix.IdentityOrder(len(cc.dims))), nil
}

// Shift returns the source and destination ranks for a displacement along
// a dimension (MPI_Cart_shift). Ranks are -1 beyond the boundary of a
// non-periodic dimension.
func (cc *CartComm) Shift(dim, disp int) (src, dst int) {
	coords := cc.Coords(cc.Rank())
	to := append([]int(nil), coords...)
	to[dim] += disp
	from := append([]int(nil), coords...)
	from[dim] -= disp
	dst = -1
	if rank, err := cc.CartRank(to); err == nil {
		dst = rank
	}
	src = -1
	if rank, err := cc.CartRank(from); err == nil {
		src = rank
	}
	return src, dst
}

// NeighborExchange sends buf to the +1 neighbour and receives from the -1
// neighbour along the dimension (one halo-exchange half-step); it returns
// the received payload and true, or false at a non-periodic boundary with
// no source. Ranks with a destination but no source (and vice versa) still
// progress.
func (cc *CartComm) NeighborExchange(r *Rank, dim int, buf Buf) (Buf, bool) {
	return cc.NeighborExchangeDisp(r, dim, 1, buf)
}

// NeighborExchangeDisp is NeighborExchange with an arbitrary displacement:
// it sends buf to the +disp neighbour and receives from the -disp one.
// A full halo swap along a dimension is two calls, disp=+1 and disp=-1.
func (cc *CartComm) NeighborExchangeDisp(r *Rank, dim, disp int, buf Buf) (Buf, bool) {
	src, dst := cc.Shift(dim, disp)
	tag := cc.tag(cc.nextSeq(), int64(dim))
	var rr, sr *Request
	if src >= 0 {
		rr = cc.irecvTag(src, tag)
	}
	if dst >= 0 {
		sr = cc.isendTag(dst, tag, buf)
	}
	var got Buf
	ok := false
	if rr != nil {
		got = rr.Wait(r)
		ok = true
	}
	if sr != nil {
		sr.Wait(r)
	}
	return got, ok
}
