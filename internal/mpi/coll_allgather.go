// Allgather: ring (neighbour exchanges, whose cost tracks the paper's ring
// cost metric directly), recursive doubling for power-of-two groups, and a
// linear fallback. Figure 7 of the paper shows Allgather's sensitivity to
// the rank order inside communicators — that sensitivity comes from these
// neighbour-structured schedules.

package mpi

import "fmt"

// allgatherRDThreshold is the total gathered size (communicator size ×
// per-rank contribution) up to which recursive doubling is preferred on
// power-of-two communicators. The threshold is on the total because the
// last doubling round ships half of the full gathered buffer across the
// communicator's bisection — for large totals the ring's pipelined
// neighbour traffic is far cheaper.
const allgatherRDThreshold = 128 * 1024

// Allgather distributes every rank's buffer to all ranks; recv[i] is the
// contribution of comm rank i.
func (c *Comm) Allgather(r *Rank, mine Buf) []Buf {
	mine.check()
	p := len(c.group)
	seq := c.nextSeq()
	start := r.Now()
	alg := c.w.cfg.ForceAllgather
	if alg == "" {
		if p&(p-1) == 0 && p > 1 && int64(p)*mine.Bytes <= allgatherRDThreshold {
			alg = "rdoubling"
		} else {
			alg = "ring"
		}
	}
	var recv []Buf
	switch alg {
	case "ring":
		recv = c.allgatherRing(r, seq, mine)
	case "rdoubling":
		recv = c.allgatherRecDoubling(r, seq, mine)
	case "linear":
		recv = c.allgatherLinear(r, seq, mine)
	default:
		panic(fmt.Sprintf("mpi: unknown allgather algorithm %q", alg))
	}
	c.trace(r, "Allgather", mine.Bytes, start)
	return recv
}

// allgatherRing passes blocks around the ring for p-1 rounds: in round t
// the caller sends block (rank-t)%p to rank+1 and receives block
// (rank-t-1)%p from rank-1.
func (c *Comm) allgatherRing(r *Rank, seq int64, mine Buf) []Buf {
	p := len(c.group)
	me := c.rank
	recv := make([]Buf, p)
	recv[me] = mine.Clone()
	next := (me + 1) % p
	prev := (me - 1 + p) % p
	for t := 0; t < p-1; t++ {
		sendIdx := (me - t + p*p) % p
		recvIdx := (me - t - 1 + p*p) % p
		tg := c.tag(seq, int64(t))
		rr := c.irecvTag(prev, tg)
		sr := c.isendTag(next, tg, recv[sendIdx])
		recv[recvIdx] = rr.Wait(r)
		sr.Wait(r)
	}
	return recv
}

// allgatherRecDoubling exchanges doubling block sets with rank^2^j; p must
// be a power of two.
func (c *Comm) allgatherRecDoubling(r *Rank, seq int64, mine Buf) []Buf {
	p := len(c.group)
	if p&(p-1) != 0 {
		panic("mpi: recursive-doubling allgather requires a power-of-two communicator")
	}
	me := c.rank
	recv := make([]Buf, p)
	recv[me] = mine.Clone()
	owned := []int{me}
	round := int64(0)
	for k := 1; k < p; k <<= 1 {
		peer := me ^ k
		// Send every block currently held, ascending block index.
		parts := make([]Buf, len(owned))
		sortInts(owned)
		for j, i := range owned {
			parts[j] = recv[i]
		}
		tg := c.tag(seq, round)
		rr := c.irecvTag(peer, tg)
		sr := c.isendTag(peer, tg, Concat(parts...))
		in := rr.Wait(r)
		sr.Wait(r)
		// The peer held exactly our indices XOR k.
		peerIdx := make([]int, len(owned))
		for j, i := range owned {
			peerIdx[j] = i ^ k
		}
		sortInts(peerIdx)
		inParts := in.SplitEven(len(peerIdx))
		for j, i := range peerIdx {
			recv[i] = inParts[j].Clone()
		}
		owned = append(owned, peerIdx...)
		round++
	}
	return recv
}

// allgatherLinear has every rank send its block directly to every other.
func (c *Comm) allgatherLinear(r *Rank, seq int64, mine Buf) []Buf {
	p := len(c.group)
	me := c.rank
	recv := make([]Buf, p)
	recv[me] = mine.Clone()
	rreqs := make([]*Request, 0, p-1)
	srcs := make([]int, 0, p-1)
	for k := 1; k < p; k++ {
		src := (me - k + p) % p
		rreqs = append(rreqs, c.irecvTag(src, c.tag(seq, 0)))
		srcs = append(srcs, src)
	}
	sreqs := make([]*Request, 0, p-1)
	for k := 1; k < p; k++ {
		dst := (me + k) % p
		sreqs = append(sreqs, c.isendTag(dst, c.tag(seq, 0), mine))
	}
	for i, rq := range rreqs {
		recv[srcs[i]] = rq.Wait(r)
	}
	WaitAll(r, sreqs...)
	return recv
}

// sortInts is a tiny insertion sort (block index lists are short).
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
