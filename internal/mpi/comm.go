// Communicators: groups of ranks with their own rank numbering, created by
// splitting an existing communicator with a colour and key exactly like
// MPI_Comm_split — the paper's rank-reordering method (§3.2) passes the
// reordered rank as the key when splitting the world communicator.

package mpi

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Comm is a communicator: an ordered group of world ranks. Methods must be
// called from the goroutine of the rank passed as the first argument, and
// every member must call each collective in the same order.
type Comm struct {
	w     *World
	id    int
	group []int // comm rank -> world rank
	rank  int   // calling rank's position in group
	seq   int64 // per-member collective sequence (identical across members)
	epoch int   // world failure epoch at creation; a later crash revokes the comm
}

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// Rank returns the calling rank's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// ID returns the communicator's id (0 for the world communicator).
func (c *Comm) ID() int { return c.id }

// WorldRank translates a communicator rank to a world rank.
func (c *Comm) WorldRank(rank int) int { return c.group[rank] }

// Group returns a copy of the comm-rank → world-rank mapping.
func (c *Comm) Group() []int { return append([]int(nil), c.group...) }

// tag builds a matching tag private to this communicator and operation
// sequence number; user point-to-point tags live in the non-negative space.
func (c *Comm) tag(seq int64, phase int64) int64 {
	return -(1 + int64(c.id)<<40 | seq<<8 | phase)
}

// nextSeq advances the collective sequence counter for the calling rank.
func (c *Comm) nextSeq() int64 {
	c.seq++
	return c.seq
}

// Send sends buf to dst (comm rank) with a user tag and blocks until the
// send completes (eager: immediately; rendezvous: when received).
func (c *Comm) Send(r *Rank, dst int, tag int64, buf Buf) {
	c.Isend(r, dst, tag, buf).Wait(r)
}

// Recv blocks until a matching message from src (comm rank) arrives and
// returns its payload.
func (c *Comm) Recv(r *Rank, src int, tag int64) Buf {
	return c.Irecv(r, src, tag).Wait(r)
}

// Isend starts a non-blocking send to dst (comm rank).
func (c *Comm) Isend(r *Rank, dst int, tag int64, buf Buf) *Request {
	if tag < 0 {
		panic("mpi: negative user tags are reserved")
	}
	c.checkRank(r, dst)
	c.guard("Send", c.group[dst])
	return c.w.isend(c.group[c.rank], c.group[dst], userTag(c.id, tag), buf)
}

// Irecv starts a non-blocking receive from src (comm rank).
func (c *Comm) Irecv(r *Rank, src int, tag int64) *Request {
	if tag < 0 {
		panic("mpi: negative user tags are reserved")
	}
	c.checkRank(r, src)
	c.guard("Recv", c.group[src])
	return c.w.irecv(c.group[c.rank], c.group[src], userTag(c.id, tag))
}

// Sendrecv exchanges messages with two peers simultaneously: sends buf to
// dst while receiving from src, returning the received payload.
func (c *Comm) Sendrecv(r *Rank, dst int, sendBuf Buf, src int, tag int64) Buf {
	rr := c.Irecv(r, src, tag)
	sr := c.Isend(r, dst, tag, sendBuf)
	got := rr.Wait(r)
	sr.Wait(r)
	return got
}

// userTag namespaces user tags per communicator.
func userTag(commID int, tag int64) int64 {
	return int64(commID)<<40 | tag
}

func (c *Comm) checkRank(r *Rank, peer int) {
	if c.group[c.rank] != r.id {
		panic(fmt.Sprintf("mpi: rank %d used a communicator handle belonging to world rank %d",
			r.id, c.group[c.rank]))
	}
	if peer < 0 || peer >= len(c.group) {
		panic(fmt.Sprintf("mpi: peer %d out of range for communicator of size %d", peer, len(c.group)))
	}
}

// internal isend/irecv with collective-private tags. The guard makes every
// collective message round abort promptly when the communicator was
// revoked or the round's peer is dead — this is what turns a crash inside
// a collective into a typed error on every survivor instead of a hang.
func (c *Comm) isendTag(dst int, t int64, buf Buf) *Request {
	c.guard("Send", c.group[dst])
	return c.w.isend(c.group[c.rank], c.group[dst], t, buf)
}

func (c *Comm) irecvTag(src int, t int64) *Request {
	c.guard("Recv", c.group[src])
	return c.w.irecv(c.group[c.rank], c.group[src], t)
}

// splitKey identifies one collective Split call site.
type splitKey struct {
	commID int
	seq    int64
}

type splitState struct {
	entries []splitEntry
	done    *sim.Condition
	result  map[int]*commSpec // world rank -> new communicator layout
}

type splitEntry struct {
	worldRank int
	color     int
	key       int
}

type commSpec struct {
	id    int
	group []int
	rank  int
	epoch int
}

// Split partitions the communicator like MPI_Comm_split: ranks passing the
// same colour form a new communicator, ordered by (key, old rank). It
// returns nil for colour < 0 (MPI_UNDEFINED). Split itself is free in
// virtual time (its handshake cost is negligible in every experiment).
func (c *Comm) Split(r *Rank, color, key int) *Comm {
	c.guard("Split", -1)
	seq := c.nextSeq()
	w := c.w
	me := c.group[c.rank]

	w.mu.Lock()
	sk := splitKey{commID: c.id, seq: seq}
	st := w.splits[sk]
	if st == nil {
		st = &splitState{done: w.engine.NewCondition()}
		w.splits[sk] = st
	}
	st.entries = append(st.entries, splitEntry{worldRank: me, color: color, key: key})
	if len(st.entries) == len(c.group) {
		// Last arriver computes the split.
		st.result = make(map[int]*commSpec)
		byColor := map[int][]splitEntry{}
		for _, e := range st.entries {
			if e.color >= 0 {
				byColor[e.color] = append(byColor[e.color], e)
			}
		}
		colors := make([]int, 0, len(byColor))
		for col := range byColor {
			colors = append(colors, col)
		}
		sort.Ints(colors)
		for _, col := range colors {
			es := byColor[col]
			sort.Slice(es, func(i, j int) bool {
				if es[i].key != es[j].key {
					return es[i].key < es[j].key
				}
				return es[i].worldRank < es[j].worldRank
			})
			id := w.commSeq
			w.commSeq++
			group := make([]int, len(es))
			for i, e := range es {
				group[i] = e.worldRank
			}
			for i, e := range es {
				st.result[e.worldRank] = &commSpec{id: id, group: group, rank: i, epoch: w.epoch}
			}
			if sc := w.cfg.Obs; sc != nil {
				// Ring cost of the new communicator's placement (§3.3):
				// crossing cost between the cores of consecutive ranks.
				hier := w.platform.Hierarchy()
				rc := 0
				for i := 0; i+1 < len(group); i++ {
					rc += hier.CrossCost(w.binding[group[i]], w.binding[group[i+1]])
				}
				reg := sc.Registry()
				reg.Gauge("mpi_comm_ring_cost", obs.L("comm", fmt.Sprintf("%d", id))).Set(float64(rc))
				reg.Counter("mpi_comms_created_total", obs.L("size", fmt.Sprintf("%d", len(group)))).AddInt(1)
			}
		}
		delete(w.splits, sk)
		w.mu.Unlock()
		st.done.Fire()
	} else {
		w.mu.Unlock()
		st.done.AwaitOp(r.proc, "Split", -1, 0)
		if err := st.done.Err(); err != nil {
			// A member crashed while the split was collecting entries.
			panic(sim.Abort{Err: err})
		}
	}
	// All members observe the computed result.
	spec := st.result[me]
	if spec == nil {
		return nil
	}
	return &Comm{w: w, id: spec.id, group: spec.group, rank: spec.rank, epoch: spec.epoch}
}

// Dup returns a communicator with the same group and a fresh id.
func (c *Comm) Dup(r *Rank) *Comm {
	return c.Split(r, 0, c.rank)
}

// Barrier blocks until every rank of the communicator has entered, using
// the dissemination algorithm's zero-byte message rounds so that its cost
// reflects the members' placement.
func (c *Comm) Barrier(r *Rank) {
	p := len(c.group)
	if p == 1 {
		return
	}
	seq := c.nextSeq()
	start := r.Now()
	for k, round := 1, int64(0); k < p; k, round = k*2, round+1 {
		dst := (c.rank + k) % p
		src := (c.rank - k + p) % p
		t := c.tag(seq, round)
		rr := c.irecvTag(src, t)
		sr := c.isendTag(dst, t, BytesBuf(0))
		rr.Wait(r)
		sr.Wait(r)
	}
	c.trace(r, "Barrier", 0, start)
}

// trace reports a finished collective to the world's tracer and the
// observability scope (one span per op on the rank's track, plus latency
// and byte metrics). Both hooks are nil-checked; disabled they cost two
// predictable branches.
func (c *Comm) trace(r *Rank, op string, bytes int64, start float64) {
	tr := c.w.cfg.Tracer
	sc := c.w.cfg.Obs
	if tr == nil && sc == nil {
		return
	}
	end := r.Now()
	if tr != nil {
		tr.Collective(c.id, len(c.group), op, bytes, r.id, start, end)
	}
	if sc != nil {
		w := c.w
		sc.Span(w.nodeOf(w.binding[r.id]), r.id, op, "coll", start, end,
			obs.Arg{Key: "comm", Val: int64(c.id)},
			obs.Arg{Key: "comm_size", Val: int64(len(c.group))},
			obs.Arg{Key: "bytes", Val: bytes})
		reg := sc.Registry()
		opL := obs.L("op", op)
		reg.Histogram("mpi_coll_seconds", obs.TimeBuckets(), opL).Observe(end - start)
		reg.Counter("mpi_coll_total", opL).AddInt(1)
		reg.Counter("mpi_coll_bytes_total", opL).AddInt(bytes)
	}
}
