package mpi

import (
	"strings"
	"testing"
)

func TestEagerThresholdConfigurable(t *testing.T) {
	// With a 1-byte threshold, a 512-byte send must behave as rendezvous:
	// the sender blocks until the receiver posts.
	var sendDone, recvPosted float64
	_, err := Run(testSpec16(), identityBinding(2), Config{EagerThreshold: 1}, func(r *Rank) {
		w := r.World()
		if r.ID() == 0 {
			w.Send(r, 1, 0, BytesBuf(512))
			sendDone = r.Now()
		} else {
			r.Wait(0.25)
			recvPosted = r.Now()
			w.Recv(r, 0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sendDone < recvPosted {
		t.Errorf("send with tiny eager threshold completed at %v before recv at %v",
			sendDone, recvPosted)
	}
}

func TestOversubscription(t *testing.T) {
	// Four ranks share one core: collectives still complete and payloads
	// stay correct (the paper never oversubscribes, but the runtime must
	// not wedge).
	binding := []int{0, 0, 0, 0}
	_, err := Run(testSpec16(), binding, Config{}, func(r *Rank) {
		out := r.World().Allreduce(r, F64Buf([]float64{1}), OpSum)
		if out.Data[0] != 4 {
			t.Errorf("rank %d: allreduce %v", r.ID(), out.Data[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMismatchedRecvDeadlocks(t *testing.T) {
	// A receive with no matching send must surface as a deadlock error,
	// naming a blocked rank.
	_, err := Run(testSpec16(), identityBinding(2), Config{}, func(r *Rank) {
		if r.ID() == 0 {
			r.World().Recv(r, 1, 42) // never sent
		}
	})
	if err == nil {
		t.Fatal("mismatched recv did not deadlock")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("error %v does not mention deadlock", err)
	}
	if !strings.Contains(err.Error(), "rank0") {
		t.Errorf("error %v does not name the blocked rank", err)
	}
}

func TestMismatchedTagDeadlocks(t *testing.T) {
	_, err := Run(testSpec16(), identityBinding(2), Config{}, func(r *Rank) {
		w := r.World()
		if r.ID() == 0 {
			w.Send(r, 1, 1, BytesBuf(1<<20)) // rendezvous, tag 1
		} else {
			w.Recv(r, 0, 2) // waiting on tag 2
		}
	})
	if err == nil {
		t.Fatal("tag mismatch did not deadlock")
	}
}

func TestSelfSendEager(t *testing.T) {
	// A rank may send to itself if the receive is posted first (or the
	// message is eager).
	_, err := Run(testSpec16(), identityBinding(1), Config{}, func(r *Rank) {
		w := r.World()
		req := w.Irecv(r, 0, 0)
		w.Send(r, 0, 0, F64Buf([]float64{42}))
		got := req.Wait(r)
		if got.Data[0] != 42 {
			t.Errorf("self-send payload %v", got.Data)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitAllMixed(t *testing.T) {
	_, err := Run(testSpec16(), identityBinding(4), Config{}, func(r *Rank) {
		w := r.World()
		next := (r.ID() + 1) % 4
		prev := (r.ID() + 3) % 4
		reqs := []*Request{
			w.Irecv(r, prev, 9),
			w.Isend(r, next, 9, F64Buf([]float64{float64(r.ID())})),
		}
		WaitAll(r, reqs...)
		got := reqs[0].Wait(r) // Wait after WaitAll is idempotent
		if got.Data[0] != float64(prev) {
			t.Errorf("rank %d got %v", r.ID(), got.Data)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommRankValidation(t *testing.T) {
	_, err := Run(testSpec16(), identityBinding(2), Config{}, func(r *Rank) {
		if r.ID() != 0 {
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("out-of-range peer did not panic")
			}
			panic("unwind") // keep the runtime's panic bookkeeping honest
		}()
		r.World().Send(r, 5, 0, BytesBuf(1))
	})
	if err == nil {
		t.Fatal("expected the re-panic to surface")
	}
}

func TestNegativeUserTagRejected(t *testing.T) {
	_, err := Run(testSpec16(), identityBinding(2), Config{}, func(r *Rank) {
		if r.ID() != 0 {
			return
		}
		defer func() { _ = recover() }()
		r.World().Send(r, 1, -1, BytesBuf(1))
		t.Error("negative tag accepted")
	})
	// The deadlock of rank 1 never happens (both ranks return), so err may
	// be nil; the assertion above is the real check.
	_ = err
}

func TestBufValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("inconsistent Buf accepted")
		}
	}()
	b := Buf{Bytes: 7, Data: []float64{1}}
	b.check()
}

func TestCombineErrors(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched Combine accepted")
		}
	}()
	Combine(OpSum, BytesBuf(8), BytesBuf(16))
}

func TestSplitEvenSynthetic(t *testing.T) {
	parts := BytesBuf(10).SplitEven(3)
	var total int64
	for _, p := range parts {
		total += p.Bytes
	}
	if total != 10 || len(parts) != 3 {
		t.Errorf("SplitEven parts %v", parts)
	}
}

func TestConcatMixedBecomesSynthetic(t *testing.T) {
	out := Concat(F64Buf([]float64{1, 2}), BytesBuf(8))
	if out.IsData() {
		t.Error("mixing data and synthetic should drop the data")
	}
	if out.Bytes != 24 {
		t.Errorf("Concat bytes = %d", out.Bytes)
	}
}
