// Scan (inclusive prefix reduction) with the Hillis–Steele doubling
// schedule, plus the synthetic byte-level convenience wrappers used by the
// micro-benchmarks.

package mpi

// Scan returns the inclusive prefix reduction over comm ranks: the caller
// receives op(buf₀, …, buf_rank).
func (c *Comm) Scan(r *Rank, mine Buf, op ReduceOp) Buf {
	mine.check()
	p := len(c.group)
	if p == 1 {
		return mine.Clone()
	}
	seq := c.nextSeq()
	start := r.Now()
	me := c.rank
	res := mine.Clone()  // prefix so far
	part := mine.Clone() // aggregate of the window ending at me
	round := int64(0)
	for k := 1; k < p; k <<= 1 {
		var sr *Request
		tg := c.tag(seq, round)
		if me+k < p {
			sr = c.isendTag(me+k, tg, part)
		}
		if me-k >= 0 {
			in := c.irecvTag(me-k, tg).Wait(r)
			res = Combine(op, in, res)
			part = Combine(op, in, part)
		}
		if sr != nil {
			sr.Wait(r)
		}
		round++
	}
	c.trace(r, "Scan", mine.Bytes, start)
	return res
}

// AlltoallBytes runs a synthetic MPI_Alltoall where each rank sends
// blockBytes to every other rank.
func (c *Comm) AlltoallBytes(r *Rank, blockBytes int64) {
	send := make([]Buf, len(c.group))
	for i := range send {
		send[i] = BytesBuf(blockBytes)
	}
	c.Alltoall(r, send)
}

// AllgatherBytes runs a synthetic MPI_Allgather contributing bytes per rank.
func (c *Comm) AllgatherBytes(r *Rank, bytes int64) {
	c.Allgather(r, BytesBuf(bytes))
}

// AllreduceBytes runs a synthetic MPI_Allreduce over a bytes-sized buffer.
func (c *Comm) AllreduceBytes(r *Rank, bytes int64) {
	c.Allreduce(r, BytesBuf(bytes), OpSum)
}

// BcastBytes runs a synthetic MPI_Bcast of a bytes-sized buffer.
func (c *Comm) BcastBytes(r *Rank, root int, bytes int64) {
	c.Bcast(r, root, BytesBuf(bytes))
}
