// Hierarchy-sensitive communicator creation — the paper's §5 direction
// ("implement strategies in MPI libraries to reorder ranks and create
// communicators in a hierarchy-sensitive way") and the guided mode of
// MPI_Comm_split_type from MPI 4.0 (§2): split a communicator by a level
// of the machine hierarchy, or reorder it by a mixed-radix order in one
// collective call.

package mpi

import (
	"fmt"

	"repro/internal/mixedradix"
)

// SplitByLevel groups the communicator's ranks by the machine-hierarchy
// domain of the given level that their cores belong to (level 0 =
// outermost; Depth()-1 yields singleton communicators per core). This is
// the guided MPI_Comm_split_type: SplitByLevel(r, 0) on a cluster
// hierarchy is MPI_COMM_TYPE_SHARED (one communicator per node). Rank
// order within each new communicator follows the current one.
func (c *Comm) SplitByLevel(r *Rank, level int) *Comm {
	h := c.w.platform.Hierarchy()
	if level < 0 || level >= h.Depth() {
		panic(fmt.Sprintf("mpi: SplitByLevel level %d out of range [0, %d)", level, h.Depth()))
	}
	coresPerDomain := 1
	ar := h.Arities()
	for l := level + 1; l < len(ar); l++ {
		coresPerDomain *= ar[l]
	}
	core := c.w.binding[c.group[c.rank]]
	return c.Split(r, core/coresPerDomain, c.rank)
}

// SplitReordered renumbers the communicator's ranks with the mixed-radix
// order sigma over hierarchy arities h — the paper's §3.2 reordering as a
// single collective call. The hierarchy must enumerate exactly the
// communicator's size and every rank must pass identical arguments. The
// caller's current rank is treated as its position in the hierarchy's
// initial enumeration.
func (c *Comm) SplitReordered(r *Rank, h []int, sigma []int) (*Comm, error) {
	if mixedradix.Size(h) != len(c.group) {
		return nil, fmt.Errorf("mpi: hierarchy %v enumerates %d ranks, communicator has %d",
			h, mixedradix.Size(h), len(c.group))
	}
	key, err := func() (k int, err error) {
		defer func() {
			if rec := recover(); rec != nil {
				err = fmt.Errorf("mpi: SplitReordered: %v", rec)
			}
		}()
		return mixedradix.NewRank(h, c.rank, sigma), nil
	}()
	if err != nil {
		return nil, err
	}
	return c.Split(r, 0, key), nil
}

// SubcommsReordered applies the full §3.2/§4.1 recipe in one call:
// reorder the communicator with sigma over hierarchy h, then split the
// reordered numbering into blocks of commSize (quotient colouring). It
// returns the caller's subcommunicator. commSize must divide the
// communicator size.
func (c *Comm) SubcommsReordered(r *Rank, h []int, sigma []int, commSize int) (*Comm, error) {
	if commSize <= 0 || len(c.group)%commSize != 0 {
		return nil, fmt.Errorf("mpi: subcommunicator size %d does not divide %d", commSize, len(c.group))
	}
	reordered, err := c.SplitReordered(r, h, sigma)
	if err != nil {
		return nil, err
	}
	return reordered.Split(r, reordered.Rank()/commSize, reordered.Rank()%commSize), nil
}
