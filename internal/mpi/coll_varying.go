// Varying-count collectives (the MPI *v family) and exclusive scan.
// Production MPI implementations fall back to linear schedules for the
// v-variants (uneven block sizes defeat the splitting tricks of tree and
// doubling algorithms); the ring allgather needs no such fallback because
// each block travels as its own message.

package mpi

import "fmt"

// Gatherv collects every rank's (arbitrarily sized) buffer at the root
// with the linear schedule MPI implementations use for MPI_Gatherv.
// The root returns recv[i] = rank i's buffer; others return nil.
func (c *Comm) Gatherv(r *Rank, root int, mine Buf) []Buf {
	mine.check()
	p := len(c.group)
	seq := c.nextSeq()
	start := r.Now()
	defer func() { c.trace(r, "Gatherv", mine.Bytes, start) }()
	if c.rank == root {
		recv := make([]Buf, p)
		recv[root] = mine.Clone()
		reqs := make([]*Request, 0, p-1)
		srcs := make([]int, 0, p-1)
		for i := 0; i < p; i++ {
			if i == root {
				continue
			}
			reqs = append(reqs, c.irecvTag(i, c.tag(seq, 0)))
			srcs = append(srcs, i)
		}
		for j, rq := range reqs {
			recv[srcs[j]] = rq.Wait(r)
		}
		return recv
	}
	c.isendTag(root, c.tag(seq, 0), mine).Wait(r)
	return nil
}

// Scatterv distributes root's per-rank buffers (arbitrary sizes) with the
// linear MPI_Scatterv schedule; every rank returns its own block.
func (c *Comm) Scatterv(r *Rank, root int, send []Buf) Buf {
	p := len(c.group)
	seq := c.nextSeq()
	start := r.Now()
	if c.rank == root {
		if len(send) != p {
			panic(fmt.Sprintf("mpi: Scatterv with %d buffers on a size-%d communicator", len(send), p))
		}
		var total int64
		reqs := make([]*Request, 0, p-1)
		for i := 0; i < p; i++ {
			send[i].check()
			total += send[i].Bytes
			if i == root {
				continue
			}
			reqs = append(reqs, c.isendTag(i, c.tag(seq, 0), send[i]))
		}
		WaitAll(r, reqs...)
		c.trace(r, "Scatterv", total, start)
		return send[root].Clone()
	}
	out := c.irecvTag(root, c.tag(seq, 0)).Wait(r)
	c.trace(r, "Scatterv", out.Bytes, start)
	return out
}

// Allgatherv distributes every rank's arbitrarily sized buffer to all
// ranks using the ring schedule (which carries uneven blocks natively).
func (c *Comm) Allgatherv(r *Rank, mine Buf) []Buf {
	mine.check()
	seq := c.nextSeq()
	start := r.Now()
	recv := c.allgatherRing(r, seq, mine)
	c.trace(r, "Allgatherv", mine.Bytes, start)
	return recv
}

// Exscan returns the exclusive prefix reduction: rank r receives
// op(buf₀, …, buf_{r-1}); rank 0 receives a zero-value Buf (like
// MPI_Exscan, whose rank-0 result is undefined). The doubling schedule
// mirrors Scan's.
func (c *Comm) Exscan(r *Rank, mine Buf, op ReduceOp) Buf {
	mine.check()
	p := len(c.group)
	seq := c.nextSeq()
	start := r.Now()
	me := c.rank
	var res Buf // exclusive prefix accumulated so far
	have := false
	part := mine.Clone()
	round := int64(0)
	for k := 1; k < p; k <<= 1 {
		var sr *Request
		tg := c.tag(seq, round)
		if me+k < p {
			sr = c.isendTag(me+k, tg, part)
		}
		if me-k >= 0 {
			in := c.irecvTag(me-k, tg).Wait(r)
			if !have {
				res = in
				have = true
			} else {
				res = Combine(op, in, res)
			}
			part = Combine(op, in, part)
		}
		if sr != nil {
			sr.Wait(r)
		}
		round++
	}
	c.trace(r, "Exscan", mine.Bytes, start)
	return res
}
