// Rooted collectives: broadcast (binomial tree and pipelined chain),
// reduce, gather and scatter (binomial trees). Splatt's communicator mix
// uses MPI_Bcast, MPI_Reduce and MPI_Gather alongside the non-rooted
// operations (§4.2).

package mpi

import "fmt"

// bcastChainThreshold is the buffer size (bytes) above which the pipelined
// chain broadcast replaces the binomial tree.
const bcastChainThreshold = 64 * 1024

// bcastSegment is the pipeline segment size of the chain broadcast.
const bcastSegment = 128 * 1024

// Bcast sends root's buffer to every rank and returns it; non-root callers
// pass the expected size (synthetic) or any buffer of the right size —
// only root's payload is used.
func (c *Comm) Bcast(r *Rank, root int, buf Buf) Buf {
	buf.check()
	p := len(c.group)
	if p == 1 {
		return buf.Clone()
	}
	seq := c.nextSeq()
	start := r.Now()
	alg := c.w.cfg.ForceBcast
	if alg == "" {
		if buf.Bytes <= bcastChainThreshold {
			alg = "binomial"
		} else {
			alg = "chain"
		}
	}
	var out Buf
	switch alg {
	case "binomial":
		out = c.bcastBinomial(r, seq, root, buf)
	case "chain":
		out = c.bcastChain(r, seq, root, buf)
	default:
		panic(fmt.Sprintf("mpi: unknown bcast algorithm %q", alg))
	}
	c.trace(r, "Bcast", buf.Bytes, start)
	return out
}

// bcastBinomial is the MPICH binomial-tree broadcast over relative ranks.
func (c *Comm) bcastBinomial(r *Rank, seq int64, root int, buf Buf) Buf {
	p := len(c.group)
	vr := (c.rank - root + p) % p
	out := buf.Clone()
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			src := (vr - mask + root) % p
			out = c.irecvTag(src, c.tag(seq, 0)).Wait(r)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vr+mask < p {
			dst := (vr + mask + root) % p
			c.isendTag(dst, c.tag(seq, 0), out).Wait(r)
		}
		mask >>= 1
	}
	return out
}

// bcastChain pipelines fixed-size segments down the rank chain
// root → root+1 → …, overlapping the forward of segment i with the receive
// of segment i+1.
func (c *Comm) bcastChain(r *Rank, seq int64, root int, buf Buf) Buf {
	p := len(c.group)
	vr := (c.rank - root + p) % p
	nseg := int((buf.Bytes + bcastSegment - 1) / bcastSegment)
	if nseg < 1 {
		nseg = 1
	}
	segs := buf.SplitEven(nseg)
	next := (c.rank + 1) % p
	prev := (c.rank - 1 + p) % p
	var pending *Request
	for s := 0; s < nseg; s++ {
		if vr > 0 {
			segs[s] = c.irecvTag(prev, c.tag(seq, int64(s))).Wait(r)
		}
		if vr < p-1 {
			if pending != nil {
				pending.Wait(r)
			}
			pending = c.isendTag(next, c.tag(seq, int64(s)), segs[s])
		}
	}
	if pending != nil {
		pending.Wait(r)
	}
	return Concat(segs...)
}

// Reduce combines every rank's buffer with op at the root (binomial tree);
// non-root ranks receive a zero-value Buf.
func (c *Comm) Reduce(r *Rank, root int, mine Buf, op ReduceOp) Buf {
	mine.check()
	p := len(c.group)
	if p == 1 {
		return mine.Clone()
	}
	seq := c.nextSeq()
	start := r.Now()
	vr := (c.rank - root + p) % p
	acc := mine.Clone()
	mask := 1
	for mask < p {
		if vr&mask == 0 {
			childVr := vr + mask
			if childVr < p {
				src := (childVr + root) % p
				in := c.irecvTag(src, c.tag(seq, int64(mask))).Wait(r)
				acc = Combine(op, acc, in)
			}
		} else {
			dst := (vr - mask + root) % p
			c.isendTag(dst, c.tag(seq, int64(mask)), acc).Wait(r)
			acc = Buf{}
			break
		}
		mask <<= 1
	}
	c.trace(r, "Reduce", mine.Bytes, start)
	if c.rank == root {
		return acc
	}
	return Buf{}
}

// Gather collects every rank's buffer at the root along a binomial tree
// (subtree payloads are aggregated at each hop); the root returns recv with
// recv[i] = rank i's buffer, others return nil.
func (c *Comm) Gather(r *Rank, root int, mine Buf) []Buf {
	mine.check()
	p := len(c.group)
	seq := c.nextSeq()
	start := r.Now()
	vr := (c.rank - root + p) % p
	// blocks[j] is the buffer of relative rank vr+j collected so far.
	blocks := map[int]Buf{0: mine.Clone()}
	span := 1 // subtree size gathered so far
	mask := 1
	for mask < p {
		if vr&mask == 0 {
			childVr := vr + mask
			if childVr < p {
				src := (childVr + root) % p
				in := c.irecvTag(src, c.tag(seq, int64(mask))).Wait(r)
				childSpan := min(mask, p-childVr)
				parts := splitAsCounts(in, childSpan)
				for j := 0; j < childSpan; j++ {
					blocks[mask+j] = parts[j]
				}
				span = mask + childSpan
			}
		} else {
			// Ship the whole gathered subtree to the parent.
			parts := make([]Buf, span)
			for j := 0; j < span; j++ {
				parts[j] = blocks[j]
			}
			dst := (vr - mask + root) % p
			c.isendTag(dst, c.tag(seq, int64(mask)), Concat(parts...)).Wait(r)
			blocks = nil
			break
		}
		mask <<= 1
	}
	c.trace(r, "Gather", mine.Bytes, start)
	if c.rank != root {
		return nil
	}
	recv := make([]Buf, p)
	for j := 0; j < p; j++ {
		recv[(j+root)%p] = blocks[j]
	}
	return recv
}

// splitAsCounts splits an aggregated subtree payload back into n equal
// blocks (all Gather/Scatter payloads are uniform in this codebase).
func splitAsCounts(b Buf, n int) []Buf {
	return b.SplitEven(n)
}

// Scatter distributes root's per-rank buffers down a binomial tree; every
// rank returns its own block. Blocks must be uniform in size. Non-root
// callers pass nil.
func (c *Comm) Scatter(r *Rank, root int, send []Buf) Buf {
	p := len(c.group)
	seq := c.nextSeq()
	start := r.Now()
	vr := (c.rank - root + p) % p
	var blocks []Buf // blocks for relative ranks [vr, vr+len)
	var total int64
	if c.rank == root {
		if len(send) != p {
			panic(fmt.Sprintf("mpi: Scatter with %d buffers on a size-%d communicator", len(send), p))
		}
		blocks = make([]Buf, p)
		for i := 0; i < p; i++ {
			blocks[i] = send[(i+root)%p].Clone()
			total += blocks[i].Bytes
		}
	} else {
		// Receive the subtree rooted at vr from the parent.
		mask := 1
		for mask < p {
			if vr&mask != 0 {
				src := (vr - mask + root) % p
				in := c.irecvTag(src, c.tag(seq, int64(mask))).Wait(r)
				span := min(mask, p-vr)
				blocks = splitAsCounts(in, span)
				break
			}
			mask <<= 1
		}
	}
	// Send phase: forward sub-subtrees to children.
	highestMask := 1
	for highestMask < p {
		if vr&highestMask != 0 {
			break
		}
		highestMask <<= 1
	}
	for mask := highestMask >> 1; mask > 0; mask >>= 1 {
		if vr+mask < p {
			span := min(mask, p-(vr+mask))
			parts := make([]Buf, span)
			for j := 0; j < span; j++ {
				parts[j] = blocks[mask+j]
			}
			dst := (vr + mask + root) % p
			c.isendTag(dst, c.tag(seq, int64(mask)), Concat(parts...)).Wait(r)
		}
	}
	c.trace(r, "Scatter", total, start)
	return blocks[0]
}
