// Allreduce and ReduceScatter: recursive doubling for small buffers, the
// ring (reduce-scatter + allgather) algorithm for large ones — the
// neighbour-structured ring is what makes Allreduce sensitive to the rank
// order inside a communicator (Figure 6 of the paper).

package mpi

import "fmt"

// allreduceRDThreshold is the buffer size (bytes) up to which recursive
// doubling is preferred on power-of-two communicators.
const allreduceRDThreshold = 64 * 1024

// Allreduce combines every rank's buffer with op and returns the result on
// all ranks. All buffers must have the same size.
func (c *Comm) Allreduce(r *Rank, mine Buf, op ReduceOp) Buf {
	mine.check()
	p := len(c.group)
	if p == 1 {
		return mine.Clone()
	}
	seq := c.nextSeq()
	start := r.Now()
	alg := c.w.cfg.ForceAllreduce
	if alg == "" {
		if p&(p-1) == 0 && mine.Bytes <= allreduceRDThreshold {
			alg = "rdoubling"
		} else {
			alg = "ring"
		}
	}
	var out Buf
	switch alg {
	case "rdoubling":
		out = c.allreduceRecDoubling(r, seq, mine, op)
	case "ring":
		out = c.allreduceRing(r, seq, mine, op)
	default:
		panic(fmt.Sprintf("mpi: unknown allreduce algorithm %q", alg))
	}
	c.trace(r, "Allreduce", mine.Bytes, start)
	return out
}

// allreduceRecDoubling exchanges the full buffer with rank^2^j each round;
// p must be a power of two.
func (c *Comm) allreduceRecDoubling(r *Rank, seq int64, mine Buf, op ReduceOp) Buf {
	p := len(c.group)
	if p&(p-1) != 0 {
		panic("mpi: recursive-doubling allreduce requires a power-of-two communicator")
	}
	me := c.rank
	acc := mine.Clone()
	round := int64(0)
	for k := 1; k < p; k <<= 1 {
		peer := me ^ k
		tg := c.tag(seq, round)
		rr := c.irecvTag(peer, tg)
		sr := c.isendTag(peer, tg, acc)
		in := rr.Wait(r)
		sr.Wait(r)
		acc = Combine(op, acc, in)
		round++
	}
	return acc
}

// allreduceRing is reduce-scatter (ring) followed by allgather (ring):
// 2(p-1) neighbour rounds of 1/p-sized chunks.
func (c *Comm) allreduceRing(r *Rank, seq int64, mine Buf, op ReduceOp) Buf {
	p := len(c.group)
	me := c.rank
	chunks := mine.SplitEven(p)
	for i := range chunks {
		chunks[i] = chunks[i].Clone()
	}
	next := (me + 1) % p
	prev := (me - 1 + p) % p
	// Phase 1: reduce-scatter. After p-1 rounds the fully reduced chunk
	// (me+1)%p lives at this rank.
	for t := 0; t < p-1; t++ {
		sendIdx := (me - t + p*p) % p
		recvIdx := (me - t - 1 + p*p) % p
		tg := c.tag(seq, int64(t))
		rr := c.irecvTag(prev, tg)
		sr := c.isendTag(next, tg, chunks[sendIdx])
		in := rr.Wait(r)
		sr.Wait(r)
		chunks[recvIdx] = Combine(op, chunks[recvIdx], in)
	}
	// Phase 2: allgather of the reduced chunks around the same ring.
	ownIdx := (me + 1) % p
	for t := 0; t < p-1; t++ {
		sendIdx := (ownIdx - t + p*p) % p
		recvIdx := (ownIdx - t - 1 + p*p) % p
		tg := c.tag(seq, int64(p+t))
		rr := c.irecvTag(prev, tg)
		sr := c.isendTag(next, tg, chunks[sendIdx])
		in := rr.Wait(r)
		sr.Wait(r)
		chunks[recvIdx] = in
	}
	return Concat(chunks...)
}

// ReduceScatterBlock reduces every rank's buffer with op and scatters the
// result: the caller receives the (comm-rank)-th even chunk of the reduced
// buffer, using the ring reduce-scatter schedule.
func (c *Comm) ReduceScatterBlock(r *Rank, mine Buf, op ReduceOp) Buf {
	mine.check()
	p := len(c.group)
	if p == 1 {
		return mine.Clone()
	}
	seq := c.nextSeq()
	start := r.Now()
	me := c.rank
	chunks := mine.SplitEven(p)
	for i := range chunks {
		chunks[i] = chunks[i].Clone()
	}
	next := (me + 1) % p
	prev := (me - 1 + p) % p
	for t := 0; t < p-1; t++ {
		sendIdx := (me - t + p*p) % p
		recvIdx := (me - t - 1 + p*p) % p
		tg := c.tag(seq, int64(t))
		rr := c.irecvTag(prev, tg)
		sr := c.isendTag(next, tg, chunks[sendIdx])
		in := rr.Wait(r)
		sr.Wait(r)
		chunks[recvIdx] = Combine(op, chunks[recvIdx], in)
	}
	// The fully reduced chunk held here is (me+1)%p, which belongs to the
	// next rank; rotate one step backwards so everyone gets its own chunk.
	ownIdx := (me + 1) % p
	out := chunks[ownIdx]
	if ownIdx != me {
		tg := c.tag(seq, int64(2*p))
		rr := c.irecvTag(prev, tg)
		sr := c.isendTag(next, tg, out)
		out = rr.Wait(r)
		sr.Wait(r)
	}
	c.trace(r, "ReduceScatter", mine.Bytes, start)
	return out
}
