package mpi

import (
	"testing"
)

func TestSplitByLevelNode(t *testing.T) {
	// ⟦2,2,4⟧ test machine: level 0 = node → two comms of 8.
	runWorld(t, 16, Config{}, func(r *Rank) {
		sub := r.World().SplitByLevel(r, 0)
		if sub.Size() != 8 {
			t.Errorf("rank %d: node comm size %d", r.ID(), sub.Size())
		}
		wantRank := r.ID() % 8
		if sub.Rank() != wantRank {
			t.Errorf("rank %d: node comm rank %d, want %d", r.ID(), sub.Rank(), wantRank)
		}
	})
}

func TestSplitByLevelSocket(t *testing.T) {
	runWorld(t, 16, Config{}, func(r *Rank) {
		sub := r.World().SplitByLevel(r, 1)
		if sub.Size() != 4 {
			t.Errorf("rank %d: socket comm size %d", r.ID(), sub.Size())
		}
		// Ranks 0-3 share socket 0 of node 0, etc.
		for _, w := range sub.Group() {
			if w/4 != r.ID()/4 {
				t.Errorf("rank %d grouped with %d", r.ID(), w)
			}
		}
	})
}

func TestSplitByLevelCore(t *testing.T) {
	runWorld(t, 16, Config{}, func(r *Rank) {
		sub := r.World().SplitByLevel(r, 2)
		if sub.Size() != 1 {
			t.Errorf("rank %d: core comm size %d", r.ID(), sub.Size())
		}
	})
}

func TestSplitByLevelRespectsBinding(t *testing.T) {
	// Two ranks bound to the same node, one to the other node.
	binding := []int{0, 3, 9}
	_, err := Run(testSpec16(), binding, Config{}, func(r *Rank) {
		sub := r.World().SplitByLevel(r, 0)
		wantSize := 2
		if r.ID() == 2 {
			wantSize = 1
		}
		if sub.Size() != wantSize {
			t.Errorf("rank %d: node comm size %d, want %d", r.ID(), sub.Size(), wantSize)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitReorderedMatchesTable1(t *testing.T) {
	runWorld(t, 16, Config{}, func(r *Rank) {
		sub, err := r.World().SplitReordered(r, []int{2, 2, 4}, []int{0, 1, 2})
		if err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
			return
		}
		if sub.Size() != 16 {
			t.Errorf("reordered comm size %d", sub.Size())
		}
		// Table 1 / Figure 2a: world rank 10 becomes rank 9.
		if r.ID() == 10 && sub.Rank() != 9 {
			t.Errorf("world rank 10 -> reordered %d, want 9", sub.Rank())
		}
		if r.ID() == 1 && sub.Rank() != 4 {
			t.Errorf("world rank 1 -> reordered %d, want 4", sub.Rank())
		}
	})
}

func TestSplitReorderedErrors(t *testing.T) {
	runWorld(t, 16, Config{}, func(r *Rank) {
		if _, err := r.World().SplitReordered(r, []int{2, 4}, []int{0, 1}); err == nil {
			t.Error("wrong-size hierarchy accepted")
		}
	})
}

func TestSubcommsReordered(t *testing.T) {
	runWorld(t, 16, Config{}, func(r *Rank) {
		sub, err := r.World().SubcommsReordered(r, []int{2, 2, 4}, []int{0, 1, 2}, 4)
		if err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
			return
		}
		if sub.Size() != 4 {
			t.Errorf("subcomm size %d", sub.Size())
		}
		// Figure 2a, blue communicator: reordered ranks 0..3 are world
		// ranks 0, 8, 4, 12 → the comm containing world rank 0 also holds
		// 4, 8, 12.
		if r.ID() == 0 {
			got := sub.Group()
			want := map[int]bool{0: true, 4: true, 8: true, 12: true}
			for _, w := range got {
				if !want[w] {
					t.Errorf("first subcomm contains world rank %d (group %v)", w, got)
				}
			}
		}
		// The subcommunicator must function: allreduce over it.
		out := sub.Allreduce(r, F64Buf([]float64{1}), OpSum)
		if out.Data[0] != 4 {
			t.Errorf("rank %d: allreduce %v", r.ID(), out.Data[0])
		}
	})
}

func TestSubcommsReorderedBadSize(t *testing.T) {
	runWorld(t, 16, Config{}, func(r *Rank) {
		if _, err := r.World().SubcommsReordered(r, []int{2, 2, 4}, []int{0, 1, 2}, 3); err == nil {
			t.Error("non-dividing subcomm size accepted")
		}
	})
}
