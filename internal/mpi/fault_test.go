package mpi

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
)

func plan(t *testing.T, dsl string) *fault.Plan {
	t.Helper()
	p, err := fault.Parse(dsl)
	if err != nil {
		t.Fatalf("fault.Parse(%q): %v", dsl, err)
	}
	return p
}

func TestCrashFailsBlockedReceiver(t *testing.T) {
	_, err := Run(testSpec16(), identityBinding(2), Config{Faults: plan(t, "rank:1@t=1ms")}, func(r *Rank) {
		w := r.World()
		if r.ID() == 0 {
			w.Recv(r, 1, 0) // rank 1 dies before ever sending
		} else {
			r.Wait(1) // parked when the crash fires
		}
	})
	if err == nil {
		t.Fatal("Run succeeded despite a lost peer")
	}
	if errors.Is(err, sim.ErrDeadlock) {
		t.Fatalf("deadlocked instead of failing typed: %v", err)
	}
	if !errors.Is(err, fault.ErrRankLost) {
		t.Fatalf("error does not wrap fault.ErrRankLost: %v", err)
	}
	var rle *fault.RankLostError
	if !errors.As(err, &rle) || rle.Rank != 1 {
		t.Fatalf("error does not name rank 1: %v", err)
	}
}

func TestCrashedNodeCollectiveNeverDeadlocks(t *testing.T) {
	// Node 0 hosts ranks 0..7 on the 2x2x4 machine. Crash it mid-stream:
	// the allreduce loop on the pre-crash world communicator must abort
	// with a typed error on some survivor — never hang.
	_, err := Run(testSpec16(), identityBinding(16), Config{Faults: plan(t, "node:0@t=1ms")}, func(r *Rank) {
		w := r.World()
		for i := 0; i < 1000; i++ {
			w.Allreduce(r, F64Buf([]float64{float64(r.ID())}), OpSum)
			r.Wait(10e-6)
		}
	})
	if err == nil {
		t.Fatal("Run succeeded despite a crashed node")
	}
	if errors.Is(err, sim.ErrDeadlock) {
		t.Fatalf("deadlocked instead of failing typed: %v", err)
	}
	if !errors.Is(err, fault.ErrRankLost) {
		t.Fatalf("error does not wrap fault.ErrRankLost: %v", err)
	}
	var rle *fault.RankLostError
	if !errors.As(err, &rle) {
		t.Fatalf("no RankLostError in chain: %v", err)
	}
	if rle.Rank < 0 || rle.Rank > 7 {
		t.Fatalf("named rank %d is not on node 0: %v", rle.Rank, err)
	}
}

func TestSurvivorsShrinkAndContinue(t *testing.T) {
	var mu sync.Mutex
	shrunkSizes := map[int]int{}
	results := map[int]float64{}

	_, err := Run(testSpec16(), identityBinding(4), Config{Faults: plan(t, "rank:2@t=1ms")}, func(r *Rank) {
		w := r.World()
		caught := fault.Catch(func() {
			for i := 0; i < 200; i++ {
				w.Barrier(r)
				r.Wait(50e-6)
			}
		})
		if caught == nil {
			t.Errorf("rank %d finished the loop without observing the crash", r.ID())
			return
		}
		if !errors.Is(caught, fault.ErrRankLost) {
			t.Errorf("rank %d caught %v, not ErrRankLost", r.ID(), caught)
			return
		}
		// Recovery: shrink to the survivors and keep computing.
		nc := w.Shrink(r)
		sum := nc.Allreduce(r, F64Buf([]float64{float64(r.ID())}), OpSum)
		nc.Barrier(r)
		mu.Lock()
		shrunkSizes[r.ID()] = nc.Size()
		results[r.ID()] = sum.Data[0]
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("recovered run failed: %v", err)
	}
	if len(shrunkSizes) != 3 {
		t.Fatalf("%d survivors recovered, want 3 (%v)", len(shrunkSizes), shrunkSizes)
	}
	for id, sz := range shrunkSizes {
		if sz != 3 {
			t.Errorf("rank %d shrunk to size %d, want 3", id, sz)
		}
		if results[id] != 0+1+3 {
			t.Errorf("rank %d post-shrink allreduce = %v, want 4", id, results[id])
		}
	}
}

func TestDoubleCrashShrinkTwice(t *testing.T) {
	var mu sync.Mutex
	finalSizes := map[int]int{}

	_, err := Run(testSpec16(), identityBinding(4), Config{Faults: plan(t, "rank:1@t=1ms;rank:3@t=5ms")}, func(r *Rank) {
		w := r.World()
		comm := w
		for {
			caught := fault.Catch(func() {
				for i := 0; i < 1000; i++ {
					comm.Barrier(r)
					r.Wait(50e-6)
				}
			})
			if caught == nil {
				break
			}
			comm = comm.Shrink(r)
		}
		mu.Lock()
		finalSizes[r.ID()] = comm.Size()
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("double-crash recovery failed: %v", err)
	}
	if len(finalSizes) != 2 {
		t.Fatalf("%d survivors finished, want 2 (%v)", len(finalSizes), finalSizes)
	}
	for id, sz := range finalSizes {
		if sz != 2 {
			t.Errorf("rank %d final comm size %d, want 2", id, sz)
		}
	}
}

func TestOperationsOnRevokedCommFailFast(t *testing.T) {
	_, err := Run(testSpec16(), identityBinding(3), Config{Faults: plan(t, "rank:2@t=1ms")}, func(r *Rank) {
		w := r.World()
		if r.ID() == 2 {
			r.Wait(1)
			return
		}
		r.Wait(2e-3) // past the crash
		// Even rank 0 ↔ rank 1 traffic must fail: the world comm is revoked.
		caught := fault.Catch(func() {
			if r.ID() == 0 {
				w.Send(r, 1, 0, BytesBuf(8))
			} else {
				w.Recv(r, 0, 0)
			}
		})
		if !errors.Is(caught, fault.ErrRankLost) {
			t.Errorf("rank %d: op on revoked comm returned %v", r.ID(), caught)
		}
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestStraggleStretchesRank(t *testing.T) {
	body := func(r *Rank) {
		r.Wait(1e-3)
		r.World().Barrier(r)
	}
	base, err := Run(testSpec16(), identityBinding(4), Config{}, body)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(testSpec16(), identityBinding(4), Config{Faults: plan(t, "straggle:rank=1,factor=4")}, body)
	if err != nil {
		t.Fatal(err)
	}
	if slow < 3.9e-3 {
		t.Fatalf("straggler did not stretch the run: %v (base %v)", slow, base)
	}
	if base > 1.5e-3 {
		t.Fatalf("baseline unexpectedly slow: %v", base)
	}
}

func TestLinkDegradeSlowsTransfer(t *testing.T) {
	// Cores 0 and 8 are on different nodes: a 100 MB message runs at the
	// 10 GB/s NIC. Halving level 0 at t=0 must roughly double the time.
	binding := []int{0, 8}
	body := func(r *Rank) {
		w := r.World()
		if r.ID() == 0 {
			w.Send(r, 1, 0, BytesBuf(100<<20))
		} else {
			w.Recv(r, 0, 0)
		}
	}
	base, err := Run(testSpec16(), binding, Config{}, body)
	if err != nil {
		t.Fatal(err)
	}
	degraded, err := Run(testSpec16(), binding, Config{Faults: plan(t, "link:level=0,degrade=0.5")}, body)
	if err != nil {
		t.Fatal(err)
	}
	if degraded < 1.8*base {
		t.Fatalf("degraded run %v not ~2x baseline %v", degraded, base)
	}
}

// TestFaultReplayIdenticalTraces is the golden determinism test: the same
// seeded plan (including randomized chaos kills) replayed twice produces
// byte-identical virtual-time traces and the same final time.
func TestFaultReplayIdenticalTraces(t *testing.T) {
	run := func() (float64, []byte) {
		sc := obs.New(obs.Options{})
		end, err := Run(testSpec16(), identityBinding(16),
			Config{Obs: sc, Faults: plan(t, "seed=7;chaos:ranks=3,by=3ms;link:level=1,degrade=0.5@t=1ms")},
			func(r *Rank) {
				w := r.World()
				comm := w
				for {
					caught := fault.Catch(func() {
						for i := 0; i < 100; i++ {
							comm.Allreduce(r, F64Buf([]float64{1}), OpSum)
							r.Wait(20e-6)
						}
					})
					if caught == nil {
						return
					}
					comm = comm.Shrink(r)
				}
			})
		if err != nil {
			t.Fatalf("replay run failed: %v", err)
		}
		var buf bytes.Buffer
		if err := obs.WriteTraceJSON(&buf, sc); err != nil {
			t.Fatal(err)
		}
		return end, buf.Bytes()
	}
	end1, trace1 := run()
	end2, trace2 := run()
	if end1 != end2 {
		t.Fatalf("final times differ: %v vs %v", end1, end2)
	}
	if !bytes.Equal(trace1, trace2) {
		t.Fatalf("traces differ across replay (%d vs %d bytes)", len(trace1), len(trace2))
	}
	// The trace must carry the plan identity and the crash markers.
	s := string(trace1)
	for _, want := range []string{"fault_seed", "fault_plan_hash", "fault:crash"} {
		if !strings.Contains(s, want) {
			t.Errorf("trace missing %q", want)
		}
	}
}

func TestDeadlockReportNamesLostRanks(t *testing.T) {
	// Rank 0 ignores the typed error and waits on a fresh condition that
	// can never fire: the deadlock report must still name the lost rank.
	_, err := Run(testSpec16(), identityBinding(2), Config{Faults: plan(t, "rank:1@t=1ms")}, func(r *Rank) {
		if r.ID() == 1 {
			r.Wait(1)
			return
		}
		_ = fault.Catch(func() { r.World().Recv(r, 1, 0) })
		// Buggy recovery: blocks forever instead of shrinking.
		r.w.engine.NewCondition().Await(r.proc)
	})
	if !errors.Is(err, sim.ErrDeadlock) {
		t.Fatalf("expected deadlock, got %v", err)
	}
	if !strings.Contains(err.Error(), "rank 1 lost") {
		t.Fatalf("deadlock report does not name the lost rank: %v", err)
	}
}
