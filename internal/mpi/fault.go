// Fault injection against a live world: crashing ranks and nodes, slowing
// stragglers, degrading link levels — all at exact virtual times from a
// deterministic fault.Plan — plus the ULFM-style recovery surface
// (communicator revocation and Shrink) that lets surviving ranks continue.
//
// Semantics on a crash of world rank f at virtual time t:
//
//   - f's process is killed: if parked on an operation it never resumes,
//     and its goroutine exits cleanly.
//   - Every communicator created before the crash is revoked (the world
//     epoch is bumped). Any subsequent operation on a revoked communicator
//     aborts with an error wrapping fault.ErrRankLost naming f, so no rank
//     can silently keep collective sequence numbers that the dead member
//     will never match.
//   - Every unmatched receive posted against f, and every unmatched
//     rendezvous send addressed to f, is failed: blocked survivors wake
//     and abort with the same typed error. Transfers already matched and
//     in flight complete — the bytes were on the wire.
//   - Survivors that catch the abort (fault.Catch) call Shrink on the
//     revoked communicator to obtain a fresh communicator of the living
//     members and continue.
//
// Lock order note: event callbacks run with the engine lock held and take
// w.mu here, while process-context code takes w.mu first and then the
// engine lock. This cannot deadlock because the engine fires callbacks
// only when no process goroutine is executing (running == 0), so no
// process can be inside a w.mu critical section at callback time.

package mpi

import (
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
)

// ApplyFaults schedules the plan's events against the world. Call after
// Spawn and before the engine runs; a nil or empty plan is a no-op. The
// plan's seed and hash are recorded in the obs scope's run metadata so
// exported traces and metrics identify the exact degraded configuration.
func (w *World) ApplyFaults(plan *fault.Plan) error {
	if plan.Empty() {
		return nil
	}
	if err := plan.Validate(); err != nil {
		return err
	}
	w.faulty = true
	if sc := w.cfg.Obs; sc != nil {
		sc.SetMeta("fault_seed", fmt.Sprint(plan.Seed))
		sc.SetMeta("fault_plan_hash", plan.Hash())
		sc.SetMeta("fault_plan", plan.String())
	}
	for _, ev := range plan.Materialize(w.Size(), w.coresPerNode) {
		ev := ev
		switch ev.Kind {
		case fault.KindRank:
			w.engine.At(ev.At, func() { w.killRankLocked(ev.Target) })
		case fault.KindNode:
			w.engine.At(ev.At, func() { w.killNodeLocked(ev.Target) })
		case fault.KindStraggle:
			if ev.At == 0 {
				// Processes are released at t=0 before any event fires, so
				// a t=0 straggler must be slow from its very first step.
				w.mu.Lock()
				w.straggle[ev.Target] = ev.Factor
				w.mu.Unlock()
				continue
			}
			w.engine.At(ev.At, func() { w.straggleRankLocked(ev.Target, ev.Factor) })
		case fault.KindLink:
			w.engine.At(ev.At, func() { w.degradeLevelLocked(ev.Level, ev.Factor) })
		}
	}
	return nil
}

// straggleOf returns the rank's current slowdown factor (>= 1).
func (w *World) straggleOf(rank int) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.straggle[rank]
}

// stretchLocked returns the latency stretch for a message between two
// ranks: the slower endpoint's straggle factor. Callers hold w.mu.
func (w *World) stretchLocked(src, dst int) float64 {
	if !w.faulty {
		return 1
	}
	s := w.straggle[src]
	if d := w.straggle[dst]; d > s {
		s = d
	}
	return s
}

// Lost reports whether a world rank has crashed.
func (w *World) Lost(rank int) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lost[rank]
}

// LostRanks returns the crashed world ranks, ascending.
func (w *World) LostRanks() []int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sortedLostLocked()
}

func (w *World) sortedLostLocked() []int {
	out := append([]int(nil), w.lostList...)
	sort.Ints(out)
	return out
}

// AliveRanks returns the surviving world ranks, ascending.
func (w *World) AliveRanks() []int {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]int, 0, len(w.lost))
	for r, dead := range w.lost {
		if !dead {
			out = append(out, r)
		}
	}
	return out
}

// FailedCores returns the cores of crashed ranks, ascending — the input
// for topology.Hierarchy.Degrade.
func (w *World) FailedCores() []int {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]int, 0, len(w.lostList))
	for _, r := range w.lostList {
		out = append(out, w.binding[r])
	}
	sort.Ints(out)
	return out
}

// Epoch returns the world's failure epoch: 0 on a perfect machine, bumped
// on every crash. Communicators remember the epoch they were created in
// and are revoked when it changes.
func (w *World) Epoch() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.epoch
}

// rankLostErrLocked builds the typed error for an operation failed by the
// loss of the given rank. Callers hold w.mu.
func (w *World) rankLostErrLocked(op string, rank int, at float64) error {
	return &fault.RankLostError{
		Rank:  rank,
		Node:  w.nodeOf(w.binding[rank]),
		At:    at,
		Op:    op,
		Ranks: w.sortedLostLocked(),
	}
}

// revokedErrLocked builds the typed error for an operation on a revoked
// communicator; it names the most recent crash. Callers hold w.mu.
func (w *World) revokedErrLocked(op string) error {
	e := w.lastLoss // copy
	e.Op = op
	e.Ranks = w.sortedLostLocked()
	return fmt.Errorf("mpi: communicator revoked: %w", &e)
}

// killNodeLocked crashes every rank bound to a core of the node. Runs in
// event-callback context (engine lock held).
func (w *World) killNodeLocked(node int) {
	for r, core := range w.binding {
		if w.nodeOf(core) == node {
			w.killRankLocked(r)
		}
	}
}

// killRankLocked crashes one world rank. Runs in event-callback context
// (engine lock held).
func (w *World) killRankLocked(rank int) {
	now := w.engine.NowLocked()
	w.mu.Lock()
	if w.lost[rank] {
		w.mu.Unlock()
		return
	}
	w.lost[rank] = true
	w.lostList = append(w.lostList, rank)
	w.epoch++
	w.lastLoss = fault.RankLostError{Rank: rank, Node: w.nodeOf(w.binding[rank]), At: now}

	// Kill the process first: if it was parked, it wakes exactly once (to
	// die), and the condition failures below cannot double-wake it.
	w.procs[rank].KillLocked()

	// Poison every unmatched point-to-point operation, world-wide. All of
	// them belong to communicators created before this crash — which are
	// all revoked now — so none can legally match again: a pre-crash
	// receive can only be matched by a peer's later send, and that send is
	// stopped by the revocation guard. Failing them here is what makes
	// recovery composable: a survivor blocked on another survivor (which
	// aborted out of the same collective) wakes with the typed error
	// instead of hanging. Matched transfers already in flight complete —
	// the bytes were on the wire. Conditions collect first and fail after
	// the queues are consistent.
	var failed []*sim.Condition
	for dst := range w.mail {
		for key, q := range w.mail[dst] {
			for _, rv := range q.recvs {
				failed = append(failed, rv.fin)
			}
			for _, snd := range q.sends {
				if !snd.started {
					failed = append(failed, snd.senderFin)
				}
			}
			delete(w.mail[dst], key)
		}
	}
	// Pending splits can never complete: a member is gone and the
	// communicator is revoked either way.
	for sk, st := range w.splits {
		failed = append(failed, st.done)
		delete(w.splits, sk)
	}
	err := w.rankLostErrLocked("", rank, now)
	w.engine.SetDeadlockNoteLocked(fault.LostRanks(w.sortedLostLocked()))

	// A pending shrink may become complete now that this rank no longer
	// counts as a required participant.
	var shrinksDone []*sim.Condition
	for _, st := range w.shrinks {
		if w.tryFinishShrinkLocked(st) {
			shrinksDone = append(shrinksDone, st.done)
		}
	}

	if sc := w.cfg.Obs; sc != nil {
		core := w.binding[rank]
		sc.Instant(w.nodeOf(core), rank, "fault:crash", "fault", now,
			obs.Arg{Key: "rank", Val: int64(rank)},
			obs.Arg{Key: "core", Val: int64(core)})
		sc.Registry().Counter("mpi_faults_total", obs.L("kind", "crash")).AddInt(1)
		sc.Registry().Gauge("mpi_ranks_lost").Add(1)
	}
	w.mu.Unlock()

	for _, c := range failed {
		c.FailLocked(err)
	}
	for _, c := range shrinksDone {
		c.FireLocked()
	}
}

// straggleRankLocked applies a slowdown factor to one rank. Runs in
// event-callback context (engine lock held).
func (w *World) straggleRankLocked(rank int, factor float64) {
	w.mu.Lock()
	w.straggle[rank] = factor
	w.mu.Unlock()
	if sc := w.cfg.Obs; sc != nil {
		core := w.binding[rank]
		sc.Instant(w.nodeOf(core), rank, "fault:straggle", "fault", w.engine.NowLocked(),
			obs.Arg{Key: "rank", Val: int64(rank)},
			obs.Arg{Key: "factor_x1000", Val: int64(factor * 1000)})
		sc.Registry().Counter("mpi_faults_total", obs.L("kind", "straggle")).AddInt(1)
	}
}

// degradeLevelLocked degrades every link at one hierarchy level. Runs in
// event-callback context (engine lock held).
func (w *World) degradeLevelLocked(level int, factor float64) {
	w.platform.DegradeLevel(level, factor)
	if sc := w.cfg.Obs; sc != nil {
		sc.Instant(0, 0, "fault:link", "fault", w.engine.NowLocked(),
			obs.Arg{Key: "level", Val: int64(level)},
			obs.Arg{Key: "factor_x1000", Val: int64(factor * 1000)})
		sc.Registry().Counter("mpi_faults_total", obs.L("kind", "link")).AddInt(1)
	}
}

// guard aborts the calling rank if the communicator was revoked by a crash
// or the addressed peer (world rank; pass -1 for none) is dead. It is the
// entry check of every communicator operation, skipped entirely on a
// perfect machine.
func (c *Comm) guard(op string, peerWorld int) {
	w := c.w
	if !w.faulty {
		return
	}
	w.mu.Lock()
	var err error
	switch {
	case c.epoch != w.epoch:
		err = w.revokedErrLocked(op)
	case peerWorld >= 0 && w.lost[peerWorld]:
		err = fmt.Errorf("mpi: %w", w.rankLostErrLocked(op, peerWorld, w.lastLoss.At))
	}
	w.mu.Unlock()
	if err != nil {
		panic(sim.Abort{Err: err})
	}
}

// shrinkKey identifies one collective Shrink call site: survivors execute
// the same collective sequence, so (comm, seq) matches their calls up.
type shrinkKey struct {
	commID int
	seq    int64
}

type shrinkState struct {
	comm    *Comm // any member's handle; group/id shared
	key     shrinkKey
	arrived map[int]bool // world ranks that entered Shrink
	done    *sim.Condition
	result  map[int]*commSpec
}

// Shrink derives a new communicator containing the surviving members of c,
// preserving their relative rank order — the ULFM recovery primitive. All
// living members must call it (like a collective); it completes when they
// have, even if further members crash while the shrink is in progress.
// Unlike every other operation, Shrink works on a revoked communicator:
// that is its purpose. Ranks whose color/key games are done should then
// re-split the shrunk communicator as usual.
func (c *Comm) Shrink(r *Rank) *Comm {
	seq := c.nextSeq()
	w := c.w
	me := c.group[c.rank]

	w.mu.Lock()
	if w.lost[me] {
		// Cannot happen: a dead rank's goroutine never runs.
		w.mu.Unlock()
		panic("mpi: dead rank called Shrink")
	}
	sk := shrinkKey{commID: c.id, seq: seq}
	st := w.shrinks[sk]
	if st == nil {
		st = &shrinkState{
			comm:    c,
			key:     sk,
			arrived: make(map[int]bool),
			done:    w.engine.NewCondition(),
		}
		w.shrinks[sk] = st
	}
	st.arrived[me] = true
	finished := w.tryFinishShrinkLocked(st)
	w.mu.Unlock()

	if finished {
		st.done.Fire()
	} else {
		st.done.AwaitOp(r.proc, "Shrink", -1, 0)
	}
	spec := st.result[me]
	if spec == nil {
		// Only possible if this rank was killed between arriving and the
		// shrink completing — in which case it never gets here.
		panic(sim.Abort{Err: fmt.Errorf("mpi: shrink lost caller: %w", fault.ErrRankLost)})
	}
	return &Comm{w: w, id: spec.id, group: spec.group, rank: spec.rank, epoch: spec.epoch}
}

// tryFinishShrinkLocked completes the shrink if every surviving member of
// the communicator has arrived, computing the new communicator layout.
// Returns true when it completed in this call; the caller then fires
// st.done (after releasing w.mu). Callers hold w.mu.
func (w *World) tryFinishShrinkLocked(st *shrinkState) bool {
	if st.result != nil {
		return false
	}
	group := make([]int, 0, len(st.comm.group))
	for _, wr := range st.comm.group {
		if w.lost[wr] {
			continue
		}
		if !st.arrived[wr] {
			return false // a survivor has not arrived yet
		}
		group = append(group, wr)
	}
	id := w.commSeq
	w.commSeq++
	st.result = make(map[int]*commSpec, len(group))
	for i, wr := range group {
		st.result[wr] = &commSpec{id: id, group: group, rank: i, epoch: w.epoch}
	}
	delete(w.shrinks, st.key)
	if sc := w.cfg.Obs; sc != nil {
		sc.Registry().Counter("mpi_shrinks_total").AddInt(1)
		sc.Registry().Counter("mpi_comms_created_total", obs.L("size", fmt.Sprintf("%d", len(group)))).AddInt(1)
	}
	return true
}
