package mpi

import "testing"

func TestGatherv(t *testing.T) {
	for _, root := range []int{0, 3} {
		runWorld(t, 6, Config{}, func(r *Rank) {
			w := r.World()
			data := make([]float64, r.ID()+1) // uneven sizes
			for i := range data {
				data[i] = float64(r.ID()*10 + i)
			}
			recv := w.Gatherv(r, root, F64Buf(data))
			if r.ID() != root {
				if recv != nil {
					t.Errorf("non-root %d got data", r.ID())
				}
				return
			}
			for s := 0; s < 6; s++ {
				if len(recv[s].Data) != s+1 {
					t.Errorf("root %d: block %d has %d elems, want %d", root, s, len(recv[s].Data), s+1)
					continue
				}
				if recv[s].Data[0] != float64(s*10) {
					t.Errorf("root %d: block %d = %v", root, s, recv[s].Data)
				}
			}
		})
	}
}

func TestScatterv(t *testing.T) {
	for _, root := range []int{0, 2} {
		runWorld(t, 5, Config{}, func(r *Rank) {
			w := r.World()
			var send []Buf
			if r.ID() == root {
				send = make([]Buf, 5)
				for i := range send {
					data := make([]float64, i+2) // uneven
					for j := range data {
						data[j] = float64(i*100 + j)
					}
					send[i] = F64Buf(data)
				}
			}
			got := w.Scatterv(r, root, send)
			if len(got.Data) != r.ID()+2 || got.Data[0] != float64(r.ID()*100) {
				t.Errorf("rank %d got %v", r.ID(), got.Data)
			}
		})
	}
}

func TestAllgatherv(t *testing.T) {
	runWorld(t, 5, Config{}, func(r *Rank) {
		w := r.World()
		data := make([]float64, r.ID()+1)
		for i := range data {
			data[i] = float64(r.ID())
		}
		recv := w.Allgatherv(r, F64Buf(data))
		for s := 0; s < 5; s++ {
			if len(recv[s].Data) != s+1 || recv[s].Data[0] != float64(s) {
				t.Errorf("rank %d: block %d = %v", r.ID(), s, recv[s].Data)
			}
		}
	})
}

func TestExscan(t *testing.T) {
	for _, n := range []int{8, 5} {
		runWorld(t, n, Config{}, func(r *Rank) {
			w := r.World()
			out := w.Exscan(r, F64Buf([]float64{float64(r.ID() + 1)}), OpSum)
			if r.ID() == 0 {
				if out.Data != nil && len(out.Data) > 0 && out.Data[0] != 0 {
					t.Errorf("rank 0 exscan = %v, want empty/zero", out.Data)
				}
				return
			}
			want := float64(r.ID() * (r.ID() + 1) / 2) // 1+2+…+rank
			if len(out.Data) != 1 || out.Data[0] != want {
				t.Errorf("n=%d rank %d exscan = %v, want %v", n, r.ID(), out.Data, want)
			}
		})
	}
}

func TestExscanConsistentWithScan(t *testing.T) {
	runWorld(t, 7, Config{}, func(r *Rank) {
		w := r.World()
		mine := F64Buf([]float64{float64(r.ID()*3 + 1)})
		inc := w.Scan(r, mine, OpSum)
		exc := w.Exscan(r, mine, OpSum)
		if r.ID() == 0 {
			return
		}
		// inclusive = exclusive + mine.
		if inc.Data[0] != exc.Data[0]+mine.Data[0] {
			t.Errorf("rank %d: scan %v != exscan %v + mine %v",
				r.ID(), inc.Data[0], exc.Data[0], mine.Data[0])
		}
	})
}

func TestGathervTraced(t *testing.T) {
	tr := &recordingTracer{}
	_, err := Run(testSpec16(), identityBinding(4), Config{Tracer: tr}, func(r *Rank) {
		w := r.World()
		w.Gatherv(r, 0, BytesBuf(int64(100*(r.ID()+1))))
		w.Allgatherv(r, BytesBuf(64))
		w.Exscan(r, BytesBuf(8), OpSum)
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	ops := map[string]int{}
	for _, rec := range tr.recs {
		ops[rec.op]++
	}
	for _, op := range []string{"Gatherv", "Allgatherv", "Exscan"} {
		if ops[op] != 4 {
			t.Errorf("%s traced %d times, want 4", op, ops[op])
		}
	}
}
