// Buffers carried by simulated messages. A Buf either carries real float64
// payload (applications like the CPD and CG solvers) or only a byte count
// (micro-benchmarks), so collective algorithms are written once and serve
// both the numeric and the synthetic workloads.

package mpi

import "fmt"

// Buf is a message payload: a byte count and, optionally, real data. When
// Data is non-nil, Bytes must equal 8·len(Data).
type Buf struct {
	Bytes int64
	Data  []float64
}

// BytesBuf returns a synthetic payload of n bytes.
func BytesBuf(n int64) Buf {
	if n < 0 {
		panic("mpi: negative buffer size")
	}
	return Buf{Bytes: n}
}

// F64Buf returns a payload carrying real float64 data.
func F64Buf(data []float64) Buf {
	return Buf{Bytes: int64(len(data)) * 8, Data: data}
}

// IsData reports whether the buffer carries real payload.
func (b Buf) IsData() bool { return b.Data != nil }

// check panics on an internally inconsistent buffer.
func (b Buf) check() {
	if b.Data != nil && b.Bytes != int64(len(b.Data))*8 {
		panic(fmt.Sprintf("mpi: inconsistent Buf: %d bytes, %d elements", b.Bytes, len(b.Data)))
	}
	if b.Bytes < 0 {
		panic("mpi: negative Buf size")
	}
}

// Clone returns a deep copy (messages must not alias sender memory).
func (b Buf) Clone() Buf {
	if b.Data == nil {
		return b
	}
	d := make([]float64, len(b.Data))
	copy(d, b.Data)
	return Buf{Bytes: b.Bytes, Data: d}
}

// Concat appends the payloads in order.
func Concat(bufs ...Buf) Buf {
	var total int64
	data := true
	n := 0
	for _, b := range bufs {
		b.check()
		total += b.Bytes
		if b.Data == nil && b.Bytes > 0 {
			data = false
		}
		n += len(b.Data)
	}
	if !data {
		return Buf{Bytes: total}
	}
	out := make([]float64, 0, n)
	for _, b := range bufs {
		out = append(out, b.Data...)
	}
	return Buf{Bytes: total, Data: out}
}

// SplitEven cuts the buffer into parts nearly equal chunks: the first
// Bytes%parts·… — precisely, chunk sizes follow the MPI block distribution
// of len(Data) (or Bytes/8 synthetic elements) over parts. It panics if the
// element count is not divisible when exactness is required by callers;
// uneven tails go to the last chunk only when allowUneven.
func (b Buf) SplitEven(parts int) []Buf {
	b.check()
	if parts <= 0 {
		panic("mpi: SplitEven with no parts")
	}
	out := make([]Buf, parts)
	if b.Data != nil {
		n := len(b.Data)
		for i := 0; i < parts; i++ {
			lo, hi := n*i/parts, n*(i+1)/parts
			out[i] = F64Buf(b.Data[lo:hi])
		}
		return out
	}
	// Synthetic: distribute bytes in the same block pattern.
	for i := 0; i < parts; i++ {
		lo := b.Bytes * int64(i) / int64(parts)
		hi := b.Bytes * int64(i+1) / int64(parts)
		out[i] = BytesBuf(hi - lo)
	}
	return out
}

// ReduceOp combines two equal-length payloads elementwise.
type ReduceOp int

// Supported reduction operations.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

func (op ReduceOp) String() string {
	switch op {
	case OpSum:
		return "sum"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	}
	return fmt.Sprintf("ReduceOp(%d)", int(op))
}

// Combine applies the reduction to two buffers of equal size. Synthetic
// buffers combine into a synthetic buffer of the same size; mixing a data
// and a synthetic buffer yields a synthetic buffer.
func Combine(op ReduceOp, a, b Buf) Buf {
	a.check()
	b.check()
	if a.Bytes != b.Bytes {
		panic(fmt.Sprintf("mpi: Combine size mismatch: %d vs %d bytes", a.Bytes, b.Bytes))
	}
	if a.Data == nil || b.Data == nil {
		return Buf{Bytes: a.Bytes}
	}
	out := make([]float64, len(a.Data))
	switch op {
	case OpSum:
		for i := range out {
			out[i] = a.Data[i] + b.Data[i]
		}
	case OpMax:
		for i := range out {
			out[i] = max(a.Data[i], b.Data[i])
		}
	case OpMin:
		for i := range out {
			out[i] = min(a.Data[i], b.Data[i])
		}
	default:
		panic("mpi: unknown reduce op")
	}
	return F64Buf(out)
}
