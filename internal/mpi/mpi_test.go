package mpi

import (
	"math"
	"sync"
	"testing"

	"repro/internal/netmodel"
)

// testSpec16 is the ⟦2,2,4⟧ machine of the netmodel tests.
func testSpec16() netmodel.Spec {
	return netmodel.Spec{
		Name: "test",
		Levels: []netmodel.LevelSpec{
			{Name: "node", Arity: 2, UpBandwidth: 10e9, BusBandwidth: 50e9, Latency: 2e-6},
			{Name: "socket", Arity: 2, UpBandwidth: 20e9, BusBandwidth: 30e9, Latency: 1e-6, MemBandwidth: 30e9},
			{Name: "core", Arity: 4, Latency: 0.1e-6},
		},
		CoreFlops: 1e9,
	}
}

func identityBinding(n int) []int {
	b := make([]int, n)
	for i := range b {
		b[i] = i
	}
	return b
}

// runWorld executes body on n ranks with identity binding and returns the
// final virtual time.
func runWorld(t *testing.T, n int, cfg Config, body func(r *Rank)) float64 {
	t.Helper()
	end, err := Run(testSpec16(), identityBinding(n), cfg, body)
	if err != nil {
		t.Fatal(err)
	}
	return end
}

func TestSendRecvPayload(t *testing.T) {
	runWorld(t, 2, Config{}, func(r *Rank) {
		w := r.World()
		if r.ID() == 0 {
			w.Send(r, 1, 7, F64Buf([]float64{1, 2, 3}))
		} else {
			got := w.Recv(r, 0, 7)
			if len(got.Data) != 3 || got.Data[0] != 1 || got.Data[2] != 3 {
				t.Errorf("received %v", got.Data)
			}
		}
	})
}

func TestSendRecvLargeRendezvous(t *testing.T) {
	// 1 MB > eager threshold: sender must block until the receiver posts.
	var sendDone, recvPosted float64
	runWorld(t, 2, Config{}, func(r *Rank) {
		w := r.World()
		if r.ID() == 0 {
			w.Send(r, 1, 0, BytesBuf(1<<20))
			sendDone = r.Now()
		} else {
			r.Wait(0.5) // receiver arrives late
			recvPosted = r.Now()
			w.Recv(r, 0, 0)
		}
	})
	if sendDone < recvPosted {
		t.Errorf("rendezvous send completed at %v before receiver posted at %v", sendDone, recvPosted)
	}
}

func TestEagerSendReturnsImmediately(t *testing.T) {
	var sendDone float64
	runWorld(t, 2, Config{}, func(r *Rank) {
		w := r.World()
		if r.ID() == 0 {
			w.Send(r, 1, 0, BytesBuf(512)) // below eager threshold
			sendDone = r.Now()
		} else {
			r.Wait(0.25)
			w.Recv(r, 0, 0)
		}
	})
	if sendDone > 1e-3 {
		t.Errorf("eager send blocked until %v", sendDone)
	}
}

func TestMessageOrderingFIFO(t *testing.T) {
	// Two same-tag messages must arrive in posting order.
	runWorld(t, 2, Config{}, func(r *Rank) {
		w := r.World()
		if r.ID() == 0 {
			w.Send(r, 1, 0, F64Buf([]float64{1}))
			w.Send(r, 1, 0, F64Buf([]float64{2}))
		} else {
			a := w.Recv(r, 0, 0)
			b := w.Recv(r, 0, 0)
			if a.Data[0] != 1 || b.Data[0] != 2 {
				t.Errorf("out of order: %v then %v", a.Data, b.Data)
			}
		}
	})
}

func TestSendrecvExchange(t *testing.T) {
	runWorld(t, 2, Config{}, func(r *Rank) {
		w := r.World()
		peer := 1 - r.ID()
		got := w.Sendrecv(r, peer, F64Buf([]float64{float64(r.ID())}), peer, 3)
		if got.Data[0] != float64(peer) {
			t.Errorf("rank %d received %v", r.ID(), got.Data)
		}
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	var mu sync.Mutex
	var after []float64
	runWorld(t, 8, Config{}, func(r *Rank) {
		r.Wait(float64(r.ID()) * 0.01) // staggered arrival
		r.World().Barrier(r)
		mu.Lock()
		after = append(after, r.Now())
		mu.Unlock()
	})
	// Everyone leaves the barrier no earlier than the last arrival (0.07).
	for _, tm := range after {
		if tm < 0.07 {
			t.Errorf("rank left barrier at %v, before last arrival", tm)
		}
	}
}

func TestSplitGroupsAndKeys(t *testing.T) {
	// Split 16 ranks into 4 comms by rank%4, keyed by -rank (reverses order).
	type result struct{ color, newRank, size int }
	results := make([]result, 16)
	runWorld(t, 16, Config{}, func(r *Rank) {
		w := r.World()
		color := r.ID() % 4
		sub := w.Split(r, color, -r.ID())
		results[r.ID()] = result{color, sub.Rank(), sub.Size()}
	})
	for id, res := range results {
		if res.size != 4 {
			t.Errorf("rank %d: comm size %d", id, res.size)
		}
		// Keys are -id: highest id gets rank 0 within its colour.
		wantRank := (15 - id) / 4
		if res.newRank != wantRank {
			t.Errorf("rank %d: comm rank %d, want %d", id, res.newRank, wantRank)
		}
	}
}

func TestSplitUndefinedColor(t *testing.T) {
	runWorld(t, 4, Config{}, func(r *Rank) {
		sub := r.World().Split(r, map[bool]int{true: 0, false: -1}[r.ID() < 2], r.ID())
		if r.ID() < 2 {
			if sub == nil || sub.Size() != 2 {
				t.Errorf("rank %d: expected comm of 2", r.ID())
			}
		} else if sub != nil {
			t.Errorf("rank %d: expected nil comm", r.ID())
		}
	})
}

func TestSplitDisjointTags(t *testing.T) {
	// Concurrent collectives in two subcommunicators must not interfere.
	runWorld(t, 8, Config{}, func(r *Rank) {
		sub := r.World().Split(r, r.ID()/4, r.ID())
		out := sub.Allreduce(r, F64Buf([]float64{float64(r.ID())}), OpSum)
		want := 0.0
		base := (r.ID() / 4) * 4
		for i := base; i < base+4; i++ {
			want += float64(i)
		}
		if out.Data[0] != want {
			t.Errorf("rank %d: allreduce %v, want %v", r.ID(), out.Data[0], want)
		}
	})
}

// checkAlltoall verifies payload correctness for a forced algorithm.
func checkAlltoall(t *testing.T, n int, alg string, blockElems int) {
	t.Helper()
	runWorld(t, n, Config{ForceAlltoall: alg}, func(r *Rank) {
		w := r.World()
		send := make([]Buf, n)
		for d := 0; d < n; d++ {
			data := make([]float64, blockElems)
			for j := range data {
				data[j] = float64(r.ID()*1000+d) + float64(j)/1000
			}
			send[d] = F64Buf(data)
		}
		recv := w.Alltoall(r, send)
		for s := 0; s < n; s++ {
			want := float64(s*1000 + r.ID())
			if len(recv[s].Data) != blockElems || recv[s].Data[0] != want {
				t.Errorf("alg=%s rank %d from %d: got %v elems first=%v, want first=%v",
					alg, r.ID(), s, len(recv[s].Data), recv[s].Data[0], want)
				return
			}
		}
	})
}

func TestAlltoallPairwise(t *testing.T)        { checkAlltoall(t, 8, "pairwise", 4) }
func TestAlltoallPairwiseNonPow2(t *testing.T) { checkAlltoall(t, 6, "pairwise", 4) }
func TestAlltoallBruck(t *testing.T)           { checkAlltoall(t, 8, "bruck", 4) }
func TestAlltoallBruckNonPow2(t *testing.T)    { checkAlltoall(t, 7, "bruck", 4) }
func TestAlltoallLinear(t *testing.T)          { checkAlltoall(t, 8, "linear", 4) }
func TestAlltoallAuto(t *testing.T)            { checkAlltoall(t, 8, "", 4) }

func TestAlltoallvUneven(t *testing.T) {
	n := 4
	runWorld(t, n, Config{}, func(r *Rank) {
		w := r.World()
		send := make([]Buf, n)
		for d := 0; d < n; d++ {
			data := make([]float64, r.ID()+d+1) // uneven sizes
			for j := range data {
				data[j] = float64(r.ID()*10 + d)
			}
			send[d] = F64Buf(data)
		}
		recv := w.Alltoall(r, send)
		for s := 0; s < n; s++ {
			wantLen := s + r.ID() + 1
			if len(recv[s].Data) != wantLen || recv[s].Data[0] != float64(s*10+r.ID()) {
				t.Errorf("rank %d from %d: %v (want len %d)", r.ID(), s, recv[s].Data, wantLen)
			}
		}
	})
}

func checkAllgather(t *testing.T, n int, alg string) {
	t.Helper()
	runWorld(t, n, Config{ForceAllgather: alg}, func(r *Rank) {
		w := r.World()
		mine := F64Buf([]float64{float64(r.ID()), float64(r.ID() * 2)})
		recv := w.Allgather(r, mine)
		for s := 0; s < n; s++ {
			if len(recv[s].Data) != 2 || recv[s].Data[0] != float64(s) || recv[s].Data[1] != float64(2*s) {
				t.Errorf("alg=%s rank %d block %d = %v", alg, r.ID(), s, recv[s].Data)
				return
			}
		}
	})
}

func TestAllgatherRing(t *testing.T)        { checkAllgather(t, 8, "ring") }
func TestAllgatherRingNonPow2(t *testing.T) { checkAllgather(t, 5, "ring") }
func TestAllgatherRecDoubling(t *testing.T) { checkAllgather(t, 8, "rdoubling") }
func TestAllgatherLinear(t *testing.T)      { checkAllgather(t, 8, "linear") }
func TestAllgatherAuto(t *testing.T)        { checkAllgather(t, 8, "") }

func checkAllreduce(t *testing.T, n int, alg string, elems int) {
	t.Helper()
	runWorld(t, n, Config{ForceAllreduce: alg}, func(r *Rank) {
		w := r.World()
		data := make([]float64, elems)
		for j := range data {
			data[j] = float64(r.ID() + j)
		}
		out := w.Allreduce(r, F64Buf(data), OpSum)
		for j := 0; j < elems; j++ {
			want := float64(n*(n-1)/2 + n*j)
			if math.Abs(out.Data[j]-want) > 1e-9 {
				t.Errorf("alg=%s rank %d elem %d = %v, want %v", alg, r.ID(), j, out.Data[j], want)
				return
			}
		}
	})
}

func TestAllreduceRecDoubling(t *testing.T) { checkAllreduce(t, 8, "rdoubling", 16) }
func TestAllreduceRing(t *testing.T)        { checkAllreduce(t, 8, "ring", 16) }
func TestAllreduceRingNonPow2(t *testing.T) { checkAllreduce(t, 6, "ring", 12) }
func TestAllreduceAuto(t *testing.T)        { checkAllreduce(t, 8, "", 16) }

func TestAllreduceMaxMin(t *testing.T) {
	runWorld(t, 8, Config{}, func(r *Rank) {
		w := r.World()
		v := F64Buf([]float64{float64(r.ID())})
		mx := w.Allreduce(r, v, OpMax)
		mn := w.Allreduce(r, v, OpMin)
		if mx.Data[0] != 7 || mn.Data[0] != 0 {
			t.Errorf("rank %d: max %v min %v", r.ID(), mx.Data[0], mn.Data[0])
		}
	})
}

func checkBcast(t *testing.T, n int, alg string, elems int, root int) {
	t.Helper()
	runWorld(t, n, Config{ForceBcast: alg}, func(r *Rank) {
		w := r.World()
		data := make([]float64, elems)
		if r.ID() == root {
			for j := range data {
				data[j] = 100 + float64(j)
			}
		}
		out := w.Bcast(r, root, F64Buf(data))
		for j := 0; j < elems; j++ {
			if out.Data[j] != 100+float64(j) {
				t.Errorf("alg=%s rank %d elem %d = %v", alg, r.ID(), j, out.Data[j])
				return
			}
		}
	})
}

func TestBcastBinomial(t *testing.T)        { checkBcast(t, 8, "binomial", 8, 0) }
func TestBcastBinomialRoot3(t *testing.T)   { checkBcast(t, 8, "binomial", 8, 3) }
func TestBcastBinomialNonPow2(t *testing.T) { checkBcast(t, 7, "binomial", 8, 2) }
func TestBcastChain(t *testing.T)           { checkBcast(t, 8, "chain", 40000, 0) }
func TestBcastChainRoot5(t *testing.T)      { checkBcast(t, 8, "chain", 40000, 5) }
func TestBcastAuto(t *testing.T)            { checkBcast(t, 8, "", 8, 0) }

func TestReduceBinomial(t *testing.T) {
	for _, root := range []int{0, 3} {
		runWorld(t, 8, Config{}, func(r *Rank) {
			w := r.World()
			out := w.Reduce(r, root, F64Buf([]float64{float64(r.ID()), 1}), OpSum)
			if r.ID() == root {
				if out.Data[0] != 28 || out.Data[1] != 8 {
					t.Errorf("root %d: reduce = %v", root, out.Data)
				}
			} else if out.Data != nil {
				t.Errorf("non-root %d got data", r.ID())
			}
		})
	}
}

func TestGather(t *testing.T) {
	for _, n := range []int{8, 5} {
		for _, root := range []int{0, 2} {
			runWorld(t, n, Config{}, func(r *Rank) {
				w := r.World()
				recv := w.Gather(r, root, F64Buf([]float64{float64(r.ID()), float64(r.ID() * 3)}))
				if r.ID() != root {
					if recv != nil {
						t.Errorf("non-root %d got data", r.ID())
					}
					return
				}
				for s := 0; s < n; s++ {
					if len(recv[s].Data) != 2 || recv[s].Data[0] != float64(s) || recv[s].Data[1] != float64(3*s) {
						t.Errorf("n=%d root=%d block %d = %v", n, root, s, recv[s].Data)
					}
				}
			})
		}
	}
}

func TestScatter(t *testing.T) {
	for _, n := range []int{8, 5} {
		for _, root := range []int{0, 2} {
			runWorld(t, n, Config{}, func(r *Rank) {
				w := r.World()
				var send []Buf
				if r.ID() == root {
					send = make([]Buf, n)
					for i := 0; i < n; i++ {
						send[i] = F64Buf([]float64{float64(i * 7), float64(i)})
					}
				}
				got := w.Scatter(r, root, send)
				if len(got.Data) != 2 || got.Data[0] != float64(r.ID()*7) || got.Data[1] != float64(r.ID()) {
					t.Errorf("n=%d root=%d rank %d got %v", n, root, r.ID(), got.Data)
				}
			})
		}
	}
}

func TestScan(t *testing.T) {
	for _, n := range []int{8, 5} {
		runWorld(t, n, Config{}, func(r *Rank) {
			w := r.World()
			out := w.Scan(r, F64Buf([]float64{float64(r.ID() + 1)}), OpSum)
			want := float64((r.ID() + 1) * (r.ID() + 2) / 2)
			if out.Data[0] != want {
				t.Errorf("n=%d rank %d scan = %v, want %v", n, r.ID(), out.Data[0], want)
			}
		})
	}
}

func TestReduceScatterBlock(t *testing.T) {
	n := 4
	runWorld(t, n, Config{}, func(r *Rank) {
		w := r.World()
		data := make([]float64, 8) // 2 elems per rank chunk
		for j := range data {
			data[j] = float64(r.ID() + j)
		}
		out := w.ReduceScatterBlock(r, F64Buf(data), OpSum)
		// Reduced vector elem j = sum over ranks (rank + j) = 6 + 4j.
		base := r.ID() * 2
		for j := 0; j < 2; j++ {
			want := float64(6 + 4*(base+j))
			if out.Data[j] != want {
				t.Errorf("rank %d chunk elem %d = %v, want %v", r.ID(), j, out.Data[j], want)
			}
		}
	})
}

func TestSyntheticCollectivesRun(t *testing.T) {
	end := runWorld(t, 16, Config{}, func(r *Rank) {
		w := r.World()
		w.AlltoallBytes(r, 1024)
		w.AllgatherBytes(r, 1024)
		w.AllreduceBytes(r, 1024)
		w.BcastBytes(r, 0, 1024)
		w.Barrier(r)
	})
	if end <= 0 {
		t.Error("synthetic collectives consumed no time")
	}
}

// Placement must matter: an alltoall inside one socket beats the same
// alltoall spread over two nodes for large messages on this test machine.
func TestPlacementAffectsTiming(t *testing.T) {
	duration := func(binding []int) float64 {
		var start, end float64
		_, err := Run(testSpec16(), binding, Config{}, func(r *Rank) {
			w := r.World()
			w.Barrier(r)
			if r.ID() == 0 {
				start = r.Now()
			}
			w.AlltoallBytes(r, 1<<20)
			if r.ID() == 0 {
				end = r.Now()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return end - start
	}
	packed := duration([]int{0, 1, 2, 3})  // one socket
	spread := duration([]int{0, 4, 8, 12}) // one core per socket, two nodes
	if packed <= 0 || spread <= 0 {
		t.Fatalf("degenerate durations: packed=%v spread=%v", packed, spread)
	}
	if packed >= spread {
		t.Errorf("packed alltoall (%v) should beat NIC-crossing spread (%v) for 1 MB blocks", packed, spread)
	}
}

func TestComputeRanksContend(t *testing.T) {
	// Ranks 0..3 share socket-0 memory; compute takes 4× longer than a
	// lone rank on socket 1.
	times := make([]float64, 5)
	_, err := Run(testSpec16(), []int{0, 1, 2, 3, 4}, Config{}, func(r *Rank) {
		r.World().Barrier(r)
		t0 := r.Now()
		r.Compute(0, 3e9)
		times[r.ID()] = r.Now() - t0
	})
	if err != nil {
		t.Fatal(err)
	}
	if times[4] > 0.11 {
		t.Errorf("lone rank took %v, want ≈0.1", times[4])
	}
	for i := 0; i < 4; i++ {
		if times[i] < 0.35 {
			t.Errorf("contended rank %d took %v, want ≈0.4", i, times[i])
		}
	}
}

func TestTracerReceivesCollectives(t *testing.T) {
	tr := &recordingTracer{}
	_, err := Run(testSpec16(), identityBinding(4), Config{Tracer: tr}, func(r *Rank) {
		w := r.World()
		w.AllreduceBytes(r, 2048)
		sub := w.Split(r, r.ID()/2, r.ID())
		sub.AlltoallBytes(r, 128)
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	ops := map[string]int{}
	comms := map[int]bool{}
	for _, rec := range tr.recs {
		ops[rec.op]++
		comms[rec.commID] = true
	}
	if ops["Allreduce"] != 4 {
		t.Errorf("Allreduce traced %d times, want 4", ops["Allreduce"])
	}
	if ops["Alltoall"] != 4 {
		t.Errorf("Alltoall traced %d times, want 4", ops["Alltoall"])
	}
	if len(comms) != 3 { // world + two subcomms
		t.Errorf("traced %d distinct comms, want 3", len(comms))
	}
}

type traceRec struct {
	commID, commSize int
	op               string
	bytes            int64
	rank             int
	start, end       float64
}

type recordingTracer struct {
	mu   sync.Mutex
	recs []traceRec
}

func (t *recordingTracer) Collective(commID, commSize int, op string, bytes int64, rank int, start, end float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.recs = append(t.recs, traceRec{commID, commSize, op, bytes, rank, start, end})
}

func TestInvalidBindingRejected(t *testing.T) {
	if _, err := Run(testSpec16(), []int{0, 99}, Config{}, func(r *Rank) {}); err == nil {
		t.Error("invalid core binding accepted")
	}
	if _, err := Run(testSpec16(), nil, Config{}, func(r *Rank) {}); err == nil {
		t.Error("empty binding accepted")
	}
}

func BenchmarkAlltoall16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := Run(testSpec16(), identityBinding(16), Config{}, func(r *Rank) {
			r.World().AlltoallBytes(r, 64*1024)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
