package hwdetect

import (
	"strings"
	"testing"
)

// FuzzParseCPUList checks the cpulist parser never panics and returns
// sorted non-negative CPUs.
func FuzzParseCPUList(f *testing.F) {
	for _, seed := range []string{"0-3", "0,5,7-9", "", "3-1", "x", "0-"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 256 {
			return // bounded: a 100 MB range string would legally explode
		}
		cpus, err := ParseCPUList(s)
		if err != nil {
			return
		}
		for i, c := range cpus {
			if c < 0 {
				t.Fatalf("ParseCPUList(%q) returned negative cpu %d", s, c)
			}
			if i > 0 && cpus[i-1] > c {
				t.Fatalf("ParseCPUList(%q) unsorted: %v", s, cpus)
			}
		}
	})
}

// FuzzParseLstopo checks the lstopo parser never panics and accepted
// topologies are valid hierarchies.
func FuzzParseLstopo(f *testing.F) {
	f.Add("Machine\n  Package L#0\n    Core L#0\n    Core L#1\n  Package L#1\n    Core L#2\n    Core L#3\n")
	f.Add("Machine\n")
	f.Add("")
	f.Add("A\n B\n  C\n  C\n B\n  C\n  C\n")
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 4096 {
			return
		}
		h, err := ParseLstopo(strings.NewReader(s))
		if err != nil {
			return
		}
		if h.Depth() == 0 || h.Size() <= 1 {
			t.Fatalf("ParseLstopo accepted degenerate hierarchy from %q", s)
		}
	})
}
