// Package hwdetect stands in for hwloc (§3.2: "the number of levels in
// the hierarchy and the size of each level can be gathered with tools such
// as hwloc"): it derives a topology.Hierarchy for one compute node from
// machine descriptions —
//
//   - FromSysFS reads a Linux-sysfs-shaped file tree
//     (cpu/cpuN/topology/physical_package_id, cache/index3/shared_cpu_list,
//     node/nodeN/cpulist), and
//   - ParseLstopo reads the indented textual rendering produced by
//     lstopo-like tools.
//
// Both enforce the paper's homogeneity constraint: every component of a
// level must contain the same number of sub-components, or detection
// fails with a descriptive error.
package hwdetect

import (
	"bufio"
	"fmt"
	"io"
	"io/fs"
	"sort"
	"strconv"
	"strings"

	"repro/internal/topology"
)

// Levels assembled by detection, outermost first (socket, numa, l3, core
// as available). The node level itself (count of nodes) is the caller's
// business — detection sees one node.

// cpuInfo is the location of one logical CPU.
type cpuInfo struct {
	cpu     int
	socket  int
	numa    int
	l3Group int // index of its shared-L3 set, -1 when unknown
}

// FromSysFS builds the node hierarchy from a sysfs-like tree rooted at
// fsys. Expected layout (a subset of Linux's /sys/devices/system):
//
//	cpu/cpu<N>/topology/physical_package_id
//	cpu/cpu<N>/cache/index3/shared_cpu_list   (optional)
//	node/node<N>/cpulist                      (optional NUMA description)
func FromSysFS(fsys fs.FS) (topology.Hierarchy, error) {
	cpuDirs, err := fs.Glob(fsys, "cpu/cpu[0-9]*")
	if err != nil {
		return topology.Hierarchy{}, err
	}
	if len(cpuDirs) == 0 {
		return topology.Hierarchy{}, fmt.Errorf("hwdetect: no cpu/cpuN directories")
	}
	infos := make(map[int]*cpuInfo)
	for _, dir := range cpuDirs {
		idStr := strings.TrimPrefix(dir, "cpu/cpu")
		id, err := strconv.Atoi(idStr)
		if err != nil {
			continue // cpufreq etc.
		}
		pkg, err := readInt(fsys, dir+"/topology/physical_package_id")
		if err != nil {
			return topology.Hierarchy{}, fmt.Errorf("hwdetect: cpu%d: %w", id, err)
		}
		info := &cpuInfo{cpu: id, socket: pkg, numa: -1, l3Group: -1}
		infos[id] = info
	}
	// L3 groups from shared_cpu_list (group key: the canonical list).
	l3Keys := map[string]int{}
	for id, info := range infos {
		list, err := readString(fsys, fmt.Sprintf("cpu/cpu%d/cache/index3/shared_cpu_list", id))
		if err != nil {
			continue // no L3 description
		}
		key := strings.TrimSpace(list)
		if _, ok := l3Keys[key]; !ok {
			l3Keys[key] = len(l3Keys)
		}
		info.l3Group = l3Keys[key]
	}
	// NUMA membership from node/nodeN/cpulist.
	nodeDirs, _ := fs.Glob(fsys, "node/node[0-9]*")
	for _, dir := range nodeDirs {
		numaStr := strings.TrimPrefix(dir, "node/node")
		numa, err := strconv.Atoi(numaStr)
		if err != nil {
			continue
		}
		list, err := readString(fsys, dir+"/cpulist")
		if err != nil {
			return topology.Hierarchy{}, fmt.Errorf("hwdetect: %s: %w", dir, err)
		}
		cpus, err := ParseCPUList(list)
		if err != nil {
			return topology.Hierarchy{}, fmt.Errorf("hwdetect: %s: %w", dir, err)
		}
		for _, c := range cpus {
			if info, ok := infos[c]; ok {
				info.numa = numa
			}
		}
	}
	return assemble(infos)
}

// assemble turns per-CPU locations into a uniform hierarchy.
func assemble(infos map[int]*cpuInfo) (topology.Hierarchy, error) {
	if len(infos) == 0 {
		return topology.Hierarchy{}, fmt.Errorf("hwdetect: no CPUs")
	}
	haveNuma, haveL3 := false, false
	for _, in := range infos {
		if in.numa >= 0 {
			haveNuma = true
		}
		if in.l3Group >= 0 {
			haveL3 = true
		}
	}
	type key struct{ socket, numa, l3 int }
	sockets := map[int]bool{}
	numasPerSocket := map[int]map[int]bool{}
	l3PerNuma := map[[2]int]map[int]bool{}
	coresPerLeaf := map[key]int{}
	for _, in := range infos {
		sockets[in.socket] = true
		numa := 0
		if haveNuma {
			if in.numa < 0 {
				return topology.Hierarchy{}, fmt.Errorf("hwdetect: cpu%d has no NUMA node but others do", in.cpu)
			}
			numa = in.numa
		}
		l3 := 0
		if haveL3 {
			if in.l3Group < 0 {
				return topology.Hierarchy{}, fmt.Errorf("hwdetect: cpu%d has no L3 group but others do", in.cpu)
			}
			l3 = in.l3Group
		}
		if numasPerSocket[in.socket] == nil {
			numasPerSocket[in.socket] = map[int]bool{}
		}
		numasPerSocket[in.socket][numa] = true
		nk := [2]int{in.socket, numa}
		if l3PerNuma[nk] == nil {
			l3PerNuma[nk] = map[int]bool{}
		}
		l3PerNuma[nk][l3] = true
		coresPerLeaf[key{in.socket, numa, l3}]++
	}
	uniform := func(counts []int, what string) (int, error) {
		if len(counts) == 0 {
			return 0, fmt.Errorf("hwdetect: no %s", what)
		}
		for _, c := range counts[1:] {
			if c != counts[0] {
				return 0, fmt.Errorf("hwdetect: heterogeneous %s counts %v (the mixed-radix hierarchy requires homogeneity)", what, counts)
			}
		}
		return counts[0], nil
	}
	var numaCounts, l3Counts, coreCounts []int
	for _, set := range numasPerSocket {
		numaCounts = append(numaCounts, len(set))
	}
	for _, set := range l3PerNuma {
		l3Counts = append(l3Counts, len(set))
	}
	for _, c := range coresPerLeaf {
		coreCounts = append(coreCounts, c)
	}
	nSockets := len(sockets)
	nNuma, err := uniform(numaCounts, "NUMA-per-socket")
	if err != nil {
		return topology.Hierarchy{}, err
	}
	nL3, err := uniform(l3Counts, "L3-per-NUMA")
	if err != nil {
		return topology.Hierarchy{}, err
	}
	nCores, err := uniform(coreCounts, "cores-per-L3")
	if err != nil {
		return topology.Hierarchy{}, err
	}
	var levels []topology.Level
	add := func(name string, arity int) {
		if arity > 1 {
			levels = append(levels, topology.Level{Name: name, Arity: arity})
		}
	}
	add("socket", nSockets)
	if haveNuma {
		add("numa", nNuma)
	}
	if haveL3 {
		add("l3", nL3)
	}
	add("core", nCores)
	if len(levels) == 0 {
		return topology.Hierarchy{}, fmt.Errorf("hwdetect: degenerate single-core machine")
	}
	return topology.NewNamed(levels...)
}

// ParseCPUList parses a Linux cpulist like "0-3,8,10-11".
func ParseCPUList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(strings.TrimSpace(s), ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err1 := strconv.Atoi(lo)
			b, err2 := strconv.Atoi(hi)
			if err1 != nil || err2 != nil || a > b || a < 0 {
				return nil, fmt.Errorf("hwdetect: bad cpu range %q", part)
			}
			for c := a; c <= b; c++ {
				out = append(out, c)
			}
			continue
		}
		c, err := strconv.Atoi(part)
		if err != nil || c < 0 {
			return nil, fmt.Errorf("hwdetect: bad cpu %q", part)
		}
		out = append(out, c)
	}
	sort.Ints(out)
	return out, nil
}

func readString(fsys fs.FS, path string) (string, error) {
	b, err := fs.ReadFile(fsys, path)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func readInt(fsys fs.FS, path string) (int, error) {
	s, err := readString(fsys, path)
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(strings.TrimSpace(s))
}

// ParseLstopo reads an indented topology rendering such as
//
//	Machine
//	  Package L#0
//	    NUMANode L#0
//	      L3 L#0
//	        Core L#0
//	        Core L#1
//
// and returns the hierarchy of arities per object type. Indentation must
// be consistent (spaces); object names before " L#" label the levels.
func ParseLstopo(r io.Reader) (topology.Hierarchy, error) {
	type node struct {
		kind     string
		depth    int
		children map[string]int
	}
	var stack []*node
	var root *node
	all := []*node{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Text()
		line := strings.TrimLeft(raw, " ")
		if strings.TrimSpace(line) == "" {
			continue
		}
		depth := len(raw) - len(line)
		kind, _, _ := strings.Cut(strings.TrimSpace(line), " ")
		n := &node{kind: kind, depth: depth, children: map[string]int{}}
		for len(stack) > 0 && stack[len(stack)-1].depth >= depth {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			if root != nil {
				return topology.Hierarchy{}, fmt.Errorf("hwdetect: line %d: multiple roots", lineNo)
			}
			root = n
		} else {
			parent := stack[len(stack)-1]
			parent.children[kind]++
		}
		stack = append(stack, n)
		all = append(all, n)
	}
	if err := sc.Err(); err != nil {
		return topology.Hierarchy{}, err
	}
	if root == nil {
		return topology.Hierarchy{}, fmt.Errorf("hwdetect: empty topology")
	}
	// Per object kind, the child kind and count must be uniform.
	kindChild := map[string]string{}
	kindCount := map[string]int{}
	for _, n := range all {
		if len(n.children) == 0 {
			continue
		}
		if len(n.children) > 1 {
			return topology.Hierarchy{}, fmt.Errorf("hwdetect: %s has mixed child kinds %v", n.kind, n.children)
		}
		for child, count := range n.children {
			if child == n.kind {
				return topology.Hierarchy{}, fmt.Errorf("hwdetect: %s nested inside %s is not expressible as a uniform hierarchy", child, n.kind)
			}
			if prev, ok := kindChild[n.kind]; ok {
				if prev != child || kindCount[n.kind] != count {
					return topology.Hierarchy{}, fmt.Errorf("hwdetect: heterogeneous %s contents (%d×%s vs %d×%s)",
						n.kind, kindCount[n.kind], prev, count, child)
				}
			} else {
				kindChild[n.kind] = child
				kindCount[n.kind] = count
			}
		}
	}
	var levels []topology.Level
	kind := root.kind
	visited := map[string]bool{}
	for {
		if visited[kind] {
			return topology.Hierarchy{}, fmt.Errorf("hwdetect: cyclic containment at %s", kind)
		}
		visited[kind] = true
		child, ok := kindChild[kind]
		if !ok {
			break
		}
		if kindCount[kind] > 1 {
			levels = append(levels, topology.Level{
				Name:  strings.ToLower(child),
				Arity: kindCount[kind],
			})
		}
		kind = child
	}
	if len(levels) == 0 {
		return topology.Hierarchy{}, fmt.Errorf("hwdetect: no multi-child levels found")
	}
	return topology.NewNamed(levels...)
}
