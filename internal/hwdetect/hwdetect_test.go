package hwdetect

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"testing/fstest"
)

// lumiSysFS builds a sysfs-shaped tree for a LUMI-like node:
// 2 sockets × 4 NUMA × 2 L3 × 8 cores = 128 CPUs.
func lumiSysFS() fstest.MapFS {
	fsys := fstest.MapFS{}
	cpu := 0
	numaID := 0
	l3ID := 0
	for socket := 0; socket < 2; socket++ {
		for numa := 0; numa < 4; numa++ {
			numaCPUs := []string{}
			for l3 := 0; l3 < 2; l3++ {
				lo, hi := cpu, cpu+7
				shared := fmt.Sprintf("%d-%d", lo, hi)
				for c := 0; c < 8; c++ {
					base := fmt.Sprintf("cpu/cpu%d", cpu)
					fsys[base+"/topology/physical_package_id"] = &fstest.MapFile{
						Data: []byte(fmt.Sprintf("%d\n", socket)),
					}
					fsys[base+"/cache/index3/shared_cpu_list"] = &fstest.MapFile{
						Data: []byte(shared + "\n"),
					}
					cpu++
				}
				numaCPUs = append(numaCPUs, fmt.Sprintf("%d-%d", lo, hi))
				l3ID++
			}
			fsys[fmt.Sprintf("node/node%d/cpulist", numaID)] = &fstest.MapFile{
				Data: []byte(strings.Join(numaCPUs, ",") + "\n"),
			}
			numaID++
		}
	}
	return fsys
}

func TestFromSysFSLUMI(t *testing.T) {
	h, err := FromSysFS(lumiSysFS())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h.Arities(), []int{2, 4, 2, 8}) {
		t.Errorf("arities = %v, want [2 4 2 8]", h.Arities())
	}
	if !reflect.DeepEqual(h.Names(), []string{"socket", "numa", "l3", "core"}) {
		t.Errorf("names = %v", h.Names())
	}
}

func TestFromSysFSNoL3NoNuma(t *testing.T) {
	fsys := fstest.MapFS{}
	for cpu := 0; cpu < 8; cpu++ {
		fsys[fmt.Sprintf("cpu/cpu%d/topology/physical_package_id", cpu)] = &fstest.MapFile{
			Data: []byte(fmt.Sprintf("%d\n", cpu/4)),
		}
	}
	h, err := FromSysFS(fsys)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h.Arities(), []int{2, 4}) {
		t.Errorf("arities = %v, want [2 4]", h.Arities())
	}
}

func TestFromSysFSHeterogeneousRejected(t *testing.T) {
	fsys := fstest.MapFS{}
	// Socket 0 has 4 cores, socket 1 has 2: not expressible.
	for cpu := 0; cpu < 6; cpu++ {
		pkg := 0
		if cpu >= 4 {
			pkg = 1
		}
		fsys[fmt.Sprintf("cpu/cpu%d/topology/physical_package_id", cpu)] = &fstest.MapFile{
			Data: []byte(fmt.Sprintf("%d\n", pkg)),
		}
	}
	if _, err := FromSysFS(fsys); err == nil {
		t.Error("heterogeneous machine accepted")
	}
}

func TestFromSysFSEmpty(t *testing.T) {
	if _, err := FromSysFS(fstest.MapFS{}); err == nil {
		t.Error("empty sysfs accepted")
	}
}

func TestParseCPUList(t *testing.T) {
	cases := []struct {
		in   string
		want []int
	}{
		{"0-3", []int{0, 1, 2, 3}},
		{"0-1,8,10-11", []int{0, 1, 8, 10, 11}},
		{"5", []int{5}},
		{" 2-3 ,7 \n", []int{2, 3, 7}},
	}
	for _, c := range cases {
		got, err := ParseCPUList(c.in)
		if err != nil {
			t.Errorf("ParseCPUList(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseCPUList(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"3-1", "x", "-1", "1-"} {
		if _, err := ParseCPUList(bad); err == nil {
			t.Errorf("ParseCPUList(%q) should fail", bad)
		}
	}
}

const hydraLstopo = `Machine
  Package L#0
    Group L#0
      Core L#0
      Core L#1
      Core L#2
      Core L#3
      Core L#4
      Core L#5
      Core L#6
      Core L#7
    Group L#1
      Core L#8
      Core L#9
      Core L#10
      Core L#11
      Core L#12
      Core L#13
      Core L#14
      Core L#15
  Package L#1
    Group L#2
      Core L#16
      Core L#17
      Core L#18
      Core L#19
      Core L#20
      Core L#21
      Core L#22
      Core L#23
    Group L#3
      Core L#24
      Core L#25
      Core L#26
      Core L#27
      Core L#28
      Core L#29
      Core L#30
      Core L#31
`

func TestParseLstopoHydra(t *testing.T) {
	h, err := ParseLstopo(strings.NewReader(hydraLstopo))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h.Arities(), []int{2, 2, 8}) {
		t.Errorf("arities = %v, want [2 2 8]", h.Arities())
	}
	if !reflect.DeepEqual(h.Names(), []string{"package", "group", "core"}) {
		t.Errorf("names = %v", h.Names())
	}
}

func TestParseLstopoHeterogeneous(t *testing.T) {
	bad := `Machine
  Package L#0
    Core L#0
    Core L#1
  Package L#1
    Core L#2
`
	if _, err := ParseLstopo(strings.NewReader(bad)); err == nil {
		t.Error("heterogeneous lstopo accepted")
	}
}

func TestParseLstopoMixedChildren(t *testing.T) {
	bad := `Machine
  Package L#0
    NUMANode L#0
    Core L#0
`
	if _, err := ParseLstopo(strings.NewReader(bad)); err == nil {
		t.Error("mixed child kinds accepted")
	}
}

func TestParseLstopoEmpty(t *testing.T) {
	if _, err := ParseLstopo(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ParseLstopo(strings.NewReader("Machine\n")); err == nil {
		t.Error("leaf-only machine accepted")
	}
}

func TestParseLstopoMultipleRoots(t *testing.T) {
	bad := "Machine\nMachine\n"
	if _, err := ParseLstopo(strings.NewReader(bad)); err == nil {
		t.Error("two roots accepted")
	}
}
