// W3C Trace Context "traceparent" header handling (the 00 version):
//
//	00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//	^  ^ 16-byte trace id (32 hex)      ^ 8-byte span id  ^ flags
//
// Parsing is deliberately strict about structure (lengths, separators,
// lowercase hex, nonzero ids) and lenient about future versions, per the
// spec: any two-hex-digit version other than "ff" is accepted as long as
// the 00-shaped prefix fields parse.

package rt

// FlagSampled is the traceparent flag bit carrying the head-sampling
// decision.
const FlagSampled byte = 0x01

// ParseTraceparent parses a traceparent header value. ok is false for
// empty, malformed, all-zero-id, or version-ff values.
func ParseTraceparent(s string) (traceID TraceID, spanID SpanID, flags byte, ok bool) {
	// version(2) - trace-id(32) - parent-id(16) - flags(2) = 55 bytes
	// minimum; future versions may append "-extra" fields.
	if len(s) < 55 {
		return traceID, spanID, 0, false
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return traceID, spanID, 0, false
	}
	ver, verOK := hexByte(s[0], s[1])
	if !verOK || ver == 0xff {
		return traceID, spanID, 0, false
	}
	if ver == 0 && len(s) != 55 {
		return traceID, spanID, 0, false
	}
	if len(s) > 55 && s[55] != '-' {
		return traceID, spanID, 0, false
	}
	for i := 0; i < 16; i++ {
		b, ok := hexByte(s[3+2*i], s[4+2*i])
		if !ok {
			return TraceID{}, SpanID{}, 0, false
		}
		traceID[i] = b
	}
	for i := 0; i < 8; i++ {
		b, ok := hexByte(s[36+2*i], s[37+2*i])
		if !ok {
			return TraceID{}, SpanID{}, 0, false
		}
		spanID[i] = b
	}
	flags, flagsOK := hexByte(s[53], s[54])
	if !flagsOK || traceID.IsZero() || spanID.IsZero() {
		return TraceID{}, SpanID{}, 0, false
	}
	return traceID, spanID, flags, true
}

// FormatTraceparent renders the version-00 header value.
func FormatTraceparent(traceID TraceID, spanID SpanID, flags byte) string {
	buf := make([]byte, 0, 55)
	buf = append(buf, '0', '0', '-')
	buf = appendHex(buf, traceID[:])
	buf = append(buf, '-')
	buf = appendHex(buf, spanID[:])
	buf = append(buf, '-')
	buf = append(buf, hexDigit(flags>>4), hexDigit(flags&0xf))
	return string(buf)
}

// hexByte decodes two lowercase-hex characters. Uppercase is rejected:
// the spec requires lowercase on the wire.
func hexByte(hi, lo byte) (byte, bool) {
	h, ok1 := hexVal(hi)
	l, ok2 := hexVal(lo)
	return h<<4 | l, ok1 && ok2
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	default:
		return 0, false
	}
}

func hexDigit(v byte) byte {
	if v < 10 {
		return '0' + v
	}
	return 'a' + v - 10
}

func appendHex(buf, src []byte) []byte {
	for _, b := range src {
		buf = append(buf, hexDigit(b>>4), hexDigit(b&0xf))
	}
	return buf
}
