// Background runtime-metrics sampler: publishes Go runtime health
// (goroutines, heap, GC cycles and pause distribution, open file
// descriptors) into an obs.Registry so the serving /metrics endpoint
// exposes process vitals next to the request metrics. GC pauses come from
// the MemStats pause ring — each completed cycle since the previous
// sample is Observed individually, so the histogram is a true pause
// distribution, not a running average.

package rt

import (
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
)

// SamplerOptions tunes a Sampler.
type SamplerOptions struct {
	// Interval between samples (default 5s).
	Interval time.Duration
	// Registry receives the rt_* metrics (required; a nil registry makes
	// every sample a no-op).
	Registry *obs.Registry
	// FDDir is the directory whose entries are counted as open file
	// descriptors (default /proc/self/fd; counting is skipped when the
	// directory is unreadable, e.g. off-Linux).
	FDDir string
}

// Sampler periodically publishes runtime metrics until stopped.
type Sampler struct {
	opts SamplerOptions

	goroutines *obs.Gauge
	heapAlloc  *obs.Gauge
	heapSys    *obs.Gauge
	heapObj    *obs.Gauge
	nextGC     *obs.Gauge
	openFDs    *obs.Gauge
	gcRuns     *obs.Counter
	gcPause    *obs.Histogram

	mu        sync.Mutex
	lastNumGC uint32

	stop chan struct{}
	done chan struct{}
}

// StartSampler begins sampling on its own goroutine (one sample is taken
// synchronously before it returns, so metrics exist immediately). Call
// Stop to halt it.
func StartSampler(opts SamplerOptions) *Sampler {
	if opts.Interval <= 0 {
		opts.Interval = 5 * time.Second
	}
	if opts.FDDir == "" {
		opts.FDDir = "/proc/self/fd"
	}
	reg := opts.Registry
	s := &Sampler{
		opts:       opts,
		goroutines: reg.Gauge("rt_goroutines"),
		heapAlloc:  reg.Gauge("rt_heap_alloc_bytes"),
		heapSys:    reg.Gauge("rt_heap_sys_bytes"),
		heapObj:    reg.Gauge("rt_heap_objects"),
		nextGC:     reg.Gauge("rt_next_gc_bytes"),
		openFDs:    reg.Gauge("rt_open_fds"),
		gcRuns:     reg.Counter("rt_gc_runs_total"),
		gcPause:    reg.Histogram("rt_gc_pause_seconds", obs.WallBuckets()),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	s.SampleOnce()
	go s.loop()
	return s
}

func (s *Sampler) loop() {
	defer close(s.done)
	tick := time.NewTicker(s.opts.Interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			s.SampleOnce()
		case <-s.stop:
			return
		}
	}
}

// Stop halts the sampler and waits for its goroutine to exit. Safe to
// call once; a nil sampler is a no-op.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	close(s.stop)
	<-s.done
}

// SampleOnce takes one sample synchronously. Safe for concurrent use.
func (s *Sampler) SampleOnce() {
	if s == nil {
		return
	}
	s.goroutines.Set(float64(runtime.NumGoroutine()))

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.heapAlloc.Set(float64(ms.HeapAlloc))
	s.heapSys.Set(float64(ms.HeapSys))
	s.heapObj.Set(float64(ms.HeapObjects))
	s.nextGC.Set(float64(ms.NextGC))

	s.mu.Lock()
	prev := s.lastNumGC
	cur := ms.NumGC
	if cur > prev {
		s.gcRuns.AddInt(int64(cur - prev))
		// The pause ring holds the last 256 cycles; older ones are gone.
		lo := prev
		if cur > 256 && lo < cur-256 {
			lo = cur - 256
		}
		for i := lo; i < cur; i++ {
			s.gcPause.Observe(float64(ms.PauseNs[i%256]) / 1e9)
		}
	}
	s.lastNumGC = cur
	s.mu.Unlock()

	if ents, err := os.ReadDir(s.opts.FDDir); err == nil {
		s.openFDs.Set(float64(len(ents)))
	}
}
