// Rolling multi-window SLO tracking with burn rates. Each endpoint keeps
// per-second cells in a fixed ring covering the longest window; a Record
// is O(1), a window snapshot is one pass over the ring, and nothing
// allocates on the hot path once an endpoint's series exists.
//
// Two objectives are tracked per endpoint:
//
//   - availability: fraction of requests that did not fail server-side
//     (5xx, including shed 503s — a shed request is still a user-visible
//     failure);
//   - latency: fraction of requests answered under the threshold.
//
// The burn rate is the classic SRE ratio: (observed bad fraction) /
// (error budget). Burn 1.0 consumes exactly the whole budget if sustained
// over the SLO period; a fast burn (well above 1 in both the short and
// the medium window) means the budget disappears in hours, which is the
// multi-window page condition /healthz surfaces as "degraded" before the
// circuit breaker ever sees a failure.

package rt

import (
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// SLOOptions tunes an SLOTracker. The zero value picks the serving
// defaults.
type SLOOptions struct {
	// Availability is the target success fraction (default 0.999).
	Availability float64
	// LatencyThreshold is the per-request latency objective (default
	// 250ms).
	LatencyThreshold time.Duration
	// LatencyObjective is the target fraction of requests under the
	// threshold (default 0.99).
	LatencyObjective float64
	// Windows are the rolling windows, ascending (default 1m, 5m, 30m).
	// The first two drive the fast-burn condition.
	Windows []time.Duration
	// FastBurnFactor is the burn rate that, sustained in both of the two
	// shortest windows, flags the tracker as fast-burning (default 14,
	// the SRE-workbook page threshold).
	FastBurnFactor float64
	// Now is the clock (default time.Now). Tests inject a fake.
	Now func() time.Time
}

func (o SLOOptions) withDefaults() SLOOptions {
	if o.Availability == 0 {
		o.Availability = 0.999
	}
	if o.LatencyThreshold == 0 {
		o.LatencyThreshold = 250 * time.Millisecond
	}
	if o.LatencyObjective == 0 {
		o.LatencyObjective = 0.99
	}
	if len(o.Windows) == 0 {
		o.Windows = []time.Duration{time.Minute, 5 * time.Minute, 30 * time.Minute}
	}
	if o.FastBurnFactor == 0 {
		o.FastBurnFactor = 14
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// sloCell is one second of one endpoint's traffic.
type sloCell struct {
	sec    int64 // unix second this cell currently holds
	total  uint64
	errors uint64 // 5xx responses
	slow   uint64 // latency over the threshold
}

// SLOTracker records request outcomes and answers burn-rate queries.
type SLOTracker struct {
	opts    SLOOptions
	ringLen int64 // seconds covered by each ring (longest window)

	mu      sync.Mutex
	series  map[string]*[]sloCell
	lastSec int64 // monotonic clamp against clock skew
}

// NewSLOTracker returns a tracker with the given options.
func NewSLOTracker(opts SLOOptions) *SLOTracker {
	opts = opts.withDefaults()
	longest := opts.Windows[len(opts.Windows)-1]
	ringLen := int64(longest / time.Second)
	if ringLen < 1 {
		ringLen = 1
	}
	return &SLOTracker{
		opts:    opts,
		ringLen: ringLen,
		series:  map[string]*[]sloCell{},
	}
}

// nowSecLocked returns the current unix second, clamped so time never
// runs backwards for the tracker even when the wall clock does (NTP
// steps, VM suspends): skewed samples are attributed to the newest second
// already seen instead of resurrecting expired cells.
func (t *SLOTracker) nowSecLocked() int64 {
	sec := t.opts.Now().Unix()
	if sec < t.lastSec {
		return t.lastSec
	}
	t.lastSec = sec
	return sec
}

// Record stores one request outcome. A nil tracker is a no-op.
func (t *SLOTracker) Record(endpoint string, code int, latency time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sec := t.nowSecLocked()
	ring := t.series[endpoint]
	if ring == nil {
		cells := make([]sloCell, t.ringLen)
		ring = &cells
		t.series[endpoint] = ring
	}
	cell := &(*ring)[sec%t.ringLen]
	if cell.sec != sec {
		*cell = sloCell{sec: sec}
	}
	cell.total++
	if code >= 500 {
		cell.errors++
	}
	if latency > t.opts.LatencyThreshold {
		cell.slow++
	}
}

// WindowSLO is one endpoint×window burn-rate snapshot.
type WindowSLO struct {
	Window   string `json:"window"`
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
	Slow     uint64 `json:"slow"`
	// Availability is the observed success fraction (1 on an empty
	// window: no traffic burns no budget).
	Availability float64 `json:"availability"`
	// AvailabilityBurn / LatencyBurn are the burn rates against the
	// respective error budgets (0 on an empty window).
	AvailabilityBurn float64 `json:"availability_burn"`
	LatencyBurn      float64 `json:"latency_burn"`
}

// EndpointSLO is one endpoint's snapshot across every window.
type EndpointSLO struct {
	Endpoint string      `json:"endpoint"`
	Windows  []WindowSLO `json:"windows"`
}

// SLOReport is the /v1/slo response body.
type SLOReport struct {
	AvailabilityTarget float64       `json:"availability_target"`
	LatencyThreshold   string        `json:"latency_threshold"`
	LatencyObjective   float64       `json:"latency_objective"`
	FastBurnFactor     float64       `json:"fast_burn_factor"`
	FastBurning        bool          `json:"fast_burning"`
	Endpoints          []EndpointSLO `json:"endpoints"`
}

// windowStats sums the ring cells inside (now-window, now].
func (t *SLOTracker) windowStatsLocked(ring []sloCell, nowSec, windowSec int64) (total, errors, slow uint64) {
	lo := nowSec - windowSec // exclusive
	for i := range ring {
		c := &ring[i]
		if c.total == 0 || c.sec <= lo || c.sec > nowSec {
			continue
		}
		total += c.total
		errors += c.errors
		slow += c.slow
	}
	return total, errors, slow
}

func burnRate(bad, total uint64, objective float64) float64 {
	if total == 0 {
		return 0
	}
	budget := 1 - objective
	if budget <= 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / budget
}

// Report snapshots every endpoint across every window, endpoints sorted
// by name.
func (t *SLOTracker) Report() SLOReport {
	rep := SLOReport{
		AvailabilityTarget: t.opts.Availability,
		LatencyThreshold:   t.opts.LatencyThreshold.String(),
		LatencyObjective:   t.opts.LatencyObjective,
		FastBurnFactor:     t.opts.FastBurnFactor,
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	nowSec := t.nowSecLocked()
	names := make([]string, 0, len(t.series))
	for name := range t.series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ring := *t.series[name]
		ep := EndpointSLO{Endpoint: name}
		for _, w := range t.opts.Windows {
			total, errors, slow := t.windowStatsLocked(ring, nowSec, int64(w/time.Second))
			ws := WindowSLO{
				Window:           w.String(),
				Requests:         total,
				Errors:           errors,
				Slow:             slow,
				Availability:     1,
				AvailabilityBurn: burnRate(errors, total, t.opts.Availability),
				LatencyBurn:      burnRate(slow, total, t.opts.LatencyObjective),
			}
			if total > 0 {
				ws.Availability = float64(total-errors) / float64(total)
			}
			ep.Windows = append(ep.Windows, ws)
		}
		rep.Endpoints = append(rep.Endpoints, ep)
	}
	rep.FastBurning = t.fastBurningLocked(nowSec)
	return rep
}

// FastBurning reports the multi-window page condition: some endpoint's
// availability or latency burn rate is at or above the fast-burn factor
// in both of the two shortest windows. A nil tracker never burns.
func (t *SLOTracker) FastBurning() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fastBurningLocked(t.nowSecLocked())
}

func (t *SLOTracker) fastBurningLocked(nowSec int64) bool {
	short := int64(t.opts.Windows[0] / time.Second)
	mid := short
	if len(t.opts.Windows) > 1 {
		mid = int64(t.opts.Windows[1] / time.Second)
	}
	for _, ring := range t.series {
		st, se, ss := t.windowStatsLocked(*ring, nowSec, short)
		mt, me, ms := t.windowStatsLocked(*ring, nowSec, mid)
		availFast := burnRate(se, st, t.opts.Availability) >= t.opts.FastBurnFactor &&
			burnRate(me, mt, t.opts.Availability) >= t.opts.FastBurnFactor
		latFast := burnRate(ss, st, t.opts.LatencyObjective) >= t.opts.FastBurnFactor &&
			burnRate(ms, mt, t.opts.LatencyObjective) >= t.opts.FastBurnFactor
		if availFast || latFast {
			return true
		}
	}
	return false
}

// Publish mirrors the current burn rates into reg as slo_burn_rate
// gauges (labels: endpoint, window, slo) plus the slo_fast_burning
// flag, for Prometheus consumers. A nil tracker is a no-op.
func (t *SLOTracker) Publish(reg *obs.Registry) {
	if t == nil {
		return
	}
	rep := t.Report()
	for _, ep := range rep.Endpoints {
		for _, w := range ep.Windows {
			reg.Gauge("slo_burn_rate",
				obs.L("endpoint", ep.Endpoint), obs.L("slo", "availability"), obs.L("window", w.Window)).
				Set(w.AvailabilityBurn)
			reg.Gauge("slo_burn_rate",
				obs.L("endpoint", ep.Endpoint), obs.L("slo", "latency"), obs.L("window", w.Window)).
				Set(w.LatencyBurn)
		}
	}
	flag := 0.0
	if rep.FastBurning {
		flag = 1
	}
	reg.Gauge("slo_fast_burning").Set(flag)
}
