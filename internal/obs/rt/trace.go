// Package rt is the wall-clock runtime-telemetry layer of the serving
// stack, complementing internal/obs's virtual-time instrumentation: a
// lightweight distributed-tracing span implementation with W3C
// traceparent propagation, a runtime-metrics sampler (goroutines, heap,
// GC pauses, file descriptors), a trace-correlated log/slog handler, and
// rolling multi-window SLO burn-rate tracking.
//
// Completed traces are committed into an obs.Scope as ordinary spans —
// wall-clock seconds since the tracer's epoch stand in for virtual
// seconds — so the PR 1 Perfetto writer exports server traces unchanged
// and mrtrace opens them.
//
// Sampling is head-based: the decision is taken when the trace enters the
// process (honouring an upstream traceparent's sampled flag, otherwise a
// configured ratio) and inherited by every child span. One override
// exists: a trace that records an error is committed even when the head
// decision said drop, so failures always leave a trace behind.
//
// Every entry point is nil-safe, mirroring internal/obs: a nil *Tracer or
// *Span is a no-op, so instrumented code carries no "if tracing" guards.
package rt

import (
	"context"
	"encoding/hex"
	"math/rand"
	"sync"
	"time"

	"repro/internal/obs"
)

// ServerPID is the Perfetto "process" id server-side traces commit under;
// each committed trace gets its own thread track within it.
const ServerPID = 1

// TraceID is the 16-byte W3C trace id.
type TraceID [16]byte

// SpanID is the 8-byte W3C span id.
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero id.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports whether the id is the invalid all-zero id.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String returns the lowercase-hex rendering used on the wire.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// String returns the lowercase-hex rendering used on the wire.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// Options tunes a Tracer. The zero value picks production defaults.
type Options struct {
	// Service names the Perfetto process the traces commit under
	// (default "server").
	Service string
	// SampleRatio is the head-sampling probability for traces without an
	// upstream sampling decision: 0 defaults to 1 (sample everything),
	// negative disables sampling (error traces are still committed).
	SampleRatio float64
	// Scope receives committed spans (default: a fresh obs.Scope).
	Scope *obs.Scope
	// Now is the clock (default time.Now). Tests inject a fake.
	Now func() time.Time
	// Rand yields randomness for ids and sampling decisions (default: a
	// locked math/rand source seeded from the clock).
	Rand func() uint64
}

// Tracer creates and commits request-scoped spans.
type Tracer struct {
	service string
	ratio   float64
	scope   *obs.Scope
	now     func() time.Time
	epoch   time.Time

	mu      sync.Mutex
	rand    func() uint64
	nextTID int
}

// NewTracer returns a Tracer with the given options.
func NewTracer(opts Options) *Tracer {
	if opts.Service == "" {
		opts.Service = "server"
	}
	if opts.SampleRatio == 0 {
		opts.SampleRatio = 1
	}
	if opts.Scope == nil {
		opts.Scope = obs.New(obs.Options{})
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	t := &Tracer{
		service: opts.Service,
		ratio:   opts.SampleRatio,
		scope:   opts.Scope,
		now:     opts.Now,
		epoch:   opts.Now(),
		rand:    opts.Rand,
		nextTID: 1,
	}
	if t.rand == nil {
		rng := rand.New(rand.NewSource(opts.Now().UnixNano()))
		t.rand = func() uint64 { return rng.Uint64() }
	}
	t.scope.SetProcessName(ServerPID, opts.Service)
	return t
}

// Scope returns the obs.Scope committed traces land in; export it with
// obs.WriteTraceFile to get a Perfetto JSON file mrtrace can open.
func (t *Tracer) Scope() *obs.Scope {
	if t == nil {
		return nil
	}
	return t.scope
}

// random returns a nonzero random uint64 under the tracer lock.
func (t *Tracer) randomLocked() uint64 {
	for {
		if v := t.rand(); v != 0 {
			return v
		}
	}
}

func (t *Tracer) newTraceID() TraceID {
	t.mu.Lock()
	defer t.mu.Unlock()
	var id TraceID
	hi, lo := t.randomLocked(), t.randomLocked()
	for i := 0; i < 8; i++ {
		id[i] = byte(hi >> (56 - 8*i))
		id[8+i] = byte(lo >> (56 - 8*i))
	}
	return id
}

func (t *Tracer) newSpanID() SpanID {
	t.mu.Lock()
	defer t.mu.Unlock()
	var id SpanID
	v := t.randomLocked()
	for i := 0; i < 8; i++ {
		id[i] = byte(v >> (56 - 8*i))
	}
	return id
}

// sampleHead takes the head decision for a trace without an upstream one.
func (t *Tracer) sampleHead() bool {
	if t.ratio < 0 {
		return false
	}
	if t.ratio >= 1 {
		return true
	}
	t.mu.Lock()
	v := t.rand()
	t.mu.Unlock()
	return float64(v>>11)/(1<<53) < t.ratio
}

// traceBuf accumulates one trace's completed spans until the local root
// ends and the commit decision is settled.
type traceBuf struct {
	id      TraceID
	sampled bool

	mu        sync.Mutex
	spans     []obs.Span
	instants  []obs.Instant
	errored   bool
	committed bool
	dropped   bool
	tid       int // thread track, assigned at commit
}

// Span is one in-flight operation of a trace. A nil Span is a no-op.
type Span struct {
	tracer *Tracer
	buf    *traceBuf
	id     SpanID
	parent SpanID
	root   bool // local root: commits the trace on End
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs []obs.Arg
	ended bool
}

type spanKey struct{}

// ContextWithSpan returns ctx carrying sp as the current span. Use it to
// re-attach a trace to a context detached from the request (e.g. the
// background context a singleflight evaluation runs on).
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext returns the current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// StartRequest begins the local root span of a request-scoped trace,
// continuing the trace described by the traceparent header when one is
// present (and honouring its sampling decision), otherwise starting a
// fresh trace under the tracer's head-sampling ratio. The returned
// context carries the span for StartSpan calls downstream.
func (t *Tracer) StartRequest(ctx context.Context, name, traceparent string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	var (
		traceID TraceID
		parent  SpanID
		sampled bool
	)
	if tid, pid, flags, ok := ParseTraceparent(traceparent); ok {
		traceID, parent, sampled = tid, pid, flags&FlagSampled != 0
	} else {
		traceID, sampled = t.newTraceID(), t.sampleHead()
	}
	buf := &traceBuf{id: traceID, sampled: sampled}
	sp := &Span{
		tracer: t,
		buf:    buf,
		id:     t.newSpanID(),
		parent: parent,
		root:   true,
		name:   name,
		start:  t.now(),
	}
	return ContextWithSpan(ctx, sp), sp
}

// StartSpan begins a child of the context's current span. Without a
// current span it returns (ctx, nil): a no-op span, zero allocations.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	t := parent.tracer
	sp := &Span{
		tracer: t,
		buf:    parent.buf,
		id:     t.newSpanID(),
		parent: parent.id,
		name:   name,
		start:  t.now(),
	}
	return ContextWithSpan(ctx, sp), sp
}

// TraceID returns the span's trace id hex, or "" on nil.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.buf.id.String()
}

// SpanID returns the span's id hex, or "" on nil.
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.id.String()
}

// Sampled reports the trace's head-sampling decision.
func (s *Span) Sampled() bool {
	if s == nil {
		return false
	}
	return s.buf.sampled
}

// Traceparent renders the header value propagating this span downstream.
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	var flags byte
	if s.buf.sampled {
		flags = FlagSampled
	}
	return FormatTraceparent(s.buf.id, s.id, flags)
}

// SetAttr attaches one integer annotation exported into the Perfetto args.
func (s *Span) SetAttr(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, obs.Arg{Key: key, Val: v})
	s.mu.Unlock()
}

// Event records a zero-duration marker at the current instant on the
// span's trace track (a Perfetto instant event) — a point-in-time stream
// like the advisor's search_progress events. Events follow the trace's
// head-sampling commit decision exactly like spans: buffered until the
// root ends, then flushed or dropped with the rest of the trace.
func (s *Span) Event(name string, args ...obs.Arg) {
	if s == nil {
		return
	}
	t := s.tracer
	in := obs.Instant{
		PID:  ServerPID,
		Name: name,
		Cat:  "rt",
		At:   t.now().Sub(t.epoch).Seconds(),
		Args: args,
	}
	b := s.buf
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.dropped:
	case b.committed:
		t.scope.Instant(in.PID, b.tid, in.Name, in.Cat, in.At, in.Args...)
	default:
		b.instants = append(b.instants, in)
	}
}

// SetError marks the span (and therefore its whole trace) as failed: the
// trace is committed even if the head decision said drop.
func (s *Span) SetError() {
	if s == nil {
		return
	}
	s.SetAttr("error", 1)
	s.buf.mu.Lock()
	s.buf.errored = true
	s.buf.mu.Unlock()
}

// End completes the span. Ending the request's root span settles the
// trace: buffered spans are committed to the scope when the trace is
// sampled or errored, and dropped otherwise. Spans ended after the root
// (a detached evaluation outliving its requester) join the committed
// trace directly.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()

	t := s.tracer
	end := t.now()
	span := obs.Span{
		PID:   ServerPID,
		Name:  s.name,
		Cat:   "rt",
		Start: s.start.Sub(t.epoch).Seconds(),
		End:   end.Sub(t.epoch).Seconds(),
		Args:  attrs,
	}

	b := s.buf
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.dropped:
	case b.committed:
		span.TID = b.tid
		t.scope.Span(span.PID, span.TID, span.Name, span.Cat, span.Start, span.End, span.Args...)
	default:
		b.spans = append(b.spans, span)
		if s.root {
			if b.sampled || b.errored {
				t.commit(b)
			} else {
				b.dropped = true
				b.spans = nil
				b.instants = nil
			}
		}
	}
}

// ClientTraceparent builds a fresh sampled version-00 traceparent from
// the caller's randomness, returning the header value and its trace id
// hex — the client half of trace propagation (mrload injection).
func ClientTraceparent(rng *rand.Rand) (header, traceID string) {
	var tid TraceID
	var sid SpanID
	for tid.IsZero() {
		hi, lo := rng.Uint64(), rng.Uint64()
		for i := 0; i < 8; i++ {
			tid[i] = byte(hi >> (56 - 8*i))
			tid[8+i] = byte(lo >> (56 - 8*i))
		}
	}
	for sid.IsZero() {
		v := rng.Uint64()
		for i := 0; i < 8; i++ {
			sid[i] = byte(v >> (56 - 8*i))
		}
	}
	return FormatTraceparent(tid, sid, FlagSampled), tid.String()
}

// commit assigns the trace a thread track and flushes its buffered spans.
// Called with b.mu held.
func (t *Tracer) commit(b *traceBuf) {
	t.mu.Lock()
	b.tid = t.nextTID
	t.nextTID++
	t.mu.Unlock()
	b.committed = true
	t.scope.SetThreadName(ServerPID, b.tid, "trace "+b.id.String())
	for _, sp := range b.spans {
		t.scope.Span(sp.PID, b.tid, sp.Name, sp.Cat, sp.Start, sp.End, sp.Args...)
	}
	for _, in := range b.instants {
		t.scope.Instant(in.PID, b.tid, in.Name, in.Cat, in.At, in.Args...)
	}
	b.spans = nil
	b.instants = nil
}
