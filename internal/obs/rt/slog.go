// Trace-correlated structured logging: a log/slog handler decorator that
// stamps every record carrying a span context with its trace_id and
// span_id, so a log line, a Perfetto trace, and a structured error body
// can be joined on one id. The decorator is stateless beyond the inner
// handler and safe to share across concurrent requests.

package rt

import (
	"context"
	"io"
	"log/slog"
)

// LogHandler wraps an inner slog.Handler, adding trace_id/span_id
// attributes from the record's context.
type LogHandler struct {
	inner slog.Handler
}

// NewLogHandler wraps inner with trace correlation.
func NewLogHandler(inner slog.Handler) *LogHandler {
	return &LogHandler{inner: inner}
}

// NewTextLogger returns a ready-made trace-correlated text logger writing
// to w at the given level — the serving CLIs' default logger shape.
func NewTextLogger(w io.Writer, level slog.Leveler) *slog.Logger {
	return slog.New(NewLogHandler(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})))
}

// Enabled implements slog.Handler.
func (h *LogHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

// Handle implements slog.Handler: records whose context carries a span
// gain trace_id and span_id attributes.
func (h *LogHandler) Handle(ctx context.Context, rec slog.Record) error {
	if sp := SpanFromContext(ctx); sp != nil {
		rec = rec.Clone()
		rec.AddAttrs(
			slog.String("trace_id", sp.TraceID()),
			slog.String("span_id", sp.SpanID()),
		)
	}
	return h.inner.Handle(ctx, rec)
}

// WithAttrs implements slog.Handler.
func (h *LogHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &LogHandler{inner: h.inner.WithAttrs(attrs)}
}

// WithGroup implements slog.Handler.
func (h *LogHandler) WithGroup(name string) slog.Handler {
	return &LogHandler{inner: h.inner.WithGroup(name)}
}
