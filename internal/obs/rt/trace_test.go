package rt

import (
	"bytes"
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeClock yields strictly increasing timestamps one millisecond apart.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(time.Millisecond)
	return c.t
}

func testTracer(ratio float64) *Tracer {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	rng := rand.New(rand.NewSource(42))
	return NewTracer(Options{
		Service:     "test",
		SampleRatio: ratio,
		Now:         clk.now,
		Rand:        rng.Uint64,
	})
}

func TestTraceparentRoundTrip(t *testing.T) {
	tid := TraceID{0x4b, 0xf9, 0x2f, 0x35, 0x77, 0xb3, 0x4d, 0xa6, 0xa3, 0xce, 0x92, 0x9d, 0x0e, 0x0e, 0x47, 0x36}
	sid := SpanID{0x00, 0xf0, 0x67, 0xaa, 0x0b, 0xa9, 0x02, 0xb7}
	h := FormatTraceparent(tid, sid, FlagSampled)
	want := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if h != want {
		t.Fatalf("FormatTraceparent = %q, want %q", h, want)
	}
	gt, gs, flags, ok := ParseTraceparent(h)
	if !ok || gt != tid || gs != sid || flags != FlagSampled {
		t.Fatalf("round trip failed: %v %v %v %v", gt, gs, flags, ok)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-abc-def-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", // v00 must be exactly 4 fields
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",       // version ff forbidden
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",       // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",       // zero span id
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",       // uppercase hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz",       // bad flags
		"00x4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",       // bad separator
		"0g-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",       // bad version hex
		"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01xtail",  // future version, bad tail separator
	}
	for _, s := range bad {
		if _, _, _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted", s)
		}
	}
	// A future version with a well-formed extra field is accepted.
	if _, _, _, ok := ParseTraceparent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-more"); !ok {
		t.Error("future-version traceparent with extra field rejected")
	}
}

func TestSpanNestingAndCommit(t *testing.T) {
	tr := testTracer(1)
	ctx, root := tr.StartRequest(context.Background(), "http /v1/x", "")
	if root.TraceID() == "" || !root.Sampled() {
		t.Fatalf("root not sampled: id=%q", root.TraceID())
	}
	cctx, child := StartSpan(ctx, "cache.lookup")
	child.SetAttr("hit", 1)
	child.End()
	_, grand := StartSpan(cctx, "never-used")
	_ = grand
	_, worker := StartSpan(ctx, "advisor.chunk")
	worker.End()
	// Nothing committed until the root ends.
	if n := len(tr.Scope().Spans()); n != 0 {
		t.Fatalf("%d spans committed before root end", n)
	}
	root.End()
	spans := tr.Scope().Spans()
	if len(spans) != 3 {
		t.Fatalf("committed %d spans, want 3 (grand never ended)", len(spans))
	}
	names := map[string]bool{}
	for _, sp := range spans {
		names[sp.Name] = true
		if sp.PID != ServerPID {
			t.Fatalf("span %q pid %d, want %d", sp.Name, sp.PID, ServerPID)
		}
		if sp.End < sp.Start {
			t.Fatalf("span %q ends before it starts", sp.Name)
		}
	}
	for _, want := range []string{"http /v1/x", "cache.lookup", "advisor.chunk"} {
		if !names[want] {
			t.Fatalf("committed spans missing %q (have %v)", want, names)
		}
	}
}

func TestUnsampledTraceDropped(t *testing.T) {
	tr := testTracer(-1) // never head-sample
	ctx, root := tr.StartRequest(context.Background(), "http /v1/x", "")
	if root.Sampled() {
		t.Fatal("ratio<0 sampled a trace")
	}
	_, child := StartSpan(ctx, "cache.lookup")
	child.End()
	root.End()
	if n := len(tr.Scope().Spans()); n != 0 {
		t.Fatalf("unsampled trace committed %d spans", n)
	}
}

func TestErrorOverridesSamplingDecision(t *testing.T) {
	tr := testTracer(-1)
	ctx, root := tr.StartRequest(context.Background(), "http /v1/x", "")
	_, child := StartSpan(ctx, "evaluate")
	child.SetError()
	child.End()
	root.End()
	spans := tr.Scope().Spans()
	if len(spans) != 2 {
		t.Fatalf("errored trace committed %d spans, want 2", len(spans))
	}
	var foundErr bool
	for _, sp := range spans {
		for _, a := range sp.Args {
			if a.Key == "error" && a.Val == 1 {
				foundErr = true
			}
		}
	}
	if !foundErr {
		t.Fatal("error attribute missing from committed spans")
	}
}

func TestUpstreamTraceparentHonoured(t *testing.T) {
	const upstream = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tr := testTracer(-1) // would drop on its own — upstream says sample
	ctx, root := tr.StartRequest(context.Background(), "http /v1/x", upstream)
	if got := root.TraceID(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id %q does not continue the upstream trace", got)
	}
	if !root.Sampled() {
		t.Fatal("upstream sampled flag ignored")
	}
	// The span injected downstream carries the same trace id, a new span id.
	tp := root.Traceparent()
	gt, gs, flags, ok := ParseTraceparent(tp)
	if !ok || gt.String() != root.TraceID() || gs.String() != root.SpanID() || flags&FlagSampled == 0 {
		t.Fatalf("downstream traceparent %q inconsistent", tp)
	}
	_ = ctx
	root.End()
	if n := len(tr.Scope().Spans()); n != 1 {
		t.Fatalf("committed %d spans, want 1", n)
	}

	// Unsampled upstream flag is honoured too (no error involved).
	tr2 := testTracer(1) // would sample on its own — upstream says drop
	_, root2 := tr2.StartRequest(context.Background(), "http /v1/x",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	if root2.Sampled() {
		t.Fatal("upstream unsampled flag ignored")
	}
	root2.End()
	if n := len(tr2.Scope().Spans()); n != 0 {
		t.Fatalf("unsampled upstream trace committed %d spans", n)
	}
}

func TestLateSpanJoinsCommittedTrace(t *testing.T) {
	tr := testTracer(1)
	ctx, root := tr.StartRequest(context.Background(), "http /v1/x", "")
	_, late := StartSpan(ctx, "detached.eval")
	root.End()
	late.End() // after the root committed
	spans := tr.Scope().Spans()
	if len(spans) != 2 {
		t.Fatalf("committed %d spans, want root + late", len(spans))
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.StartRequest(context.Background(), "x", "")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	_, sp2 := StartSpan(ctx, "child")
	sp2.SetAttr("k", 1)
	sp2.SetError()
	sp2.End()
	if sp2.TraceID() != "" || sp2.SpanID() != "" || sp2.Traceparent() != "" || sp2.Sampled() {
		t.Fatal("nil span leaked state")
	}
	var st *SLOTracker
	st.Record("x", 200, 0)
	if st.FastBurning() {
		t.Fatal("nil tracker burning")
	}
	st.Publish(obs.NewRegistry())
	var sm *Sampler
	sm.SampleOnce()
	sm.Stop()
}

func TestClientTraceparent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h, id := ClientTraceparent(rng)
	gt, _, flags, ok := ParseTraceparent(h)
	if !ok || flags&FlagSampled == 0 {
		t.Fatalf("generated traceparent %q invalid", h)
	}
	if gt.String() != id {
		t.Fatalf("returned trace id %q != header's %q", id, gt.String())
	}
}

func TestCommittedTraceExportsAsPerfettoJSON(t *testing.T) {
	tr := testTracer(1)
	ctx, root := tr.StartRequest(context.Background(), "http /v1/advise", "")
	_, child := StartSpan(ctx, "singleflight")
	child.End()
	root.End()
	var buf bytes.Buffer
	if err := obs.WriteTraceJSON(&buf, tr.Scope()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"http /v1/advise"`, `"singleflight"`, "trace " + root.TraceID(), `"test"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace JSON missing %s:\n%s", want, out)
		}
	}
}
