package rt

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

// syncBuffer serializes writes so concurrent log lines stay whole.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestLogHandlerStampsTraceIDs(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(NewLogHandler(slog.NewJSONHandler(&buf, nil)))
	tr := testTracer(1)

	ctx, sp := tr.StartRequest(context.Background(), "http /v1/map", "")
	logger.InfoContext(ctx, "request", "status", 200)
	sp.End()
	logger.Info("no span here")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["trace_id"] != sp.TraceID() || rec["span_id"] != sp.SpanID() {
		t.Fatalf("line missing trace correlation: %s", lines[0])
	}
	rec = map[string]any{}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if _, ok := rec["trace_id"]; ok {
		t.Fatalf("span-less record gained a trace_id: %s", lines[1])
	}
}

// TestLogHandlerConcurrentReuse shares one handler across many goroutines
// each logging under its own span — the -race gate for handler reuse —
// and checks every line carries its own goroutine's trace id.
func TestLogHandlerConcurrentReuse(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(NewLogHandler(slog.NewJSONHandler(&buf, nil))).
		With("service", "test")
	tr := testTracer(1)

	const workers = 16
	const lines = 25
	want := make([]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx, sp := tr.StartRequest(context.Background(), "req", "")
			want[w] = sp.TraceID()
			for i := 0; i < lines; i++ {
				logger.InfoContext(ctx, "tick", "worker", w, "i", i)
			}
			sp.End()
		}(w)
	}
	wg.Wait()

	perTrace := map[string]map[int]bool{}
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	n := 0
	for sc.Scan() {
		n++
		var rec struct {
			TraceID string  `json:"trace_id"`
			Worker  float64 `json:"worker"`
			Service string  `json:"service"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		if rec.Service != "test" {
			t.Fatalf("WithAttrs lost through the decorator: %q", sc.Text())
		}
		m := perTrace[rec.TraceID]
		if m == nil {
			m = map[int]bool{}
			perTrace[rec.TraceID] = m
		}
		m[int(rec.Worker)] = true
	}
	if n != workers*lines {
		t.Fatalf("got %d lines, want %d", n, workers*lines)
	}
	if len(perTrace) != workers {
		t.Fatalf("got %d distinct trace ids, want %d", len(perTrace), workers)
	}
	for w, id := range want {
		m := perTrace[id]
		if len(m) != 1 || !m[w] {
			t.Fatalf("trace %s mixed workers: %v (want only %d)", id, m, w)
		}
	}
}

func TestLogHandlerWithGroup(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(NewLogHandler(slog.NewJSONHandler(&buf, nil))).WithGroup("req")
	tr := testTracer(1)
	ctx, sp := tr.StartRequest(context.Background(), "r", "")
	logger.InfoContext(ctx, "m", "k", "v")
	sp.End()
	out := buf.String()
	// trace_id lands inside the open group — correlation survives grouping.
	if !strings.Contains(out, sp.TraceID()) {
		t.Fatalf("grouped record lost trace id: %s", out)
	}
	if !strings.Contains(out, fmt.Sprintf("%q:{", "req")) {
		t.Fatalf("group structure missing: %s", out)
	}
}
