package rt

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestSamplerPublishesRuntimeMetrics: one synchronous sample fills the
// gauges; forced GC cycles land in the pause histogram.
func TestSamplerPublishesRuntimeMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s := StartSampler(SamplerOptions{Interval: time.Hour, Registry: reg})
	defer s.Stop()

	runtime.GC()
	runtime.GC()
	s.SampleOnce()

	if g := reg.FindGauge("rt_goroutines"); g < 1 {
		t.Fatalf("rt_goroutines = %g", g)
	}
	if g := reg.FindGauge("rt_heap_alloc_bytes"); g <= 0 {
		t.Fatalf("rt_heap_alloc_bytes = %g", g)
	}
	if c := reg.FindCounter("rt_gc_runs_total"); c < 2 {
		t.Fatalf("rt_gc_runs_total = %g after two forced GCs", c)
	}
	var pauseSamples uint64
	for _, p := range reg.Snapshot() {
		if p.Name == "rt_gc_pause_seconds" {
			pauseSamples = p.Count
		}
	}
	if pauseSamples < 2 {
		t.Fatalf("rt_gc_pause_seconds has %d samples, want >= 2", pauseSamples)
	}
}

// TestSamplerConcurrent hammers SampleOnce from many goroutines while the
// background loop runs — the -race gate for the sampler.
func TestSamplerConcurrent(t *testing.T) {
	reg := obs.NewRegistry()
	s := StartSampler(SamplerOptions{Interval: time.Millisecond, Registry: reg})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s.SampleOnce()
				if j%10 == 0 {
					runtime.GC()
				}
			}
		}()
	}
	wg.Wait()
	s.Stop()
	// Stop is idempotent in effect: the loop is gone, but sampling
	// synchronously still works.
	s.SampleOnce()
	if g := reg.FindGauge("rt_goroutines"); g < 1 {
		t.Fatalf("rt_goroutines = %g", g)
	}
}

// TestSamplerFDCount: on Linux the fd gauge reflects /proc/self/fd; a
// bogus directory silently skips the gauge instead of failing.
func TestSamplerFDCount(t *testing.T) {
	reg := obs.NewRegistry()
	s := StartSampler(SamplerOptions{Interval: time.Hour, Registry: reg, FDDir: t.TempDir()})
	defer s.Stop()
	s.SampleOnce()
	if g := reg.FindGauge("rt_open_fds"); g != 0 {
		t.Fatalf("empty fd dir counted %g fds", g)
	}

	reg2 := obs.NewRegistry()
	s2 := StartSampler(SamplerOptions{Interval: time.Hour, Registry: reg2, FDDir: "/nonexistent-fd-dir"})
	defer s2.Stop()
	s2.SampleOnce() // must not panic or set the gauge
}
