package rt

import (
	"math"
	"testing"
	"time"

	"repro/internal/obs"
)

// sloClock is a settable fake clock.
type sloClock struct{ t time.Time }

func (c *sloClock) now() time.Time { return c.t }

func testSLO(clk *sloClock) *SLOTracker {
	return NewSLOTracker(SLOOptions{
		Availability:     0.999,
		LatencyThreshold: 100 * time.Millisecond,
		LatencyObjective: 0.99,
		Windows:          []time.Duration{time.Minute, 5 * time.Minute, 30 * time.Minute},
		Now:              clk.now,
	})
}

func window(t *testing.T, rep SLOReport, endpoint, window string) WindowSLO {
	t.Helper()
	for _, ep := range rep.Endpoints {
		if ep.Endpoint != endpoint {
			continue
		}
		for _, w := range ep.Windows {
			if w.Window == window {
				return w
			}
		}
	}
	t.Fatalf("window %s/%s not in report %+v", endpoint, window, rep)
	return WindowSLO{}
}

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("%s = %g, want %g", name, got, want)
	}
}

// TestBurnRateHandComputed drives known traffic through the windows and
// checks the burn rates against hand-computed values.
func TestBurnRateHandComputed(t *testing.T) {
	clk := &sloClock{t: time.Unix(10_000, 0)}
	tr := testSLO(clk)

	// Seconds 10000..10009: 10 req/s, 1 error/s, 2 slow/s on "advise".
	for s := 0; s < 10; s++ {
		clk.t = time.Unix(10_000+int64(s), 0)
		for i := 0; i < 10; i++ {
			code, lat := 200, 10*time.Millisecond
			if i == 0 {
				code = 500
			}
			if i < 2 {
				lat = 200 * time.Millisecond
			}
			tr.Record("advise", code, lat)
		}
	}
	clk.t = time.Unix(10_009, 0)
	rep := tr.Report()

	// 1m window: 100 requests, 10 errors, 20 slow.
	w := window(t, rep, "advise", "1m0s")
	if w.Requests != 100 || w.Errors != 10 || w.Slow != 20 {
		t.Fatalf("1m stats %+v, want 100/10/20", w)
	}
	// error rate 0.1 over budget 0.001 → burn 100.
	approx(t, "availability burn 1m", w.AvailabilityBurn, 100)
	// slow rate 0.2 over budget 0.01 → burn 20.
	approx(t, "latency burn 1m", w.LatencyBurn, 20)
	approx(t, "availability 1m", w.Availability, 0.9)

	// The same 100 requests sit in the wider windows → same burn rates.
	w5 := window(t, rep, "advise", "5m0s")
	approx(t, "availability burn 5m", w5.AvailabilityBurn, 100)

	// 60 seconds later the 1m window is empty, the 5m window still burns.
	clk.t = time.Unix(10_070, 0)
	rep = tr.Report()
	w = window(t, rep, "advise", "1m0s")
	if w.Requests != 0 {
		t.Fatalf("1m window still holds %d requests after rollover", w.Requests)
	}
	approx(t, "empty-window availability burn", w.AvailabilityBurn, 0)
	approx(t, "empty-window latency burn", w.LatencyBurn, 0)
	approx(t, "empty-window availability", w.Availability, 1)
	w5 = window(t, rep, "advise", "5m0s")
	if w5.Requests != 100 {
		t.Fatalf("5m window lost requests: %d", w5.Requests)
	}
	approx(t, "availability burn 5m after rollover", w5.AvailabilityBurn, 100)
}

// TestEmptyWindowReport: a tracker that never recorded reports no
// endpoints, and FastBurning is false.
func TestEmptyWindowReport(t *testing.T) {
	clk := &sloClock{t: time.Unix(10_000, 0)}
	tr := testSLO(clk)
	rep := tr.Report()
	if len(rep.Endpoints) != 0 || rep.FastBurning {
		t.Fatalf("empty tracker report %+v", rep)
	}
	if tr.FastBurning() {
		t.Fatal("empty tracker fast-burning")
	}
}

// TestClockSkew: the wall clock stepping backwards must neither panic nor
// resurrect expired cells; skewed samples attribute to the newest second
// already seen.
func TestClockSkew(t *testing.T) {
	clk := &sloClock{t: time.Unix(20_000, 0)}
	tr := testSLO(clk)
	tr.Record("map", 200, time.Millisecond)
	clk.t = time.Unix(19_000, 0) // NTP step: 1000 s backwards
	tr.Record("map", 500, time.Millisecond)
	tr.Record("map", 200, time.Millisecond)
	rep := tr.Report()
	w := window(t, rep, "map", "1m0s")
	if w.Requests != 3 || w.Errors != 1 {
		t.Fatalf("after skew: %d requests %d errors, want 3 and 1", w.Requests, w.Errors)
	}
	// Time resuming forward keeps working.
	clk.t = time.Unix(20_030, 0)
	tr.Record("map", 200, time.Millisecond)
	w = window(t, rep, "map", "1m0s")
	if got := tr.Report(); window(t, got, "map", "1m0s").Requests != 4 {
		t.Fatalf("post-skew recording lost samples: %+v", got)
	}
}

// TestFastBurning: the page condition needs the burn in both short
// windows; an old burst outside the 1m window must not page.
func TestFastBurning(t *testing.T) {
	clk := &sloClock{t: time.Unix(30_000, 0)}
	tr := testSLO(clk)
	// 100% errors, burn 1000 ≫ 14 in both windows.
	for i := 0; i < 20; i++ {
		tr.Record("advise", 503, time.Millisecond)
	}
	if !tr.FastBurning() {
		t.Fatal("total outage not fast-burning")
	}
	// 90 seconds later the 1m window is clean → not fast-burning even
	// though the 5m window still carries the errors.
	clk.t = time.Unix(30_090, 0)
	if tr.FastBurning() {
		t.Fatal("old burst outside the short window still pages")
	}
	// Healthy traffic never burns.
	tr2 := testSLO(clk)
	for i := 0; i < 1000; i++ {
		tr2.Record("map", 200, time.Millisecond)
	}
	if tr2.FastBurning() {
		t.Fatal("healthy traffic fast-burning")
	}
}

// TestLatencyOnlyFastBurn: slow-but-successful traffic pages via the
// latency objective.
func TestLatencyOnlyFastBurn(t *testing.T) {
	clk := &sloClock{t: time.Unix(40_000, 0)}
	tr := testSLO(clk)
	for i := 0; i < 50; i++ {
		tr.Record("advise", 200, time.Second) // all over the 100ms threshold
	}
	if !tr.FastBurning() {
		t.Fatal("100% slow traffic not fast-burning (burn 100 vs budget 0.01)")
	}
}

func TestPublishGauges(t *testing.T) {
	clk := &sloClock{t: time.Unix(50_000, 0)}
	tr := testSLO(clk)
	for i := 0; i < 10; i++ {
		tr.Record("advise", 503, time.Millisecond)
	}
	reg := obs.NewRegistry()
	tr.Publish(reg)
	got := reg.FindGauge("slo_burn_rate",
		obs.L("endpoint", "advise"), obs.L("slo", "availability"), obs.L("window", "1m0s"))
	approx(t, "published burn gauge", got, 1000)
	approx(t, "fast-burning flag", reg.FindGauge("slo_fast_burning"), 1)
}
