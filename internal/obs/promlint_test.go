// A promtool-style lint of the text exposition: instead of asserting a
// handful of substrings, these tests parse every line WritePrometheus
// produces against the format's grammar and check the structural
// invariants a real Prometheus scraper enforces — metric and label name
// charsets, label value escaping, HELP/TYPE placement, histogram bucket
// ordering and cumulativity, and series uniqueness.

package obs

import (
	"bytes"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	// sampleRe splits "name{labels} value" / "name value".
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})? (\S+)$`)
)

// parseLabelSet walks a {k="v",...} block, undoing exposition escapes.
// It fails the test on any syntax a Prometheus parser would reject.
func parseLabelSet(t *testing.T, s string) map[string]string {
	t.Helper()
	out := map[string]string{}
	if s == "" {
		return out
	}
	if !strings.HasPrefix(s, "{") || !strings.HasSuffix(s, "}") {
		t.Fatalf("label block not braced: %q", s)
	}
	body := s[1 : len(s)-1]
	i := 0
	for i < len(body) {
		j := strings.IndexByte(body[i:], '=')
		if j < 0 {
			t.Fatalf("label block missing '=': %q", body[i:])
		}
		name := body[i : i+j]
		if !labelNameRe.MatchString(name) {
			t.Fatalf("bad label name %q in %q", name, s)
		}
		i += j + 1
		if i >= len(body) || body[i] != '"' {
			t.Fatalf("label value not quoted at %q", body[i:])
		}
		i++
		var val strings.Builder
		for {
			if i >= len(body) {
				t.Fatalf("unterminated label value in %q", s)
			}
			c := body[i]
			if c == '\\' {
				if i+1 >= len(body) {
					t.Fatalf("dangling backslash in %q", s)
				}
				switch body[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					t.Fatalf("illegal escape \\%c in %q", body[i+1], s)
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			if c == '\n' {
				t.Fatalf("raw newline inside label value in %q", s)
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := out[name]; dup {
			t.Fatalf("duplicate label %q in %q", name, s)
		}
		out[name] = val.String()
		if i < len(body) {
			if body[i] != ',' {
				t.Fatalf("expected ',' after label in %q, got %q", s, body[i:])
			}
			i++
		}
	}
	return out
}

type promSeries struct {
	name   string
	labels map[string]string
	value  float64
}

// lintExposition parses a full exposition, failing on any grammar or
// structure violation, and returns the samples.
func lintExposition(t *testing.T, out string) []promSeries {
	t.Helper()
	typeOf := map[string]string{}
	helped := map[string]bool{}
	seen := map[string]bool{}
	var samples []promSeries
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" {
			t.Fatal("blank line in exposition")
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !metricNameRe.MatchString(name) {
				t.Fatalf("malformed HELP line: %q", line)
			}
			if helped[name] {
				t.Fatalf("duplicate HELP for %s", name)
			}
			if _, typedAlready := typeOf[name]; typedAlready {
				t.Fatalf("HELP for %s after its TYPE line", name)
			}
			helped[name] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 || !metricNameRe.MatchString(fields[0]) {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("unknown type %q in %q", fields[1], line)
			}
			if _, dup := typeOf[fields[0]]; dup {
				t.Fatalf("duplicate TYPE for %s", fields[0])
			}
			typeOf[fields[0]] = fields[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line: %q", line)
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample line: %q", line)
		}
		name, labelBlock, valStr := m[1], m[2], m[3]
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")
		if _, ok := typeOf[name]; !ok {
			if _, ok := typeOf[base]; !ok {
				t.Fatalf("sample %q precedes its TYPE line", line)
			}
		}
		var value float64
		if valStr == "+Inf" || valStr == "-Inf" || valStr == "NaN" {
			t.Fatalf("non-finite sample value in %q", line)
		}
		value, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		labels := parseLabelSet(t, labelBlock)
		key := name + fmt.Sprint(labels)
		if seen[key] {
			t.Fatalf("duplicate series: %q", line)
		}
		seen[key] = true
		samples = append(samples, promSeries{name: name, labels: labels, value: value})
	}
	return samples
}

// fullRegistry populates every metric kind with exposition-hostile label
// values: quotes, backslashes, newlines, UTF-8, and '}' inside values.
func fullRegistry() *Registry {
	r := NewRegistry()
	r.SetHelp("lint_requests_total", `Requests with "quotes" and a \ backslash.`)
	r.SetHelp("lint_seconds", "Multi-line\nhelp text.")
	r.Counter("lint_requests_total", L("path", `/v1/"quoted"`)).Add(3)
	r.Counter("lint_requests_total", L("path", `back\slash`)).Add(1)
	r.Counter("lint_requests_total", L("path", "new\nline")).Add(1)
	r.Counter("lint_requests_total", L("path", "héllo✓")).Add(2)
	r.Counter("lint_requests_total", L("path", "brace}й")).Add(2)
	r.Gauge("lint_temperature", L("室", "x")) // invalid label name must be caught by the lint
	h := r.Histogram("lint_seconds", []float64{0.001, 0.01, 0.1, 1}, L("op", "scan"))
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5)
	return r
}

func TestPrometheusExpositionLints(t *testing.T) {
	r := fullRegistry()
	// Drop the deliberately-invalid gauge for the clean-pass test.
	delete(r.gauges, "lint_temperature"+labelString([]Label{L("室", "x")}))
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	samples := lintExposition(t, buf.String())
	// Escaping must round-trip: the parser's unescaped values equal the
	// originals.
	wantPaths := map[string]float64{
		`/v1/"quoted"`: 3,
		`back\slash`:   1,
		"new\nline":    1,
		"héllo✓":       2,
		"brace}й":      2,
	}
	got := map[string]float64{}
	for _, s := range samples {
		if s.name == "lint_requests_total" {
			got[s.labels["path"]] = s.value
		}
	}
	for path, want := range wantPaths {
		if got[path] != want {
			t.Errorf("path %q round-tripped to value %v, want %v (have %v)", path, got[path], want, got)
		}
	}
}

func TestPrometheusLintCatchesBadLabelName(t *testing.T) {
	// The lint itself must reject what a scraper rejects; this guards the
	// test harness against rotting into a rubber stamp.
	r := NewRegistry()
	r.Gauge("g", L("bad-label", "x")).Set(1)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	mock := &testing.T{}
	done := make(chan bool, 1)
	go func() {
		defer func() { done <- mock.Failed() }()
		lintExposition(mock, buf.String())
	}()
	if failed := <-done; !failed {
		t.Fatal("lint accepted an invalid label name")
	}
}

func TestPrometheusHistogramStructure(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.001, 0.01, 0.1, 1}, L("ep", "x"))
	for _, v := range []float64{0.0005, 0.002, 0.002, 0.05, 0.5, 10} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	samples := lintExposition(t, buf.String())

	var (
		bounds  []float64
		counts  []float64
		sum     = -1.0
		count   = -1.0
		infSeen bool
	)
	for _, s := range samples {
		switch s.name {
		case "lat_seconds_bucket":
			le := s.labels["le"]
			if le == "+Inf" {
				infSeen = true
				bounds = append(bounds, 1e308)
			} else {
				b, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("bad le %q", le)
				}
				bounds = append(bounds, b)
			}
			counts = append(counts, s.value)
		case "lat_seconds_sum":
			sum = s.value
		case "lat_seconds_count":
			count = s.value
		}
	}
	if !infSeen {
		t.Fatal("no +Inf bucket")
	}
	if sum < 0 || count < 0 {
		t.Fatal("missing _sum or _count")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bucket bounds not ascending: %v", bounds)
		}
		if counts[i] < counts[i-1] {
			t.Fatalf("bucket counts not cumulative: %v", counts)
		}
	}
	if counts[len(counts)-1] != count {
		t.Fatalf("+Inf bucket %v != count %v", counts[len(counts)-1], count)
	}
	if count != 6 {
		t.Fatalf("count = %v, want 6", count)
	}
}

func TestPrometheusHelpPlacementAndEscaping(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("x_total", "Line one\nline two with \\ backslash.")
	r.Counter("x_total").Add(1)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lintExposition(t, out)
	want := `# HELP x_total Line one\nline two with \\ backslash.`
	if !strings.Contains(out, want) {
		t.Fatalf("help not escaped:\n%s", out)
	}
	if strings.Index(out, "# HELP x_total") > strings.Index(out, "# TYPE x_total") {
		t.Fatalf("HELP after TYPE:\n%s", out)
	}
}
