// A promtool-style lint of the text exposition: instead of asserting a
// handful of substrings, these tests parse every line WritePrometheus
// produces against the format's grammar and check the structural
// invariants a real Prometheus scraper enforces — metric and label name
// charsets, label value escaping, HELP/TYPE placement, histogram bucket
// ordering and cumulativity, and series uniqueness. The parser itself
// lives in promlint.go (LintPrometheus) so service packages can lint
// their own registries; these tests drive it through a thin adapter.

package obs

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

type promSeries struct {
	name   string
	labels map[string]string
	value  float64
}

// lintExposition parses a full exposition, failing on any grammar or
// structure violation, and returns the samples.
func lintExposition(t *testing.T, out string) []promSeries {
	t.Helper()
	parsed, err := LintPrometheus(out)
	if err != nil {
		t.Fatal(err)
	}
	samples := make([]promSeries, 0, len(parsed))
	for _, s := range parsed {
		samples = append(samples, promSeries{name: s.Name, labels: s.Labels, value: s.Value})
	}
	return samples
}

// fullRegistry populates every metric kind with exposition-hostile label
// values: quotes, backslashes, newlines, UTF-8, and '}' inside values.
func fullRegistry() *Registry {
	r := NewRegistry()
	r.SetHelp("lint_requests_total", `Requests with "quotes" and a \ backslash.`)
	r.SetHelp("lint_seconds", "Multi-line\nhelp text.")
	r.Counter("lint_requests_total", L("path", `/v1/"quoted"`)).Add(3)
	r.Counter("lint_requests_total", L("path", `back\slash`)).Add(1)
	r.Counter("lint_requests_total", L("path", "new\nline")).Add(1)
	r.Counter("lint_requests_total", L("path", "héllo✓")).Add(2)
	r.Counter("lint_requests_total", L("path", "brace}й")).Add(2)
	r.Gauge("lint_temperature", L("室", "x")) // invalid label name must be caught by the lint
	h := r.Histogram("lint_seconds", []float64{0.001, 0.01, 0.1, 1}, L("op", "scan"))
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5)
	return r
}

func TestPrometheusExpositionLints(t *testing.T) {
	r := fullRegistry()
	// Drop the deliberately-invalid gauge for the clean-pass test.
	delete(r.gauges, "lint_temperature"+labelString([]Label{L("室", "x")}))
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	samples := lintExposition(t, buf.String())
	// Escaping must round-trip: the parser's unescaped values equal the
	// originals.
	wantPaths := map[string]float64{
		`/v1/"quoted"`: 3,
		`back\slash`:   1,
		"new\nline":    1,
		"héllo✓":       2,
		"brace}й":      2,
	}
	got := map[string]float64{}
	for _, s := range samples {
		if s.name == "lint_requests_total" {
			got[s.labels["path"]] = s.value
		}
	}
	for path, want := range wantPaths {
		if got[path] != want {
			t.Errorf("path %q round-tripped to value %v, want %v (have %v)", path, got[path], want, got)
		}
	}
}

func TestPrometheusLintCatchesBadLabelName(t *testing.T) {
	// The lint itself must reject what a scraper rejects; this guards the
	// test harness against rotting into a rubber stamp.
	r := NewRegistry()
	r.Gauge("g", L("bad-label", "x")).Set(1)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	if _, err := LintPrometheus(buf.String()); err == nil {
		t.Fatal("lint accepted an invalid label name")
	}
}

func TestMissingHelp(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("app_with_help_total", "Documented.")
	r.Counter("app_with_help_total").Add(1)
	r.Counter("app_naked_total").Add(1)
	r.Histogram("app_naked_seconds", []float64{0.1, 1}).Observe(0.5)
	r.Counter("other_naked_total").Add(1)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	got := MissingHelp(buf.String(), "app_")
	want := []string{"app_naked_seconds", "app_naked_total"}
	if len(got) != len(want) {
		t.Fatalf("MissingHelp = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MissingHelp = %v, want %v", got, want)
		}
	}
}

func TestPrometheusHistogramStructure(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.001, 0.01, 0.1, 1}, L("ep", "x"))
	for _, v := range []float64{0.0005, 0.002, 0.002, 0.05, 0.5, 10} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	samples := lintExposition(t, buf.String())

	var (
		bounds  []float64
		counts  []float64
		sum     = -1.0
		count   = -1.0
		infSeen bool
	)
	for _, s := range samples {
		switch s.name {
		case "lat_seconds_bucket":
			le := s.labels["le"]
			if le == "+Inf" {
				infSeen = true
				bounds = append(bounds, 1e308)
			} else {
				b, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("bad le %q", le)
				}
				bounds = append(bounds, b)
			}
			counts = append(counts, s.value)
		case "lat_seconds_sum":
			sum = s.value
		case "lat_seconds_count":
			count = s.value
		}
	}
	if !infSeen {
		t.Fatal("no +Inf bucket")
	}
	if sum < 0 || count < 0 {
		t.Fatal("missing _sum or _count")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bucket bounds not ascending: %v", bounds)
		}
		if counts[i] < counts[i-1] {
			t.Fatalf("bucket counts not cumulative: %v", counts)
		}
	}
	if counts[len(counts)-1] != count {
		t.Fatalf("+Inf bucket %v != count %v", counts[len(counts)-1], count)
	}
	if count != 6 {
		t.Fatalf("count = %v, want 6", count)
	}
}

func TestPrometheusHelpPlacementAndEscaping(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("x_total", "Line one\nline two with \\ backslash.")
	r.Counter("x_total").Add(1)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lintExposition(t, out)
	want := `# HELP x_total Line one\nline two with \\ backslash.`
	if !strings.Contains(out, want) {
		t.Fatalf("help not escaped:\n%s", out)
	}
	if strings.Index(out, "# HELP x_total") > strings.Index(out, "# TYPE x_total") {
		t.Fatalf("HELP after TYPE:\n%s", out)
	}
}
