// Golden-path validation of the exporters against a real simulated run: a
// 2-node, 4-rank Alltoall must produce Chrome trace JSON that parses, has
// sane event shapes and the documented pid/tid mapping, and identical
// metrics across two runs once wall-clock metrics are filtered out.

package obs_test

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/obs"
)

// tinySpec is a 2-node × 2-core machine: ranks 0,1 on node 0 and 2,3 on
// node 1.
func tinySpec() netmodel.Spec {
	return netmodel.Spec{
		Name: "tiny",
		Levels: []netmodel.LevelSpec{
			{Name: "node", Arity: 2, UpBandwidth: 10e9, BusBandwidth: 20e9, Latency: 1e-6},
			{Name: "core", Arity: 2, Latency: 0.2e-6},
		},
		CoreFlops: 1e9,
	}
}

// runAlltoall runs one world-sized Alltoall under a fresh scope and
// returns the scope plus both serialized artifacts.
func runAlltoall(t *testing.T) (*obs.Scope, []byte, []byte) {
	t.Helper()
	sc := obs.New(obs.Options{P2PEvents: true})
	spec := tinySpec()
	binding := []int{0, 1, 2, 3}
	_, err := mpi.Run(spec, binding, mpi.Config{Obs: sc}, func(r *mpi.Rank) {
		w := r.World()
		w.Barrier(r)
		w.AlltoallBytes(r, 4096)
		w.Barrier(r)
	})
	if err != nil {
		t.Fatalf("mpi.Run: %v", err)
	}
	var traceBuf, promBuf bytes.Buffer
	if err := obs.WriteTraceJSON(&traceBuf, sc); err != nil {
		t.Fatalf("WriteTraceJSON: %v", err)
	}
	if err := obs.WritePrometheus(&promBuf, sc.Registry()); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return sc, traceBuf.Bytes(), promBuf.Bytes()
}

type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   *float64       `json:"ts"`
	Dur  *float64       `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

func TestGoldenTraceJSON(t *testing.T) {
	_, traceJSON, _ := runAlltoall(t)

	var doc struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(traceJSON, &doc); err != nil {
		t.Fatalf("trace.json does not parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}

	threadNames := map[[2]int]string{}
	lastTS := map[[2]int]float64{}
	sawSpan, sawInstant := false, false
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				name, _ := ev.Args["name"].(string)
				threadNames[[2]int{ev.PID, ev.TID}] = name
			}
		case "X":
			sawSpan = true
			if ev.TS == nil || ev.Dur == nil {
				t.Fatalf("span %q missing ts/dur", ev.Name)
			}
			if *ev.Dur < 0 || math.IsNaN(*ev.Dur) {
				t.Errorf("span %q has dur %v", ev.Name, *ev.Dur)
			}
			key := [2]int{ev.PID, ev.TID}
			if *ev.TS < lastTS[key] {
				t.Errorf("span %q on track %v starts at %v before previous %v (not monotone)",
					ev.Name, key, *ev.TS, lastTS[key])
			}
			lastTS[key] = *ev.TS
			if ev.PID != obs.DriverPID {
				if ev.PID < 0 || ev.PID > 1 {
					t.Errorf("span %q on pid %d, want node 0 or 1", ev.Name, ev.PID)
				}
				if ev.TID < 0 || ev.TID > 3 {
					t.Errorf("span %q on tid %d, want rank 0..3", ev.Name, ev.TID)
				}
				// Ranks 0,1 live on node 0; ranks 2,3 on node 1.
				if want := ev.TID / 2; ev.PID != want {
					t.Errorf("span %q: rank %d on pid %d, want %d", ev.Name, ev.TID, ev.PID, want)
				}
			}
		case "i":
			sawInstant = true
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	if !sawSpan {
		t.Error("no X (span) events recorded")
	}
	if !sawInstant {
		t.Error("P2PEvents enabled but no instant events recorded")
	}
	for rank := 0; rank < 4; rank++ {
		if name := threadNames[[2]int{rank / 2, rank}]; !strings.HasPrefix(name, "rank") {
			t.Errorf("rank %d missing thread_name metadata (got %q)", rank, name)
		}
	}
}

// stripWall drops every metric line whose name mentions wall clock, which
// is the documented convention for non-deterministic quantities.
func stripWall(prom []byte) string {
	var keep []string
	for _, line := range strings.Split(string(prom), "\n") {
		if strings.Contains(line, "wall") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

func TestGoldenDeterminism(t *testing.T) {
	_, trace1, prom1 := runAlltoall(t)
	_, trace2, prom2 := runAlltoall(t)
	if !bytes.Equal(trace1, trace2) {
		t.Error("trace.json differs across two identical runs")
	}
	if stripWall(prom1) != stripWall(prom2) {
		t.Errorf("virtual-time metrics differ across two identical runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			stripWall(prom1), stripWall(prom2))
	}
}

func TestGoldenLevelBytesSumToTotal(t *testing.T) {
	sc, _, prom := runAlltoall(t)
	reg := sc.Registry()
	total := reg.FindCounter("mpi_bytes_total")
	if total <= 0 {
		t.Fatalf("mpi_bytes_total = %v, want > 0", total)
	}
	perLevel := reg.SumCounters("mpi_level_bytes_total")
	if math.Abs(total-perLevel) > 0.5 {
		t.Errorf("per-level bytes %v != total bytes %v", perLevel, total)
	}
	if !strings.Contains(string(prom), "mpi_level_bytes_total{level=\"node\"}") {
		t.Error("prometheus output missing per-level byte counter for the node level")
	}
}
