// EngineObserver bridges the sim engine's Observer hook into the metric
// registry: virtual-time event accounting plus the wall-clock engine
// health metrics (events per wall second, goroutine wake latency). Wall
// metrics carry "wall" in their names so deterministic consumers (golden
// tests, diffable artifacts) can filter them.

package obs

import (
	"sync"
	"time"
)

// EngineObserver implements sim.Observer, feeding a Scope. Create with
// NewEngineObserver, install with engine.SetObserver, and call Finish
// after the run to seal the rate metrics.
type EngineObserver struct {
	scope *Scope

	events   *Counter   // sim_events_total
	advances *Counter   // sim_advances_total (distinct virtual instants)
	depthMax *Gauge     // sim_queue_depth_max
	blocks   *Counter   // sim_blocks_total
	wakeHist *Histogram // sim_wall_wake_latency_seconds

	wallStart time.Time

	mu        sync.Mutex
	blockedAt map[string]float64 // proc -> virtual block time (BlockSpans)
}

// NewEngineObserver returns an observer recording into the scope. Returns
// nil (a valid no-op sim.Observer must not be nil-interfaced, so callers
// should skip SetObserver) when the scope is nil.
func NewEngineObserver(s *Scope) *EngineObserver {
	if s == nil {
		return nil
	}
	reg := s.Registry()
	o := &EngineObserver{
		scope:     s,
		events:    reg.Counter("sim_events_total"),
		advances:  reg.Counter("sim_advances_total"),
		depthMax:  reg.Gauge("sim_queue_depth_max"),
		blocks:    reg.Counter("sim_blocks_total"),
		wakeHist:  reg.Histogram("sim_wall_wake_latency_seconds", WallBuckets()),
		wallStart: time.Now(),
	}
	if s.Options().BlockSpans {
		o.blockedAt = map[string]float64{}
	}
	return o
}

// OnAdvance implements sim.Observer.
func (o *EngineObserver) OnAdvance(now float64, fired, queueDepth int) {
	o.events.AddInt(int64(fired))
	o.advances.AddInt(1)
	o.depthMax.SetMax(float64(queueDepth + fired)) // depth before the batch fired
}

// OnBlock implements sim.Observer.
func (o *EngineObserver) OnBlock(proc string, now float64) {
	o.blocks.AddInt(1)
	if o.blockedAt != nil {
		o.mu.Lock()
		o.blockedAt[proc] = now
		o.mu.Unlock()
	}
}

// OnWake implements sim.Observer.
func (o *EngineObserver) OnWake(proc string, now float64, wallLatency float64) {
	if wallLatency > 0 {
		o.wakeHist.Observe(wallLatency)
	}
	if o.blockedAt != nil {
		o.mu.Lock()
		start, ok := o.blockedAt[proc]
		if ok {
			delete(o.blockedAt, proc)
		}
		o.mu.Unlock()
		if ok && now > start {
			if pid, tid, bound := o.scope.LookupProc(proc); bound {
				o.scope.Span(pid, tid, "blocked", "sim", start, now)
			}
		}
	}
}

// Finish seals wall-rate metrics: sim_wall_events_per_second and
// sim_wall_seconds. Call once, after engine.Run returns.
func (o *EngineObserver) Finish() {
	if o == nil {
		return
	}
	wall := time.Since(o.wallStart).Seconds()
	reg := o.scope.Registry()
	reg.Gauge("sim_wall_seconds").Set(wall)
	if wall > 0 {
		reg.Gauge("sim_wall_events_per_second").Set(o.events.Value() / wall)
	}
}
