// Chrome trace-event JSON import: the inverse of WriteTraceJSON, close
// enough that a written trace reads back into an equivalent Scope. The
// reader exists so mrtrace can open traces produced by other processes
// (mrserved's server-side request traces in particular) and render the
// same flame summary it prints for its own runs.

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// ReadTraceJSON reconstructs a Scope from Chrome trace-event JSON as
// produced by WriteTraceJSON: metadata ("M") events become track names,
// complete ("X") events spans, instant ("i") events instants, and the
// otherData block run metadata. Numeric args are kept (truncated to
// int64, the only arg type the Scope model holds); other arg types are
// dropped. Unknown phases are skipped rather than rejected, so traces
// from other tools that follow the format mostly load too.
func ReadTraceJSON(r io.Reader) (*Scope, error) {
	var tf traceFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tf); err != nil {
		return nil, fmt.Errorf("parsing trace JSON: %w", err)
	}
	sc := New(Options{MaxSpans: len(tf.TraceEvents) + 1})
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "M":
			name, _ := ev.Args["name"].(string)
			switch ev.Name {
			case "process_name":
				sc.SetProcessName(ev.PID, name)
			case "thread_name":
				sc.SetThreadName(ev.PID, ev.TID, name)
			}
		case "X":
			var dur float64
			if ev.Dur != nil {
				dur = *ev.Dur
			}
			sc.Span(ev.PID, ev.TID, ev.Name, ev.Cat,
				usToSec(ev.TS), usToSec(ev.TS+dur), intArgs(ev.Args)...)
		case "i":
			sc.Instant(ev.PID, ev.TID, ev.Name, ev.Cat, usToSec(ev.TS), intArgs(ev.Args)...)
		}
	}
	// SetMeta in sorted order so the mirrored obs_run_info gauges list
	// deterministically.
	keys := make([]string, 0, len(tf.OtherData))
	for k := range tf.OtherData {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		sc.SetMeta(k, tf.OtherData[k])
	}
	return sc, nil
}

// ReadTraceFile reads the trace-event JSON at path into a Scope.
func ReadTraceFile(path string) (*Scope, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc, err := ReadTraceJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// usToSec converts trace microseconds back to virtual seconds.
func usToSec(us float64) float64 { return us / 1e6 }

// intArgs converts a JSON args object back to the integer Arg list,
// sorted by key (the map held no order to preserve).
func intArgs(m map[string]any) []Arg {
	if len(m) == 0 {
		return nil
	}
	args := make([]Arg, 0, len(m))
	for k, v := range m {
		if f, ok := v.(float64); ok {
			args = append(args, Arg{Key: k, Val: int64(f)})
		}
	}
	sort.Slice(args, func(i, j int) bool { return args[i].Key < args[j].Key })
	return args
}
