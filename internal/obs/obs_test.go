package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilScopeIsNoOp(t *testing.T) {
	var s *Scope
	// None of these may panic, allocate state, or return non-zero data.
	s.Span(0, 0, "x", "c", 0, 1)
	s.Instant(0, 0, "x", "c", 0)
	s.Phase("p", 0, 1)
	s.SetProcessName(0, "n")
	s.SetThreadName(0, 0, "t")
	s.BindProc("p0", 0, 0)
	if _, _, ok := s.LookupProc("p0"); ok {
		t.Error("nil scope resolved a proc binding")
	}
	if s.Enabled() {
		t.Error("nil scope reports enabled")
	}
	if got := len(s.Spans()); got != 0 {
		t.Errorf("nil scope has %d spans", got)
	}
	if s.Registry() != nil {
		t.Error("nil scope returned a registry")
	}
	// Nil registry chains stay nil-safe too.
	s.Registry().Counter("c").Add(1)
	s.Registry().Gauge("g").SetMax(2)
	s.Registry().Histogram("h", TimeBuckets()).Observe(3)
	if v := s.Registry().FindCounter("c"); v != 0 {
		t.Errorf("nil registry counter = %v", v)
	}
}

func TestScopeSpanCapAndDropCount(t *testing.T) {
	s := New(Options{MaxSpans: 2})
	for i := 0; i < 5; i++ {
		s.Span(0, 0, "op", "c", float64(i), float64(i+1))
	}
	if got := len(s.Spans()); got != 2 {
		t.Errorf("kept %d spans, want cap of 2", got)
	}
	if got := s.DroppedSpans(); got != 3 {
		t.Errorf("dropped %d spans, want 3", got)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("bytes", L("level", "node"))
	c.Add(10)
	c.Add(-5) // ignored: counters are monotone
	c.AddInt(2)
	if got := c.Value(); got != 12 {
		t.Errorf("counter = %v, want 12", got)
	}
	if r.Counter("bytes", L("level", "node")) != c {
		t.Error("same name+labels did not return the same counter")
	}
	if r.Counter("bytes", L("level", "core")) == c {
		t.Error("different labels returned the same counter")
	}

	g := r.Gauge("depth")
	g.SetMax(3)
	g.SetMax(1) // SetMax keeps the max
	if got := g.Value(); got != 3 {
		t.Errorf("gauge after SetMax = %v, want 3", got)
	}
	g.Set(1)
	if got := g.Value(); got != 1 {
		t.Errorf("gauge after Set = %v, want 1", got)
	}

	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	if h.n != 4 || h.inf != 1 {
		t.Errorf("histogram n=%d inf=%d, want 4 and 1", h.n, h.inf)
	}
	if h.counts[0] != 1 || h.counts[1] != 1 || h.counts[2] != 1 {
		t.Errorf("bucket counts = %v, want one per bucket", h.counts)
	}
	if h.sum != 555.5 {
		t.Errorf("histogram sum = %v, want 555.5", h.sum)
	}
}

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(10, -2, 4)
	want := []float64{0.01, 0.1, 1, 10}
	if len(b) != len(want) {
		t.Fatalf("got %v", b)
	}
	for i := range b {
		if diff := b[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Errorf("buckets not ascending: %v", b)
		}
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("z").Add(1)
	r.Counter("a", L("k", "2")).Add(1)
	r.Counter("a", L("k", "1")).Add(1)
	r.Gauge("m").Set(5)
	s1 := r.Snapshot()
	s2 := r.Snapshot()
	if len(s1) != 4 {
		t.Fatalf("snapshot has %d points, want 4", len(s1))
	}
	for i := range s1 {
		if s1[i].key() != s2[i].key() {
			t.Errorf("snapshot order unstable at %d: %q vs %q", i, s1[i].key(), s2[i].key())
		}
	}
	if s1[0].Name != "a" || s1[2].Name != "m" || s1[3].Name != "z" {
		t.Errorf("snapshot not sorted: %v %v %v %v", s1[0].Name, s1[1].Name, s1[2].Name, s1[3].Name)
	}
}

func TestWritePrometheusHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("coll_seconds", []float64{1, 10}, L("op", "Alltoall"))
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE coll_seconds histogram",
		`coll_seconds_bucket{le="1",op="Alltoall"} 1`,
		`coll_seconds_bucket{le="10",op="Alltoall"} 2`,
		`coll_seconds_bucket{le="+Inf",op="Alltoall"} 3`,
		`coll_seconds_sum{op="Alltoall"} 55.5`,
		`coll_seconds_count{op="Alltoall"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCSVQuoting(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", L("k", `va"lue`)).Add(1)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `""`) {
		t.Errorf("CSV did not escape the embedded quote:\n%s", buf.String())
	}
}

func TestWriteTraceJSONEmptyScope(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraceJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty-scope trace does not parse: %v", err)
	}
	if len(doc.TraceEvents) != 0 {
		t.Errorf("empty scope produced %d events", len(doc.TraceEvents))
	}
}

func TestSummaryOnEmptyScope(t *testing.T) {
	if out := Summary(nil, 5); out == "" {
		t.Error("Summary(nil) should still render a header, not an empty string")
	}
	s := New(Options{})
	if out := Summary(s, 5); strings.Contains(out, "NaN") {
		t.Errorf("Summary of empty scope contains NaN:\n%s", out)
	}
}

func TestPhaseRecordsOnDriverTrack(t *testing.T) {
	s := New(Options{})
	s.Phase("warmup", 1, 2, Arg{Key: "iters", Val: 3})
	spans := s.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	sp := spans[0]
	if sp.PID != DriverPID || sp.Cat != "phase" || sp.Name != "warmup" {
		t.Errorf("phase span = %+v", sp)
	}
}
