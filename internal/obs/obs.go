// Package obs is the unified observability layer of the simulation stack:
// span tracing in *virtual* sim time, a metric registry holding counters,
// gauges and fixed log-bucket histograms, and exporters for Chrome
// trace-event JSON (loadable in Perfetto / chrome://tracing), Prometheus
// text exposition, and CSV.
//
// The dual-clock design: spans and most metrics are measured against the
// discrete-event engine's virtual clock (collective latency, bytes moved
// per hierarchy level, phase durations), while a small set of engine
// health metrics (events per wall second, goroutine wake latency) use the
// wall clock — their names carry a "wall" component so deterministic
// consumers can filter them out.
//
// Every entry point is nil-safe: a nil *Scope, *Counter, *Gauge or
// *Histogram is a no-op, so instrumented code needs no "if enabled" guard
// beyond the nil checks it gets for free, and the disabled path performs
// no allocations.
package obs

import (
	"fmt"
	"sort"
	"sync"
)

// DriverPID is the Perfetto "process" id reserved for driver-level phase
// spans (reorder, split, warmup, timed iterations) that do not belong to
// any simulated node. Simulated nodes use their node index as pid.
const DriverPID = 1 << 20

// Arg is one key/value annotation attached to a span.
type Arg struct {
	Key string
	Val int64
}

// Span is one completed operation on one track: a Perfetto "complete"
// event. Times are virtual seconds.
type Span struct {
	PID   int // simulated node (or DriverPID)
	TID   int // world rank within the node's process group
	Name  string
	Cat   string
	Start float64
	End   float64
	Args  []Arg
}

// Instant is a zero-duration marker event.
type Instant struct {
	PID  int
	TID  int
	Name string
	Cat  string
	At   float64
	Args []Arg
}

// Options tunes a Scope.
type Options struct {
	// MaxSpans caps the span buffer; further spans are counted (exported
	// as the obs_spans_dropped_total counter) but not stored. 0 means the
	// default of 1<<20.
	MaxSpans int
	// P2PEvents records one instant event per point-to-point message
	// (including the messages collective algorithms issue). High volume;
	// intended for small runs inspected in Perfetto.
	P2PEvents bool
	// BlockSpans records one "blocked" span per process park/wake pair,
	// showing when each rank sat idle. High volume.
	BlockSpans bool
}

// Scope is one run's observability context: a span buffer, track naming
// metadata, and a metric registry. All methods are safe for concurrent
// use and all are no-ops on a nil receiver.
type Scope struct {
	opts Options
	reg  *Registry

	mu          sync.Mutex
	spans       []Span
	instants    []Instant
	dropped     int64
	procNames   map[int]string
	threadNames map[[2]int]string
	procBind    map[string][2]int // sim process name -> (pid, tid)
	meta        map[string]string // run metadata exported with traces/metrics
}

// New returns an enabled Scope.
func New(opts Options) *Scope {
	if opts.MaxSpans <= 0 {
		opts.MaxSpans = 1 << 20
	}
	return &Scope{
		opts:        opts,
		reg:         NewRegistry(),
		procNames:   map[int]string{},
		threadNames: map[[2]int]string{},
		procBind:    map[string][2]int{},
		meta:        map[string]string{},
	}
}

// SetMeta records one key/value of run metadata (e.g. the fault-plan seed
// and hash). Metadata is embedded in the Perfetto export's otherData block
// and mirrored as an obs_run_info gauge so both trace and metric consumers
// can attribute a run to its exact configuration.
func (s *Scope) SetMeta(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.meta[key] = value
	s.mu.Unlock()
	s.reg.Gauge("obs_run_info", L(key, value)).Set(1)
}

// Meta returns a copy of the run metadata.
func (s *Scope) Meta() map[string]string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.meta))
	for k, v := range s.meta {
		out[k] = v
	}
	return out
}

// Enabled reports whether the scope records anything.
func (s *Scope) Enabled() bool { return s != nil }

// Options returns the scope's options (zero value on nil).
func (s *Scope) Options() Options {
	if s == nil {
		return Options{}
	}
	return s.opts
}

// Registry returns the scope's metric registry (nil on a nil scope).
func (s *Scope) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Span records one completed span.
func (s *Scope) Span(pid, tid int, name, cat string, start, end float64, args ...Arg) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.spans) >= s.opts.MaxSpans {
		s.dropped++
		return
	}
	s.spans = append(s.spans, Span{PID: pid, TID: tid, Name: name, Cat: cat, Start: start, End: end, Args: args})
}

// Instant records a zero-duration marker.
func (s *Scope) Instant(pid, tid int, name, cat string, at float64, args ...Arg) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.instants) >= s.opts.MaxSpans {
		s.dropped++
		return
	}
	s.instants = append(s.instants, Instant{PID: pid, TID: tid, Name: name, Cat: cat, At: at, Args: args})
}

// Phase records a driver-level phase span (reorder, warmup, timed …) on
// the dedicated driver track.
func (s *Scope) Phase(name string, start, end float64, args ...Arg) {
	s.Span(DriverPID, 0, name, "phase", start, end, args...)
}

// SetProcessName names a Perfetto process (a simulated node).
func (s *Scope) SetProcessName(pid int, name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.procNames[pid] = name
}

// SetThreadName names a Perfetto thread (a rank) within a process.
func (s *Scope) SetThreadName(pid, tid int, name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.threadNames[[2]int{pid, tid}] = name
}

// ProcessName returns the name set for a Perfetto process, or "".
func (s *Scope) ProcessName(pid int) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.procNames[pid]
}

// ThreadName returns the name set for a Perfetto thread, or "".
func (s *Scope) ThreadName(pid, tid int) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.threadNames[[2]int{pid, tid}]
}

// BindProc associates a sim process name (e.g. "rank3") with its Perfetto
// (pid, tid) track, so engine-level observers can attribute block/wake
// activity to the right track.
func (s *Scope) BindProc(proc string, pid, tid int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.procBind[proc] = [2]int{pid, tid}
}

// LookupProc resolves a sim process name to its (pid, tid) track,
// reporting whether a binding exists.
func (s *Scope) LookupProc(proc string) (pid, tid int, ok bool) {
	if s == nil {
		return 0, 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.procBind[proc]
	return t[0], t[1], ok
}

// Spans returns a copy of the recorded spans.
func (s *Scope) Spans() []Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Span(nil), s.spans...)
}

// Instants returns a copy of the recorded instant events.
func (s *Scope) Instants() []Instant {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Instant(nil), s.instants...)
}

// DroppedSpans returns how many spans/instants were discarded because the
// buffer was full.
func (s *Scope) DroppedSpans() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// trackNames returns sorted copies of the naming metadata.
func (s *Scope) trackNames() (procs []struct {
	PID  int
	Name string
}, threads []struct {
	PID, TID int
	Name     string
}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for pid, name := range s.procNames {
		procs = append(procs, struct {
			PID  int
			Name string
		}{pid, name})
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i].PID < procs[j].PID })
	for k, name := range s.threadNames {
		threads = append(threads, struct {
			PID, TID int
			Name     string
		}{k[0], k[1], name})
	}
	sort.Slice(threads, func(i, j int) bool {
		if threads[i].PID != threads[j].PID {
			return threads[i].PID < threads[j].PID
		}
		return threads[i].TID < threads[j].TID
	})
	return procs, threads
}

// labelString renders labels canonically for map keys and export:
// {k1="v1",k2="v2"} with keys sorted.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	out := "{"
	for i, l := range ls {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return out + "}"
}
