// Metric registry: counters, gauges, and histograms with fixed log-scale
// buckets, addressed by name + label set. Metric handles are cheap to
// cache and safe for concurrent use; nil handles are no-ops so callers
// can resolve them once and use them unconditionally.

package obs

import (
	"fmt"
	"sort"
	"sync"
)

// Label is one metric dimension.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Registry holds a run's metrics.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	helps    map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		helps:    map[string]string{},
	}
}

// SetHelp registers the # HELP text WritePrometheus emits for the metric
// name (shared across its label sets). Nil-safe; the last call wins.
func (r *Registry) SetHelp(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.helps[name] = help
	r.mu.Unlock()
}

// help returns the registered help text for name, or "".
func (r *Registry) help(name string) string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.helps[name]
}

// Counter is a monotonically increasing value.
type Counter struct {
	name   string
	labels []Label
	mu     sync.Mutex
	v      float64
}

// Gauge is a point-in-time value.
type Gauge struct {
	name   string
	labels []Label
	mu     sync.Mutex
	v      float64
	set    bool
}

// Histogram is a fixed-bucket distribution. Bounds are upper bucket
// boundaries (inclusive), typically log-spaced; one implicit +Inf bucket
// catches the overflow.
type Histogram struct {
	name   string
	labels []Label
	bounds []float64
	mu     sync.Mutex
	counts []uint64
	inf    uint64
	sum    float64
	n      uint64
}

// Counter returns (creating if needed) the counter with the name and
// labels. Nil-safe: a nil registry returns a nil counter, whose methods
// are no-ops.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	key := name + labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[key]
	if c == nil {
		c = &Counter{name: name, labels: append([]Label(nil), labels...)}
		r.counters[key] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge with the name and labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	key := name + labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[key]
	if g == nil {
		g = &Gauge{name: name, labels: append([]Label(nil), labels...)}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram with the name,
// bucket bounds and labels. The bounds of the first creation win; they
// must be sorted ascending.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	key := name + labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[key]
	if h == nil {
		h = &Histogram{
			name:   name,
			labels: append([]Label(nil), labels...),
			bounds: append([]float64(nil), bounds...),
			counts: make([]uint64, len(bounds)),
		}
		r.hists[key] = h
	}
	return h
}

// Add increases the counter by v (negative deltas are ignored).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	c.mu.Lock()
	c.v += v
	c.mu.Unlock()
}

// AddInt increases the counter by an integer delta.
func (c *Counter) AddInt(v int64) { c.Add(float64(v)) }

// Value returns the counter's current value.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v, g.set = v, true
	g.mu.Unlock()
}

// Add adjusts the gauge by delta (for up/down quantities like in-flight
// request counts).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v, g.set = g.v+delta, true
	g.mu.Unlock()
}

// SetMax stores v if it exceeds the current value (or none is set).
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	if !g.set || v > g.v {
		g.v, g.set = v, true
	}
	g.mu.Unlock()
}

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	// Log-spaced bounds are few (≈10); linear scan beats binary search.
	placed := false
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			placed = true
			break
		}
	}
	if !placed {
		h.inf++
	}
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// LogBuckets returns count upper bounds base^minExp, base^(minExp+1), …
// — the fixed log-scale bucket layout of the issue.
func LogBuckets(base float64, minExp, count int) []float64 {
	out := make([]float64, count)
	v := pow(base, minExp)
	for i := range out {
		out[i] = v
		v *= base
	}
	return out
}

func pow(base float64, exp int) float64 {
	v := 1.0
	if exp >= 0 {
		for i := 0; i < exp; i++ {
			v *= base
		}
		return v
	}
	for i := 0; i < -exp; i++ {
		v /= base
	}
	return v
}

// TimeBuckets returns the default latency layout: decades from 100 ns to
// 100 s of virtual time.
func TimeBuckets() []float64 { return LogBuckets(10, -7, 10) }

// SearchBuckets returns the bucket layout for order-search latencies:
// power-of-two buckets from ~1 µs to ~8 s, fine enough to separate the
// equivalence-class fast path from a full k! evaluation.
func SearchBuckets() []float64 { return LogBuckets(2, -20, 24) }

// WallBuckets returns the default wall-clock latency layout: decades from
// 100 ns to 1 s.
func WallBuckets() []float64 { return LogBuckets(10, -7, 8) }

// Point is one metric in a registry snapshot. For histograms Value is the
// sample sum, Count the sample count, and BucketCounts the per-bound
// cumulative-free counts (the +Inf bucket is Count minus their sum).
type Point struct {
	Name         string
	Labels       []Label
	Type         string // "counter", "gauge", "histogram"
	Value        float64
	Count        uint64
	Bounds       []float64
	BucketCounts []uint64
}

// key orders points deterministically.
func (p Point) key() string { return p.Name + labelString(p.Labels) }

// Snapshot returns every metric's current state, sorted by name+labels.
func (r *Registry) Snapshot() []Point {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()

	pts := make([]Point, 0, len(counters)+len(gauges)+len(hists))
	for _, c := range counters {
		c.mu.Lock()
		pts = append(pts, Point{Name: c.name, Labels: c.labels, Type: "counter", Value: c.v})
		c.mu.Unlock()
	}
	for _, g := range gauges {
		g.mu.Lock()
		pts = append(pts, Point{Name: g.name, Labels: g.labels, Type: "gauge", Value: g.v})
		g.mu.Unlock()
	}
	for _, h := range hists {
		h.mu.Lock()
		pts = append(pts, Point{
			Name: h.name, Labels: h.labels, Type: "histogram",
			Value: h.sum, Count: h.n,
			Bounds:       append([]float64(nil), h.bounds...),
			BucketCounts: append([]uint64(nil), h.counts...),
		})
		h.mu.Unlock()
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].key() < pts[j].key() })
	return pts
}

// FindCounter returns the current value of the counter with the given
// name and labels, or 0 when absent.
func (r *Registry) FindCounter(name string, labels ...Label) float64 {
	if r == nil {
		return 0
	}
	key := name + labelString(labels)
	r.mu.Lock()
	c := r.counters[key]
	r.mu.Unlock()
	return c.Value()
}

// FindGauge returns the current value of the gauge with the given name
// and labels, or 0 when absent.
func (r *Registry) FindGauge(name string, labels ...Label) float64 {
	if r == nil {
		return 0
	}
	key := name + labelString(labels)
	r.mu.Lock()
	g := r.gauges[key]
	r.mu.Unlock()
	return g.Value()
}

// SumCounters returns the summed value of every counter with the name,
// across all label sets.
func (r *Registry) SumCounters(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	var cs []*Counter
	for _, c := range r.counters {
		if c.name == name {
			cs = append(cs, c)
		}
	}
	r.mu.Unlock()
	var sum float64
	for _, c := range cs {
		sum += c.Value()
	}
	return sum
}

// formatValue renders a metric value without scientific-notation noise
// for integers while keeping full float precision otherwise.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
