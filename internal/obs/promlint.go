// Promtool-style linting of the text exposition, exported so packages
// that register metrics against their own registry (internal/fleet's
// fleet_* series in particular) can assert the same structural
// invariants the in-package promlint tests enforce: metric and label
// name charsets, label value escaping, HELP/TYPE placement, and series
// uniqueness — everything a real Prometheus scraper would reject.

package obs

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	// sampleRe splits "name{labels} value" / "name value".
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})? (\S+)$`)
)

// PromSample is one parsed sample line of a text exposition.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// parsePromLabels walks a {k="v",...} block, undoing exposition escapes,
// and errors on any syntax a Prometheus parser would reject.
func parsePromLabels(s string) (map[string]string, error) {
	out := map[string]string{}
	if s == "" {
		return out, nil
	}
	if !strings.HasPrefix(s, "{") || !strings.HasSuffix(s, "}") {
		return nil, fmt.Errorf("label block not braced: %q", s)
	}
	body := s[1 : len(s)-1]
	i := 0
	for i < len(body) {
		j := strings.IndexByte(body[i:], '=')
		if j < 0 {
			return nil, fmt.Errorf("label block missing '=': %q", body[i:])
		}
		name := body[i : i+j]
		if !labelNameRe.MatchString(name) {
			return nil, fmt.Errorf("bad label name %q in %q", name, s)
		}
		i += j + 1
		if i >= len(body) || body[i] != '"' {
			return nil, fmt.Errorf("label value not quoted at %q", body[i:])
		}
		i++
		var val strings.Builder
		for {
			if i >= len(body) {
				return nil, fmt.Errorf("unterminated label value in %q", s)
			}
			c := body[i]
			if c == '\\' {
				if i+1 >= len(body) {
					return nil, fmt.Errorf("dangling backslash in %q", s)
				}
				switch body[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("illegal escape \\%c in %q", body[i+1], s)
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			if c == '\n' {
				return nil, fmt.Errorf("raw newline inside label value in %q", s)
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("duplicate label %q in %q", name, s)
		}
		out[name] = val.String()
		if i < len(body) {
			if body[i] != ',' {
				return nil, fmt.Errorf("expected ',' after label in %q, got %q", s, body[i:])
			}
			i++
		}
	}
	return out, nil
}

// promBaseName strips the histogram sample suffixes off a metric name.
func promBaseName(name string) string {
	return strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
		"_bucket"), "_sum"), "_count")
}

// LintPrometheus parses a full text exposition (as WritePrometheus
// produces), erroring on any grammar or structure violation a scraper
// would reject, and returns the samples.
func LintPrometheus(out string) ([]PromSample, error) {
	typeOf := map[string]string{}
	helped := map[string]bool{}
	seen := map[string]bool{}
	var samples []PromSample
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" {
			return nil, fmt.Errorf("blank line in exposition")
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !metricNameRe.MatchString(name) {
				return nil, fmt.Errorf("malformed HELP line: %q", line)
			}
			if helped[name] {
				return nil, fmt.Errorf("duplicate HELP for %s", name)
			}
			if _, typedAlready := typeOf[name]; typedAlready {
				return nil, fmt.Errorf("HELP for %s after its TYPE line", name)
			}
			helped[name] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 || !metricNameRe.MatchString(fields[0]) {
				return nil, fmt.Errorf("malformed TYPE line: %q", line)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("unknown type %q in %q", fields[1], line)
			}
			if _, dup := typeOf[fields[0]]; dup {
				return nil, fmt.Errorf("duplicate TYPE for %s", fields[0])
			}
			typeOf[fields[0]] = fields[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			return nil, fmt.Errorf("unexpected comment line: %q", line)
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			return nil, fmt.Errorf("unparseable sample line: %q", line)
		}
		name, labelBlock, valStr := m[1], m[2], m[3]
		if _, ok := typeOf[name]; !ok {
			if _, ok := typeOf[promBaseName(name)]; !ok {
				return nil, fmt.Errorf("sample %q precedes its TYPE line", line)
			}
		}
		if valStr == "+Inf" || valStr == "-Inf" || valStr == "NaN" {
			return nil, fmt.Errorf("non-finite sample value in %q", line)
		}
		value, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("bad sample value in %q: %v", line, err)
		}
		labels, err := parsePromLabels(labelBlock)
		if err != nil {
			return nil, err
		}
		key := name + fmt.Sprint(labels)
		if seen[key] {
			return nil, fmt.Errorf("duplicate series: %q", line)
		}
		seen[key] = true
		samples = append(samples, PromSample{Name: name, Labels: labels, Value: value})
	}
	return samples, nil
}

// MissingHelp returns, sorted, the base metric names in the exposition
// that match one of the prefixes but carry no HELP line — the exposition
// hygiene check service packages run over their own registries.
func MissingHelp(out string, prefixes ...string) []string {
	helped := map[string]bool{}
	bases := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			if name, _, ok := strings.Cut(strings.TrimPrefix(line, "# HELP "), " "); ok {
				helped[name] = true
			}
			continue
		}
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if m := sampleRe.FindStringSubmatch(line); m != nil {
			bases[promBaseName(m[1])] = true
		}
	}
	var missing []string
	for base := range bases {
		if helped[base] {
			continue
		}
		for _, p := range prefixes {
			if strings.HasPrefix(base, p) {
				missing = append(missing, base)
				break
			}
		}
	}
	sort.Strings(missing)
	return missing
}
