package obs

import (
	"strings"
	"testing"
)

// TestTraceRoundTrip writes a populated scope out and reads it back: the
// spans, instants, track names, and metadata must survive.
func TestTraceRoundTrip(t *testing.T) {
	src := New(Options{})
	src.SetProcessName(1, "server")
	src.SetThreadName(1, 3, "trace deadbeef")
	src.SetMeta("run", "abc")
	src.Span(1, 3, "http /v1/map", "rt", 0.5, 0.75, Arg{Key: "http_status", Val: 200})
	src.Span(1, 3, "cache.lookup", "rt", 0.51, 0.52, Arg{Key: "hit", Val: 1})
	src.Instant(1, 3, "mark", "rt", 0.6)

	var buf strings.Builder
	if err := WriteTraceJSON(&buf, src); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}

	spans := got.Spans()
	if len(spans) != 2 {
		t.Fatalf("round trip kept %d spans, want 2", len(spans))
	}
	byName := map[string]Span{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	h := byName["http /v1/map"]
	if h.PID != 1 || h.TID != 3 || h.Cat != "rt" {
		t.Fatalf("span identity lost: %+v", h)
	}
	if h.Start < 0.4999 || h.Start > 0.5001 || h.End < 0.7499 || h.End > 0.7501 {
		t.Fatalf("span times drifted: %+v", h)
	}
	if len(h.Args) != 1 || h.Args[0].Key != "http_status" || h.Args[0].Val != 200 {
		t.Fatalf("span args lost: %+v", h.Args)
	}
	if len(got.Instants()) != 1 || got.Instants()[0].Name != "mark" {
		t.Fatalf("instants lost: %+v", got.Instants())
	}
	if got.Meta()["run"] != "abc" {
		t.Fatalf("metadata lost: %v", got.Meta())
	}

	// Track names survive: re-exporting mentions both names.
	var again strings.Builder
	if err := WriteTraceJSON(&again, got); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"server"`, `"trace deadbeef"`} {
		if !strings.Contains(again.String(), want) {
			t.Fatalf("re-export lost track name %s:\n%s", want, again.String())
		}
	}

	// Summary works on an imported scope — the mrtrace -open path.
	if s := Summary(got, 5); !strings.Contains(s, "http /v1/map") {
		t.Fatalf("summary of imported scope missing span:\n%s", s)
	}
}

func TestReadTraceJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadTraceJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadTraceJSONSkipsUnknownPhases(t *testing.T) {
	in := `{"traceEvents":[
		{"ph":"B","ts":0,"pid":1,"tid":1,"name":"begin"},
		{"ph":"X","ts":1000,"dur":500,"pid":1,"tid":1,"name":"op","args":{"n":3,"label":"text"}}
	],"displayTimeUnit":"ms"}`
	sc, err := ReadTraceJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	spans := sc.Spans()
	if len(spans) != 1 || spans[0].Name != "op" {
		t.Fatalf("spans %+v, want just op", spans)
	}
	// Non-numeric args are dropped, numeric kept.
	if len(spans[0].Args) != 1 || spans[0].Args[0] != (Arg{Key: "n", Val: 3}) {
		t.Fatalf("args %+v, want [n=3]", spans[0].Args)
	}
}
