// Prometheus text exposition and CSV export of the metric registry.

package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// promEscapeValue escapes a label value for the exposition format:
// backslash, double quote, and newline — and nothing else. Go's %q is
// deliberately not used here: it would turn valid UTF-8 label values
// into \u escapes Prometheus parsers reject.
func promEscapeValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// promEscapeHelp escapes a HELP text: backslash and newline only (quotes
// are legal in help text).
func promEscapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// promLabels renders a label set in exposition syntax ("" when empty),
// keys sorted, values escaped.
func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(promEscapeValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4): one # HELP (when registered via SetHelp) and
// one # TYPE header per metric name, histograms expanded into cumulative
// _bucket/_sum/_count series. Output is sorted and deterministic for a
// deterministic registry.
func WritePrometheus(w io.Writer, r *Registry) error {
	pts := r.Snapshot()
	typed := map[string]bool{}
	for _, p := range pts {
		if !typed[p.Name] {
			if help := r.help(p.Name); help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", p.Name, promEscapeHelp(help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", p.Name, p.Type); err != nil {
				return err
			}
			typed[p.Name] = true
		}
		switch p.Type {
		case "counter", "gauge":
			if _, err := fmt.Fprintf(w, "%s%s %s\n", p.Name, promLabels(p.Labels), formatValue(p.Value)); err != nil {
				return err
			}
		case "histogram":
			var cum uint64
			for i, b := range p.Bounds {
				cum += p.BucketCounts[i]
				le := L("le", fmt.Sprintf("%g", b))
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", p.Name, promLabels(p.Labels, le), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", p.Name, promLabels(p.Labels, L("le", "+Inf")), p.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", p.Name, promLabels(p.Labels), p.Value); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", p.Name, promLabels(p.Labels), p.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteCSV writes the registry as "name,labels,type,value,count" rows
// (histograms contribute their sum and count; buckets are omitted).
func WriteCSV(w io.Writer, r *Registry) error {
	if _, err := fmt.Fprintln(w, "name,labels,type,value,count"); err != nil {
		return err
	}
	for _, p := range r.Snapshot() {
		labels := strings.ReplaceAll(labelString(p.Labels), `"`, `""`)
		if _, err := fmt.Fprintf(w, "%s,\"%s\",%s,%s,%d\n", p.Name, labels, p.Type, formatValue(p.Value), p.Count); err != nil {
			return err
		}
	}
	return nil
}
