// Prometheus text exposition and CSV export of the metric registry.

package obs

import (
	"fmt"
	"io"
	"strings"
)

// promLabels renders a label set in exposition syntax ("" when empty).
func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	return labelString(all)
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4): one # TYPE header per metric name, histograms
// expanded into cumulative _bucket/_sum/_count series. Output is sorted
// and deterministic for a deterministic registry.
func WritePrometheus(w io.Writer, r *Registry) error {
	pts := r.Snapshot()
	typed := map[string]bool{}
	for _, p := range pts {
		if !typed[p.Name] {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", p.Name, p.Type); err != nil {
				return err
			}
			typed[p.Name] = true
		}
		switch p.Type {
		case "counter", "gauge":
			if _, err := fmt.Fprintf(w, "%s%s %s\n", p.Name, promLabels(p.Labels), formatValue(p.Value)); err != nil {
				return err
			}
		case "histogram":
			var cum uint64
			for i, b := range p.Bounds {
				cum += p.BucketCounts[i]
				le := L("le", fmt.Sprintf("%g", b))
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", p.Name, promLabels(p.Labels, le), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", p.Name, promLabels(p.Labels, L("le", "+Inf")), p.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", p.Name, promLabels(p.Labels), p.Value); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", p.Name, promLabels(p.Labels), p.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteCSV writes the registry as "name,labels,type,value,count" rows
// (histograms contribute their sum and count; buckets are omitted).
func WriteCSV(w io.Writer, r *Registry) error {
	if _, err := fmt.Fprintln(w, "name,labels,type,value,count"); err != nil {
		return err
	}
	for _, p := range r.Snapshot() {
		labels := strings.ReplaceAll(labelString(p.Labels), `"`, `""`)
		if _, err := fmt.Fprintf(w, "%s,\"%s\",%s,%s,%d\n", p.Name, labels, p.Type, formatValue(p.Value), p.Count); err != nil {
			return err
		}
	}
	return nil
}
