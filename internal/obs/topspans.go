// Per-track slowest-span drill-down: where Summary aggregates by span
// name across all tracks, TopSpans keeps tracks separate and surfaces
// individual long spans — the view that answers "which request, on which
// rank, was slow" for a loaded trace.

package obs

import (
	"fmt"
	"sort"
	"strings"
)

// TrackTop is the slowest spans of one (pid, tid) track.
type TrackTop struct {
	PID, TID int
	// Track is the human name: "process/thread" when both are named,
	// falling back to numeric ids.
	Track string
	// Total is the cumulative duration of all spans on the track (not
	// just the retained ones).
	Total float64
	// Spans holds at most the requested N spans, slowest first; ties
	// break by name then start time so the listing is deterministic.
	Spans []Span
}

// TopSpans returns, for every track with at least one span, the n
// slowest spans, tracks ordered by (PID, TID). Nil-safe.
func TopSpans(s *Scope, n int) []TrackTop {
	if s == nil || n <= 0 {
		return nil
	}
	byTrack := map[[2]int]*TrackTop{}
	for _, sp := range s.Spans() {
		k := [2]int{sp.PID, sp.TID}
		tt := byTrack[k]
		if tt == nil {
			tt = &TrackTop{PID: sp.PID, TID: sp.TID, Track: s.trackName(sp.PID, sp.TID)}
			byTrack[k] = tt
		}
		tt.Total += sp.End - sp.Start
		tt.Spans = append(tt.Spans, sp)
	}
	out := make([]TrackTop, 0, len(byTrack))
	for _, tt := range byTrack {
		sort.Slice(tt.Spans, func(i, j int) bool {
			di, dj := tt.Spans[i].End-tt.Spans[i].Start, tt.Spans[j].End-tt.Spans[j].Start
			if di != dj {
				return di > dj
			}
			if tt.Spans[i].Name != tt.Spans[j].Name {
				return tt.Spans[i].Name < tt.Spans[j].Name
			}
			return tt.Spans[i].Start < tt.Spans[j].Start
		})
		if len(tt.Spans) > n {
			tt.Spans = tt.Spans[:n]
		}
		out = append(out, *tt)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PID != out[j].PID {
			return out[i].PID < out[j].PID
		}
		return out[i].TID < out[j].TID
	})
	return out
}

// trackName resolves (pid, tid) to "process/thread", with numeric
// fallbacks for unnamed tracks.
func (s *Scope) trackName(pid, tid int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	proc := s.procNames[pid]
	if proc == "" {
		proc = fmt.Sprintf("pid %d", pid)
	}
	thread := s.threadNames[[2]int{pid, tid}]
	if thread == "" {
		thread = fmt.Sprintf("tid %d", tid)
	}
	return proc + "/" + thread
}

// FormatTopSpans renders TopSpans output for the terminal: one block per
// track, one line per span with its duration, share of the track's
// total, and span args.
func FormatTopSpans(tops []TrackTop) string {
	var b strings.Builder
	for i, tt := range tops {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "track %s: %d slowest spans (track total %.6f s)\n",
			tt.Track, len(tt.Spans), tt.Total)
		for _, sp := range tt.Spans {
			d := sp.End - sp.Start
			pct := 0.0
			if tt.Total > 0 {
				pct = 100 * d / tt.Total
			}
			fmt.Fprintf(&b, "  %-20s %12.6f s  %5.1f%%  @%.6f", sp.Name, d, pct, sp.Start)
			for _, a := range sp.Args {
				fmt.Fprintf(&b, "  %s=%d", a.Key, a.Val)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
