// Chrome trace-event JSON export (the "JSON Array Format" Perfetto and
// chrome://tracing accept): one Perfetto "process" per simulated node,
// one "thread" per rank, complete ("X") events for spans, instant ("i")
// events for markers, and metadata ("M") events naming the tracks.
// Timestamps are virtual microseconds.

package obs

import (
	"encoding/json"
	"io"
	"sort"
)

type traceEvent struct {
	Name string         `json:"name,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent      `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// secToUS converts virtual seconds to trace microseconds.
func secToUS(t float64) float64 { return t * 1e6 }

func argMap(args []Arg) map[string]any {
	if len(args) == 0 {
		return nil
	}
	m := make(map[string]any, len(args))
	for _, a := range args {
		m[a.Key] = a.Val
	}
	return m
}

// WriteTraceJSON writes the scope's spans and instants as Chrome
// trace-event JSON. The output is deterministic: events are sorted by
// (ts, pid, tid, name) after the metadata header.
func WriteTraceJSON(w io.Writer, s *Scope) error {
	if s == nil {
		_, err := w.Write([]byte(`{"traceEvents":[],"displayTimeUnit":"ms"}`))
		return err
	}
	procs, threads := s.trackNames()
	spans := s.Spans()
	instants := s.Instants()

	events := make([]traceEvent, 0, len(procs)+len(threads)+len(spans)+len(instants))
	for _, p := range procs {
		events = append(events, traceEvent{
			Name: "process_name", Ph: "M", PID: p.PID,
			Args: map[string]any{"name": p.Name},
		})
	}
	for _, t := range threads {
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", PID: t.PID, TID: t.TID,
			Args: map[string]any{"name": t.Name},
		})
	}
	meta := len(events)

	for _, sp := range spans {
		d := secToUS(sp.End - sp.Start)
		if d < 0 {
			d = 0
		}
		dur := d
		events = append(events, traceEvent{
			Name: sp.Name, Cat: sp.Cat, Ph: "X",
			TS: secToUS(sp.Start), Dur: &dur,
			PID: sp.PID, TID: sp.TID, Args: argMap(sp.Args),
		})
	}
	for _, in := range instants {
		events = append(events, traceEvent{
			Name: in.Name, Cat: in.Cat, Ph: "i",
			TS: secToUS(in.At), PID: in.PID, TID: in.TID,
			S: "t", Args: argMap(in.Args),
		})
	}
	body := events[meta:]
	sort.SliceStable(body, func(i, j int) bool {
		if body[i].TS != body[j].TS {
			return body[i].TS < body[j].TS
		}
		if body[i].PID != body[j].PID {
			return body[i].PID < body[j].PID
		}
		if body[i].TID != body[j].TID {
			return body[i].TID < body[j].TID
		}
		return body[i].Name < body[j].Name
	})

	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms", OtherData: s.Meta()})
}
