// File-writing conveniences for the CLI front-ends: each wraps one of the
// stream exporters with create/close handling so commands can map an
// output flag straight to a path.

package obs

import (
	"fmt"
	"os"
)

func writeFile(path string, write func(f *os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return f.Close()
}

// WriteTraceFile writes the scope's Chrome trace-event JSON to path.
func WriteTraceFile(path string, s *Scope) error {
	return writeFile(path, func(f *os.File) error { return WriteTraceJSON(f, s) })
}

// WritePrometheusFile writes the registry's Prometheus text format to path.
func WritePrometheusFile(path string, r *Registry) error {
	return writeFile(path, func(f *os.File) error { return WritePrometheus(f, r) })
}

// WriteCSVFile writes the registry's CSV snapshot to path.
func WriteCSVFile(path string, r *Registry) error {
	return writeFile(path, func(f *os.File) error { return WriteCSV(f, r) })
}
