// Terminal flame-style summary: the top-k span names by cumulative
// virtual time (with proportional bars) and the per-hierarchy-level byte
// breakdown, for humans who will not open Perfetto.

package obs

import (
	"fmt"
	"sort"
	"strings"
)

// opStat aggregates spans sharing a name.
type opStat struct {
	name  string
	total float64
	max   float64
	count int
}

// Summary renders the scope's headline view: top-k operations by
// cumulative virtual time across all tracks, then the bytes moved per
// hierarchy level (from the mpi_level_bytes_total counters).
func Summary(s *Scope, topK int) string {
	if s == nil {
		return "observability disabled\n"
	}
	if topK <= 0 {
		topK = 10
	}
	var b strings.Builder

	stats := map[string]*opStat{}
	for _, sp := range s.Spans() {
		if sp.Cat == "sim" {
			continue // blocked-time spans would dwarf the operations
		}
		st := stats[sp.Name]
		if st == nil {
			st = &opStat{name: sp.Name}
			stats[sp.Name] = st
		}
		d := sp.End - sp.Start
		st.total += d
		if d > st.max {
			st.max = d
		}
		st.count++
	}
	ordered := make([]*opStat, 0, len(stats))
	for _, st := range stats {
		ordered = append(ordered, st)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].total != ordered[j].total {
			return ordered[i].total > ordered[j].total
		}
		return ordered[i].name < ordered[j].name
	})
	if len(ordered) > topK {
		ordered = ordered[:topK]
	}

	fmt.Fprintf(&b, "top %d operations by cumulative virtual time (all tracks)\n", len(ordered))
	var widest float64
	for _, st := range ordered {
		if st.total > widest {
			widest = st.total
		}
	}
	for _, st := range ordered {
		bar := ""
		if widest > 0 {
			bar = strings.Repeat("█", 1+int(29*st.total/widest))
		}
		fmt.Fprintf(&b, "  %-16s %12.6f s  ×%-7d max %10.6f s  %s\n",
			st.name, st.total, st.count, st.max, bar)
	}
	if dropped := s.DroppedSpans(); dropped > 0 {
		fmt.Fprintf(&b, "  (%d spans dropped — raise Options.MaxSpans for full traces)\n", dropped)
	}

	reg := s.Registry()
	levelSum := 0.0
	var levels []Point
	for _, p := range reg.Snapshot() {
		if p.Name == "mpi_level_bytes_total" {
			levels = append(levels, p)
			levelSum += p.Value
		}
	}
	if len(levels) > 0 {
		fmt.Fprintf(&b, "bytes moved per hierarchy level\n")
		for _, p := range levels {
			name := "?"
			for _, l := range p.Labels {
				if l.Key == "level" {
					name = l.Value
				}
			}
			pct := 0.0
			if levelSum > 0 {
				pct = 100 * p.Value / levelSum
			}
			fmt.Fprintf(&b, "  %-10s %15.0f B  %5.1f%%\n", name, p.Value, pct)
		}
		fmt.Fprintf(&b, "  %-10s %15.0f B  (total %s)\n", "sum", levelSum,
			formatValue(reg.FindCounter("mpi_bytes_total")))
	}
	return b.String()
}
