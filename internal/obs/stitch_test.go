// Trace stitching: two rt tracer exports sharing a trace id merge into
// one scope with per-input Perfetto processes, preserved thread tracks,
// and the replica's clock shifted onto the gate's.

package obs_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/rt"
)

// fakeClock is a manually advanced clock for deterministic span times.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestStitchAlignsSharedTrace(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

	// Gate: root [0ms, 30ms] with a proxy child and an instant event.
	gc := &fakeClock{t: base}
	gate := rt.NewTracer(rt.Options{Service: "mrgate", Now: gc.now})
	ctx, root := gate.StartRequest(context.Background(), "gate /v1/advise", "")
	tp := root.Traceparent()
	gc.advance(10 * time.Millisecond)
	_, proxy := rt.StartSpan(ctx, "proxy r0")
	root.Event("failover_attempt", obs.Arg{Key: "attempt", Val: 1})
	gc.advance(10 * time.Millisecond)
	proxy.End()
	gc.advance(10 * time.Millisecond)
	root.End()

	// Replica: same trace id, but its tracer epoch makes the request span
	// sit at [100ms, 120ms] on its own clock — a 95ms skew from the
	// gate's [5ms, 25ms] view of the same wall-clock window.
	rc := &fakeClock{t: base}
	rep := rt.NewTracer(rt.Options{Service: "mrserved", Now: rc.now})
	rc.advance(100 * time.Millisecond)
	_, rroot := rep.StartRequest(context.Background(), "http /v1/advise", tp)
	rc.advance(20 * time.Millisecond)
	rroot.End()
	// A replica-only trace: copied with the same offset, not shared.
	_, solo := rep.StartRequest(context.Background(), "http /metrics", "")
	solo.End()

	merged, summaries := obs.Stitch([]obs.StitchInput{
		{Label: "mrgate", Scope: gate.Scope()},
		{Label: "mrserved-0", Scope: rep.Scope()},
	})

	if got := merged.ProcessName(1); got != "mrgate" {
		t.Fatalf("pid 1 = %q", got)
	}
	if got := merged.ProcessName(2); got != "mrserved-0" {
		t.Fatalf("pid 2 = %q", got)
	}

	id, _, _, ok := rt.ParseTraceparent(tp)
	if !ok {
		t.Fatalf("bad traceparent %q", tp)
	}
	shared := 0
	for _, s := range summaries {
		if s.ID == id.String() {
			shared++
			if !s.Shared {
				t.Fatalf("trace %s not marked shared: %+v", s.ID, s)
			}
			if len(s.Spans) != 2 || s.Spans[0] != 2 || s.Spans[1] != 1 {
				t.Fatalf("trace %s span counts = %v, want [2 1]", s.ID, s.Spans)
			}
		} else if s.Shared {
			t.Fatalf("replica-only trace %s marked shared", s.ID)
		}
	}
	if shared != 1 {
		t.Fatalf("shared trace id missing from summaries: %+v", summaries)
	}

	// Clock alignment: the gate's envelope for the trace is [0ms, 30ms] →
	// midpoint 15ms; the replica recorded [100ms, 120ms] → midpoint
	// 110ms; the −95ms offset lands its span at [5ms, 25ms].
	var repSpan *obs.Span
	for _, sp := range merged.Spans() {
		sp := sp
		if sp.PID == 2 && sp.Name == "http /v1/advise" {
			repSpan = &sp
		}
	}
	if repSpan == nil {
		t.Fatal("replica span missing from the stitched scope")
	}
	const eps = 1e-9
	if repSpan.Start < 0.005-eps || repSpan.Start > 0.005+eps ||
		repSpan.End < 0.025-eps || repSpan.End > 0.025+eps {
		t.Fatalf("replica span not aligned: [%v, %v], want [0.005, 0.025]", repSpan.Start, repSpan.End)
	}

	// The gate's instant event rides along on its trace track.
	events := 0
	for _, in := range merged.Instants() {
		if in.PID == 1 && in.Name == "failover_attempt" {
			events++
		}
	}
	if events != 1 {
		t.Fatalf("gate instant events in stitched scope = %d", events)
	}

	// Thread tracks keep the "trace <id>" naming so a re-stitch (or a
	// reader) can still join on them.
	found := false
	for _, sp := range merged.Spans() {
		if sp.PID == 2 && merged.ThreadName(2, sp.TID) == "trace "+id.String() {
			found = true
		}
	}
	if !found {
		t.Fatal("replica trace track name not preserved")
	}
}
