// Cross-process trace stitching: merge the Perfetto exports of several
// cooperating processes (a gate and its replicas) into one Scope, joined
// on the W3C trace ids both sides committed their spans under. The rt
// tracer names each committed trace's thread track "trace <id>", so the
// same request shows up as one track per process; stitching re-homes each
// process under its own Perfetto pid and aligns the clocks so the gate's
// proxy span and the replica's server span of one request overlap in the
// flame view.
//
// Clock alignment: each export's timestamps are seconds since that
// process's tracer epoch, so two exports disagree by one (per-process)
// constant. For every trace id shared with the anchor (the first input,
// by convention the gate) the midpoint of the input's span envelope
// should coincide with the midpoint of the anchor's envelope for the same
// trace; the per-input offset is the median of those midpoint deltas —
// exact for a single proxied attempt, a close approximation under
// failover/hedging.

package obs

import (
	"sort"
	"strings"
)

// traceThreadPrefix is the rt tracer's thread-track naming convention
// stitching joins on.
const traceThreadPrefix = "trace "

// StitchInput is one process's trace export to merge.
type StitchInput struct {
	// Label names the input's Perfetto process in the stitched output;
	// empty falls back to the input scope's own first process name.
	Label string
	Scope *Scope
}

// StitchedTrace summarizes one trace id of the stitched output.
type StitchedTrace struct {
	// ID is the W3C trace id hex.
	ID string
	// Spans counts the trace's spans per input, aligned with the inputs
	// slice handed to Stitch.
	Spans []int
	// Shared reports whether more than one input contributed spans —
	// i.e. the trace actually crossed a process boundary.
	Shared bool
}

// Stitch merges the inputs into one Scope: input i becomes Perfetto
// process i+1 (named by its label), every track name is preserved, and
// non-anchor inputs are time-shifted onto the anchor's clock via shared
// trace ids. The returned summaries are sorted by trace id.
func Stitch(inputs []StitchInput) (*Scope, []StitchedTrace) {
	total := 1
	for _, in := range inputs {
		total += len(in.Scope.Spans()) + len(in.Scope.Instants())
	}
	out := New(Options{MaxSpans: total})

	// Per input: trace id -> [envelope start, envelope end] over the spans
	// on that trace's thread track.
	envelopes := make([]map[string][2]float64, len(inputs))
	for i, in := range inputs {
		env := map[string][2]float64{}
		for _, sp := range in.Scope.Spans() {
			id, ok := spanTraceID(in.Scope, sp)
			if !ok {
				continue
			}
			e, seen := env[id]
			if !seen {
				e = [2]float64{sp.Start, sp.End}
			} else {
				if sp.Start < e[0] {
					e[0] = sp.Start
				}
				if sp.End > e[1] {
					e[1] = sp.End
				}
			}
			env[id] = e
		}
		envelopes[i] = env
	}

	perTrace := map[string][]int{}
	for i, in := range inputs {
		pid := i + 1
		label := in.Label
		if label == "" {
			label = firstProcessName(in.Scope)
		}
		out.SetProcessName(pid, label)
		_, threads := in.Scope.trackNames()
		for _, th := range threads {
			out.SetThreadName(pid, th.TID, th.Name)
		}
		off := clockOffset(envelopes[0], envelopes[i], i == 0)
		for _, sp := range in.Scope.Spans() {
			out.Span(pid, sp.TID, sp.Name, sp.Cat, sp.Start+off, sp.End+off, sp.Args...)
			if id, ok := spanTraceID(in.Scope, sp); ok {
				counts, seen := perTrace[id]
				if !seen {
					counts = make([]int, len(inputs))
				}
				counts[i]++
				perTrace[id] = counts
			}
		}
		for _, ev := range in.Scope.Instants() {
			out.Instant(pid, ev.TID, ev.Name, ev.Cat, ev.At+off, ev.Args...)
		}
		for k, v := range in.Scope.Meta() {
			out.SetMeta(label+"."+k, v)
		}
	}

	summaries := make([]StitchedTrace, 0, len(perTrace))
	for id, counts := range perTrace {
		contributors := 0
		for _, n := range counts {
			if n > 0 {
				contributors++
			}
		}
		summaries = append(summaries, StitchedTrace{ID: id, Spans: counts, Shared: contributors > 1})
	}
	sort.Slice(summaries, func(i, j int) bool { return summaries[i].ID < summaries[j].ID })
	return out, summaries
}

// spanTraceID resolves the trace id a span was committed under, via the
// rt thread-naming convention.
func spanTraceID(sc *Scope, sp Span) (string, bool) {
	name := sc.ThreadName(sp.PID, sp.TID)
	if !strings.HasPrefix(name, traceThreadPrefix) {
		return "", false
	}
	return strings.TrimPrefix(name, traceThreadPrefix), true
}

// firstProcessName returns the lowest-pid process name of the scope.
func firstProcessName(sc *Scope) string {
	procs, _ := sc.trackNames()
	if len(procs) == 0 {
		return "process"
	}
	return procs[0].Name
}

// clockOffset estimates the constant to add to an input's timestamps to
// land on the anchor's clock: the median over shared trace ids of
// (anchor envelope midpoint − input envelope midpoint). The anchor, and
// any input sharing no trace with it, keeps its own clock.
func clockOffset(anchor, input map[string][2]float64, isAnchor bool) float64 {
	if isAnchor {
		return 0
	}
	var deltas []float64
	for id, e := range input {
		a, ok := anchor[id]
		if !ok {
			continue
		}
		deltas = append(deltas, (a[0]+a[1])/2-(e[0]+e[1])/2)
	}
	if len(deltas) == 0 {
		return 0
	}
	sort.Float64s(deltas)
	return deltas[len(deltas)/2]
}
