package advisor

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/obs/rt"
)

// collectProgress runs a bounded search with a recording sink and returns
// the result with the events.
func collectProgress(t *testing.T, depth int, opts SearchOptions) (*SearchResult, []SearchProgress) {
	t.Helper()
	sc := Scenario{
		Spec:      cluster.Cloud(depth),
		Hierarchy: cluster.CloudHierarchy(depth),
		Coll:      Allgather,
		CommSize:  cluster.CloudHierarchy(depth).Size(),
		Bytes:     1 << 20,
	}
	var events []SearchProgress
	opts.Progress = func(p SearchProgress) { events = append(events, p) }
	res, err := SearchOrders(context.Background(), sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, events
}

// TestSearchProgressMonotone is the live-progress contract: incumbent
// events improve strictly monotonically within each phase, coverage
// heartbeats carry nondecreasing tallies, and the last incumbent of the
// answering phase equals the returned best time.
func TestSearchProgressMonotone(t *testing.T) {
	for _, tc := range []struct {
		name  string
		depth int
		opts  SearchOptions
		mode  string
	}{
		{name: "bnb", depth: 7, opts: SearchOptions{ProgressEvery: 1000}, mode: ModeBnB},
		{name: "beam", depth: 8, opts: SearchOptions{NodeBudget: 2000, ProgressEvery: 500}, mode: ModeBeam},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, events := collectProgress(t, tc.depth, tc.opts)
			if res.Mode != tc.mode {
				t.Fatalf("mode %q, want %q", res.Mode, tc.mode)
			}
			incumbents := 0
			lastByMode := map[string]float64{}
			var lastNodes int64
			var finalIncumbent float64
			for _, p := range events {
				switch p.Kind {
				case ProgressIncumbent:
					incumbents++
					if prev, ok := lastByMode[p.Mode]; ok && p.IncumbentTime >= prev {
						t.Fatalf("%s incumbent did not improve: %v after %v", p.Mode, p.IncumbentTime, prev)
					}
					lastByMode[p.Mode] = p.IncumbentTime
					if p.Mode == res.Mode {
						finalIncumbent = p.IncumbentTime
					}
					if p.BoundGap < 0 || p.BoundGap >= 1 {
						t.Fatalf("bound gap %v outside [0, 1)", p.BoundGap)
					}
				case ProgressCoverage:
					if p.Nodes < lastNodes {
						t.Fatalf("coverage nodes went backwards: %d after %d", p.Nodes, lastNodes)
					}
					lastNodes = p.Nodes
				default:
					t.Fatalf("unknown progress kind %q", p.Kind)
				}
				if p.Mode != ModeBnB && p.Mode != ModeBeam {
					t.Fatalf("unknown progress mode %q", p.Mode)
				}
			}
			if incumbents == 0 {
				t.Fatal("no incumbent events")
			}
			if finalIncumbent != res.Best[0].Time {
				t.Fatalf("last %s incumbent %v != best %v", res.Mode, finalIncumbent, res.Best[0].Time)
			}
		})
	}
}

// TestSearchProgressPublishes checks the other two fan-outs of the sink:
// the advisor_search_* registry series and the search_progress instant
// events on the advisor.search span.
func TestSearchProgressPublishes(t *testing.T) {
	sc := Scenario{
		Spec:      cluster.Cloud(7),
		Hierarchy: cluster.CloudHierarchy(7),
		Coll:      Alltoall,
		CommSize:  cluster.CloudHierarchy(7).Size(),
		Bytes:     1 << 18,
	}
	reg := obs.NewRegistry()
	tracer := rt.NewTracer(rt.Options{Service: "test"})
	ctx, root := tracer.StartRequest(context.Background(), "test advise", "")
	res, err := SearchOrders(ctx, sc, SearchOptions{Registry: reg, ProgressEvery: 1000})
	if err != nil {
		t.Fatal(err)
	}
	root.End()

	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"advisor_search_incumbent_improvements_total{mode=\"" + res.Mode + "\"}",
		"advisor_search_incumbent_seconds{mode=\"" + res.Mode + "\"}",
		"advisor_search_nodes{mode=\"" + res.Mode + "\"}",
		"advisor_search_bound_gap{mode=\"" + res.Mode + "\"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %s:\n%s", want, out)
		}
	}

	progressEvents := 0
	for _, in := range tracer.Scope().Instants() {
		if in.Name == "search_progress" {
			progressEvents++
		}
	}
	if progressEvents == 0 {
		t.Fatal("no search_progress instant events on the trace")
	}
}
