package advisor

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/perm"
	"repro/internal/topology"
)

func specFor(h topology.Hierarchy) netmodel.Spec {
	// Depth-5 shapes need the five-level LUMI spec (see prune_test);
	// deeper shapes use the cloud machine, whose template matches the
	// depth-6 and depth-7 shapes below — a shallower spec would make the
	// fully-nested communicators degenerate.
	switch {
	case h.Depth() >= 6:
		return cluster.Cloud(h.Depth())
	case h.Depth() == 5:
		return cluster.LUMI(16)
	default:
		return cluster.Hydra(16, 1)
	}
}

// TestBnBEqualsFull is the exactness proof of the branch-and-bound: for
// every shape × collective × divisor × one-vs-all-comms scenario, the
// bounded search must return exactly the head of the exhaustive ranking —
// same orders, same values — with a zero gap and a complete accounting
// (Covered + Pruned = k!).
func TestBnBEqualsFull(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	colls := []Collective{Alltoall, Allgather, Allreduce}
	shapes := [][]int{
		{2, 2, 4},
		{2, 2, 2, 2},
		{4, 2, 2, 2},
		{2, 3, 2, 2},
		{2, 2, 2, 2, 2},
		{2, 2, 2, 2, 2, 4},    // cluster.Cloud(6)
		{2, 2, 2, 2, 2, 2, 4}, // cluster.Cloud(7)
	}
	const top = 10
	for _, ar := range shapes {
		h := topology.MustNew(ar...)
		spec := specFor(h)
		for _, coll := range colls {
			for _, sim := range []bool{false, true} {
				for _, p := range divisorsOf(h.Size()) {
					sc := Scenario{
						Spec:         spec,
						Hierarchy:    h,
						Coll:         coll,
						CommSize:     p,
						Simultaneous: sim,
						Bytes:        int64(1+rng.Intn(64)) << 16,
					}
					ranked, err := Rank(context.Background(), sc, nil, RankOptions{Workers: 2})
					if err != nil {
						t.Fatalf("rank (%v, %s, p=%d, sim=%v): %v", ar, coll, p, sim, err)
					}
					res, err := SearchOrders(context.Background(), sc, SearchOptions{Top: top})
					if err != nil {
						t.Fatalf("search (%v, %s, p=%d, sim=%v): %v", ar, coll, p, sim, err)
					}
					if res.Mode != ModeBnB {
						t.Fatalf("mode %q, want %q (%v, %s, p=%d, sim=%v)", res.Mode, ModeBnB, ar, coll, p, sim)
					}
					if res.OptimalityGap != 0 {
						t.Fatalf("bnb gap %v, want 0", res.OptimalityGap)
					}
					kf := perm.Factorial(h.Depth())
					if res.Covered+res.Pruned != kf {
						t.Fatalf("covered %d + pruned %d != %d! (%v, %s, p=%d, sim=%v)",
							res.Covered, res.Pruned, kf, ar, coll, p, sim)
					}
					want := top
					if len(ranked) < want {
						want = len(ranked)
					}
					if len(res.Best) != want {
						t.Fatalf("got %d best orders, want %d (%v, %s, p=%d, sim=%v)",
							len(res.Best), want, ar, coll, p, sim)
					}
					for i := 0; i < want; i++ {
						if !perm.Equal(ranked[i].Order, res.Best[i].Order) {
							t.Fatalf("rank %d order mismatch (%v, %s, p=%d, sim=%v): full %v bnb %v",
								i, ar, coll, p, sim, ranked[i].Order, res.Best[i].Order)
						}
						if ranked[i].Time != res.Best[i].Time || ranked[i].Bandwidth != res.Best[i].Bandwidth ||
							ranked[i].BottleneckLevel != res.Best[i].BottleneckLevel {
							t.Fatalf("rank %d value mismatch for order %v (%v, %s, p=%d, sim=%v): full %+v bnb %+v",
								i, ranked[i].Order, ar, coll, p, sim, ranked[i], res.Best[i])
						}
					}
					// Worst is the worst *evaluated* class: it can never be
					// better than the true best or worse than the true worst.
					trueWorst := ranked[len(ranked)-1]
					if res.Worst.Time > trueWorst.Time || res.Worst.Time < ranked[0].Time {
						t.Fatalf("worst evaluated %v outside [best %v, worst %v]",
							res.Worst.Time, ranked[0].Time, trueWorst.Time)
					}
					if res.Evaluated <= 0 || res.Evaluated > int64(len(ranked)) {
						t.Fatalf("evaluated %d out of range (n=%d)", res.Evaluated, len(ranked))
					}
				}
			}
		}
	}
}

// TestBeamGapUpperBound forces the beam fallback with a tiny node budget
// and checks the gap contract at depths where the exhaustive ranking is
// still computable: the reported gap must upper-bound the true gap, i.e.
// trueBest.Time ≥ bestFound.Time × (1 − gap).
func TestBeamGapUpperBound(t *testing.T) {
	h := topology.MustNew(2, 2, 2, 2, 2)
	spec := cluster.LUMI(16)
	for _, coll := range []Collective{Alltoall, Allgather, Allreduce} {
		for _, sim := range []bool{false, true} {
			for _, p := range []int{4, 8, 32} {
				sc := Scenario{
					Spec:         spec,
					Hierarchy:    h,
					Coll:         coll,
					CommSize:     p,
					Simultaneous: sim,
					Bytes:        8 << 20,
				}
				ranked, err := Rank(context.Background(), sc, nil, RankOptions{Workers: 2})
				if err != nil {
					t.Fatalf("rank (%s, p=%d, sim=%v): %v", coll, p, sim, err)
				}
				res, err := SearchOrders(context.Background(), sc, SearchOptions{
					Top:        3,
					NodeBudget: 1, // exhausted immediately: beam must answer
					BeamWidth:  2,
				})
				if err != nil {
					t.Fatalf("search (%s, p=%d, sim=%v): %v", coll, p, sim, err)
				}
				if res.Mode != ModeBeam {
					t.Fatalf("mode %q, want %q (%s, p=%d, sim=%v)", res.Mode, ModeBeam, coll, p, sim)
				}
				if res.OptimalityGap < 0 || res.OptimalityGap >= 1 {
					t.Fatalf("gap %v outside [0, 1)", res.OptimalityGap)
				}
				best := res.Best[0]
				trueBest := ranked[0]
				if best.Time < trueBest.Time {
					t.Fatalf("beam best %v beats the true optimum %v (%s, p=%d, sim=%v)",
						best.Time, trueBest.Time, coll, p, sim)
				}
				lower := best.Time * (1 - res.OptimalityGap)
				if trueBest.Time < lower*(1-1e-12) {
					t.Fatalf("gap %v does not cover the true gap: optimum %v < guaranteed floor %v (%s, p=%d, sim=%v)",
						res.OptimalityGap, trueBest.Time, lower, coll, p, sim)
				}
			}
		}
	}
}

// TestSearchOrdersDeterministic pins the engine's determinism: two runs of
// the same scenario (including a beam run) must agree bit for bit.
func TestSearchOrdersDeterministic(t *testing.T) {
	h := topology.MustNew(2, 2, 2, 2, 2, 2)
	sc := Scenario{
		Spec:      cluster.LUMI(16),
		Hierarchy: h,
		Coll:      Allreduce,
		CommSize:  8,
		Bytes:     4 << 20,
	}
	for _, budget := range []int64{0, 5} {
		a, err := SearchOrders(context.Background(), sc, SearchOptions{Top: 5, NodeBudget: budget, BeamWidth: 4})
		if err != nil {
			t.Fatal(err)
		}
		b, err := SearchOrders(context.Background(), sc, SearchOptions{Top: 5, NodeBudget: budget, BeamWidth: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("budget %d: non-deterministic search:\n%+v\nvs\n%+v", budget, a, b)
		}
	}
}

// TestSearchOrdersMetrics checks the obs wiring of the bounded search:
// one latency sample and the class counters under the mode label.
func TestSearchOrdersMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	h := topology.MustNew(2, 2, 2, 2)
	sc := Scenario{
		Spec:      cluster.Hydra(16, 1),
		Hierarchy: h,
		Coll:      Alltoall,
		CommSize:  4,
		Bytes:     1 << 20,
	}
	var stats RankStats
	res, err := SearchOrders(context.Background(), sc, SearchOptions{
		Top:      3,
		Registry: reg,
		OnStats:  func(s RankStats) { stats = s },
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Mode != ModeBnB {
		t.Fatalf("stats mode %q, want %q", stats.Mode, ModeBnB)
	}
	if int64(stats.Classes) != res.Evaluated {
		t.Fatalf("stats classes %d != evaluated %d", stats.Classes, res.Evaluated)
	}
	ml := obs.L("mode", ModeBnB)
	if misses := reg.FindCounter("advisor_class_misses_total", ml); misses != float64(res.Evaluated) {
		t.Fatalf("class misses %v, want %d", misses, res.Evaluated)
	}
}

// TestSearchOrdersCancel: a cancelled context must stop the descent.
func TestSearchOrdersCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h := topology.MustNew(2, 2, 2, 2, 2, 2, 2)
	sc := Scenario{
		Spec:      cluster.LUMI(16),
		Hierarchy: h,
		Coll:      Alltoall,
		CommSize:  128,
		Bytes:     1 << 20,
	}
	if _, err := SearchOrders(ctx, sc, SearchOptions{Top: 1}); err == nil {
		t.Fatal("expected context error from cancelled search")
	}
}
