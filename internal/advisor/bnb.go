// Branch-and-bound search over digit-order prefixes, with a bounded-width
// beam fallback. The exact search (Rank) enumerates all k! orders; this
// engine walks the prefix tree instead and uses two structural facts from
// §3.3 (internal/metrics/prefix.go):
//
//  1. A prefix whose radix product covers the communicator size fully
//     determines the first subcommunicator — placement and internal
//     ordering. When only the first communicator runs (!Simultaneous),
//     every completion of such a prefix therefore has the *same*
//     predicted cost: the whole (k−t)!-order subtree collapses into one
//     leaf evaluation, composed with the PR 4 equivalence-class memo so
//     distinct evaluations ≈ distinct placement signatures.
//
//  2. For any prefix, the deepest crossing level any completion can
//     achieve is closed-form (metrics.BestCompletionCrossLevel), which
//     yields an admissible lower bound on the cost of every completion:
//     rounds × the cheapest latency at or outside that level, plus — for
//     covered prefixes under Simultaneous — the first communicator's
//     exact traffic term, which only grows as the remaining world
//     communicators tile in.
//
// Subtrees whose lower bound exceeds the current top-T incumbent
// threshold are pruned with proof, so a completed branch-and-bound run
// returns exactly the orders Rank would (ModeBnB, gap 0). When the node
// budget is exhausted the engine degrades to a level-synchronous beam of
// bounded width and reports an optimality gap derived from the smallest
// lower bound it discarded (ModeBeam).

package advisor

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/rt"
	"repro/internal/perm"
)

// Bounded-search modes, labeled on the advisor metrics next to
// ModeExact/ModePruned/ModeFallback.
const (
	// ModeBnB: the branch-and-bound completed within its node budget; the
	// returned best orders are provably identical to the exhaustive
	// ranking (OptimalityGap 0).
	ModeBnB = "bnb"
	// ModeBeam: the node budget ran out and the bounded-width beam
	// answered instead, with a reported OptimalityGap.
	ModeBeam = "beam"
)

// Bounded-search defaults. The node budget is sized so a depth-10
// single-communicator search (≈190k prefix nodes) completes exactly,
// while depth 12 (≈2.9M nodes) degrades to the beam.
const (
	DefaultNodeBudget = 400_000
	DefaultBeamWidth  = 32
)

// Progress event kinds.
const (
	// ProgressIncumbent: the best evaluated completion time strictly
	// improved. Within one search phase (mode) the IncumbentTime sequence
	// of these events is strictly decreasing.
	ProgressIncumbent = "incumbent"
	// ProgressCoverage: a periodic heartbeat every ProgressEvery visited
	// nodes, carrying the covered/pruned/evaluated tallies.
	ProgressCoverage = "coverage"
)

// DefaultProgressEvery is the node interval between coverage events.
const DefaultProgressEvery = 10_000

// SearchProgress is one live progress event of a bounded search,
// delivered synchronously from the search goroutine.
type SearchProgress struct {
	// Kind is ProgressIncumbent or ProgressCoverage.
	Kind string
	// Mode is the phase emitting the event (ModeBnB, or ModeBeam after
	// the node budget forced the fallback).
	Mode string
	// Elapsed is wall time since the search started.
	Elapsed time.Duration
	// Nodes/Evaluated/Covered/Pruned mirror the SearchResult tallies at
	// the instant of the event.
	Nodes, Evaluated, Covered, Pruned int64
	// IncumbentTime is the best evaluated completion time so far in
	// seconds (0 before the first leaf evaluation of the phase).
	IncumbentTime float64
	// BoundGap bounds the remaining optimality headroom against the root
	// admissible lower bound: the true optimum is ≥ IncumbentTime ×
	// (1 − BoundGap). It shrinks as incumbents improve.
	BoundGap float64
}

// SearchOptions bounds SearchOrders.
type SearchOptions struct {
	// NodeBudget caps the prefix-tree nodes the branch-and-bound may
	// visit before degrading to the beam; 0 means DefaultNodeBudget.
	NodeBudget int64
	// BeamWidth is the fallback beam's frontier width; 0 means
	// DefaultBeamWidth.
	BeamWidth int
	// Top is how many best orders the result carries; 0 means 1.
	Top int
	// Registry and OnStats are the same observability hooks as
	// RankOptions, labeled/reported with ModeBnB or ModeBeam.
	Registry *obs.Registry
	OnStats  func(RankStats)
	// Progress, when set, receives live search progress: one event per
	// strict incumbent improvement plus a coverage heartbeat every
	// ProgressEvery nodes. Events also feed the advisor_search_* gauges
	// (when Registry is set) and the advisor.search span's
	// search_progress instant-event stream.
	Progress func(SearchProgress)
	// ProgressEvery overrides the coverage heartbeat interval in visited
	// nodes; 0 means DefaultProgressEvery.
	ProgressEvery int64
}

// SearchResult is the outcome of one bounded search.
type SearchResult struct {
	// Best holds the top orders, ranked exactly as Rank ranks (bandwidth
	// descending, lexicographic tie-break). In ModeBnB it is provably
	// identical to the head of the exhaustive ranking.
	Best []Prediction
	// Worst is the worst *evaluated* class (the true global worst in a
	// completed run can live in a pruned subtree).
	Worst Prediction
	// Mode is ModeBnB or ModeBeam.
	Mode string
	// Evaluated counts model evaluations actually performed (distinct
	// placement signatures predicted) — the honest "orders evaluated".
	Evaluated int64
	// Covered counts full orders represented by evaluated leaves; Pruned
	// counts orders discarded with a bound proof. Covered+Pruned equals
	// k! exactly when Mode is ModeBnB.
	Covered, Pruned int64
	// Nodes is the number of prefix-tree nodes visited (both phases).
	Nodes int64
	// OptimalityGap g guarantees the true optimum time is at least
	// Best[0].Time × (1−g). Zero in ModeBnB; in [0, 1) in ModeBeam.
	OptimalityGap float64
}

// errNodeBudget aborts the branch-and-bound descent when the node budget
// is exhausted; SearchOrders catches it and runs the beam.
var errNodeBudget = errors.New("advisor: search node budget exhausted")

// SearchOrders runs the bounded deep-hierarchy search for the scenario
// and returns the top opts.Top orders. It is intentionally sequential:
// the incumbent set makes pruning inherently stateful, and even the
// depth-12 beam path is cheap enough that determinism (and triviality
// under the race detector) wins over parallel speedup.
func SearchOrders(ctx context.Context, sc Scenario, opts SearchOptions) (*SearchResult, error) {
	start := time.Now()
	budget := opts.NodeBudget
	if budget <= 0 {
		budget = DefaultNodeBudget
	}
	width := opts.BeamWidth
	if width <= 0 {
		width = DefaultBeamWidth
	}
	top := opts.Top
	if top <= 0 {
		top = 1
	}
	k := sc.Hierarchy.Depth()
	p := sc.CommSize
	if p <= 0 || sc.Hierarchy.Size()%p != 0 {
		return nil, fmt.Errorf("advisor: communicator size %d does not divide %d", p, sc.Hierarchy.Size())
	}

	ctx, span := rt.StartSpan(ctx, "advisor.search")
	span.SetAttr("depth", int64(k))
	defer span.End()

	e := newBnbEngine(ctx, sc, top, budget)
	e.start = start
	if opts.ProgressEvery > 0 {
		e.every = opts.ProgressEvery
	}
	if opts.Progress != nil || opts.Registry != nil || span != nil {
		e.progress = progressSink(span, opts)
	}
	mode := ModeBnB
	gap := 0.0
	err := e.dfs(e.prefix, 0, 1)
	if errors.Is(err, errNodeBudget) {
		// Budget spent: discard the partial branch-and-bound incumbents
		// (their pruning accounting is no longer meaningful) and answer
		// from the beam. The class memo is kept — re-encountered
		// signatures stay free. The incumbent progress stream restarts
		// with the phase: each mode's event sequence is monotone on its
		// own.
		mode = ModeBeam
		e.inc.leaves = e.inc.leaves[:0]
		e.covered, e.pruned = 0, 0
		e.mode, e.best = ModeBeam, math.Inf(1)
		gap, err = e.beam(width)
	}
	if err != nil {
		span.SetError()
		return nil, err
	}
	if len(e.inc.leaves) == 0 {
		span.SetError()
		return nil, fmt.Errorf("advisor: search found no orders for depth %d", k)
	}

	res := &SearchResult{
		Best:          e.results(top),
		Worst:         e.worst,
		Mode:          mode,
		Evaluated:     e.evals,
		Covered:       e.covered,
		Pruned:        e.pruned,
		Nodes:         e.nodes,
		OptimalityGap: gap,
	}
	span.SetAttr("nodes", e.nodes)
	span.SetAttr("evaluated", e.evals)

	elapsed := time.Since(start)
	if opts.Registry != nil {
		ml := obs.L("mode", mode)
		opts.Registry.Counter("advisor_class_misses_total", ml).AddInt(e.evals)
		if hits := e.covered - e.evals; hits > 0 {
			opts.Registry.Counter("advisor_class_hits_total", ml).AddInt(hits)
		}
		opts.Registry.Histogram("advisor_search_seconds", obs.SearchBuckets(), ml).
			Observe(elapsed.Seconds())
	}
	if opts.OnStats != nil {
		opts.OnStats(RankStats{
			Mode:    mode,
			Orders:  int(e.covered + e.pruned),
			Classes: int(e.evals),
			Elapsed: elapsed,
		})
	}
	return res, nil
}

// progressSink fans one progress event out to the three consumers: the
// advisor_search_* gauges (per-mode series, so each stays monotone within
// a run), the advisor.search span's search_progress instant-event stream,
// and the caller's sink.
func progressSink(span *rt.Span, opts SearchOptions) func(SearchProgress) {
	return func(p SearchProgress) {
		if opts.Registry != nil {
			ml := obs.L("mode", p.Mode)
			opts.Registry.Gauge("advisor_search_nodes", ml).Set(float64(p.Nodes))
			opts.Registry.Gauge("advisor_search_incumbent_seconds", ml).Set(p.IncumbentTime)
			opts.Registry.Gauge("advisor_search_bound_gap", ml).Set(p.BoundGap)
			if p.Kind == ProgressIncumbent {
				opts.Registry.Counter("advisor_search_incumbent_improvements_total", ml).Add(1)
			}
		}
		span.Event("search_progress",
			obs.Arg{Key: "improvement", Val: b2i64(p.Kind == ProgressIncumbent)},
			obs.Arg{Key: "nodes", Val: p.Nodes},
			obs.Arg{Key: "covered", Val: p.Covered},
			obs.Arg{Key: "pruned", Val: p.Pruned},
			obs.Arg{Key: "incumbent_us", Val: int64(p.IncumbentTime * 1e6)},
			obs.Arg{Key: "gap_bp", Val: int64(p.BoundGap * 1e4)},
		)
		if opts.Progress != nil {
			opts.Progress(p)
		}
	}
}

func b2i64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// classLeaf is one evaluated equivalence node of the prefix tree: a
// covering prefix (or, under Simultaneous, a full order) together with
// the shared prediction of all (k−t)! completions it represents. order is
// the canonical completion — the prefix followed by the remaining levels
// ascending — which is the lexicographically smallest member.
type classLeaf struct {
	order []int
	split int // prefix length; order[split:] is the ascending remainder
	pr    Prediction
	size  int64 // (k-split)! orders represented
}

// incumbents keeps the running best class leaves, ordered exactly like
// the final ranking (bandwidth descending, canonical order as tie-break),
// trimmed to what the top-T answer can still need.
type incumbents struct {
	top    int
	leaves []classLeaf
}

func (in *incumbents) insert(l classLeaf) {
	i := sort.Search(len(in.leaves), func(i int) bool {
		if in.leaves[i].pr.Bandwidth != l.pr.Bandwidth {
			return in.leaves[i].pr.Bandwidth < l.pr.Bandwidth
		}
		return !perm.Less(in.leaves[i].order, l.order)
	})
	in.leaves = append(in.leaves, classLeaf{})
	copy(in.leaves[i+1:], in.leaves[i:])
	in.leaves[i] = l
	in.trim()
}

// trim drops leaves that can no longer reach the top-T answer: everything
// past the class where the cumulative order count reaches top, except
// that within the cutoff bandwidth-tie group up to top classes are kept —
// only the lexicographically smallest canonicals of a tie group can
// contribute to the final merge.
func (in *incumbents) trim() {
	var cum int64
	for i := range in.leaves {
		cum += in.leaves[i].size
		if cum < int64(in.top) {
			continue
		}
		bw := in.leaves[i].pr.Bandwidth
		g := i
		for g > 0 && in.leaves[g-1].pr.Bandwidth == bw {
			g--
		}
		end := i + 1
		for end < len(in.leaves) && end < g+in.top && in.leaves[end].pr.Bandwidth == bw {
			end++
		}
		in.leaves = in.leaves[:end]
		return
	}
}

// threshold returns the pruning cutoff: the worst Time among retained
// leaves once they account for at least top orders. Subtrees whose lower
// bound strictly exceeds it cannot affect the answer (ties are kept for
// the lexicographic merge).
func (in *incumbents) threshold() (float64, bool) {
	var cum int64
	for i := range in.leaves {
		cum += in.leaves[i].size
	}
	if cum < int64(in.top) {
		return 0, false
	}
	thr := 0.0
	for i := range in.leaves {
		if in.leaves[i].pr.Time > thr {
			thr = in.leaves[i].pr.Time
		}
	}
	return thr, true
}

type bnbEngine struct {
	ctx context.Context
	sc  Scenario
	ar  []int
	k   int
	p   int

	sigOpts metrics.SignatureOpts
	fcSc    Scenario // first-communicator scenario (Simultaneous off)
	fcOpts  metrics.SignatureOpts

	// latFloor[v] = rounds × the cheapest latency at any level in [0, v]
	// (levels past the spec cost 0, mirroring Predict). Admissible
	// because every completion crosses at level ≤ v for
	// v = BestCompletionCrossLevel.
	latFloor []float64

	memo   map[string]Prediction // leaf evaluations by placement signature
	fcMemo map[string]Prediction // first-comm bound evaluations (Simultaneous only)

	inc       incumbents
	worst     Prediction
	haveWorst bool

	prefix []int // shared DFS scratch, cap k

	nodes, evals, covered, pruned int64
	budget                        int64

	// Progress stream state: the sink (nil when nobody listens), the
	// coverage heartbeat interval, the wall start, the phase label, the
	// best incumbent time seen this phase, and the root admissible lower
	// bound the gap is measured against.
	progress func(SearchProgress)
	every    int64
	start    time.Time
	mode     string
	best     float64
	rootLB   float64
}

func newBnbEngine(ctx context.Context, sc Scenario, top int, budget int64) *bnbEngine {
	h := sc.Hierarchy
	k := h.Depth()
	rounds := float64(sc.CommSize - 1)
	if sc.Coll == Allreduce {
		rounds = 2 * float64(sc.CommSize-1)
	}
	latFloor := make([]float64, k+1)
	minLat := math.Inf(1)
	for v := 0; v <= k; v++ {
		if v < len(sc.Spec.Levels) {
			if l := sc.Spec.Levels[v].Latency; l < minLat {
				minLat = l
			}
		} else {
			minLat = 0 // Predict charges no latency past the spec'd levels
		}
		latFloor[v] = rounds * minLat
	}
	fcSc := sc
	fcSc.Simultaneous = false
	return &bnbEngine{
		ctx:      ctx,
		sc:       sc,
		ar:       h.Arities(),
		k:        k,
		p:        sc.CommSize,
		sigOpts:  metrics.SignatureOpts{Ring: sc.Coll != Alltoall, World: sc.Simultaneous},
		fcSc:     fcSc,
		fcOpts:   metrics.SignatureOpts{Ring: sc.Coll != Alltoall, World: false},
		latFloor: latFloor,
		memo:     make(map[string]Prediction),
		fcMemo:   make(map[string]Prediction),
		inc:      incumbents{top: top},
		prefix:   make([]int, 0, k),
		budget:   budget,
		every:    DefaultProgressEvery,
		start:    time.Now(),
		mode:     ModeBnB,
		best:     math.Inf(1),
		rootLB:   latFloor[metrics.BestCompletionCrossLevel(h.Arities(), nil, sc.CommSize)],
	}
}

// emit delivers one progress event to the configured sink.
func (e *bnbEngine) emit(kind string) {
	if e.progress == nil {
		return
	}
	p := SearchProgress{
		Kind:      kind,
		Mode:      e.mode,
		Elapsed:   time.Since(e.start),
		Nodes:     e.nodes,
		Evaluated: e.evals,
		Covered:   e.covered,
		Pruned:    e.pruned,
	}
	if !math.IsInf(e.best, 1) {
		p.IncumbentTime = e.best
		if e.best > 0 && e.rootLB < e.best {
			p.BoundGap = (e.best - e.rootLB) / e.best
		}
	}
	e.progress(p)
}

// dfs walks the prefix tree depth-first, children in ascending level
// order so leaves arrive in canonical (lexicographic) order.
func (e *bnbEngine) dfs(prefix []int, used uint32, prod int) error {
	e.nodes++
	if e.nodes&1023 == 0 {
		if err := e.ctx.Err(); err != nil {
			return err
		}
	}
	if e.nodes%e.every == 0 {
		e.emit(ProgressCoverage)
	}
	if e.nodes > e.budget {
		return errNodeBudget
	}
	t := len(prefix)
	covered := prod >= e.p
	// A covering prefix is a leaf unless every world communicator runs at
	// once — the world tiling needs the full order.
	if (covered && !e.sc.Simultaneous) || t == e.k {
		return e.evalLeaf(prefix)
	}
	if t > 0 {
		lb, err := e.bound(prefix, covered)
		if err != nil {
			return err
		}
		if thr, ok := e.inc.threshold(); ok && lb > thr {
			e.pruned += perm.Factorial(e.k - t)
			return nil
		}
	}
	for l := 0; l < e.k; l++ {
		if used&(1<<uint(l)) != 0 {
			continue
		}
		if err := e.dfs(append(prefix, l), used|1<<uint(l), prod*e.ar[l]); err != nil {
			return err
		}
	}
	return nil
}

// bound returns an admissible lower bound on the predicted time of every
// completion of the prefix.
func (e *bnbEngine) bound(prefix []int, covered bool) (float64, error) {
	cross := metrics.BestCompletionCrossLevel(e.ar, prefix, e.p)
	lb := e.latFloor[cross]
	if covered && e.sc.Simultaneous {
		// The first communicator is fully determined; its traffic term is
		// exact and can only grow as the remaining communicators tile in.
		pr, err := e.firstCommPredict(prefix)
		if err != nil {
			return 0, err
		}
		lb = pr.Time - pr.Latency + e.latFloor[cross]
	}
	return lb, nil
}

// firstCommPredict evaluates the (completion-invariant) single-communicator
// prediction for a covering prefix, memoized by placement signature.
func (e *bnbEngine) firstCommPredict(prefix []int) (Prediction, error) {
	sigma := canonicalCompletion(e.k, prefix)
	sig, err := metrics.OrderSignature(e.sc.Hierarchy, sigma, e.p, e.fcOpts)
	if err != nil {
		return Prediction{}, err
	}
	key := sig.Key()
	if pr, ok := e.fcMemo[key]; ok {
		return pr, nil
	}
	pr, err := Predict(e.fcSc, sigma)
	if err != nil {
		return Prediction{}, err
	}
	pr.Order = nil
	e.fcMemo[key] = pr
	return pr, nil
}

// evalLeaf predicts the (shared) cost of all completions of a leaf
// prefix, memoized by placement signature, and feeds the incumbents and
// the worst-evaluated tracker.
func (e *bnbEngine) evalLeaf(prefix []int) error {
	sigma := canonicalCompletion(e.k, prefix)
	sig, err := metrics.OrderSignature(e.sc.Hierarchy, sigma, e.p, e.sigOpts)
	if err != nil {
		return err
	}
	key := sig.Key()
	pr, ok := e.memo[key]
	if !ok {
		pr, err = Predict(e.sc, sigma)
		if err != nil {
			return err
		}
		e.evals++
		pr.Order = nil
		e.memo[key] = pr
	}
	split := len(prefix)
	size := perm.Factorial(e.k - split)
	e.covered += size
	e.inc.insert(classLeaf{order: sigma, split: split, pr: pr, size: size})
	if best := e.inc.leaves[0].pr.Time; best < e.best {
		e.best = best
		e.emit(ProgressIncumbent)
	}
	if !e.haveWorst || pr.Time > e.worst.Time {
		w := pr
		// The lexicographically greatest member (prefix + descending
		// rest) mirrors Rank's worst-entry tie-break.
		w.Order = append(append([]int(nil), sigma[:split]...), reverseInts(sigma[split:])...)
		e.worst = w
		e.haveWorst = true
	}
	return nil
}

// beam is the budget-exhausted fallback: a level-synchronous search that
// keeps the width most promising prefixes per depth (ranked by lower
// bound, deterministic lexicographic tie-break) and folds every dropped
// candidate's bound into the optimality gap.
func (e *bnbEngine) beam(width int) (float64, error) {
	type cand struct {
		prefix []int
		used   uint32
		prod   int
		lb     float64
	}
	frontier := []cand{{prefix: []int{}, prod: 1}}
	globalLB := math.Inf(1)
	for len(frontier) > 0 {
		var next []cand
		for _, c := range frontier {
			for l := 0; l < e.k; l++ {
				if c.used&(1<<uint(l)) != 0 {
					continue
				}
				e.nodes++
				if e.nodes&1023 == 0 {
					if err := e.ctx.Err(); err != nil {
						return 0, err
					}
				}
				if e.nodes%e.every == 0 {
					e.emit(ProgressCoverage)
				}
				child := append(append(make([]int, 0, e.k), c.prefix...), l)
				prod := c.prod * e.ar[l]
				covered := prod >= e.p
				if (covered && !e.sc.Simultaneous) || len(child) == e.k {
					if err := e.evalLeaf(child); err != nil {
						return 0, err
					}
					continue
				}
				lb, err := e.bound(child, covered)
				if err != nil {
					return 0, err
				}
				next = append(next, cand{prefix: child, used: c.used | 1<<uint(l), prod: prod, lb: lb})
			}
		}
		sort.Slice(next, func(i, j int) bool {
			if next[i].lb != next[j].lb {
				return next[i].lb < next[j].lb
			}
			return perm.Less(next[i].prefix, next[j].prefix)
		})
		if len(next) > width {
			for _, d := range next[width:] {
				if d.lb < globalLB {
					globalLB = d.lb
				}
			}
			next = next[:width]
		}
		frontier = next
	}
	if len(e.inc.leaves) == 0 {
		return 0, fmt.Errorf("advisor: beam search found no orders")
	}
	best := e.inc.leaves[0].pr.Time
	if globalLB >= best {
		// Nothing promising was ever dropped: the beam was exhaustive.
		return 0, nil
	}
	return (best - globalLB) / best, nil
}

// results expands the retained class leaves into the final top-N full
// orders. Within a bandwidth-tie group the members of several classes
// interleave lexicographically, so each class streams its completions
// (next-permutation over the suffix) through a k-way merge.
func (e *bnbEngine) results(topN int) []Prediction {
	type stream struct {
		cur     []int
		split   int
		pr      Prediction
		emitted int64
		size    int64
	}
	out := make([]Prediction, 0, topN)
	leaves := e.inc.leaves
	for i := 0; i < len(leaves) && len(out) < topN; {
		j := i
		for j < len(leaves) && leaves[j].pr.Bandwidth == leaves[i].pr.Bandwidth {
			j++
		}
		streams := make([]*stream, 0, j-i)
		for _, l := range leaves[i:j] {
			streams = append(streams, &stream{
				cur:   append([]int(nil), l.order...),
				split: l.split,
				pr:    l.pr,
				size:  l.size,
			})
		}
		for len(streams) > 0 && len(out) < topN {
			m := 0
			for s := 1; s < len(streams); s++ {
				if perm.Less(streams[s].cur, streams[m].cur) {
					m = s
				}
			}
			st := streams[m]
			pr := st.pr
			pr.Order = append([]int(nil), st.cur...)
			out = append(out, pr)
			st.emitted++
			if st.emitted >= st.size || !nextPermutation(st.cur[st.split:]) {
				streams = append(streams[:m], streams[m+1:]...)
			}
		}
		i = j
	}
	return out
}

// canonicalCompletion returns the lexicographically smallest order with
// the given prefix: the prefix followed by the remaining levels ascending.
func canonicalCompletion(k int, prefix []int) []int {
	sigma := make([]int, 0, k)
	sigma = append(sigma, prefix...)
	var used uint32
	for _, l := range prefix {
		used |= 1 << uint(l)
	}
	for l := 0; l < k; l++ {
		if used&(1<<uint(l)) == 0 {
			sigma = append(sigma, l)
		}
	}
	return sigma
}

// nextPermutation advances s to its next lexicographic permutation in
// place, returning false when s was already the last one.
func nextPermutation(s []int) bool {
	i := len(s) - 2
	for i >= 0 && s[i] >= s[i+1] {
		i--
	}
	if i < 0 {
		return false
	}
	j := len(s) - 1
	for s[j] <= s[i] {
		j--
	}
	s[i], s[j] = s[j], s[i]
	for a, b := i+1, len(s)-1; a < b; a, b = a+1, b-1 {
		s[a], s[b] = s[b], s[a]
	}
	return true
}

func reverseInts(s []int) []int {
	out := make([]int, len(s))
	for i, v := range s {
		out[len(s)-1-i] = v
	}
	return out
}
