// Recovery advice for degraded hierarchies: after cores fail, the
// surviving cores no longer fill the mixed-radix space, but each order σ
// still induces an enumeration of them (the σ-order with holes skipped).
// RecommendRecovery ranks candidate orders by the ring cost of the
// survivor enumeration — the sum of hierarchy crossing costs between
// consecutive survivors (§3.3) — which is the same locality objective the
// healthy-machine advisor optimises, evaluated on the degraded machine.

package advisor

import (
	"fmt"
	"sort"

	"repro/internal/perm"
	"repro/internal/reorder"
	"repro/internal/topology"
)

// RecoveryOption is one candidate recovery enumeration.
type RecoveryOption struct {
	Order     []int // σ
	Survivors []int // recovery rank -> core, holes skipped
	RingCost  int   // Σ CrossCost over consecutive survivors
}

// RecommendRecovery ranks the given orders for re-enumerating the
// survivors of a degraded hierarchy, best (lowest ring cost) first. Ties
// break lexicographically on σ so the recommendation is deterministic.
// With a nil or empty orders slice, all k! orders are considered.
func RecommendRecovery(d topology.Degraded, orders [][]int) ([]RecoveryOption, error) {
	if d.NumAlive() == 0 {
		return nil, fmt.Errorf("advisor: no surviving cores to enumerate")
	}
	if len(orders) == 0 {
		orders = perm.All(d.Base().Depth())
	}
	h := d.Base()
	opts := make([]RecoveryOption, 0, len(orders))
	for _, sigma := range orders {
		surv, err := reorder.SurvivorOrder(d, sigma)
		if err != nil {
			return nil, err
		}
		cost := 0
		for i := 0; i+1 < len(surv); i++ {
			cost += h.CrossCost(surv[i], surv[i+1])
		}
		opts = append(opts, RecoveryOption{
			Order:     append([]int(nil), sigma...),
			Survivors: surv,
			RingCost:  cost,
		})
	}
	sort.Slice(opts, func(i, j int) bool {
		if opts[i].RingCost != opts[j].RingCost {
			return opts[i].RingCost < opts[j].RingCost
		}
		return perm.Less(opts[i].Order, opts[j].Order)
	})
	return opts, nil
}
