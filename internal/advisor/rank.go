// Chunked, cancellable order ranking: the k! candidate orders are split
// into fixed-size chunks and evaluated by a bounded worker pool, so a
// long-lived service can rank orders for many clients concurrently and
// abandon evaluations whose request has gone away.

package advisor

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"repro/internal/perm"
)

// RankOptions bounds the parallel evaluation of Rank.
type RankOptions struct {
	// Workers is the number of evaluation goroutines; 0 means GOMAXPROCS.
	Workers int
	// Chunk is the number of orders one work unit evaluates; 0 picks a size
	// that gives each worker several chunks (for cancellation latency and
	// load balance).
	Chunk int
}

func (o RankOptions) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (o RankOptions) chunk(n, workers int) int {
	c := o.Chunk
	if c <= 0 {
		// Aim for ~4 chunks per worker so stragglers rebalance and
		// cancellation is noticed between chunks.
		c = n / (4 * workers)
		if c < 1 {
			c = 1
		}
	}
	return c
}

// Rank evaluates the given orders (all k! of the hierarchy when nil) with a
// bounded worker pool and returns them ranked by predicted bandwidth, best
// first. Equal-bandwidth orders sort by lexicographic order permutation, so
// the ranking is deterministic across runs and safe to cache. Rank stops
// early and returns ctx.Err() when the context is cancelled.
func Rank(ctx context.Context, sc Scenario, orders [][]int, opts RankOptions) ([]Prediction, error) {
	if orders == nil {
		orders = perm.All(sc.Hierarchy.Depth())
	}
	n := len(orders)
	if n == 0 {
		return nil, nil
	}
	workers := opts.workers(n)
	chunk := opts.chunk(n, workers)

	out := make([]Prediction, n)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type unit struct{ lo, hi int }
	units := make(chan unit)
	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		firstEr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstEr = err })
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range units {
				for i := u.lo; i < u.hi; i++ {
					if ctx.Err() != nil {
						return
					}
					pr, err := Predict(sc, orders[i])
					if err != nil {
						fail(err)
						return
					}
					out[i] = pr
				}
			}
		}()
	}
feed:
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		select {
		case units <- unit{lo, hi}:
		case <-ctx.Done():
			break feed
		}
	}
	close(units)
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sortPredictions(out)
	return out, nil
}

// sortPredictions orders predictions by bandwidth (best first), breaking
// ties by lexicographic order permutation.
func sortPredictions(ps []Prediction) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Bandwidth != ps[j].Bandwidth {
			return ps[i].Bandwidth > ps[j].Bandwidth
		}
		return perm.Less(ps[i].Order, ps[j].Order)
	})
}
