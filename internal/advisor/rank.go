// Chunked, cancellable order ranking with §3.3 equivalence-class pruning:
// candidate orders are first grouped by their integer placement signature
// (metrics.OrderSignature, O(k²) per order), the expensive analytic
// Predict runs once per class representative on a bounded worker pool,
// and the result fans out to every member of the class. Orders in the
// same class place the communicator identically, so they receive the same
// prediction; the lexicographic tie-break keeps the final ranking exactly
// equal to evaluating every order (proven by differential test).

package advisor

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/rt"
	"repro/internal/perm"
)

// RankOptions bounds the parallel evaluation of Rank.
type RankOptions struct {
	// Workers is the number of evaluation goroutines; 0 means GOMAXPROCS.
	Workers int
	// Chunk is the number of orders one work unit evaluates; 0 picks a size
	// that gives each worker several chunks (for cancellation latency and
	// load balance).
	Chunk int
	// NoPrune disables the equivalence-class fast path and evaluates every
	// order. The ranking is identical either way; the flag exists for
	// benchmarks and differential tests.
	NoPrune bool
	// Registry, when non-nil, receives search observability: the
	// advisor_class_hits_total / advisor_class_misses_total counters (orders
	// served from a class representative vs. representatives evaluated) and
	// the advisor_search_seconds latency histogram. All three carry a
	// mode label ("exact" or "pruned"; the service adds "fallback" for
	// breaker-open heuristic answers it serves itself).
	Registry *obs.Registry
	// OnStats, when non-nil, receives one RankStats per completed search —
	// the hook the service's workload analytics use to attribute a request
	// to its search mode without re-deriving it.
	OnStats func(RankStats)
}

// Search modes, as labeled on the advisor metrics and reported through
// RankStats. A search is "pruned" only when equivalence-class grouping
// actually shared evaluations; a grouping that degenerates to one class
// per order did exact work and is labeled accordingly. "fallback" is
// never produced by Rank itself: it marks the service's breaker-open
// heuristic ranking.
const (
	ModeExact    = "exact"
	ModePruned   = "pruned"
	ModeFallback = "fallback"
)

// RankStats summarizes one completed search.
type RankStats struct {
	// Mode is ModeExact or ModePruned.
	Mode string
	// Orders is the candidate count, Classes the evaluations performed.
	Orders, Classes int
	// Elapsed is the wall-clock search duration.
	Elapsed time.Duration
}

func (o RankOptions) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (o RankOptions) chunk(n, workers int) int {
	c := o.Chunk
	if c <= 0 {
		// Aim for ~4 chunks per worker so stragglers rebalance and
		// cancellation is noticed between chunks.
		c = n / (4 * workers)
		if c < 1 {
			c = 1
		}
	}
	return c
}

// Rank evaluates the given orders (all k! of the hierarchy when nil) with a
// bounded worker pool and returns them ranked by predicted bandwidth, best
// first. Equal-bandwidth orders sort by lexicographic order permutation, so
// the ranking is deterministic across runs and safe to cache. Rank stops
// early and returns ctx.Err() when the context is cancelled.
//
// Unless opts.NoPrune is set, Rank prunes the search by §3.3 equivalence
// class: orders whose placement signature matches an already-grouped order
// share one Predict evaluation. On symmetric hierarchies this collapses
// the k! candidates to a handful of classes.
func Rank(ctx context.Context, sc Scenario, orders [][]int, opts RankOptions) ([]Prediction, error) {
	start := time.Now()
	if orders == nil {
		orders = perm.All(sc.Hierarchy.Depth())
	}
	n := len(orders)
	if n == 0 {
		return nil, nil
	}
	ctx, span := rt.StartSpan(ctx, "advisor.rank")
	span.SetAttr("orders", int64(n))
	defer span.End()

	// groups[g] lists the indices of orders sharing one signature; the
	// first member is the class representative. A nil grouping (pruning
	// disabled, or a signature error to be re-reported by Predict) makes
	// every order its own class.
	var groups [][]int
	if !opts.NoPrune && n > 1 {
		groups = classGroups(sc, orders)
	}
	if groups == nil {
		groups = make([][]int, n)
		for i := range groups {
			groups[i] = []int{i}
		}
	}

	span.SetAttr("classes", int64(len(groups)))
	reps := make([]Prediction, len(groups))
	if err := evalRepresentatives(ctx, sc, orders, groups, reps, opts); err != nil {
		span.SetError()
		return nil, err
	}

	out := make([]Prediction, n)
	for g, members := range groups {
		pr := reps[g]
		for _, idx := range members {
			out[idx] = Prediction{
				Order:           append([]int(nil), orders[idx]...),
				Time:            pr.Time,
				Bandwidth:       pr.Bandwidth,
				BottleneckLevel: pr.BottleneckLevel,
				Latency:         pr.Latency,
			}
		}
	}
	mode := ModeExact
	if len(groups) < n {
		mode = ModePruned
	}
	if opts.Registry != nil {
		ml := obs.L("mode", mode)
		opts.Registry.Counter("advisor_class_misses_total", ml).AddInt(int64(len(groups)))
		opts.Registry.Counter("advisor_class_hits_total", ml).AddInt(int64(n - len(groups)))
		opts.Registry.Histogram("advisor_search_seconds", obs.SearchBuckets(), ml).
			Observe(time.Since(start).Seconds())
	}
	if opts.OnStats != nil {
		opts.OnStats(RankStats{Mode: mode, Orders: n, Classes: len(groups), Elapsed: time.Since(start)})
	}
	sortPredictions(out)
	return out, nil
}

// classGroups partitions the order indices into §3.3 equivalence classes
// by integer placement signature, preserving first-appearance order. It
// returns nil when any signature fails to compute, so Rank falls back to
// the unpruned path and Predict reports the underlying problem.
func classGroups(sc Scenario, orders [][]int) [][]int {
	// The signature only needs the components the model actually reads:
	// alltoall traffic depends on domain occupancy alone, so the ring
	// traversal is dropped and occupancy-equivalent orders merge. The
	// world tiling is required whenever every subcommunicator runs at
	// once — even for alltoall, because distinct tilings aggregate
	// different per-domain traffic (the exhaustive differential test
	// catches the collision if this is weakened).
	sigOpts := metrics.SignatureOpts{
		Ring:  sc.Coll != Alltoall,
		World: sc.Simultaneous,
	}
	byKey := make(map[string]int, len(orders))
	var groups [][]int
	for i, sigma := range orders {
		sig, err := metrics.OrderSignature(sc.Hierarchy, sigma, sc.CommSize, sigOpts)
		if err != nil {
			return nil
		}
		key := sig.Key()
		g, ok := byKey[key]
		if !ok {
			byKey[key] = len(groups)
			groups = append(groups, []int{i})
			continue
		}
		groups[g] = append(groups[g], i)
	}
	return groups
}

// evalRepresentatives runs Predict for each class representative on the
// bounded worker pool, writing into reps.
func evalRepresentatives(ctx context.Context, sc Scenario, orders [][]int, groups [][]int, reps []Prediction, opts RankOptions) error {
	n := len(groups)
	workers := opts.workers(n)
	chunk := opts.chunk(n, workers)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type unit struct{ lo, hi int }
	units := make(chan unit)
	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		firstEr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstEr = err })
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range units {
				// One span per chunk keeps trace volume proportional to the
				// work units, not the k! candidate orders.
				_, span := rt.StartSpan(ctx, "advisor.chunk")
				span.SetAttr("lo", int64(u.lo))
				span.SetAttr("classes", int64(u.hi-u.lo))
				for g := u.lo; g < u.hi; g++ {
					if ctx.Err() != nil {
						span.End()
						return
					}
					pr, err := Predict(sc, orders[groups[g][0]])
					if err != nil {
						span.SetError()
						span.End()
						fail(err)
						return
					}
					reps[g] = pr
				}
				span.End()
			}
		}()
	}
feed:
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		select {
		case units <- unit{lo, hi}:
		case <-ctx.Done():
			break feed
		}
	}
	close(units)
	wg.Wait()
	if firstEr != nil {
		return firstEr
	}
	return ctx.Err()
}

// sortPredictions orders predictions by bandwidth (best first), breaking
// ties by lexicographic order permutation.
func sortPredictions(ps []Prediction) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Bandwidth != ps[j].Bandwidth {
			return ps[i].Bandwidth > ps[j].Bandwidth
		}
		return perm.Less(ps[i].Order, ps[j].Order)
	})
}
