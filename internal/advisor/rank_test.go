package advisor

import (
	"context"
	"testing"

	"repro/internal/cluster"
	"repro/internal/netmodel"
	"repro/internal/perm"
	"repro/internal/topology"
)

func rankScenario() Scenario {
	spec := cluster.Hydra(4, 1)
	return Scenario{
		Spec:         spec,
		Hierarchy:    spec.Hierarchy(),
		Coll:         Alltoall,
		CommSize:     16,
		Simultaneous: true,
		Bytes:        16 << 20,
	}
}

// Rank with a worker pool must agree exactly with the sequential Recommend.
func TestRankMatchesSequential(t *testing.T) {
	sc := rankScenario()
	seq, err := Recommend(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		par, err := Rank(context.Background(), sc, nil, RankOptions{Workers: workers, Chunk: 3})
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d predictions, want %d", workers, len(par), len(seq))
		}
		for i := range par {
			if !perm.Equal(par[i].Order, seq[i].Order) || par[i].Time != seq[i].Time {
				t.Fatalf("workers=%d: rank %d is %v (%.3g), want %v (%.3g)",
					workers, i, par[i].Order, par[i].Time, seq[i].Order, seq[i].Time)
			}
		}
	}
}

// A cancelled context aborts the evaluation with the context's error.
func TestRankCancelled(t *testing.T) {
	sc := rankScenario()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Rank(ctx, sc, nil, RankOptions{}); err != context.Canceled {
		t.Fatalf("Rank on cancelled context: err = %v, want context.Canceled", err)
	}
}

// When every order predicts the same time (pure-latency machine, one
// communicator spanning the whole machine), the ranking must fall back to
// lexicographic order of the permutations — deterministic and cacheable.
func TestRankTiesAreLexicographic(t *testing.T) {
	h := topology.MustNew(2, 2, 2, 2)
	spec := netmodel.Spec{
		Name: "latency-only",
		Levels: []netmodel.LevelSpec{
			{Name: "node", Arity: 2, Latency: 1e-6},
			{Name: "socket", Arity: 2, Latency: 1e-6},
			{Name: "numa", Arity: 2, Latency: 1e-6},
			{Name: "core", Arity: 2, Latency: 1e-6},
		},
	}
	sc := Scenario{
		Spec:      spec,
		Hierarchy: h,
		Coll:      Alltoall,
		CommSize:  h.Size(),
		Bytes:     1 << 20,
	}
	ranked, err := Rank(context.Background(), sc, nil, RankOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(ranked); i++ {
		if ranked[i].Bandwidth == ranked[i+1].Bandwidth &&
			!perm.Less(ranked[i].Order, ranked[i+1].Order) {
			t.Fatalf("tied orders out of lexicographic order at %d: %v before %v",
				i, ranked[i].Order, ranked[i+1].Order)
		}
	}
}
