package advisor

import (
	"sort"
	"testing"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/perm"
)

func hydraScenario(simultaneous bool) Scenario {
	return Scenario{
		Spec:         cluster.Hydra(16, 1),
		Hierarchy:    cluster.HydraHierarchy(16),
		Coll:         Alltoall,
		CommSize:     16,
		Simultaneous: simultaneous,
		Bytes:        16 << 20,
	}
}

func TestPredictErrors(t *testing.T) {
	sc := hydraScenario(true)
	sc.CommSize = 7
	if _, err := Predict(sc, []int{0, 1, 2, 3}); err == nil {
		t.Error("non-dividing comm size accepted")
	}
	sc = hydraScenario(true)
	sc.Bytes = 0
	if _, err := Predict(sc, []int{0, 1, 2, 3}); err == nil {
		t.Error("zero size accepted")
	}
	sc = hydraScenario(true)
	if _, err := Predict(sc, []int{0, 0, 1, 2}); err == nil {
		t.Error("invalid order accepted")
	}
}

// The model must reproduce the paper's two headline predictions for
// Figure 3: spread wins alone, packed wins under contention.
func TestPredictFigure3Shape(t *testing.T) {
	spread := []int{0, 1, 2, 3}
	packed := []int{3, 2, 1, 0}

	one := hydraScenario(false)
	prSpread, err := Predict(one, spread)
	if err != nil {
		t.Fatal(err)
	}
	prPacked, err := Predict(one, packed)
	if err != nil {
		t.Fatal(err)
	}
	if prSpread.Bandwidth <= prPacked.Bandwidth {
		t.Errorf("1 comm: spread %.3g ≤ packed %.3g", prSpread.Bandwidth, prPacked.Bandwidth)
	}

	all := hydraScenario(true)
	prSpreadAll, err := Predict(all, spread)
	if err != nil {
		t.Fatal(err)
	}
	prPackedAll, err := Predict(all, packed)
	if err != nil {
		t.Fatal(err)
	}
	if prSpreadAll.Bandwidth >= prPackedAll.Bandwidth {
		t.Errorf("32 comms: spread %.3g ≥ packed %.3g", prSpreadAll.Bandwidth, prPackedAll.Bandwidth)
	}
	// Packed must be contention-immune in the model too.
	ratio := prPackedAll.Bandwidth / prPacked.Bandwidth
	if ratio < 0.99 || ratio > 1.01 {
		t.Errorf("packed prediction not constant: %.3g vs %.3g", prPacked.Bandwidth, prPackedAll.Bandwidth)
	}
	// The spread order's bottleneck under contention is the NIC (level 0).
	if prSpreadAll.BottleneckLevel != 0 {
		t.Errorf("spread bottleneck level = %d, want 0 (node)", prSpreadAll.BottleneckLevel)
	}
}

func TestRecommendOrdersAll(t *testing.T) {
	sc := hydraScenario(true)
	ranked, err := Recommend(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 24 {
		t.Fatalf("%d predictions, want 24", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Bandwidth > ranked[i-1].Bandwidth {
			t.Fatal("recommendations not sorted")
		}
	}
	best, err := Best(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !perm.Equal(best.Order, ranked[0].Order) {
		t.Error("Best disagrees with Recommend head")
	}
	// Under full contention the packed family must rank on top.
	ch := perm.Format(best.Order)
	if ch != "3-2-1-0" && ch != "2-3-1-0" && ch != "3-2-0-1" && ch != "2-3-0-1" {
		t.Errorf("best order under contention = %s, want a packed-family order", ch)
	}
}

// Validation against the simulator: the model's ranking of orders must
// correlate with simulated bandwidth (Spearman ≥ 0.7) for the Figure 3
// contention scenario.
func TestRankingMatchesSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	orders := [][]int{
		{0, 1, 2, 3}, {2, 1, 0, 3}, {1, 3, 0, 2}, {3, 1, 0, 2}, {3, 2, 1, 0}, {1, 2, 3, 0},
	}
	sc := hydraScenario(true)
	cfg := bench.Config{
		Spec:      sc.Spec,
		Hierarchy: sc.Hierarchy,
		CommSize:  sc.CommSize,
		Coll:      bench.Alltoall,
		Iters:     1,
	}
	var predicted, measured []float64
	for _, sigma := range orders {
		pr, err := Predict(sc, sigma)
		if err != nil {
			t.Fatal(err)
		}
		pt, err := bench.Measure(cfg, sigma, sc.Bytes, true)
		if err != nil {
			t.Fatal(err)
		}
		predicted = append(predicted, pr.Bandwidth)
		measured = append(measured, pt.Bandwidth)
	}
	rho := spearman(predicted, measured)
	if rho < 0.7 {
		t.Errorf("Spearman(predicted, simulated) = %.2f (predicted %v, measured %v)",
			rho, predicted, measured)
	}
}

// spearman computes the rank correlation of two samples.
func spearman(x, y []float64) float64 {
	rx, ry := ranks(x), ranks(y)
	n := float64(len(x))
	var d2 float64
	for i := range rx {
		d := rx[i] - ry[i]
		d2 += d * d
	}
	return 1 - 6*d2/(n*(n*n-1))
}

func ranks(v []float64) []float64 {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	out := make([]float64, len(v))
	for r, i := range idx {
		out[i] = float64(r)
	}
	return out
}

func TestExplain(t *testing.T) {
	sc := hydraScenario(true)
	pr, err := Predict(sc, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	s := Explain(sc, pr)
	if s == "" || pr.BottleneckLevel != 0 {
		t.Errorf("Explain = %q (bottleneck %d)", s, pr.BottleneckLevel)
	}
}

func TestAllgatherAllreducePredictions(t *testing.T) {
	for _, coll := range []Collective{Allgather, Allreduce} {
		sc := hydraScenario(true)
		sc.Coll = coll
		sc.CommSize = 64
		spread, err := Predict(sc, []int{0, 1, 2, 3})
		if err != nil {
			t.Fatal(err)
		}
		packed, err := Predict(sc, []int{3, 2, 1, 0})
		if err != nil {
			t.Fatal(err)
		}
		if packed.Bandwidth <= spread.Bandwidth {
			t.Errorf("%s: packed %.3g ≤ spread %.3g under contention",
				coll, packed.Bandwidth, spread.Bandwidth)
		}
	}
}
