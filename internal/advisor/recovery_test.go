package advisor

import (
	"reflect"
	"testing"

	"repro/internal/perm"
	"repro/internal/topology"
)

func TestRecommendRecoveryPrefersLocality(t *testing.T) {
	h := topology.MustNew(2, 2, 4)
	d, err := h.Degrade(3, 11)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := RecommendRecovery(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != 6 { // 3! candidate orders
		t.Fatalf("%d options, want 6", len(opts))
	}
	// The natural enumeration [2 1 0] keeps neighbours on the same socket
	// and must beat the node-round-robin [0 1 2].
	best := opts[0]
	if !reflect.DeepEqual(best.Order, []int{2, 1, 0}) {
		t.Fatalf("best order = %v (cost %d), want [2 1 0]", best.Order, best.RingCost)
	}
	if len(best.Survivors) != 14 {
		t.Fatalf("best option has %d survivors, want 14", len(best.Survivors))
	}
	worst := opts[len(opts)-1]
	if worst.RingCost <= best.RingCost {
		t.Fatalf("cost ordering broken: best %d, worst %d", best.RingCost, worst.RingCost)
	}
	for i := 1; i < len(opts); i++ {
		if opts[i].RingCost < opts[i-1].RingCost {
			t.Fatalf("options not sorted: %v", opts)
		}
	}
}

func TestRecommendRecoveryRingCost(t *testing.T) {
	h := topology.MustNew(2, 2, 4)
	d, err := h.Degrade() // undamaged: costs are the healthy ring costs
	if err != nil {
		t.Fatal(err)
	}
	opts, err := RecommendRecovery(d, [][]int{{2, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	// Natural order on 2x2x4: within a socket cost 1 (x3 per socket),
	// socket hop cost 2, node hop cost 3: 4 sockets x 3 + 2 x 2 + 1 x 3 = 19.
	if opts[0].RingCost != 19 {
		t.Fatalf("healthy natural ring cost = %d, want 19", opts[0].RingCost)
	}

	// Knock out socket 0 entirely. Survivors 4..15 in natural order:
	// 4-5-6-7 (3x1), 7->8 node hop (3), 8..11 (3x1), 11->12 socket hop (2),
	// 12..15 (3x1) = 14.
	d2, err := h.Degrade(0, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	opts2, err := RecommendRecovery(d2, [][]int{{2, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if opts2[0].RingCost != 14 {
		t.Fatalf("degraded natural ring cost = %d, want 14", opts2[0].RingCost)
	}
}

func TestRecommendRecoveryTieBreakAndErrors(t *testing.T) {
	h := topology.MustNew(2, 2)
	d, err := h.Degrade()
	if err != nil {
		t.Fatal(err)
	}
	opts, err := RecommendRecovery(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Verify deterministic ordering: equal costs fall back to perm.Less.
	for i := 1; i < len(opts); i++ {
		if opts[i].RingCost == opts[i-1].RingCost && !perm.Less(opts[i-1].Order, opts[i].Order) {
			t.Fatalf("tie not broken lexicographically: %v before %v", opts[i-1].Order, opts[i].Order)
		}
	}

	all := []int{0, 1, 2, 3}
	dDead, err := h.Degrade(all...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RecommendRecovery(dDead, nil); err == nil {
		t.Fatal("fully failed machine accepted")
	}

	if _, err := RecommendRecovery(d, [][]int{{0}}); err == nil {
		t.Fatal("bad order accepted")
	}
}
