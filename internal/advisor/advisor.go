// Package advisor addresses the paper's §5 outlook — "this knowledge
// could help to predict which order is the most suitable for the used
// system and applications" — with an analytic bottleneck model: for a
// machine description, a collective, a communicator size and an order, it
// estimates the operation time from the traffic each hierarchy link
// carries and ranks the k! orders without running the simulator.
//
// The model is deliberately first-order (per-link bottleneck analysis of
// the large-message ring/pairwise schedules plus a latency term); its
// purpose is ranking orders, and the tests validate that its ranking
// agrees with the discrete-event simulation.
package advisor

import (
	"context"
	"fmt"

	"repro/internal/metrics"
	"repro/internal/mixedradix"
	"repro/internal/netmodel"
	"repro/internal/perm"
	"repro/internal/topology"
)

// Collective selects the modelled operation.
type Collective string

// Modelled collectives (the paper's non-rooted set).
const (
	Alltoall  Collective = "alltoall"
	Allgather Collective = "allgather"
	Allreduce Collective = "allreduce"
)

// Scenario describes one prediction problem.
type Scenario struct {
	Spec      netmodel.Spec
	Hierarchy topology.Hierarchy
	Coll      Collective
	CommSize  int
	// Simultaneous: all world subcommunicators run the collective at once
	// (the right-hand plots of the paper's figures); otherwise only the
	// first one (left-hand plots).
	Simultaneous bool
	// Bytes is the total collective size S (commSize × per-rank count).
	Bytes int64
}

// Prediction is the model's estimate for one order.
type Prediction struct {
	Order     []int
	Time      float64 // seconds per operation
	Bandwidth float64 // S / Time
	// BottleneckLevel is the hierarchy level whose links bound the time
	// (-1 when the latency term dominates).
	BottleneckLevel int
	// Latency is the rounds×latency share of Time; Time−Latency is the
	// pure traffic (bottleneck-link) share. The branch-and-bound search
	// uses the split to substitute an admissible latency floor when
	// bounding partial orders.
	Latency float64
}

// Predict estimates the collective duration under order sigma.
func Predict(sc Scenario, sigma []int) (Prediction, error) {
	h := sc.Hierarchy
	n := h.Size()
	p := sc.CommSize
	if p <= 0 || n%p != 0 {
		return Prediction{}, fmt.Errorf("advisor: communicator size %d does not divide %d", p, n)
	}
	if sc.Bytes <= 0 {
		return Prediction{}, fmt.Errorf("advisor: non-positive size")
	}
	ro, err := mixedradix.NewReorderer(h.Arities(), sigma)
	if err != nil {
		return Prediction{}, err
	}
	// The inverse table is pure scratch here: pool it so a k!-order search
	// does not allocate k! n-entry tables.
	inv := invPool.Get(n)
	defer invPool.Put(inv)
	ro.InverseTableInto(inv)
	nComms := n / p
	if !sc.Simultaneous {
		nComms = 1
	}
	ar := h.Arities()
	k := h.Depth()
	// suffix[l] = cores per level-l domain.
	suffix := make([]int, k+1)
	suffix[k] = 1
	for l := k - 1; l >= 0; l-- {
		suffix[l] = suffix[l+1] * ar[l]
	}

	// traffic[l][d] accumulates bytes crossing the egress uplink of domain
	// d at level l; busTraffic[d] the innermost-domain (memory) traffic.
	traffic := make([]map[int]float64, k)
	for l := range traffic {
		traffic[l] = make(map[int]float64)
	}
	busTraffic := make(map[int]float64)
	inner := k - 2

	B := float64(sc.Bytes)
	maxCrossLevel := k // outermost level any comm pair crosses (lower = farther)
	for comm := 0; comm < nComms; comm++ {
		cores := inv[comm*p : (comm+1)*p]
		// Per-level occupancy of the communicator.
		for l := 0; l < k-1; l++ {
			if len(sc.Spec.Levels) <= l || sc.Spec.Levels[l].UpBandwidth <= 0 {
				continue
			}
			occ := map[int]int{}
			for _, c := range cores {
				occ[c/suffix[l+1]]++
			}
			for d, a := range occ {
				if a == p {
					continue // communicator fully inside: no crossing
				}
				traffic[l][d] += crossingBytes(sc.Coll, cores, suffix[l+1], d, a, p, B)
			}
		}
		// Innermost memory buses: every byte a rank sends or receives.
		if inner >= 0 && len(sc.Spec.Levels) > inner && sc.Spec.Levels[inner].BusBandwidth > 0 {
			occ := map[int]int{}
			for _, c := range cores {
				occ[c/suffix[inner+1]]++
			}
			perRankVolume := perRankBytes(sc.Coll, p, B)
			for d, a := range occ {
				busTraffic[d] += float64(a) * perRankVolume
			}
		}
		// Latency class: the outermost level any pair of this comm crosses.
		for i := 0; i+1 < len(cores); i++ {
			d := h.FirstDiffLevel(cores[i], cores[i+1])
			if d < maxCrossLevel {
				maxCrossLevel = d
			}
		}
	}

	// Bottleneck: the most loaded link.
	worst := 0.0
	level := -1
	nics := sc.Spec.NICsPerNode
	if nics <= 0 {
		nics = 1
	}
	for l := 0; l < k-1; l++ {
		if len(sc.Spec.Levels) <= l {
			continue
		}
		cap := sc.Spec.Levels[l].UpBandwidth
		if cap <= 0 {
			continue
		}
		if l == 0 {
			cap *= float64(nics)
		}
		for _, bytes := range traffic[l] {
			if t := bytes / cap; t > worst {
				worst = t
				level = l
			}
		}
	}
	if inner >= 0 && len(sc.Spec.Levels) > inner {
		cap := sc.Spec.Levels[inner].BusBandwidth
		if cap > 0 {
			for _, bytes := range busTraffic {
				if t := bytes / cap; t > worst {
					worst = t
					level = inner
				}
			}
		}
	}
	// Latency term: rounds × latency of the widest crossing.
	lat := 0.0
	if maxCrossLevel < len(sc.Spec.Levels) {
		lat = sc.Spec.Levels[maxCrossLevel].Latency
	}
	rounds := float64(p - 1)
	if sc.Coll == Allreduce {
		rounds = 2 * float64(p-1)
	}
	latTime := rounds * lat
	total := worst + latTime
	if latTime > worst {
		level = -1
	}
	if total <= 0 {
		return Prediction{}, fmt.Errorf("advisor: degenerate prediction")
	}
	return Prediction{
		Order:           append([]int(nil), sigma...),
		Time:            total,
		Bandwidth:       B / total,
		BottleneckLevel: level,
		Latency:         latTime,
	}, nil
}

// invPool recycles inverse-table scratch across Predict calls (shared by
// all advisor workers; TablePool is safe for concurrent use).
var invPool mixedradix.TablePool

// perRankBytes is the volume one rank pushes through its memory domain.
func perRankBytes(coll Collective, p int, B float64) float64 {
	switch coll {
	case Alltoall:
		// Sends and receives (p-1)/p of its B/p contribution.
		return 2 * B / float64(p)
	case Allgather:
		// Ring: forwards p-1 blocks of B/p and receives as many.
		return 2 * B * float64(p-1) / float64(p)
	case Allreduce:
		// Ring reduce-scatter + allgather: ≈ 2B in, 2B out per rank pair
		// of phases over chunks of B/p.
		return 4 * B * float64(p-1) / float64(p) / float64(p)
	}
	return B
}

// crossingBytes is the egress traffic of a domain holding a of the comm's
// p ranks during one operation.
func crossingBytes(coll Collective, cores []int, domSize, dom, a, p int, B float64) float64 {
	switch coll {
	case Alltoall:
		// Every ordered pair exchanges B/p².
		return float64(a) * float64(p-a) * B / float64(p) / float64(p)
	case Allgather, Allreduce:
		// Ring edges (i, i+1 mod p): each edge carries (p-1) blocks of B/p
		// (allgather) or 2(p-1) chunks of B/p (allreduce phases).
		perEdge := B * float64(p-1) / float64(p)
		if coll == Allreduce {
			perEdge = 2 * B * float64(p-1) / float64(p) / float64(p) * float64(p-1)
		}
		edges := 0
		for i := 0; i < p; i++ {
			next := (i + 1) % p
			if cores[i]/domSize == dom && cores[next]/domSize != dom {
				edges++
			}
		}
		return float64(edges) * perEdge
	}
	return 0
}

// Recommend ranks the given orders by predicted bandwidth (best first).
// With a nil order list it enumerates all k! orders of the hierarchy.
// Equal-bandwidth orders sort by lexicographic order permutation so the
// ranking is deterministic. Recommend is the sequential convenience form of
// Rank.
func Recommend(sc Scenario, orders [][]int) ([]Prediction, error) {
	return Rank(context.Background(), sc, orders, RankOptions{Workers: 1})
}

// Best returns the top recommendation.
func Best(sc Scenario) (Prediction, error) {
	ranked, err := Recommend(sc, nil)
	if err != nil {
		return Prediction{}, err
	}
	return ranked[0], nil
}

// Explain renders a short human-readable justification.
func Explain(sc Scenario, pr Prediction) string {
	where := "latency-bound"
	if pr.BottleneckLevel >= 0 {
		where = fmt.Sprintf("bounded by level %d (%s) links",
			pr.BottleneckLevel, sc.Hierarchy.Level(pr.BottleneckLevel).Name)
	}
	ch, err := metrics.Characterize(sc.Hierarchy, pr.Order, sc.CommSize)
	legend := ""
	if err == nil {
		legend = " — " + ch.String()
	}
	return fmt.Sprintf("order %s: predicted %.1f MB/s, %s%s",
		perm.Format(pr.Order), pr.Bandwidth/1e6, where, legend)
}
