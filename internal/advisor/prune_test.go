package advisor

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/perm"
	"repro/internal/topology"
)

// TestRankPrunedEqualsFull is the exactness proof of the equivalence-class
// fast path: for every combination of hierarchy shape × collective ×
// communicator size (every divisor) × one-vs-all-comms, the pruned ranking
// must be identical — order by order, value by value — to evaluating every
// candidate. The coarse collective-aware signature (pairs-only for
// alltoall, no world component) relies on this test, so it is exhaustive
// rather than sampled.
func TestRankPrunedEqualsFull(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	colls := []Collective{Alltoall, Allgather, Allreduce}
	shapes := [][]int{
		{2, 2, 4},
		{2, 2, 2, 2},
		{4, 2, 2, 2},
		{2, 3, 2, 2},
		{2, 2, 2, 2, 2},
		{16, 2, 2, 8},
	}
	for _, ar := range shapes {
		h := topology.MustNew(ar...)
		// Depth-5 shapes need the five-level LUMI spec: the bus level of the
		// four-level Hydra spec would not line up and every prediction with a
		// fully packed communicator would be degenerate.
		spec := cluster.Hydra(16, 1)
		if h.Depth() == 5 {
			spec = cluster.LUMI(16)
		}
		for _, coll := range colls {
			for _, sim := range []bool{false, true} {
				for _, p := range divisorsOf(h.Size()) {
					sc := Scenario{
						Spec:         spec,
						Hierarchy:    h,
						Coll:         coll,
						CommSize:     p,
						Simultaneous: sim,
						Bytes:        int64(1+rng.Intn(64)) << 16,
					}
					full, err := Rank(context.Background(), sc, nil, RankOptions{Workers: 2, NoPrune: true})
					if err != nil {
						t.Fatalf("full rank (%v, %s, p=%d): %v", ar, coll, p, err)
					}
					pruned, err := Rank(context.Background(), sc, nil, RankOptions{Workers: 2})
					if err != nil {
						t.Fatalf("pruned rank (%v, %s, p=%d): %v", ar, coll, p, err)
					}
					if len(full) != len(pruned) {
						t.Fatalf("length mismatch: %d vs %d", len(full), len(pruned))
					}
					for i := range full {
						if !perm.Equal(full[i].Order, pruned[i].Order) {
							t.Fatalf("rank %d order mismatch (%v, %s, p=%d, sim=%v): full %v pruned %v",
								i, ar, coll, p, sim, full[i].Order, pruned[i].Order)
						}
						if full[i].Bandwidth != pruned[i].Bandwidth || full[i].Time != pruned[i].Time ||
							full[i].BottleneckLevel != pruned[i].BottleneckLevel {
							t.Fatalf("rank %d value mismatch for order %v (%v, %s, p=%d, sim=%v): full %+v pruned %+v",
								i, full[i].Order, ar, coll, p, sim, full[i], pruned[i])
						}
					}
				}
			}
		}
	}
}

func divisorsOf(n int) []int {
	var out []int
	for d := 2; d <= n; d++ {
		if n%d == 0 {
			out = append(out, d)
		}
	}
	return out
}

// TestRankRecordsSearchMetrics checks the obs wiring: a pruned search on a
// symmetric hierarchy must report far fewer class misses (evaluations)
// than candidates, and observe one search latency sample.
func TestRankRecordsSearchMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	h := topology.MustNew(2, 2, 2, 2)
	sc := Scenario{
		Spec:      cluster.Hydra(16, 1),
		Hierarchy: h,
		Coll:      Alltoall,
		CommSize:  4,
		Bytes:     1 << 20,
	}
	var stats RankStats
	ranked, err := Rank(context.Background(), sc, nil, RankOptions{
		Registry: reg,
		OnStats:  func(s RankStats) { stats = s },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 24 {
		t.Fatalf("got %d predictions, want 24", len(ranked))
	}
	// Class sharing collapsed the symmetric search, so everything is
	// labeled mode="pruned"; the unlabeled series must not exist.
	ml := obs.L("mode", ModePruned)
	hits := reg.FindCounter("advisor_class_hits_total", ml)
	misses := reg.FindCounter("advisor_class_misses_total", ml)
	if hits+misses != 24 {
		t.Fatalf("pruned hits %v + misses %v != 24 orders", hits, misses)
	}
	if misses >= 24 {
		t.Fatalf("no pruning on a fully symmetric hierarchy: %v misses", misses)
	}
	if hits == 0 {
		t.Fatalf("expected class hits on a symmetric hierarchy")
	}
	if unlabeled := reg.FindCounter("advisor_class_hits_total"); unlabeled != 0 {
		t.Fatalf("unlabeled class-hit counter exists: %v", unlabeled)
	}
	found := false
	for _, p := range reg.Snapshot() {
		if p.Name == "advisor_search_seconds" && p.Type == "histogram" && p.Count == 1 {
			if !hasModeLabel(p.Labels, ModePruned) {
				t.Fatalf("search histogram missing mode label: %+v", p)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("advisor_search_seconds histogram not observed: %+v", reg.Snapshot())
	}
	if stats.Mode != ModePruned {
		t.Fatalf("OnStats mode = %q, want pruned", stats.Mode)
	}
	if stats.Orders != 24 || stats.Classes != int(misses) {
		t.Fatalf("OnStats = %+v, want Orders=24 Classes=%v", stats, misses)
	}
	if stats.Elapsed <= 0 {
		t.Fatalf("OnStats elapsed = %v", stats.Elapsed)
	}
}

func hasModeLabel(labels []obs.Label, mode string) bool {
	for _, l := range labels {
		if l.Key == "mode" && l.Value == mode {
			return true
		}
	}
	return false
}

// TestRankExactModeWhenNoSharing verifies the mode semantics: disabling
// pruning — or a grid where every order is its own class — reports
// mode="exact", never "pruned".
func TestRankExactModeWhenNoSharing(t *testing.T) {
	reg := obs.NewRegistry()
	sc := Scenario{
		Spec:      cluster.Hydra(16, 1),
		Hierarchy: topology.MustNew(2, 2, 2, 2),
		Coll:      Alltoall,
		CommSize:  4,
		Bytes:     1 << 20,
	}
	var stats RankStats
	if _, err := Rank(context.Background(), sc, nil, RankOptions{
		Registry: reg,
		NoPrune:  true,
		OnStats:  func(s RankStats) { stats = s },
	}); err != nil {
		t.Fatal(err)
	}
	if stats.Mode != ModeExact {
		t.Fatalf("OnStats mode = %q, want exact", stats.Mode)
	}
	if stats.Orders != 24 || stats.Classes != 24 {
		t.Fatalf("OnStats = %+v, want Orders=Classes=24", stats)
	}
	ml := obs.L("mode", ModeExact)
	if misses := reg.FindCounter("advisor_class_misses_total", ml); misses != 24 {
		t.Fatalf("exact-mode misses = %v, want 24", misses)
	}
	if hits := reg.FindCounter("advisor_class_hits_total", ml); hits != 0 {
		t.Fatalf("exact-mode hits = %v, want 0", hits)
	}
}
