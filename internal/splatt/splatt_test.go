package splatt

import (
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/perm"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// testTensor is shared across tests: a nell-1-like synthetic with one huge
// mode (split 16 ways) whose hot band makes the first mode-0 layer carry a
// dominant share of the Alltoallv traffic, so that — as on the real input
// — the 16-process layer communicators drive the order sensitivity.
var (
	testTensorOnce sync.Once
	testTensorVal  *tensor.Tensor
)

func testTensor() *tensor.Tensor {
	testTensorOnce.Do(func() {
		testTensorVal = tensor.SyntheticNell([3]int{400000, 2000, 2000}, 1_000_000, 17)
	})
	return testTensorVal
}

// smallConfig is a scaled-down Figure 8: 8 Hydra nodes (256 cores), a
// 16×4×4 grid (16 mode-1 layers of 16 ranks).
func smallConfig(order []int) Config {
	return Config{
		Spec:      cluster.Hydra(8, 1),
		Hierarchy: cluster.HydraHierarchy(8),
		Order:     order,
		Grid:      tensor.Grid{16, 4, 4},
		Tensor:    testTensor(),
		Rank:      16,
		Iters:     2,
	}
}

func TestRunProducesDuration(t *testing.T) {
	res, err := Run(smallConfig([]int{3, 2, 1, 0}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration <= 0 {
		t.Fatalf("duration = %v", res.Duration)
	}
}

func TestCommunicatorCensus(t *testing.T) {
	// §4.2: on p ranks with grid (g1,4,4) the census is 3 world comms,
	// 4+4 comms of p/4, g1 comms of 16.
	res, err := Run(smallConfig([]int{3, 2, 1, 0}))
	if err != nil {
		t.Fatal(err)
	}
	census := res.Trace.CommCount()
	if census[256] < 2 {
		t.Errorf("world-sized comms in census: %d, want ≥ 2 (got %v)", census[256], census)
	}
	if census[64] != 8 {
		t.Errorf("64-rank comms: %d, want 8 (census %v)", census[64], census)
	}
	if census[16] != 16 {
		t.Errorf("16-rank comms: %d, want 16 (census %v)", census[16], census)
	}
}

func TestOrderAffectsDuration(t *testing.T) {
	// The rank order must matter for the CPD duration, with a spread of at
	// least ~10 % between the extremes (the paper sees 32 % on the real
	// cluster). In the simulator the ordering direction follows the
	// contention physics of its own Figure 3: packed layer communicators
	// beat spread ones under simultaneous Alltoallv — see EXPERIMENTS.md
	// for the discussion of the paper's inverted real-system direction.
	spread, err := Run(smallConfig([]int{0, 3, 1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	packed, err := Run(smallConfig([]int{3, 2, 1, 0}))
	if err != nil {
		t.Fatal(err)
	}
	if packed.Duration >= spread.Duration {
		t.Errorf("packed CPD (%v) should beat fully spread (%v) under the fluid contention model",
			packed.Duration, spread.Duration)
	}
	gap := (spread.Duration - packed.Duration) / spread.Duration
	if gap < 0.10 {
		t.Errorf("order sensitivity too weak: extremes differ by %.1f%%, want ≥ 10%%", gap*100)
	}
}

// §4.2's attribution: across orders, CPD duration correlates strongly with
// the time spent in Alltoallv on the 16-process communicators. The
// straggler (max-over-ranks) view is used because the dominant layer's
// cost is diluted 16× in a mean and leaks into the next collective as
// waiting time.
func TestSplattCorrelation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-order sweep")
	}
	orders := [][]int{
		{0, 1, 2, 3}, {1, 3, 2, 0}, {3, 2, 1, 0}, {2, 1, 0, 3}, {0, 3, 1, 2}, {3, 1, 0, 2},
	}
	var durations, alltoall16 []float64
	for _, sigma := range orders {
		res, err := Run(smallConfig(sigma))
		if err != nil {
			t.Fatalf("order %v: %v", sigma, err)
		}
		durations = append(durations, res.Duration)
		alltoall16 = append(alltoall16, res.Trace.MaxTimeIn("Alltoall", 16))
	}
	r := trace.Pearson(durations, alltoall16)
	if r < 0.8 {
		t.Errorf("Pearson(CPD, Alltoallv@16) = %v, want ≥ 0.8 (durations %v, alltoallv %v)",
			r, durations, alltoall16)
	}
}

func TestTwoNICsFaster(t *testing.T) {
	cfg1 := smallConfig([]int{0, 1, 2, 3}) // spread: NIC-hungry
	cfg2 := cfg1
	cfg2.Spec = cluster.Hydra(8, 2)
	one, err := Run(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	two, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if two.Duration >= one.Duration {
		t.Errorf("2 NICs (%v) should beat 1 NIC (%v) for a spread order", two.Duration, one.Duration)
	}
}

func TestGridMismatchRejected(t *testing.T) {
	cfg := smallConfig([]int{3, 2, 1, 0})
	cfg.Grid = tensor.Grid{4, 4, 4}
	if _, err := Run(cfg); err == nil {
		t.Error("mismatched grid accepted")
	}
	cfg = smallConfig([]int{3, 2, 1})
	if _, err := Run(cfg); err == nil {
		t.Error("short order accepted")
	}
}

func TestAllOrdersDistinctGroups(t *testing.T) {
	// Sanity: all 24 orders run without error on a tiny machine (2 nodes).
	if testing.Short() {
		t.Skip("24-order sweep")
	}
	for _, sigma := range perm.All(4) {
		cfg := Config{
			Spec:      cluster.Hydra(2, 1),
			Hierarchy: cluster.HydraHierarchy(2),
			Order:     sigma,
			Grid:      tensor.Grid{4, 4, 4},
			Tensor:    tensor.Synthetic([3]int{400, 400, 400}, 5000, 3),
			Rank:      8,
			Iters:     1,
		}
		if _, err := Run(cfg); err != nil {
			t.Fatalf("order %v: %v", sigma, err)
		}
	}
}
