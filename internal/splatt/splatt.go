// Package splatt simulates Splatt's distributed medium-grained CP-ALS
// (§4.2 of the paper): 1024 MPI ranks on a 64×4×4 process grid, layer
// communicators per mode, and the per-iteration collective mix observed by
// mpisee on the real application — MPI_Alltoallv inside the layers (the
// dominant cost, Pearson-correlated 0.98 with the CPD duration on the
// 16-process layers), plus Allreduce/Bcast/Reduce/Scan/Gather on the world
// communicators. The compute phases charge the roofline with the MTTKRP
// flop and byte counts of the rank's actual tensor block.
//
// The driver measures the CPD duration under an arbitrary rank order σ,
// reproducing Figure 8.
package splatt

import (
	"fmt"

	"repro/internal/mixedradix"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/tensor"
	"repro/internal/topology"
	"repro/internal/trace"
)

// DefaultGrid is the process grid matching the paper's communicator census
// on 1024 ranks: 64 mode-1 layers of 16 ranks (the Alltoallv-heavy ones)
// and 4+4 layers of 256.
var DefaultGrid = tensor.Grid{64, 4, 4}

// Config describes one simulated Splatt run.
type Config struct {
	Spec      netmodel.Spec
	Hierarchy topology.Hierarchy
	Order     []int // rank-reordering order σ for MPI_COMM_WORLD
	Grid      tensor.Grid
	Tensor    *tensor.Tensor
	Rank      int // CP rank R
	Iters     int // ALS iterations
	MPI       mpi.Config
}

// Result is one run's outcome.
type Result struct {
	// Duration is the virtual time of the CPD operation (max over ranks).
	Duration float64
	// Trace records the per-communicator operation times.
	Trace *trace.Recorder
}

// Run simulates the CPD under the configured rank order.
func Run(cfg Config) (*Result, error) {
	n := cfg.Hierarchy.Size()
	g := cfg.Grid
	if g.Size() == 0 {
		g = DefaultGrid
	}
	if g.Size() != n {
		return nil, fmt.Errorf("splatt: grid %v needs %d ranks, machine has %d cores", g, g.Size(), n)
	}
	if cfg.Rank <= 0 {
		cfg.Rank = 16
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 3
	}
	ro, err := mixedradix.NewReorderer(cfg.Hierarchy.Arities(), cfg.Order)
	if err != nil {
		return nil, err
	}
	part, err := tensor.PartitionTensor(cfg.Tensor, g)
	if err != nil {
		return nil, err
	}
	table := ro.Table()
	rec := trace.NewRecorder()
	mpiCfg := cfg.MPI
	mpiCfg.Tracer = rec

	binding := make([]int, n)
	for i := range binding {
		binding[i] = i
	}
	var duration float64
	sc := mpiCfg.Obs
	_, err = mpi.Run(cfg.Spec, binding, mpiCfg, func(r *mpi.Rank) {
		d := cpdRank(r, sc, table, g, part, cfg.Rank, cfg.Iters)
		if r.ID() == 0 {
			duration = d
		}
	})
	if err != nil {
		return nil, err
	}
	return &Result{Duration: duration, Trace: rec}, nil
}

// cpdRank is the per-rank body of the simulated CPD. It returns the
// duration between the post-setup barrier and the end of the ALS loop
// (synchronized by a final barrier, so every rank reports the same value).
func cpdRank(r *mpi.Rank, sc *obs.Scope, table []int, g tensor.Grid, part *tensor.Partition, cpRank, iters int) float64 {
	world := r.World()
	// The paper's black-box reordering: split with the reordered rank as
	// key; the application then uses this communicator as its world.
	newRank := table[r.ID()]
	comm := world.Split(r, 0, newRank)
	me := comm.Rank()

	// Splatt's communicator setup (census: 3 world-sized comms).
	commA := comm.Dup(r)
	commB := comm.Dup(r)

	// Layer communicators per mode.
	var layers [tensor.Order]*mpi.Comm
	for m := 0; m < tensor.Order; m++ {
		layer, inLayer := g.LayerIndex(me, m)
		layers[m] = comm.Split(r, layer, inLayer)
	}

	// SPLATT balances nonzeros across processes with chunked partition
	// boundaries, so the MTTKRP compute load is flat; our simpler block
	// partition leaves the communication volumes (distinct rows per block)
	// hub-driven, which is the imbalance the rank order interacts with.
	nnz := part.TotalNNZ() / len(part.NNZ)
	R := cpRank

	// Initial setup: exchange row offsets (Scan) and factor seeds (Bcast).
	comm.Scan(r, mpi.BytesBuf(8*tensor.Order), mpi.OpSum)
	commA.Bcast(r, 0, mpi.BytesBuf(int64(R)*8))

	comm.Barrier(r)
	start := r.Now()
	phases := r.ID() == 0
	if phases {
		sc.Phase("splatt.setup", 0, start)
	}
	for it := 0; it < iters; it++ {
		iterStart := r.Now()
		for m := 0; m < tensor.Order; m++ {
			// Local MTTKRP on this rank's block.
			r.Compute(tensor.FlopsPerMTTKRP(nnz, R), tensor.BytesPerMTTKRP(nnz, R))

			// Medium-grained fold+expand: exchange partial factor rows
			// within the layer. The rows a rank actually exchanges are the
			// distinct mode-m indices of its block, spread over the layer
			// peers (Alltoallv).
			lc := layers[m]
			rows := part.DistinctRows[m][me]
			perPeer := int64(rows) * int64(R) * 8 / int64(lc.Size())
			if perPeer < 64 {
				perPeer = 64
			}
			send := make([]mpi.Buf, lc.Size())
			for i := range send {
				send[i] = mpi.BytesBuf(perPeer)
			}
			lc.Alltoall(r, send) // MPI_Alltoallv

			// Gram matrix of the updated factor: world Allreduce of R×R.
			commA.Allreduce(r, mpi.BytesBuf(int64(R*R)*8), mpi.OpSum)

			// Column norms: Reduce to 0 then Bcast of λ.
			commB.Reduce(r, 0, mpi.BytesBuf(int64(R)*8), mpi.OpMax)
			commB.Bcast(r, 0, mpi.BytesBuf(int64(R)*8))
		}
		// Fit: inner products reduced across the world.
		comm.Allreduce(r, mpi.BytesBuf(16), mpi.OpSum)
		if phases {
			sc.Phase("splatt.iter", iterStart, r.Now(), obs.Arg{Key: "iter", Val: int64(it)})
		}
	}
	comm.Barrier(r)
	elapsed := r.Now() - start
	if phases {
		sc.Phase("splatt.cpd", start, r.Now(), obs.Arg{Key: "iters", Val: int64(iters)})
	}

	// Final factor gather to rank 0 (outside the timed CPD, as in Splatt's
	// output stage, but it exercises MPI_Gather for the census).
	comm.Gather(r, 0, mpi.BytesBuf(int64(R)*8))
	return elapsed
}
