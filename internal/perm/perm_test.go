package perm

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestIdentity(t *testing.T) {
	got := Identity(4)
	want := []int{0, 1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Identity(4) = %v, want %v", got, want)
	}
	if len(Identity(0)) != 0 {
		t.Errorf("Identity(0) not empty")
	}
}

func TestReversed(t *testing.T) {
	got := Reversed(4)
	want := []int{3, 2, 1, 0}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Reversed(4) = %v, want %v", got, want)
	}
}

func TestIsPermutation(t *testing.T) {
	cases := []struct {
		p    []int
		want bool
	}{
		{[]int{0}, true},
		{[]int{0, 1, 2}, true},
		{[]int{2, 0, 1}, true},
		{[]int{}, true},
		{[]int{1}, false},
		{[]int{0, 0}, false},
		{[]int{0, 2}, false},
		{[]int{-1, 0}, false},
		{[]int{3, 1, 0, 2}, true},
	}
	for _, c := range cases {
		if got := IsPermutation(c.p); got != c.want {
			t.Errorf("IsPermutation(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	if err := Check([]int{0, 1, 2}); err != nil {
		t.Errorf("Check(valid) = %v", err)
	}
	if err := Check([]int{0, 0, 1}); err == nil {
		t.Error("Check with duplicate should fail")
	}
	if err := Check([]int{0, 5}); err == nil {
		t.Error("Check with out-of-range should fail")
	}
}

func TestInverse(t *testing.T) {
	p := []int{2, 0, 3, 1}
	inv := Inverse(p)
	want := []int{1, 3, 0, 2}
	if !reflect.DeepEqual(inv, want) {
		t.Errorf("Inverse(%v) = %v, want %v", p, inv, want)
	}
	if !Equal(Compose(p, inv), Identity(4)) {
		t.Errorf("p ∘ p⁻¹ != id")
	}
	if !Equal(Compose(inv, p), Identity(4)) {
		t.Errorf("p⁻¹ ∘ p != id")
	}
}

func TestInversePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Inverse of non-permutation should panic")
		}
	}()
	Inverse([]int{0, 0})
}

func TestCompose(t *testing.T) {
	p := []int{1, 2, 0}
	q := []int{2, 1, 0}
	// r[i] = p[q[i]]
	want := []int{0, 2, 1}
	if got := Compose(p, q); !reflect.DeepEqual(got, want) {
		t.Errorf("Compose(%v, %v) = %v, want %v", p, q, got, want)
	}
}

func TestApply(t *testing.T) {
	s := []string{"a", "b", "c", "d"}
	p := []int{3, 1, 0, 2}
	got := Apply(p, s)
	want := []string{"d", "b", "a", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Apply(%v, %v) = %v, want %v", p, s, got, want)
	}
}

func TestFactorial(t *testing.T) {
	cases := []struct {
		k    int
		want int64
	}{{0, 1}, {1, 1}, {2, 2}, {3, 6}, {4, 24}, {5, 120}, {6, 720}, {10, 3628800}}
	for _, c := range cases {
		if got := Factorial(c.k); got != c.want {
			t.Errorf("Factorial(%d) = %d, want %d", c.k, got, c.want)
		}
	}
}

func TestAllCountsAndDistinct(t *testing.T) {
	for k := 0; k <= 7; k++ {
		ps := All(k)
		if int64(len(ps)) != Factorial(k) {
			t.Fatalf("All(%d) returned %d permutations, want %d", k, len(ps), Factorial(k))
		}
		seen := make(map[string]bool, len(ps))
		for _, p := range ps {
			if !IsPermutation(p) {
				t.Fatalf("All(%d) produced non-permutation %v", k, p)
			}
			key := Format(p)
			if seen[key] {
				t.Fatalf("All(%d) produced duplicate %v", k, p)
			}
			seen[key] = true
		}
	}
}

func TestVisitEarlyStop(t *testing.T) {
	n := 0
	Visit(5, func(p []int) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Errorf("Visit stopped after %d permutations, want 10", n)
	}
}

func TestVisitZero(t *testing.T) {
	n := 0
	Visit(0, func(p []int) bool {
		if len(p) != 0 {
			t.Errorf("Visit(0) yielded %v", p)
		}
		n++
		return true
	})
	if n != 1 {
		t.Errorf("Visit(0) yielded %d permutations, want 1", n)
	}
}

func TestRankUnrankRoundTrip(t *testing.T) {
	for k := 1; k <= 6; k++ {
		for r := int64(0); r < Factorial(k); r++ {
			p := Unrank(k, r)
			if got := Rank(p); got != r {
				t.Fatalf("Rank(Unrank(%d, %d)) = %d", k, r, got)
			}
		}
	}
}

func TestRankLexicographic(t *testing.T) {
	// Unrank(k, 0) must be the identity; Unrank(k, k!-1) the reversal.
	for k := 1; k <= 6; k++ {
		if !Equal(Unrank(k, 0), Identity(k)) {
			t.Errorf("Unrank(%d, 0) != identity", k)
		}
		if !Equal(Unrank(k, Factorial(k)-1), Reversed(k)) {
			t.Errorf("Unrank(%d, %d!) != reversal", k, k)
		}
	}
}

func TestFormatParse(t *testing.T) {
	cases := []struct {
		in   string
		want []int
	}{
		{"2-1-0-3", []int{2, 1, 0, 3}},
		{"[2, 1, 0, 3]", []int{2, 1, 0, 3}},
		{"2,1,0,3", []int{2, 1, 0, 3}},
		{"0", []int{0}},
		{"[0,1,2]", []int{0, 1, 2}},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q) error: %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "x", "0-0", "1-2", "0-2", "[]"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	for _, p := range All(4) {
		got, err := Parse(Format(p))
		if err != nil {
			t.Fatalf("Parse(Format(%v)): %v", p, err)
		}
		if !Equal(got, p) {
			t.Fatalf("round trip %v -> %q -> %v", p, Format(p), got)
		}
	}
}

// Property: Inverse is an involution and Compose(p, Inverse(p)) == id.
func TestInverseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		k := int(seed%8) + 1
		if k < 0 {
			k = -k + 1
		}
		p := rng.Perm(k)
		return Equal(Inverse(Inverse(p)), p) &&
			Equal(Compose(p, Inverse(p)), Identity(k))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Rank/Unrank are inverse for random permutations.
func TestRankUnrankProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(x uint8) bool {
		k := int(x%7) + 1
		p := rng.Perm(k)
		return Equal(Unrank(k, Rank(p)), p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAll4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		All(4)
	}
}

func BenchmarkVisit6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := 0
		Visit(6, func(p []int) bool { n++; return true })
		if n != 720 {
			b.Fatal("bad count")
		}
	}
}
