package perm

import "testing"

// FuzzParse checks that Parse never panics and that accepted inputs
// round-trip through Format.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{"0-1-2", "[2, 1, 0, 3]", "0,1", "", "x", "0-0", "9", "-1-0", "1-2-0"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			return
		}
		if !IsPermutation(p) {
			t.Fatalf("Parse(%q) accepted non-permutation %v", s, p)
		}
		back, err := Parse(Format(p))
		if err != nil {
			t.Fatalf("Format(%v) not reparseable: %v", p, err)
		}
		if !Equal(back, p) {
			t.Fatalf("round trip %v -> %v", p, back)
		}
	})
}
