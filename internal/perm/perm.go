// Package perm provides permutation utilities used throughout the
// mixed-radix enumeration library: generation of all permutations via
// Heap's algorithm, ranking and unranking in the factorial number system,
// inversion, composition, and the textual order notation used by the paper
// (for example "2-1-0-3").
//
// A permutation of k elements is represented as a []int of length k holding
// each value in [0, k) exactly once. The paper calls permutations of
// hierarchy levels "orders".
package perm

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrNotPermutation reports that a slice is not a permutation of [0, k).
var ErrNotPermutation = errors.New("perm: not a permutation of [0, k)")

// Identity returns the identity permutation [0, 1, …, k-1].
func Identity(k int) []int {
	p := make([]int, k)
	for i := range p {
		p[i] = i
	}
	return p
}

// Reversed returns the reversing permutation [k-1, k-2, …, 0].
// Applied as an order, it reproduces the initial enumeration of a
// hierarchy (Figure 2f of the paper).
func Reversed(k int) []int {
	p := make([]int, k)
	for i := range p {
		p[i] = k - 1 - i
	}
	return p
}

// IsPermutation reports whether p holds each value in [0, len(p)) exactly once.
func IsPermutation(p []int) bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Check returns ErrNotPermutation (wrapped with the offending value) if p is
// not a permutation of [0, len(p)).
func Check(p []int) error {
	seen := make([]bool, len(p))
	for i, v := range p {
		if v < 0 || v >= len(p) {
			return fmt.Errorf("%w: element %d is %d, want value in [0, %d)", ErrNotPermutation, i, v, len(p))
		}
		if seen[v] {
			return fmt.Errorf("%w: value %d appears more than once", ErrNotPermutation, v)
		}
		seen[v] = true
	}
	return nil
}

// Inverse returns q with q[p[i]] = i. Applying p then Inverse(p) as index
// maps yields the identity. Inverse panics if p is not a permutation.
func Inverse(p []int) []int {
	if !IsPermutation(p) {
		panic(ErrNotPermutation)
	}
	q := make([]int, len(p))
	for i, v := range p {
		q[v] = i
	}
	return q
}

// Compose returns the permutation r with r[i] = p[q[i]] — that is, applying
// q first and then p when permutations are read as index maps.
// It panics if the lengths differ or either argument is not a permutation.
func Compose(p, q []int) []int {
	if len(p) != len(q) {
		panic("perm: Compose length mismatch")
	}
	if !IsPermutation(p) || !IsPermutation(q) {
		panic(ErrNotPermutation)
	}
	r := make([]int, len(p))
	for i := range r {
		r[i] = p[q[i]]
	}
	return r
}

// Apply returns the slice s permuted by p: out[i] = s[p[i]].
// This matches the paper's use of σ: the i-th position of the result is the
// σ(i)-th element of the input. It panics if lengths differ or p is invalid.
func Apply[T any](p []int, s []T) []T {
	if len(p) != len(s) {
		panic("perm: Apply length mismatch")
	}
	if !IsPermutation(p) {
		panic(ErrNotPermutation)
	}
	out := make([]T, len(s))
	for i, v := range p {
		out[i] = s[v]
	}
	return out
}

// Equal reports whether two permutations are identical.
func Equal(p, q []int) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Less reports whether p precedes q in element-wise lexicographic order,
// with a shorter permutation preceding any longer one it prefixes. Unlike
// comparing Format strings, Less is correct for k ≥ 10 ("10" sorts before
// "2" as a string but not as an element), so it is the tie-break used to
// keep rankings deterministic.
func Less(p, q []int) bool {
	for i := 0; i < len(p) && i < len(q); i++ {
		if p[i] != q[i] {
			return p[i] < q[i]
		}
	}
	return len(p) < len(q)
}

// Factorial returns k! for k ≥ 0. It panics if the result overflows int64.
func Factorial(k int) int64 {
	if k < 0 {
		panic("perm: Factorial of negative number")
	}
	f := int64(1)
	for i := 2; i <= k; i++ {
		next := f * int64(i)
		if next/int64(i) != f {
			panic("perm: Factorial overflow")
		}
		f = next
	}
	return f
}

// All returns all k! permutations of [0, k) generated with Heap's algorithm
// [Heap 1963], the generator cited by the paper (§4). The returned slices
// are freshly allocated and independent. All panics for k < 0 or when k! is
// unreasonably large (k > 12).
func All(k int) [][]int {
	if k < 0 {
		panic("perm: All of negative number")
	}
	if k > 12 {
		panic("perm: All would generate more than 12! permutations")
	}
	if k == 0 {
		return [][]int{{}}
	}
	var out [][]int
	Visit(k, func(p []int) bool {
		cp := make([]int, k)
		copy(cp, p)
		out = append(out, cp)
		return true
	})
	return out
}

// Visit generates all permutations of [0, k) with Heap's non-recursive
// algorithm, calling fn for each. The slice passed to fn is reused between
// calls; fn must copy it to retain it. Iteration stops early when fn
// returns false.
func Visit(k int, fn func(p []int) bool) {
	if k <= 0 {
		if k == 0 {
			fn([]int{})
		}
		return
	}
	a := Identity(k)
	if !fn(a) {
		return
	}
	// Heap's algorithm, iterative form: c is the encoding of the stack state.
	c := make([]int, k)
	i := 0
	for i < k {
		if c[i] < i {
			if i%2 == 0 {
				a[0], a[i] = a[i], a[0]
			} else {
				a[c[i]], a[i] = a[i], a[c[i]]
			}
			if !fn(a) {
				return
			}
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
}

// Rank returns the lexicographic rank of permutation p among all
// permutations of its length, in [0, k!). It panics if p is invalid.
func Rank(p []int) int64 {
	if !IsPermutation(p) {
		panic(ErrNotPermutation)
	}
	k := len(p)
	var r int64
	for i := 0; i < k; i++ {
		smaller := 0
		for j := i + 1; j < k; j++ {
			if p[j] < p[i] {
				smaller++
			}
		}
		r += int64(smaller) * Factorial(k-1-i)
	}
	return r
}

// Unrank returns the permutation of [0, k) with lexicographic rank r.
// It panics unless 0 ≤ r < k!.
func Unrank(k int, r int64) []int {
	if r < 0 || r >= Factorial(k) {
		panic("perm: Unrank rank out of range")
	}
	avail := Identity(k)
	p := make([]int, k)
	for i := 0; i < k; i++ {
		f := Factorial(k - 1 - i)
		idx := r / f
		r %= f
		p[i] = avail[idx]
		avail = append(avail[:idx], avail[idx+1:]...)
	}
	return p
}

// Format renders p in the paper's order notation: elements joined by
// hyphens, e.g. "2-1-0-3".
func Format(p []int) string {
	var b strings.Builder
	for i, v := range p {
		if i > 0 {
			b.WriteByte('-')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// Parse reads the order notation produced by Format. It also accepts
// comma-separated values and the bracketed form "[2, 1, 0, 3]".
// The result must be a permutation of [0, k) for its length k.
func Parse(s string) ([]int, error) {
	t := strings.TrimSpace(s)
	t = strings.TrimPrefix(t, "[")
	t = strings.TrimSuffix(t, "]")
	if t == "" {
		return nil, fmt.Errorf("perm: empty order %q", s)
	}
	sep := "-"
	if strings.ContainsAny(t, ",") {
		sep = ","
	} else if strings.ContainsAny(t, " ") && !strings.Contains(t, "-") {
		sep = " "
	}
	fields := strings.Split(t, sep)
	p := make([]int, 0, len(fields))
	for _, f := range fields {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("perm: bad order element %q in %q: %w", f, s, err)
		}
		p = append(p, v)
	}
	if len(p) == 0 {
		return nil, fmt.Errorf("perm: no elements in order %q", s)
	}
	if err := Check(p); err != nil {
		return nil, fmt.Errorf("perm: parsing %q: %w", s, err)
	}
	return p, nil
}
