package fault

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ErrBadPlan is wrapped by every parse/validation error so callers can
// distinguish malformed plans from runtime failures with errors.Is.
var ErrBadPlan = errors.New("fault: bad plan")

func badf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadPlan, fmt.Sprintf(format, args...))
}

// Kind classifies a fault event.
type Kind string

const (
	// KindNode crashes every rank on one node at time At.
	KindNode Kind = "node"
	// KindRank crashes a single world rank at time At.
	KindRank Kind = "rank"
	// KindStraggle slows one rank down by Factor from time At on: its
	// compute and communication take Factor times longer.
	KindStraggle Kind = "straggle"
	// KindLink multiplies the capacity of every link at hierarchy level
	// Level by Factor (0 < Factor <= 1) at time At.
	KindLink Kind = "link"
	// KindChaos expands (via Materialize) into Target rank crashes at
	// seed-deterministic times drawn uniformly from [0, By].
	KindChaos Kind = "chaos"

	// The fleet-scoped kinds below target serving replicas instead of MPI
	// ranks: they are expanded by FleetEvents and skipped by Materialize,
	// so one plan can describe both a degraded simulation and the chaos
	// schedule of the serving tier that advises it.

	// KindReplicaKill crashes serving replica Target at time At.
	KindReplicaKill Kind = "replica"
	// KindReplicaRestart restarts serving replica Target at time At.
	KindReplicaRestart Kind = "restart"
	// KindReplicaChaos expands (via FleetEvents) into Target replica kills
	// at seed-deterministic times drawn uniformly from [At, By], each
	// followed by a restart Restart seconds later when Restart > 0.
	KindReplicaChaos Kind = "replica-chaos"
)

// Plan limits; plans are tiny configuration, not bulk data.
const (
	MaxEvents       = 256
	MaxChaosKills   = 4096
	MaxStraggleFact = 1e6
	MaxTime         = 1e9 // seconds of virtual time
)

// Event is one fault in a plan. Which fields are meaningful depends on
// Kind; see the Kind constants.
type Event struct {
	Kind    Kind    `json:"kind"`
	Target  int     `json:"target,omitempty"`  // node, rank, replica, or chaos kill count
	Level   int     `json:"level,omitempty"`   // link: hierarchy level
	Factor  float64 `json:"factor,omitempty"`  // straggle slowdown or link capacity multiplier
	At      float64 `json:"at,omitempty"`      // virtual time, seconds
	By      float64 `json:"by,omitempty"`      // chaos: upper bound for kill times
	Restart float64 `json:"restart,omitempty"` // replica-chaos: restart delay after each kill
}

// Plan is a deterministic fault schedule. The zero Plan injects nothing.
type Plan struct {
	Seed   int64   `json:"seed"`
	Events []Event `json:"events"`
}

// Empty reports whether the plan injects no faults.
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }

// Parse reads a fault plan from either the compact DSL or (when the input
// starts with '{') the JSON form. The DSL is semicolon-separated clauses:
//
//	seed=7
//	node:3@t=50ms
//	rank:17@t=50ms
//	straggle:rank=17,factor=4@t=2ms
//	link:level=2,degrade=0.5@t=1ms
//	chaos:ranks=2,by=100ms
//	replica:1@t=2s
//	restart:replica=1@t=6s
//	replica-chaos:kills=1,by=3s,restart=2s
//
// Times accept time.ParseDuration syntax ("50ms", "1.5s") or a bare number
// of seconds. "@t=..." is optional and defaults to t=0. All errors wrap
// ErrBadPlan.
func Parse(s string) (*Plan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, badf("empty plan")
	}
	if strings.HasPrefix(s, "{") {
		return parseJSON(s)
	}
	p := &Plan{}
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if err := p.parseClause(clause); err != nil {
			return nil, err
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func parseJSON(s string) (*Plan, error) {
	dec := json.NewDecoder(strings.NewReader(s))
	dec.DisallowUnknownFields()
	p := &Plan{}
	if err := dec.Decode(p); err != nil {
		return nil, badf("json: %v", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Plan) parseClause(clause string) error {
	head, rest, hasBody := strings.Cut(clause, ":")
	head = strings.TrimSpace(head)
	if !hasBody {
		// bare key=value clause: only "seed=N"
		key, val, ok := strings.Cut(head, "=")
		if !ok || strings.TrimSpace(key) != "seed" {
			return badf("clause %q: expected kind:args or seed=N", clause)
		}
		seed, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
		if err != nil {
			return badf("seed %q: %v", val, err)
		}
		p.Seed = seed
		return nil
	}

	// Split off the optional "@t=<dur>" suffix.
	body, at := rest, 0.0
	if i := strings.LastIndex(rest, "@"); i >= 0 {
		body = rest[:i]
		suffix := strings.TrimSpace(rest[i+1:])
		tv, ok := strings.CutPrefix(suffix, "t=")
		if !ok {
			return badf("clause %q: expected @t=<duration>", clause)
		}
		d, err := parseSeconds(tv)
		if err != nil {
			return badf("clause %q: %v", clause, err)
		}
		at = d
	}
	body = strings.TrimSpace(body)

	ev := Event{At: at}
	kv := map[string]string{}
	for _, f := range strings.Split(body, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		if k, v, ok := strings.Cut(f, "="); ok {
			k = strings.TrimSpace(k)
			if _, dup := kv[k]; dup {
				return badf("clause %q: duplicate key %q", clause, k)
			}
			kv[k] = strings.TrimSpace(v)
		} else if _, bare := kv[""]; !bare {
			kv[""] = f // positional value, e.g. node:3
		} else {
			return badf("clause %q: more than one positional value", clause)
		}
	}

	intKey := func(key string) (int, bool, error) {
		v, ok := kv[key]
		if !ok {
			return 0, false, nil
		}
		delete(kv, key)
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, false, badf("clause %q: %s=%q: %v", clause, key, v, err)
		}
		return n, true, nil
	}
	floatKey := func(key string) (float64, bool, error) {
		v, ok := kv[key]
		if !ok {
			return 0, false, nil
		}
		delete(kv, key)
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, false, badf("clause %q: %s=%q: %v", clause, key, v, err)
		}
		return f, true, nil
	}

	switch Kind(head) {
	case KindNode, KindRank:
		ev.Kind = Kind(head)
		n, ok, err := intKey("")
		if err != nil {
			return err
		}
		if !ok {
			key := "node"
			if ev.Kind == KindRank {
				key = "rank"
			}
			if n, ok, err = intKey(key); err != nil {
				return err
			}
		}
		if !ok {
			return badf("clause %q: missing %s index", clause, head)
		}
		ev.Target = n
	case KindStraggle:
		ev.Kind = KindStraggle
		n, ok, err := intKey("rank")
		if err != nil {
			return err
		}
		if !ok {
			if n, ok, err = intKey(""); err != nil {
				return err
			}
		}
		if !ok {
			return badf("clause %q: missing rank=", clause)
		}
		ev.Target = n
		f, ok, err := floatKey("factor")
		if err != nil {
			return err
		}
		if !ok {
			return badf("clause %q: missing factor=", clause)
		}
		ev.Factor = f
		// level= is accepted (scope hint in the issue's example) but the
		// runtime straggles the whole rank; keep it for round-tripping.
		if lvl, ok, err := intKey("level"); err != nil {
			return err
		} else if ok {
			ev.Level = lvl
		}
	case KindLink:
		ev.Kind = KindLink
		lvl, ok, err := intKey("level")
		if err != nil {
			return err
		}
		if !ok {
			if lvl, ok, err = intKey(""); err != nil {
				return err
			}
		}
		if !ok {
			return badf("clause %q: missing level=", clause)
		}
		ev.Level = lvl
		f, ok, err := floatKey("degrade")
		if err != nil {
			return err
		}
		if !ok {
			return badf("clause %q: missing degrade=", clause)
		}
		ev.Factor = f
	case KindChaos:
		ev.Kind = KindChaos
		n, ok, err := intKey("ranks")
		if err != nil {
			return err
		}
		if !ok {
			if n, ok, err = intKey(""); err != nil {
				return err
			}
		}
		if !ok {
			return badf("clause %q: missing ranks=", clause)
		}
		ev.Target = n
		if v, ok := kv["by"]; ok {
			delete(kv, "by")
			d, err := parseSeconds(v)
			if err != nil {
				return badf("clause %q: by=%q: %v", clause, v, err)
			}
			ev.By = d
		}
	case KindReplicaKill, KindReplicaRestart:
		ev.Kind = Kind(head)
		n, ok, err := intKey("")
		if err != nil {
			return err
		}
		if !ok {
			if n, ok, err = intKey("replica"); err != nil {
				return err
			}
		}
		if !ok {
			return badf("clause %q: missing replica index", clause)
		}
		ev.Target = n
	case KindReplicaChaos:
		ev.Kind = KindReplicaChaos
		n, ok, err := intKey("kills")
		if err != nil {
			return err
		}
		if !ok {
			if n, ok, err = intKey(""); err != nil {
				return err
			}
		}
		if !ok {
			return badf("clause %q: missing kills=", clause)
		}
		ev.Target = n
		for key, dst := range map[string]*float64{"by": &ev.By, "restart": &ev.Restart} {
			if v, ok := kv[key]; ok {
				delete(kv, key)
				d, err := parseSeconds(v)
				if err != nil {
					return badf("clause %q: %s=%q: %v", clause, key, v, err)
				}
				*dst = d
			}
		}
	default:
		return badf("clause %q: unknown fault kind %q", clause, head)
	}

	for k := range kv {
		if k == "" {
			return badf("clause %q: unexpected positional value", clause)
		}
		return badf("clause %q: unknown key %q", clause, k)
	}
	p.Events = append(p.Events, ev)
	return nil
}

// parseSeconds accepts time.ParseDuration syntax or a bare float of
// seconds.
func parseSeconds(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("empty duration")
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	return d.Seconds(), nil
}

// Validate checks every event for in-range fields. All errors wrap
// ErrBadPlan.
func (p *Plan) Validate() error {
	if len(p.Events) > MaxEvents {
		return badf("%d events (limit %d)", len(p.Events), MaxEvents)
	}
	for i, ev := range p.Events {
		if err := ev.validate(); err != nil {
			return fmt.Errorf("%w (event %d)", err, i)
		}
	}
	return nil
}

func (ev Event) validate() error {
	bad := func(format string, args ...any) error {
		return badf("%s: %s", ev.Kind, fmt.Sprintf(format, args...))
	}
	if !(ev.At >= 0 && ev.At <= MaxTime) {
		return bad("time %v out of range", ev.At)
	}
	switch ev.Kind {
	case KindNode, KindRank:
		if ev.Target < 0 {
			return bad("negative index %d", ev.Target)
		}
	case KindStraggle:
		if ev.Target < 0 {
			return bad("negative rank %d", ev.Target)
		}
		if !(ev.Factor >= 1 && ev.Factor <= MaxStraggleFact) {
			return bad("factor %v outside [1, %v]", ev.Factor, float64(MaxStraggleFact))
		}
		if ev.Level < 0 {
			return bad("negative level %d", ev.Level)
		}
	case KindLink:
		if ev.Level < 0 {
			return bad("negative level %d", ev.Level)
		}
		if !(ev.Factor > 0 && ev.Factor <= 1) {
			return bad("degrade %v outside (0, 1]", ev.Factor)
		}
	case KindChaos:
		if ev.Target < 1 || ev.Target > MaxChaosKills {
			return bad("ranks %d outside [1, %d]", ev.Target, MaxChaosKills)
		}
		if !(ev.By >= 0 && ev.By <= MaxTime) {
			return bad("by %v out of range", ev.By)
		}
	case KindReplicaKill, KindReplicaRestart:
		if ev.Target < 0 {
			return bad("negative replica %d", ev.Target)
		}
	case KindReplicaChaos:
		if ev.Target < 1 || ev.Target > MaxChaosKills {
			return bad("kills %d outside [1, %d]", ev.Target, MaxChaosKills)
		}
		if !(ev.By >= 0 && ev.By <= MaxTime) {
			return bad("by %v out of range", ev.By)
		}
		if !(ev.Restart >= 0 && ev.Restart <= MaxTime) {
			return bad("restart %v out of range", ev.Restart)
		}
	default:
		return badf("unknown kind %q", ev.Kind)
	}
	return nil
}

// String renders the plan in canonical DSL form: seed first, then events
// in their stored order. Parse(p.String()) reproduces the plan, and Hash
// is computed over this form.
func (p *Plan) String() string {
	var parts []string
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	for _, ev := range p.Events {
		parts = append(parts, ev.String())
	}
	if len(parts) == 0 {
		return "seed=0"
	}
	return strings.Join(parts, ";")
}

func (ev Event) String() string {
	at := ""
	if ev.At != 0 {
		at = fmt.Sprintf("@t=%s", formatSeconds(ev.At))
	}
	switch ev.Kind {
	case KindNode, KindRank:
		return fmt.Sprintf("%s:%d%s", ev.Kind, ev.Target, at)
	case KindStraggle:
		lvl := ""
		if ev.Level != 0 {
			lvl = fmt.Sprintf(",level=%d", ev.Level)
		}
		return fmt.Sprintf("straggle:rank=%d,factor=%s%s%s", ev.Target, formatFloat(ev.Factor), lvl, at)
	case KindLink:
		return fmt.Sprintf("link:level=%d,degrade=%s%s", ev.Level, formatFloat(ev.Factor), at)
	case KindChaos:
		by := ""
		if ev.By != 0 {
			by = fmt.Sprintf(",by=%s", formatSeconds(ev.By))
		}
		return fmt.Sprintf("chaos:ranks=%d%s%s", ev.Target, by, at)
	case KindReplicaKill, KindReplicaRestart:
		return fmt.Sprintf("%s:%d%s", ev.Kind, ev.Target, at)
	case KindReplicaChaos:
		by := ""
		if ev.By != 0 {
			by = fmt.Sprintf(",by=%s", formatSeconds(ev.By))
		}
		restart := ""
		if ev.Restart != 0 {
			restart = fmt.Sprintf(",restart=%s", formatSeconds(ev.Restart))
		}
		return fmt.Sprintf("replica-chaos:kills=%d%s%s%s", ev.Target, by, restart, at)
	}
	return fmt.Sprintf("?%s", ev.Kind)
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func formatSeconds(sec float64) string { return formatFloat(sec) + "s" }

// Hash returns the FNV-1a 64-bit hash of the canonical plan string as hex.
// Two plans with the same hash inject identical faults, so recording the
// hash in run metadata makes degraded traces attributable and comparable.
func (p *Plan) Hash() string {
	h := fnv.New64a()
	h.Write([]byte(p.String()))
	return fmt.Sprintf("%016x", h.Sum64())
}

// Materialize expands the plan against a concrete world of nranks ranks:
// chaos events become seed-deterministic rank crashes, and events whose
// targets fall outside the world are dropped. The result is sorted by
// (time, kind, target) so injection order — and therefore the simulated
// outcome — is a pure function of (plan, world shape).
func (p *Plan) Materialize(nranks, coresPerNode int) []Event {
	if p.Empty() || nranks <= 0 {
		return nil
	}
	if coresPerNode <= 0 {
		coresPerNode = 1
	}
	nnodes := (nranks + coresPerNode - 1) / coresPerNode
	rng := rand.New(rand.NewSource(p.Seed))
	var out []Event
	for _, ev := range p.Events {
		switch ev.Kind {
		case KindChaos:
			n := ev.Target
			if n > nranks {
				n = nranks
			}
			for _, r := range rng.Perm(nranks)[:n] {
				at := ev.At
				if ev.By > at {
					at += rng.Float64() * (ev.By - at)
				}
				out = append(out, Event{Kind: KindRank, Target: r, At: at})
			}
		case KindNode:
			if ev.Target < nnodes {
				out = append(out, ev)
			}
		case KindRank, KindStraggle:
			if ev.Target < nranks {
				out = append(out, ev)
			}
		case KindReplicaKill, KindReplicaRestart, KindReplicaChaos:
			// Fleet-scoped: replicas are serving processes, not ranks.
			// FleetEvents expands these against the replica world.
		default:
			out = append(out, ev)
		}
	}
	sortEvents(out)
	return out
}

func sortEvents(out []Event) {
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Target < b.Target
	})
}

// FleetEvents is Materialize's counterpart for the serving tier: it
// expands the plan against a fleet of nreplicas replicas, turning
// replica-chaos clauses into seed-deterministic kill (and optional
// restart) events on distinct replicas and dropping events whose targets
// fall outside the fleet. The result is sorted by (time, kind, target),
// so a chaos run's kill schedule is a pure function of (plan, fleet
// size) — reruns with the same seed kill the same replicas at the same
// times.
func (p *Plan) FleetEvents(nreplicas int) []Event {
	if p.Empty() || nreplicas <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(p.Seed))
	var out []Event
	for _, ev := range p.Events {
		switch ev.Kind {
		case KindReplicaChaos:
			n := ev.Target
			if n > nreplicas {
				n = nreplicas
			}
			for _, r := range rng.Perm(nreplicas)[:n] {
				at := ev.At
				if ev.By > at {
					at += rng.Float64() * (ev.By - at)
				}
				out = append(out, Event{Kind: KindReplicaKill, Target: r, At: at})
				if ev.Restart > 0 {
					out = append(out, Event{Kind: KindReplicaRestart, Target: r, At: at + ev.Restart})
				}
			}
		case KindReplicaKill, KindReplicaRestart:
			if ev.Target < nreplicas {
				out = append(out, ev)
			}
		}
	}
	sortEvents(out)
	return out
}
