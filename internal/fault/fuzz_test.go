package fault

import (
	"errors"
	"testing"
)

// FuzzParsePlan drives the fault-plan parser with arbitrary inputs in both
// the DSL and JSON forms. The parser must never panic, every error must
// wrap ErrBadPlan, and anything it accepts must survive the canonical
// round trip (Parse → String → Parse → same canonical form) and
// materialize deterministically within the documented limits.
func FuzzParsePlan(f *testing.F) {
	f.Add("seed=7;node:3@t=50ms")
	f.Add("straggle:rank=17,factor=4,level=2")
	f.Add("link:level=2,degrade=0.5@t=1ms")
	f.Add("chaos:ranks=2,by=100ms")
	f.Add("replica:1@t=2s;restart:replica=1@t=6s")
	f.Add("replica-chaos:kills=2,by=3s,restart=2s")
	f.Add("rank:0;rank:1;rank:2")
	f.Add("node:3@t=-1")            // negative time
	f.Add("link:level=1,degrade=2") // degrade > 1
	f.Add("seed=9223372036854775807")
	f.Add(`{"seed": 1, "events": [{"kind": "rank", "target": 2}]}`)
	f.Add(`{"events": [{"kind": "chaos", "target": 100000}]}`)
	f.Add("{")
	f.Add(";;;")
	f.Add("node:1@t=1e308s")
	f.Add("straggle:rank=1,factor=nan")

	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			if !errors.Is(err, ErrBadPlan) {
				t.Fatalf("Parse(%q): error %v does not wrap ErrBadPlan", s, err)
			}
			return
		}
		if len(p.Events) > MaxEvents {
			t.Fatalf("accepted %d events (limit %d)", len(p.Events), MaxEvents)
		}
		canon := p.String()
		p2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", canon, err)
		}
		if p2.String() != canon {
			t.Fatalf("canonical form unstable: %q → %q", canon, p2.String())
		}
		if p.Hash() != p2.Hash() {
			t.Fatalf("hash differs across round trip for %q", s)
		}
		a := p.Materialize(32, 4)
		b := p.Materialize(32, 4)
		if len(a) != len(b) {
			t.Fatalf("Materialize not deterministic for %q", s)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("Materialize not deterministic for %q at %d", s, i)
			}
			if a[i].Kind == KindChaos {
				t.Fatalf("chaos event survived materialization: %+v", a[i])
			}
		}
	})
}
