// Package fault provides deterministic fault injection for the simulated
// cluster: a seeded fault plan (parsed from a small DSL or JSON) describing
// node crashes, rank stragglers, and per-level link degradation at exact
// virtual times, plus the typed errors surfaced when a collective runs over
// a degraded world.
//
// The plan is pure data — the MPI runtime (internal/mpi) interprets it
// against a concrete world via World.ApplyFaults, and topology/advisor
// consume the resulting degraded hierarchy to re-enumerate survivors.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// ErrRankLost is the sentinel matched by errors.Is when an MPI operation
// fails because a peer (or the calling rank's communicator) was lost to a
// crash. The concrete error is always a *RankLostError naming the rank.
var ErrRankLost = errors.New("fault: rank lost")

// RankLostError reports an MPI operation that cannot complete because one
// or more ranks crashed. It unwraps to ErrRankLost.
type RankLostError struct {
	// Rank is the first world rank whose loss failed the operation.
	Rank int
	// Node is the node that rank lived on (-1 when unknown).
	Node int
	// At is the virtual time (seconds) of the crash.
	At float64
	// Op is the MPI operation that observed the loss ("Send", "Recv",
	// "Allreduce", ...; empty when unknown).
	Op string
	// Ranks lists every world rank lost so far, ascending.
	Ranks []int
}

func (e *RankLostError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault: rank %d lost", e.Rank)
	if e.Node >= 0 {
		fmt.Fprintf(&b, " (node %d)", e.Node)
	}
	fmt.Fprintf(&b, " at t=%.6fs", e.At)
	if e.Op != "" {
		fmt.Fprintf(&b, " during %s", e.Op)
	}
	if len(e.Ranks) > 1 {
		fmt.Fprintf(&b, "; %d ranks lost total %v", len(e.Ranks), e.Ranks)
	}
	return b.String()
}

func (e *RankLostError) Unwrap() error { return ErrRankLost }

// Catch runs body and intercepts the abort the MPI runtime raises when an
// operation fails with ErrRankLost, returning it as an ordinary error so a
// surviving rank can recover (shrink its communicator, re-enumerate, and
// continue). Any other panic — including the engine-internal value used to
// terminate crashed processes — propagates unchanged.
func Catch(body func()) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if a, ok := r.(sim.Abort); ok && errors.Is(a.Err, ErrRankLost) {
			err = a.Err
			return
		}
		panic(r)
	}()
	body()
	return nil
}

// LostRanks formats a sorted rank list for diagnostics ("ranks 3,7 lost").
func LostRanks(ranks []int) string {
	if len(ranks) == 0 {
		return ""
	}
	sorted := append([]int(nil), ranks...)
	sort.Ints(sorted)
	parts := make([]string, len(sorted))
	for i, r := range sorted {
		parts[i] = fmt.Sprint(r)
	}
	noun := "ranks"
	if len(sorted) == 1 {
		noun = "rank"
	}
	return fmt.Sprintf("%s %s lost to fault injection", noun, strings.Join(parts, ","))
}
