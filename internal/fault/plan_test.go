package fault

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

func mustParse(t *testing.T, s string) *Plan {
	t.Helper()
	p, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return p
}

func TestParseDSL(t *testing.T) {
	p := mustParse(t, "seed=7; node:3@t=50ms; straggle:rank=17,factor=4,level=2; link:level=2,degrade=0.5@t=1ms; chaos:ranks=2,by=100ms")
	if p.Seed != 7 {
		t.Fatalf("seed = %d, want 7", p.Seed)
	}
	want := []Event{
		{Kind: KindNode, Target: 3, At: 0.05},
		{Kind: KindStraggle, Target: 17, Factor: 4, Level: 2},
		{Kind: KindLink, Level: 2, Factor: 0.5, At: 0.001},
		{Kind: KindChaos, Target: 2, By: 0.1},
	}
	if !reflect.DeepEqual(p.Events, want) {
		t.Fatalf("events = %+v, want %+v", p.Events, want)
	}
}

func TestParseBareSecondsAndPositional(t *testing.T) {
	p := mustParse(t, "rank:5@t=0.25;link:2,degrade=1")
	if p.Events[0].At != 0.25 || p.Events[0].Target != 5 {
		t.Fatalf("rank event = %+v", p.Events[0])
	}
	if p.Events[1].Level != 2 || p.Events[1].Factor != 1 {
		t.Fatalf("link event = %+v", p.Events[1])
	}
}

func TestParseJSON(t *testing.T) {
	p := mustParse(t, `{"seed": 3, "events": [{"kind": "rank", "target": 1, "at": 0.5}]}`)
	if p.Seed != 3 || len(p.Events) != 1 || p.Events[0] != (Event{Kind: KindRank, Target: 1, At: 0.5}) {
		t.Fatalf("plan = %+v", p)
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{
		"",
		"bogus:1",
		"node:x",
		"node:-1",
		"rank:1@t=",
		"rank:1@x=5",
		"straggle:rank=1",            // missing factor
		"straggle:rank=1,factor=0.5", // factor < 1
		"link:level=1,degrade=0",     // degrade out of (0,1]
		"link:level=1,degrade=1.5",   // degrade out of (0,1]
		"link:degrade=0.5",           // missing level
		"chaos:ranks=0",              // out of range
		"chaos:ranks=99999999",       // out of range
		"node:1,extra=2",             // unknown key
		"node:1,2",                   // double positional
		"seed=abc",
		"node:1@t=-5",
		`{"seed": 1, "bogus": true}`, // unknown JSON field
		`{"events": [{"kind": "nah"}]}`,
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): expected error", s)
		} else if !errors.Is(err, ErrBadPlan) {
			t.Errorf("Parse(%q): error %v does not wrap ErrBadPlan", s, err)
		}
	}
}

func TestStringRoundTripAndHash(t *testing.T) {
	src := "seed=7;node:3@t=0.05s;straggle:rank=17,factor=4,level=2;link:level=2,degrade=0.5@t=0.001s;chaos:ranks=2,by=0.1s"
	p := mustParse(t, src)
	if got := p.String(); got != src {
		t.Fatalf("String() = %q, want %q", got, src)
	}
	p2 := mustParse(t, p.String())
	if !reflect.DeepEqual(p, p2) {
		t.Fatalf("round trip changed plan: %+v vs %+v", p, p2)
	}
	if p.Hash() != p2.Hash() {
		t.Fatalf("hash not stable: %s vs %s", p.Hash(), p2.Hash())
	}
	if mustParse(t, "seed=8;node:3").Hash() == mustParse(t, "seed=7;node:3").Hash() {
		t.Fatal("different seeds produced the same hash")
	}
}

func TestMaterializeDeterministic(t *testing.T) {
	p := mustParse(t, "seed=42;chaos:ranks=3,by=1s;link:level=1,degrade=0.5@t=0.2")
	a := p.Materialize(16, 4)
	b := p.Materialize(16, 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Materialize not deterministic:\n%+v\n%+v", a, b)
	}
	kills := 0
	seen := map[int]bool{}
	for _, ev := range a {
		if ev.Kind == KindRank {
			kills++
			if seen[ev.Target] {
				t.Fatalf("rank %d killed twice", ev.Target)
			}
			seen[ev.Target] = true
			if ev.Target < 0 || ev.Target >= 16 {
				t.Fatalf("kill target %d outside world", ev.Target)
			}
			if ev.At < 0 || ev.At > 1 {
				t.Fatalf("kill time %v outside [0, 1]", ev.At)
			}
		}
	}
	if kills != 3 {
		t.Fatalf("materialized %d kills, want 3", kills)
	}
	// Different seed, different outcome (with overwhelming probability).
	q := mustParse(t, "seed=43;chaos:ranks=3,by=1s;link:level=1,degrade=0.5@t=0.2")
	if reflect.DeepEqual(a, q.Materialize(16, 4)) {
		t.Fatal("different seeds materialized identically")
	}
	// Sorted by time.
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("events not time-sorted: %+v", a)
		}
	}
}

func TestMaterializeDropsOutOfRange(t *testing.T) {
	p := mustParse(t, "node:99;rank:99;straggle:rank=99,factor=2;rank:1")
	got := p.Materialize(4, 2)
	if len(got) != 1 || got[0].Target != 1 {
		t.Fatalf("Materialize = %+v, want just rank:1", got)
	}
}

func TestRankLostError(t *testing.T) {
	err := &RankLostError{Rank: 17, Node: 4, At: 0.05, Op: "Allreduce", Ranks: []int{3, 17}}
	if !errors.Is(err, ErrRankLost) {
		t.Fatal("RankLostError does not unwrap to ErrRankLost")
	}
	msg := err.Error()
	for _, want := range []string{"rank 17", "node 4", "Allreduce"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}

func TestCatch(t *testing.T) {
	lost := &RankLostError{Rank: 2, Node: -1, At: 1}
	err := Catch(func() { panic(sim.Abort{Err: fmt.Errorf("op: %w", lost)}) })
	if !errors.Is(err, ErrRankLost) {
		t.Fatalf("Catch returned %v, want ErrRankLost", err)
	}
	var rle *RankLostError
	if !errors.As(err, &rle) || rle.Rank != 2 {
		t.Fatalf("Catch lost the RankLostError: %v", err)
	}
	if err := Catch(func() {}); err != nil {
		t.Fatalf("Catch of clean body returned %v", err)
	}
	// Unrelated panics propagate.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Catch swallowed an unrelated panic")
			}
		}()
		Catch(func() { panic("boom") })
	}()
}

func TestParseReplicaClauses(t *testing.T) {
	p := mustParse(t, "seed=9; replica:1@t=2s; restart:replica=1@t=6s; replica-chaos:kills=2,by=3s,restart=2s")
	if p.Seed != 9 {
		t.Fatalf("seed = %d, want 9", p.Seed)
	}
	want := []Event{
		{Kind: KindReplicaKill, Target: 1, At: 2},
		{Kind: KindReplicaRestart, Target: 1, At: 6},
		{Kind: KindReplicaChaos, Target: 2, By: 3, Restart: 2},
	}
	if !reflect.DeepEqual(p.Events, want) {
		t.Fatalf("events = %+v, want %+v", p.Events, want)
	}
	// Canonical round trip, as for the rank-scoped kinds.
	q := mustParse(t, p.String())
	if q.String() != p.String() || q.Hash() != p.Hash() {
		t.Fatalf("round trip changed the plan: %q → %q", p.String(), q.String())
	}
}

func TestParseReplicaErrors(t *testing.T) {
	for _, s := range []string{
		"replica:-1",
		"replica:x",
		"restart:",
		"replica-chaos:kills=0",
		"replica-chaos:kills=1,by=-1s",
		"replica-chaos:kills=1,restart=-2s",
		"replica-chaos:kills=1,bogus=3",
	} {
		if _, err := Parse(s); !errors.Is(err, ErrBadPlan) {
			t.Errorf("Parse(%q): err = %v, want ErrBadPlan", s, err)
		}
	}
}

func TestFleetEventsDeterministic(t *testing.T) {
	p := mustParse(t, "seed=42;replica-chaos:kills=2,by=1s,restart=500ms;replica:0@t=2s")
	a := p.FleetEvents(3)
	if !reflect.DeepEqual(a, p.FleetEvents(3)) {
		t.Fatalf("FleetEvents not deterministic: %+v", a)
	}
	kills, restarts := 0, 0
	killAt := map[int][]float64{}
	var restartEvents []Event
	for _, ev := range a {
		switch ev.Kind {
		case KindReplicaKill:
			kills++
			if ev.Target < 0 || ev.Target >= 3 {
				t.Fatalf("kill target %d outside fleet", ev.Target)
			}
			killAt[ev.Target] = append(killAt[ev.Target], ev.At)
		case KindReplicaRestart:
			restarts++
			restartEvents = append(restartEvents, ev)
		default:
			t.Fatalf("unexpected kind %q in fleet events", ev.Kind)
		}
	}
	// 2 chaos kills on distinct replicas + the explicit replica:0 kill.
	if kills != 3 {
		t.Fatalf("%d kills, want 3", kills)
	}
	// Each chaos kill restarts exactly Restart later.
	if restarts != 2 {
		t.Fatalf("%d restarts, want 2", restarts)
	}
	for _, ev := range restartEvents {
		matched := false
		for _, at := range killAt[ev.Target] {
			if ev.At == at+0.5 {
				matched = true
			}
		}
		if !matched {
			t.Fatalf("restart %+v has no kill 0.5s earlier (kills %v)", ev, killAt[ev.Target])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("fleet events not time-sorted: %+v", a)
		}
	}
	// A different seed picks different victims (kills=2 of 3: 3 possible
	// pairs, so seeds 42 and 1 differing is seed-specific but stable).
	q := mustParse(t, "seed=1;replica-chaos:kills=2,by=1s,restart=500ms;replica:0@t=2s")
	if reflect.DeepEqual(a, q.FleetEvents(3)) {
		t.Fatal("different seeds produced identical fleet events")
	}
}

func TestFleetEventsScoping(t *testing.T) {
	p := mustParse(t, "replica:7;restart:7;replica:1;chaos:ranks=2,by=1s;rank:3")
	// Out-of-fleet targets are dropped; rank-scoped events never leak in.
	got := p.FleetEvents(2)
	if len(got) != 1 || got[0] != (Event{Kind: KindReplicaKill, Target: 1}) {
		t.Fatalf("FleetEvents = %+v, want just replica:1", got)
	}
	// Symmetrically, Materialize never leaks fleet-scoped events.
	for _, ev := range p.Materialize(16, 4) {
		switch ev.Kind {
		case KindReplicaKill, KindReplicaRestart, KindReplicaChaos:
			t.Fatalf("fleet event %+v leaked into Materialize", ev)
		}
	}
}
