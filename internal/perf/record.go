// Package perf is the performance observatory: a declarative benchmark
// registry whose suites sweep the scenario space (hierarchy shape × depth
// × collective × comm size × search mode), a versioned on-disk record
// format for benchmark trajectories, a benchstat-style comparator with
// significance testing that gates regressions in CI, and a minimal pprof
// profile decoder so a regression report can name the function that
// moved.
//
// The package is deliberately self-contained (no external dependencies):
// suites run in-process through a small go-bench-compatible harness, so
// `mrperf smoke` can run every registered benchmark for one iteration in
// milliseconds and `make bench-gate` can compare a fresh run against the
// committed trajectory point without shelling out to go test.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
)

// SchemaVersion identifies the BENCH_<suite>.json record layout. Bump it
// when the format changes incompatibly; Diff refuses to compare records
// of different versions.
const SchemaVersion = 1

// Record is one trajectory point of one suite: the environment it ran
// in, the configuration of the run, and every benchmark's samples.
type Record struct {
	Schema int    `json:"schema"`
	Suite  string `json:"suite"`
	// GitSHA and Timestamp are passed in by the caller (the Makefile /
	// CI), never sampled here, so records are attributable and replayable.
	GitSHA    string `json:"git_sha,omitempty"`
	Timestamp string `json:"timestamp,omitempty"`

	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPU       string `json:"cpu,omitempty"`
	NumCPU    int    `json:"num_cpu"`

	// Reps is how many independent samples each benchmark collected;
	// BenchTime the per-sample target duration.
	Reps      int    `json:"reps"`
	BenchTime string `json:"bench_time"`

	Results []Result `json:"results"`
}

// Result is one benchmark's measurements within a record.
type Result struct {
	// Name is the go-bench-style benchmark name, e.g.
	// "OrderSearch/h=4,2,4,2,4,2/alltoall/c=64/pruned".
	Name string `json:"name"`
	// N is the iteration count of the last sample.
	N int `json:"n"`
	// NsPerOp is the median over Samples.
	NsPerOp float64 `json:"ns_per_op"`
	// Samples holds one ns/op measurement per rep, in run order.
	Samples []float64 `json:"samples"`
	// AllocsPerOp / BytesPerOp are allocation medians over the reps.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Metrics carries custom units (req/s, goodput_req_s, p99_ms, MB/s …).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Profile, when captured, summarizes where the time/memory went.
	Profile *ProfileSummary `json:"profile,omitempty"`
}

// ProfileSummary is the top-N symbol view of the CPU and heap profiles
// captured alongside a benchmark.
type ProfileSummary struct {
	CPUTop  []Symbol `json:"cpu_top,omitempty"`
	HeapTop []Symbol `json:"heap_top,omitempty"`
}

// Symbol is one function's flat/cumulative weight in a profile.
type Symbol struct {
	Func string  `json:"func"`
	Flat float64 `json:"flat"`
	Cum  float64 `json:"cum"`
	Unit string  `json:"unit"`
}

// NewRecord returns a record stamped with the current environment.
func NewRecord(suite, gitSHA, timestamp string) *Record {
	return &Record{
		Schema:    SchemaVersion,
		Suite:     suite,
		GitSHA:    gitSHA,
		Timestamp: timestamp,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPU:       cpuModel(),
		NumCPU:    runtime.NumCPU(),
	}
}

// cpuModel best-effort reads the CPU model name for record context.
func cpuModel() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(b), "\n") {
		if k, v, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(k) == "model name" {
			return strings.TrimSpace(v)
		}
	}
	return ""
}

// Find returns the result with the given benchmark name, or nil.
func (r *Record) Find(name string) *Result {
	for i := range r.Results {
		if r.Results[i].Name == name {
			return &r.Results[i]
		}
	}
	return nil
}

// Sort orders the results by name for deterministic serialization.
func (r *Record) Sort() {
	sort.Slice(r.Results, func(i, j int) bool { return r.Results[i].Name < r.Results[j].Name })
}

// WriteFile serializes the record as indented JSON.
func (r *Record) WriteFile(path string) error {
	r.Sort()
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadRecord loads and validates a record file.
func ReadRecord(path string) (*Record, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Record
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("%s: schema %d, this binary reads %d", path, r.Schema, SchemaVersion)
	}
	if r.Suite == "" {
		return nil, fmt.Errorf("%s: record has no suite name", path)
	}
	return &r, nil
}

// GoBenchLine renders a result as a go test -bench output line, so the
// observatory's runs stay greppable by the standard tooling:
//
//	BenchmarkOrderSearch/…/pruned  1220  1132157 ns/op  744200 B/op  11979 allocs/op
func (res *Result) GoBenchLine() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Benchmark%s\t%8d\t%12.0f ns/op", res.Name, res.N, res.NsPerOp)
	fmt.Fprintf(&b, "\t%8.0f B/op\t%8.0f allocs/op", res.BytesPerOp, res.AllocsPerOp)
	keys := make([]string, 0, len(res.Metrics))
	for k := range res.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "\t%12.4g %s", res.Metrics[k], k)
	}
	return b.String()
}
