// The declarative benchmark registry. A suite is a named, thresholded
// set of benchmarks generated from the scenario space the service
// actually serves: hierarchy shape × depth × collective × comm size ×
// search mode. Suites run in-process under the harness, so the same
// registration drives `mrperf run` (measurement), `mrperf smoke`
// (1-iteration existence check in make check), and `make bench-gate`
// (comparison against the committed trajectory).

package perf

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/advisor"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/mixedradix"
	"repro/internal/perm"
	"repro/internal/topology"
)

// Bench is one registered benchmark.
type Bench struct {
	Name string
	F    func(*B)
}

// Suite is one named benchmark family with its own regression threshold.
type Suite struct {
	Name string
	// Description is shown by mrperf list.
	Description string
	// Threshold is the relative slowdown the gate tolerates (e.g. 0.20).
	Threshold float64
	Benches   []Bench
}

// scenario is one point of the sweep grid.
type scenario struct {
	shape    []int
	coll     advisor.Collective
	commSize int
	mode     string // "full" or "pruned"
}

func (s scenario) name(prefix string) string {
	return fmt.Sprintf("%s/h=%s/%s/c=%d/%s",
		prefix, intsDash(s.shape), s.coll, s.commSize, s.mode)
}

func intsDash(v []int) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, ",")
}

// searchShapes is the scenario-space grid of the order-search suite:
// the depth-6 fast-path headline shape plus a shallow and a skewed
// hierarchy, covering the depths mapd actually serves.
var searchShapes = [][]int{
	{4, 2, 4, 2, 4, 2}, // depth 6, 512 cores — the PR 4 headline scenario
	{2, 4, 2, 8},       // depth 4, 128 cores — Hydra-like
	{16, 2, 2, 8},      // depth 4, 512 cores — wide outer level
}

// KernelSuite benchmarks the closed-form §3.3 metric kernels against the
// retained table oracle — the "~6500×" claim checked on every commit.
func KernelSuite() Suite {
	s := Suite{
		Name:        "kernels",
		Description: "closed-form §3.3 metric kernels vs. the table oracle",
		Threshold:   0.20,
	}
	for _, shape := range searchShapes {
		shape := shape
		h := topology.MustNew(shape...)
		sigma := perm.Reversed(h.Depth())
		comm := h.Level(h.Depth()-1).Arity * h.Level(h.Depth()-2).Arity
		s.Benches = append(s.Benches, Bench{
			Name: fmt.Sprintf("CharacterizeFast/h=%s/c=%d", intsDash(shape), comm),
			F: func(b *B) {
				for i := 0; i < b.N; i++ {
					if _, err := metrics.Characterize(h, sigma, comm); err != nil {
						b.Fatalf("%v", err)
					}
				}
			},
		})
	}
	// One table-path point keeps the oracle's cost on the trajectory, so
	// a differential-test slowdown is visible too.
	hd4 := topology.MustNew(2, 4, 2, 8)
	sigmaD4 := perm.Reversed(4)
	s.Benches = append(s.Benches, Bench{
		Name: "CharacterizeTable/h=2,4,2,8/c=16",
		F: func(b *B) {
			for i := 0; i < b.N; i++ {
				if _, err := metrics.CharacterizeTable(hd4, sigmaD4, 16); err != nil {
					b.Fatalf("%v", err)
				}
			}
		},
	})
	// The signature kernel is the pruning fast path's inner loop.
	hd6 := topology.MustNew(4, 2, 4, 2, 4, 2)
	sigmaD6 := perm.Reversed(6)
	s.Benches = append(s.Benches, Bench{
		Name: "OrderSignature/h=4,2,4,2,4,2/c=64",
		F: func(b *B) {
			for i := 0; i < b.N; i++ {
				if _, err := metrics.OrderSignature(hd6, sigmaD6, 64, metrics.SignatureOpts{Ring: true}); err != nil {
					b.Fatalf("%v", err)
				}
			}
		},
	})
	return s
}

// OrderSearchSuite sweeps advisor.Rank over the scenario grid in both
// search modes, single-threaded so the full/pruned ratio measures the
// algorithm rather than the worker pool.
func OrderSearchSuite() Suite {
	s := Suite{
		Name:        "order_search",
		Description: "advisor.Rank over shape × collective × comm size × search mode",
		Threshold:   0.25,
	}
	grid := []scenario{}
	for _, shape := range searchShapes {
		for _, coll := range []advisor.Collective{advisor.Alltoall, advisor.Allreduce} {
			comm := 64
			if mixedradix.Size(shape)%comm != 0 || mixedradix.Size(shape) < comm {
				comm = 16
			}
			for _, mode := range []string{"full", "pruned"} {
				grid = append(grid, scenario{shape, coll, comm, mode})
			}
		}
	}
	for _, sc := range grid {
		sc := sc
		spec := cluster.Hydra(16, 1)
		adv := advisor.Scenario{
			Spec:      spec,
			Hierarchy: topology.MustNew(sc.shape...),
			Coll:      sc.coll,
			CommSize:  sc.commSize,
			Bytes:     4 << 20,
		}
		want := factorial(len(sc.shape))
		noPrune := sc.mode == "full"
		s.Benches = append(s.Benches, Bench{
			Name: sc.name("OrderSearch"),
			F: func(b *B) {
				ctx := context.Background()
				for i := 0; i < b.N; i++ {
					ranked, err := advisor.Rank(ctx, adv, nil, advisor.RankOptions{Workers: 1, NoPrune: noPrune})
					if err != nil {
						b.Fatalf("%v", err)
					}
					if len(ranked) != want {
						b.Fatalf("ranked %d orders, want %d", len(ranked), want)
					}
				}
			},
		})
	}
	// Deep hierarchies: the bounded branch-and-bound engine over
	// cluster.Cloud at the depths mapd serves beyond the exact
	// threshold. Non-simultaneous scenarios prune to an exact bnb run
	// through depth 12; the simultaneous depth-12 case exhausts the
	// node budget and degrades to beam, covering the fallback's cost.
	deep := []struct {
		depth int
		sim   bool
		mode  string
	}{
		{8, false, advisor.ModeBnB},
		{10, false, advisor.ModeBnB},
		{12, false, advisor.ModeBnB},
		{12, true, advisor.ModeBeam},
	}
	for _, dc := range deep {
		dc := dc
		spec := cluster.Cloud(dc.depth)
		adv := advisor.Scenario{
			Spec:         spec,
			Hierarchy:    spec.Hierarchy(),
			Coll:         advisor.Alltoall,
			CommSize:     64,
			Simultaneous: dc.sim,
			Bytes:        4 << 20,
		}
		wantMode := dc.mode
		s.Benches = append(s.Benches, Bench{
			Name: fmt.Sprintf("OrderSearchDeep/machine=cloud/d=%d/alltoall/c=64/%s", dc.depth, wantMode),
			F: func(b *B) {
				ctx := context.Background()
				for i := 0; i < b.N; i++ {
					res, err := advisor.SearchOrders(ctx, adv, advisor.SearchOptions{Top: 5})
					if err != nil {
						b.Fatalf("%v", err)
					}
					if res.Mode != wantMode {
						b.Fatalf("search mode %s, want %s", res.Mode, wantMode)
					}
				}
			},
		})
	}
	return s
}

// MixedRadixSuite benchmarks the enumeration core: decompose/compose and
// the allocation-free Reorderer table fill.
func MixedRadixSuite() Suite {
	s := Suite{
		Name:        "mixedradix",
		Description: "decompose/compose and Reorderer table kernels",
		Threshold:   0.25,
	}
	shape := []int{16, 2, 2, 8}
	sigma := []int{3, 2, 1, 0}
	n := mixedradix.Size(shape)
	s.Benches = append(s.Benches, Bench{
		Name: "DecomposeCompose/h=16,2,2,8",
		F: func(b *B) {
			c := make([]int, len(shape))
			for i := 0; i < b.N; i++ {
				mixedradix.DecomposeInto(shape, i%n, c)
				if got := mixedradix.Compose(shape, c, sigma); got < 0 {
					b.Fatalf("negative rank")
				}
			}
		},
	})
	s.Benches = append(s.Benches, Bench{
		Name: "ReordererTable/h=16,2,2,8",
		F: func(b *B) {
			ro, err := mixedradix.NewReorderer(shape, sigma)
			if err != nil {
				b.Fatalf("%v", err)
			}
			t := make([]int, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ro.TableInto(t)
			}
		},
	})
	return s
}

func factorial(k int) int {
	f := 1
	for i := 2; i <= k; i++ {
		f *= i
	}
	return f
}

// Suites returns every registered suite, sorted by name. The serving
// suite lives in loadgen.go; everything else above.
func Suites() []Suite {
	all := []Suite{
		FleetSuite(),
		KernelSuite(),
		MixedRadixSuite(),
		OrderSearchSuite(),
		ProcmapSuite(),
		ServingSuite(),
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all
}

// FindSuite resolves a suite by name.
func FindSuite(name string) (Suite, error) {
	for _, s := range Suites() {
		if s.Name == name {
			return s, nil
		}
	}
	var names []string
	for _, s := range Suites() {
		names = append(names, s.Name)
	}
	return Suite{}, fmt.Errorf("perf: unknown suite %q (have %s)", name, strings.Join(names, ", "))
}

// RunSuite executes every benchmark of the suite and returns the record.
func RunSuite(s Suite, gitSHA, timestamp string, opts RunOptions) (*Record, error) {
	opts = opts.withDefaults()
	rec := NewRecord(s.Name, gitSHA, timestamp)
	rec.Reps = opts.Reps
	rec.BenchTime = opts.BenchTime.String()
	if opts.Smoke {
		rec.Reps = 1
		rec.BenchTime = "1x"
	}
	for _, bm := range s.Benches {
		res, err := runBench(bm, opts)
		if err != nil {
			return nil, fmt.Errorf("suite %s: %s: %w", s.Name, bm.Name, err)
		}
		if opts.Logf != nil {
			opts.Logf("%s", res.GoBenchLine())
		}
		rec.Results = append(rec.Results, res)
	}
	rec.Sort()
	return rec, nil
}
