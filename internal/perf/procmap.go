// The procmap suite: communication-matrix-aware placement on the
// workloads it exists for — halo exchanges and skewed layer collectives —
// split into the greedy construction alone and the full greedy+KL
// refinement, so the gate watches both the cheap path mapd's fallback
// leans on and the expensive one the matrix endpoint serves.

package perf

import (
	"context"
	"fmt"

	"repro/internal/commmatrix"
	"repro/internal/procmap"
	"repro/internal/topology"
)

// procmapCase is one workload × hierarchy point of the procmap grid.
type procmapCase struct {
	workload string
	shape    []int
	gen      func() (*commmatrix.Matrix, error)
}

func procmapCases() []procmapCase {
	return []procmapCase{
		{
			// Depth-3, 32 ranks: the shallow end mapd serves interactively.
			workload: "halo-4x8",
			shape:    []int{2, 4, 4},
			gen:      func() (*commmatrix.Matrix, error) { return procmap.Halo(4, 8, 1024) },
		},
		{
			// Depth-4, 128 ranks on a Hydra-like hierarchy: the halo grid no
			// digit order can pack (16 columns straddle the 8-core level).
			workload: "halo-8x16",
			shape:    []int{4, 2, 2, 8},
			gen:      func() (*commmatrix.Matrix, error) { return procmap.Halo(8, 16, 1024) },
		},
		{
			// Depth-4, 64 ranks, splatt-style hub skew on the middle mode —
			// the dense-matrix end: every layer pair communicates.
			workload: "layers-4x4x4",
			shape:    []int{2, 2, 2, 8},
			gen: func() (*commmatrix.Matrix, error) {
				return procmap.GridLayers([3]int{4, 4, 4}, [3]float64{10, 1000, 10})
			},
		},
	}
}

// ProcmapSuite benchmarks the matrix-aware placement search: the σ-order
// baseline, the greedy construction alone, and greedy plus refinement.
func ProcmapSuite() Suite {
	s := Suite{
		Name:        "procmap",
		Description: "matrix-aware placement: greedy construction vs. greedy+KL refinement",
		Threshold:   0.25,
	}
	for _, pc := range procmapCases() {
		pc := pc
		h := topology.MustNew(pc.shape...)
		m, err := pc.gen()
		if err != nil {
			panic(fmt.Sprintf("perf: procmap workload %s: %v", pc.workload, err))
		}
		base := fmt.Sprintf("ProcmapMap/h=%s/%s", intsDash(pc.shape), pc.workload)
		for _, mode := range []string{"greedy", "refine"} {
			mode := mode
			opts := procmap.Options{Seed: 1, NoRefine: mode == "greedy", NoOrderInit: true}
			s.Benches = append(s.Benches, Bench{
				Name: base + "/" + mode,
				F: func(b *B) {
					ctx := context.Background()
					for i := 0; i < b.N; i++ {
						res, err := procmap.Map(ctx, m, h, opts)
						if err != nil {
							b.Fatalf("%v", err)
						}
						if res.Cost <= 0 {
							b.Fatalf("degenerate cost %g", res.Cost)
						}
					}
				},
			})
		}
		s.Benches = append(s.Benches, Bench{
			Name: fmt.Sprintf("ProcmapBestOrder/h=%s/%s", intsDash(pc.shape), pc.workload),
			F: func(b *B) {
				for i := 0; i < b.N; i++ {
					if _, _, _, _, err := procmap.BestOrder(m, h, nil); err != nil {
						b.Fatalf("%v", err)
					}
				}
			},
		})
	}
	return s
}
