// The in-process benchmark harness: a minimal go-bench-compatible
// measurement loop the suite registry runs its benchmarks under. Owning
// the loop (instead of delegating to testing.Benchmark) buys the
// observatory three things: a 1-iteration smoke mode fast enough for
// `make check`, repeated independent samples for the significance test,
// and a hook to wrap exactly the timed region in a CPU profile.

package perf

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"
)

// B is the benchmark context handed to suite benchmark functions. It
// mirrors the subset of testing.B the suites need: run the body exactly
// b.N times between ResetTimer and return.
type B struct {
	// N is the iteration count the body must execute.
	N int

	start    time.Time
	elapsed  time.Duration
	timerOn  bool
	metrics  map[string]float64
	failed   bool
	failMsg  string
	mallocs0 uint64
	bytes0   uint64
	mallocs  uint64
	bytes    uint64
}

// ResetTimer discards accumulated time and allocation counts — call it
// after expensive setup, exactly like testing.B.
func (b *B) ResetTimer() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.mallocs0, b.bytes0 = ms.Mallocs, ms.TotalAlloc
	b.elapsed = 0
	b.start = time.Now()
	b.timerOn = true
}

// StopTimer pauses measurement (e.g. around per-iteration teardown).
func (b *B) StopTimer() {
	if b.timerOn {
		b.elapsed += time.Since(b.start)
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		b.mallocs += ms.Mallocs - b.mallocs0
		b.bytes += ms.TotalAlloc - b.bytes0
		b.timerOn = false
	}
}

// StartTimer resumes measurement after StopTimer.
func (b *B) StartTimer() {
	if !b.timerOn {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		b.mallocs0, b.bytes0 = ms.Mallocs, ms.TotalAlloc
		b.start = time.Now()
		b.timerOn = true
	}
}

// ReportMetric records a custom unit (req/s, MB/s, p99_ms …); the last
// call per unit wins, matching testing.B semantics.
func (b *B) ReportMetric(v float64, unit string) {
	if b.metrics == nil {
		b.metrics = map[string]float64{}
	}
	b.metrics[unit] = v
}

// Fatalf aborts the benchmark, failing its suite run.
func (b *B) Fatalf(format string, args ...any) {
	b.failed = true
	b.failMsg = fmt.Sprintf(format, args...)
	panic(benchAbort{})
}

type benchAbort struct{}

// run executes fn once with the given N and returns the measurement.
func (b *B) run(fn func(*B), n int) (err error) {
	b.N = n
	b.metrics = nil
	b.mallocs, b.bytes = 0, 0
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(benchAbort); ok {
				err = fmt.Errorf("benchmark failed: %s", b.failMsg)
				return
			}
			panic(r)
		}
	}()
	b.ResetTimer()
	fn(b)
	b.StopTimer()
	return nil
}

// sample is one timed execution of a benchmark body.
type sample struct {
	n       int
	nsPerOp float64
	allocs  float64
	bytes   float64
	metrics map[string]float64
}

// measure runs fn with iteration counts scaled up until the timed region
// reaches benchTime (exactly the go test ramp: 1, then predicted·1.2,
// rounded up to a nice number), and returns the final measurement.
func measure(fn func(*B), benchTime time.Duration) (sample, error) {
	var b B
	n := 1
	for {
		if err := b.run(fn, n); err != nil {
			return sample{}, err
		}
		if b.elapsed >= benchTime || n >= 1e9 {
			break
		}
		// Predict the iteration count that reaches benchTime, grow by
		// at least 20% and at most 100×, and round up.
		goal := float64(n) * 1.2
		if b.elapsed > 0 {
			goal = float64(n) * float64(benchTime) / float64(b.elapsed)
		}
		next := int(math.Min(goal*1.2, float64(n)*100))
		if next <= n {
			next = n + 1
		}
		n = roundUp(next)
	}
	s := sample{
		n:       b.N,
		nsPerOp: float64(b.elapsed.Nanoseconds()) / float64(b.N),
		allocs:  float64(b.mallocs) / float64(b.N),
		bytes:   float64(b.bytes) / float64(b.N),
		metrics: b.metrics,
	}
	return s, nil
}

// roundUp rounds n up to a number of the form 1eX, 2eX, 3eX, 5eX — the
// go test iteration-count ladder, kept so the printed counts look familiar.
func roundUp(n int) int {
	base := 1
	for base < n {
		for _, m := range []int{1, 2, 3, 5} {
			if base*m >= n {
				return base * m
			}
		}
		base *= 10
	}
	return base
}

// RunOptions tunes one suite execution.
type RunOptions struct {
	// Reps is the number of independent samples per benchmark (default 5;
	// the significance test needs ≥ 3 on both sides).
	Reps int
	// BenchTime is the per-sample target duration (default 200 ms).
	BenchTime time.Duration
	// Smoke runs every benchmark for exactly one iteration, once —
	// existence checking for make check, not measurement.
	Smoke bool
	// Profile captures a CPU profile around the final rep and a heap
	// profile after it, storing top-N symbols in the record.
	Profile bool
	// ProfileTopN bounds the stored symbol list (default 10).
	ProfileTopN int
	// Logf, when non-nil, receives one go-bench-style line per result.
	Logf func(format string, args ...any)
}

func (o RunOptions) withDefaults() RunOptions {
	if o.Reps <= 0 {
		o.Reps = 5
	}
	if o.BenchTime <= 0 {
		o.BenchTime = 200 * time.Millisecond
	}
	if o.ProfileTopN <= 0 {
		o.ProfileTopN = 10
	}
	return o
}

// runBench collects the configured samples for one benchmark.
func runBench(bm Bench, opts RunOptions) (Result, error) {
	res := Result{Name: bm.Name}
	if opts.Smoke {
		var b B
		if err := b.run(bm.F, 1); err != nil {
			return res, err
		}
		res.N = 1
		res.NsPerOp = float64(b.elapsed.Nanoseconds())
		res.Samples = []float64{res.NsPerOp}
		res.Metrics = b.metrics
		return res, nil
	}
	var nsSamples, allocSamples, byteSamples []float64
	for rep := 0; rep < opts.Reps; rep++ {
		profiling := opts.Profile && rep == opts.Reps-1
		var prof *profileCapture
		if profiling {
			prof = startProfile()
		}
		s, err := measure(bm.F, opts.BenchTime)
		if profiling && prof != nil {
			summary, perr := prof.stop(opts.ProfileTopN)
			if perr == nil {
				res.Profile = summary
			}
		}
		if err != nil {
			return res, err
		}
		res.N = s.n
		res.Metrics = s.metrics
		nsSamples = append(nsSamples, s.nsPerOp)
		allocSamples = append(allocSamples, s.allocs)
		byteSamples = append(byteSamples, s.bytes)
	}
	res.Samples = nsSamples
	res.NsPerOp = median(nsSamples)
	res.AllocsPerOp = median(allocSamples)
	res.BytesPerOp = median(byteSamples)
	return res, nil
}

// median returns the middle value (mean of the two middles for even n).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	m := len(s) / 2
	if len(s)%2 == 1 {
		return s[m]
	}
	return (s[m-1] + s[m]) / 2
}
