// Profile capture for the observatory: in-process CPU/heap capture
// wrapped around a benchmark's final rep, and HTTP capture against the
// net/http/pprof listener mrserved exposes on -debug-addr. Both paths
// funnel into the same TopSymbols decoder, so a record's symbol summary
// is identical whether the profile came from inside the harness or from
// a live daemon.

package perf

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"runtime/pprof"
	"time"
)

// profileCapture is an in-flight in-process CPU profile.
type profileCapture struct {
	buf bytes.Buffer
	on  bool
}

// startProfile begins an in-process CPU profile; a nil return means a
// profile was already running (e.g. nested suites) and capture is
// skipped for this benchmark.
func startProfile() *profileCapture {
	var c profileCapture
	if err := pprof.StartCPUProfile(&c.buf); err != nil {
		return nil
	}
	c.on = true
	return &c
}

// stop ends the CPU profile, captures a heap profile, and summarizes
// both to their top-n symbols.
func (c *profileCapture) stop(n int) (*ProfileSummary, error) {
	if !c.on {
		return nil, fmt.Errorf("perf: profile not running")
	}
	pprof.StopCPUProfile()
	c.on = false
	sum := &ProfileSummary{}
	if syms, err := TopSymbols(c.buf.Bytes(), n); err == nil {
		sum.CPUTop = syms
	}
	var heap bytes.Buffer
	runtime.GC() // get up-to-date inuse_space statistics
	if err := pprof.Lookup("heap").WriteTo(&heap, 0); err == nil {
		if syms, err := TopSymbols(heap.Bytes(), n); err == nil {
			sum.HeapTop = syms
		}
	}
	if len(sum.CPUTop) == 0 && len(sum.HeapTop) == 0 {
		return nil, fmt.Errorf("perf: no symbols decoded")
	}
	return sum, nil
}

// FetchProfile captures a profile from a net/http/pprof listener (the
// daemon's -debug-addr) and returns its top-n symbols. kind is "profile"
// (CPU, sampled for seconds) or "heap".
func FetchProfile(debugURL, kind string, seconds int, n int) ([]Symbol, error) {
	u, err := url.Parse(debugURL)
	if err != nil {
		return nil, fmt.Errorf("perf: debug url: %w", err)
	}
	if kind == "cpu" {
		kind = "profile" // net/http/pprof's name for the CPU profile
	}
	u.Path = "/debug/pprof/" + kind
	if kind == "profile" {
		if seconds <= 0 {
			seconds = 5
		}
		q := u.Query()
		q.Set("seconds", fmt.Sprint(seconds))
		u.RawQuery = q.Encode()
	}
	client := &http.Client{Timeout: time.Duration(seconds+30) * time.Second}
	resp, err := client.Get(u.String())
	if err != nil {
		return nil, fmt.Errorf("perf: fetch %s: %w", u, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("perf: fetch %s: %s", u, resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("perf: read %s: %w", u, err)
	}
	return TopSymbols(data, n)
}

// FormatSymbols renders a symbol list as an aligned table.
func FormatSymbols(syms []Symbol) string {
	var b bytes.Buffer
	for _, s := range syms {
		fmt.Fprintf(&b, "  %14.4g flat  %14.4g cum  %-4s  %s\n", s.Flat, s.Cum, s.Unit, s.Func)
	}
	return b.String()
}
