// The serving suite: boots the real mapd handler in-process behind an
// httptest listener and drives it with a closed-loop worker pool — the
// same shape mrload applies to a live daemon, but hermetic enough for
// the regression gate. ns/op is the closed-loop per-request latency;
// req/s, goodput and latency percentiles ride along as custom metrics.

package perf

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"repro/internal/mapd"
)

// loadShot is one request of the serving workload.
type loadShot struct {
	endpoint string
	body     []byte
}

// servingWorkload builds the request mix. Cache-friendly: a bounded set
// of distinct shapes, so after the first pass the daemon serves hits.
func servingWorkload() []loadShot {
	var shots []loadShot
	add := func(endpoint string, v any) {
		b, err := json.Marshal(v)
		if err != nil {
			panic(err)
		}
		shots = append(shots, loadShot{endpoint: endpoint, body: b})
	}
	rank := 5
	for _, h := range []string{"2,2,4", "2,4,2,8", "16,2,2,8"} {
		add("/v1/map", mapd.MapRequest{Hierarchy: h, Rank: &rank})
		add("/v1/metrics/order", mapd.OrderMetricsRequest{Hierarchy: h})
		add("/v1/select", mapd.SelectRequest{Hierarchy: h, N: 8})
	}
	shots = append(shots, adviseWorkload()...)
	return shots
}

// adviseWorkload is the evaluation-heavy slice: one advise scenario, so
// the cache-off benchmark measures the order search end to end.
func adviseWorkload() []loadShot {
	b, err := json.Marshal(mapd.AdviseRequest{
		Machine: "hydra", Nodes: 4, Collective: "alltoall", CommSize: 16,
	})
	if err != nil {
		panic(err)
	}
	return []loadShot{{endpoint: "/v1/advise", body: b}}
}

// runLoad drives n requests through the handler with conc closed-loop
// workers and returns the successful latencies in completion order.
func runLoad(url string, client *http.Client, shots []loadShot, n, conc int) ([]time.Duration, error) {
	if conc > n {
		conc = n
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		lats = make([]time.Duration, 0, n)
		errs []error
	)
	per := n / conc
	extra := n % conc
	for w := 0; w < conc; w++ {
		quota := per
		if w < extra {
			quota++
		}
		if quota == 0 {
			continue
		}
		wg.Add(1)
		go func(w, quota int) {
			defer wg.Done()
			mine := make([]time.Duration, 0, quota)
			for i := 0; i < quota; i++ {
				s := shots[(w+i)%len(shots)]
				start := time.Now()
				resp, err := client.Post(url+s.endpoint, "application/json", bytes.NewReader(s.body))
				if err != nil {
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					mu.Lock()
					errs = append(errs, fmt.Errorf("%s: HTTP %d", s.endpoint, resp.StatusCode))
					mu.Unlock()
					return
				}
				mine = append(mine, time.Since(start))
			}
			mu.Lock()
			lats = append(lats, mine...)
			mu.Unlock()
		}(w, quota)
	}
	wg.Wait()
	if len(errs) > 0 {
		return nil, errs[0]
	}
	return lats, nil
}

func durPercentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// ServingSuite benchmarks the end-to-end request path of the in-process
// mapd handler: a cache-hot mixed workload (the steady state the service
// is designed for) and a cache-off advise workload (the evaluation path).
func ServingSuite() Suite {
	s := Suite{
		Name:        "serving",
		Description: "in-process mapd handler under closed-loop load",
		// Serving latency is the noisiest family; the gate tolerates more.
		Threshold: 0.50,
	}
	const conc = 8
	mk := func(cacheEntries int, shots []loadShot, warm bool) func(*B) {
		return func(b *B) {
			srv := mapd.New(mapd.Config{CacheEntries: cacheEntries})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			client := ts.Client()
			client.Transport = &http.Transport{
				MaxIdleConns:        conc * 2,
				MaxIdleConnsPerHost: conc * 2,
			}
			if warm {
				if _, err := runLoad(ts.URL, client, shots, len(shots), conc); err != nil {
					b.Fatalf("warmup: %v", err)
				}
			}
			b.ResetTimer()
			start := time.Now()
			lats, err := runLoad(ts.URL, client, shots, b.N, conc)
			elapsed := time.Since(start)
			b.StopTimer()
			if err != nil {
				b.Fatalf("%v", err)
			}
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			b.ReportMetric(float64(b.N)/elapsed.Seconds(), "req/s")
			b.ReportMetric(float64(len(lats))/elapsed.Seconds(), "goodput_req/s")
			b.ReportMetric(float64(durPercentile(lats, 0.50).Microseconds()), "p50_us")
			b.ReportMetric(float64(durPercentile(lats, 0.99).Microseconds()), "p99_us")
		}
	}
	s.Benches = append(s.Benches,
		Bench{Name: "Serving/mixed/cache-hot", F: mk(4096, servingWorkload(), true)},
		Bench{Name: "Serving/advise/no-cache", F: mk(-1, adviseWorkload(), false)},
	)
	return s
}
