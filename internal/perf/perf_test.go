package perf

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestRoundUp(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 3}, {4, 5}, {5, 5}, {6, 10},
		{11, 20}, {21, 30}, {31, 50}, {51, 100}, {150, 200},
	} {
		if got := roundUp(tc.in); got != tc.want {
			t.Errorf("roundUp(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestMeasureScalesIterations(t *testing.T) {
	calls := 0
	s, err := measure(func(b *B) {
		for i := 0; i < b.N; i++ {
			calls++
			time.Sleep(10 * time.Microsecond)
		}
	}, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if s.n < 2 {
		t.Fatalf("expected the harness to ramp past 1 iteration, got n=%d", s.n)
	}
	if s.nsPerOp <= 0 {
		t.Fatalf("nsPerOp = %v", s.nsPerOp)
	}
}

func TestRunBenchSmoke(t *testing.T) {
	ran := 0
	res, err := runBench(Bench{Name: "X", F: func(b *B) {
		for i := 0; i < b.N; i++ {
			ran++
		}
	}}, RunOptions{Smoke: true})
	if err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("smoke ran %d iterations, want exactly 1", ran)
	}
	if res.N != 1 || len(res.Samples) != 1 {
		t.Fatalf("smoke result %+v", res)
	}
}

func TestRunBenchCollectsReps(t *testing.T) {
	res, err := runBench(Bench{Name: "X", F: func(b *B) {
		for i := 0; i < b.N; i++ {
			time.Sleep(time.Microsecond)
		}
		b.ReportMetric(42, "things/s")
	}}, RunOptions{Reps: 3, BenchTime: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 3 {
		t.Fatalf("samples = %v, want 3", res.Samples)
	}
	if res.Metrics["things/s"] != 42 {
		t.Fatalf("metrics = %v", res.Metrics)
	}
	if res.NsPerOp != median(res.Samples) {
		t.Fatalf("NsPerOp %v != median(%v)", res.NsPerOp, res.Samples)
	}
}

func TestRunBenchFatalPropagates(t *testing.T) {
	_, err := runBench(Bench{Name: "X", F: func(b *B) {
		b.Fatalf("boom %d", 7)
	}}, RunOptions{Smoke: true})
	if err == nil || !strings.Contains(err.Error(), "boom 7") {
		t.Fatalf("err = %v, want boom 7", err)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")
	rec := NewRecord("test", "abc123", "2026-08-08T00:00:00Z")
	rec.Reps, rec.BenchTime = 3, "1ms"
	rec.Results = []Result{
		{Name: "B/b", NsPerOp: 2, Samples: []float64{1, 2, 3}, Metrics: map[string]float64{"req/s": 10}},
		{Name: "A/a", NsPerOp: 1, Samples: []float64{1}},
	}
	if err := rec.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecord(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Suite != "test" || got.GitSHA != "abc123" || got.Timestamp != "2026-08-08T00:00:00Z" {
		t.Fatalf("metadata round trip: %+v", got)
	}
	// WriteFile sorts.
	if got.Results[0].Name != "A/a" || got.Results[1].Name != "B/b" {
		t.Fatalf("results not sorted: %+v", got.Results)
	}
	if got.Results[1].Metrics["req/s"] != 10 {
		t.Fatalf("metrics lost: %+v", got.Results[1])
	}
}

func TestReadRecordRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := writeFile(path, `{"schema": 999, "suite": "x"}`); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRecord(path); err == nil {
		t.Fatal("expected schema version error")
	}
}

func TestSuitesRegisteredAndSmokeable(t *testing.T) {
	suites := Suites()
	if len(suites) < 4 {
		t.Fatalf("registered %d suites, want >= 4", len(suites))
	}
	seen := map[string]bool{}
	for _, s := range suites {
		if seen[s.Name] {
			t.Fatalf("duplicate suite %q", s.Name)
		}
		seen[s.Name] = true
		if s.Threshold <= 0 {
			t.Fatalf("suite %s has no threshold", s.Name)
		}
		if len(s.Benches) == 0 {
			t.Fatalf("suite %s has no benchmarks", s.Name)
		}
	}
	for _, name := range []string{"kernels", "order_search", "mixedradix", "serving"} {
		if !seen[name] {
			t.Fatalf("suite %s not registered (have %v)", name, seen)
		}
	}
	// The smoke path is what make check runs: every benchmark must
	// execute for one iteration without failing.
	for _, s := range suites {
		if s.Name == "serving" && testing.Short() {
			continue
		}
		rec, err := RunSuite(s, "", "", RunOptions{Smoke: true})
		if err != nil {
			t.Fatalf("smoke %s: %v", s.Name, err)
		}
		if len(rec.Results) != len(s.Benches) {
			t.Fatalf("smoke %s: %d results for %d benches", s.Name, len(rec.Results), len(s.Benches))
		}
	}
}

func TestTopSymbolsFromRealCPUProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Skipf("cpu profiling unavailable: %v", err)
	}
	// Burn enough CPU in a named function for the sampler to see it.
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		burnCPU(1 << 14)
	}
	pprof.StopCPUProfile()
	syms, err := TopSymbols(buf.Bytes(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(syms) == 0 {
		t.Skip("no samples captured (loaded machine?)")
	}
	found := false
	for _, s := range syms {
		if strings.Contains(s.Func, "burnCPU") {
			found = true
			if s.Cum < s.Flat {
				t.Fatalf("cum %v < flat %v for %s", s.Cum, s.Flat, s.Func)
			}
		}
		if s.Unit != "nanoseconds" {
			t.Fatalf("unit %q, want nanoseconds", s.Unit)
		}
	}
	if !found {
		t.Fatalf("burnCPU not in top symbols: %+v", syms)
	}
}

//go:noinline
func burnCPU(n int) float64 {
	s := 0.0
	for i := 1; i <= n; i++ {
		s += 1 / float64(i*i)
	}
	return s
}

func TestTopSymbolsFromHeapProfile(t *testing.T) {
	sink = make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, allocBig())
	}
	// The heap profile is a snapshot as of the last completed GC cycle;
	// without forcing one the allocations above may not be in it yet.
	runtime.GC()
	var buf bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
		t.Fatal(err)
	}
	syms, err := TopSymbols(buf.Bytes(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(syms) == 0 {
		t.Fatal("no heap symbols decoded")
	}
	for _, s := range syms {
		if s.Unit != "bytes" {
			t.Fatalf("unit %q, want bytes", s.Unit)
		}
	}
	sink = nil
}

var sink [][]byte

//go:noinline
func allocBig() []byte { return make([]byte, 1<<16) }

func TestParseProfileRejectsGarbage(t *testing.T) {
	if _, err := TopSymbols([]byte{0x07, 0x03, 0xff}, 5); err == nil {
		// A short garbage blob may parse as empty; it must at least not
		// panic. Decoding succeeding with zero symbols is acceptable.
		t.Log("garbage decoded as empty profile (acceptable)")
	}
}
