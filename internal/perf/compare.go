// The regression gate: a benchstat-style comparison of two trajectory
// points. Each benchmark's ns/op samples are compared with a two-sided
// Mann-Whitney U test (normal approximation with tie correction, the
// same statistic benchstat uses); a benchmark regresses only when the
// median moved beyond the suite's threshold AND the shift is
// statistically significant, so one noisy sample cannot fail CI while a
// real 20% kernel slowdown cannot hide.

package perf

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Comparison is the verdict for one benchmark present in both records.
type Comparison struct {
	Name      string
	OldMedian float64 // ns/op
	NewMedian float64
	// Delta is the relative change of the median ((new-old)/old);
	// positive means slower.
	Delta float64
	// P is the two-sided Mann-Whitney p-value (1 when either side has
	// fewer than 3 samples, which can never be significant).
	P float64
	// Significant reports P < alpha with enough samples.
	Significant bool
	// Regressed: Delta > threshold and Significant.
	Regressed bool
	// Improved: Delta < -threshold and Significant.
	Improved bool
}

// DiffOptions tunes Diff.
type DiffOptions struct {
	// Threshold is the relative slowdown that counts as a regression
	// (default 0.10 = 10%). Suites override it via their Threshold.
	Threshold float64
	// Alpha is the significance level (default 0.05).
	Alpha float64
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.Threshold <= 0 {
		o.Threshold = 0.10
	}
	if o.Alpha <= 0 {
		o.Alpha = 0.05
	}
	return o
}

// DiffResult is the full comparison of two records.
type DiffResult struct {
	Suite       string
	Comparisons []Comparison
	// OnlyOld / OnlyNew list benchmarks present in one record only —
	// a renamed or deleted benchmark shows up here instead of silently
	// dropping out of the gate.
	OnlyOld, OnlyNew []string
	Threshold        float64
}

// Regressions returns the comparisons that regressed.
func (d *DiffResult) Regressions() []Comparison {
	var out []Comparison
	for _, c := range d.Comparisons {
		if c.Regressed {
			out = append(out, c)
		}
	}
	return out
}

// Diff compares two records of the same suite.
func Diff(old, new_ *Record, opts DiffOptions) (*DiffResult, error) {
	if old.Suite != new_.Suite {
		return nil, fmt.Errorf("perf: comparing suite %q against %q", old.Suite, new_.Suite)
	}
	opts = opts.withDefaults()
	d := &DiffResult{Suite: old.Suite, Threshold: opts.Threshold}
	newByName := map[string]*Result{}
	for i := range new_.Results {
		newByName[new_.Results[i].Name] = &new_.Results[i]
	}
	seen := map[string]bool{}
	for i := range old.Results {
		or := &old.Results[i]
		nr, ok := newByName[or.Name]
		if !ok {
			d.OnlyOld = append(d.OnlyOld, or.Name)
			continue
		}
		seen[or.Name] = true
		c := Comparison{
			Name:      or.Name,
			OldMedian: median(or.Samples),
			NewMedian: median(nr.Samples),
		}
		if c.OldMedian > 0 {
			c.Delta = (c.NewMedian - c.OldMedian) / c.OldMedian
		}
		c.P = mannWhitney(or.Samples, nr.Samples)
		c.Significant = c.P < opts.Alpha && len(or.Samples) >= 3 && len(nr.Samples) >= 3
		c.Regressed = c.Significant && c.Delta > opts.Threshold
		c.Improved = c.Significant && c.Delta < -opts.Threshold
		d.Comparisons = append(d.Comparisons, c)
	}
	for i := range new_.Results {
		if !seen[new_.Results[i].Name] {
			d.OnlyNew = append(d.OnlyNew, new_.Results[i].Name)
		}
	}
	sort.Slice(d.Comparisons, func(i, j int) bool { return d.Comparisons[i].Name < d.Comparisons[j].Name })
	sort.Strings(d.OnlyOld)
	sort.Strings(d.OnlyNew)
	return d, nil
}

// mannWhitney returns the two-sided p-value that xs and ys come from the
// same distribution, via the normal approximation of the Mann-Whitney U
// statistic with tie correction. Small samples (< 3 per side) return 1:
// they cannot reach significance and should not pretend to.
func mannWhitney(xs, ys []float64) float64 {
	n1, n2 := len(xs), len(ys)
	if n1 < 3 || n2 < 3 {
		return 1
	}
	type obs struct {
		v     float64
		group int
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range xs {
		all = append(all, obs{v, 0})
	}
	for _, v := range ys {
		all = append(all, obs{v, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	// Midranks with tie accounting.
	ranks := make([]float64, len(all))
	var tieTerm float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	var r1 float64
	for i, o := range all {
		if o.group == 0 {
			r1 += ranks[i]
		}
	}
	u1 := r1 - float64(n1*(n1+1))/2
	mu := float64(n1*n2) / 2
	n := float64(n1 + n2)
	sigma2 := float64(n1*n2) / 12 * (n + 1 - tieTerm/(n*(n-1)))
	if sigma2 <= 0 {
		// All observations tied: no evidence of a shift.
		return 1
	}
	// Continuity correction.
	z := (math.Abs(u1-mu) - 0.5) / math.Sqrt(sigma2)
	if z < 0 {
		z = 0
	}
	return 2 * (1 - stdNormCDF(z))
}

// stdNormCDF is Φ(z) via the complementary error function.
func stdNormCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// Format renders the comparison as an aligned human-readable table,
// including the before/after profile symbol deltas for regressed
// benchmarks when both records captured profiles.
func (d *DiffResult) Format(old, new_ *Record) string {
	var b strings.Builder
	fmt.Fprintf(&b, "suite %s: %d benchmarks compared (threshold %.0f%%)\n",
		d.Suite, len(d.Comparisons), 100*d.Threshold)
	fmt.Fprintf(&b, "%-56s %14s %14s %8s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta", "p")
	for _, c := range d.Comparisons {
		verdict := ""
		switch {
		case c.Regressed:
			verdict = "  REGRESSED"
		case c.Improved:
			verdict = "  improved"
		case !c.Significant:
			verdict = "  ~"
		}
		fmt.Fprintf(&b, "%-56s %14.0f %14.0f %+7.1f%% %8.3f%s\n",
			c.Name, c.OldMedian, c.NewMedian, 100*c.Delta, c.P, verdict)
	}
	for _, name := range d.OnlyOld {
		fmt.Fprintf(&b, "%-56s only in old record\n", name)
	}
	for _, name := range d.OnlyNew {
		fmt.Fprintf(&b, "%-56s only in new record\n", name)
	}
	for _, c := range d.Regressions() {
		or, nr := old.Find(c.Name), new_.Find(c.Name)
		if or == nil || nr == nil || or.Profile == nil || nr.Profile == nil {
			continue
		}
		fmt.Fprintf(&b, "\n%s: CPU symbol deltas (new cum - old cum)\n", c.Name)
		b.WriteString(formatSymbolDelta(or.Profile.CPUTop, nr.Profile.CPUTop))
	}
	return b.String()
}

// formatSymbolDelta lines up two top-N symbol lists and prints the
// movers, largest absolute cumulative change first — the "which function
// moved" answer of a regression report.
func formatSymbolDelta(old, new_ []Symbol) string {
	oldCum := map[string]float64{}
	for _, s := range old {
		oldCum[s.Func] = s.Cum
	}
	type mover struct {
		name     string
		from, to float64
		unit     string
	}
	var movers []mover
	seen := map[string]bool{}
	for _, s := range new_ {
		movers = append(movers, mover{s.Func, oldCum[s.Func], s.Cum, s.Unit})
		seen[s.Func] = true
	}
	for _, s := range old {
		if !seen[s.Func] {
			movers = append(movers, mover{s.Func, s.Cum, 0, s.Unit})
		}
	}
	sort.Slice(movers, func(i, j int) bool {
		di := math.Abs(movers[i].to - movers[i].from)
		dj := math.Abs(movers[j].to - movers[j].from)
		if di != dj {
			return di > dj
		}
		return movers[i].name < movers[j].name
	})
	if len(movers) > 10 {
		movers = movers[:10]
	}
	var b strings.Builder
	for _, m := range movers {
		fmt.Fprintf(&b, "  %14.4g → %-14.4g %+14.4g %-4s %s\n",
			m.from, m.to, m.to-m.from, m.unit, m.name)
	}
	return b.String()
}
