// A minimal decoder for pprof's profile.proto (the gzipped protobuf
// runtime/pprof and net/http/pprof emit), hand-rolled so the observatory
// needs no protobuf dependency. It decodes exactly the fields required
// to aggregate per-function flat and cumulative weights:
//
//	Profile:  sample_type(1), sample(2), location(4), function(5),
//	          string_table(6)
//	Sample:   location_id(1), value(2)
//	Location: id(1), line(4)
//	Line:     function_id(1)
//	Function: id(1), name(2)
//
// Unknown fields are skipped by wire type, so future profile versions
// keep decoding.

package perf

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
)

// profile is the decoded subset of a pprof profile.
type profile struct {
	sampleTypes []valueType
	samples     []pprofSample
	// locFuncs maps a location id to the function ids of its lines,
	// innermost (leaf) first — pprof line order.
	locFuncs map[uint64][]uint64
	funcName map[uint64]string
	strings  []string
}

type valueType struct{ typ, unit string }

type pprofSample struct {
	locs   []uint64 // leaf first
	values []int64
}

// parseProfile decodes a (possibly gzipped) profile.proto blob.
func parseProfile(data []byte) (*profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("pprof: gunzip: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("pprof: gunzip: %w", err)
		}
		data = raw
	}
	p := &profile{
		locFuncs: map[uint64][]uint64{},
		funcName: map[uint64]string{},
	}
	type rawVT struct{ typ, unit uint64 }
	var rawVTs []rawVT
	type rawFunc struct {
		id   uint64
		name uint64
	}
	var rawFuncs []rawFunc
	err := walkFields(data, func(field uint64, wire int, v uint64, sub []byte) error {
		switch field {
		case 1: // sample_type: ValueType
			var vt rawVT
			if err := walkFields(sub, func(f uint64, w int, x uint64, _ []byte) error {
				switch f {
				case 1:
					vt.typ = x
				case 2:
					vt.unit = x
				}
				return nil
			}); err != nil {
				return err
			}
			rawVTs = append(rawVTs, vt)
		case 2: // sample
			var s pprofSample
			if err := walkFields(sub, func(f uint64, w int, x uint64, b []byte) error {
				switch f {
				case 1:
					if w == 2 { // packed
						s.locs = append(s.locs, unpackVarints(b)...)
					} else {
						s.locs = append(s.locs, x)
					}
				case 2:
					if w == 2 {
						for _, u := range unpackVarints(b) {
							s.values = append(s.values, int64(u))
						}
					} else {
						s.values = append(s.values, int64(x))
					}
				}
				return nil
			}); err != nil {
				return err
			}
			p.samples = append(p.samples, s)
		case 4: // location
			var id uint64
			var funcs []uint64
			if err := walkFields(sub, func(f uint64, w int, x uint64, b []byte) error {
				switch f {
				case 1:
					id = x
				case 4: // line
					return walkFields(b, func(lf uint64, _ int, lx uint64, _ []byte) error {
						if lf == 1 {
							funcs = append(funcs, lx)
						}
						return nil
					})
				}
				return nil
			}); err != nil {
				return err
			}
			p.locFuncs[id] = funcs
		case 5: // function
			var fn rawFunc
			if err := walkFields(sub, func(f uint64, w int, x uint64, _ []byte) error {
				switch f {
				case 1:
					fn.id = x
				case 2:
					fn.name = x
				}
				return nil
			}); err != nil {
				return err
			}
			rawFuncs = append(rawFuncs, fn)
		case 6: // string_table
			p.strings = append(p.strings, string(sub))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	str := func(i uint64) string {
		if int(i) < len(p.strings) {
			return p.strings[i]
		}
		return ""
	}
	for _, vt := range rawVTs {
		p.sampleTypes = append(p.sampleTypes, valueType{typ: str(vt.typ), unit: str(vt.unit)})
	}
	for _, fn := range rawFuncs {
		p.funcName[fn.id] = str(fn.name)
	}
	return p, nil
}

// walkFields iterates the top-level fields of one protobuf message.
// For varint fields fn receives the value in v; for length-delimited
// fields the raw bytes in sub (v is their length).
func walkFields(data []byte, fn func(field uint64, wire int, v uint64, sub []byte) error) error {
	for len(data) > 0 {
		key, n := uvarint(data)
		if n <= 0 {
			return fmt.Errorf("pprof: bad field key")
		}
		data = data[n:]
		field, wire := key>>3, int(key&7)
		switch wire {
		case 0: // varint
			v, n := uvarint(data)
			if n <= 0 {
				return fmt.Errorf("pprof: bad varint in field %d", field)
			}
			data = data[n:]
			if err := fn(field, wire, v, nil); err != nil {
				return err
			}
		case 1: // fixed64
			if len(data) < 8 {
				return fmt.Errorf("pprof: truncated fixed64 in field %d", field)
			}
			data = data[8:]
		case 2: // length-delimited
			l, n := uvarint(data)
			if n <= 0 || uint64(len(data)-n) < l {
				return fmt.Errorf("pprof: truncated bytes in field %d", field)
			}
			sub := data[n : n+int(l)]
			data = data[n+int(l):]
			if err := fn(field, wire, l, sub); err != nil {
				return err
			}
		case 5: // fixed32
			if len(data) < 4 {
				return fmt.Errorf("pprof: truncated fixed32 in field %d", field)
			}
			data = data[4:]
		default:
			return fmt.Errorf("pprof: unsupported wire type %d in field %d", wire, field)
		}
	}
	return nil
}

// uvarint decodes a protobuf varint, returning the value and byte count
// (0 when truncated).
func uvarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i]&0x80 == 0 {
			return v, i + 1
		}
	}
	return 0, 0
}

// unpackVarints decodes a packed repeated varint payload.
func unpackVarints(b []byte) []uint64 {
	var out []uint64
	for len(b) > 0 {
		v, n := uvarint(b)
		if n <= 0 {
			break
		}
		out = append(out, v)
		b = b[n:]
	}
	return out
}

// valueIndex picks which sample value to aggregate: prefer cpu
// nanoseconds, then inuse_space bytes, else the last value column (the
// pprof default).
func (p *profile) valueIndex() (int, string) {
	for i, vt := range p.sampleTypes {
		if vt.typ == "cpu" && vt.unit == "nanoseconds" {
			return i, vt.unit
		}
	}
	for i, vt := range p.sampleTypes {
		if vt.typ == "inuse_space" {
			return i, vt.unit
		}
	}
	if n := len(p.sampleTypes); n > 0 {
		return n - 1, p.sampleTypes[n-1].unit
	}
	return 0, ""
}

// TopSymbols decodes a pprof blob and returns the top-n functions by
// flat weight (ties broken by cumulative weight, then name). Flat is the
// weight of samples whose leaf frame is the function; Cum counts every
// sample the function appears in (deduplicated per sample, so recursion
// does not double-count).
func TopSymbols(data []byte, n int) ([]Symbol, error) {
	p, err := parseProfile(data)
	if err != nil {
		return nil, err
	}
	vi, unit := p.valueIndex()
	flat := map[string]float64{}
	cum := map[string]float64{}
	for _, s := range p.samples {
		if vi >= len(s.values) {
			continue
		}
		v := float64(s.values[vi])
		if v == 0 || len(s.locs) == 0 {
			continue
		}
		seen := map[string]bool{}
		for li, loc := range s.locs {
			funcs := p.locFuncs[loc]
			for fi, fid := range funcs {
				name := p.funcName[fid]
				if name == "" {
					continue
				}
				// The leaf frame of the sample is the first line of the
				// first location.
				if li == 0 && fi == 0 {
					flat[name] += v
				}
				if !seen[name] {
					seen[name] = true
					cum[name] += v
				}
			}
		}
	}
	syms := make([]Symbol, 0, len(cum))
	for name, c := range cum {
		syms = append(syms, Symbol{Func: name, Flat: flat[name], Cum: c, Unit: unit})
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].Flat != syms[j].Flat {
			return syms[i].Flat > syms[j].Flat
		}
		if syms[i].Cum != syms[j].Cum {
			return syms[i].Cum > syms[j].Cum
		}
		return syms[i].Func < syms[j].Func
	})
	if len(syms) > n {
		syms = syms[:n]
	}
	return syms, nil
}
