package perf

import (
	"strings"
	"testing"
)

func record(suite string, results ...Result) *Record {
	r := NewRecord(suite, "deadbeef", "2026-01-01T00:00:00Z")
	r.Reps = 5
	r.BenchTime = "200ms"
	r.Results = results
	r.Sort()
	return r
}

func result(name string, samples ...float64) Result {
	return Result{Name: name, Samples: samples, NsPerOp: median(samples), N: 100}
}

func TestMedian(t *testing.T) {
	for _, tc := range []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{3}, 3},
		{[]float64{1, 2, 3}, 2},
		{[]float64{4, 1, 2, 3}, 2.5},
	} {
		if got := median(tc.in); got != tc.want {
			t.Errorf("median(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestMannWhitneySeparated(t *testing.T) {
	// Two clearly separated samples must be significant.
	xs := []float64{100, 101, 102, 99, 100}
	ys := []float64{150, 151, 149, 152, 150}
	if p := mannWhitney(xs, ys); p >= 0.05 {
		t.Fatalf("separated samples p = %v, want < 0.05", p)
	}
}

func TestMannWhitneyIdentical(t *testing.T) {
	xs := []float64{100, 100, 100, 100}
	if p := mannWhitney(xs, xs); p != 1 {
		t.Fatalf("identical samples p = %v, want 1", p)
	}
}

func TestMannWhitneyOverlapping(t *testing.T) {
	// Heavily overlapping noise must not be significant.
	xs := []float64{100, 110, 95, 105, 98}
	ys := []float64{101, 109, 96, 104, 99}
	if p := mannWhitney(xs, ys); p < 0.05 {
		t.Fatalf("overlapping samples p = %v, want >= 0.05", p)
	}
}

func TestMannWhitneySmallSamples(t *testing.T) {
	if p := mannWhitney([]float64{1, 2}, []float64{5, 6}); p != 1 {
		t.Fatalf("n<3 should return p=1, got %v", p)
	}
}

func TestDiffDetectsRegression(t *testing.T) {
	old := record("kernels", result("K/a", 100, 101, 99, 100, 102))
	// 50% slower, clean separation → regression at a 20% threshold.
	new_ := record("kernels", result("K/a", 150, 151, 149, 152, 150))
	d, err := Diff(old, new_, DiffOptions{Threshold: 0.20})
	if err != nil {
		t.Fatal(err)
	}
	regs := d.Regressions()
	if len(regs) != 1 || regs[0].Name != "K/a" {
		t.Fatalf("regressions = %+v, want K/a", regs)
	}
	if regs[0].Delta < 0.4 || regs[0].Delta > 0.6 {
		t.Fatalf("delta = %v, want ≈ 0.5", regs[0].Delta)
	}
}

func TestDiffUnchangedPasses(t *testing.T) {
	old := record("kernels", result("K/a", 100, 101, 99, 100, 102))
	new_ := record("kernels", result("K/a", 101, 100, 102, 99, 100))
	d, err := Diff(old, new_, DiffOptions{Threshold: 0.20})
	if err != nil {
		t.Fatal(err)
	}
	if regs := d.Regressions(); len(regs) != 0 {
		t.Fatalf("unchanged run regressed: %+v", regs)
	}
}

func TestDiffNoisyShiftBelowThresholdPasses(t *testing.T) {
	// Significant but small (5%) shift must not trip a 20% gate.
	old := record("s", result("K/a", 100, 100, 100, 100, 100))
	new_ := record("s", result("K/a", 105, 105, 105, 105, 105))
	d, err := Diff(old, new_, DiffOptions{Threshold: 0.20})
	if err != nil {
		t.Fatal(err)
	}
	if regs := d.Regressions(); len(regs) != 0 {
		t.Fatalf("5%% shift tripped a 20%% gate: %+v", regs)
	}
}

func TestDiffLargeButInsignificantPasses(t *testing.T) {
	// A big median move on wildly overlapping samples is noise, not a
	// regression.
	old := record("s", result("K/a", 50, 300, 100, 80, 200))
	new_ := record("s", result("K/a", 60, 310, 220, 90, 210))
	d, err := Diff(old, new_, DiffOptions{Threshold: 0.20})
	if err != nil {
		t.Fatal(err)
	}
	if regs := d.Regressions(); len(regs) != 0 {
		t.Fatalf("insignificant shift regressed: %+v", regs)
	}
}

func TestDiffTracksMissingBenchmarks(t *testing.T) {
	old := record("s", result("K/gone", 1, 2, 3), result("K/kept", 1, 2, 3))
	new_ := record("s", result("K/kept", 1, 2, 3), result("K/new", 1, 2, 3))
	d, err := Diff(old, new_, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.OnlyOld) != 1 || d.OnlyOld[0] != "K/gone" {
		t.Fatalf("OnlyOld = %v", d.OnlyOld)
	}
	if len(d.OnlyNew) != 1 || d.OnlyNew[0] != "K/new" {
		t.Fatalf("OnlyNew = %v", d.OnlyNew)
	}
}

func TestDiffRejectsSuiteMismatch(t *testing.T) {
	if _, err := Diff(record("a"), record("b"), DiffOptions{}); err == nil {
		t.Fatal("expected suite-mismatch error")
	}
}

func TestDiffFormatNamesMovedSymbol(t *testing.T) {
	old := record("s", result("K/a", 100, 101, 99, 100, 102))
	new_ := record("s", result("K/a", 200, 201, 199, 200, 202))
	old.Results[0].Profile = &ProfileSummary{CPUTop: []Symbol{
		{Func: "repro/internal/metrics.Characterize", Flat: 1e6, Cum: 2e6, Unit: "nanoseconds"},
	}}
	new_.Results[0].Profile = &ProfileSummary{CPUTop: []Symbol{
		{Func: "repro/internal/metrics.Characterize", Flat: 9e6, Cum: 10e6, Unit: "nanoseconds"},
	}}
	d, err := Diff(old, new_, DiffOptions{Threshold: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	out := d.Format(old, new_)
	if !strings.Contains(out, "REGRESSED") {
		t.Fatalf("format lacks REGRESSED:\n%s", out)
	}
	if !strings.Contains(out, "metrics.Characterize") {
		t.Fatalf("format does not name the moved symbol:\n%s", out)
	}
}
