// The fleet suite: the consistent-hash router in front of real in-process
// mapd replicas, measured in the three regimes that matter — everything
// healthy (pure routing overhead), one replica dead (failover path), and
// the whole fleet dead (local degraded fallback). Keeps the routing tier
// on the same regression trajectory as the serving path it fronts.

package perf

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sort"
	"time"

	"repro/internal/fleet"
	"repro/internal/mapd"
)

// fleetFixture is one benchmark's router + replica set.
type fleetFixture struct {
	gate     *httptest.Server
	replicas []*httptest.Server
	router   *fleet.Router
}

func newFleetFixture(n int) (*fleetFixture, error) {
	f := &fleetFixture{}
	var urls []string
	for i := 0; i < n; i++ {
		srv := mapd.New(mapd.Config{CacheEntries: 4096})
		ts := httptest.NewServer(srv.Handler())
		f.replicas = append(f.replicas, ts)
		urls = append(urls, ts.URL)
	}
	g, err := fleet.New(fleet.Config{
		Replicas: urls,
		Backoff:  200 * time.Microsecond,
		// No background sweeps: benchmarks settle states via CheckNow so
		// the measured regime is exactly the declared one.
		Health: fleet.HealthConfig{Interval: time.Hour},
	})
	if err != nil {
		return nil, err
	}
	f.router = g
	f.gate = httptest.NewServer(g.Handler())
	return f, nil
}

func (f *fleetFixture) close() {
	f.gate.Close()
	for _, r := range f.replicas {
		r.Close()
	}
}

// settle runs enough health sweeps to cross the ejection threshold for
// any closed replica.
func (f *fleetFixture) settle() {
	f.router.CheckNow(context.Background())
	f.router.CheckNow(context.Background())
}

// FleetSuite benchmarks the routed request path end to end.
func FleetSuite() Suite {
	s := Suite{
		Name:        "fleet",
		Description: "consistent-hash router over in-process replicas: routing, failover, fallback",
		// Like serving: network-path latency is the noisiest family.
		Threshold: 0.50,
	}
	const conc = 8
	mk := func(kill int, shots []loadShot) func(*B) {
		return func(b *B) {
			f, err := newFleetFixture(3)
			if err != nil {
				b.Fatalf("%v", err)
			}
			defer f.close()
			client := &http.Client{Transport: &http.Transport{
				MaxIdleConns:        conc * 2,
				MaxIdleConnsPerHost: conc * 2,
			}}
			for i := 0; i < kill; i++ {
				f.replicas[i].Close()
			}
			f.settle()
			if kill < len(f.replicas) {
				// Warm the surviving replicas' caches.
				if _, err := runLoad(f.gate.URL, client, shots, len(shots), conc); err != nil {
					b.Fatalf("warmup: %v", err)
				}
			}
			b.ResetTimer()
			start := time.Now()
			lats, err := runLoad(f.gate.URL, client, shots, b.N, conc)
			elapsed := time.Since(start)
			b.StopTimer()
			if err != nil {
				b.Fatalf("%v", err)
			}
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			b.ReportMetric(float64(b.N)/elapsed.Seconds(), "req/s")
			b.ReportMetric(float64(durPercentile(lats, 0.50).Microseconds()), "p50_us")
			b.ReportMetric(float64(durPercentile(lats, 0.99).Microseconds()), "p99_us")
		}
	}
	s.Benches = append(s.Benches,
		Bench{Name: "Fleet/route/3-healthy", F: mk(0, servingWorkload())},
		Bench{Name: "Fleet/failover/1-dead", F: mk(1, servingWorkload())},
		Bench{Name: "Fleet/fallback/all-dead", F: mk(3, servingWorkload())},
	)
	return s
}
