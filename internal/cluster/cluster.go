// Package cluster provides the simulated machine models standing in for
// the paper's two evaluation platforms (§4, "Machine descriptions"):
//
//   - Hydra: 32 nodes × two 16-core Intel Xeon Gold 6130F sockets,
//     Omni-Path 100 Gb/s (one or two NICs per node). The paper describes a
//     node as ⟦2, 2, 8⟧ — each socket faked as two groups of eight cores.
//   - LUMI: HPE Cray EX nodes with two 64-core AMD EPYC 7763 sockets, four
//     NUMA domains per socket, two L3 complexes (CCX) per NUMA, eight cores
//     per CCX, Slingshot-11 200 Gb/s. A node is ⟦2, 4, 2, 8⟧.
//
// Link capacities and latencies are calibrated from public figures for the
// parts (NIC line rate, UPI/xGMI inter-socket links, DDR4 channel counts);
// they aim to reproduce the qualitative shapes of the paper's results —
// who wins, where crossovers fall — not the absolute numbers, which depend
// on the authors' exact software stack.
package cluster

import (
	"repro/internal/netmodel"
	"repro/internal/topology"
)

// HydraNodes is the size of the paper's Hydra cluster.
const HydraNodes = 32

// Hydra returns the Hydra machine model with the given node count and NICs
// per node (Figure 8 contrasts 1 and 2). The hierarchy is
// ⟦nodes, 2, 2, 8⟧: sockets, fake half-socket groups, cores.
func Hydra(nodes, nics int) netmodel.Spec {
	return netmodel.Spec{
		Name: "hydra",
		Levels: []netmodel.LevelSpec{
			// Omni-Path HFI: 100 Gb/s ≈ 12.5 GB/s per NIC; inter-node
			// latency of the paper's fabric is a couple of microseconds.
			{Name: "node", Arity: nodes, UpBandwidth: 12.5e9, BusBandwidth: 38e9, Latency: 1.9e-6},
			// UPI between the two sockets (~20 GB/s effective per direction).
			{Name: "socket", Arity: 2, UpBandwidth: 20e9, BusBandwidth: 55e9, Latency: 0.9e-6, MemBandwidth: 80e9},
			// Fake half-socket group: half the socket's memory system.
			{Name: "group", Arity: 2, UpBandwidth: 30e9, BusBandwidth: 42e9, Latency: 0.5e-6, MemBandwidth: 42e9},
			{Name: "core", Arity: 8, Latency: 0.3e-6},
		},
		NICsPerNode: nics,
		// Xeon Gold 6130F: 2.1 GHz × 16 DP flops/cycle.
		CoreFlops: 33.6e9,
	}
}

// HydraReal returns Hydra without the fake level: ⟦nodes, 2, 16⟧, for the
// fake-level ablation.
func HydraReal(nodes, nics int) netmodel.Spec {
	return netmodel.Spec{
		Name: "hydra-real",
		Levels: []netmodel.LevelSpec{
			{Name: "node", Arity: nodes, UpBandwidth: 12.5e9, BusBandwidth: 38e9, Latency: 1.9e-6},
			{Name: "socket", Arity: 2, UpBandwidth: 20e9, BusBandwidth: 55e9, Latency: 0.9e-6, MemBandwidth: 80e9},
			{Name: "core", Arity: 16, Latency: 0.4e-6},
		},
		NICsPerNode: nics,
		CoreFlops:   33.6e9,
	}
}

// LUMI returns the LUMI machine model with the given node count:
// ⟦nodes, 2, 4, 2, 8⟧.
func LUMI(nodes int) netmodel.Spec {
	return netmodel.Spec{
		Name: "lumi",
		Levels: []netmodel.LevelSpec{
			// Slingshot-11: 200 Gb/s ≈ 25 GB/s.
			{Name: "node", Arity: nodes, UpBandwidth: 25e9, BusBandwidth: 70e9, Latency: 1.8e-6},
			// xGMI between the two EPYC sockets.
			{Name: "socket", Arity: 2, UpBandwidth: 36e9, BusBandwidth: 110e9, Latency: 0.9e-6, MemBandwidth: 170e9},
			// NUMA domain (NPS4 quadrant): two DDR4-3200 channels ≈ 45 GB/s.
			{Name: "numa", Arity: 4, UpBandwidth: 50e9, BusBandwidth: 60e9, Latency: 0.45e-6, MemBandwidth: 45e9},
			// CCX sharing one L3 slice.
			{Name: "l3", Arity: 2, UpBandwidth: 55e9, BusBandwidth: 60e9, Latency: 0.25e-6, MemBandwidth: 50e9},
			{Name: "core", Arity: 8, Latency: 0.1e-6},
		},
		// EPYC 7763: 2.45 GHz; CG's sparse kernels sustain a fraction of
		// peak — the roofline uses an effective per-core rate.
		CoreFlops: 9.8e9,
	}
}

// LUMINode returns a single LUMI compute node as its own platform,
// hierarchy ⟦2, 4, 2, 8⟧ (socket, numa, l3, core) — the machine of the
// conjugate-gradient strong-scaling experiment (§4.3).
func LUMINode() netmodel.Spec {
	return netmodel.Spec{
		Name: "lumi-node",
		Levels: []netmodel.LevelSpec{
			{Name: "socket", Arity: 2, UpBandwidth: 36e9, BusBandwidth: 110e9, Latency: 0.9e-6, MemBandwidth: 170e9},
			{Name: "numa", Arity: 4, UpBandwidth: 50e9, BusBandwidth: 60e9, Latency: 0.45e-6, MemBandwidth: 45e9},
			{Name: "l3", Arity: 2, UpBandwidth: 55e9, BusBandwidth: 60e9, Latency: 0.25e-6, MemBandwidth: 50e9},
			{Name: "core", Arity: 8, Latency: 0.1e-6},
		},
		CoreFlops: 9.8e9,
	}
}

// HydraFatTree folds a network level into the hierarchy as §3.2 sketches
// ("the hierarchy can also include levels outside of nodes, like cabinets
// or the topology of the network"): switches × nodes-per-switch × the
// Hydra node. Each switch's uplink to the core carries a quarter of the
// aggregate NIC bandwidth of its nodes (4:1 oversubscription, a common
// cost-reduced fat-tree taper), so orders that spread communicators across
// switches contend on a resource that plain Hydra does not model. The
// §3.2 constraint applies: the job must exactly fill the selected switches
// (ValidateNetworkPrefix).
func HydraFatTree(switches, nodesPerSwitch, nics int) netmodel.Spec {
	if nics <= 0 {
		nics = 1
	}
	uplink := float64(nodesPerSwitch) * 12.5e9 * float64(nics) / 4
	return netmodel.Spec{
		Name: "hydra-fattree",
		Levels: []netmodel.LevelSpec{
			{Name: "switch", Arity: switches, UpBandwidth: uplink, Latency: 2.6e-6},
			{Name: "node", Arity: nodesPerSwitch, UpBandwidth: 12.5e9 * float64(nics), BusBandwidth: 38e9, Latency: 1.9e-6},
			{Name: "socket", Arity: 2, UpBandwidth: 20e9, BusBandwidth: 55e9, Latency: 0.9e-6, MemBandwidth: 80e9},
			{Name: "group", Arity: 2, UpBandwidth: 30e9, BusBandwidth: 42e9, Latency: 0.5e-6, MemBandwidth: 42e9},
			{Name: "core", Arity: 8, Latency: 0.3e-6},
		},
		// NICsPerNode multiplies level 0 — here the switch uplink — so the
		// NIC factor is baked into the level bandwidths instead.
		CoreFlops: 33.6e9,
	}
}

// Cloud depth bounds: the synthetic cloud machine is the deep-hierarchy
// scenario family (following Cloud Collectives, Luo et al.), served only
// through the bounded branch-and-bound / beam search.
const (
	CloudMinDepth = 6
	CloudMaxDepth = 12
)

// cloudLevels is the full 12-level template, outermost to innermost: a
// datacenter fabric (zone/spine/pod/rack/ToR/chassis) over virtualized
// hosts (host/VM) over a node interior (socket/NUMA/L3/core). Latencies
// decrease and bandwidths increase monotonically inward, so deep
// hierarchies exercise both terms of the advisor model at every depth.
var cloudLevels = []netmodel.LevelSpec{
	{Name: "zone", Arity: 2, UpBandwidth: 8e9, Latency: 5.0e-6},
	{Name: "spine", Arity: 2, UpBandwidth: 10e9, Latency: 3.2e-6},
	{Name: "pod", Arity: 2, UpBandwidth: 12e9, Latency: 2.4e-6},
	{Name: "rack", Arity: 2, UpBandwidth: 15e9, Latency: 1.8e-6},
	{Name: "tor", Arity: 2, UpBandwidth: 18e9, Latency: 1.4e-6},
	{Name: "chassis", Arity: 2, UpBandwidth: 22e9, Latency: 1.0e-6},
	{Name: "host", Arity: 2, UpBandwidth: 25e9, BusBandwidth: 70e9, Latency: 0.8e-6},
	{Name: "vm", Arity: 2, UpBandwidth: 30e9, BusBandwidth: 80e9, Latency: 0.6e-6},
	{Name: "socket", Arity: 2, UpBandwidth: 36e9, BusBandwidth: 110e9, Latency: 0.45e-6, MemBandwidth: 170e9},
	{Name: "numa", Arity: 2, UpBandwidth: 45e9, BusBandwidth: 60e9, Latency: 0.3e-6, MemBandwidth: 45e9},
	{Name: "l3", Arity: 2, UpBandwidth: 55e9, BusBandwidth: 60e9, Latency: 0.2e-6, MemBandwidth: 50e9},
	{Name: "core", Arity: 4, Latency: 0.1e-6},
}

// Cloud returns the synthetic deep cloud machine at the given hierarchy
// depth (CloudMinDepth..CloudMaxDepth): the innermost depth levels of the
// 12-level template, so depth 10 is ⟦2×…×2, 4⟧ with 2048 cores and depth
// 12 the full 8192-core datacenter. Unlike the paper machines its shape
// is fixed per depth — the point is searching deep order spaces, not
// sizing nodes.
func Cloud(depth int) netmodel.Spec {
	if depth < CloudMinDepth || depth > CloudMaxDepth {
		panic("cluster: cloud depth out of range")
	}
	levels := make([]netmodel.LevelSpec, depth)
	copy(levels, cloudLevels[len(cloudLevels)-depth:])
	return netmodel.Spec{
		Name:   "cloud",
		Levels: levels,
		// Generic cloud VCPUs; only the collective model reads this spec.
		CoreFlops: 8e9,
	}
}

// CloudHierarchy returns the hierarchy of Cloud(depth).
func CloudHierarchy(depth int) topology.Hierarchy {
	return Cloud(depth).Hierarchy()
}

// HydraHierarchy returns the ⟦nodes, 2, 2, 8⟧ hierarchy used throughout
// the Hydra experiments.
func HydraHierarchy(nodes int) topology.Hierarchy {
	return topology.MustNew(nodes, 2, 2, 8)
}

// LUMIHierarchy returns the ⟦nodes, 2, 4, 2, 8⟧ hierarchy of LUMI.
func LUMIHierarchy(nodes int) topology.Hierarchy {
	return topology.MustNew(nodes, 2, 4, 2, 8)
}

// LUMINodeHierarchy returns the ⟦2, 4, 2, 8⟧ hierarchy of one LUMI node.
func LUMINodeHierarchy() topology.Hierarchy {
	return topology.MustNew(2, 4, 2, 8)
}

// HydraSlurmDefaultOrder is the order equivalent to the default Slurm
// mapping on Hydra (block:cyclic — §4.2 names [1, 3, 2, 0]).
func HydraSlurmDefaultOrder() []int { return []int{1, 3, 2, 0} }

// LUMISlurmDefaultOrder is the order of LUMI's default mapping
// (block:block, the initial enumeration — [4, 3, 2, 1, 0], Figure 5).
func LUMISlurmDefaultOrder() []int { return []int{4, 3, 2, 1, 0} }
