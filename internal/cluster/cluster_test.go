package cluster

import (
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/mixedradix"
	"repro/internal/netmodel"
	"repro/internal/slurm"
)

func TestHydraShape(t *testing.T) {
	spec := Hydra(16, 1)
	h := spec.Hierarchy()
	if !reflect.DeepEqual(h.Arities(), []int{16, 2, 2, 8}) {
		t.Errorf("Hydra arities = %v", h.Arities())
	}
	if h.Size() != 512 {
		t.Errorf("Hydra size = %d", h.Size())
	}
	if !reflect.DeepEqual(h.Arities(), HydraHierarchy(16).Arities()) {
		t.Error("Hydra spec and hierarchy helper disagree")
	}
}

func TestHydraRealShape(t *testing.T) {
	h := HydraReal(16, 1).Hierarchy()
	if !reflect.DeepEqual(h.Arities(), []int{16, 2, 16}) {
		t.Errorf("HydraReal arities = %v", h.Arities())
	}
	// Merging the fake level of Hydra must yield HydraReal's shape.
	merged, err := HydraHierarchy(16).MergeLevels(2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Arities(), h.Arities()) {
		t.Errorf("merged Hydra = %v, HydraReal = %v", merged.Arities(), h.Arities())
	}
}

func TestLUMIShape(t *testing.T) {
	h := LUMI(16).Hierarchy()
	if !reflect.DeepEqual(h.Arities(), []int{16, 2, 4, 2, 8}) {
		t.Errorf("LUMI arities = %v", h.Arities())
	}
	if h.Size() != 2048 {
		t.Errorf("LUMI size = %d", h.Size())
	}
	node := LUMINode().Hierarchy()
	if !reflect.DeepEqual(node.Arities(), []int{2, 4, 2, 8}) {
		t.Errorf("LUMINode arities = %v", node.Arities())
	}
	if !reflect.DeepEqual(node.Arities(), LUMINodeHierarchy().Arities()) {
		t.Error("LUMINode spec and hierarchy helper disagree")
	}
}

// The documented Slurm default orders must match the --distribution values
// the paper names for them.
func TestDefaultOrdersMatchDistributions(t *testing.T) {
	hydra := HydraHierarchy(4)
	d, ok := slurm.DistributionForOrder(hydra, HydraSlurmDefaultOrder())
	if !ok || d.String() != "block:cyclic" {
		t.Errorf("Hydra default order resolves to %v (ok=%v), want block:cyclic", d, ok)
	}
	lumi := LUMIHierarchy(2)
	d, ok = slurm.DistributionForOrder(lumi, LUMISlurmDefaultOrder())
	if !ok || d.String() != "block:block" {
		t.Errorf("LUMI default order resolves to %v (ok=%v), want block:block", d, ok)
	}
}

func TestFatTreeShapeAndConstraint(t *testing.T) {
	spec := HydraFatTree(2, 4, 1)
	h := spec.Hierarchy()
	if !reflect.DeepEqual(h.Arities(), []int{2, 4, 2, 2, 8}) {
		t.Errorf("fat-tree arities = %v", h.Arities())
	}
	// §3.2: one network level, the job's 8 nodes must fill both switches.
	if err := h.ValidateNetworkPrefix(2, 8); err != nil {
		t.Errorf("valid fat-tree job rejected: %v", err)
	}
	if err := h.ValidateNetworkPrefix(2, 6); err == nil {
		t.Error("partially-filled switches accepted")
	}
}

// Spreading communicators across switches must hit the oversubscribed
// switch uplinks: the switch-spread order loses to the node-spread-within-
// switch order under simultaneous traffic.
func TestFatTreeSwitchContention(t *testing.T) {
	spec := HydraFatTree(2, 4, 1)
	h := spec.Hierarchy()
	cfg := bench.Config{
		Spec:      spec,
		Hierarchy: h,
		CommSize:  16,
		Coll:      bench.Alltoall,
		Iters:     1,
	}
	// Order [0,…]: switch index varies fastest → every communicator
	// crosses the oversubscribed inter-switch core. Order [1,2,3,0,4]:
	// node, socket and group vary before the switch → each 16-rank
	// communicator fills exactly one switch and never crosses the core.
	acrossSwitches := []int{0, 1, 2, 3, 4}
	withinSwitch := []int{1, 2, 3, 0, 4}
	across, err := bench.Measure(cfg, acrossSwitches, 16<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	within, err := bench.Measure(cfg, withinSwitch, 16<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	if across.Bandwidth >= within.Bandwidth {
		t.Errorf("switch-crossing order (%.3g) should lose to switch-local order (%.3g)",
			across.Bandwidth, within.Bandwidth)
	}
}

// Every predefined machine must accept all of its orders: reordering any
// of them is a bijection (guards against arity typos).
func TestAllMachinesReorderable(t *testing.T) {
	specs := map[string][]int{
		"hydra":    Hydra(4, 1).Hierarchy().Arities(),
		"real":     HydraReal(4, 1).Hierarchy().Arities(),
		"lumi":     LUMI(2).Hierarchy().Arities(),
		"luminode": LUMINode().Hierarchy().Arities(),
		"fattree":  HydraFatTree(2, 2, 1).Hierarchy().Arities(),
	}
	for name, ar := range specs {
		if err := mixedradix.CheckHierarchy(ar); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestSpecLatenciesMonotone(t *testing.T) {
	// Crossing latency must not increase when moving inwards (outer
	// crossings are slower) for every machine model.
	for _, c := range []struct {
		name string
		spec netmodel.Spec
	}{
		{"hydra", Hydra(4, 1)},
		{"hydra-real", HydraReal(4, 1)},
		{"lumi", LUMI(2)},
		{"luminode", LUMINode()},
		{"fattree", HydraFatTree(2, 2, 1)},
	} {
		for i := 1; i < len(c.spec.Levels); i++ {
			if c.spec.Levels[i].Latency > c.spec.Levels[i-1].Latency {
				t.Errorf("%s: latency increases inwards at level %d", c.name, i)
			}
		}
	}
}
