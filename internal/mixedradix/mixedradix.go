// Package mixedradix implements the paper's core contribution: mixed-radix
// decomposition of ranks over a machine hierarchy, and re-composition under
// a permutation of hierarchy levels (an "order").
//
// A hierarchy h = ⟦h₀, h₁, …, h_{k-1}⟧ lists, from the outermost level
// inwards, how many children each component of a level has: for example
// ⟦2, 2, 4⟧ is 2 nodes × 2 sockets × 4 cores (Figure 1 of the paper).
//
// Decompose is the paper's Algorithm 1: it maps a rank to its coordinates
// in the multi-dimensional space spanned by the hierarchy, with c[0] the
// outermost (most significant) coordinate. Compose is Algorithm 2: given
// coordinates and an order σ, it produces the reordered rank
//
//	r = c_{σ(0)} + Σ_{i≥1} c_{σ(i)} · Π_{j<i} h_{σ(j)}
//
// so σ(0) names the level that varies fastest in the new enumeration.
// The order [k-1, …, 0] reproduces the original enumeration.
package mixedradix

import (
	"errors"
	"fmt"

	"repro/internal/perm"
)

// ErrBadHierarchy reports an invalid hierarchy description.
var ErrBadHierarchy = errors.New("mixedradix: invalid hierarchy")

// ErrRankRange reports a rank outside [0, Size(h)).
var ErrRankRange = errors.New("mixedradix: rank out of range")

// CheckHierarchy verifies that every radix is strictly greater than 1, as
// required by the mixed-radix numeral system (§3.1), and that the hierarchy
// is non-empty.
func CheckHierarchy(h []int) error {
	if len(h) == 0 {
		return fmt.Errorf("%w: empty", ErrBadHierarchy)
	}
	for i, v := range h {
		if v <= 1 {
			return fmt.Errorf("%w: level %d has size %d, want > 1", ErrBadHierarchy, i, v)
		}
	}
	return nil
}

// Size returns the number of ranks the hierarchy enumerates: the product of
// all level sizes. It panics on overflow.
func Size(h []int) int {
	n := 1
	for _, v := range h {
		if v != 0 && n > int(^uint(0)>>1)/v {
			panic("mixedradix: hierarchy size overflows int")
		}
		n *= v
	}
	return n
}

// Decompose implements Algorithm 1: it returns the coordinates c of rank r
// in hierarchy h, where c[i] ∈ [0, h[i]) and c[0] is the outermost level.
// Decompose panics if r is outside [0, Size(h)); use DecomposeChecked for
// an error-returning variant.
func Decompose(h []int, r int) []int {
	c := make([]int, len(h))
	DecomposeInto(h, r, c)
	return c
}

// DecomposeInto is Decompose writing into a caller-provided slice of
// length len(h), avoiding an allocation in hot loops.
func DecomposeInto(h []int, r int, c []int) {
	if len(c) != len(h) {
		panic("mixedradix: DecomposeInto destination length mismatch")
	}
	if r < 0 || r >= Size(h) {
		panic(fmt.Sprintf("mixedradix: rank %d out of range [0, %d)", r, Size(h)))
	}
	for i := len(h) - 1; i >= 0; i-- {
		c[i] = r % h[i]
		r /= h[i]
	}
}

// DecomposeChecked is Decompose with validation errors instead of panics.
func DecomposeChecked(h []int, r int) ([]int, error) {
	if err := CheckHierarchy(h); err != nil {
		return nil, err
	}
	if r < 0 || r >= Size(h) {
		return nil, fmt.Errorf("%w: rank %d, hierarchy size %d", ErrRankRange, r, Size(h))
	}
	return Decompose(h, r), nil
}

// Compose implements Algorithm 2: it computes the reordered rank of the
// coordinates c under the order sigma. Both slices must have the hierarchy's
// length and sigma must be a permutation of [0, len(h)).
func Compose(h, c, sigma []int) int {
	if len(c) != len(h) || len(sigma) != len(h) {
		panic("mixedradix: Compose length mismatch")
	}
	r := 0
	f := 1
	for i := 0; i < len(h); i++ {
		r += c[sigma[i]] * f
		f *= h[sigma[i]]
	}
	return r
}

// ComposeChecked is Compose with validation errors instead of panics.
func ComposeChecked(h, c, sigma []int) (int, error) {
	if err := CheckHierarchy(h); err != nil {
		return 0, err
	}
	if len(c) != len(h) {
		return 0, fmt.Errorf("%w: %d coordinates for %d levels", ErrBadHierarchy, len(c), len(h))
	}
	for i, v := range c {
		if v < 0 || v >= h[i] {
			return 0, fmt.Errorf("%w: coordinate %d is %d, want [0, %d)", ErrRankRange, i, v, h[i])
		}
	}
	if err := perm.Check(sigma); err != nil {
		return 0, err
	}
	if len(sigma) != len(h) {
		return 0, fmt.Errorf("%w: order has %d levels, hierarchy has %d", ErrBadHierarchy, len(sigma), len(h))
	}
	return Compose(h, c, sigma), nil
}

// NewRank applies Algorithm 1 followed by Algorithm 2: the reordered rank of
// r in hierarchy h under order sigma. This is the ComputeNewRank step used
// by Algorithm 3 (§3.4).
func NewRank(h []int, r int, sigma []int) int {
	c := make([]int, len(h))
	DecomposeInto(h, r, c)
	return Compose(h, c, sigma)
}

// Reorderer precomputes state for repeated NewRank calls on one
// (hierarchy, order) pair. It is not safe for concurrent use.
type Reorderer struct {
	h     []int
	sigma []int
	c     []int // scratch coordinates
}

// NewReorderer validates its inputs and returns a Reorderer.
func NewReorderer(h, sigma []int) (*Reorderer, error) {
	if err := CheckHierarchy(h); err != nil {
		return nil, err
	}
	if err := perm.Check(sigma); err != nil {
		return nil, err
	}
	if len(sigma) != len(h) {
		return nil, fmt.Errorf("%w: order has %d levels, hierarchy has %d", ErrBadHierarchy, len(sigma), len(h))
	}
	return &Reorderer{
		h:     append([]int(nil), h...),
		sigma: append([]int(nil), sigma...),
		c:     make([]int, len(h)),
	}, nil
}

// Hierarchy returns a copy of the reorderer's hierarchy.
func (ro *Reorderer) Hierarchy() []int { return append([]int(nil), ro.h...) }

// Order returns a copy of the reorderer's order.
func (ro *Reorderer) Order() []int { return append([]int(nil), ro.sigma...) }

// Size returns the number of ranks enumerated.
func (ro *Reorderer) Size() int { return Size(ro.h) }

// NewRank returns the reordered rank of r.
func (ro *Reorderer) NewRank(r int) int {
	DecomposeInto(ro.h, r, ro.c)
	return Compose(ro.h, ro.c, ro.sigma)
}

// Table returns the full mapping t with t[old] = new for every rank. The
// result is always a permutation of [0, Size(h)) (see TestReorderBijection).
func (ro *Reorderer) Table() []int {
	n := ro.Size()
	t := make([]int, n)
	for r := 0; r < n; r++ {
		t[r] = ro.NewRank(r)
	}
	return t
}

// InverseTable returns inv with inv[new] = old: for each reordered rank,
// the original rank (hence the original core) it is placed on. This is the
// rankfile view of the mapping.
func (ro *Reorderer) InverseTable() []int {
	t := ro.Table()
	inv := make([]int, len(t))
	for old, nw := range t {
		inv[nw] = old
	}
	return inv
}

// ReorderAll is a convenience wrapper returning Table for (h, sigma).
func ReorderAll(h, sigma []int) ([]int, error) {
	ro, err := NewReorderer(h, sigma)
	if err != nil {
		return nil, err
	}
	return ro.Table(), nil
}

// PermutedHierarchy returns [h_{σ(0)}, h_{σ(1)}, …]: the "permuted
// hierarchy" column of Table 1, pairing position-by-position with
// PermutedCoordinates (position 0 is the fastest-varying level of the new
// enumeration).
func PermutedHierarchy(h, sigma []int) []int {
	return perm.Apply(sigma, h)
}

// PermutedCoordinates returns [c_{σ(0)}, c_{σ(1)}, …]: the "permuted
// coordinates" column of Table 1.
func PermutedCoordinates(c, sigma []int) []int {
	return perm.Apply(sigma, c)
}

// IdentityOrder returns the order that leaves the enumeration unchanged,
// [k-1, …, 0] (Figure 2f): Algorithm 2 with this order inverts Algorithm 1.
func IdentityOrder(k int) []int { return perm.Reversed(k) }

// ReorderedHierarchy returns the hierarchy of the new enumeration produced
// by sigma, listed outermost (most significant) level first like h itself:
// element j is h[sigma[k-1-j]]. Decomposing a reordered rank against this
// hierarchy yields its coordinates in the new enumeration.
func ReorderedHierarchy(h, sigma []int) []int {
	k := len(h)
	out := make([]int, k)
	for j := 0; j < k; j++ {
		out[j] = h[sigma[k-1-j]]
	}
	return out
}

// UndoOrder returns the order τ that inverts a reordering: reordering h by
// sigma and then reordering ReorderedHierarchy(h, sigma) by τ restores every
// original rank. τ(i) = k-1-σ⁻¹(k-1-i).
func UndoOrder(sigma []int) []int {
	k := len(sigma)
	inv := perm.Inverse(sigma)
	tau := make([]int, k)
	for i := 0; i < k; i++ {
		tau[i] = k - 1 - inv[k-1-i]
	}
	return tau
}
