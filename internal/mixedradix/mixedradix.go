// Package mixedradix implements the paper's core contribution: mixed-radix
// decomposition of ranks over a machine hierarchy, and re-composition under
// a permutation of hierarchy levels (an "order").
//
// A hierarchy h = ⟦h₀, h₁, …, h_{k-1}⟧ lists, from the outermost level
// inwards, how many children each component of a level has: for example
// ⟦2, 2, 4⟧ is 2 nodes × 2 sockets × 4 cores (Figure 1 of the paper).
//
// Decompose is the paper's Algorithm 1: it maps a rank to its coordinates
// in the multi-dimensional space spanned by the hierarchy, with c[0] the
// outermost (most significant) coordinate. Compose is Algorithm 2: given
// coordinates and an order σ, it produces the reordered rank
//
//	r = c_{σ(0)} + Σ_{i≥1} c_{σ(i)} · Π_{j<i} h_{σ(j)}
//
// so σ(0) names the level that varies fastest in the new enumeration.
// The order [k-1, …, 0] reproduces the original enumeration.
package mixedradix

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/perm"
)

// ErrBadHierarchy reports an invalid hierarchy description.
var ErrBadHierarchy = errors.New("mixedradix: invalid hierarchy")

// ErrRankRange reports a rank outside [0, Size(h)).
var ErrRankRange = errors.New("mixedradix: rank out of range")

// CheckHierarchy verifies that every radix is strictly greater than 1, as
// required by the mixed-radix numeral system (§3.1), and that the hierarchy
// is non-empty.
func CheckHierarchy(h []int) error {
	if len(h) == 0 {
		return fmt.Errorf("%w: empty", ErrBadHierarchy)
	}
	for i, v := range h {
		if v <= 1 {
			return fmt.Errorf("%w: level %d has size %d, want > 1", ErrBadHierarchy, i, v)
		}
	}
	return nil
}

// Size returns the number of ranks the hierarchy enumerates: the product of
// all level sizes. It panics on overflow and on a non-positive radix (a
// zero radix would otherwise propagate a silent 0 into divide-by-zero
// panics downstream); use CheckHierarchy for an error-returning validation.
func Size(h []int) int {
	n := 1
	for i, v := range h {
		if v <= 0 {
			panic(fmt.Sprintf("mixedradix: invalid hierarchy: level %d has non-positive size %d", i, v))
		}
		if n > int(^uint(0)>>1)/v {
			panic("mixedradix: hierarchy size overflows int")
		}
		n *= v
	}
	return n
}

// Decompose implements Algorithm 1: it returns the coordinates c of rank r
// in hierarchy h, where c[i] ∈ [0, h[i]) and c[0] is the outermost level.
// Decompose panics if r is outside [0, Size(h)); use DecomposeChecked for
// an error-returning variant.
func Decompose(h []int, r int) []int {
	c := make([]int, len(h))
	DecomposeInto(h, r, c)
	return c
}

// DecomposeInto is Decompose writing into a caller-provided slice of
// length len(h), avoiding an allocation in hot loops. Unlike earlier
// versions it does not recompute Size(h) on every call: the digits are
// extracted first and any rank outside [0, Size(h)) is detected from the
// non-zero quotient that remains.
func DecomposeInto(h []int, r int, c []int) {
	if len(c) != len(h) {
		panic("mixedradix: DecomposeInto destination length mismatch")
	}
	if r < 0 {
		panic(fmt.Sprintf("mixedradix: rank %d out of range [0, %d)", r, Size(h)))
	}
	rank := r
	for i := len(h) - 1; i >= 0; i-- {
		v := h[i]
		if v <= 0 {
			panic(fmt.Sprintf("mixedradix: invalid hierarchy: level %d has non-positive size %d", i, v))
		}
		c[i] = r % v
		r /= v
	}
	if r != 0 {
		panic(fmt.Sprintf("mixedradix: rank %d out of range [0, %d)", rank, Size(h)))
	}
}

// DecomposeChecked is Decompose with validation errors instead of panics.
func DecomposeChecked(h []int, r int) ([]int, error) {
	if err := CheckHierarchy(h); err != nil {
		return nil, err
	}
	if r < 0 || r >= Size(h) {
		return nil, fmt.Errorf("%w: rank %d, hierarchy size %d", ErrRankRange, r, Size(h))
	}
	return Decompose(h, r), nil
}

// Compose implements Algorithm 2: it computes the reordered rank of the
// coordinates c under the order sigma. Both slices must have the hierarchy's
// length and sigma must be a permutation of [0, len(h)).
func Compose(h, c, sigma []int) int {
	if len(c) != len(h) || len(sigma) != len(h) {
		panic("mixedradix: Compose length mismatch")
	}
	r := 0
	f := 1
	for i := 0; i < len(h); i++ {
		r += c[sigma[i]] * f
		f *= h[sigma[i]]
	}
	return r
}

// ComposeChecked is Compose with validation errors instead of panics.
func ComposeChecked(h, c, sigma []int) (int, error) {
	if err := CheckHierarchy(h); err != nil {
		return 0, err
	}
	if len(c) != len(h) {
		return 0, fmt.Errorf("%w: %d coordinates for %d levels", ErrBadHierarchy, len(c), len(h))
	}
	for i, v := range c {
		if v < 0 || v >= h[i] {
			return 0, fmt.Errorf("%w: coordinate %d is %d, want [0, %d)", ErrRankRange, i, v, h[i])
		}
	}
	if err := CheckOrder(h, sigma); err != nil {
		return 0, err
	}
	return Compose(h, c, sigma), nil
}

// CheckOrder verifies that sigma is a usable order for hierarchy h: the
// lengths must match (checked first, so a wrong-length order is reported
// as such rather than as a spurious not-a-permutation error) and sigma
// must be a permutation of [0, len(h)).
func CheckOrder(h, sigma []int) error {
	if len(sigma) != len(h) {
		return fmt.Errorf("%w: order has %d levels, hierarchy has %d", ErrBadHierarchy, len(sigma), len(h))
	}
	return perm.Check(sigma)
}

// NewRank applies Algorithm 1 followed by Algorithm 2: the reordered rank of
// r in hierarchy h under order sigma. This is the ComputeNewRank step used
// by Algorithm 3 (§3.4).
func NewRank(h []int, r int, sigma []int) int {
	c := make([]int, len(h))
	DecomposeInto(h, r, c)
	return Compose(h, c, sigma)
}

// Reorderer precomputes state for repeated NewRank calls on one
// (hierarchy, order) pair: the hierarchy size and, per original level, the
// weight its digit carries in the reordered enumeration, so NewRank runs a
// single divide loop with no scratch slice. A Reorderer is immutable after
// construction and safe for concurrent use.
type Reorderer struct {
	h       []int
	sigma   []int
	weights []int // weights[l] = Π_{j < σ⁻¹(l)} h[σ(j)], the new weight of level l's digit
	n       int   // Size(h), hoisted
}

// NewReorderer validates its inputs and returns a Reorderer.
func NewReorderer(h, sigma []int) (*Reorderer, error) {
	if err := CheckHierarchy(h); err != nil {
		return nil, err
	}
	if err := CheckOrder(h, sigma); err != nil {
		return nil, err
	}
	ro := &Reorderer{
		h:       append([]int(nil), h...),
		sigma:   append([]int(nil), sigma...),
		weights: make([]int, len(h)),
		n:       Size(h),
	}
	f := 1
	for _, l := range sigma {
		ro.weights[l] = f
		f *= h[l]
	}
	return ro, nil
}

// Hierarchy returns a copy of the reorderer's hierarchy.
func (ro *Reorderer) Hierarchy() []int { return append([]int(nil), ro.h...) }

// Order returns a copy of the reorderer's order.
func (ro *Reorderer) Order() []int { return append([]int(nil), ro.sigma...) }

// Size returns the number of ranks enumerated.
func (ro *Reorderer) Size() int { return ro.n }

// NewRank returns the reordered rank of r. It allocates nothing.
func (ro *Reorderer) NewRank(r int) int {
	if r < 0 || r >= ro.n {
		panic(fmt.Sprintf("mixedradix: rank %d out of range [0, %d)", r, ro.n))
	}
	nr := 0
	for i := len(ro.h) - 1; i >= 0; i-- {
		nr += (r % ro.h[i]) * ro.weights[i]
		r /= ro.h[i]
	}
	return nr
}

// Table returns the full mapping t with t[old] = new for every rank. The
// result is always a permutation of [0, Size(h)) (see TestReorderBijection).
func (ro *Reorderer) Table() []int {
	t := make([]int, ro.n)
	ro.TableInto(t)
	return t
}

// TableInto is Table writing into a caller-provided slice of length
// Size(h). It walks the ranks as an odometer, so the whole table costs
// O(n) rather than n divide loops, and allocates nothing beyond one
// k-element odometer.
func (ro *Reorderer) TableInto(t []int) {
	if len(t) != ro.n {
		panic(fmt.Sprintf("mixedradix: TableInto destination has %d entries, hierarchy enumerates %d", len(t), ro.n))
	}
	k := len(ro.h)
	c := make([]int, k)
	nr := 0
	for r := 0; r < ro.n; r++ {
		t[r] = nr
		for i := k - 1; i >= 0; i-- {
			if c[i]+1 < ro.h[i] {
				c[i]++
				nr += ro.weights[i]
				break
			}
			nr -= c[i] * ro.weights[i]
			c[i] = 0
		}
	}
}

// InverseTable returns inv with inv[new] = old: for each reordered rank,
// the original rank (hence the original core) it is placed on. This is the
// rankfile view of the mapping.
func (ro *Reorderer) InverseTable() []int {
	inv := make([]int, ro.n)
	ro.InverseTableInto(inv)
	return inv
}

// InverseTableInto is InverseTable writing into a caller-provided slice of
// length Size(h), built directly without materializing the forward table.
func (ro *Reorderer) InverseTableInto(inv []int) {
	if len(inv) != ro.n {
		panic(fmt.Sprintf("mixedradix: InverseTableInto destination has %d entries, hierarchy enumerates %d", len(inv), ro.n))
	}
	k := len(ro.h)
	c := make([]int, k)
	nr := 0
	for r := 0; r < ro.n; r++ {
		inv[nr] = r
		for i := k - 1; i >= 0; i-- {
			if c[i]+1 < ro.h[i] {
				c[i]++
				nr += ro.weights[i]
				break
			}
			nr -= c[i] * ro.weights[i]
			c[i] = 0
		}
	}
}

// TablePool recycles rank-table scratch for hot search loops (the advisor
// evaluates thousands of orders per request; without pooling every
// evaluation allocates an n-entry table). The zero value is ready to use
// and safe for concurrent use.
type TablePool struct {
	p sync.Pool
}

// Get returns a slice of length n, reusing a pooled buffer when one with
// enough capacity is available. The contents are unspecified.
func (tp *TablePool) Get(n int) []int {
	if v, _ := tp.p.Get().(*[]int); v != nil && cap(*v) >= n {
		return (*v)[:n]
	}
	return make([]int, n)
}

// Put hands a buffer back to the pool. The caller must not use s again.
func (tp *TablePool) Put(s []int) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	tp.p.Put(&s)
}

// ReorderAll is a convenience wrapper returning Table for (h, sigma).
func ReorderAll(h, sigma []int) ([]int, error) {
	ro, err := NewReorderer(h, sigma)
	if err != nil {
		return nil, err
	}
	return ro.Table(), nil
}

// PermutedHierarchy returns [h_{σ(0)}, h_{σ(1)}, …]: the "permuted
// hierarchy" column of Table 1, pairing position-by-position with
// PermutedCoordinates (position 0 is the fastest-varying level of the new
// enumeration).
func PermutedHierarchy(h, sigma []int) []int {
	return perm.Apply(sigma, h)
}

// PermutedCoordinates returns [c_{σ(0)}, c_{σ(1)}, …]: the "permuted
// coordinates" column of Table 1.
func PermutedCoordinates(c, sigma []int) []int {
	return perm.Apply(sigma, c)
}

// IdentityOrder returns the order that leaves the enumeration unchanged,
// [k-1, …, 0] (Figure 2f): Algorithm 2 with this order inverts Algorithm 1.
func IdentityOrder(k int) []int { return perm.Reversed(k) }

// ReorderedHierarchy returns the hierarchy of the new enumeration produced
// by sigma, listed outermost (most significant) level first like h itself:
// element j is h[sigma[k-1-j]]. Decomposing a reordered rank against this
// hierarchy yields its coordinates in the new enumeration.
func ReorderedHierarchy(h, sigma []int) []int {
	k := len(h)
	out := make([]int, k)
	for j := 0; j < k; j++ {
		out[j] = h[sigma[k-1-j]]
	}
	return out
}

// UndoOrder returns the order τ that inverts a reordering: reordering h by
// sigma and then reordering ReorderedHierarchy(h, sigma) by τ restores every
// original rank. τ(i) = k-1-σ⁻¹(k-1-i).
func UndoOrder(sigma []int) []int {
	k := len(sigma)
	inv := perm.Inverse(sigma)
	tau := make([]int, k)
	for i := 0; i < k; i++ {
		tau[i] = k - 1 - inv[k-1-i]
	}
	return tau
}
