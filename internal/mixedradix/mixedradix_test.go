package mixedradix

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/perm"
)

// Figure 1: hierarchy ⟦2,2,4⟧, rank 10 is node 1, socket 0, core 2.
func TestDecomposeFigure1(t *testing.T) {
	h := []int{2, 2, 4}
	got := Decompose(h, 10)
	want := []int{1, 0, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Decompose(%v, 10) = %v, want %v", h, got, want)
	}
}

func TestDecomposeAllRanksFigure1(t *testing.T) {
	h := []int{2, 2, 4}
	// Expected coordinates for the initial enumeration of Figure 1.
	for r := 0; r < 16; r++ {
		c := Decompose(h, r)
		wantNode := r / 8
		wantSocket := (r / 4) % 2
		wantCore := r % 4
		if c[0] != wantNode || c[1] != wantSocket || c[2] != wantCore {
			t.Errorf("rank %d -> %v, want [%d %d %d]", r, c, wantNode, wantSocket, wantCore)
		}
	}
}

// Table 1 of the paper: rank 10 on ⟦2,2,4⟧ under all six orders.
func TestTable1(t *testing.T) {
	h := []int{2, 2, 4}
	c := Decompose(h, 10)
	rows := []struct {
		order      []int
		permCoords []int
		permHier   []int
		newRank    int
	}{
		{[]int{0, 1, 2}, []int{1, 0, 2}, []int{2, 2, 4}, 9},
		{[]int{0, 2, 1}, []int{1, 2, 0}, []int{2, 4, 2}, 5},
		{[]int{1, 0, 2}, []int{0, 1, 2}, []int{2, 2, 4}, 10},
		{[]int{1, 2, 0}, []int{0, 2, 1}, []int{2, 4, 2}, 12},
		{[]int{2, 0, 1}, []int{2, 1, 0}, []int{4, 2, 2}, 6},
		{[]int{2, 1, 0}, []int{2, 0, 1}, []int{4, 2, 2}, 10},
	}
	for _, row := range rows {
		if got := Compose(h, c, row.order); got != row.newRank {
			t.Errorf("order %v: new rank %d, want %d", row.order, got, row.newRank)
		}
		if got := PermutedCoordinates(c, row.order); !reflect.DeepEqual(got, row.permCoords) {
			t.Errorf("order %v: permuted coords %v, want %v", row.order, got, row.permCoords)
		}
		if got := PermutedHierarchy(h, row.order); !reflect.DeepEqual(got, row.permHier) {
			t.Errorf("order %v: permuted hierarchy %v, want %v", row.order, got, row.permHier)
		}
		if got := NewRank(h, 10, row.order); got != row.newRank {
			t.Errorf("NewRank order %v = %d, want %d", row.order, got, row.newRank)
		}
	}
}

// The order [k-1,…,0] must reproduce the original enumeration (Figure 2f).
func TestIdentityOrder(t *testing.T) {
	h := []int{2, 2, 4}
	id := IdentityOrder(len(h))
	for r := 0; r < Size(h); r++ {
		if got := NewRank(h, r, id); got != r {
			t.Errorf("identity order moved rank %d to %d", r, got)
		}
	}
}

// Figure 2 layouts: reordered rank of each core for every order of ⟦2,2,4⟧.
// The numbers in each subfigure, read core by core in the initial
// enumeration, are exactly Table() of the order.
func TestFigure2Layouts(t *testing.T) {
	h := []int{2, 2, 4}
	want := map[string][]int{
		"0-1-2": {0, 4, 8, 12, 2, 6, 10, 14, 1, 5, 9, 13, 3, 7, 11, 15},
		"0-2-1": {0, 2, 4, 6, 8, 10, 12, 14, 1, 3, 5, 7, 9, 11, 13, 15},
		"1-0-2": {0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15},
		"1-2-0": {0, 2, 4, 6, 1, 3, 5, 7, 8, 10, 12, 14, 9, 11, 13, 15},
		"2-0-1": {0, 1, 2, 3, 8, 9, 10, 11, 4, 5, 6, 7, 12, 13, 14, 15},
		"2-1-0": {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
	}
	for name, layout := range want {
		sigma, err := perm.Parse(name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReorderAll(h, sigma)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, layout) {
			t.Errorf("order %s layout = %v, want %v", name, got, layout)
		}
	}
}

func TestSize(t *testing.T) {
	cases := []struct {
		h    []int
		want int
	}{
		{[]int{2, 2, 4}, 16},
		{[]int{16, 2, 2, 8}, 512},
		{[]int{16, 2, 4, 2, 8}, 2048},
		{[]int{2}, 2},
	}
	for _, c := range cases {
		if got := Size(c.h); got != c.want {
			t.Errorf("Size(%v) = %d, want %d", c.h, got, c.want)
		}
	}
}

func TestCheckHierarchy(t *testing.T) {
	if err := CheckHierarchy([]int{2, 2, 4}); err != nil {
		t.Errorf("valid hierarchy rejected: %v", err)
	}
	for _, bad := range [][]int{{}, {1, 2}, {2, 0}, {2, -3}} {
		if err := CheckHierarchy(bad); err == nil {
			t.Errorf("CheckHierarchy(%v) should fail", bad)
		}
	}
}

func TestDecomposeChecked(t *testing.T) {
	if _, err := DecomposeChecked([]int{2, 2}, 4); err == nil {
		t.Error("rank 4 on size-4 hierarchy should fail")
	}
	if _, err := DecomposeChecked([]int{2, 2}, -1); err == nil {
		t.Error("negative rank should fail")
	}
	if _, err := DecomposeChecked([]int{1}, 0); err == nil {
		t.Error("bad hierarchy should fail")
	}
	c, err := DecomposeChecked([]int{2, 3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, []int{1, 2}) {
		t.Errorf("DecomposeChecked = %v", c)
	}
}

func TestComposeChecked(t *testing.T) {
	h := []int{2, 2, 4}
	if _, err := ComposeChecked(h, []int{0, 0, 4}, []int{0, 1, 2}); err == nil {
		t.Error("coordinate out of radix should fail")
	}
	if _, err := ComposeChecked(h, []int{0, 0}, []int{0, 1, 2}); err == nil {
		t.Error("short coordinates should fail")
	}
	if _, err := ComposeChecked(h, []int{0, 0, 0}, []int{0, 0, 2}); err == nil {
		t.Error("invalid order should fail")
	}
	if _, err := ComposeChecked(h, []int{0, 0, 0}, []int{0, 1}); err == nil {
		t.Error("short order should fail")
	}
	r, err := ComposeChecked(h, []int{1, 0, 2}, []int{0, 1, 2})
	if err != nil || r != 9 {
		t.Errorf("ComposeChecked = %d, %v; want 9, nil", r, err)
	}
}

func TestReordererTableAndInverse(t *testing.T) {
	ro, err := NewReorderer([]int{2, 2, 4}, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	tab := ro.Table()
	inv := ro.InverseTable()
	for old, nw := range tab {
		if inv[nw] != old {
			t.Errorf("inverse table mismatch at old=%d new=%d", old, nw)
		}
	}
	if ro.Size() != 16 {
		t.Errorf("Size = %d", ro.Size())
	}
	if !reflect.DeepEqual(ro.Hierarchy(), []int{2, 2, 4}) {
		t.Error("Hierarchy accessor mismatch")
	}
	if !reflect.DeepEqual(ro.Order(), []int{0, 1, 2}) {
		t.Error("Order accessor mismatch")
	}
}

func TestNewReordererErrors(t *testing.T) {
	if _, err := NewReorderer([]int{1}, []int{0}); err == nil {
		t.Error("bad hierarchy accepted")
	}
	if _, err := NewReorderer([]int{2, 2}, []int{0, 0}); err == nil {
		t.Error("bad order accepted")
	}
	if _, err := NewReorderer([]int{2, 2}, []int{0}); err == nil {
		t.Error("short order accepted")
	}
}

// Property: every order induces a bijection on [0, Size(h)).
func TestReorderBijection(t *testing.T) {
	hierarchies := [][]int{{2, 2, 4}, {3, 2, 2}, {2, 3, 4}, {4, 2, 2, 2}, {2, 2, 2, 2, 2}}
	for _, h := range hierarchies {
		for _, sigma := range perm.All(len(h)) {
			tab, err := ReorderAll(h, sigma)
			if err != nil {
				t.Fatal(err)
			}
			if !perm.IsPermutation(tab) {
				t.Errorf("h=%v sigma=%v: table %v is not a bijection", h, sigma, tab)
			}
		}
	}
}

// Property: Compose with the identity order inverts Decompose for random
// hierarchies and ranks.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(a, b, c uint8) bool {
		h := []int{int(a%5) + 2, int(b%5) + 2, int(c%5) + 2}
		r := rng.Intn(Size(h))
		return Compose(h, Decompose(h, r), IdentityOrder(3)) == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: UndoOrder inverts a reordering — reordering by sigma, then
// reordering the new enumeration's hierarchy by UndoOrder(sigma), restores
// every rank.
func TestUndoOrder(t *testing.T) {
	for _, h := range [][]int{{2, 3, 4}, {2, 2, 4}, {3, 2, 2, 2}} {
		for _, sigma := range perm.All(len(h)) {
			tab, err := ReorderAll(h, sigma)
			if err != nil {
				t.Fatal(err)
			}
			hp := ReorderedHierarchy(h, sigma)
			tab2, err := ReorderAll(hp, UndoOrder(sigma))
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < Size(h); r++ {
				if tab2[tab[r]] != r {
					t.Fatalf("h=%v sigma=%v: tab2[tab[%d]] = %d", h, sigma, r, tab2[tab[r]])
				}
			}
		}
	}
}

// ReorderedHierarchy must be the reverse of PermutedHierarchy, and the
// identity order must leave the hierarchy unchanged.
func TestReorderedHierarchy(t *testing.T) {
	h := []int{2, 3, 4}
	for _, sigma := range perm.All(3) {
		rh := ReorderedHierarchy(h, sigma)
		ph := PermutedHierarchy(h, sigma)
		for i := range rh {
			if rh[i] != ph[len(ph)-1-i] {
				t.Fatalf("sigma=%v: ReorderedHierarchy %v is not reversed PermutedHierarchy %v", sigma, rh, ph)
			}
		}
	}
	if got := ReorderedHierarchy(h, IdentityOrder(3)); !reflect.DeepEqual(got, h) {
		t.Errorf("identity order changed hierarchy: %v", got)
	}
}

func TestDecomposeIntoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong destination length")
		}
	}()
	DecomposeInto([]int{2, 2}, 0, make([]int, 3))
}

func TestDecomposePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range rank")
		}
	}()
	Decompose([]int{2, 2}, 4)
}

func BenchmarkNewRank(b *testing.B) {
	h := []int{16, 2, 4, 2, 8}
	sigma := []int{3, 2, 1, 4, 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewRank(h, i%2048, sigma)
	}
}

func BenchmarkReordererTable(b *testing.B) {
	ro, err := NewReorderer([]int{16, 2, 4, 2, 8}, []int{3, 2, 1, 4, 0})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ro.Table()
	}
}
