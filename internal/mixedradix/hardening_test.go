package mixedradix

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/perm"
)

func wantPanic(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", substr)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v (%T), want string", r, r)
		}
		if !strings.Contains(msg, substr) {
			t.Fatalf("panic %q does not contain %q", msg, substr)
		}
	}()
	fn()
}

// TestSizeRejectsNonPositiveRadix is the regression test for the silent
// zero: Size([2, 0, 4]) used to return 0 (the overflow guard skipped
// v == 0), after which DecomposeInto divided by zero. Both entry points
// must now reject the radix explicitly.
func TestSizeRejectsNonPositiveRadix(t *testing.T) {
	wantPanic(t, "non-positive size", func() { Size([]int{2, 0, 4}) })
	wantPanic(t, "non-positive size", func() { Size([]int{-3}) })
	wantPanic(t, "non-positive size", func() {
		DecomposeInto([]int{2, 0, 4}, 1, make([]int, 3))
	})
	wantPanic(t, "non-positive size", func() { Decompose([]int{0}, 0) })
	// Size of a valid hierarchy is unchanged.
	if got := Size([]int{2, 2, 4}); got != 16 {
		t.Fatalf("Size = %d, want 16", got)
	}
}

// TestDecomposeIntoRangeChecks: the hot path no longer recomputes Size
// per call, so out-of-range ranks are detected from the leftover
// quotient; the panic must still name the rank and the true range.
func TestDecomposeIntoRangeChecks(t *testing.T) {
	wantPanic(t, "rank 16 out of range [0, 16)", func() {
		DecomposeInto([]int{2, 2, 4}, 16, make([]int, 3))
	})
	wantPanic(t, "rank -1 out of range [0, 16)", func() {
		DecomposeInto([]int{2, 2, 4}, -1, make([]int, 3))
	})
	c := make([]int, 3)
	DecomposeInto([]int{2, 2, 4}, 15, c)
	if !reflect.DeepEqual(c, []int{1, 1, 3}) {
		t.Fatalf("DecomposeInto(15) = %v", c)
	}
}

// TestComposeCheckedWrongLengthOrder is the regression test for the check
// ordering: a wrong-length order like [2, 0] is a valid set of level
// indices for a depth-3 hierarchy but not a permutation of [0, 2), and
// used to be misreported as "not a permutation" instead of wrong length.
func TestComposeCheckedWrongLengthOrder(t *testing.T) {
	_, err := ComposeChecked([]int{2, 2, 4}, []int{0, 0, 0}, []int{2, 0})
	if err == nil {
		t.Fatal("expected error for wrong-length order")
	}
	if !errors.Is(err, ErrBadHierarchy) {
		t.Fatalf("error %v is not ErrBadHierarchy", err)
	}
	want := "order has 2 levels, hierarchy has 3"
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not report the length mismatch %q", err, want)
	}
	// Same for NewReorderer, which shares CheckOrder.
	if _, err := NewReorderer([]int{2, 2, 4}, []int{2, 0}); err == nil || !strings.Contains(err.Error(), want) {
		t.Fatalf("NewReorderer error %v does not report the length mismatch", err)
	}
	// A genuinely invalid permutation of the right length still reports as such.
	if _, err := ComposeChecked([]int{2, 2, 4}, []int{0, 0, 0}, []int{0, 0, 2}); !errors.Is(err, perm.ErrNotPermutation) {
		t.Fatalf("error %v is not ErrNotPermutation", err)
	}
}

// TestTableInto checks the allocation-free odometer path against the
// per-rank NewRank definition, plus the destination-length panics.
func TestTableInto(t *testing.T) {
	for _, tc := range []struct {
		h     []int
		sigma []int
	}{
		{[]int{2, 2, 4}, []int{0, 1, 2}},
		{[]int{2, 2, 4}, []int{2, 1, 0}},
		{[]int{3, 2, 5}, []int{1, 2, 0}},
		{[]int{16, 2, 2, 8}, []int{2, 0, 3, 1}},
		{[]int{7}, []int{0}},
	} {
		ro, err := NewReorderer(tc.h, tc.sigma)
		if err != nil {
			t.Fatal(err)
		}
		n := ro.Size()
		want := make([]int, n)
		for r := 0; r < n; r++ {
			want[r] = ro.NewRank(r)
		}
		got := make([]int, n)
		ro.TableInto(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("TableInto(%v, %v) = %v, want %v", tc.h, tc.sigma, got, want)
		}
		if !reflect.DeepEqual(ro.Table(), want) {
			t.Fatalf("Table mismatch for (%v, %v)", tc.h, tc.sigma)
		}
		inv := make([]int, n)
		ro.InverseTableInto(inv)
		for old, nw := range want {
			if inv[nw] != old {
				t.Fatalf("InverseTableInto(%v, %v): inv[%d] = %d, want %d", tc.h, tc.sigma, nw, inv[nw], old)
			}
		}
		if !reflect.DeepEqual(ro.InverseTable(), inv) {
			t.Fatalf("InverseTable mismatch for (%v, %v)", tc.h, tc.sigma)
		}
	}
	ro, err := NewReorderer([]int{2, 2}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	wantPanic(t, "TableInto destination", func() { ro.TableInto(make([]int, 3)) })
	wantPanic(t, "InverseTableInto destination", func() { ro.InverseTableInto(make([]int, 5)) })
}

// TestNewRankAllocationFree pins down the point of the precomputed
// weights: repeated NewRank calls must not allocate.
func TestNewRankAllocationFree(t *testing.T) {
	ro, err := NewReorderer([]int{16, 2, 4, 2, 8}, []int{3, 2, 1, 4, 0})
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for r := 0; r < 64; r++ {
			_ = ro.NewRank(r)
		}
	})
	if allocs != 0 {
		t.Fatalf("NewRank allocates %.1f times per run, want 0", allocs)
	}
}

// TestReordererConcurrent shares one Reorderer between many goroutines.
// The old implementation kept a scratch coordinate slice per Reorderer
// and documented itself "not safe for concurrent use" — nothing stopped
// advisor workers or mapd handlers from sharing one anyway. Run under
// -race (make check does) this test would have caught that design; the
// rewritten Reorderer is immutable and must pass.
func TestReordererConcurrent(t *testing.T) {
	ro, err := NewReorderer([]int{4, 3, 2, 2}, []int{2, 0, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	n := ro.Size()
	want := ro.Table()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]int, n)
			for iter := 0; iter < 50; iter++ {
				switch (g + iter) % 3 {
				case 0:
					for r := 0; r < n; r++ {
						if got := ro.NewRank(r); got != want[r] {
							t.Errorf("NewRank(%d) = %d, want %d", r, got, want[r])
							return
						}
					}
				case 1:
					ro.TableInto(buf)
					if !reflect.DeepEqual(buf, want) {
						t.Error("TableInto diverged under concurrency")
						return
					}
				case 2:
					ro.InverseTableInto(buf)
					for old, nw := range want {
						if buf[nw] != old {
							t.Error("InverseTableInto diverged under concurrency")
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestTablePool checks the scratch pool recycles capacity and tolerates
// mixed sizes and empty buffers.
func TestTablePool(t *testing.T) {
	var tp TablePool
	s := tp.Get(16)
	if len(s) != 16 {
		t.Fatalf("Get(16) returned len %d", len(s))
	}
	for i := range s {
		s[i] = i
	}
	tp.Put(s)
	r := tp.Get(8)
	if len(r) != 8 {
		t.Fatalf("Get(8) returned len %d", len(r))
	}
	tp.Put(r)
	big := tp.Get(1024)
	if len(big) != 1024 {
		t.Fatalf("Get(1024) returned len %d", len(big))
	}
	tp.Put(nil) // must not panic
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b := tp.Get(64)
				b[0] = i
				tp.Put(b)
			}
		}()
	}
	wg.Wait()
}
