package study

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/cluster"
)

func TestStudyQuantifiesTheHeadlines(t *testing.T) {
	cfg := bench.Config{
		Spec:      cluster.Hydra(16, 1),
		Hierarchy: cluster.HydraHierarchy(16),
		CommSize:  16,
		Coll:      bench.Alltoall,
		Iters:     1,
	}
	res, err := Run(cfg, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 24 {
		t.Fatalf("%d rows, want 24", len(res.Rows))
	}
	// §4.1.3 quantified: spreading helps a lone communicator…
	if res.SpreadVsOne < 0.5 {
		t.Errorf("spread↔one-comm correlation %v, want strongly positive", res.SpreadVsOne)
	}
	// …and hurts when every communicator runs (contention).
	if res.SpreadVsAll > -0.5 {
		t.Errorf("spread↔all-comm correlation %v, want strongly negative", res.SpreadVsAll)
	}
	out := res.Render()
	for _, want := range []string{"order study", "correlations", "0-1-2-3", "3-2-1-0"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q", want)
		}
	}
}

func TestStudyRingCostMattersForAllreduce(t *testing.T) {
	if testing.Short() {
		t.Skip("24-order sweep")
	}
	// For the ring-structured Allreduce, a lower ring cost means cheaper
	// neighbour hops: ring cost must anticorrelate with bandwidth under
	// contention (Figure 6's "rank order inside communicators matters").
	cfg := bench.Config{
		Spec:      cluster.Hydra(8, 1),
		Hierarchy: cluster.HydraHierarchy(8),
		CommSize:  64,
		Coll:      bench.Allreduce,
		Iters:     1,
	}
	res, err := Run(cfg, 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	if res.RingVsAll > -0.3 {
		t.Errorf("ring-cost↔all-comm correlation %v, want negative", res.RingVsAll)
	}
}
