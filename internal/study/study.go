// Package study pursues the paper's first future-work direction (§5):
// "we would like to better understand which application properties and
// cluster characteristics impact the performance obtained with different
// orders. This knowledge could help to predict which order is the most
// suitable." It measures every order of a machine on the simulator and
// correlates the §3.3 characterization metrics (spread score, ring cost)
// with the achieved bandwidth, separately for the one-communicator and
// all-communicators scenarios — quantifying the paper's qualitative
// observations (spread helps alone, hurts under contention; ring cost
// matters for neighbour-structured collectives).
package study

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bench"
	"repro/internal/metrics"
	"repro/internal/perm"
	"repro/internal/trace"
)

// Row is one order's metrics and measurements.
type Row struct {
	Order       []int
	RingCost    int
	SpreadScore float64
	OneComm     float64 // bandwidth, B/s
	AllComms    float64
}

// Result is a full study: all orders of the machine at one size.
type Result struct {
	Config bench.Config
	Size   int64
	Rows   []Row

	// Correlations of bandwidth with the metrics (Pearson, over orders).
	SpreadVsOne float64 // spread score ↔ one-comm bandwidth
	SpreadVsAll float64 // spread score ↔ all-comms bandwidth
	RingVsOne   float64
	RingVsAll   float64
}

// Run measures every order of the hierarchy (k! runs × 2 scenarios).
func Run(cfg bench.Config, size int64) (*Result, error) {
	if cfg.Iters <= 0 {
		cfg.Iters = 1
	}
	orders := perm.All(cfg.Hierarchy.Depth())
	res := &Result{Config: cfg, Size: size}
	for _, sigma := range orders {
		ch, err := metrics.Characterize(cfg.Hierarchy, sigma, cfg.CommSize)
		if err != nil {
			return nil, err
		}
		one, err := bench.Measure(cfg, sigma, size, false)
		if err != nil {
			return nil, err
		}
		all, err := bench.Measure(cfg, sigma, size, true)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{
			Order:       append([]int(nil), sigma...),
			RingCost:    ch.RingCost,
			SpreadScore: ch.SpreadScore(),
			OneComm:     one.Bandwidth,
			AllComms:    all.Bandwidth,
		})
	}
	spread := make([]float64, len(res.Rows))
	ring := make([]float64, len(res.Rows))
	one := make([]float64, len(res.Rows))
	all := make([]float64, len(res.Rows))
	for i, r := range res.Rows {
		spread[i] = r.SpreadScore
		ring[i] = float64(r.RingCost)
		one[i] = r.OneComm
		all[i] = r.AllComms
	}
	res.SpreadVsOne = trace.Pearson(spread, one)
	res.SpreadVsAll = trace.Pearson(spread, all)
	res.RingVsOne = trace.Pearson(ring, one)
	res.RingVsAll = trace.Pearson(ring, all)
	return res, nil
}

// Render prints the study as a sorted table plus the correlation summary.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "order study — %s, %s, %d ranks/comm, %d bytes\n",
		r.Config.Hierarchy, r.Config.Coll, r.Config.CommSize, r.Size)
	fmt.Fprintf(&b, "%-12s %10s %8s %14s %14s\n",
		"order", "ringcost", "spread", "1comm MB/s", "all MB/s")
	rows := append([]Row(nil), r.Rows...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].AllComms > rows[j].AllComms })
	for _, row := range rows {
		fmt.Fprintf(&b, "%-12s %10d %8.2f %14.0f %14.0f\n",
			perm.Format(row.Order), row.RingCost, row.SpreadScore,
			row.OneComm/1e6, row.AllComms/1e6)
	}
	fmt.Fprintf(&b, "correlations (Pearson over %d orders):\n", len(r.Rows))
	fmt.Fprintf(&b, "  spread score vs 1-comm bandwidth:   %+0.2f\n", r.SpreadVsOne)
	fmt.Fprintf(&b, "  spread score vs all-comm bandwidth: %+0.2f\n", r.SpreadVsAll)
	fmt.Fprintf(&b, "  ring cost    vs 1-comm bandwidth:   %+0.2f\n", r.RingVsOne)
	fmt.Fprintf(&b, "  ring cost    vs all-comm bandwidth: %+0.2f\n", r.RingVsAll)
	return b.String()
}
