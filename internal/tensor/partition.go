// Medium-grained partitioning: the 3D block decomposition SPLATT uses to
// distribute a tensor over a p₁×p₂×p₃ process grid. Each process owns the
// block of nonzeros whose mode-m indices fall in its grid slice; the layer
// communicators of the distributed CPD group processes sharing a grid
// coordinate.

package tensor

import "fmt"

// Grid is a 3D process grid.
type Grid [Order]int

// Size returns the number of processes of the grid.
func (g Grid) Size() int { return g[0] * g[1] * g[2] }

// Check validates the grid.
func (g Grid) Check() error {
	for m, v := range g {
		if v <= 0 {
			return fmt.Errorf("tensor: grid dimension %d is %d", m, v)
		}
	}
	return nil
}

// CoordOf returns the grid coordinate of a process rank, with the last
// grid dimension varying fastest (rank = i·p₂·p₃ + j·p₃ + k).
func (g Grid) CoordOf(rank int) [Order]int {
	return [Order]int{
		rank / (g[1] * g[2]),
		(rank / g[2]) % g[1],
		rank % g[2],
	}
}

// RankOf is the inverse of CoordOf.
func (g Grid) RankOf(c [Order]int) int {
	return c[0]*g[1]*g[2] + c[1]*g[2] + c[2]
}

// LayerIndex returns, for the given mode, which layer communicator the
// rank belongs to (processes with equal grid coordinate along the mode)
// and its rank within that layer.
func (g Grid) LayerIndex(rank, mode int) (layer, inLayer int) {
	c := g.CoordOf(rank)
	layer = c[mode]
	// Flatten the other two coordinates in mode order.
	m1 := (mode + 1) % Order
	m2 := (mode + 2) % Order
	inLayer = c[m1]*g[m2] + c[m2]
	return layer, inLayer
}

// LayerSize returns the number of processes per layer of a mode.
func (g Grid) LayerSize(mode int) int { return g.Size() / g[mode] }

// Partition holds the per-process nonzero counts of a blocked tensor.
type Partition struct {
	Grid Grid
	// NNZ[rank] is the number of nonzeros in the process's block.
	NNZ []int
	// RowsOwned[m][rank] is the number of mode-m factor rows whose slice
	// intersects the process's layer (dims[m]/grid[m], block distributed).
	RowsOwned [Order][]int
	// DistinctRows[m][rank] is the number of distinct mode-m indices in the
	// process's block — the factor rows its fold/expand actually exchanges.
	DistinctRows [Order][]int
}

// PartitionTensor assigns each nonzero to the process owning its block
// under an even block split of every mode.
func PartitionTensor(t *Tensor, g Grid) (*Partition, error) {
	if err := g.Check(); err != nil {
		return nil, err
	}
	if err := t.Check(); err != nil {
		return nil, err
	}
	p := &Partition{Grid: g, NNZ: make([]int, g.Size())}
	blockOf := func(idx int32, dim, parts int) int {
		// Even block split: boundaries at dim·i/parts.
		b := int(int64(idx) * int64(parts) / int64(dim))
		if b >= parts {
			b = parts - 1
		}
		return b
	}
	distinct := [Order][]map[int32]struct{}{}
	for m := 0; m < Order; m++ {
		distinct[m] = make([]map[int32]struct{}, g.Size())
	}
	for _, c := range t.Inds {
		var gc [Order]int
		for m := 0; m < Order; m++ {
			gc[m] = blockOf(c[m], t.Dims[m], g[m])
		}
		rank := g.RankOf(gc)
		p.NNZ[rank]++
		for m := 0; m < Order; m++ {
			if distinct[m][rank] == nil {
				distinct[m][rank] = make(map[int32]struct{})
			}
			distinct[m][rank][c[m]] = struct{}{}
		}
	}
	for m := 0; m < Order; m++ {
		p.DistinctRows[m] = make([]int, g.Size())
		for rank := range p.DistinctRows[m] {
			p.DistinctRows[m][rank] = len(distinct[m][rank])
		}
	}
	for m := 0; m < Order; m++ {
		p.RowsOwned[m] = make([]int, g.Size())
		for rank := 0; rank < g.Size(); rank++ {
			gc := g.CoordOf(rank)
			lo := t.Dims[m] * gc[m] / g[m]
			hi := t.Dims[m] * (gc[m] + 1) / g[m]
			p.RowsOwned[m][rank] = hi - lo
		}
	}
	return p, nil
}

// MaxNNZ returns the heaviest block (load imbalance diagnostic).
func (p *Partition) MaxNNZ() int {
	mx := 0
	for _, n := range p.NNZ {
		if n > mx {
			mx = n
		}
	}
	return mx
}

// TotalNNZ returns the sum of all blocks.
func (p *Partition) TotalNNZ() int {
	s := 0
	for _, n := range p.NNZ {
		s += n
	}
	return s
}
