// Sequential CP-ALS: the Canonical Polyadic Decomposition computed by
// alternating least squares, exactly the operation the paper benchmarks in
// Splatt (§4.2). The distributed run simulated in package splatt uses the
// same per-iteration structure; this sequential version verifies the
// numerics.

package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// CPResult is a rank-R decomposition: weights λ and one factor matrix per
// mode (Dims[m] × R).
type CPResult struct {
	Lambda  []float64
	Factors [Order]*Matrix
	Fits    []float64 // fit after each iteration
}

// Fit returns the final fit (1 − relative reconstruction error).
func (c *CPResult) Fit() float64 {
	if len(c.Fits) == 0 {
		return 0
	}
	return c.Fits[len(c.Fits)-1]
}

// CPALSOptions controls the solver.
type CPALSOptions struct {
	Rank     int
	MaxIters int
	Tol      float64 // stop when the fit improves less than Tol
	Seed     int64
}

// CPALS factorizes the tensor with alternating least squares.
func CPALS(t *Tensor, opt CPALSOptions) (*CPResult, error) {
	if opt.Rank <= 0 {
		return nil, fmt.Errorf("tensor: CP rank must be positive")
	}
	if opt.MaxIters <= 0 {
		opt.MaxIters = 50
	}
	if err := t.Check(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	r := opt.Rank
	var factors [Order]*Matrix
	for m := 0; m < Order; m++ {
		factors[m] = RandomMatrix(t.Dims[m], r, rng)
	}
	grams := [Order]*Matrix{}
	for m := 0; m < Order; m++ {
		grams[m] = factors[m].Gram()
	}
	lambda := make([]float64, r)
	normX := math.Sqrt(t.NormSquared())
	if normX == 0 {
		return nil, fmt.Errorf("tensor: zero tensor")
	}
	res := &CPResult{Lambda: lambda, Factors: factors}
	prevFit := 0.0
	mttkrpOut := [Order]*Matrix{}
	for m := 0; m < Order; m++ {
		mttkrpOut[m] = NewMatrix(t.Dims[m], r)
	}
	for it := 0; it < opt.MaxIters; it++ {
		for m := 0; m < Order; m++ {
			MTTKRP(t, m, factors, mttkrpOut[m])
			// G = ∘ of the other modes' Grams.
			g := NewMatrix(r, r)
			for i := range g.Data {
				g.Data[i] = 1
			}
			for o := 0; o < Order; o++ {
				if o != m {
					g.Hadamard(grams[o])
				}
			}
			factors[m] = mttkrpOut[m].Clone()
			SolveSPD(g, factors[m])
			normalizeColumns(factors[m], lambda, it == 0)
			grams[m] = factors[m].Gram()
		}
		fit := cpFit(t, normX, lambda, factors, grams, mttkrpOut[Order-1])
		res.Fits = append(res.Fits, fit)
		if it > 0 && math.Abs(fit-prevFit) < opt.Tol {
			break
		}
		prevFit = fit
	}
	return res, nil
}

// normalizeColumns scales each column to unit norm, accumulating the norms
// into lambda. After the first iteration, columns are normalized by max(1,
// norm) like SPLATT to avoid blowing up tiny columns.
func normalizeColumns(m *Matrix, lambda []float64, firstIter bool) {
	r := m.Cols
	for q := 0; q < r; q++ {
		var norm float64
		for i := 0; i < m.Rows; i++ {
			v := m.At(i, q)
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if !firstIter && norm < 1 {
			norm = 1
		}
		lambda[q] = norm
		if norm == 0 {
			continue
		}
		for i := 0; i < m.Rows; i++ {
			m.Set(i, q, m.At(i, q)/norm)
		}
	}
}

// cpFit evaluates the fit 1 − ‖X − X̂‖/‖X‖ with the standard shortcut using
// the last mode's MTTKRP result (computed against the pre-update factors,
// so it recomputes the MTTKRP against the final ones for exactness).
func cpFit(t *Tensor, normX float64, lambda []float64, factors [Order]*Matrix, grams [Order]*Matrix, scratch *Matrix) float64 {
	r := len(lambda)
	// ‖X̂‖² = Σ_{q,s} λ_q λ_s Π_m (A_mᵀA_m)[q,s]
	normEst := 0.0
	prod := NewMatrix(r, r)
	for i := range prod.Data {
		prod.Data[i] = 1
	}
	for m := 0; m < Order; m++ {
		prod.Hadamard(grams[m])
	}
	for q := 0; q < r; q++ {
		for s := 0; s < r; s++ {
			normEst += lambda[q] * lambda[s] * prod.At(q, s)
		}
	}
	// <X, X̂> via a fresh MTTKRP for the last mode.
	last := Order - 1
	MTTKRP(t, last, factors, scratch)
	inner := 0.0
	for i := 0; i < scratch.Rows; i++ {
		mr := scratch.Row(i)
		fr := factors[last].Row(i)
		for q := 0; q < r; q++ {
			inner += lambda[q] * mr[q] * fr[q]
		}
	}
	residual := normX*normX + normEst - 2*inner
	if residual < 0 {
		residual = 0
	}
	return 1 - math.Sqrt(residual)/normX
}

// FlopsPerMTTKRP estimates the floating-point work of one MTTKRP sweep:
// 3R multiplies/adds per nonzero.
func FlopsPerMTTKRP(nnz, rank int) float64 {
	return 3 * float64(nnz) * float64(rank)
}

// BytesPerMTTKRP estimates the memory traffic of one MTTKRP sweep: the
// nonzero stream (coords + value) plus two factor-row reads and one
// accumulator update per nonzero.
func BytesPerMTTKRP(nnz, rank int) float64 {
	return float64(nnz) * (float64(Order*4+8) + 3*8*float64(rank))
}
