package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func smallTensor() *Tensor {
	return &Tensor{
		Dims: [Order]int{2, 3, 2},
		Inds: []Coord{{0, 0, 0}, {0, 2, 1}, {1, 1, 0}, {1, 2, 1}},
		Vals: []float64{1, 2, 3, 4},
	}
}

func TestCheck(t *testing.T) {
	ts := smallTensor()
	if err := ts.Check(); err != nil {
		t.Fatal(err)
	}
	bad := smallTensor()
	bad.Inds[0][1] = 5
	if err := bad.Check(); err == nil {
		t.Error("out-of-range index accepted")
	}
	bad2 := smallTensor()
	bad2.Vals = bad2.Vals[:2]
	if err := bad2.Check(); err == nil {
		t.Error("length mismatch accepted")
	}
	bad3 := smallTensor()
	bad3.Dims[0] = 0
	if err := bad3.Check(); err == nil {
		t.Error("zero dimension accepted")
	}
}

func TestNormSquared(t *testing.T) {
	if got := smallTensor().NormSquared(); got != 1+4+9+16 {
		t.Errorf("NormSquared = %v", got)
	}
}

func TestSort(t *testing.T) {
	ts := smallTensor()
	ts.Sort(1) // by mode 1, then 2, then 0
	for i := 1; i < ts.NNZ(); i++ {
		if ts.Inds[i-1][1] > ts.Inds[i][1] {
			t.Fatalf("not sorted by mode 1: %v", ts.Inds)
		}
	}
	// Values must travel with their coordinates.
	for i, c := range ts.Inds {
		switch c {
		case Coord{0, 0, 0}:
			if ts.Vals[i] != 1 {
				t.Error("value detached from coordinate")
			}
		case Coord{1, 2, 1}:
			if ts.Vals[i] != 4 {
				t.Error("value detached from coordinate")
			}
		}
	}
}

func TestSyntheticProperties(t *testing.T) {
	dims := [Order]int{50, 40, 30}
	ts := Synthetic(dims, 500, 42)
	if err := ts.Check(); err != nil {
		t.Fatal(err)
	}
	if ts.NNZ() != 500 {
		t.Errorf("NNZ = %d, want 500", ts.NNZ())
	}
	// Determinism.
	ts2 := Synthetic(dims, 500, 42)
	if ts2.NNZ() != ts.NNZ() {
		t.Error("generator not deterministic in nnz")
	}
	for i := range ts.Inds {
		if ts.Inds[i] != ts2.Inds[i] || ts.Vals[i] != ts2.Vals[i] {
			t.Fatal("generator not deterministic")
		}
	}
	// Skew: the top 5% most frequent mode-0 slices should hold far more
	// than 5% of nonzeros.
	counts := make([]int, dims[0])
	for _, c := range ts.Inds {
		counts[c[0]]++
	}
	sortedCounts := append([]int(nil), counts...)
	for i := 1; i < len(sortedCounts); i++ { // insertion sort descending
		for j := i; j > 0 && sortedCounts[j] > sortedCounts[j-1]; j-- {
			sortedCounts[j], sortedCounts[j-1] = sortedCounts[j-1], sortedCounts[j]
		}
	}
	hot := 0
	for i := 0; i < dims[0]/20; i++ {
		hot += sortedCounts[i]
	}
	if float64(hot) < 0.15*float64(ts.NNZ()) {
		t.Errorf("top slices hold only %d/%d nonzeros", hot, ts.NNZ())
	}
}

// naiveMTTKRP is the obvious reference implementation.
func naiveMTTKRP(ts *Tensor, mode int, factors [Order]*Matrix, r int) *Matrix {
	out := NewMatrix(ts.Dims[mode], r)
	m1 := (mode + 1) % Order
	m2 := (mode + 2) % Order
	for n, c := range ts.Inds {
		for q := 0; q < r; q++ {
			out.Data[int(c[mode])*r+q] += ts.Vals[n] *
				factors[m1].At(int(c[m1]), q) * factors[m2].At(int(c[m2]), q)
		}
	}
	return out
}

func TestMTTKRPMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ts := Synthetic([Order]int{12, 9, 7}, 150, 3)
	const r = 5
	var factors [Order]*Matrix
	for m := 0; m < Order; m++ {
		factors[m] = RandomMatrix(ts.Dims[m], r, rng)
	}
	for mode := 0; mode < Order; mode++ {
		out := NewMatrix(ts.Dims[mode], r)
		MTTKRP(ts, mode, factors, out)
		want := naiveMTTKRP(ts, mode, factors, r)
		for i := range out.Data {
			if math.Abs(out.Data[i]-want.Data[i]) > 1e-9 {
				t.Fatalf("mode %d: MTTKRP[%d] = %v, want %v", mode, i, out.Data[i], want.Data[i])
			}
		}
	}
}

func TestGram(t *testing.T) {
	m := &Matrix{Rows: 3, Cols: 2, Data: []float64{1, 2, 3, 4, 5, 6}}
	g := m.Gram()
	// mᵀm = [[35, 44], [44, 56]]
	want := []float64{35, 44, 44, 56}
	for i := range want {
		if g.Data[i] != want[i] {
			t.Fatalf("Gram = %v, want %v", g.Data, want)
		}
	}
}

func TestHadamard(t *testing.T) {
	a := &Matrix{Rows: 2, Cols: 2, Data: []float64{1, 2, 3, 4}}
	b := &Matrix{Rows: 2, Cols: 2, Data: []float64{5, 6, 7, 8}}
	a.Hadamard(b)
	want := []float64{5, 12, 21, 32}
	for i := range want {
		if a.Data[i] != want[i] {
			t.Fatalf("Hadamard = %v", a.Data)
		}
	}
}

func TestSolveSPD(t *testing.T) {
	// G = [[4,1],[1,3]], solve B·G⁻¹ for B = X·G so the answer is X.
	g := &Matrix{Rows: 2, Cols: 2, Data: []float64{4, 1, 1, 3}}
	x := &Matrix{Rows: 3, Cols: 2, Data: []float64{1, 2, -1, 0.5, 3, -2}}
	b := NewMatrix(3, 2)
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			var s float64
			for k := 0; k < 2; k++ {
				s += x.At(i, k) * g.At(k, j)
			}
			b.Set(i, j, s)
		}
	}
	SolveSPD(g, b)
	for i := range b.Data {
		if math.Abs(b.Data[i]-x.Data[i]) > 1e-8 {
			t.Fatalf("SolveSPD = %v, want %v", b.Data, x.Data)
		}
	}
}

// Property: SolveSPD(G, B·G) ≈ B for random SPD G.
func TestSolveSPDProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := 3
		a := RandomMatrix(r+2, r, rng)
		g := a.Gram() // SPD with prob. 1
		x := RandomMatrix(4, r, rng)
		b := NewMatrix(4, r)
		for i := 0; i < 4; i++ {
			for j := 0; j < r; j++ {
				var s float64
				for k := 0; k < r; k++ {
					s += x.At(i, k) * g.At(k, j)
				}
				b.Set(i, j, s)
			}
		}
		SolveSPD(g, b)
		for i := range b.Data {
			if math.Abs(b.Data[i]-x.Data[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCPALSRecoversLowRank(t *testing.T) {
	// Build an exactly rank-2 tensor and check CP-ALS reaches fit ≈ 1.
	lambda := []float64{3, 1.5}
	a := [][]float64{{0.9, 0.1, 0.4, 0.2}, {0.2, 0.8, 0.3, 0.7}}
	b := [][]float64{{0.5, 0.5, 0.1}, {0.9, 0.2, 0.6}}
	c := [][]float64{{0.3, 0.7, 0.2, 0.1, 0.5}, {0.6, 0.1, 0.8, 0.4, 0.2}}
	ts := FromRankOne([Order]int{4, 3, 5}, lambda, a, b, c)
	res, err := CPALS(ts, CPALSOptions{Rank: 2, MaxIters: 200, Tol: 1e-12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit() < 0.9999 {
		t.Errorf("fit = %v, want ≈ 1 (fits: %v)", res.Fit(), res.Fits)
	}
}

func TestCPALSFitOnRealisticTensor(t *testing.T) {
	// A random sparse tensor is not low-rank; CP-ALS must still improve
	// the fit and stay within [0, 1].
	ts := Synthetic([Order]int{30, 25, 20}, 400, 9)
	res, err := CPALS(ts, CPALSOptions{Rank: 8, MaxIters: 25, Tol: 1e-9, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fits) == 0 {
		t.Fatal("no iterations recorded")
	}
	final := res.Fit()
	if final <= res.Fits[0]-1e-9 {
		t.Errorf("fit decreased: first %v, final %v", res.Fits[0], final)
	}
	if final < 0 || final > 1 {
		t.Errorf("fit %v outside [0, 1]", final)
	}
}

func TestCPALSErrors(t *testing.T) {
	ts := smallTensor()
	if _, err := CPALS(ts, CPALSOptions{Rank: 0}); err == nil {
		t.Error("rank 0 accepted")
	}
	zero := &Tensor{Dims: [Order]int{2, 2, 2}}
	if _, err := CPALS(zero, CPALSOptions{Rank: 2}); err == nil {
		t.Error("zero tensor accepted")
	}
}

func TestCostEstimates(t *testing.T) {
	if FlopsPerMTTKRP(1000, 16) != 48000 {
		t.Error("FlopsPerMTTKRP")
	}
	if BytesPerMTTKRP(1, 1) != 20+24 {
		t.Errorf("BytesPerMTTKRP(1,1) = %v", BytesPerMTTKRP(1, 1))
	}
}

func TestGridCoordRoundTrip(t *testing.T) {
	g := Grid{4, 3, 2}
	for rank := 0; rank < g.Size(); rank++ {
		if got := g.RankOf(g.CoordOf(rank)); got != rank {
			t.Fatalf("RankOf(CoordOf(%d)) = %d", rank, got)
		}
	}
	if g.Size() != 24 {
		t.Errorf("Size = %d", g.Size())
	}
	if err := (Grid{0, 1, 1}).Check(); err == nil {
		t.Error("zero grid accepted")
	}
}

func TestLayerIndex(t *testing.T) {
	g := Grid{4, 3, 2}
	for mode := 0; mode < Order; mode++ {
		// Ranks sharing a layer have equal mode coordinate; inLayer values
		// within one layer are a bijection onto [0, LayerSize).
		seen := map[int]map[int]bool{}
		for rank := 0; rank < g.Size(); rank++ {
			layer, inLayer := g.LayerIndex(rank, mode)
			if layer != g.CoordOf(rank)[mode] {
				t.Fatalf("mode %d rank %d: layer %d", mode, rank, layer)
			}
			if seen[layer] == nil {
				seen[layer] = map[int]bool{}
			}
			if seen[layer][inLayer] {
				t.Fatalf("mode %d: duplicate inLayer %d in layer %d", mode, inLayer, layer)
			}
			if inLayer < 0 || inLayer >= g.LayerSize(mode) {
				t.Fatalf("mode %d: inLayer %d out of range", mode, inLayer)
			}
			seen[layer][inLayer] = true
		}
		if len(seen) != g[mode] {
			t.Fatalf("mode %d: %d layers, want %d", mode, len(seen), g[mode])
		}
	}
}

func TestPartitionTensor(t *testing.T) {
	ts := Synthetic([Order]int{40, 40, 40}, 600, 4)
	g := Grid{2, 2, 2}
	p, err := PartitionTensor(ts, g)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalNNZ() != ts.NNZ() {
		t.Errorf("partition loses nonzeros: %d != %d", p.TotalNNZ(), ts.NNZ())
	}
	if p.MaxNNZ() <= 0 || p.MaxNNZ() > ts.NNZ() {
		t.Errorf("MaxNNZ = %d", p.MaxNNZ())
	}
	for m := 0; m < Order; m++ {
		total := 0
		for rank := 0; rank < g.Size(); rank++ {
			if g.CoordOf(rank)[(m+1)%Order] == 0 && g.CoordOf(rank)[(m+2)%Order] == 0 {
				total += p.RowsOwned[m][rank]
			}
		}
		if total != ts.Dims[m] {
			t.Errorf("mode %d: rows owned sum to %d, want %d", m, total, ts.Dims[m])
		}
	}
	if _, err := PartitionTensor(ts, Grid{0, 1, 1}); err == nil {
		t.Error("bad grid accepted")
	}
}

func BenchmarkMTTKRP(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ts := Synthetic([Order]int{200, 150, 100}, 20000, 8)
	const r = 16
	var factors [Order]*Matrix
	for m := 0; m < Order; m++ {
		factors[m] = RandomMatrix(ts.Dims[m], r, rng)
	}
	out := NewMatrix(ts.Dims[0], r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MTTKRP(ts, 0, factors, out)
	}
}

func BenchmarkCPALSIteration(b *testing.B) {
	ts := Synthetic([Order]int{100, 80, 60}, 5000, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CPALS(ts, CPALSOptions{Rank: 8, MaxIters: 1, Seed: 3}); err != nil {
			b.Fatal(err)
		}
	}
}
