// Package tensor implements the sparse-tensor toolkit standing in for
// Splatt (Smith et al., §4.2): three-mode sparse tensors in coordinate
// format, a synthetic skewed generator replacing the proprietary-scale
// FROSTT nell-1 input, the MTTKRP kernel, and a complete sequential
// CP-ALS (Canonical Polyadic Decomposition) whose numerics are verified in
// the tests. The distributed medium-grained decomposition over a 3D
// process grid lives in package splatt.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Order is the number of modes (fixed at 3 like the paper's experiments).
const Order = 3

// Coord is one nonzero's position.
type Coord [Order]int32

// Tensor is a three-mode sparse tensor in coordinate (COO) format.
type Tensor struct {
	Dims [Order]int
	Inds []Coord
	Vals []float64
}

// NNZ returns the number of stored nonzeros.
func (t *Tensor) NNZ() int { return len(t.Vals) }

// Check validates index ranges and shape consistency.
func (t *Tensor) Check() error {
	if len(t.Inds) != len(t.Vals) {
		return fmt.Errorf("tensor: %d coords but %d values", len(t.Inds), len(t.Vals))
	}
	for m := 0; m < Order; m++ {
		if t.Dims[m] <= 0 {
			return fmt.Errorf("tensor: non-positive dimension %d", t.Dims[m])
		}
	}
	for i, c := range t.Inds {
		for m := 0; m < Order; m++ {
			if c[m] < 0 || int(c[m]) >= t.Dims[m] {
				return fmt.Errorf("tensor: nonzero %d index %d out of range [0, %d)", i, c[m], t.Dims[m])
			}
		}
	}
	return nil
}

// NormSquared returns the squared Frobenius norm.
func (t *Tensor) NormSquared() float64 {
	var s float64
	for _, v := range t.Vals {
		s += v * v
	}
	return s
}

// sortable packages indices and values for joint sorting.
type sortable struct {
	t    *Tensor
	mode int
}

func (s sortable) Len() int { return s.t.NNZ() }
func (s sortable) Less(a, b int) bool {
	for i := 0; i < Order; i++ {
		m := (s.mode + i) % Order
		if s.t.Inds[a][m] != s.t.Inds[b][m] {
			return s.t.Inds[a][m] < s.t.Inds[b][m]
		}
	}
	return false
}
func (s sortable) Swap(a, b int) {
	s.t.Inds[a], s.t.Inds[b] = s.t.Inds[b], s.t.Inds[a]
	s.t.Vals[a], s.t.Vals[b] = s.t.Vals[b], s.t.Vals[a]
}

// Sort sorts nonzeros lexicographically starting at the given mode.
func (t *Tensor) Sort(mode int) { sort.Sort(sortable{t: t, mode: mode}) }

// Synthetic generates a random sparse tensor with the skewed, hub-heavy
// index distribution typical of FROSTT web/NLP tensors like nell-1: along
// each mode, indices are drawn from a power-law-ish mixture so a few slices
// are dense and most are sparse. Duplicate coordinates are merged by
// summation. The result has at most nnz nonzeros.
func Synthetic(dims [Order]int, nnz int, seed int64) *Tensor {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[Coord]float64, nnz)
	// Hubs: a random 5% of each mode's slices carries 30% of the mass.
	// Scattering the hubs (instead of using a hot prefix) mirrors real
	// web/NLP tensors, where hub entities are spread over the index space,
	// and keeps blocked partitions reasonably balanced.
	var hubs [Order][]int32
	for m := 0; m < Order; m++ {
		nh := dims[m] / 20
		if nh < 1 {
			nh = 1
		}
		seenHub := map[int32]bool{}
		for len(hubs[m]) < nh {
			h := int32(rng.Intn(dims[m]))
			if !seenHub[h] {
				seenHub[h] = true
				hubs[m] = append(hubs[m], h)
			}
		}
	}
	draw := func(m int) int32 {
		if rng.Float64() < 0.3 {
			return hubs[m][rng.Intn(len(hubs[m]))]
		}
		return int32(rng.Intn(dims[m]))
	}
	for len(seen) < nnz {
		var c Coord
		for m := 0; m < Order; m++ {
			c[m] = draw(m)
		}
		seen[c] += rng.Float64()*2 - 0.5
	}
	t := &Tensor{Dims: dims}
	t.Inds = make([]Coord, 0, len(seen))
	t.Vals = make([]float64, 0, len(seen))
	for c, v := range seen {
		t.Inds = append(t.Inds, c)
		t.Vals = append(t.Vals, v)
	}
	t.Sort(0)
	return t
}

// SyntheticNell mimics the FROSTT nell-1 tensor's defining trait for the
// paper's Figure 8: besides scattered per-mode hubs, its huge first mode
// has a contiguous band of extremely hot slices (NELL's high-degree
// entities cluster at the front of the entity vocabulary), so the
// medium-grained layers along mode 0 carry *very unequal* communication
// volumes — about 40 % of the nonzeros fall into the first ~1.5 % of the
// mode-0 index space. This inter-layer imbalance is what makes spread rank
// orders win for Splatt (the dominant layer multiplexes every NIC) even
// though balanced micro-benchmarks favour packed orders.
func SyntheticNell(dims [Order]int, nnz int, seed int64) *Tensor {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[Coord]float64, nnz)
	hotBand := dims[0] * 3 / 200 // first 1.5 % of mode-0 slices
	if hotBand < 1 {
		hotBand = 1
	}
	hub := func(dim int) []int32 {
		nh := dim / 20
		if nh < 1 {
			nh = 1
		}
		set := map[int32]bool{}
		out := make([]int32, 0, nh)
		for len(out) < nh {
			h := int32(rng.Intn(dim))
			if !set[h] {
				set[h] = true
				out = append(out, h)
			}
		}
		return out
	}
	hubs1, hubs2 := hub(dims[1]), hub(dims[2])
	for len(seen) < nnz {
		var c Coord
		if rng.Float64() < 0.4 {
			c[0] = int32(rng.Intn(hotBand))
		} else {
			c[0] = int32(rng.Intn(dims[0]))
		}
		if rng.Float64() < 0.3 {
			c[1] = hubs1[rng.Intn(len(hubs1))]
		} else {
			c[1] = int32(rng.Intn(dims[1]))
		}
		if rng.Float64() < 0.3 {
			c[2] = hubs2[rng.Intn(len(hubs2))]
		} else {
			c[2] = int32(rng.Intn(dims[2]))
		}
		seen[c] += rng.Float64()*2 - 0.5
	}
	t := &Tensor{Dims: dims}
	t.Inds = make([]Coord, 0, len(seen))
	t.Vals = make([]float64, 0, len(seen))
	for c, v := range seen {
		t.Inds = append(t.Inds, c)
		t.Vals = append(t.Vals, v)
	}
	t.Sort(0)
	return t
}

// FromRankOne builds a dense-as-sparse tensor that is exactly a sum of
// rank-one terms (for CP-ALS convergence tests): entries are
// Σ_r λ_r a[r][i]·b[r][j]·c[r][k] over all (i,j,k).
func FromRankOne(dims [Order]int, lambda []float64, a, b, c [][]float64) *Tensor {
	t := &Tensor{Dims: dims}
	for i := 0; i < dims[0]; i++ {
		for j := 0; j < dims[1]; j++ {
			for k := 0; k < dims[2]; k++ {
				var v float64
				for r := range lambda {
					v += lambda[r] * a[r][i] * b[r][j] * c[r][k]
				}
				if v != 0 {
					t.Inds = append(t.Inds, Coord{int32(i), int32(j), int32(k)})
					t.Vals = append(t.Vals, v)
				}
			}
		}
	}
	return t
}

// Matrix is a dense row-major matrix (rows × cols).
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// RandomMatrix returns a matrix with entries uniform in [0, 1) — the usual
// CP-ALS initialization.
func RandomMatrix(rows, cols int, rng *rand.Rand) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set writes element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Gram returns mᵀ·m (Cols × Cols).
func (m *Matrix) Gram() *Matrix {
	g := NewMatrix(m.Cols, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for a := 0; a < m.Cols; a++ {
			va := row[a]
			if va == 0 {
				continue
			}
			ga := g.Row(a)
			for b := 0; b < m.Cols; b++ {
				ga[b] += va * row[b]
			}
		}
	}
	return g
}

// Hadamard multiplies element-wise in place and returns m.
func (m *Matrix) Hadamard(o *Matrix) *Matrix {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic("tensor: Hadamard shape mismatch")
	}
	for i := range m.Data {
		m.Data[i] *= o.Data[i]
	}
	return m
}

// MTTKRP computes the matricized-tensor times Khatri-Rao product for the
// given mode: out[i] += val · (f₁[j] ∘ f₂[k]) for every nonzero (i,j,k)
// (indices permuted per mode). out must be Dims[mode] × R; f1, f2 are the
// factor matrices of the other two modes in increasing mode order.
func MTTKRP(t *Tensor, mode int, factors [Order]*Matrix, out *Matrix) {
	if out.Rows != t.Dims[mode] {
		panic(fmt.Sprintf("tensor: MTTKRP out has %d rows, want %d", out.Rows, t.Dims[mode]))
	}
	r := out.Cols
	m1 := (mode + 1) % Order
	m2 := (mode + 2) % Order
	f1, f2 := factors[m1], factors[m2]
	for i := range out.Data {
		out.Data[i] = 0
	}
	for n, c := range t.Inds {
		v := t.Vals[n]
		row := out.Row(int(c[mode]))
		r1 := f1.Row(int(c[m1]))
		r2 := f2.Row(int(c[m2]))
		for q := 0; q < r; q++ {
			row[q] += v * r1[q] * r2[q]
		}
	}
}

// SolveSPD solves G·Xᵀ = Bᵀ for every row of B in place (B ← B·G⁻¹), with
// G an R×R symmetric positive (semi-)definite matrix. Gaussian elimination
// with partial pivoting and Tikhonov fallback for singular G.
func SolveSPD(g *Matrix, b *Matrix) {
	r := g.Rows
	if g.Cols != r || b.Cols != r {
		panic("tensor: SolveSPD shape mismatch")
	}
	// Copy G and factor once; apply to every row of B.
	lu := g.Clone()
	// Small diagonal regularization guards rank-deficient Grams.
	var trace float64
	for i := 0; i < r; i++ {
		trace += lu.At(i, i)
	}
	eps := 1e-12 * (trace + 1)
	for i := 0; i < r; i++ {
		lu.Set(i, i, lu.At(i, i)+eps)
	}
	perm := make([]int, r)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < r; col++ {
		// Pivot.
		best, bestAbs := col, math.Abs(lu.At(col, col))
		for row := col + 1; row < r; row++ {
			if a := math.Abs(lu.At(row, col)); a > bestAbs {
				best, bestAbs = row, a
			}
		}
		if best != col {
			for j := 0; j < r; j++ {
				v1, v2 := lu.At(col, j), lu.At(best, j)
				lu.Set(col, j, v2)
				lu.Set(best, j, v1)
			}
			perm[col], perm[best] = perm[best], perm[col]
		}
		piv := lu.At(col, col)
		if piv == 0 {
			continue
		}
		for row := col + 1; row < r; row++ {
			f := lu.At(row, col) / piv
			lu.Set(row, col, f)
			for j := col + 1; j < r; j++ {
				lu.Set(row, j, lu.At(row, j)-f*lu.At(col, j))
			}
		}
	}
	// Solve for each row of B: y = L⁻¹ P x, z = U⁻¹ y.
	tmp := make([]float64, r)
	for i := 0; i < b.Rows; i++ {
		row := b.Row(i)
		for j := 0; j < r; j++ {
			tmp[j] = row[perm[j]]
		}
		for j := 0; j < r; j++ {
			for k := 0; k < j; k++ {
				tmp[j] -= lu.At(j, k) * tmp[k]
			}
		}
		for j := r - 1; j >= 0; j-- {
			for k := j + 1; k < r; k++ {
				tmp[j] -= lu.At(j, k) * tmp[k]
			}
			if piv := lu.At(j, j); piv != 0 {
				tmp[j] /= piv
			}
		}
		copy(row, tmp)
	}
}
