package commmatrix

import (
	"testing"

	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/perm"
	"repro/internal/topology"
)

func testSpec() netmodel.Spec {
	return netmodel.Spec{
		Name: "test",
		Levels: []netmodel.LevelSpec{
			{Name: "node", Arity: 2, UpBandwidth: 10e9, BusBandwidth: 50e9, Latency: 2e-6},
			{Name: "socket", Arity: 2, UpBandwidth: 20e9, BusBandwidth: 30e9, Latency: 1e-6},
			{Name: "core", Arity: 4, Latency: 0.1e-6},
		},
	}
}

func TestCollectorRecordsP2P(t *testing.T) {
	col := NewCollector(4)
	binding := []int{0, 1, 2, 3}
	_, err := mpi.Run(testSpec(), binding, mpi.Config{P2P: col}, func(r *mpi.Rank) {
		w := r.World()
		if r.ID() == 0 {
			w.Send(r, 1, 0, mpi.BytesBuf(1000))
		}
		if r.ID() == 1 {
			w.Recv(r, 0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	m := col.Matrix()
	if m.At(0, 1) != 1000 {
		t.Errorf("At(0,1) = %v, want 1000", m.At(0, 1))
	}
	if m.Total() != 1000 {
		t.Errorf("Total = %v", m.Total())
	}
}

// Run a block-subcommunicator workload under the collector, then ask
// BestOrder which mixed-radix order the observed matrix recommends: the
// end-to-end introspect-then-reorder loop of §2.
func TestCollectorDrivesBestOrder(t *testing.T) {
	h := topology.MustNew(2, 2, 4)
	col := NewCollector(16)
	binding := make([]int, 16)
	for i := range binding {
		binding[i] = i
	}
	_, err := mpi.Run(testSpec(), binding, mpi.Config{P2P: col}, func(r *mpi.Rank) {
		w := r.World()
		sub := w.Split(r, r.ID()/4, r.ID()%4) // 4 blocks of 4 consecutive ranks
		sub.AlltoallBytes(r, 4096)
	})
	if err != nil {
		t.Fatal(err)
	}
	m := col.Matrix()
	if m.Total() <= 0 {
		t.Fatal("collector saw no traffic")
	}
	sigma, _, err := BestOrder(m, h)
	if err != nil {
		t.Fatal(err)
	}
	// Consecutive 4-rank blocks → packed orders are optimal.
	name := perm.Format(sigma)
	if name != "2-1-0" && name != "2-0-1" {
		t.Errorf("observed matrix recommends %s, want a packed order", name)
	}
}

// Collective algorithms' internal messages must show up too.
func TestCollectorSeesCollectiveTraffic(t *testing.T) {
	col := NewCollector(8)
	binding := make([]int, 8)
	for i := range binding {
		binding[i] = i
	}
	_, err := mpi.Run(testSpec(), binding[:8], mpi.Config{P2P: col}, func(r *mpi.Rank) {
		r.World().AllreduceBytes(r, 1<<20)
	})
	if err != nil {
		t.Fatal(err)
	}
	if col.Matrix().Total() < 1<<20 {
		t.Errorf("allreduce traffic %v too small", col.Matrix().Total())
	}
}
