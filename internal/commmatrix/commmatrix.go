// Package commmatrix implements the complementary mapping approach the
// paper's related work describes (§2): "provide the communication matrix
// of a program and the description of the system to a process mapping
// tool, which will return a process mapping minimizing communication
// costs … Communication matrices can help to determine a better mapping,
// while our technique can help to set up this mapping."
//
// The package provides:
//   - Matrix: a symmetric communication-volume matrix with recording
//     helpers and an mpi.Tracer-style collector;
//   - Map: a TreeMatch-style greedy hierarchical mapper producing a
//     rank→core placement from a matrix and a machine hierarchy;
//   - Cost: the volume-weighted crossing cost of a placement, the
//     objective both the mapper and the mixed-radix orders can be compared
//     under;
//   - BestOrder: the mixed-radix order whose mapping minimizes Cost — the
//     bridge between the two approaches (use the matrix to pick the order,
//     use the order to set up the mapping).
package commmatrix

import (
	"fmt"
	"sort"

	"repro/internal/mixedradix"
	"repro/internal/perm"
	"repro/internal/topology"
)

// Matrix is a symmetric process-communication matrix: entry (i, j) is the
// traffic volume in bytes between ranks i and j.
type Matrix struct {
	n   int
	vol []float64
}

// New returns an n×n zero matrix.
func New(n int) *Matrix {
	if n <= 0 {
		panic("commmatrix: non-positive size")
	}
	return &Matrix{n: n, vol: make([]float64, n*n)}
}

// Size returns the number of ranks.
func (m *Matrix) Size() int { return m.n }

// Add records bytes of traffic between ranks a and b (both directions).
func (m *Matrix) Add(a, b int, bytes float64) {
	if a == b {
		return
	}
	m.vol[a*m.n+b] += bytes
	m.vol[b*m.n+a] += bytes
}

// At returns the volume between two ranks.
func (m *Matrix) At(a, b int) float64 { return m.vol[a*m.n+b] }

// Total returns the total volume (each unordered pair counted once).
func (m *Matrix) Total() float64 {
	var s float64
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			s += m.vol[i*m.n+j]
		}
	}
	return s
}

// FromSubcommunicators builds the all-pairs-uniform matrix of an
// application running collectives in blocks of commSize consecutive ranks
// (the micro-benchmark workload): bytes between every pair inside each
// block.
func FromSubcommunicators(n, commSize int, bytes float64) (*Matrix, error) {
	if commSize <= 0 || n%commSize != 0 {
		return nil, fmt.Errorf("commmatrix: block size %d does not divide %d", commSize, n)
	}
	m := New(n)
	for base := 0; base < n; base += commSize {
		for i := base; i < base+commSize; i++ {
			for j := i + 1; j < base+commSize; j++ {
				m.Add(i, j, bytes)
			}
		}
	}
	return m, nil
}

// Cost evaluates a placement (rank → core) against the hierarchy: the sum
// over pairs of volume × crossing cost (§3.3's cost), the objective
// process-mapping tools minimize.
func Cost(m *Matrix, h topology.Hierarchy, placement []int) (float64, error) {
	if len(placement) != m.n {
		return 0, fmt.Errorf("commmatrix: placement has %d ranks, matrix %d", len(placement), m.n)
	}
	var total float64
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			v := m.vol[i*m.n+j]
			if v == 0 {
				continue
			}
			total += v * float64(h.CrossCost(placement[i], placement[j]))
		}
	}
	return total, nil
}

// Map computes a rank→core placement greedily, TreeMatch-style: it
// recursively partitions the ranks over the hierarchy's domains, at each
// level grouping the heaviest-communicating ranks into the same domain.
// The matrix size must equal the hierarchy's core count.
func Map(m *Matrix, h topology.Hierarchy) ([]int, error) {
	if m.n != h.Size() {
		return nil, fmt.Errorf("commmatrix: %d ranks for a machine with %d cores", m.n, h.Size())
	}
	ranks := make([]int, m.n)
	for i := range ranks {
		ranks[i] = i
	}
	placement := make([]int, m.n)
	mapLevel(m, h.Arities(), ranks, 0, placement)
	return placement, nil
}

// mapLevel assigns the given ranks to the core range starting at base,
// recursively splitting them over the domains of the current level.
func mapLevel(m *Matrix, arities []int, ranks []int, base int, placement []int) {
	if len(arities) == 0 || len(ranks) == 1 {
		for i, r := range ranks {
			placement[r] = base + i
		}
		return
	}
	parts := arities[0]
	per := len(ranks) / parts
	remaining := append([]int(nil), ranks...)
	// Cores per domain at this level = product of the inner arities.
	coresPerDomain := 1
	for _, a := range arities[1:] {
		coresPerDomain *= a
	}
	for d := 0; d < parts; d++ {
		group := takeHeaviestGroup(m, remaining, per)
		remaining = subtract(remaining, group)
		mapLevel(m, arities[1:], group, base+d*coresPerDomain, placement)
	}
}

// takeHeaviestGroup greedily grows a group of the requested size around
// the heaviest-communicating seed pair among the candidates.
func takeHeaviestGroup(m *Matrix, candidates []int, size int) []int {
	if size >= len(candidates) {
		return append([]int(nil), candidates...)
	}
	in := make(map[int]bool, len(candidates))
	for _, r := range candidates {
		in[r] = true
	}
	// Seed: the candidate with the largest total volume to other candidates.
	seed := candidates[0]
	bestVol := -1.0
	for _, r := range candidates {
		var v float64
		for _, o := range candidates {
			if o != r {
				v += m.At(r, o)
			}
		}
		if v > bestVol {
			bestVol = v
			seed = r
		}
	}
	group := []int{seed}
	inGroup := map[int]bool{seed: true}
	for len(group) < size {
		bestRank, bestGain := -1, -1.0
		for _, r := range candidates {
			if inGroup[r] {
				continue
			}
			var gain float64
			for _, g := range group {
				gain += m.At(r, g)
			}
			if gain > bestGain || (gain == bestGain && (bestRank < 0 || r < bestRank)) {
				bestGain = gain
				bestRank = r
			}
		}
		group = append(group, bestRank)
		inGroup[bestRank] = true
	}
	sort.Ints(group)
	return group
}

func subtract(all, remove []int) []int {
	rm := make(map[int]bool, len(remove))
	for _, r := range remove {
		rm[r] = true
	}
	out := all[:0]
	for _, r := range all {
		if !rm[r] {
			out = append(out, r)
		}
	}
	return out
}

// BestOrder evaluates every mixed-radix order of the hierarchy against the
// matrix and returns the order with the lowest Cost together with that
// cost — the paper's "communication matrices help determine the mapping,
// our technique sets it up".
func BestOrder(m *Matrix, h topology.Hierarchy) ([]int, float64, error) {
	if m.n != h.Size() {
		return nil, 0, fmt.Errorf("commmatrix: %d ranks for a machine with %d cores", m.n, h.Size())
	}
	var best []int
	bestCost := -1.0
	for _, sigma := range perm.All(h.Depth()) {
		ro, err := mixedradix.NewReorderer(h.Arities(), sigma)
		if err != nil {
			return nil, 0, err
		}
		// Under the order, application rank i runs on the core holding
		// reordered rank i — InverseTable[i].
		inv := ro.InverseTable()
		cost, err := Cost(m, h, inv)
		if err != nil {
			return nil, 0, err
		}
		if bestCost < 0 || cost < bestCost {
			bestCost = cost
			best = append([]int(nil), sigma...)
		}
	}
	return best, bestCost, nil
}
