// The sparse JSON wire format of a communication matrix. The collector,
// the mapd endpoint, and the CLI all exchange the same canonical form:
// upper-triangle edges (a < b), sorted, strictly positive finite volumes,
// no self-edges. Canonicalization makes the encoding content-addressable —
// Digest is a stable cache key for "this traffic on this machine".

package commmatrix

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// Edge is one undirected traffic entry of the sparse wire format.
type Edge struct {
	// A and B are the endpoint ranks; canonical form has A < B.
	A int `json:"a"`
	B int `json:"b"`
	// Bytes is the traffic volume between the two ranks (both directions
	// summed). Must be finite and strictly positive.
	Bytes float64 `json:"bytes"`
}

// Sparse is the JSON wire format of a Matrix: the rank count plus the
// nonzero upper-triangle edges.
type Sparse struct {
	Ranks int    `json:"ranks"`
	Edges []Edge `json:"edges"`
}

// Sparse returns the canonical sparse form of the matrix: one edge per
// nonzero unordered pair, endpoints ordered a < b, edges sorted by (a, b).
func (m *Matrix) Sparse() Sparse {
	s := Sparse{Ranks: m.n}
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			if v := m.vol[i*m.n+j]; v != 0 {
				s.Edges = append(s.Edges, Edge{A: i, B: j, Bytes: v})
			}
		}
	}
	return s
}

// Validate checks the sparse form: a positive rank count, endpoint ranks
// in range, no self-edges, no duplicate pairs (in either orientation), and
// finite positive volumes. It does not require canonical ordering.
func (s Sparse) Validate() error {
	if s.Ranks <= 0 {
		return fmt.Errorf("commmatrix: non-positive rank count %d", s.Ranks)
	}
	seen := make(map[[2]int]bool, len(s.Edges))
	for i, e := range s.Edges {
		if e.A < 0 || e.A >= s.Ranks || e.B < 0 || e.B >= s.Ranks {
			return fmt.Errorf("commmatrix: edge %d (%d,%d) out of range for %d ranks", i, e.A, e.B, s.Ranks)
		}
		if e.A == e.B {
			return fmt.Errorf("commmatrix: edge %d is a self-edge on rank %d", i, e.A)
		}
		if math.IsNaN(e.Bytes) || math.IsInf(e.Bytes, 0) {
			return fmt.Errorf("commmatrix: edge %d (%d,%d) has non-finite volume", i, e.A, e.B)
		}
		if e.Bytes <= 0 {
			return fmt.Errorf("commmatrix: edge %d (%d,%d) has non-positive volume %g", i, e.A, e.B, e.Bytes)
		}
		k := [2]int{e.A, e.B}
		if e.B < e.A {
			k = [2]int{e.B, e.A}
		}
		// A pair listed twice — even once per orientation — would make the
		// symmetric reconstruction ambiguous, so it is rejected rather than
		// summed.
		if seen[k] {
			return fmt.Errorf("commmatrix: duplicate edge (%d,%d)", e.A, e.B)
		}
		seen[k] = true
	}
	return nil
}

// FromSparse validates the sparse form and expands it into a Matrix.
func FromSparse(s Sparse) (*Matrix, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	m := New(s.Ranks)
	for _, e := range s.Edges {
		m.Add(e.A, e.B, e.Bytes)
	}
	return m, nil
}

// canonical returns the edges sorted into canonical order (a < b within
// each edge, edges ordered by (a, b)) without mutating the receiver.
func (s Sparse) canonical() []Edge {
	edges := make([]Edge, len(s.Edges))
	for i, e := range s.Edges {
		if e.B < e.A {
			e.A, e.B = e.B, e.A
		}
		edges[i] = e
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].A != edges[j].A {
			return edges[i].A < edges[j].A
		}
		return edges[i].B < edges[j].B
	})
	return edges
}

// Digest returns a stable content digest of the matrix described by the
// sparse form: the SHA-256 of the canonical (ranks, sorted edges) byte
// encoding. Two Sparse values describing the same traffic — regardless of
// edge order or endpoint orientation — share a digest.
func (s Sparse) Digest() string {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(s.Ranks))
	h.Write(buf[:])
	for _, e := range s.canonical() {
		binary.LittleEndian.PutUint64(buf[:], uint64(e.A))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(e.B))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(e.Bytes))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// MarshalJSON encodes the matrix in the canonical sparse wire format.
func (m *Matrix) MarshalJSON() ([]byte, error) {
	return json.Marshal(m.Sparse())
}

// UnmarshalJSON decodes the sparse wire format, rejecting unknown fields
// and anything Validate rejects, and expands it into the receiver.
func (m *Matrix) UnmarshalJSON(data []byte) error {
	var s Sparse
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return fmt.Errorf("commmatrix: decoding sparse matrix: %w", err)
	}
	dm, err := FromSparse(s)
	if err != nil {
		return err
	}
	*m = *dm
	return nil
}

// Edges calls fn for every nonzero unordered pair (a < b) with its volume.
func (m *Matrix) Edges(fn func(a, b int, bytes float64)) {
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			if v := m.vol[i*m.n+j]; v != 0 {
				fn(i, j, v)
			}
		}
	}
}

// NumEdges returns the number of nonzero unordered pairs.
func (m *Matrix) NumEdges() int {
	n := 0
	m.Edges(func(int, int, float64) { n++ })
	return n
}
