package commmatrix

import (
	"math/rand"
	"testing"

	"repro/internal/perm"
	"repro/internal/topology"
)

func TestMatrixBasics(t *testing.T) {
	m := New(4)
	m.Add(0, 1, 100)
	m.Add(1, 0, 50)
	m.Add(2, 2, 999) // self-traffic ignored
	if m.At(0, 1) != 150 || m.At(1, 0) != 150 {
		t.Errorf("At(0,1)=%v At(1,0)=%v", m.At(0, 1), m.At(1, 0))
	}
	if m.At(2, 2) != 0 {
		t.Error("self traffic recorded")
	}
	if m.Total() != 150 {
		t.Errorf("Total = %v", m.Total())
	}
	if m.Size() != 4 {
		t.Errorf("Size = %d", m.Size())
	}
}

func TestFromSubcommunicators(t *testing.T) {
	m, err := FromSubcommunicators(8, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 3) != 10 || m.At(4, 7) != 10 {
		t.Error("intra-block volume missing")
	}
	if m.At(3, 4) != 0 {
		t.Error("cross-block volume present")
	}
	// 2 blocks × C(4,2) pairs × 10 bytes.
	if m.Total() != 2*6*10 {
		t.Errorf("Total = %v", m.Total())
	}
	if _, err := FromSubcommunicators(8, 3, 1); err == nil {
		t.Error("non-dividing block accepted")
	}
}

func TestCost(t *testing.T) {
	h := topology.MustNew(2, 2, 4)
	m := New(16)
	m.Add(0, 1, 100) // same socket: cost 1
	m.Add(0, 4, 10)  // cross socket: cost 2
	m.Add(0, 8, 1)   // cross node: cost 3
	identity := make([]int, 16)
	for i := range identity {
		identity[i] = i
	}
	c, err := Cost(m, h, identity)
	if err != nil {
		t.Fatal(err)
	}
	if c != 100*1+10*2+1*3 {
		t.Errorf("Cost = %v, want 123", c)
	}
	if _, err := Cost(m, h, identity[:3]); err == nil {
		t.Error("short placement accepted")
	}
}

// Map must put heavily-communicating blocks of ranks into shared domains.
func TestMapGroupsHeavyPairs(t *testing.T) {
	h := topology.MustNew(2, 2, 4)
	// Ranks communicate in 4 blocks of 4 — but the blocks are interleaved:
	// block k = ranks {k, k+4, k+8, k+12}.
	m := New(16)
	for k := 0; k < 4; k++ {
		for a := 0; a < 4; a++ {
			for b := a + 1; b < 4; b++ {
				m.Add(k+4*a, k+4*b, 100)
			}
		}
	}
	placement, err := Map(m, h)
	if err != nil {
		t.Fatal(err)
	}
	if !perm.IsPermutation(placement) {
		t.Fatalf("placement is not a bijection: %v", placement)
	}
	mapped, err := Cost(m, h, placement)
	if err != nil {
		t.Fatal(err)
	}
	identity := make([]int, 16)
	for i := range identity {
		identity[i] = i
	}
	naive, err := Cost(m, h, identity)
	if err != nil {
		t.Fatal(err)
	}
	if mapped >= naive {
		t.Errorf("greedy mapping (%v) no better than identity (%v)", mapped, naive)
	}
	// Optimal here: every block inside one socket → all pairs cost 1.
	optimal := 4 * 6 * 100.0
	if mapped != optimal {
		t.Errorf("greedy mapping cost %v, want optimal %v", mapped, optimal)
	}
}

// BestOrder must pick a packed order for block-communicating workloads and
// its cost must equal the cost of its own placement.
func TestBestOrderBlockWorkload(t *testing.T) {
	h := topology.MustNew(2, 2, 4)
	m, err := FromSubcommunicators(16, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	sigma, cost, err := BestOrder(m, h)
	if err != nil {
		t.Fatal(err)
	}
	// Blocks of 4 consecutive ranks fit one socket under the identity
	// ([2,1,0]) or plane ([2,0,1]) orders: all pairs cost 1.
	want := 4 * 6 * 100.0
	if cost != want {
		t.Errorf("best order %v cost %v, want %v", sigma, cost, want)
	}
	name := perm.Format(sigma)
	if name != "2-1-0" && name != "2-0-1" {
		t.Errorf("best order = %s, want a packed order", name)
	}
}

// For an interleaved workload (stride-4 blocks) the cyclic order must win.
func TestBestOrderCyclicWorkload(t *testing.T) {
	h := topology.MustNew(2, 2, 4)
	m := New(16)
	for k := 0; k < 4; k++ {
		for a := 0; a < 4; a++ {
			for b := a + 1; b < 4; b++ {
				m.Add(k+4*a, k+4*b, 100)
			}
		}
	}
	sigma, cost, err := BestOrder(m, h)
	if err != nil {
		t.Fatal(err)
	}
	// Stride-4 blocks are exactly what a fully cyclic enumeration packs:
	// under [0,1,2]-style orders, ranks {k, k+4, k+8, k+12} share a socket.
	if cost != 4*6*100.0 {
		t.Errorf("best order %v cost %v, want %v", sigma, cost, 4*6*100.0)
	}
}

// The greedy mapper must never lose to the best mixed-radix order by more
// than 2× on random matrices (it optimizes the same objective with more
// freedom, but greedily).
func TestMapVersusBestOrderRandom(t *testing.T) {
	h := topology.MustNew(2, 2, 4)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		m := New(16)
		for i := 0; i < 16; i++ {
			for j := i + 1; j < 16; j++ {
				if rng.Float64() < 0.3 {
					m.Add(i, j, rng.Float64()*100)
				}
			}
		}
		placement, err := Map(m, h)
		if err != nil {
			t.Fatal(err)
		}
		mapped, err := Cost(m, h, placement)
		if err != nil {
			t.Fatal(err)
		}
		_, orderCost, err := BestOrder(m, h)
		if err != nil {
			t.Fatal(err)
		}
		if mapped > 2*orderCost {
			t.Errorf("trial %d: greedy mapping %v vs best order %v", trial, mapped, orderCost)
		}
	}
}

func TestSizeMismatches(t *testing.T) {
	h := topology.MustNew(2, 2, 4)
	m := New(8)
	if _, err := Map(m, h); err == nil {
		t.Error("size mismatch accepted by Map")
	}
	if _, _, err := BestOrder(m, h); err == nil {
		t.Error("size mismatch accepted by BestOrder")
	}
}

func TestNewPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0)
}
