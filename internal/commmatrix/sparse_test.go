package commmatrix

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestSparseRoundTrip(t *testing.T) {
	m := New(8)
	m.Add(0, 5, 100)
	m.Add(1, 2, 50)
	m.Add(7, 3, 25.5)

	b, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got Matrix
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.Size() != 8 {
		t.Fatalf("size = %d, want 8", got.Size())
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if got.At(i, j) != m.At(i, j) {
				t.Fatalf("At(%d,%d) = %g, want %g", i, j, got.At(i, j), m.At(i, j))
			}
		}
	}
}

func TestSparseCanonicalForm(t *testing.T) {
	m := New(4)
	m.Add(3, 1, 10)
	m.Add(0, 2, 5)
	s := m.Sparse()
	if len(s.Edges) != 2 {
		t.Fatalf("edges = %d, want 2", len(s.Edges))
	}
	// Sorted by (a, b) with a < b.
	if s.Edges[0] != (Edge{A: 0, B: 2, Bytes: 5}) || s.Edges[1] != (Edge{A: 1, B: 3, Bytes: 10}) {
		t.Fatalf("non-canonical edges: %+v", s.Edges)
	}
}

func TestSparseValidation(t *testing.T) {
	cases := []struct {
		name string
		s    Sparse
		want string // substring of the error
	}{
		{"zero ranks", Sparse{Ranks: 0}, "non-positive rank count"},
		{"negative ranks", Sparse{Ranks: -4}, "non-positive rank count"},
		{"out of range", Sparse{Ranks: 4, Edges: []Edge{{A: 0, B: 4, Bytes: 1}}}, "out of range"},
		{"negative rank", Sparse{Ranks: 4, Edges: []Edge{{A: -1, B: 2, Bytes: 1}}}, "out of range"},
		{"self edge", Sparse{Ranks: 4, Edges: []Edge{{A: 2, B: 2, Bytes: 1}}}, "self-edge"},
		{"nan", Sparse{Ranks: 4, Edges: []Edge{{A: 0, B: 1, Bytes: math.NaN()}}}, "non-finite"},
		{"inf", Sparse{Ranks: 4, Edges: []Edge{{A: 0, B: 1, Bytes: math.Inf(1)}}}, "non-finite"},
		{"zero volume", Sparse{Ranks: 4, Edges: []Edge{{A: 0, B: 1, Bytes: 0}}}, "non-positive volume"},
		{"negative volume", Sparse{Ranks: 4, Edges: []Edge{{A: 0, B: 1, Bytes: -3}}}, "non-positive volume"},
		{"duplicate", Sparse{Ranks: 4, Edges: []Edge{{A: 0, B: 1, Bytes: 1}, {A: 0, B: 1, Bytes: 2}}}, "duplicate"},
		{"mirrored duplicate", Sparse{Ranks: 4, Edges: []Edge{{A: 0, B: 1, Bytes: 1}, {A: 1, B: 0, Bytes: 2}}}, "duplicate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.s.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", tc.s)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			if _, err := FromSparse(tc.s); err == nil {
				t.Fatalf("FromSparse accepted %+v", tc.s)
			}
		})
	}
}

func TestSparseUnmarshalRejectsUnknownFields(t *testing.T) {
	var m Matrix
	err := json.Unmarshal([]byte(`{"ranks":2,"edges":[],"bogus":1}`), &m)
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestSparseAcceptsNonCanonicalInput(t *testing.T) {
	// Reversed orientation and unsorted edges are valid input; only
	// duplicates are ambiguous.
	s := Sparse{Ranks: 4, Edges: []Edge{{A: 3, B: 0, Bytes: 7}, {A: 2, B: 1, Bytes: 5}}}
	m, err := FromSparse(s)
	if err != nil {
		t.Fatalf("FromSparse: %v", err)
	}
	if m.At(0, 3) != 7 || m.At(3, 0) != 7 || m.At(1, 2) != 5 {
		t.Fatalf("volumes not symmetric: %g %g %g", m.At(0, 3), m.At(3, 0), m.At(1, 2))
	}
}

func TestSparseDigestStable(t *testing.T) {
	a := Sparse{Ranks: 4, Edges: []Edge{{A: 0, B: 1, Bytes: 10}, {A: 2, B: 3, Bytes: 20}}}
	// Same traffic, scrambled orientation and order.
	b := Sparse{Ranks: 4, Edges: []Edge{{A: 3, B: 2, Bytes: 20}, {A: 1, B: 0, Bytes: 10}}}
	if a.Digest() != b.Digest() {
		t.Fatal("digests differ for identical traffic")
	}
	c := Sparse{Ranks: 4, Edges: []Edge{{A: 0, B: 1, Bytes: 10}, {A: 2, B: 3, Bytes: 21}}}
	if a.Digest() == c.Digest() {
		t.Fatal("digest collision for different volumes")
	}
	d := Sparse{Ranks: 5, Edges: a.Edges}
	if a.Digest() == d.Digest() {
		t.Fatal("digest ignores rank count")
	}
}

// FuzzSparseRoundTrip drives random edge lists through the wire format:
// anything Validate accepts must survive Marshal → Unmarshal bit-exactly
// and keep its digest; anything it rejects must also be rejected by
// FromSparse.
func FuzzSparseRoundTrip(f *testing.F) {
	f.Add(int64(1), 8, 12)
	f.Add(int64(2), 1, 0)
	f.Add(int64(3), 64, 200)
	f.Fuzz(func(t *testing.T, seed int64, ranks, edges int) {
		if ranks < 1 || ranks > 256 || edges < 0 || edges > 1024 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		s := Sparse{Ranks: ranks}
		for i := 0; i < edges; i++ {
			e := Edge{A: rng.Intn(ranks), B: rng.Intn(ranks), Bytes: rng.Float64() * 1e9}
			if rng.Intn(10) == 0 {
				e.Bytes = 0 // sometimes invalid
			}
			s.Edges = append(s.Edges, e)
		}
		m, err := FromSparse(s)
		if err != nil {
			if s.Validate() == nil {
				t.Fatalf("FromSparse rejected what Validate accepted: %v", err)
			}
			return
		}
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var got Matrix
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("unmarshal of own output: %v\n%s", err, b)
		}
		if got.Size() != m.Size() {
			t.Fatalf("size %d → %d", m.Size(), got.Size())
		}
		for i := 0; i < m.Size(); i++ {
			for j := 0; j < m.Size(); j++ {
				if got.At(i, j) != m.At(i, j) {
					t.Fatalf("At(%d,%d) = %g, want %g", i, j, got.At(i, j), m.At(i, j))
				}
			}
		}
		if got.Sparse().Digest() != m.Sparse().Digest() {
			t.Fatal("digest changed across round-trip")
		}
	})
}
