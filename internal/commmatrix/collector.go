// Collector: build the communication matrix at runtime from the simulated
// MPI's point-to-point stream (the introspection-monitoring approach of
// the paper's §2 reference [11]).

package commmatrix

import "sync"

// Collector implements mpi.Config's P2PTracer: it accumulates every
// point-to-point message into a Matrix. Safe for concurrent use.
type Collector struct {
	mu sync.Mutex
	m  *Matrix
}

// NewCollector returns a collector for n world ranks.
func NewCollector(n int) *Collector {
	return &Collector{m: New(n)}
}

// P2P records one message.
func (c *Collector) P2P(src, dst int, bytes int64) {
	if src == dst || bytes <= 0 {
		return
	}
	c.mu.Lock()
	c.m.Add(src, dst, float64(bytes))
	c.mu.Unlock()
}

// Matrix returns a snapshot copy of the accumulated matrix.
func (c *Collector) Matrix() *Matrix {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := New(c.m.n)
	copy(out.vol, c.m.vol)
	return out
}
