// A -race hammer for the breaker's half-open transition: the probe
// admission (Allow flipping open → half-open) races with concurrent
// Record calls settling earlier evaluations, which is exactly the state
// the serving path reaches when a cooldown expires under load. The test
// pins down two invariants: at most one probe is ever admitted per
// cooldown window, and concurrent Records never corrupt the state
// machine (observable states stay within the three legal values and the
// breaker still closes on success afterwards).

package mapd

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBreakerHalfOpenSingleProbeUnderRace(t *testing.T) {
	const workers = 16
	for round := 0; round < 50; round++ {
		b := newBreaker(1, time.Nanosecond, nil)
		b.Record(false) // open; the 1ns cooldown expires immediately
		for b.State() != breakerOpen {
			t.Fatal("breaker did not open")
		}
		time.Sleep(time.Microsecond)

		// All workers race to claim the half-open probe slot.
		var admitted atomic.Int64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				if b.Allow() {
					admitted.Add(1)
				}
			}()
		}
		close(start)
		wg.Wait()
		if got := admitted.Load(); got != 1 {
			t.Fatalf("round %d: %d probes admitted, want exactly 1", round, got)
		}
		if st := b.State(); st != breakerHalfOpen {
			t.Fatalf("round %d: state %v after probe admission", round, st)
		}
	}
}

func TestBreakerConcurrentRecordHammer(t *testing.T) {
	const workers = 8
	b := newBreaker(3, time.Nanosecond, nil)
	var transitions atomic.Int64
	b.onState = func(s breakerState) {
		if s != breakerClosed && s != breakerHalfOpen && s != breakerOpen {
			panic("illegal breaker state")
		}
		transitions.Add(1)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				switch {
				case b.Allow():
					// Bursty outcomes (3 failures per 10 records) keep the
					// machine cycling through closed → open → half-open
					// under contention.
					b.Record(i%10 < 7)
				default:
					b.Record(false)
				}
				if w == 0 && i%100 == 0 {
					_ = b.State()
					_ = b.RetryAfter()
				}
			}
		}(w)
	}
	wg.Wait()

	// Whatever interleaving happened, a stream of successes must still
	// close the breaker — the machine cannot wedge.
	for i := 0; i < 4; i++ {
		b.Allow()
		b.Record(true)
	}
	if st := b.State(); st != breakerClosed {
		t.Fatalf("breaker wedged in %v after success stream", st)
	}
	if transitions.Load() == 0 {
		t.Fatal("hammer drove no state transitions")
	}
}
