// Tests for the overload-safety layer: queue-depth shedding, the advisor
// circuit breaker with its heuristic fallback, and the draining state.

package mapd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestBreakerStateMachine(t *testing.T) {
	clock := time.Unix(0, 0)
	b := newBreaker(3, 10*time.Second, func() time.Time { return clock })

	if !b.Allow() || b.State() != breakerClosed {
		t.Fatal("fresh breaker must be closed")
	}
	b.Record(false)
	b.Record(false)
	if b.State() != breakerClosed {
		t.Fatal("breaker opened below threshold")
	}
	b.Record(true) // success resets the streak
	b.Record(false)
	b.Record(false)
	b.Record(false)
	if b.State() != breakerOpen {
		t.Fatal("breaker did not open after 3 consecutive failures")
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
	if ra := b.RetryAfter(); ra < 1 || ra > 11 {
		t.Fatalf("RetryAfter = %d", ra)
	}

	clock = clock.Add(11 * time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but no probe admitted")
	}
	if b.State() != breakerHalfOpen {
		t.Fatalf("state after probe admission = %v", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second probe")
	}
	b.Record(false) // probe fails: reopen
	if b.State() != breakerOpen {
		t.Fatal("failed probe did not reopen")
	}
	clock = clock.Add(11 * time.Second)
	if !b.Allow() {
		t.Fatal("second probe not admitted")
	}
	b.Record(true)
	if b.State() != breakerClosed || !b.Allow() {
		t.Fatal("successful probe did not close the breaker")
	}
}

func TestOverloadSheds503WithRetryAfter(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Config{Registry: reg, MaxInflight: 2, CacheEntries: -1})
	// Park two advise evaluations so the third request finds the server
	// full.
	started := make(chan struct{}, 2)
	release := make(chan struct{})
	s.AdviseHook = func() {
		started <- struct{}{}
		<-release
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		body := fmt.Sprintf(`{"machine":"hydra","nodes":4,"collective":"alltoall","comm_size":16,"top":%d}`, i+1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			post(t, ts, "/v1/advise", body)
		}()
	}
	for i := 0; i < 2; i++ {
		<-started
	}

	resp, err := http.Post(ts.URL+"/v1/map", "application/json",
		strings.NewReader(`{"hierarchy":"2,2,4","rank":5}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error.Status != "unavailable" {
		t.Errorf("shed envelope: %+v, err %v", eb, err)
	}
	close(release)
	wg.Wait()
	if got := reg.FindCounter("mapd_shed_total"); got < 1 {
		t.Errorf("mapd_shed_total = %v, want >= 1", got)
	}
}

func TestBreakerOpensAndServesHeuristicFallback(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Config{
		Registry:         reg,
		CacheEntries:     -1,
		Timeout:          5 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
	})
	// Every real evaluation overruns its budget and fails.
	s.AdviseHook = func() { time.Sleep(30 * time.Millisecond) }

	req := `{"machine":"hydra","nodes":4,"collective":"alltoall","comm_size":16}`
	for i := 0; i < 2; i++ {
		if code, _ := post(t, ts, "/v1/advise", req); code != http.StatusGatewayTimeout {
			t.Fatalf("warm-up request %d: status %d, want 504", i, code)
		}
	}
	if s.breaker.State() != breakerOpen {
		t.Fatalf("breaker state = %v after consecutive timeouts", s.breaker.State())
	}

	// With the breaker open the endpoint answers instantly and degraded.
	code, body := post(t, ts, "/v1/advise", req)
	if code != http.StatusOK {
		t.Fatalf("fallback status %d, body %s", code, body)
	}
	var ar AdviseResponse
	if err := json.Unmarshal([]byte(body), &ar); err != nil {
		t.Fatal(err)
	}
	if !ar.Degraded {
		t.Fatalf("fallback response not marked degraded: %s", body)
	}
	if ar.Evaluated != 24 { // hydra is 4 levels deep: 4! ring costs
		t.Errorf("fallback evaluated %d orders", ar.Evaluated)
	}
	if len(ar.Best) == 0 || len(ar.Best[0].Order) == 0 {
		t.Errorf("fallback carries no ranking: %s", body)
	}
	if got := reg.FindCounter("mapd_advise_fallback_total"); got < 1 {
		t.Errorf("mapd_advise_fallback_total = %v", got)
	}
	if got := reg.FindGauge("mapd_breaker_state"); got != float64(breakerOpen) {
		t.Errorf("mapd_breaker_state = %v, want %v", got, float64(breakerOpen))
	}

	// Degraded (but not draining) still answers 200 on /healthz.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var h struct{ Status string }
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if hr.StatusCode != http.StatusOK || h.Status != "degraded" {
		t.Errorf("healthz = %d %q, want 200 degraded", hr.StatusCode, h.Status)
	}
}

func TestBreakerRecoversThroughProbe(t *testing.T) {
	s, ts := newTestServer(t, Config{
		CacheEntries:     -1,
		Timeout:          5 * time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Millisecond,
	})
	var fail atomic.Bool
	fail.Store(true)
	s.AdviseHook = func() {
		if fail.Load() {
			time.Sleep(30 * time.Millisecond)
		}
	}
	req := `{"machine":"hydra","nodes":4,"collective":"alltoall","comm_size":16}`
	if code, _ := post(t, ts, "/v1/advise", req); code != http.StatusGatewayTimeout {
		t.Fatal("warm-up did not time out")
	}
	if s.breaker.State() != breakerOpen {
		t.Fatal("breaker did not open")
	}
	fail.Store(false)
	time.Sleep(5 * time.Millisecond) // past the cooldown: next request probes
	deadline := time.Now().Add(2 * time.Second)
	for s.breaker.State() != breakerClosed {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never closed; state %v", s.breaker.State())
		}
		post(t, ts, "/v1/advise", req)
	}
	code, body := post(t, ts, "/v1/advise", req)
	var ar AdviseResponse
	if code != http.StatusOK || json.Unmarshal([]byte(body), &ar) != nil || ar.Degraded {
		t.Fatalf("recovered endpoint still degraded: %d %s", code, body)
	}
}

func TestDrainingRefusesNewWork(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if s.Draining() {
		t.Fatal("fresh server draining")
	}
	if code, _ := post(t, ts, "/v1/map", `{"hierarchy":"2,2,4","rank":5}`); code != http.StatusOK {
		t.Fatal("healthy server refused work")
	}
	s.StartDraining()
	if !s.Draining() {
		t.Fatal("Draining() false after StartDraining")
	}
	code, body := post(t, ts, "/v1/map", `{"hierarchy":"2,2,4","rank":5}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining server served new work: %d %s", code, body)
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var h struct{ Status string }
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if hr.StatusCode != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Errorf("healthz = %d %q, want 503 draining", hr.StatusCode, h.Status)
	}
	if hr.Header.Get("Retry-After") == "" {
		t.Error("draining healthz missing Retry-After")
	}
}

func TestFallbackRankingIsDeterministic(t *testing.T) {
	req := AdviseRequest{Machine: "hydra", Nodes: 4, Collective: "alltoall", CommSize: 16, Top: 3}
	q, err := req.parse()
	if err != nil {
		t.Fatal(err)
	}
	a, err := evalAdviseFallback(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := evalAdviseFallback(q)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatal("fallback ranking not deterministic")
	}
	if !a.Degraded || len(a.Best) != 3 {
		t.Fatalf("fallback shape wrong: %s", ja)
	}
	if errors.Is(err, ErrBadRequest) {
		t.Fatal("unexpected client error")
	}
}
