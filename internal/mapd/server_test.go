package mapd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s response: %v", path, err)
	}
	return resp.StatusCode, strings.TrimSuffix(string(b), "\n")
}

// Golden request/response pairs for every endpoint: the exact canonical
// wire bytes, so accidental schema or semantics drift fails loudly.
func TestEndpointsGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, path, req, want string
	}{
		{
			name: "map decompose",
			path: "/v1/map",
			req:  `{"hierarchy":"2,2,4","order":"2-1-0","rank":5}`,
			want: `{"hierarchy":[2,2,4],"levels":["node","socket","core"],"order":[2,1,0],"rank":5,"coords":[0,1,1],"new_rank":5}`,
		},
		{
			name: "map decompose canonical syntax", // same query, different surface syntax
			path: "/v1/map",
			req:  `{"hierarchy":"[2, 2, 4]","order":"2,1,0","rank":5}`,
			want: `{"hierarchy":[2,2,4],"levels":["node","socket","core"],"order":[2,1,0],"rank":5,"coords":[0,1,1],"new_rank":5}`,
		},
		{
			name: "map compose",
			path: "/v1/map",
			req:  `{"hierarchy":"2,2,4","order":"0-1-2","coords":[1,1,3]}`,
			want: `{"hierarchy":[2,2,4],"levels":["node","socket","core"],"order":[0,1,2],"coords":[1,1,3],"new_rank":15}`,
		},
		{
			name: "map table",
			path: "/v1/map",
			req:  `{"hierarchy":"2,2,2","order":"0-1-2","table":true}`,
			want: `{"hierarchy":[2,2,2],"levels":["node","socket","core"],"order":[0,1,2],"table":[0,4,2,6,1,5,3,7]}`,
		},
		{
			name: "select",
			path: "/v1/select",
			req:  `{"hierarchy":"2,4,2,8","order":"2-1-0-3","n":8}`,
			want: `{"hierarchy":[2,4,2,8],"order":[2,1,0,3],"n":8,"map_cpu":[0,8,16,24,32,40,48,56],"cpu_bind":"map_cpu:0,8,16,24,32,40,48,56","induced":[4,2],"uniform":true}`,
		},
		{
			name: "order metrics",
			path: "/v1/metrics/order",
			req:  `{"hierarchy":"16,2,2,8","order":"3-2-1-0","comm_size":16}`,
			want: `{"hierarchy":[16,2,2,8],"order":[3,2,1,0],"comm_size":16,"ring_cost":16,"pairs_per_level":[46.666666666666664,53.333333333333336,0,0],"spread_score":0.17777777777777778,"distribution":"block:block","legend":"3-2-1-0 (16 - 46.7, 53.3, 0.0, 0.0)"}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := post(t, ts, tc.path, tc.req)
			if code != http.StatusOK {
				t.Fatalf("status %d, body %s", code, body)
			}
			if body != tc.want {
				t.Errorf("response drifted from golden\n got: %s\nwant: %s", body, tc.want)
			}
		})
	}
}

// The advise endpoint is asserted structurally (its floats encode model
// internals) plus a determinism check: byte-identical responses across
// repeated evaluations, the property caching depends on.
func TestAdviseEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheEntries: -1}) // no cache: force re-evaluation
	req := `{"machine":"hydra","nodes":4,"collective":"alltoall","comm_size":16,"simultaneous":true,"top":3}`
	code, body := post(t, ts, "/v1/advise", req)
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, body)
	}
	var resp AdviseResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Evaluated != 24 {
		t.Errorf("evaluated %d orders, want 4! = 24", resp.Evaluated)
	}
	if len(resp.Best) != 3 {
		t.Fatalf("got %d ranked orders, want 3", len(resp.Best))
	}
	for i := 0; i+1 < len(resp.Best); i++ {
		if resp.Best[i].BandwidthMBs < resp.Best[i+1].BandwidthMBs {
			t.Errorf("ranking not descending at %d: %.1f < %.1f",
				i, resp.Best[i].BandwidthMBs, resp.Best[i+1].BandwidthMBs)
		}
	}
	if resp.Worst.BandwidthMBs > resp.Best[len(resp.Best)-1].BandwidthMBs {
		t.Errorf("worst (%.1f MB/s) beats last ranked (%.1f MB/s)",
			resp.Worst.BandwidthMBs, resp.Best[len(resp.Best)-1].BandwidthMBs)
	}
	for i := 0; i < 3; i++ {
		if code, again := post(t, ts, "/v1/advise", req); code != http.StatusOK || again != body {
			t.Fatalf("re-evaluation %d not byte-identical (status %d)", i, code)
		}
	}
}

func TestMalformedRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, path, req string
		wantStatus      string
	}{
		{"bad json", "/v1/map", `{bad`, "bad_request"},
		{"trailing data", "/v1/map", `{"hierarchy":"2,2,4","rank":1} extra`, "bad_request"},
		{"unknown field", "/v1/map", `{"hierarchy":"2,2,4","rank":1,"bogus":true}`, "bad_request"},
		{"missing mode", "/v1/map", `{"hierarchy":"2,2,4"}`, "bad_request"},
		{"rank and coords", "/v1/map", `{"hierarchy":"2,2,4","rank":1,"coords":[0,0,0]}`, "bad_request"},
		{"empty hierarchy", "/v1/map", `{"hierarchy":"","rank":0}`, "bad_request"},
		{"arity one", "/v1/map", `{"hierarchy":"2,1,4","rank":0}`, "bad_request"},
		{"overflow hierarchy", "/v1/map", `{"hierarchy":"99999,99999,99999","rank":0}`, "bad_request"},
		{"rank out of range", "/v1/map", `{"hierarchy":"2,2,4","rank":16}`, "bad_request"},
		{"non-permutation order", "/v1/map", `{"hierarchy":"2,2,4","order":"0-0-2","rank":1}`, "bad_request"},
		{"order depth mismatch", "/v1/map", `{"hierarchy":"2,2,4","order":"0-1","rank":1}`, "bad_request"},
		{"oversized table", "/v1/map", `{"hierarchy":"64,64,32","table":true}`, "bad_request"},
		{"unknown machine", "/v1/advise", `{"machine":"summit","collective":"alltoall","comm_size":16}`, "bad_request"},
		{"unknown collective", "/v1/advise", `{"machine":"hydra","collective":"bcast","comm_size":16}`, "bad_request"},
		{"comm does not divide", "/v1/advise", `{"machine":"hydra","collective":"alltoall","comm_size":7}`, "bad_request"},
		{"select too many", "/v1/select", `{"hierarchy":"2,2,4","order":"0-1-2","n":17}`, "bad_request"},
		{"select zero", "/v1/select", `{"hierarchy":"2,2,4","order":"0-1-2","n":0}`, "bad_request"},
		{"metrics comm too large", "/v1/metrics/order", `{"hierarchy":"2,2,4","order":"0-1-2","comm_size":64}`, "bad_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := post(t, ts, tc.path, tc.req)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body %s", code, body)
			}
			var eb errorBody
			if err := json.Unmarshal([]byte(body), &eb); err != nil {
				t.Fatalf("error body is not the structured envelope: %s", body)
			}
			if eb.Error.Status != tc.wantStatus || eb.Error.Code != 400 || eb.Error.Message == "" {
				t.Errorf("error envelope %+v, want status %q with a message", eb.Error, tc.wantStatus)
			}
		})
	}
}

func TestOversizedBody(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBody: 256})
	big := fmt.Sprintf(`{"hierarchy":"2,2,4","rank":1,"order":"%s"}`, strings.Repeat(" ", 512))
	for _, path := range []string{"/v1/map", "/v1/advise", "/v1/select", "/v1/metrics/order"} {
		code, body := post(t, ts, path, big)
		if code != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: status %d, want 413; body %s", path, code, body)
		}
		var eb errorBody
		if err := json.Unmarshal([]byte(body), &eb); err != nil || eb.Error.Status != "body_too_large" {
			t.Errorf("%s: unexpected error envelope %s", path, body)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/v1/map", "/v1/advise", "/v1/select", "/v1/metrics/order"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s: status %d, want 405", path, resp.StatusCode)
		}
	}
}

// A warm-cache advise request must be served without re-running the order
// evaluation: the hit counter increments and the eval counter does not.
func TestAdviseCacheHit(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Registry: reg})
	req := `{"machine":"lumi","nodes":4,"collective":"allgather","comm_size":16}`

	code, first := post(t, ts, "/v1/advise", req)
	if code != http.StatusOK {
		t.Fatalf("cold request: status %d, body %s", code, first)
	}
	if got := reg.FindCounter("mapd_cache_misses_total", obs.L("endpoint", "advise")); got != 1 {
		t.Fatalf("cold request: miss counter %v, want 1", got)
	}
	if got := reg.FindCounter("mapd_advise_evals_total"); got != 1 {
		t.Fatalf("cold request: eval counter %v, want 1", got)
	}

	code, second := post(t, ts, "/v1/advise", req)
	if code != http.StatusOK || second != first {
		t.Fatalf("warm request: status %d or body drift", code)
	}
	if got := reg.FindCounter("mapd_cache_hits_total", obs.L("endpoint", "advise")); got != 1 {
		t.Errorf("warm request: hit counter %v, want 1", got)
	}
	if got := reg.FindCounter("mapd_advise_evals_total"); got != 1 {
		t.Errorf("warm request: eval counter %v, want 1 (evaluation re-ran)", got)
	}

	// A canonically identical request with different surface syntax (nodes
	// spelled explicitly = the default bytes value) must also hit.
	code, third := post(t, ts, "/v1/advise",
		`{"machine":"lumi","nodes":4,"collective":"allgather","comm_size":16,"bytes":16777216}`)
	if code != http.StatusOK || third != first {
		t.Fatalf("canonical-equivalent request: status %d or body drift", code)
	}
	if got := reg.FindCounter("mapd_cache_hits_total", obs.L("endpoint", "advise")); got != 2 {
		t.Errorf("canonical-equivalent request: hit counter %v, want 2", got)
	}
}

// Concurrent identical cold-cache advise requests collapse into one
// evaluation via singleflight.
func TestSingleflightCollapsesConcurrentAdvise(t *testing.T) {
	const clients = 8
	reg := obs.NewRegistry()
	s := New(Config{Registry: reg})
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.AdviseHook = func() {
		once.Do(func() { close(started) })
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := `{"machine":"hydra","nodes":8,"collective":"allreduce","comm_size":32}`
	var wg sync.WaitGroup
	codes := make([]int, clients)
	bodies := make([]string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/advise", "application/json", strings.NewReader(req))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			codes[i] = resp.StatusCode
			bodies[i] = string(b)
		}(i)
	}

	// The leader is inside the evaluation; wait until every follower has
	// joined its flight, then let the evaluation finish.
	<-started
	deadline := time.Now().Add(10 * time.Second)
	for reg.FindCounter("mapd_singleflight_shared_total") < clients-1 {
		if time.Now().After(deadline) {
			close(release)
			t.Fatalf("only %v of %d followers joined the flight",
				reg.FindCounter("mapd_singleflight_shared_total"), clients-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	for i := 0; i < clients; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("client %d: status %d, body %s", i, codes[i], bodies[i])
		}
		if bodies[i] != bodies[0] {
			t.Errorf("client %d received a different body", i)
		}
	}
	if got := reg.FindCounter("mapd_advise_evals_total"); got != 1 {
		t.Errorf("eval counter %v, want 1: duplicate advisor work was not collapsed", got)
	}
	if got := reg.FindCounter("mapd_cache_misses_total", obs.L("endpoint", "advise")); got != clients {
		t.Errorf("miss counter %v, want %d (all clients raced the cold cache)", got, clients)
	}
}

// The cache also serves the cheap endpoints; hit/miss counters must track
// exactly.
func TestCacheCountersPerEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Registry: reg})
	reqs := map[string]string{
		"map":           `{"hierarchy":"2,2,4","rank":3}`,
		"select":        `{"hierarchy":"2,2,4","order":"2-1-0","n":4}`,
		"metrics_order": `{"hierarchy":"2,2,4","order":"2-1-0"}`,
	}
	paths := map[string]string{
		"map":           "/v1/map",
		"select":        "/v1/select",
		"metrics_order": "/v1/metrics/order",
	}
	for endpoint, body := range reqs {
		for i := 0; i < 3; i++ {
			if code, b := post(t, ts, paths[endpoint], body); code != http.StatusOK {
				t.Fatalf("%s: status %d, body %s", endpoint, code, b)
			}
		}
		if got := reg.FindCounter("mapd_cache_misses_total", obs.L("endpoint", endpoint)); got != 1 {
			t.Errorf("%s: miss counter %v, want 1", endpoint, got)
		}
		if got := reg.FindCounter("mapd_cache_hits_total", obs.L("endpoint", endpoint)); got != 2 {
			t.Errorf("%s: hit counter %v, want 2", endpoint, got)
		}
	}
}

func TestMetricsAndHealthEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts, "/v1/map", `{"hierarchy":"2,2,4","rank":3}`)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"# TYPE mapd_requests_total counter",
		`mapd_requests_total{code="200",endpoint="map"} 1`,
		"# TYPE mapd_request_seconds histogram",
		"mapd_inflight_requests",
	} {
		if !bytes.Contains(b, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	hb, _ := io.ReadAll(hresp.Body)
	if hresp.StatusCode != http.StatusOK || !bytes.Contains(hb, []byte(`"healthy"`)) {
		t.Errorf("/healthz: status %d, body %s", hresp.StatusCode, hb)
	}
}

// An advise evaluation must surface the order-search observability — the
// equivalence-class hit/miss counters and the search latency histogram —
// on the Prometheus endpoint.
func TestAdviseSearchMetricsExposed(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Registry: reg})
	req := `{"machine":"hydra","nodes":4,"collective":"alltoall","comm_size":16}`
	if code, body := post(t, ts, "/v1/advise", req); code != http.StatusOK {
		t.Fatalf("advise status %d, body %s", code, body)
	}

	hits := reg.SumCounters("advisor_class_hits_total")
	misses := reg.SumCounters("advisor_class_misses_total")
	if hits+misses != 24 {
		t.Errorf("class hits %v + misses %v, want 4! = 24 candidates", hits, misses)
	}
	if hits == 0 {
		t.Errorf("expected class hits on hydra's symmetric hierarchy, got 0")
	}
	// Class sharing happened, so every series is labeled mode="pruned" and
	// the unlabeled series must not exist.
	if v := reg.FindCounter("advisor_class_hits_total", obs.L("mode", "pruned")); v != hits {
		t.Errorf("pruned-labeled hits %v, want all %v", v, hits)
	}
	if v := reg.FindCounter("advisor_class_hits_total"); v != 0 {
		t.Errorf("unlabeled class-hit counter exists: %v", v)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"# TYPE advisor_class_hits_total counter",
		"# TYPE advisor_class_misses_total counter",
		"# TYPE advisor_search_seconds histogram",
		`advisor_class_hits_total{mode="pruned"}`,
		`advisor_search_seconds_count{mode="pruned"} 1`,
	} {
		if !bytes.Contains(b, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// An evaluation that overruns the configured budget produces a structured
// 504, not a hung connection.
func TestEvaluationTimeout(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Registry: reg, Timeout: 10 * time.Millisecond, CacheEntries: -1})
	s.AdviseHook = func() { time.Sleep(50 * time.Millisecond) }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := post(t, ts, "/v1/advise",
		`{"machine":"hydra","nodes":4,"collective":"alltoall","comm_size":16}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body %s", code, body)
	}
	var eb errorBody
	if err := json.Unmarshal([]byte(body), &eb); err != nil || eb.Error.Status != "timeout" {
		t.Errorf("unexpected error envelope: %s", body)
	}
}
