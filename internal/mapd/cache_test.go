package mapd

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCacheHitMissAndUpdate(t *testing.T) {
	c := NewCache(8, 2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.Put("a", []byte("1"))
	if v, ok := c.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	c.Put("a", []byte("2"))
	if v, _ := c.Get("a"); string(v) != "2" {
		t.Fatalf("update lost: %q", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// One shard makes the LRU order fully observable.
	c := NewCache(2, 1)
	c.Put("a", []byte("a"))
	c.Put("b", []byte("b"))
	c.Get("a") // a is now more recently used than b
	c.Put("c", []byte("c"))
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction but was least recently used")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s was evicted but should have been retained", k)
		}
	}
}

func TestCacheCapacityBound(t *testing.T) {
	const capacity = 64
	c := NewCache(capacity, 16)
	for i := 0; i < 10*capacity; i++ {
		c.Put(fmt.Sprintf("key-%d", i), []byte("v"))
	}
	// Per-shard rounding may admit slightly more than capacity, never more
	// than one extra entry per shard.
	if n := c.Len(); n > capacity+16 {
		t.Errorf("cache holds %d entries, capacity %d over 16 shards", n, capacity)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(-1, 4)
	c.Put("a", []byte("1"))
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache stored an entry")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(128, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := fmt.Sprintf("key-%d", i%200)
				c.Put(k, []byte(k))
				if v, ok := c.Get(k); ok && string(v) != k {
					t.Errorf("Get(%s) returned %q", k, v)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestFlightGroupSequential(t *testing.T) {
	var g flightGroup
	calls := 0
	for i := 0; i < 3; i++ {
		v, err, shared := g.Do("k", func() ([]byte, error) {
			calls++
			return []byte("v"), nil
		})
		if err != nil || string(v) != "v" || shared {
			t.Fatalf("Do = %q, %v, shared=%v", v, err, shared)
		}
	}
	// Sequential callers never overlap, so each runs its own evaluation.
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestFlightGroupConcurrent(t *testing.T) {
	var g flightGroup
	const n = 16
	gate := make(chan struct{})
	entered := make(chan struct{})
	var calls, sharedCount int
	var mu sync.Mutex
	g.onShared = func() {
		mu.Lock()
		sharedCount++
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, _ := g.Do("k", func() ([]byte, error) {
				close(entered)
				<-gate
				mu.Lock()
				calls++
				mu.Unlock()
				return []byte("v"), nil
			})
			if err != nil || string(v) != "v" {
				t.Errorf("Do = %q, %v", v, err)
			}
		}()
	}
	<-entered
	// Wait for every follower to join, then release the leader. The leader
	// is parked on gate, so joining is the only way forward.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		joined := sharedCount
		mu.Unlock()
		if joined == n-1 {
			break
		}
		if time.Now().After(deadline) {
			close(gate)
			t.Fatalf("only %d of %d followers joined the flight", joined, n-1)
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(gate)
	wg.Wait()
	if calls != 1 {
		t.Fatalf("fn ran %d times for %d concurrent callers, want 1", calls, n)
	}
}
