// Request validation. Every limit here exists so that a hostile or
// malformed request cannot make the service panic or allocate without
// bound: hierarchy sizes are recomputed with explicit overflow checks
// before any package that panics on overflow (mixedradix.Size) sees them,
// orders must be permutations of the hierarchy depth, and table-sized
// responses are capped.

package mapd

import (
	"errors"
	"fmt"

	"repro/internal/advisor"
	"repro/internal/cluster"
	"repro/internal/commmatrix"
	"repro/internal/netmodel"
	"repro/internal/perm"
	"repro/internal/topology"
)

// Validation bounds. They are intentionally generous — far above anything
// the paper's machines need — while keeping every accepted request cheap
// enough to evaluate synchronously.
const (
	// MaxDepth bounds hierarchy depth for all endpoints.
	MaxDepth = 12
	// MaxCores bounds the total core count a hierarchy may enumerate.
	MaxCores = 1 << 20
	// MaxTable bounds the size of a full mapping table response.
	MaxTable = 1 << 16
	// MaxAdviseDepth bounds the hierarchy depth of an advise request. Up
	// to MaxExactAdviseDepth the k! search runs; deeper hierarchies are
	// served by the bounded branch-and-bound / beam search, which is
	// polynomial-ish in practice (node-budgeted) rather than factorial.
	MaxAdviseDepth = 12
	// MaxExactAdviseDepth bounds the exhaustive order search (8! = 40320
	// evaluations) and therefore the configurable exact/bounded depth
	// threshold.
	MaxExactAdviseDepth = 8
	// MaxAdviseNodes bounds the machine size of an advise request.
	MaxAdviseNodes = 4096
	// MaxTop bounds how many ranked orders an advise response carries.
	MaxTop = 64
	// MaxMatrixRanks bounds the rank count of a matrix-map request: the
	// refinement is superlinear in ranks, and the synchronous budget must
	// hold even for dense matrices.
	MaxMatrixRanks = 1024
	// MaxMatrixDepth bounds the hierarchy depth of a matrix-map request —
	// the σ baseline enumerates k! digit orders (6! = 720).
	MaxMatrixDepth = 6
	// MaxMatrixEdges bounds the sparse matrix's edge count.
	MaxMatrixEdges = 1 << 14
	// MaxMatrixRounds bounds the requested refinement rounds.
	MaxMatrixRounds = 64
)

// ErrBadRequest marks a client error (HTTP 400). Every parse/validation
// failure wraps it.
var ErrBadRequest = errors.New("mapd: bad request")

func badf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadRequest, fmt.Sprintf(format, args...))
}

// parseHierarchy parses and bounds a hierarchy description.
func parseHierarchy(s string) (topology.Hierarchy, error) {
	if len(s) > 256 {
		return topology.Hierarchy{}, badf("hierarchy description longer than 256 bytes")
	}
	h, err := topology.Parse(s)
	if err != nil {
		return topology.Hierarchy{}, badf("%v", err)
	}
	if h.Depth() > MaxDepth {
		return topology.Hierarchy{}, badf("hierarchy depth %d exceeds %d", h.Depth(), MaxDepth)
	}
	// Recompute the size with an explicit overflow check: mixedradix.Size
	// panics on overflow and must never see an unvalidated hierarchy.
	size := 1
	for _, a := range h.Arities() {
		if a > MaxCores || size > MaxCores/a {
			return topology.Hierarchy{}, badf("hierarchy enumerates more than %d cores", MaxCores)
		}
		size *= a
	}
	return h, nil
}

// parseOrder parses an order for a depth-k hierarchy; empty means the
// identity order (initial enumeration).
func parseOrder(s string, k int) ([]int, error) {
	if s == "" {
		return perm.Reversed(k), nil // mixedradix.IdentityOrder
	}
	if len(s) > 256 {
		return nil, badf("order description longer than 256 bytes")
	}
	sigma, err := perm.Parse(s)
	if err != nil {
		return nil, badf("%v", err)
	}
	if len(sigma) != k {
		return nil, badf("order %s has %d levels, hierarchy has %d", perm.Format(sigma), len(sigma), k)
	}
	return sigma, nil
}

// parsedMap is the canonical form of a MapRequest.
type parsedMap struct {
	h       topology.Hierarchy
	arities []int
	sigma   []int
	rank    *int
	coords  []int
	table   bool
}

func (r *MapRequest) parse() (*parsedMap, error) {
	h, err := parseHierarchy(r.Hierarchy)
	if err != nil {
		return nil, err
	}
	sigma, err := parseOrder(r.Order, h.Depth())
	if err != nil {
		return nil, err
	}
	q := &parsedMap{h: h, arities: h.Arities(), sigma: sigma, table: r.Table}
	modes := 0
	if r.Rank != nil {
		modes++
		if *r.Rank < 0 || *r.Rank >= h.Size() {
			return nil, badf("rank %d outside [0, %d)", *r.Rank, h.Size())
		}
		rk := *r.Rank
		q.rank = &rk
	}
	if r.Coords != nil {
		modes++
		if len(r.Coords) != h.Depth() {
			return nil, badf("%d coordinates for %d levels", len(r.Coords), h.Depth())
		}
		for i, c := range r.Coords {
			if c < 0 || c >= q.arities[i] {
				return nil, badf("coordinate %d is %d, want [0, %d)", i, c, q.arities[i])
			}
		}
		q.coords = append([]int(nil), r.Coords...)
	}
	if r.Table {
		if h.Size() > MaxTable {
			return nil, badf("table for %d ranks exceeds the %d-rank limit", h.Size(), MaxTable)
		}
	} else if modes == 0 {
		return nil, badf("one of rank, coords, or table is required")
	}
	if modes > 1 {
		return nil, badf("rank and coords are mutually exclusive")
	}
	return q, nil
}

// parsedAdvise is the canonical form of an AdviseRequest.
type parsedAdvise struct {
	machine      string
	nodes        int
	nics         int
	depth        int // cloud only; 0 for the fixed-shape machines
	coll         advisor.Collective
	comm         int
	bytes        int64
	simultaneous bool
	top          int
	spec         netmodel.Spec
}

func (r *AdviseRequest) parse() (*parsedAdvise, error) {
	q := &parsedAdvise{
		machine:      r.Machine,
		nodes:        r.Nodes,
		nics:         r.NICs,
		depth:        r.Depth,
		comm:         r.CommSize,
		bytes:        r.Bytes,
		simultaneous: r.Simultaneous,
		top:          r.Top,
	}
	if q.machine != "cloud" && r.Depth != 0 {
		return nil, badf("depth applies only to machine cloud")
	}
	if q.nodes == 0 {
		q.nodes = 16
	}
	if q.nodes < 2 || q.nodes > MaxAdviseNodes {
		return nil, badf("nodes %d outside [2, %d]", q.nodes, MaxAdviseNodes)
	}
	if q.nics == 0 {
		q.nics = 1
	}
	if q.nics < 1 || q.nics > 8 {
		return nil, badf("nics %d outside [1, 8]", q.nics)
	}
	switch q.machine {
	case "hydra":
		q.spec = cluster.Hydra(q.nodes, q.nics)
	case "hydra-real":
		q.spec = cluster.HydraReal(q.nodes, q.nics)
	case "lumi":
		if r.NICs != 0 && r.NICs != 1 {
			return nil, badf("machine lumi has a fixed NIC configuration")
		}
		q.spec = cluster.LUMI(q.nodes)
	case "cloud":
		if r.Nodes != 0 {
			return nil, badf("machine cloud is sized by depth, not nodes")
		}
		if r.NICs != 0 && r.NICs != 1 {
			return nil, badf("machine cloud has a fixed NIC configuration")
		}
		if q.depth == 0 {
			q.depth = 10
		}
		if q.depth < cluster.CloudMinDepth || q.depth > cluster.CloudMaxDepth {
			return nil, badf("cloud depth %d outside [%d, %d]",
				q.depth, cluster.CloudMinDepth, cluster.CloudMaxDepth)
		}
		// Canonical form: nodes/nics are meaningless for cloud, so zero
		// them out of the cache key.
		q.nodes, q.nics = 0, 0
		q.spec = cluster.Cloud(q.depth)
	case "":
		return nil, badf("machine is required (hydra, hydra-real, lumi, or cloud)")
	default:
		return nil, badf("unknown machine %q (want hydra, hydra-real, lumi, or cloud)", q.machine)
	}
	h := q.spec.Hierarchy()
	if h.Depth() > MaxAdviseDepth {
		return nil, badf("advise hierarchy depth %d exceeds %d", h.Depth(), MaxAdviseDepth)
	}
	switch advisor.Collective(r.Collective) {
	case advisor.Alltoall, advisor.Allgather, advisor.Allreduce:
		q.coll = advisor.Collective(r.Collective)
	default:
		return nil, badf("unknown collective %q (want alltoall, allgather, or allreduce)", r.Collective)
	}
	if q.comm <= 0 || h.Size()%q.comm != 0 {
		return nil, badf("comm_size %d does not divide %d", q.comm, h.Size())
	}
	if q.bytes == 0 {
		q.bytes = 16 << 20
	}
	if q.bytes < 1 || q.bytes > 1<<40 {
		return nil, badf("bytes %d outside [1, 2^40]", q.bytes)
	}
	if q.top == 0 {
		q.top = 5
	}
	if q.top < 1 || q.top > MaxTop {
		return nil, badf("top %d outside [1, %d]", q.top, MaxTop)
	}
	return q, nil
}

func (q *parsedAdvise) scenario() advisor.Scenario {
	return advisor.Scenario{
		Spec:         q.spec,
		Hierarchy:    q.spec.Hierarchy(),
		Coll:         q.coll,
		CommSize:     q.comm,
		Simultaneous: q.simultaneous,
		Bytes:        q.bytes,
	}
}

// parsedSelect is the canonical form of a SelectRequest.
type parsedSelect struct {
	h       topology.Hierarchy
	arities []int
	sigma   []int
	n       int
}

func (r *SelectRequest) parse() (*parsedSelect, error) {
	h, err := parseHierarchy(r.Hierarchy)
	if err != nil {
		return nil, err
	}
	sigma, err := parseOrder(r.Order, h.Depth())
	if err != nil {
		return nil, err
	}
	if r.N <= 0 || r.N > h.Size() {
		return nil, badf("cannot select %d cores from %d", r.N, h.Size())
	}
	if r.N > MaxTable {
		return nil, badf("selection of %d cores exceeds the %d-core limit", r.N, MaxTable)
	}
	return &parsedSelect{h: h, arities: h.Arities(), sigma: sigma, n: r.N}, nil
}

// parsedMatrixMap is the canonical form of a MatrixMapRequest.
type parsedMatrixMap struct {
	h       topology.Hierarchy
	arities []int
	m       *commmatrix.Matrix
	digest  string
	seed    int64
	rounds  int
	refine  bool
}

func (r *MatrixMapRequest) parse() (*parsedMatrixMap, error) {
	h, err := parseHierarchy(r.Hierarchy)
	if err != nil {
		return nil, err
	}
	if h.Depth() > MaxMatrixDepth {
		return nil, badf("matrix-map hierarchy depth %d exceeds %d", h.Depth(), MaxMatrixDepth)
	}
	if h.Size() > MaxMatrixRanks {
		return nil, badf("matrix-map hierarchy enumerates %d ranks, limit %d", h.Size(), MaxMatrixRanks)
	}
	if len(r.Matrix.Edges) > MaxMatrixEdges {
		return nil, badf("matrix has %d edges, limit %d", len(r.Matrix.Edges), MaxMatrixEdges)
	}
	if err := r.Matrix.Validate(); err != nil {
		return nil, badf("%v", err)
	}
	if r.Matrix.Ranks != h.Size() {
		return nil, badf("matrix covers %d ranks, hierarchy enumerates %d", r.Matrix.Ranks, h.Size())
	}
	if r.MaxRounds < 0 || r.MaxRounds > MaxMatrixRounds {
		return nil, badf("max_rounds %d outside [0, %d]", r.MaxRounds, MaxMatrixRounds)
	}
	m, err := commmatrix.FromSparse(r.Matrix)
	if err != nil {
		return nil, badf("%v", err)
	}
	q := &parsedMatrixMap{
		h:       h,
		arities: h.Arities(),
		m:       m,
		digest:  r.Matrix.Digest(),
		seed:    r.Seed,
		rounds:  r.MaxRounds,
		refine:  true,
	}
	if r.Refine != nil {
		q.refine = *r.Refine
	}
	return q, nil
}

// parsedOrderMetrics is the canonical form of an OrderMetricsRequest.
type parsedOrderMetrics struct {
	h       topology.Hierarchy
	arities []int
	sigma   []int
	comm    int
}

func (r *OrderMetricsRequest) parse() (*parsedOrderMetrics, error) {
	h, err := parseHierarchy(r.Hierarchy)
	if err != nil {
		return nil, err
	}
	sigma, err := parseOrder(r.Order, h.Depth())
	if err != nil {
		return nil, err
	}
	comm := r.CommSize
	if comm == 0 {
		comm = h.Level(h.Depth() - 1).Arity
	}
	if comm < 2 || comm > h.Size() {
		return nil, badf("comm_size %d outside [2, %d]", comm, h.Size())
	}
	// PairsPerLevel is O(comm²); bound the quadratic work.
	if comm > 1<<12 {
		return nil, badf("comm_size %d exceeds the %d-rank metrics limit", comm, 1<<12)
	}
	return &parsedOrderMetrics{h: h, arities: h.Arities(), sigma: sigma, comm: comm}, nil
}
