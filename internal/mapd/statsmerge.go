// Fleet-level merging of per-replica workload analytics. Each replica's
// GET /v1/stats answer is a mergeable summary: the Space-Saving top-K
// classes carry their own overestimation bound, the distinct-class
// sketch exports its raw registers, and the histograms are plain counts.
// MergeStats combines them under the standard mergeable-summaries rules
// so the rollup keeps the per-replica guarantees:
//
//   - For a class the merged report tracks, Requests ≥ the true fleet
//     count, and Requests − CountErr ≤ the true fleet count. A replica
//     that does not track the class contributes its minimum tracked
//     count to both sides when its summary is full (an untracked item's
//     true count is bounded by the minimum), and zero when it is not
//     (every seen item is tracked, so absence means a true zero).
//   - Distinct-class registers merge by per-register max — exactly the
//     sketch a single aggregator observing the union stream would hold.
//   - Depth/collective/search-mode/endpoint histograms are exact sums.

package mapd

import "sort"

// MergeStats merges per-replica stats reports into one fleet-level
// report. Merged per-class latency percentiles are the max across the
// replicas that track the class (a conservative fleet-tail bound; the
// raw buckets are not exported). The merged top-K capacity is the
// largest input capacity.
func MergeStats(reports []StatsReport) StatsReport {
	out := StatsReport{
		Collectives: map[string]uint64{},
		SearchModes: map[string]uint64{},
		Endpoints:   map[string]uint64{},
	}
	if len(reports) == 0 {
		out.MaxClasses = DefaultStatsClasses
		return out
	}

	var hits float64
	var depth [MaxDepth + 1]uint64
	var sketch [sketchRegisters]uint8
	sketched := false
	estimateMax := 0
	for _, r := range reports {
		out.TotalRequests += r.TotalRequests
		out.Evictions += r.Evictions
		hits += r.CacheHitRate * float64(r.TotalRequests)
		if r.MaxClasses > out.MaxClasses {
			out.MaxClasses = r.MaxClasses
		}
		if r.DistinctClassesEstimate > estimateMax {
			estimateMax = r.DistinctClassesEstimate
		}
		if len(r.DistinctSketch) == sketchRegisters {
			sketched = true
			for i, v := range r.DistinctSketch {
				if v > 0 && uint8(v) > sketch[i] {
					sketch[i] = uint8(v)
				}
			}
		}
		for _, d := range r.Depths {
			if d.Depth >= 0 && d.Depth <= MaxDepth {
				depth[d.Depth] += d.Requests
			}
		}
		for k, v := range r.Collectives {
			out.Collectives[k] += v
		}
		for k, v := range r.SearchModes {
			out.SearchModes[k] += v
		}
		for k, v := range r.Endpoints {
			out.Endpoints[k] += v
		}
	}
	if out.MaxClasses == 0 {
		out.MaxClasses = DefaultStatsClasses
	}
	if out.TotalRequests > 0 {
		out.CacheHitRate = hits / float64(out.TotalRequests)
	}
	if sketched {
		out.DistinctSketch = make([]int, sketchRegisters)
		for i, v := range sketch {
			out.DistinctSketch[i] = int(v)
		}
		out.DistinctClassesEstimate = estimateDistinct(sketch[:])
	} else {
		// No replica exported registers (e.g. an older build): the max of
		// the estimates is the best available lower bound on the union.
		out.DistinctClassesEstimate = estimateMax
	}
	for d, n := range depth {
		if n > 0 {
			out.Depths = append(out.Depths, DepthCount{Depth: d, Requests: n})
		}
	}

	// Space-Saving merge: union the classes; a replica not tracking a
	// shape charges its eviction floor to both the estimate and the error
	// bound when (and only when) its summary is full.
	byReplica := make([]map[string]ClassReport, len(reports))
	floors := make([]uint64, len(reports))
	union := map[string]bool{}
	for i, r := range reports {
		byReplica[i] = make(map[string]ClassReport, len(r.Classes))
		for _, c := range r.Classes {
			byReplica[i][c.Shape] = c
			union[c.Shape] = true
		}
		floors[i] = evictionFloor(r)
	}
	merged := make([]ClassReport, 0, len(union))
	for shape := range union {
		m := ClassReport{Shape: shape}
		for i := range reports {
			c, ok := byReplica[i][shape]
			if !ok {
				m.Requests += floors[i]
				m.CountErr += floors[i]
				continue
			}
			m.Requests += c.Requests
			m.CountErr += c.CountErr
			m.CacheHits += c.CacheHits
			if c.P50Ms > m.P50Ms {
				m.P50Ms = c.P50Ms
			}
			if c.P99Ms > m.P99Ms {
				m.P99Ms = c.P99Ms
			}
		}
		if m.Requests > 0 {
			m.CacheHitRate = float64(m.CacheHits) / float64(m.Requests)
		}
		merged = append(merged, m)
	}

	out.Classes = merged
	sort.Slice(out.Classes, func(i, j int) bool {
		if out.Classes[i].Requests != out.Classes[j].Requests {
			return out.Classes[i].Requests > out.Classes[j].Requests
		}
		return out.Classes[i].Shape < out.Classes[j].Shape
	})
	if len(out.Classes) > out.MaxClasses {
		out.Classes = out.Classes[:out.MaxClasses]
	}
	out.TrackedClasses = len(out.Classes)
	return out
}

// evictionFloor is the per-replica bound on the true count of any shape
// the replica does not track: when its Space-Saving summary is full, the
// minimum tracked count (an untracked item can never exceed the minimum,
// or it would have evicted it); when the summary never filled, zero —
// every shape the replica ever saw is in its class list.
func evictionFloor(r StatsReport) uint64 {
	if r.MaxClasses <= 0 || r.TrackedClasses < r.MaxClasses {
		return 0
	}
	var min uint64
	first := true
	for _, c := range r.Classes {
		if first || c.Requests < min {
			min = c.Requests
			first = false
		}
	}
	if first {
		return 0
	}
	return min
}
