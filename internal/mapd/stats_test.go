// Workload-analytics tests: the Space-Saving bound, the percentile
// sketch, the distinct-class estimator, and the end-to-end guarantee
// the aggregator exists for — /v1/stats stays cardinality-bounded no
// matter how many distinct shapes the request stream invents.

package mapd

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestWorkloadStatsSpaceSaving(t *testing.T) {
	st := newWorkloadStats(2)
	for i := 0; i < 5; i++ {
		st.observe("map", &statInfo{shape: []int{2, 2}}, false, time.Millisecond)
	}
	for i := 0; i < 3; i++ {
		st.observe("map", &statInfo{shape: []int{2, 4}}, true, time.Millisecond)
	}
	// A third class must evict the minimum (2,4) and inherit its count as
	// the overestimation bound.
	st.observe("map", &statInfo{shape: []int{4, 4}}, false, time.Millisecond)

	rep := st.report()
	if rep.TrackedClasses != 2 || len(rep.Classes) != 2 {
		t.Fatalf("tracked %d classes (%d reported), want 2", rep.TrackedClasses, len(rep.Classes))
	}
	if rep.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", rep.Evictions)
	}
	if rep.TotalRequests != 9 {
		t.Fatalf("total = %d, want 9", rep.TotalRequests)
	}
	if rep.Classes[0].Shape != "2,2" || rep.Classes[0].Requests != 5 || rep.Classes[0].CountErr != 0 {
		t.Fatalf("top class %+v, want 2,2 with 5 exact requests", rep.Classes[0])
	}
	// Space-Saving: the newcomer's count is min+1 with err = min.
	if rep.Classes[1].Shape != "4,4" || rep.Classes[1].Requests != 4 || rep.Classes[1].CountErr != 3 {
		t.Fatalf("evicting class %+v, want 4,4 requests=4 err=3", rep.Classes[1])
	}
}

func TestWorkloadStatsPercentiles(t *testing.T) {
	var c classStat
	// 97 fast observations and three slow ones: p50 stays near the fast
	// cluster, the nearest-rank p99 (99th of 100) lands in the outliers.
	for i := 0; i < 97; i++ {
		c.observe(false, 100*time.Microsecond)
	}
	for i := 0; i < 3; i++ {
		c.observe(false, 80*time.Millisecond)
	}
	p50, p99 := c.percentile(0.50), c.percentile(0.99)
	if p50 <= 0 || p50 > 1 {
		t.Fatalf("p50 = %vms, want within (0, 1ms] for ~100µs samples", p50)
	}
	if p99 < 1 {
		t.Fatalf("p99 = %vms, want pulled up by the 80ms outlier", p99)
	}
	if p99 < p50 {
		t.Fatalf("p99 %v < p50 %v", p99, p50)
	}
}

func TestWorkloadStatsDistinctEstimate(t *testing.T) {
	st := newWorkloadStats(4)
	for i := 0; i < 200; i++ {
		st.observe("map", &statInfo{shape: []int{2, 2 + i}}, false, time.Millisecond)
	}
	got := st.report()
	if got.TrackedClasses > 4 {
		t.Fatalf("tracked %d classes with K=4", got.TrackedClasses)
	}
	// 64 registers give ±13% standard error; accept a generous 2× band.
	if got.DistinctClassesEstimate < 100 || got.DistinctClassesEstimate > 400 {
		t.Fatalf("distinct estimate %d for 200 true classes", got.DistinctClassesEstimate)
	}
}

// TestStatsEndpointBoundedCardinality is the end-to-end guarantee: a
// request stream with more distinct shape classes than K yields a
// /v1/stats answer and a /metrics exposition both bounded by K.
func TestStatsEndpointBoundedCardinality(t *testing.T) {
	const k = 4
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Registry: reg, StatsClasses: k})

	shapes := []string{"2,2", "2,3", "2,4", "2,5", "2,6", "2,7", "2,8", "3,3", "3,4", "3,5"}
	for pass := 0; pass < 2; pass++ {
		for _, h := range shapes {
			body := fmt.Sprintf(`{"hierarchy":"%s","rank":1}`, h)
			if code, b := post(t, ts, "/v1/map", body); code != http.StatusOK {
				t.Fatalf("map %s: status %d, body %s", h, code, b)
			}
		}
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/stats status %d", resp.StatusCode)
	}
	var rep StatsReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.MaxClasses != k {
		t.Errorf("max_classes = %d, want %d", rep.MaxClasses, k)
	}
	if rep.TrackedClasses > k || len(rep.Classes) > k {
		t.Fatalf("cardinality bound violated: tracked %d, reported %d, K=%d",
			rep.TrackedClasses, len(rep.Classes), k)
	}
	if rep.TotalRequests != uint64(2*len(shapes)) {
		t.Errorf("total = %d, want %d", rep.TotalRequests, 2*len(shapes))
	}
	// The second pass is served from cache.
	if rep.CacheHitRate < 0.4 || rep.CacheHitRate > 0.6 {
		t.Errorf("cache hit rate %v, want ≈ 0.5", rep.CacheHitRate)
	}
	if rep.Evictions == 0 {
		t.Error("10 classes through a K=4 summary produced no evictions")
	}
	if rep.DistinctClassesEstimate < k {
		t.Errorf("distinct estimate %d, want ≥ K", rep.DistinctClassesEstimate)
	}
	found := false
	for _, d := range rep.Depths {
		if d.Depth == 2 && d.Requests == uint64(2*len(shapes)) {
			found = true
		}
	}
	if !found {
		t.Errorf("depth histogram missing the depth-2 bar: %+v", rep.Depths)
	}

	// The /metrics mirror: at most K live (non-zero) class series.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mb, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	live := 0
	for _, line := range strings.Split(string(mb), "\n") {
		if strings.HasPrefix(line, "mapd_stats_class_requests{") && !strings.HasSuffix(line, " 0") {
			live++
		}
	}
	if live == 0 || live > k {
		t.Fatalf("%d live class series on /metrics, want within [1, %d]", live, k)
	}
}

// TestStatsSearchModeSplit drives the three search modes end to end: a
// pruned advise, an exact (degenerate) one is skipped here, and the
// breaker-open fallback; /v1/stats must attribute each.
func TestStatsSearchModeSplit(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Config{
		Registry:         reg,
		CacheEntries:     -1,
		Timeout:          5 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
	})

	req := `{"machine":"hydra","nodes":4,"collective":"alltoall","comm_size":16}`
	// One healthy evaluation first: hydra's symmetric hierarchy prunes.
	if code, b := post(t, ts, "/v1/advise", req); code != http.StatusOK {
		t.Fatalf("advise status %d, body %s", code, b)
	}

	// Now trip the breaker and collect a fallback answer.
	s.AdviseHook = func() { time.Sleep(30 * time.Millisecond) }
	req2 := `{"machine":"hydra","nodes":4,"collective":"allreduce","comm_size":16}`
	for i := 0; i < 2; i++ {
		if code, _ := post(t, ts, "/v1/advise", req2); code != http.StatusGatewayTimeout {
			t.Fatalf("warm-up %d: want 504", i)
		}
	}
	code, b := post(t, ts, "/v1/advise", req)
	if code != http.StatusOK {
		t.Fatalf("fallback status %d, body %s", code, b)
	}

	var rep StatsReport
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.SearchModes["pruned"] < 1 {
		t.Errorf("search modes %v missing the pruned search", rep.SearchModes)
	}
	if rep.SearchModes["fallback"] != 1 {
		t.Errorf("search modes %v, want exactly 1 fallback", rep.SearchModes)
	}
	if rep.Collectives["alltoall"] < 1 {
		t.Errorf("collectives %v missing alltoall", rep.Collectives)
	}

	// The fallback is also on the advisor metric family, labeled.
	ml := obs.L("mode", "fallback")
	if v := reg.FindCounter("advisor_class_misses_total", ml); v != 24 {
		t.Errorf("fallback class misses = %v, want 24 heuristic evaluations", v)
	}
}
