// Live progress of in-flight deep advises. Depth-12 searches run for
// seconds; GET /v1/advise/progress shows what the bounded search is
// doing right now — nodes covered, incumbent quality, bound gap —
// instead of leaving the operator staring at a silent request. The
// table keeps every in-flight search plus a short ring of recently
// finished ones so a poll just after completion still sees the final
// tallies.

package mapd

import (
	"sort"
	"sync"
	"time"

	"repro/internal/advisor"
)

// defaultProgressRecent is how many finished searches the progress
// endpoint keeps for post-hoc inspection.
const defaultProgressRecent = 16

// SearchProgressEntry is one row of GET /v1/advise/progress: the latest
// snapshot of a bounded order search, in flight or recently finished.
type SearchProgressEntry struct {
	// Key is the canonical cache key of the advise request being searched.
	Key string `json:"key"`
	// Mode is the search phase that produced the latest event (bnb/beam).
	Mode string `json:"mode,omitempty"`
	// ElapsedMs is the search time at the latest event, milliseconds.
	ElapsedMs float64 `json:"elapsed_ms"`
	// Nodes / Evaluated / Covered / Pruned are the tree tallies at the
	// latest event.
	Nodes     int64 `json:"nodes"`
	Evaluated int64 `json:"evaluated"`
	Covered   int64 `json:"covered"`
	Pruned    int64 `json:"pruned"`
	// IncumbentSeconds is the best completion time found so far (0 until
	// the first leaf lands).
	IncumbentSeconds float64 `json:"incumbent_seconds"`
	// BoundGap is (incumbent − root lower bound)/incumbent ∈ [0, 1).
	BoundGap float64 `json:"bound_gap"`
	// Improvements counts incumbent-improvement events so far.
	Improvements int64 `json:"improvements"`
	// Done marks a finished search (the entry lives in the recent ring).
	Done bool `json:"done"`
}

// SearchProgressReport is the GET /v1/advise/progress response body.
type SearchProgressReport struct {
	InFlight []SearchProgressEntry `json:"in_flight"`
	Recent   []SearchProgressEntry `json:"recent"`
}

// progressTable tracks bounded searches for the progress endpoint. All
// methods are safe for concurrent use; updates arrive from search
// worker goroutines while reads come from HTTP handlers.
type progressTable struct {
	mu       sync.Mutex
	seq      int64
	inflight map[*progressHandle]struct{}
	recent   []SearchProgressEntry // most recent first
	keep     int
}

func newProgressTable(keep int) *progressTable {
	if keep <= 0 {
		keep = defaultProgressRecent
	}
	return &progressTable{inflight: map[*progressHandle]struct{}{}, keep: keep}
}

// progressHandle is one search's registration. update matches the
// advisor.SearchOptions.Progress signature; finish moves the entry to
// the recent ring.
type progressHandle struct {
	t     *progressTable
	start time.Time
	seq   int64

	mu    sync.Mutex
	entry SearchProgressEntry
}

// start registers an in-flight search under the request's cache key.
func (t *progressTable) start(key string) *progressHandle {
	h := &progressHandle{t: t, start: time.Now(), entry: SearchProgressEntry{Key: key}}
	t.mu.Lock()
	t.seq++
	h.seq = t.seq
	t.inflight[h] = struct{}{}
	t.mu.Unlock()
	return h
}

// update folds one search progress event into the entry.
func (h *progressHandle) update(p advisor.SearchProgress) {
	h.mu.Lock()
	defer h.mu.Unlock()
	e := &h.entry
	e.Mode = p.Mode
	e.ElapsedMs = float64(p.Elapsed) / float64(time.Millisecond)
	e.Nodes = p.Nodes
	e.Evaluated = p.Evaluated
	e.Covered = p.Covered
	e.Pruned = p.Pruned
	if p.Kind == advisor.ProgressIncumbent {
		e.Improvements++
		e.IncumbentSeconds = p.IncumbentTime
		e.BoundGap = p.BoundGap
	}
}

// finish retires the search into the recent ring.
func (h *progressHandle) finish() {
	h.mu.Lock()
	e := h.entry
	h.mu.Unlock()
	e.Done = true
	t := h.t
	t.mu.Lock()
	delete(t.inflight, h)
	t.recent = append([]SearchProgressEntry{e}, t.recent...)
	if len(t.recent) > t.keep {
		t.recent = t.recent[:t.keep]
	}
	t.mu.Unlock()
}

// report snapshots the table: in-flight searches oldest first, then the
// recently finished ring newest first.
func (t *progressTable) report() SearchProgressReport {
	t.mu.Lock()
	handles := make([]*progressHandle, 0, len(t.inflight))
	for h := range t.inflight {
		handles = append(handles, h)
	}
	recent := append([]SearchProgressEntry(nil), t.recent...)
	t.mu.Unlock()
	sort.Slice(handles, func(i, j int) bool { return handles[i].seq < handles[j].seq })
	rep := SearchProgressReport{
		InFlight: make([]SearchProgressEntry, 0, len(handles)),
		Recent:   recent,
	}
	for _, h := range handles {
		h.mu.Lock()
		rep.InFlight = append(rep.InFlight, h.entry)
		h.mu.Unlock()
	}
	return rep
}
