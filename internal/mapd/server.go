// The HTTP/JSON service: four query endpoints behind a shared
// cache → singleflight → evaluate pipeline, a Prometheus /metrics
// endpoint, and structured error responses. Every request is bounded — a
// body-size cap before parsing, validation limits in parse.go, and a
// per-evaluation timeout — so the daemon stays predictable under abusive
// or accidental load.
//
// Telemetry wraps the whole pipeline: a middleware extracts/injects W3C
// traceparent headers and opens the request's root span, the cache,
// singleflight, breaker-fallback and evaluation stages annotate child
// spans, one structured log line per request carries the trace id, every
// error body quotes it, and each request outcome feeds the rolling SLO
// burn-rate tracker surfaced on /v1/slo, /metrics, and /healthz.

package mapd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/advisor"
	"repro/internal/obs"
	"repro/internal/obs/rt"
)

// Config tunes a Server. The zero value picks production defaults.
type Config struct {
	// CacheEntries bounds the result cache (default 4096; negative
	// disables caching).
	CacheEntries int
	// CacheShards is the shard count of the cache (default 16, rounded up
	// to a power of two).
	CacheShards int
	// AdviseWorkers bounds the worker pool of one order-ranking evaluation
	// (default GOMAXPROCS).
	AdviseWorkers int
	// SearchDepthThreshold is the largest hierarchy depth /v1/advise
	// serves with the exhaustive (exact/pruned) ranking; deeper
	// hierarchies run the bounded branch-and-bound / beam search.
	// 0 means DefaultSearchDepthThreshold; values clamp to
	// [1, MaxExactAdviseDepth].
	SearchDepthThreshold int
	// MaxBody caps the request body in bytes (default 1 MiB).
	MaxBody int64
	// Timeout bounds one evaluation (default 10 s). Evaluations run on a
	// context detached from the client connection so a singleflight result
	// survives its first requester hanging up.
	Timeout time.Duration
	// MaxInflight caps concurrently served requests; excess requests are
	// shed with 503 + Retry-After instead of queueing without bound
	// (default 512; negative disables shedding).
	MaxInflight int
	// BreakerThreshold opens the advisor circuit breaker after this many
	// consecutive evaluation failures (default 5; negative disables the
	// breaker).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before letting a
	// probe evaluation through (default 10 s).
	BreakerCooldown time.Duration
	// MatrixBudget bounds one matrix-aware placement search. A search that
	// exceeds it degrades to the σ-order fallback (answered 200, flagged
	// degraded, uncached) instead of failing with 504 (default: Timeout).
	MatrixBudget time.Duration
	// Registry receives the service metrics (default: a fresh registry).
	Registry *obs.Registry
	// Tracer records request-scoped spans (nil disables tracing; every
	// instrumentation point is nil-safe).
	Tracer *rt.Tracer
	// Logger receives one structured line per request plus error-path
	// diagnostics, trace-correlated when Tracer is set (default: discard).
	Logger *slog.Logger
	// SLO tracks rolling burn rates per endpoint (default: a tracker with
	// rt.SLOOptions defaults). Fast-burning SLOs degrade /healthz.
	SLO *rt.SLOTracker
	// StatsClasses is the Space-Saving capacity K of the workload
	// analytics behind GET /v1/stats: at most this many shape classes are
	// tracked individually (default DefaultStatsClasses).
	StatsClasses int
	// Name identifies this replica in a fleet: when set, every response
	// carries it in the x-mr-replica header so routers and load generators
	// can attribute latency to the replica that actually served.
	Name string
}

func (c Config) withDefaults() Config {
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 512
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	if c.MatrixBudget <= 0 {
		c.MatrixBudget = c.Timeout
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.SLO == nil {
		c.SLO = rt.NewSLOTracker(rt.SLOOptions{})
	}
	return c
}

// Server is the mapping-advisory service.
type Server struct {
	cfg     Config
	cache   *Cache
	flight  flightGroup
	reg     *obs.Registry
	breaker *breaker // nil when disabled
	slo     *rt.SLOTracker
	logger  *slog.Logger
	stats   *workloadStats
	search  *progressTable

	inflightN atomic.Int64 // shedding decision
	draining  atomic.Bool

	inflight        *obs.Gauge
	shared          *obs.Counter
	evals           *obs.Counter
	shed            *obs.Counter
	fallbacks       *obs.Counter
	matrixFallbacks *obs.Counter

	// AdviseHook, when non-nil, runs inside each advise evaluation before
	// the order search starts. Tests use it as a synchronization point and
	// as a fault injector for the circuit breaker.
	AdviseHook func()
	// MatrixHook is AdviseHook's matrix-map counterpart; it runs inside the
	// evaluation, already under the MatrixBudget deadline.
	MatrixHook func()
}

// New returns a Server with the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:             cfg,
		cache:           NewCache(cfg.CacheEntries, cfg.CacheShards),
		reg:             cfg.Registry,
		slo:             cfg.SLO,
		logger:          cfg.Logger,
		stats:           newWorkloadStats(cfg.StatsClasses),
		search:          newProgressTable(defaultProgressRecent),
		inflight:        cfg.Registry.Gauge("mapd_inflight_requests"),
		shared:          cfg.Registry.Counter("mapd_singleflight_shared_total"),
		evals:           cfg.Registry.Counter("mapd_advise_evals_total"),
		shed:            cfg.Registry.Counter("mapd_shed_total"),
		fallbacks:       cfg.Registry.Counter("mapd_advise_fallback_total"),
		matrixFallbacks: cfg.Registry.Counter("mapd_matrix_fallback_total"),
	}
	for name, help := range map[string]string{
		"mapd_requests_total":                         "Requests served, by endpoint and HTTP status code.",
		"mapd_request_seconds":                        "End-to-end request latency, by endpoint.",
		"mapd_cache_hits_total":                       "Result-cache hits, by endpoint.",
		"mapd_cache_misses_total":                     "Result-cache misses, by endpoint.",
		"mapd_inflight_requests":                      "Requests currently being served.",
		"mapd_singleflight_shared_total":              "Evaluations shared between concurrent identical requests.",
		"mapd_advise_evals_total":                     "Full advisor order-search evaluations started.",
		"mapd_shed_total":                             "Requests shed by the in-flight cap.",
		"mapd_advise_fallback_total":                  "Answers served by the breaker-open fallback, any guarded endpoint.",
		"mapd_matrix_fallback_total":                  "Matrix-map answers degraded to the σ-order baseline (breaker open or over budget).",
		"mapd_breaker_state":                          "Advisor circuit breaker state (0 closed, 1 open, 2 half-open).",
		"advisor_search_seconds":                      "Order-search latency, by search mode (exact/pruned/bnb/beam/matrix/fallback).",
		"advisor_search_nodes":                        "Live search progress: nodes expanded by the in-flight bounded search, by mode.",
		"advisor_search_incumbent_seconds":            "Live search progress: best completion time found so far, by mode.",
		"advisor_search_bound_gap":                    "Live search progress: (incumbent − root bound)/incumbent, by mode.",
		"advisor_search_incumbent_improvements_total": "Live search progress: incumbent-improvement events, by mode.",
		"procmap_map_seconds":                         "Matrix-aware placement latency (σ baseline + greedy + refinement).",
		"procmap_refine_swaps_total":                  "Pairwise swaps applied by matrix-aware refinement.",
		"procmap_improvement_pct":                     "Matrix-aware win over the best σ order, percent (last request).",
		"advisor_class_hits_total":                    "Orders served from an equivalence-class representative, by search mode.",
		"advisor_class_misses_total":                  "Order evaluations actually performed, by search mode.",
		"mapd_stats_class_requests":                   "Workload analytics: requests by canonical shape class (Space-Saving top-K).",
		"mapd_stats_class_hit_rate":                   "Workload analytics: cache hit rate by canonical shape class.",
		"mapd_stats_depth_requests":                   "Workload analytics: requests by hierarchy depth.",
		"mapd_stats_collective_requests":              "Workload analytics: advise requests by collective.",
		"mapd_stats_search_requests":                  "Workload analytics: order searches by mode (exact/pruned/bnb/beam/matrix/fallback).",
		"mapd_stats_endpoint_requests":                "Workload analytics: requests by API endpoint.",
		"mapd_stats_tracked_classes":                  "Workload analytics: shape classes currently tracked (≤ K).",
		"mapd_stats_distinct_classes_estimate":        "Workload analytics: sketch estimate of distinct shape classes seen.",
		"mapd_stats_class_evictions":                  "Workload analytics: top-K evictions (count-error churn indicator).",
		"mapd_stats_cache_hit_rate":                   "Workload analytics: overall cache hit rate.",
	} {
		cfg.Registry.SetHelp(name, help)
	}
	s.flight.onShared = func() { s.shared.Add(1) }
	if cfg.BreakerThreshold > 0 {
		s.breaker = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, nil)
		state := cfg.Registry.Gauge("mapd_breaker_state")
		state.Set(float64(breakerClosed))
		s.breaker.onState = func(st breakerState) { state.Set(float64(st)) }
	}
	return s
}

// StartDraining moves the server into the draining state: /healthz reports
// draining with 503 so load balancers stop routing here, and new API
// requests are refused while in-flight ones complete.
func (s *Server) StartDraining() { s.draining.Store(true) }

// Draining reports whether StartDraining was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Registry returns the server's metric registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Handler returns the service's HTTP handler:
//
//	POST /v1/map            rank ⇄ coordinates (Algorithms 1–2)
//	POST /v1/advise         rank the k! orders analytically (§5)
//	POST /v1/select         --cpu-bind=map_cpu core list (Algorithm 3)
//	POST /v1/metrics/order  ring cost & pairs per level (§3.3)
//	GET  /metrics           Prometheus exposition of the registry
//	GET  /v1/stats          cardinality-bounded workload analytics
//	GET  /v1/advise/progress  live progress of in-flight deep searches
//	GET  /v1/slo            rolling SLO burn rates per endpoint
//	GET  /healthz           liveness probe
//
// The returned handler is wrapped in the telemetry middleware: W3C
// traceparent extraction/injection, per-request structured logging, and
// SLO recording.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/map", s.serve("map", func(body []byte) (string, computeFunc, *statInfo, error) {
		var req MapRequest
		if err := decodeStrict(body, &req); err != nil {
			return "", nil, nil, err
		}
		q, err := req.parse()
		if err != nil {
			return "", nil, nil, err
		}
		info := &statInfo{shape: q.arities}
		return q.Key(), func(context.Context) (any, error) { return evalMap(q) }, info, nil
	}))
	mux.HandleFunc("/v1/advise", s.serveGuarded("advise", func(body []byte) (string, computeFunc, computeFunc, *statInfo, error) {
		var req AdviseRequest
		if err := decodeStrict(body, &req); err != nil {
			return "", nil, nil, nil, err
		}
		q, err := req.parse()
		if err != nil {
			return "", nil, nil, nil, err
		}
		compute := func(ctx context.Context) (any, error) {
			if s.AdviseHook != nil {
				s.AdviseHook()
			}
			s.evals.Add(1)
			opts := AdviseOptions{
				Rank: advisor.RankOptions{
					Workers:  s.cfg.AdviseWorkers,
					Registry: s.reg,
					OnStats:  func(rs advisor.RankStats) { s.stats.observeSearch(rs.Mode) },
				},
				SearchDepthThreshold: s.cfg.SearchDepthThreshold,
			}
			if q.spec.Hierarchy().Depth() > opts.threshold() {
				// Deep advise: the bounded search can run for seconds, so
				// register it with the live-progress table surfaced on
				// GET /v1/advise/progress.
				h := s.search.start(q.Key())
				defer h.finish()
				opts.Search.Progress = h.update
			}
			resp, err := evalAdvise(ctx, q, opts)
			if s.breaker != nil {
				// Client errors say nothing about the service's health.
				s.breaker.Record(err == nil || errors.Is(err, ErrBadRequest))
			}
			return resp, err
		}
		fallback := func(context.Context) (any, error) { return evalAdviseFallback(q) }
		info := &statInfo{shape: q.spec.Hierarchy().Arities(), coll: string(q.coll)}
		return q.Key(), compute, fallback, info, nil
	}))
	mux.HandleFunc("/v1/map/matrix", s.serveGuarded("map_matrix", func(body []byte) (string, computeFunc, computeFunc, *statInfo, error) {
		var req MatrixMapRequest
		if err := decodeStrict(body, &req); err != nil {
			return "", nil, nil, nil, err
		}
		q, err := req.parse()
		if err != nil {
			return "", nil, nil, nil, err
		}
		compute := func(ctx context.Context) (any, error) {
			start := time.Now()
			mctx, cancel := context.WithTimeout(ctx, s.cfg.MatrixBudget)
			defer cancel()
			if s.MatrixHook != nil {
				s.MatrixHook()
			}
			resp, err := evalMatrixMap(mctx, q)
			if err != nil && mctx.Err() != nil && ctx.Err() == nil {
				// Over budget: degrade to the σ-order baseline instead of
				// failing. Counted as a breaker failure — a stream of
				// over-budget searches should open the breaker and route
				// straight to the cheap path.
				if s.breaker != nil {
					s.breaker.Record(false)
				}
				fresp, ferr := evalMatrixMapFallback(q)
				if ferr != nil {
					return nil, err
				}
				s.matrixFallbacks.Add(1)
				s.recordMatrixSearch(advisor.ModeFallback, fresp, time.Since(start))
				return fresp, nil
			}
			if s.breaker != nil {
				s.breaker.Record(err == nil || errors.Is(err, ErrBadRequest))
			}
			if err == nil {
				s.reg.Histogram("procmap_map_seconds", obs.SearchBuckets()).
					Observe(time.Since(start).Seconds())
				s.reg.Counter("procmap_refine_swaps_total").AddInt(int64(resp.Swaps))
				s.reg.Gauge("procmap_improvement_pct").Set(resp.ImprovementPct)
				s.recordMatrixSearch(ModeMatrix, resp, time.Since(start))
			}
			return resp, err
		}
		fallback := func(context.Context) (any, error) { return evalMatrixMapFallback(q) }
		info := &statInfo{shape: q.arities}
		return q.Key(), compute, fallback, info, nil
	}))
	mux.HandleFunc("/v1/select", s.serve("select", func(body []byte) (string, computeFunc, *statInfo, error) {
		var req SelectRequest
		if err := decodeStrict(body, &req); err != nil {
			return "", nil, nil, err
		}
		q, err := req.parse()
		if err != nil {
			return "", nil, nil, err
		}
		info := &statInfo{shape: q.arities}
		return q.Key(), func(context.Context) (any, error) { return evalSelect(q) }, info, nil
	}))
	mux.HandleFunc("/v1/metrics/order", s.serve("metrics_order", func(body []byte) (string, computeFunc, *statInfo, error) {
		var req OrderMetricsRequest
		if err := decodeStrict(body, &req); err != nil {
			return "", nil, nil, err
		}
		q, err := req.parse()
		if err != nil {
			return "", nil, nil, err
		}
		info := &statInfo{shape: q.arities}
		return q.Key(), func(context.Context) (any, error) { return evalOrderMetrics(q) }, info, nil
	}))
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(r.Context(), w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		s.slo.Publish(s.reg)
		s.stats.publish(s.reg)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = obs.WritePrometheus(w, s.reg)
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(r.Context(), w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		b, err := json.Marshal(s.stats.report())
		if err != nil {
			writeError(r.Context(), w, http.StatusInternalServerError, err.Error())
			return
		}
		writeJSON(w, append(b, '\n'))
	})
	mux.HandleFunc("/v1/advise/progress", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(r.Context(), w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		b, err := json.Marshal(s.search.report())
		if err != nil {
			writeError(r.Context(), w, http.StatusInternalServerError, err.Error())
			return
		}
		writeJSON(w, append(b, '\n'))
	})
	mux.HandleFunc("/v1/slo", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(r.Context(), w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		b, err := json.Marshal(s.slo.Report())
		if err != nil {
			writeError(r.Context(), w, http.StatusInternalServerError, err.Error())
			return
		}
		writeJSON(w, append(b, '\n'))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		status, code := s.health()
		w.Header().Set("Content-Type", "application/json")
		if code != http.StatusOK {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(code)
		}
		_, _ = w.Write([]byte(`{"status":"` + status + `"}` + "\n"))
	})
	return s.withTelemetry(mux)
}

// recordMatrixSearch labels one matrix-map placement search in the
// advisor_search_* series and the workload analytics, so dashboards see
// matrix searches alongside the advisor's exact/pruned/fallback modes.
func (s *Server) recordMatrixSearch(mode string, resp *MatrixMapResponse, elapsed time.Duration) {
	ml := obs.L("mode", mode)
	s.reg.Counter("advisor_class_misses_total", ml).AddInt(resp.OrdersEvaluated)
	s.reg.Histogram("advisor_search_seconds", obs.SearchBuckets(), ml).Observe(elapsed.Seconds())
	s.stats.observeSearch(mode)
}

// health resolves the tri-state /healthz answer: draining beats degraded
// beats healthy. Degraded (advisor breaker not closed, or an SLO burning
// fast enough to page) still returns 200 — the service answers, just from
// cache or heuristics. The SLO check fires on sustained elevated error or
// latency rates, degrading health before the breaker's consecutive-failure
// counter ever trips.
func (s *Server) health() (string, int) {
	switch {
	case s.draining.Load():
		return "draining", http.StatusServiceUnavailable
	case s.breaker != nil && s.breaker.State() != breakerClosed:
		return "degraded", http.StatusOK
	case s.slo.FastBurning():
		return "degraded", http.StatusOK
	default:
		return "healthy", http.StatusOK
	}
}

// statusWriter captures the response code and size for logging and SLO
// accounting.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// apiEndpoint maps a request path to its SLO endpoint name; only the
// query endpoints are tracked, keeping label cardinality bounded.
func apiEndpoint(path string) (string, bool) {
	switch path {
	case "/v1/map":
		return "map", true
	case "/v1/map/matrix":
		return "map_matrix", true
	case "/v1/advise":
		return "advise", true
	case "/v1/select":
		return "select", true
	case "/v1/metrics/order":
		return "metrics_order", true
	default:
		return "", false
	}
}

// withTelemetry is the outermost middleware: it opens the request's root
// span (continuing an upstream traceparent when present), injects the
// traceparent response header so clients can quote the trace, records the
// outcome into the SLO tracker, and emits one structured log line.
func (s *Server) withTelemetry(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if s.cfg.Name != "" {
			w.Header().Set("x-mr-replica", s.cfg.Name)
		}
		ctx, span := s.cfg.Tracer.StartRequest(r.Context(), "http "+r.URL.Path, r.Header.Get("traceparent"))
		if tp := span.Traceparent(); tp != "" {
			w.Header().Set("traceparent", tp)
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(ctx))
		elapsed := time.Since(start)
		if ep, ok := apiEndpoint(r.URL.Path); ok {
			s.slo.Record(ep, sw.code, elapsed)
		}
		span.SetAttr("http_status", int64(sw.code))
		if sw.code >= http.StatusInternalServerError {
			span.SetError()
		}
		span.End()
		level := slog.LevelInfo
		switch {
		case sw.code >= http.StatusInternalServerError:
			level = slog.LevelError
		case sw.code >= http.StatusBadRequest:
			level = slog.LevelWarn
		}
		s.logger.LogAttrs(ctx, level, "request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.code),
			slog.Int64("bytes", sw.bytes),
			slog.Duration("elapsed", elapsed),
			slog.String("remote", r.RemoteAddr),
		)
	})
}

// computeFunc evaluates one parsed request.
type computeFunc func(ctx context.Context) (any, error)

// parseFunc turns a request body into a canonical cache key, a compute
// closure, and the workload-analytics attribution of the request.
// Returned errors are client errors.
type parseFunc func(body []byte) (string, computeFunc, *statInfo, error)

// guardedParseFunc additionally yields a cheap fallback evaluation served
// (uncached) while the endpoint's circuit breaker is open.
type guardedParseFunc func(body []byte) (string, computeFunc, computeFunc, *statInfo, error)

// decodeStrict unmarshals JSON rejecting unknown fields and trailing data,
// so typos fail loudly instead of silently evaluating defaults.
func decodeStrict(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badf("invalid JSON: %v", err)
	}
	if dec.More() {
		return badf("invalid JSON: trailing data after request object")
	}
	return nil
}

// serve wraps an endpoint with the shared pipeline: overload shedding,
// method check, body limit, parse, cache lookup, singleflight evaluation,
// metrics.
func (s *Server) serve(name string, parse parseFunc) http.HandlerFunc {
	return s.serveGuarded(name, func(body []byte) (string, computeFunc, computeFunc, *statInfo, error) {
		key, compute, info, err := parse(body)
		return key, compute, nil, info, err
	})
}

func (s *Server) serveGuarded(name string, parse guardedParseFunc) http.HandlerFunc {
	hits := s.reg.Counter("mapd_cache_hits_total", obs.L("endpoint", name))
	misses := s.reg.Counter("mapd_cache_misses_total", obs.L("endpoint", name))
	latency := s.reg.Histogram("mapd_request_seconds", obs.WallBuckets(), obs.L("endpoint", name))
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx := r.Context()
		s.inflight.Add(1)
		n := s.inflightN.Add(1)
		code := http.StatusOK
		var (
			info     *statInfo
			cacheHit bool
		)
		defer func() {
			s.inflightN.Add(-1)
			s.inflight.Add(-1)
			latency.Observe(time.Since(start).Seconds())
			s.reg.Counter("mapd_requests_total",
				obs.L("endpoint", name), obs.L("code", strconv.Itoa(code))).Add(1)
			if code == http.StatusOK {
				// Only parsed, successfully served requests reach the
				// workload analytics; rejects carry no shape to attribute.
				s.stats.observe(name, info, cacheHit, time.Since(start))
			}
		}()
		if s.draining.Load() {
			w.Header().Set("Retry-After", "1")
			code = writeError(ctx, w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		if s.cfg.MaxInflight > 0 && n > int64(s.cfg.MaxInflight) {
			s.shed.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(shedRetryAfter(n, int64(s.cfg.MaxInflight))))
			code = writeError(ctx, w, http.StatusServiceUnavailable,
				fmt.Sprintf("over %d requests in flight, try again shortly", s.cfg.MaxInflight))
			return
		}
		if r.Method != http.MethodPost {
			code = writeError(ctx, w, http.StatusMethodNotAllowed, "use POST with a JSON body")
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				code = writeError(ctx, w, http.StatusRequestEntityTooLarge,
					fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBody))
			} else {
				code = writeError(ctx, w, http.StatusBadRequest, "reading request body: "+err.Error())
			}
			return
		}
		key, compute, fallback, pinfo, err := parse(body)
		if err != nil {
			code = writeError(ctx, w, http.StatusBadRequest, clientMessage(err))
			return
		}
		info = pinfo
		_, lookup := rt.StartSpan(ctx, "cache.lookup")
		cached, ok := s.cache.Get(key)
		lookup.SetAttr("hit", b2i(ok))
		lookup.End()
		if ok {
			cacheHit = true
			hits.Add(1)
			writeJSON(w, cached)
			return
		}
		misses.Add(1)
		if fallback != nil && s.breaker != nil && !s.breaker.Allow() {
			// Breaker open: answer from the cheap heuristic, uncached so a
			// recovered breaker re-evaluates the real search.
			s.fallbacks.Add(1)
			fstart := time.Now()
			fctx, fsp := rt.StartSpan(ctx, "advise.fallback")
			resp, ferr := fallback(fctx)
			if ferr != nil {
				fsp.SetError()
				fsp.End()
				code = writeError(ctx, w, http.StatusInternalServerError, ferr.Error())
				return
			}
			b, ferr := json.Marshal(resp)
			fsp.End()
			if ferr != nil {
				code = writeError(ctx, w, http.StatusInternalServerError, ferr.Error())
				return
			}
			// The heuristic is an order search too: label its latency and
			// per-order cost mode="fallback", alongside the advisor's own
			// exact/pruned series, so dashboards see the full mode split.
			switch fr := resp.(type) {
			case *AdviseResponse:
				ml := obs.L("mode", advisor.ModeFallback)
				s.reg.Counter("advisor_class_misses_total", ml).AddInt(int64(fr.Evaluated))
				s.reg.Histogram("advisor_search_seconds", obs.SearchBuckets(), ml).
					Observe(time.Since(fstart).Seconds())
				s.stats.observeSearch(advisor.ModeFallback)
			case *MatrixMapResponse:
				s.matrixFallbacks.Add(1)
				s.recordMatrixSearch(advisor.ModeFallback, fr, time.Since(fstart))
			}
			writeJSON(w, append(b, '\n'))
			return
		}
		flightCtx, flightSpan := rt.StartSpan(ctx, "singleflight")
		val, err, shared := s.flight.Do(key, func() ([]byte, error) {
			// Detached from the client connection: a singleflight result is
			// shared, so it must not die with its first requester. The trace
			// context is re-attached explicitly so the evaluation's spans
			// stay children of the (first) requester's trace.
			ctx, cancel := context.WithTimeout(context.Background(), s.cfg.Timeout)
			defer cancel()
			ctx, eval := rt.StartSpan(rt.ContextWithSpan(ctx, rt.SpanFromContext(flightCtx)), "evaluate")
			defer eval.End()
			resp, err := compute(ctx)
			if err != nil {
				eval.SetError()
				return nil, err
			}
			b, err := json.Marshal(resp)
			if err != nil {
				eval.SetError()
				return nil, err
			}
			b = append(b, '\n')
			// Degraded answers (e.g. an over-budget matrix map served from
			// the σ fallback) opt out of caching so a healthy service
			// re-runs the real search.
			if c, ok := resp.(interface{ cacheable() bool }); !ok || c.cacheable() {
				s.cache.Put(key, b)
			}
			return b, nil
		})
		flightSpan.SetAttr("shared", b2i(shared))
		flightSpan.End()
		if err != nil {
			switch {
			case errors.Is(err, ErrBadRequest):
				code = writeError(ctx, w, http.StatusBadRequest, clientMessage(err))
			case errors.Is(err, context.DeadlineExceeded):
				code = writeError(ctx, w, http.StatusGatewayTimeout,
					fmt.Sprintf("evaluation exceeded the %s budget", s.cfg.Timeout))
			default:
				code = writeError(ctx, w, http.StatusInternalServerError, err.Error())
			}
			s.logger.LogAttrs(ctx, slog.LevelError, "evaluation failed",
				slog.String("endpoint", name), slog.String("error", err.Error()))
			return
		}
		writeJSON(w, val)
	}
}

// maxShedRetryAfter caps the adaptive Retry-After hint: past ~8× the
// in-flight cap the queue-depth signal says "badly overloaded" and longer
// hints only starve well-behaved clients.
const maxShedRetryAfter = 30

// shedRetryAfter scales the shed 503's Retry-After hint with actual queue
// depth instead of a flat 1s: barely over the cap hints 1s, and each
// additional cap's worth of excess in-flight requests adds ~4s, so
// router and client backoff tracks how overloaded the daemon really is.
func shedRetryAfter(inflight, limit int64) int {
	if limit <= 0 || inflight <= limit {
		return 1
	}
	s := 1 + int((inflight-limit)*4/limit)
	if s > maxShedRetryAfter {
		s = maxShedRetryAfter
	}
	return s
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func writeJSON(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

// writeError emits the structured error envelope and returns the code so
// callers can record it. The context's trace id (when tracing is on) is
// embedded in the body so clients can quote it back verbatim.
func writeError(ctx context.Context, w http.ResponseWriter, code int, msg string) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	body, _ := json.Marshal(errorBody{Error: errorDetail{
		Code:    code,
		Status:  statusSlug(code),
		Message: msg,
		TraceID: rt.SpanFromContext(ctx).TraceID(),
	}})
	_, _ = w.Write(append(body, '\n'))
	return code
}

func statusSlug(code int) string {
	switch code {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusRequestEntityTooLarge:
		return "body_too_large"
	case http.StatusGatewayTimeout:
		return "timeout"
	case http.StatusServiceUnavailable:
		return "unavailable"
	default:
		return "internal"
	}
}

// clientMessage strips the ErrBadRequest prefix for response bodies.
func clientMessage(err error) string {
	msg := err.Error()
	const prefix = "mapd: bad request: "
	if len(msg) > len(prefix) && msg[:len(prefix)] == prefix {
		return msg[len(prefix):]
	}
	return msg
}
