// The HTTP/JSON service: four query endpoints behind a shared
// cache → singleflight → evaluate pipeline, a Prometheus /metrics
// endpoint, and structured error responses. Every request is bounded — a
// body-size cap before parsing, validation limits in parse.go, and a
// per-evaluation timeout — so the daemon stays predictable under abusive
// or accidental load.

package mapd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/advisor"
	"repro/internal/obs"
)

// Config tunes a Server. The zero value picks production defaults.
type Config struct {
	// CacheEntries bounds the result cache (default 4096; negative
	// disables caching).
	CacheEntries int
	// CacheShards is the shard count of the cache (default 16, rounded up
	// to a power of two).
	CacheShards int
	// AdviseWorkers bounds the worker pool of one order-ranking evaluation
	// (default GOMAXPROCS).
	AdviseWorkers int
	// MaxBody caps the request body in bytes (default 1 MiB).
	MaxBody int64
	// Timeout bounds one evaluation (default 10 s). Evaluations run on a
	// context detached from the client connection so a singleflight result
	// survives its first requester hanging up.
	Timeout time.Duration
	// MaxInflight caps concurrently served requests; excess requests are
	// shed with 503 + Retry-After instead of queueing without bound
	// (default 512; negative disables shedding).
	MaxInflight int
	// BreakerThreshold opens the advisor circuit breaker after this many
	// consecutive evaluation failures (default 5; negative disables the
	// breaker).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before letting a
	// probe evaluation through (default 10 s).
	BreakerCooldown time.Duration
	// Registry receives the service metrics (default: a fresh registry).
	Registry *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 512
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return c
}

// Server is the mapping-advisory service.
type Server struct {
	cfg     Config
	cache   *Cache
	flight  flightGroup
	reg     *obs.Registry
	breaker *breaker // nil when disabled

	inflightN atomic.Int64 // shedding decision
	draining  atomic.Bool

	inflight  *obs.Gauge
	shared    *obs.Counter
	evals     *obs.Counter
	shed      *obs.Counter
	fallbacks *obs.Counter

	// AdviseHook, when non-nil, runs inside each advise evaluation before
	// the order search starts. Tests use it as a synchronization point and
	// as a fault injector for the circuit breaker.
	AdviseHook func()
}

// New returns a Server with the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		cache:     NewCache(cfg.CacheEntries, cfg.CacheShards),
		reg:       cfg.Registry,
		inflight:  cfg.Registry.Gauge("mapd_inflight_requests"),
		shared:    cfg.Registry.Counter("mapd_singleflight_shared_total"),
		evals:     cfg.Registry.Counter("mapd_advise_evals_total"),
		shed:      cfg.Registry.Counter("mapd_shed_total"),
		fallbacks: cfg.Registry.Counter("mapd_advise_fallback_total"),
	}
	s.flight.onShared = func() { s.shared.Add(1) }
	if cfg.BreakerThreshold > 0 {
		s.breaker = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, nil)
		state := cfg.Registry.Gauge("mapd_breaker_state")
		state.Set(float64(breakerClosed))
		s.breaker.onState = func(st breakerState) { state.Set(float64(st)) }
	}
	return s
}

// StartDraining moves the server into the draining state: /healthz reports
// draining with 503 so load balancers stop routing here, and new API
// requests are refused while in-flight ones complete.
func (s *Server) StartDraining() { s.draining.Store(true) }

// Draining reports whether StartDraining was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Registry returns the server's metric registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Handler returns the service's HTTP handler:
//
//	POST /v1/map            rank ⇄ coordinates (Algorithms 1–2)
//	POST /v1/advise         rank the k! orders analytically (§5)
//	POST /v1/select         --cpu-bind=map_cpu core list (Algorithm 3)
//	POST /v1/metrics/order  ring cost & pairs per level (§3.3)
//	GET  /metrics           Prometheus exposition of the registry
//	GET  /healthz           liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/map", s.serve("map", func(body []byte) (string, computeFunc, error) {
		var req MapRequest
		if err := decodeStrict(body, &req); err != nil {
			return "", nil, err
		}
		q, err := req.parse()
		if err != nil {
			return "", nil, err
		}
		return q.Key(), func(context.Context) (any, error) { return evalMap(q) }, nil
	}))
	mux.HandleFunc("/v1/advise", s.serveGuarded("advise", func(body []byte) (string, computeFunc, computeFunc, error) {
		var req AdviseRequest
		if err := decodeStrict(body, &req); err != nil {
			return "", nil, nil, err
		}
		q, err := req.parse()
		if err != nil {
			return "", nil, nil, err
		}
		compute := func(ctx context.Context) (any, error) {
			if s.AdviseHook != nil {
				s.AdviseHook()
			}
			s.evals.Add(1)
			resp, err := evalAdvise(ctx, q, advisor.RankOptions{Workers: s.cfg.AdviseWorkers, Registry: s.reg})
			if s.breaker != nil {
				// Client errors say nothing about the service's health.
				s.breaker.Record(err == nil || errors.Is(err, ErrBadRequest))
			}
			return resp, err
		}
		fallback := func(context.Context) (any, error) { return evalAdviseFallback(q) }
		return q.Key(), compute, fallback, nil
	}))
	mux.HandleFunc("/v1/select", s.serve("select", func(body []byte) (string, computeFunc, error) {
		var req SelectRequest
		if err := decodeStrict(body, &req); err != nil {
			return "", nil, err
		}
		q, err := req.parse()
		if err != nil {
			return "", nil, err
		}
		return q.Key(), func(context.Context) (any, error) { return evalSelect(q) }, nil
	}))
	mux.HandleFunc("/v1/metrics/order", s.serve("metrics_order", func(body []byte) (string, computeFunc, error) {
		var req OrderMetricsRequest
		if err := decodeStrict(body, &req); err != nil {
			return "", nil, err
		}
		q, err := req.parse()
		if err != nil {
			return "", nil, err
		}
		return q.Key(), func(context.Context) (any, error) { return evalOrderMetrics(q) }, nil
	}))
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = obs.WritePrometheus(w, s.reg)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		status, code := s.health()
		w.Header().Set("Content-Type", "application/json")
		if code != http.StatusOK {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(code)
		}
		_, _ = w.Write([]byte(`{"status":"` + status + `"}` + "\n"))
	})
	return mux
}

// health resolves the tri-state /healthz answer: draining beats degraded
// beats healthy. Degraded (advisor breaker not closed) still returns 200 —
// the service answers, just from cache or heuristics.
func (s *Server) health() (string, int) {
	switch {
	case s.draining.Load():
		return "draining", http.StatusServiceUnavailable
	case s.breaker != nil && s.breaker.State() != breakerClosed:
		return "degraded", http.StatusOK
	default:
		return "healthy", http.StatusOK
	}
}

// computeFunc evaluates one parsed request.
type computeFunc func(ctx context.Context) (any, error)

// parseFunc turns a request body into a canonical cache key and a compute
// closure. Returned errors are client errors.
type parseFunc func(body []byte) (string, computeFunc, error)

// guardedParseFunc additionally yields a cheap fallback evaluation served
// (uncached) while the endpoint's circuit breaker is open.
type guardedParseFunc func(body []byte) (string, computeFunc, computeFunc, error)

// decodeStrict unmarshals JSON rejecting unknown fields and trailing data,
// so typos fail loudly instead of silently evaluating defaults.
func decodeStrict(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badf("invalid JSON: %v", err)
	}
	if dec.More() {
		return badf("invalid JSON: trailing data after request object")
	}
	return nil
}

// serve wraps an endpoint with the shared pipeline: overload shedding,
// method check, body limit, parse, cache lookup, singleflight evaluation,
// metrics.
func (s *Server) serve(name string, parse parseFunc) http.HandlerFunc {
	return s.serveGuarded(name, func(body []byte) (string, computeFunc, computeFunc, error) {
		key, compute, err := parse(body)
		return key, compute, nil, err
	})
}

func (s *Server) serveGuarded(name string, parse guardedParseFunc) http.HandlerFunc {
	hits := s.reg.Counter("mapd_cache_hits_total", obs.L("endpoint", name))
	misses := s.reg.Counter("mapd_cache_misses_total", obs.L("endpoint", name))
	latency := s.reg.Histogram("mapd_request_seconds", obs.WallBuckets(), obs.L("endpoint", name))
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.inflight.Add(1)
		n := s.inflightN.Add(1)
		code := http.StatusOK
		defer func() {
			s.inflightN.Add(-1)
			s.inflight.Add(-1)
			latency.Observe(time.Since(start).Seconds())
			s.reg.Counter("mapd_requests_total",
				obs.L("endpoint", name), obs.L("code", strconv.Itoa(code))).Add(1)
		}()
		if s.draining.Load() {
			w.Header().Set("Retry-After", "1")
			code = writeError(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		if s.cfg.MaxInflight > 0 && n > int64(s.cfg.MaxInflight) {
			s.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			code = writeError(w, http.StatusServiceUnavailable,
				fmt.Sprintf("over %d requests in flight, try again shortly", s.cfg.MaxInflight))
			return
		}
		if r.Method != http.MethodPost {
			code = writeError(w, http.StatusMethodNotAllowed, "use POST with a JSON body")
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				code = writeError(w, http.StatusRequestEntityTooLarge,
					fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBody))
			} else {
				code = writeError(w, http.StatusBadRequest, "reading request body: "+err.Error())
			}
			return
		}
		key, compute, fallback, err := parse(body)
		if err != nil {
			code = writeError(w, http.StatusBadRequest, clientMessage(err))
			return
		}
		if cached, ok := s.cache.Get(key); ok {
			hits.Add(1)
			writeJSON(w, cached)
			return
		}
		misses.Add(1)
		if fallback != nil && s.breaker != nil && !s.breaker.Allow() {
			// Breaker open: answer from the cheap heuristic, uncached so a
			// recovered breaker re-evaluates the real search.
			s.fallbacks.Add(1)
			resp, ferr := fallback(r.Context())
			if ferr != nil {
				code = writeError(w, http.StatusInternalServerError, ferr.Error())
				return
			}
			b, ferr := json.Marshal(resp)
			if ferr != nil {
				code = writeError(w, http.StatusInternalServerError, ferr.Error())
				return
			}
			writeJSON(w, append(b, '\n'))
			return
		}
		val, err, _ := s.flight.Do(key, func() ([]byte, error) {
			// Detached from the client connection: a singleflight result is
			// shared, so it must not die with its first requester.
			ctx, cancel := context.WithTimeout(context.Background(), s.cfg.Timeout)
			defer cancel()
			resp, err := compute(ctx)
			if err != nil {
				return nil, err
			}
			b, err := json.Marshal(resp)
			if err != nil {
				return nil, err
			}
			b = append(b, '\n')
			s.cache.Put(key, b)
			return b, nil
		})
		if err != nil {
			switch {
			case errors.Is(err, ErrBadRequest):
				code = writeError(w, http.StatusBadRequest, clientMessage(err))
			case errors.Is(err, context.DeadlineExceeded):
				code = writeError(w, http.StatusGatewayTimeout,
					fmt.Sprintf("evaluation exceeded the %s budget", s.cfg.Timeout))
			default:
				code = writeError(w, http.StatusInternalServerError, err.Error())
			}
			return
		}
		writeJSON(w, val)
	}
}

func writeJSON(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

// writeError emits the structured error envelope and returns the code so
// callers can record it.
func writeError(w http.ResponseWriter, code int, msg string) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	body, _ := json.Marshal(errorBody{Error: errorDetail{
		Code:    code,
		Status:  statusSlug(code),
		Message: msg,
	}})
	_, _ = w.Write(append(body, '\n'))
	return code
}

func statusSlug(code int) string {
	switch code {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusRequestEntityTooLarge:
		return "body_too_large"
	case http.StatusGatewayTimeout:
		return "timeout"
	case http.StatusServiceUnavailable:
		return "unavailable"
	default:
		return "internal"
	}
}

// clientMessage strips the ErrBadRequest prefix for response bodies.
func clientMessage(err error) string {
	msg := err.Error()
	const prefix = "mapd: bad request: "
	if len(msg) > len(prefix) && msg[:len(prefix)] == prefix {
		return msg[len(prefix):]
	}
	return msg
}
