// Deep-hierarchy advise: the cloud machine, the exact/bounded search
// dispatch around the depth threshold, and the bounded fallback.

package mapd

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/advisor"
)

// A depth-10 cloud advise must be served by the branch-and-bound engine:
// exact (no gap), with the search's own class/order accounting, and the
// bnb mode visible on /metrics.
func TestAdviseDeepCloudBnB(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := post(t, ts, "/v1/advise",
		`{"machine":"cloud","depth":10,"collective":"alltoall","comm_size":64,"bytes":4194304}`)
	if code != http.StatusOK {
		t.Fatalf("deep advise: status %d: %s", code, body)
	}
	var resp AdviseResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if resp.SearchMode != advisor.ModeBnB {
		t.Fatalf("search_mode %q, want %q", resp.SearchMode, advisor.ModeBnB)
	}
	if resp.OptimalityGap != 0 {
		t.Fatalf("bnb reported optimality gap %v", resp.OptimalityGap)
	}
	if resp.Evaluated != 3628800 { // 10!: every order accounted exactly
		t.Fatalf("evaluated %d orders, want 10! = 3628800", resp.Evaluated)
	}
	if resp.OrdersEvaluated <= 0 || resp.OrdersEvaluated >= 3628800 {
		t.Fatalf("orders_evaluated %d, want a strict subset of 10!", resp.OrdersEvaluated)
	}
	if len(resp.Hierarchy) != 10 {
		t.Fatalf("hierarchy depth %d, want 10", len(resp.Hierarchy))
	}
	if len(resp.Best) == 0 || resp.Best[0].Seconds <= 0 {
		t.Fatalf("deep advise returned no usable recommendation: %+v", resp.Best)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mb), `mode="bnb"`) {
		t.Fatalf("/metrics does not label the bnb search mode")
	}
}

// Cloud request validation: depth bounds, depth on non-cloud machines,
// and node/NIC counts the template does not parameterize.
func TestAdviseCloudValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, req string
	}{
		{"depth too deep", `{"machine":"cloud","depth":13,"comm_size":4}`},
		{"depth too shallow", `{"machine":"cloud","depth":5,"comm_size":4}`},
		{"depth on hydra", `{"machine":"hydra","depth":8,"comm_size":4}`},
		{"nodes on cloud", `{"machine":"cloud","nodes":8,"comm_size":4}`},
		{"nics on cloud", `{"machine":"cloud","nics":2,"comm_size":4}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := post(t, ts, "/v1/advise", tc.req)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d (want 400): %s", code, body)
			}
		})
	}
}

// The degraded σ-order fallback must stay bounded at depth: a handful of
// heuristic orders, never a k! sweep.
func TestAdviseDeepFallbackBounded(t *testing.T) {
	resp, err := EvalAdviseFallback(AdviseRequest{
		Machine: "cloud", Depth: 10, Collective: "alltoall", CommSize: 64,
	})
	if err != nil {
		t.Fatalf("fallback: %v", err)
	}
	if !resp.Degraded {
		t.Fatalf("fallback answer not flagged degraded")
	}
	if resp.SearchMode != advisor.ModeFallback {
		t.Fatalf("search_mode %q, want %q", resp.SearchMode, advisor.ModeFallback)
	}
	if resp.Evaluated <= 0 || resp.Evaluated > 64 {
		t.Fatalf("fallback evaluated %d orders, want a small heuristic set", resp.Evaluated)
	}
}

// Forcing the bounded search onto a shallow machine must reproduce the
// exact ranking's winner: same order, same predicted time.
func TestAdviseThresholdDifferential(t *testing.T) {
	req := AdviseRequest{
		Machine: "hydra", Nodes: 16, Collective: "allreduce", CommSize: 16,
		Simultaneous: true, Top: 3,
	}
	exact, err := EvalAdviseOpts(context.Background(), req, AdviseOptions{})
	if err != nil {
		t.Fatalf("exact advise: %v", err)
	}
	deep, err := EvalAdviseOpts(context.Background(), req, AdviseOptions{SearchDepthThreshold: 1})
	if err != nil {
		t.Fatalf("bounded advise: %v", err)
	}
	if deep.SearchMode != advisor.ModeBnB {
		t.Fatalf("forced bounded search ran %q, want %q", deep.SearchMode, advisor.ModeBnB)
	}
	if exact.SearchMode == deep.SearchMode {
		t.Fatalf("exact path unexpectedly reported mode %q too", exact.SearchMode)
	}
	if len(exact.Best) == 0 || len(deep.Best) == 0 {
		t.Fatalf("empty recommendations: exact %d, deep %d", len(exact.Best), len(deep.Best))
	}
	for i := range exact.Best {
		e, d := exact.Best[i], deep.Best[i]
		if fmt.Sprint(e.Order) != fmt.Sprint(d.Order) || e.Seconds != d.Seconds {
			t.Fatalf("rank %d diverges: exact %v (%v s) vs bounded %v (%v s)",
				i+1, e.Order, e.Seconds, d.Order, d.Seconds)
		}
	}
	if exact.Evaluated != deep.Evaluated {
		t.Fatalf("order accounting diverges: exact %d vs bounded %d", exact.Evaluated, deep.Evaluated)
	}
}

// Cloud depths must cache as distinct keys: the same request at two
// depths cannot alias to one entry.
func TestAdviseCloudCacheKeyDepth(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheEntries: 64})
	for _, d := range []string{"6", "7"} {
		code, body := post(t, ts, "/v1/advise",
			`{"machine":"cloud","depth":`+d+`,"collective":"alltoall","comm_size":4}`)
		if code != http.StatusOK {
			t.Fatalf("depth %s: status %d: %s", d, code, body)
		}
		var resp AdviseResponse
		if err := json.Unmarshal([]byte(body), &resp); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		want := int(d[0] - '0')
		if len(resp.Hierarchy) != want {
			t.Fatalf("depth %s answered with %d-level hierarchy (cache aliasing?)", d, len(resp.Hierarchy))
		}
	}
}
