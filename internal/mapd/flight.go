// Singleflight: concurrent requests for the same canonical key share one
// evaluation. This matters most for /v1/advise, where a cold-cache burst
// of identical requests would otherwise each run the full k! order search.
// (Hand-rolled because the repo deliberately has no external deps.)

package mapd

import "sync"

type flightCall struct {
	wg  sync.WaitGroup
	val []byte
	err error
}

// flightGroup deduplicates in-flight work by key.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
	// onShared, when set, is called (outside the lock) each time a caller
	// joins an existing flight instead of starting its own. The server uses
	// it to count collapsed evaluations; tests use it as a sync point.
	onShared func()
}

// Do runs fn once per key among concurrent callers: the first caller
// executes it, the rest block and receive the same result. shared reports
// whether this caller joined an existing flight.
func (g *flightGroup) Do(key string, fn func() ([]byte, error)) (val []byte, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		if g.onShared != nil {
			g.onShared()
		}
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	c.wg.Done()
	return c.val, c.err, false
}
