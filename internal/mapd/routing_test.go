package mapd

import (
	"errors"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestRoutingKeyMatchesServerKey(t *testing.T) {
	// Syntactic variants of the same logical request must share a routing
	// key — that is the whole point of key-based consistent hashing.
	variants := []string{
		`{"hierarchy":"2,2,4","rank":5}`,
		`{"hierarchy":"2x2x4","rank":5}`,
		`{"hierarchy":"[2, 2, 4]","rank":5}`,
	}
	first, err := RoutingKey("/v1/map", []byte(variants[0]))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants[1:] {
		k, err := RoutingKey("/v1/map", []byte(v))
		if err != nil {
			t.Fatalf("RoutingKey(%s): %v", v, err)
		}
		if k != first {
			t.Errorf("variant %s routed to %q, want %q", v, k, first)
		}
	}

	// Every routable endpoint yields a distinct, stable key.
	cases := map[string]string{
		"/v1/map":           `{"hierarchy":"2,2,4","rank":5}`,
		"/v1/advise":        `{"machine":"hydra","nodes":4,"collective":"alltoall","comm_size":16}`,
		"/v1/select":        `{"hierarchy":"2,2,4","order":"2-1-0","n":8}`,
		"/v1/metrics/order": `{"hierarchy":"2,2,4","order":"2-1-0"}`,
	}
	seen := map[string]string{}
	for path, body := range cases {
		k, err := RoutingKey(path, []byte(body))
		if err != nil {
			t.Fatalf("RoutingKey(%s): %v", path, err)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("paths %s and %s share key %q", prev, path, k)
		}
		seen[k] = path
		k2, _ := RoutingKey(path, []byte(body))
		if k2 != k {
			t.Errorf("RoutingKey(%s) unstable: %q vs %q", path, k, k2)
		}
	}
}

func TestRoutingKeyErrors(t *testing.T) {
	if _, err := RoutingKey("/v1/map", []byte(`{"hierarchy":`)); !errors.Is(err, ErrBadRequest) {
		t.Errorf("malformed body: err = %v, want ErrBadRequest", err)
	}
	if _, err := RoutingKey("/v1/map", []byte(`{"hierarchy":"0"}`)); !errors.Is(err, ErrBadRequest) {
		t.Errorf("invalid hierarchy: err = %v, want ErrBadRequest", err)
	}
	if _, err := RoutingKey("/v1/nope", []byte(`{}`)); err == nil {
		t.Error("unroutable path: want error")
	}
}

func TestShedRetryAfterScalesWithQueueDepth(t *testing.T) {
	cases := []struct {
		inflight, limit int64
		want            int
	}{
		{0, 512, 1},                      // under the cap (not shed, but defensively 1)
		{513, 512, 1},                    // barely over
		{768, 512, 3},                    // 1.5× over: backoff grows
		{1024, 512, 5},                   // 2× over
		{2048, 512, 13},                  // 4× over
		{100000, 512, maxShedRetryAfter}, // deeply over: capped
		{10, 0, 1},                       // shedding disabled: flat
	}
	for _, c := range cases {
		if got := shedRetryAfter(c.inflight, c.limit); got != c.want {
			t.Errorf("shedRetryAfter(%d, %d) = %d, want %d", c.inflight, c.limit, got, c.want)
		}
	}
	// Monotone in queue depth: a deeper queue never hints a shorter wait.
	prev := 0
	for n := int64(512); n < 512*10; n += 64 {
		got := shedRetryAfter(n, 512)
		if got < prev {
			t.Fatalf("shedRetryAfter not monotone at %d: %d < %d", n, got, prev)
		}
		prev = got
	}
}

func TestReplicaNameHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{Registry: obs.NewRegistry(), Name: "r7"})
	resp, err := http.Post(ts.URL+"/v1/map", "application/json",
		strings.NewReader(`{"hierarchy":"2,2,4","rank":5}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("x-mr-replica"); got != "r7" {
		t.Errorf("x-mr-replica = %q, want r7", got)
	}
}
