// Package mapd is the mapping-advisory service: a long-lived, concurrent
// front end for the repo's core queries — rank decompose/compose, order
// recommendation (the §5 outlook implemented by internal/advisor),
// --cpu-bind=map_cpu core selection (Algorithm 3), and the §3.3 order
// metrics. Results are canonicalized, cached in a sharded LRU, and
// deduplicated in flight with a singleflight layer so a burst of identical
// advisor evaluations runs the k! search once.
//
// The request/response structs below are the service's wire format; the
// mrmap CLI emits the same structs under -json so CLI and API outputs are
// diffable.
package mapd

import (
	"fmt"
	"strconv"
	"strings"
)

// MapRequest asks for rank ⇄ coordinate conversion (Algorithms 1 and 2)
// under a hierarchy and order. Exactly one of Rank, Coords, or Table must
// be set:
//
//   - Rank: decompose the rank into coordinates and compute its reordered
//     rank under Order.
//   - Coords: compose the coordinates into the reordered rank.
//   - Table: return the full old-rank → new-rank mapping table.
//
// Order defaults to the identity order (the initial enumeration,
// Figure 2f), which leaves ranks unchanged.
type MapRequest struct {
	Hierarchy string `json:"hierarchy"`
	Order     string `json:"order,omitempty"`
	Rank      *int   `json:"rank,omitempty"`
	Coords    []int  `json:"coords,omitempty"`
	Table     bool   `json:"table,omitempty"`
}

// MapResponse is the canonical answer to a MapRequest.
type MapResponse struct {
	Hierarchy []int    `json:"hierarchy"`
	Levels    []string `json:"levels"`
	Order     []int    `json:"order"`
	Rank      *int     `json:"rank,omitempty"`     // echo of the decomposed rank
	Coords    []int    `json:"coords,omitempty"`   // coordinates of Rank (or echo)
	NewRank   *int     `json:"new_rank,omitempty"` // reordered rank under Order
	Table     []int    `json:"table,omitempty"`    // table[old] = new
}

// AdviseRequest asks the analytic advisor to rank hierarchy orders for a
// machine model and collective scenario.
type AdviseRequest struct {
	// Machine is a built-in model: "hydra", "hydra-real", or "lumi".
	Machine string `json:"machine"`
	// Nodes is the compute-node count (default 16).
	Nodes int `json:"nodes,omitempty"`
	// NICs per node (hydra models only; default 1).
	NICs int `json:"nics,omitempty"`
	// Collective: "alltoall", "allgather", or "allreduce".
	Collective string `json:"collective"`
	// CommSize is the subcommunicator size.
	CommSize int `json:"comm_size"`
	// Bytes is the total collective size S (default 16 MiB).
	Bytes int64 `json:"bytes,omitempty"`
	// Simultaneous: all subcommunicators run the collective at once.
	Simultaneous bool `json:"simultaneous,omitempty"`
	// Top bounds how many ranked orders the response carries (default 5,
	// 0 < Top ≤ 64).
	Top int `json:"top,omitempty"`
}

// AdvisePrediction is one ranked order of an AdviseResponse.
type AdvisePrediction struct {
	Order           []int   `json:"order"`
	Seconds         float64 `json:"seconds"`
	BandwidthMBs    float64 `json:"bandwidth_mbs"`
	BottleneckLevel int     `json:"bottleneck_level"` // -1: latency-bound
	Explain         string  `json:"explain"`
}

// AdviseResponse carries the head (and tail) of the deterministic ranking.
type AdviseResponse struct {
	Machine   string `json:"machine"`
	Hierarchy []int  `json:"hierarchy"`
	Evaluated int    `json:"evaluated"` // orders ranked (k!)
	// Degraded marks a heuristic ring-cost ranking served while the
	// advisor circuit breaker was open; Seconds/Bandwidth are absent.
	Degraded bool               `json:"degraded,omitempty"`
	Best     []AdvisePrediction `json:"best"`
	Worst    AdvisePrediction   `json:"worst"`
}

// SelectRequest asks for the --cpu-bind=map_cpu core list that places N
// ranks on one node under an order (Algorithm 3).
type SelectRequest struct {
	Hierarchy string `json:"hierarchy"` // per-node hierarchy
	Order     string `json:"order"`
	N         int    `json:"n"`
}

// SelectResponse is the canonical answer to a SelectRequest.
type SelectResponse struct {
	Hierarchy []int  `json:"hierarchy"`
	Order     []int  `json:"order"`
	N         int    `json:"n"`
	MapCPU    []int  `json:"map_cpu"`  // position r: core hosting rank r
	CPUBind   string `json:"cpu_bind"` // ready-made --cpu-bind value
	// Induced is the hierarchy formed by the selected cores (§3.4), absent
	// when the selection is structurally non-uniform.
	Induced []int  `json:"induced,omitempty"`
	Uniform bool   `json:"uniform"`
	Reason  string `json:"reason,omitempty"` // why the selection is non-uniform
}

// OrderMetricsRequest asks for the §3.3 characterization of one order.
type OrderMetricsRequest struct {
	Hierarchy string `json:"hierarchy"`
	Order     string `json:"order"`
	// CommSize of the first subcommunicator (default: innermost arity).
	CommSize int `json:"comm_size,omitempty"`
}

// OrderMetricsResponse is the canonical answer to an OrderMetricsRequest.
type OrderMetricsResponse struct {
	Hierarchy []int `json:"hierarchy"`
	Order     []int `json:"order"`
	CommSize  int   `json:"comm_size"`
	RingCost  int   `json:"ring_cost"`
	// PairsPerLevel[j]: percentage of process pairs whose communication
	// crosses j levels above the innermost (index 0 = fits lowest level).
	PairsPerLevel []float64 `json:"pairs_per_level"`
	SpreadScore   float64   `json:"spread_score"`
	// Distribution is the equivalent Slurm --distribution value, when one
	// exists.
	Distribution string `json:"distribution,omitempty"`
	Legend       string `json:"legend"` // figure-legend rendering
}

// errorBody is the structured error envelope of every non-2xx response.
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    int    `json:"code"`
	Status  string `json:"status"`
	Message string `json:"message"`
	// TraceID is the request's distributed-tracing id (when tracing is
	// enabled), so clients can quote the exact failing trace.
	TraceID string `json:"trace_id,omitempty"`
}

// intsKey renders ints compactly for cache keys.
func intsKey(v []int) string {
	var b strings.Builder
	for i, x := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(x))
	}
	return b.String()
}

// Key returns the canonical cache key of the parsed request. Requests that
// differ only in surface syntax ("2x2x4" vs "[2, 2, 4]", "0-1-2" vs
// "0,1,2") share a key.
func (q *parsedMap) Key() string {
	k := "map|" + intsKey(q.arities) + "|" + intsKey(q.sigma) + "|"
	switch {
	case q.rank != nil:
		k += "r" + strconv.Itoa(*q.rank)
	case q.coords != nil:
		k += "c" + intsKey(q.coords)
	}
	if q.table {
		k += "|t"
	}
	return k
}

// Key returns the canonical cache key of the parsed request.
func (q *parsedAdvise) Key() string {
	return fmt.Sprintf("advise|%s|%d|%d|%s|%d|%d|%v|%d",
		q.machine, q.nodes, q.nics, q.coll, q.comm, q.bytes, q.simultaneous, q.top)
}

// Key returns the canonical cache key of the parsed request.
func (q *parsedSelect) Key() string {
	return "select|" + intsKey(q.arities) + "|" + intsKey(q.sigma) + "|" + strconv.Itoa(q.n)
}

// Key returns the canonical cache key of the parsed request.
func (q *parsedOrderMetrics) Key() string {
	return "metrics|" + intsKey(q.arities) + "|" + intsKey(q.sigma) + "|" + strconv.Itoa(q.comm)
}
