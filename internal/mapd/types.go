// Package mapd is the mapping-advisory service: a long-lived, concurrent
// front end for the repo's core queries — rank decompose/compose, order
// recommendation (the §5 outlook implemented by internal/advisor),
// --cpu-bind=map_cpu core selection (Algorithm 3), and the §3.3 order
// metrics. Results are canonicalized, cached in a sharded LRU, and
// deduplicated in flight with a singleflight layer so a burst of identical
// advisor evaluations runs the k! search once.
//
// The request/response structs below are the service's wire format; the
// mrmap CLI emits the same structs under -json so CLI and API outputs are
// diffable.
package mapd

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/commmatrix"
)

// MapRequest asks for rank ⇄ coordinate conversion (Algorithms 1 and 2)
// under a hierarchy and order. Exactly one of Rank, Coords, or Table must
// be set:
//
//   - Rank: decompose the rank into coordinates and compute its reordered
//     rank under Order.
//   - Coords: compose the coordinates into the reordered rank.
//   - Table: return the full old-rank → new-rank mapping table.
//
// Order defaults to the identity order (the initial enumeration,
// Figure 2f), which leaves ranks unchanged.
type MapRequest struct {
	Hierarchy string `json:"hierarchy"`
	Order     string `json:"order,omitempty"`
	Rank      *int   `json:"rank,omitempty"`
	Coords    []int  `json:"coords,omitempty"`
	Table     bool   `json:"table,omitempty"`
}

// MapResponse is the canonical answer to a MapRequest.
type MapResponse struct {
	Hierarchy []int    `json:"hierarchy"`
	Levels    []string `json:"levels"`
	Order     []int    `json:"order"`
	Rank      *int     `json:"rank,omitempty"`     // echo of the decomposed rank
	Coords    []int    `json:"coords,omitempty"`   // coordinates of Rank (or echo)
	NewRank   *int     `json:"new_rank,omitempty"` // reordered rank under Order
	Table     []int    `json:"table,omitempty"`    // table[old] = new
	// Degraded marks an answer computed by a routing tier's local fallback
	// instead of a replica (the result itself is still exact).
	Degraded bool `json:"degraded,omitempty"`
}

// AdviseRequest asks the analytic advisor to rank hierarchy orders for a
// machine model and collective scenario.
type AdviseRequest struct {
	// Machine is a built-in model: "hydra", "hydra-real", "lumi", or
	// "cloud" (the deep synthetic datacenter, sized by Depth).
	Machine string `json:"machine"`
	// Nodes is the compute-node count (default 16; not for cloud).
	Nodes int `json:"nodes,omitempty"`
	// NICs per node (hydra models only; default 1).
	NICs int `json:"nics,omitempty"`
	// Depth is the cloud machine's hierarchy depth (6–12, default 10).
	// Depths above the exact-search threshold are served by the bounded
	// branch-and-bound / beam search.
	Depth int `json:"depth,omitempty"`
	// Collective: "alltoall", "allgather", or "allreduce".
	Collective string `json:"collective"`
	// CommSize is the subcommunicator size.
	CommSize int `json:"comm_size"`
	// Bytes is the total collective size S (default 16 MiB).
	Bytes int64 `json:"bytes,omitempty"`
	// Simultaneous: all subcommunicators run the collective at once.
	Simultaneous bool `json:"simultaneous,omitempty"`
	// Top bounds how many ranked orders the response carries (default 5,
	// 0 < Top ≤ 64).
	Top int `json:"top,omitempty"`
}

// AdvisePrediction is one ranked order of an AdviseResponse.
type AdvisePrediction struct {
	Order           []int   `json:"order"`
	Seconds         float64 `json:"seconds"`
	BandwidthMBs    float64 `json:"bandwidth_mbs"`
	BottleneckLevel int     `json:"bottleneck_level"` // -1: latency-bound
	Explain         string  `json:"explain"`
}

// AdviseResponse carries the head (and tail) of the deterministic ranking.
type AdviseResponse struct {
	Machine   string `json:"machine"`
	Hierarchy []int  `json:"hierarchy"`
	// Evaluated counts the orders the answer accounts for: k! for the
	// exact modes and a completed branch-and-bound (where pruned orders
	// are accounted with proof), the covered orders for a beam answer,
	// and the candidate-set size for degraded fallbacks.
	Evaluated int `json:"evaluated"`
	// SearchMode is how the ranking was computed: "exact" or "pruned"
	// below the depth threshold, "bnb" (provably optimal) or "beam"
	// (bounded gap) above it, "fallback" for degraded answers.
	SearchMode string `json:"search_mode,omitempty"`
	// OrdersEvaluated counts the model evaluations the search actually
	// performed (equivalence classes predicted) — the honest work done,
	// as reported by the engine rather than recomputed as k!.
	OrdersEvaluated int64 `json:"orders_evaluated,omitempty"`
	// OptimalityGap g is reported by beam answers: the true optimum time
	// is guaranteed ≥ best×(1−g). Zero means provably optimal.
	OptimalityGap float64 `json:"optimality_gap,omitempty"`
	// Degraded marks a heuristic ring-cost ranking served while the
	// advisor circuit breaker was open; Seconds/Bandwidth are absent.
	Degraded bool               `json:"degraded,omitempty"`
	Best     []AdvisePrediction `json:"best"`
	// Worst is the worst-ranked order the search evaluated (the global
	// worst for exact modes; bnb/beam prune or drop costlier subtrees
	// without fully evaluating them).
	Worst AdvisePrediction `json:"worst"`
}

// SelectRequest asks for the --cpu-bind=map_cpu core list that places N
// ranks on one node under an order (Algorithm 3).
type SelectRequest struct {
	Hierarchy string `json:"hierarchy"` // per-node hierarchy
	Order     string `json:"order"`
	N         int    `json:"n"`
}

// SelectResponse is the canonical answer to a SelectRequest.
type SelectResponse struct {
	Hierarchy []int  `json:"hierarchy"`
	Order     []int  `json:"order"`
	N         int    `json:"n"`
	MapCPU    []int  `json:"map_cpu"`  // position r: core hosting rank r
	CPUBind   string `json:"cpu_bind"` // ready-made --cpu-bind value
	// Induced is the hierarchy formed by the selected cores (§3.4), absent
	// when the selection is structurally non-uniform.
	Induced []int  `json:"induced,omitempty"`
	Uniform bool   `json:"uniform"`
	Reason  string `json:"reason,omitempty"` // why the selection is non-uniform
	// Degraded marks an answer computed by a routing tier's local fallback
	// instead of a replica (the result itself is still exact).
	Degraded bool `json:"degraded,omitempty"`
}

// OrderMetricsRequest asks for the §3.3 characterization of one order.
type OrderMetricsRequest struct {
	Hierarchy string `json:"hierarchy"`
	Order     string `json:"order"`
	// CommSize of the first subcommunicator (default: innermost arity).
	CommSize int `json:"comm_size,omitempty"`
}

// OrderMetricsResponse is the canonical answer to an OrderMetricsRequest.
type OrderMetricsResponse struct {
	Hierarchy []int `json:"hierarchy"`
	Order     []int `json:"order"`
	CommSize  int   `json:"comm_size"`
	RingCost  int   `json:"ring_cost"`
	// PairsPerLevel[j]: percentage of process pairs whose communication
	// crosses j levels above the innermost (index 0 = fits lowest level).
	PairsPerLevel []float64 `json:"pairs_per_level"`
	SpreadScore   float64   `json:"spread_score"`
	// Distribution is the equivalent Slurm --distribution value, when one
	// exists.
	Distribution string `json:"distribution,omitempty"`
	Legend       string `json:"legend"` // figure-legend rendering
	// Degraded marks an answer computed by a routing tier's local fallback
	// instead of a replica (the result itself is still exact).
	Degraded bool `json:"degraded,omitempty"`
}

// MatrixMapRequest asks for a communication-matrix-aware placement: the
// procmap greedy construction plus local-search refinement, benchmarked
// against (and never worse than) the best mixed-radix digit order.
type MatrixMapRequest struct {
	Hierarchy string `json:"hierarchy"`
	// Matrix is the sparse symmetric communication matrix; Ranks must equal
	// the hierarchy's core count.
	Matrix commmatrix.Sparse `json:"matrix"`
	// Refine toggles the local-search refinement (default true).
	Refine *bool `json:"refine,omitempty"`
	// Seed drives the refinement's deterministic sampling (default 0).
	Seed int64 `json:"seed,omitempty"`
	// MaxRounds bounds refinement sweeps (default: procmap's default).
	MaxRounds int `json:"max_rounds,omitempty"`
}

// MatrixMapResponse is the canonical answer to a MatrixMapRequest.
type MatrixMapResponse struct {
	Hierarchy []int `json:"hierarchy"`
	Ranks     int   `json:"ranks"`
	// MatrixDigest is the canonical content digest of the request matrix;
	// responses are cacheable by (digest, hierarchy, options).
	MatrixDigest string `json:"matrix_digest"`
	// Placement maps rank → core.
	Placement []int `json:"placement"`
	// Cost is Placement's weighted crossing cost; GreedyCost is the cost
	// before refinement (absent in fallback answers).
	Cost       float64 `json:"cost"`
	GreedyCost float64 `json:"greedy_cost,omitempty"`
	// BestOrder / BestOrderCost describe the σ baseline the placement was
	// benchmarked against; ImprovementPct is the matrix-aware win over it.
	BestOrder       []int   `json:"best_order"`
	BestOrderCost   float64 `json:"best_order_cost"`
	ImprovementPct  float64 `json:"improvement_pct"`
	OrdersEvaluated int64   `json:"orders_evaluated"`
	Rounds          int     `json:"rounds,omitempty"`
	Swaps           int     `json:"swaps,omitempty"`
	Seed            int64   `json:"seed"`
	// SearchMode is "matrix" for the full search or "fallback" when the
	// answer is the bare σ-order baseline (breaker open or over budget);
	// fallback answers are additionally flagged Degraded and never cached.
	SearchMode string `json:"search_mode"`
	Degraded   bool   `json:"degraded,omitempty"`
}

// cacheable keeps degraded fallback answers out of the result cache, so a
// recovered service re-runs the real search.
func (r *MatrixMapResponse) cacheable() bool { return !r.Degraded }

// errorBody is the structured error envelope of every non-2xx response.
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    int    `json:"code"`
	Status  string `json:"status"`
	Message string `json:"message"`
	// TraceID is the request's distributed-tracing id (when tracing is
	// enabled), so clients can quote the exact failing trace.
	TraceID string `json:"trace_id,omitempty"`
}

// intsKey renders ints compactly for cache keys.
func intsKey(v []int) string {
	var b strings.Builder
	for i, x := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(x))
	}
	return b.String()
}

// Key returns the canonical cache key of the parsed request. Requests that
// differ only in surface syntax ("2x2x4" vs "[2, 2, 4]", "0-1-2" vs
// "0,1,2") share a key.
func (q *parsedMap) Key() string {
	k := "map|" + intsKey(q.arities) + "|" + intsKey(q.sigma) + "|"
	switch {
	case q.rank != nil:
		k += "r" + strconv.Itoa(*q.rank)
	case q.coords != nil:
		k += "c" + intsKey(q.coords)
	}
	if q.table {
		k += "|t"
	}
	return k
}

// Key returns the canonical cache key of the parsed request.
func (q *parsedAdvise) Key() string {
	return fmt.Sprintf("advise|%s|%d|%d|%d|%s|%d|%d|%v|%d",
		q.machine, q.nodes, q.nics, q.depth, q.coll, q.comm, q.bytes, q.simultaneous, q.top)
}

// Key returns the canonical cache key of the parsed request.
func (q *parsedSelect) Key() string {
	return "select|" + intsKey(q.arities) + "|" + intsKey(q.sigma) + "|" + strconv.Itoa(q.n)
}

// Key returns the canonical cache key of the parsed request.
func (q *parsedOrderMetrics) Key() string {
	return "metrics|" + intsKey(q.arities) + "|" + intsKey(q.sigma) + "|" + strconv.Itoa(q.comm)
}

// Key returns the canonical cache key of the parsed request: the matrix
// participates via its content digest, so identical traffic submitted with
// edges in any order or orientation shares a key.
func (q *parsedMatrixMap) Key() string {
	return fmt.Sprintf("mapmatrix|%s|%s|s%d|r%d|f%v",
		intsKey(q.arities), q.digest, q.seed, q.rounds, q.refine)
}
