// Sharded LRU result cache. Keys are the canonical request keys of
// types.go; values are fully marshalled response bodies, so a hit is a
// single lock, a map lookup, and a write — no re-evaluation, no
// re-marshalling. Sharding by key hash keeps lock contention flat as
// client concurrency grows.

package mapd

import (
	"container/list"
	"sync"
)

// Cache is a fixed-capacity LRU cache split into power-of-two shards.
type Cache struct {
	shards []cacheShard
	mask   uint32
}

type cacheShard struct {
	mu    sync.Mutex
	cap   int
	items map[string]*list.Element
	order *list.List // front = most recently used
}

type cacheEntry struct {
	key string
	val []byte
}

// NewCache returns a cache holding up to capacity entries in total, spread
// over shards (rounded up to a power of two; 0 picks 16). A capacity ≤ 0
// disables caching: Get always misses and Put drops.
func NewCache(capacity, shards int) *Cache {
	if shards <= 0 {
		shards = 16
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	if capacity > 0 && n > capacity {
		n = 1
	}
	c := &Cache{shards: make([]cacheShard, n), mask: uint32(n - 1)}
	per := 0
	if capacity > 0 {
		per = (capacity + n - 1) / n
	}
	for i := range c.shards {
		c.shards[i].cap = per
		c.shards[i].items = make(map[string]*list.Element)
		c.shards[i].order = list.New()
	}
	return c
}

// fnv32a is the 32-bit FNV-1a hash used to pick a shard.
func fnv32a(s string) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime
	}
	return h
}

func (c *Cache) shard(key string) *cacheShard {
	return &c.shards[fnv32a(key)&c.mask]
}

// Get returns the cached body for key. The returned slice is shared; the
// caller must not mutate it.
func (c *Cache) Get(key string) ([]byte, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.items[key]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(e)
	return e.Value.(*cacheEntry).val, true
}

// Put stores the body under key, evicting the least recently used entry of
// the shard when full.
func (c *Cache) Put(key string, val []byte) {
	s := c.shard(key)
	if s.cap <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.items[key]; ok {
		e.Value.(*cacheEntry).val = val
		s.order.MoveToFront(e)
		return
	}
	if s.order.Len() >= s.cap {
		oldest := s.order.Back()
		if oldest != nil {
			s.order.Remove(oldest)
			delete(s.items, oldest.Value.(*cacheEntry).key)
		}
	}
	s.items[key] = s.order.PushFront(&cacheEntry{key: key, val: val})
}

// Len returns the number of cached entries across all shards.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}
