// End-to-end tests for /v1/map/matrix: the healthy matrix-aware search,
// digest-keyed caching, request validation, and the two degraded paths —
// over-budget inside the compute and breaker-open before it — both of
// which must serve the σ-order baseline labeled "fallback" and never
// poison the cache with a degraded answer.

package mapd

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// hubMatrixBody builds a matrix-map request over a 2,2,2 hierarchy whose
// traffic concentrates on a hub rank, with the edges listed in the given
// rotation so that two bodies with different edge orderings share a digest.
func hubMatrixBody(rot int) string {
	edges := []string{
		`{"a":0,"b":7,"bytes":1000}`,
		`{"a":1,"b":7,"bytes":900}`,
		`{"a":2,"b":7,"bytes":800}`,
		`{"a":3,"b":7,"bytes":700}`,
		`{"a":4,"b":5,"bytes":10}`,
		`{"a":4,"b":6,"bytes":10}`,
	}
	rot %= len(edges)
	rotated := append(append([]string(nil), edges[rot:]...), edges[:rot]...)
	return fmt.Sprintf(`{"hierarchy":"2,2,2","matrix":{"ranks":8,"edges":[%s]},"seed":1}`,
		strings.Join(rotated, ","))
}

func decodeMatrixResp(t *testing.T, body string) *MatrixMapResponse {
	t.Helper()
	var resp MatrixMapResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("decoding matrix response: %v\nbody: %s", err, body)
	}
	return &resp
}

func TestMatrixMapEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Registry: reg})

	code, body := post(t, ts, "/v1/map/matrix", hubMatrixBody(0))
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, body)
	}
	resp := decodeMatrixResp(t, body)
	if resp.SearchMode != ModeMatrix {
		t.Errorf("search_mode %q, want %q", resp.SearchMode, ModeMatrix)
	}
	if resp.Degraded {
		t.Error("healthy answer flagged degraded")
	}
	if resp.Ranks != 8 || len(resp.Placement) != 8 {
		t.Fatalf("ranks %d, placement %v, want 8 ranks", resp.Ranks, resp.Placement)
	}
	seen := make([]bool, 8)
	for _, c := range resp.Placement {
		if c < 0 || c >= 8 || seen[c] {
			t.Fatalf("placement %v is not a permutation of 8 cores", resp.Placement)
		}
		seen[c] = true
	}
	if resp.Cost > resp.BestOrderCost {
		t.Errorf("cost %g exceeds the σ baseline %g", resp.Cost, resp.BestOrderCost)
	}
	if resp.OrdersEvaluated != 6 {
		t.Errorf("orders_evaluated = %d, want 3! = 6", resp.OrdersEvaluated)
	}
	if resp.MatrixDigest == "" {
		t.Error("response missing the matrix digest")
	}
	if len(resp.BestOrder) != 3 {
		t.Errorf("best_order %v, want a depth-3 permutation", resp.BestOrder)
	}

	// A second request with the same edges in a different order has the
	// same digest, hence the same cache key.
	code, body2 := post(t, ts, "/v1/map/matrix", hubMatrixBody(3))
	if code != http.StatusOK {
		t.Fatalf("rotated request status %d, body %s", code, body2)
	}
	if body2 != body {
		t.Errorf("digest-identical request answered differently:\n%s\n%s", body, body2)
	}
	hl := obs.L("endpoint", "map_matrix")
	if v := reg.FindCounter("mapd_cache_hits_total", hl); v != 1 {
		t.Errorf("map_matrix cache hits = %v, want 1", v)
	}

	// Workload analytics attribute the traffic to the endpoint mix.
	var rep StatsReport
	if code, sb := post0(t, ts, "/v1/stats"); code != http.StatusOK {
		t.Fatalf("/v1/stats status %d", code)
	} else if err := json.Unmarshal([]byte(sb), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Endpoints["map_matrix"] != 2 {
		t.Errorf("endpoint mix %v, want map_matrix=2", rep.Endpoints)
	}
	if rep.SearchModes[ModeMatrix] < 1 {
		t.Errorf("search modes %v missing %q", rep.SearchModes, ModeMatrix)
	}
}

// post0 GETs a path (the stats endpoint answers GET).
func post0(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestMatrixMapValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, req string
	}{
		{"rank mismatch", `{"hierarchy":"2,2,2","matrix":{"ranks":4,"edges":[{"a":0,"b":1,"bytes":1}]}}`},
		{"self edge", `{"hierarchy":"2,2","matrix":{"ranks":4,"edges":[{"a":2,"b":2,"bytes":1}]}}`},
		{"duplicate pair", `{"hierarchy":"2,2","matrix":{"ranks":4,"edges":[{"a":0,"b":1,"bytes":1},{"a":1,"b":0,"bytes":2}]}}`},
		{"non-positive volume", `{"hierarchy":"2,2","matrix":{"ranks":4,"edges":[{"a":0,"b":1,"bytes":0}]}}`},
		{"out of range", `{"hierarchy":"2,2","matrix":{"ranks":4,"edges":[{"a":0,"b":9,"bytes":1}]}}`},
		{"unknown field", `{"hierarchy":"2,2","matrix":{"ranks":4,"edges":[]},"bogus":1}`},
		{"rounds out of range", `{"hierarchy":"2,2","matrix":{"ranks":4,"edges":[]},"max_rounds":65}`},
		{"too deep", `{"hierarchy":"2,2,2,2,2,2,2","matrix":{"ranks":128,"edges":[]}}`},
	}
	for _, tc := range cases {
		if code, body := post(t, ts, "/v1/map/matrix", tc.req); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, code, body)
		}
	}
}

// TestMatrixMapBudgetFallback drives the over-budget path: a search that
// exceeds MatrixBudget degrades to the σ-order baseline inside the same
// request — HTTP 200, labeled fallback — and the degraded answer must not
// be cached, so the next identical request gets a fresh full search.
func TestMatrixMapBudgetFallback(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Config{
		Registry:         reg,
		MatrixBudget:     time.Millisecond,
		BreakerThreshold: 100, // keep the breaker out of this test
	})
	s.MatrixHook = func() { time.Sleep(20 * time.Millisecond) }

	code, body := post(t, ts, "/v1/map/matrix", hubMatrixBody(0))
	if code != http.StatusOK {
		t.Fatalf("over-budget status %d, want 200 (body %s)", code, body)
	}
	resp := decodeMatrixResp(t, body)
	if !resp.Degraded || resp.SearchMode != "fallback" {
		t.Fatalf("degraded=%v search_mode=%q, want a labeled fallback", resp.Degraded, resp.SearchMode)
	}
	if resp.Cost != resp.BestOrderCost {
		t.Errorf("fallback cost %g != best-order cost %g", resp.Cost, resp.BestOrderCost)
	}
	if v := reg.FindCounter("mapd_matrix_fallback_total"); v != 1 {
		t.Errorf("mapd_matrix_fallback_total = %v, want 1", v)
	}

	// With the fault cleared, the same request must be recomputed in full:
	// the degraded answer was never cached.
	s.MatrixHook = nil
	code, body = post(t, ts, "/v1/map/matrix", hubMatrixBody(0))
	if code != http.StatusOK {
		t.Fatalf("recovered status %d (body %s)", code, body)
	}
	resp = decodeMatrixResp(t, body)
	if resp.Degraded || resp.SearchMode != ModeMatrix {
		t.Fatalf("recovered answer degraded=%v mode=%q, want a fresh full search", resp.Degraded, resp.SearchMode)
	}
	if v := reg.FindCounter("mapd_cache_hits_total", obs.L("endpoint", "map_matrix")); v != 0 {
		t.Errorf("map_matrix cache hits = %v, want 0 — the degraded answer leaked into the cache", v)
	}
}

// TestMatrixMapBreakerFallback trips the shared circuit breaker with
// over-budget matrix searches, then verifies that a breaker-open request
// is served straight from the σ-order fallback and that both degraded
// paths are visible on /metrics.
func TestMatrixMapBreakerFallback(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Config{
		Registry:         reg,
		CacheEntries:     -1,
		MatrixBudget:     time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
	})
	s.MatrixHook = func() { time.Sleep(20 * time.Millisecond) }

	// Two over-budget searches: each answers 200 degraded and records a
	// breaker failure, opening the breaker.
	for i := 0; i < 2; i++ {
		code, body := post(t, ts, "/v1/map/matrix", hubMatrixBody(0))
		if code != http.StatusOK {
			t.Fatalf("warm-up %d: status %d (body %s)", i, code, body)
		}
		if resp := decodeMatrixResp(t, body); !resp.Degraded {
			t.Fatalf("warm-up %d not degraded", i)
		}
	}

	// Breaker open: even a healthy request is served from the fallback.
	s.MatrixHook = nil
	code, body := post(t, ts, "/v1/map/matrix", hubMatrixBody(0))
	if code != http.StatusOK {
		t.Fatalf("breaker-open status %d (body %s)", code, body)
	}
	resp := decodeMatrixResp(t, body)
	if !resp.Degraded || resp.SearchMode != "fallback" {
		t.Fatalf("breaker-open answer degraded=%v mode=%q, want labeled fallback", resp.Degraded, resp.SearchMode)
	}
	if v := reg.FindCounter("mapd_matrix_fallback_total"); v != 3 {
		t.Errorf("mapd_matrix_fallback_total = %v, want 3", v)
	}
	// Each fallback charges the k! heuristic evaluations to mode=fallback.
	ml := obs.L("mode", "fallback")
	if v := reg.FindCounter("advisor_class_misses_total", ml); v != 18 {
		t.Errorf("fallback class misses = %v, want 3 fallbacks × 3! orders = 18", v)
	}

	// Both families are on the exposition, labeled.
	_, mb := post0(t, ts, "/metrics")
	for _, want := range []string{
		"mapd_matrix_fallback_total 3",
		`advisor_search_seconds_count{mode="fallback"} 3`,
	} {
		if !strings.Contains(mb, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The workload analytics see only fallback searches.
	var rep StatsReport
	if code, sb := post0(t, ts, "/v1/stats"); code != http.StatusOK {
		t.Fatalf("/v1/stats status %d", code)
	} else if err := json.Unmarshal([]byte(sb), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.SearchModes["fallback"] != 3 {
		t.Errorf("search modes %v, want 3 fallbacks", rep.SearchModes)
	}
}
