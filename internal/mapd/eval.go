// Pure evaluation of the canonical requests: no HTTP, no caching. The
// service handlers and the mrmap -json mode both call these, so CLI and
// API outputs are byte-for-byte diffable.

package mapd

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/advisor"
	"repro/internal/metrics"
	"repro/internal/mixedradix"
	"repro/internal/obs/rt"
	"repro/internal/perm"
	"repro/internal/procmap"
	"repro/internal/slurm"
)

// ModeMatrix labels the matrix-aware placement search in the
// advisor_search_* metrics and workload analytics, alongside the
// advisor's exact/pruned/fallback modes.
const ModeMatrix = "matrix"

// EvalMap answers a MapRequest. Errors wrap ErrBadRequest.
func EvalMap(req MapRequest) (*MapResponse, error) {
	q, err := req.parse()
	if err != nil {
		return nil, err
	}
	return evalMap(q)
}

func evalMap(q *parsedMap) (*MapResponse, error) {
	resp := &MapResponse{
		Hierarchy: q.arities,
		Levels:    q.h.Names(),
		Order:     q.sigma,
	}
	switch {
	case q.rank != nil:
		resp.Rank = q.rank
		resp.Coords = mixedradix.Decompose(q.arities, *q.rank)
		nr := mixedradix.NewRank(q.arities, *q.rank, q.sigma)
		resp.NewRank = &nr
	case q.coords != nil:
		resp.Coords = q.coords
		nr, err := mixedradix.ComposeChecked(q.arities, q.coords, q.sigma)
		if err != nil {
			return nil, badf("%v", err)
		}
		resp.NewRank = &nr
	}
	if q.table {
		table, err := mixedradix.ReorderAll(q.arities, q.sigma)
		if err != nil {
			return nil, badf("%v", err)
		}
		resp.Table = table
	}
	return resp, nil
}

// EvalAdvise answers an AdviseRequest, ranking all k! orders with the
// advisor's worker pool. Errors wrap ErrBadRequest except when the context
// is cancelled. Errors wrap ErrBadRequest.
func EvalAdvise(ctx context.Context, req AdviseRequest, opts advisor.RankOptions) (*AdviseResponse, error) {
	q, err := req.parse()
	if err != nil {
		return nil, err
	}
	return evalAdvise(ctx, q, opts)
}

func evalAdvise(ctx context.Context, q *parsedAdvise, opts advisor.RankOptions) (*AdviseResponse, error) {
	sc := q.scenario()
	ranked, err := advisor.Rank(ctx, sc, nil, opts)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, badf("%v", err)
	}
	top := q.top
	if top > len(ranked) {
		top = len(ranked)
	}
	resp := &AdviseResponse{
		Machine:   q.machine,
		Hierarchy: sc.Hierarchy.Arities(),
		Evaluated: len(ranked),
		Best:      make([]AdvisePrediction, top),
		Worst:     advisePrediction(sc, ranked[len(ranked)-1]),
	}
	for i := 0; i < top; i++ {
		resp.Best[i] = advisePrediction(sc, ranked[i])
	}
	return resp, nil
}

// EvalAdviseFallback answers an AdviseRequest from the σ-order ring-cost
// heuristic — the same degraded path the breaker-open service serves. It
// is cheap, deterministic, and cannot time out, which makes it the
// last-resort local answer for routing tiers with every replica down.
// Errors wrap ErrBadRequest.
func EvalAdviseFallback(req AdviseRequest) (*AdviseResponse, error) {
	q, err := req.parse()
	if err != nil {
		return nil, err
	}
	return evalAdviseFallback(q)
}

// evalAdviseFallback is the degraded-mode answer served while the advisor
// circuit breaker is open: instead of the k! bottleneck-model search it
// ranks all orders by the §3.3 ring cost of their enumeration — a pure
// integer computation that cannot time out. The closed-form kernel makes
// each order O(k), so the whole fallback costs O(k·k!) instead of the
// O(n·k!) table walk it used to do. The response is flagged Degraded and
// never cached.
func evalAdviseFallback(q *parsedAdvise) (*AdviseResponse, error) {
	sc := q.scenario()
	h := sc.Hierarchy
	type cand struct {
		sigma []int
		cost  int
	}
	orders := perm.All(h.Depth())
	cands := make([]cand, 0, len(orders))
	for _, sigma := range orders {
		ch, err := metrics.Characterize(h, sigma, h.Size())
		if err != nil {
			return nil, badf("%v", err)
		}
		cands = append(cands, cand{sigma: sigma, cost: ch.RingCost})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cost != cands[j].cost {
			return cands[i].cost < cands[j].cost
		}
		return perm.Less(cands[i].sigma, cands[j].sigma)
	})
	pred := func(c cand) AdvisePrediction {
		return AdvisePrediction{
			Order:           c.sigma,
			BottleneckLevel: -1,
			Explain:         fmt.Sprintf("heuristic: ring cost %d (advisor breaker open)", c.cost),
		}
	}
	top := q.top
	if top > len(cands) {
		top = len(cands)
	}
	resp := &AdviseResponse{
		Machine:   q.machine,
		Hierarchy: h.Arities(),
		Evaluated: len(cands),
		Degraded:  true,
		Best:      make([]AdvisePrediction, top),
		Worst:     pred(cands[len(cands)-1]),
	}
	for i := 0; i < top; i++ {
		resp.Best[i] = pred(cands[i])
	}
	return resp, nil
}

func advisePrediction(sc advisor.Scenario, pr advisor.Prediction) AdvisePrediction {
	return AdvisePrediction{
		Order:           pr.Order,
		Seconds:         pr.Time,
		BandwidthMBs:    pr.Bandwidth / 1e6,
		BottleneckLevel: pr.BottleneckLevel,
		Explain:         advisor.Explain(sc, pr),
	}
}

// EvalMatrixMap answers a MatrixMapRequest: the σ-order baseline search
// followed by the procmap greedy construction and refinement, seeded from
// the better of the two starting points — the answer never costs more than
// the best mixed-radix order. Errors wrap ErrBadRequest except when the
// context is cancelled.
func EvalMatrixMap(ctx context.Context, req MatrixMapRequest) (*MatrixMapResponse, error) {
	q, err := req.parse()
	if err != nil {
		return nil, err
	}
	return evalMatrixMap(ctx, q)
}

func evalMatrixMap(ctx context.Context, q *parsedMatrixMap) (*MatrixMapResponse, error) {
	_, osp := rt.StartSpan(ctx, "procmap.bestorder")
	sigma, orderPlacement, orderCost, err := procmap.BestOrder(q.m, q.h, nil)
	osp.End()
	if err != nil {
		return nil, badf("%v", err)
	}
	mctx, msp := rt.StartSpan(ctx, "procmap.map")
	res, err := procmap.Map(mctx, q.m, q.h, procmap.Options{
		Seed:          q.seed,
		MaxRounds:     q.rounds,
		NoRefine:      !q.refine,
		InitPlacement: orderPlacement,
	})
	msp.End()
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, badf("%v", err)
	}
	resp := &MatrixMapResponse{
		Hierarchy:       q.arities,
		Ranks:           q.m.Size(),
		MatrixDigest:    q.digest,
		Placement:       res.Placement,
		Cost:            res.Cost,
		GreedyCost:      res.GreedyCost,
		BestOrder:       sigma,
		BestOrderCost:   orderCost,
		OrdersEvaluated: factorial(q.h.Depth()),
		Rounds:          res.Rounds,
		Swaps:           res.Swaps,
		Seed:            q.seed,
		SearchMode:      ModeMatrix,
	}
	// With refinement disabled the greedy construction may lose to the σ
	// baseline; the served placement must never be worse than it.
	if orderCost < resp.Cost {
		resp.Placement = orderPlacement
		resp.Cost = orderCost
	}
	if orderCost > 0 {
		resp.ImprovementPct = 100 * (orderCost - resp.Cost) / orderCost
	}
	return resp, nil
}

// EvalMatrixMapFallback answers a MatrixMapRequest from the σ-order
// baseline only — EvalAdviseFallback's matrix-map counterpart for
// last-resort local serving. Errors wrap ErrBadRequest.
func EvalMatrixMapFallback(req MatrixMapRequest) (*MatrixMapResponse, error) {
	q, err := req.parse()
	if err != nil {
		return nil, err
	}
	return evalMatrixMapFallback(q)
}

// evalMatrixMapFallback is the degraded matrix-map answer (breaker open or
// over budget): just the best mixed-radix order's placement — a bounded
// k!·edges scan with no refinement. Flagged Degraded and never cached.
func evalMatrixMapFallback(q *parsedMatrixMap) (*MatrixMapResponse, error) {
	sigma, placement, cost, err := procmap.BestOrder(q.m, q.h, nil)
	if err != nil {
		return nil, badf("%v", err)
	}
	return &MatrixMapResponse{
		Hierarchy:       q.arities,
		Ranks:           q.m.Size(),
		MatrixDigest:    q.digest,
		Placement:       placement,
		Cost:            cost,
		BestOrder:       sigma,
		BestOrderCost:   cost,
		OrdersEvaluated: factorial(q.h.Depth()),
		Seed:            q.seed,
		SearchMode:      advisor.ModeFallback,
		Degraded:        true,
	}, nil
}

func factorial(k int) int {
	f := 1
	for i := 2; i <= k; i++ {
		f *= i
	}
	return f
}

// EvalSelect answers a SelectRequest. Errors wrap ErrBadRequest.
func EvalSelect(req SelectRequest) (*SelectResponse, error) {
	q, err := req.parse()
	if err != nil {
		return nil, err
	}
	return evalSelect(q)
}

func evalSelect(q *parsedSelect) (*SelectResponse, error) {
	list, err := slurm.MapCPU(q.h, q.sigma, q.n)
	if err != nil {
		return nil, badf("%v", err)
	}
	resp := &SelectResponse{
		Hierarchy: q.arities,
		Order:     q.sigma,
		N:         q.n,
		MapCPU:    list,
		CPUBind:   slurm.FormatMapCPU(list),
	}
	if induced, err := slurm.InducedHierarchy(q.h, list); err == nil {
		resp.Induced = induced
		resp.Uniform = true
	} else {
		resp.Reason = err.Error()
	}
	return resp, nil
}

// EvalOrderMetrics answers an OrderMetricsRequest. Errors wrap
// ErrBadRequest.
func EvalOrderMetrics(req OrderMetricsRequest) (*OrderMetricsResponse, error) {
	q, err := req.parse()
	if err != nil {
		return nil, err
	}
	return evalOrderMetrics(q)
}

func evalOrderMetrics(q *parsedOrderMetrics) (*OrderMetricsResponse, error) {
	ch, err := metrics.Characterize(q.h, q.sigma, q.comm)
	if err != nil {
		return nil, badf("%v", err)
	}
	resp := &OrderMetricsResponse{
		Hierarchy:     q.arities,
		Order:         q.sigma,
		CommSize:      q.comm,
		RingCost:      ch.RingCost,
		PairsPerLevel: ch.Pairs,
		SpreadScore:   ch.SpreadScore(),
		Legend:        ch.String(),
	}
	if d, ok := slurm.DistributionForOrder(q.h, q.sigma); ok {
		resp.Distribution = d.String()
	}
	return resp, nil
}
