// Pure evaluation of the canonical requests: no HTTP, no caching. The
// service handlers and the mrmap -json mode both call these, so CLI and
// API outputs are byte-for-byte diffable.

package mapd

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/advisor"
	"repro/internal/metrics"
	"repro/internal/mixedradix"
	"repro/internal/obs/rt"
	"repro/internal/perm"
	"repro/internal/procmap"
	"repro/internal/slurm"
)

// ModeMatrix labels the matrix-aware placement search in the
// advisor_search_* metrics and workload analytics, alongside the
// advisor's exact/pruned/fallback modes.
const ModeMatrix = "matrix"

// EvalMap answers a MapRequest. Errors wrap ErrBadRequest.
func EvalMap(req MapRequest) (*MapResponse, error) {
	q, err := req.parse()
	if err != nil {
		return nil, err
	}
	return evalMap(q)
}

func evalMap(q *parsedMap) (*MapResponse, error) {
	resp := &MapResponse{
		Hierarchy: q.arities,
		Levels:    q.h.Names(),
		Order:     q.sigma,
	}
	switch {
	case q.rank != nil:
		resp.Rank = q.rank
		resp.Coords = mixedradix.Decompose(q.arities, *q.rank)
		nr := mixedradix.NewRank(q.arities, *q.rank, q.sigma)
		resp.NewRank = &nr
	case q.coords != nil:
		resp.Coords = q.coords
		nr, err := mixedradix.ComposeChecked(q.arities, q.coords, q.sigma)
		if err != nil {
			return nil, badf("%v", err)
		}
		resp.NewRank = &nr
	}
	if q.table {
		table, err := mixedradix.ReorderAll(q.arities, q.sigma)
		if err != nil {
			return nil, badf("%v", err)
		}
		resp.Table = table
	}
	return resp, nil
}

// DefaultSearchDepthThreshold is the hierarchy depth above which advise
// requests run the bounded branch-and-bound / beam search instead of the
// exhaustive ranking. Depth 7 (5040 orders) is the largest space the
// pruned exact search answers comfortably within a request budget.
const DefaultSearchDepthThreshold = 7

// AdviseOptions bounds an advise evaluation.
type AdviseOptions struct {
	// Rank configures the exhaustive path (depth ≤ SearchDepthThreshold).
	Rank advisor.RankOptions
	// SearchDepthThreshold is the largest depth served exactly; deeper
	// hierarchies run the bounded search. 0 means
	// DefaultSearchDepthThreshold; values clamp to
	// [1, MaxExactAdviseDepth].
	SearchDepthThreshold int
	// Search configures the bounded path. Top and the observability hooks
	// are filled in from the request and Rank options.
	Search advisor.SearchOptions
}

func (o AdviseOptions) threshold() int {
	t := o.SearchDepthThreshold
	if t == 0 {
		t = DefaultSearchDepthThreshold
	}
	if t < 1 {
		t = 1
	}
	if t > MaxExactAdviseDepth {
		t = MaxExactAdviseDepth
	}
	return t
}

// EvalAdvise answers an AdviseRequest, ranking all k! orders with the
// advisor's worker pool (deep hierarchies fall back to the bounded search
// at the default threshold). Errors wrap ErrBadRequest except when the
// context is cancelled.
func EvalAdvise(ctx context.Context, req AdviseRequest, opts advisor.RankOptions) (*AdviseResponse, error) {
	return EvalAdviseOpts(ctx, req, AdviseOptions{Rank: opts})
}

// EvalAdviseOpts answers an AdviseRequest with full control over the
// exact/bounded split. Errors wrap ErrBadRequest except when the context
// is cancelled.
func EvalAdviseOpts(ctx context.Context, req AdviseRequest, opts AdviseOptions) (*AdviseResponse, error) {
	q, err := req.parse()
	if err != nil {
		return nil, err
	}
	return evalAdvise(ctx, q, opts)
}

func evalAdvise(ctx context.Context, q *parsedAdvise, opts AdviseOptions) (*AdviseResponse, error) {
	sc := q.scenario()
	if sc.Hierarchy.Depth() > opts.threshold() {
		return evalAdviseDeep(ctx, q, opts)
	}
	var rs advisor.RankStats
	ropts := opts.Rank
	inner := ropts.OnStats
	ropts.OnStats = func(s advisor.RankStats) {
		rs = s
		if inner != nil {
			inner(s)
		}
	}
	ranked, err := advisor.Rank(ctx, sc, nil, ropts)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, badf("%v", err)
	}
	top := q.top
	if top > len(ranked) {
		top = len(ranked)
	}
	resp := &AdviseResponse{
		Machine:         q.machine,
		Hierarchy:       sc.Hierarchy.Arities(),
		Evaluated:       len(ranked),
		SearchMode:      rs.Mode,
		OrdersEvaluated: int64(rs.Classes),
		Best:            make([]AdvisePrediction, top),
		Worst:           advisePrediction(sc, ranked[len(ranked)-1]),
	}
	for i := 0; i < top; i++ {
		resp.Best[i] = advisePrediction(sc, ranked[i])
	}
	return resp, nil
}

// evalAdviseDeep serves depths above the exact threshold from the
// branch-and-bound / beam engine: provably optimal when the node budget
// suffices, bounded-gap otherwise — never factorial work.
func evalAdviseDeep(ctx context.Context, q *parsedAdvise, opts AdviseOptions) (*AdviseResponse, error) {
	sc := q.scenario()
	sopts := opts.Search
	sopts.Top = q.top
	sopts.Registry = opts.Rank.Registry
	sopts.OnStats = opts.Rank.OnStats
	res, err := advisor.SearchOrders(ctx, sc, sopts)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, badf("%v", err)
	}
	resp := &AdviseResponse{
		Machine:         q.machine,
		Hierarchy:       sc.Hierarchy.Arities(),
		Evaluated:       clampToInt(res.Covered + res.Pruned),
		SearchMode:      res.Mode,
		OrdersEvaluated: res.Evaluated,
		OptimalityGap:   res.OptimalityGap,
		Best:            make([]AdvisePrediction, len(res.Best)),
		Worst:           advisePrediction(sc, res.Worst),
	}
	for i, pr := range res.Best {
		resp.Best[i] = advisePrediction(sc, pr)
	}
	return resp, nil
}

// clampToInt saturates an order count into the wire type's int field on
// 32-bit platforms (12! does not fit in int32).
func clampToInt(v int64) int {
	if v > int64(^uint(0)>>1) {
		return int(^uint(0) >> 1)
	}
	return int(v)
}

// EvalAdviseFallback answers an AdviseRequest from the σ-order ring-cost
// heuristic — the same degraded path the breaker-open service serves. It
// is cheap, deterministic, and cannot time out, which makes it the
// last-resort local answer for routing tiers with every replica down.
// Errors wrap ErrBadRequest.
func EvalAdviseFallback(req AdviseRequest) (*AdviseResponse, error) {
	q, err := req.parse()
	if err != nil {
		return nil, err
	}
	return evalAdviseFallback(q)
}

// evalAdviseFallback is the degraded-mode answer served while the advisor
// circuit breaker is open: instead of the k! bottleneck-model search it
// ranks orders by the §3.3 ring cost of their enumeration — a pure
// integer computation that cannot time out. The closed-form kernel makes
// each order O(k), so the whole fallback costs O(k·k!) instead of the
// O(n·k!) table walk it used to do. Above the exact depth limit even k!
// ring costs are too many (12! ≈ 479M), so a small deterministic
// candidate set is ranked instead. The response is flagged Degraded and
// never cached.
func evalAdviseFallback(q *parsedAdvise) (*AdviseResponse, error) {
	sc := q.scenario()
	h := sc.Hierarchy
	type cand struct {
		sigma []int
		cost  int
	}
	orders := fallbackOrders(h.Depth())
	cands := make([]cand, 0, len(orders))
	for _, sigma := range orders {
		ch, err := metrics.Characterize(h, sigma, h.Size())
		if err != nil {
			return nil, badf("%v", err)
		}
		cands = append(cands, cand{sigma: sigma, cost: ch.RingCost})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cost != cands[j].cost {
			return cands[i].cost < cands[j].cost
		}
		return perm.Less(cands[i].sigma, cands[j].sigma)
	})
	pred := func(c cand) AdvisePrediction {
		return AdvisePrediction{
			Order:           c.sigma,
			BottleneckLevel: -1,
			Explain:         fmt.Sprintf("heuristic: ring cost %d (advisor breaker open)", c.cost),
		}
	}
	top := q.top
	if top > len(cands) {
		top = len(cands)
	}
	resp := &AdviseResponse{
		Machine:         q.machine,
		Hierarchy:       h.Arities(),
		Evaluated:       len(cands),
		SearchMode:      advisor.ModeFallback,
		OrdersEvaluated: int64(len(cands)),
		Degraded:        true,
		Best:            make([]AdvisePrediction, top),
		Worst:           pred(cands[len(cands)-1]),
	}
	for i := 0; i < top; i++ {
		resp.Best[i] = pred(cands[i])
	}
	return resp, nil
}

// fallbackOrders is the degraded-path candidate set: every order up to
// the exact depth limit; above it, a bounded deterministic family — the
// identity enumeration, the reversed (σ-default) order, and all their
// rotations — so the breaker-open answer stays O(k²) orders deep into
// the cloud depths. The heuristic keeps the fallback's contract (cheap,
// deterministic, never times out); it does not claim optimality, which
// Degraded already signals.
func fallbackOrders(k int) [][]int {
	if k <= MaxExactAdviseDepth {
		return perm.All(k)
	}
	asc := make([]int, k)
	for i := range asc {
		asc[i] = i
	}
	var out [][]int
	seen := make(map[string]bool)
	add := func(s []int) {
		key := fmt.Sprint(s)
		if !seen[key] {
			seen[key] = true
			out = append(out, append([]int(nil), s...))
		}
	}
	for _, base := range [][]int{asc, perm.Reversed(k)} {
		rot := append([]int(nil), base...)
		for r := 0; r < k; r++ {
			add(rot)
			rot = append(rot[1:], rot[0])
		}
	}
	return out
}

func advisePrediction(sc advisor.Scenario, pr advisor.Prediction) AdvisePrediction {
	return AdvisePrediction{
		Order:           pr.Order,
		Seconds:         pr.Time,
		BandwidthMBs:    pr.Bandwidth / 1e6,
		BottleneckLevel: pr.BottleneckLevel,
		Explain:         advisor.Explain(sc, pr),
	}
}

// EvalMatrixMap answers a MatrixMapRequest: the σ-order baseline search
// followed by the procmap greedy construction and refinement, seeded from
// the better of the two starting points — the answer never costs more than
// the best mixed-radix order. Errors wrap ErrBadRequest except when the
// context is cancelled.
func EvalMatrixMap(ctx context.Context, req MatrixMapRequest) (*MatrixMapResponse, error) {
	q, err := req.parse()
	if err != nil {
		return nil, err
	}
	return evalMatrixMap(ctx, q)
}

func evalMatrixMap(ctx context.Context, q *parsedMatrixMap) (*MatrixMapResponse, error) {
	_, osp := rt.StartSpan(ctx, "procmap.bestorder")
	sigma, orderPlacement, orderCost, evaluated, err := procmap.BestOrder(q.m, q.h, nil)
	osp.End()
	if err != nil {
		return nil, badf("%v", err)
	}
	mctx, msp := rt.StartSpan(ctx, "procmap.map")
	res, err := procmap.Map(mctx, q.m, q.h, procmap.Options{
		Seed:          q.seed,
		MaxRounds:     q.rounds,
		NoRefine:      !q.refine,
		InitPlacement: orderPlacement,
	})
	msp.End()
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, badf("%v", err)
	}
	resp := &MatrixMapResponse{
		Hierarchy:       q.arities,
		Ranks:           q.m.Size(),
		MatrixDigest:    q.digest,
		Placement:       res.Placement,
		Cost:            res.Cost,
		GreedyCost:      res.GreedyCost,
		BestOrder:       sigma,
		BestOrderCost:   orderCost,
		OrdersEvaluated: evaluated,
		Rounds:          res.Rounds,
		Swaps:           res.Swaps,
		Seed:            q.seed,
		SearchMode:      ModeMatrix,
	}
	// With refinement disabled the greedy construction may lose to the σ
	// baseline; the served placement must never be worse than it.
	if orderCost < resp.Cost {
		resp.Placement = orderPlacement
		resp.Cost = orderCost
	}
	if orderCost > 0 {
		resp.ImprovementPct = 100 * (orderCost - resp.Cost) / orderCost
	}
	return resp, nil
}

// EvalMatrixMapFallback answers a MatrixMapRequest from the σ-order
// baseline only — EvalAdviseFallback's matrix-map counterpart for
// last-resort local serving. Errors wrap ErrBadRequest.
func EvalMatrixMapFallback(req MatrixMapRequest) (*MatrixMapResponse, error) {
	q, err := req.parse()
	if err != nil {
		return nil, err
	}
	return evalMatrixMapFallback(q)
}

// evalMatrixMapFallback is the degraded matrix-map answer (breaker open or
// over budget): just the best mixed-radix order's placement — a bounded
// k!·edges scan with no refinement. Flagged Degraded and never cached.
func evalMatrixMapFallback(q *parsedMatrixMap) (*MatrixMapResponse, error) {
	sigma, placement, cost, evaluated, err := procmap.BestOrder(q.m, q.h, nil)
	if err != nil {
		return nil, badf("%v", err)
	}
	return &MatrixMapResponse{
		Hierarchy:       q.arities,
		Ranks:           q.m.Size(),
		MatrixDigest:    q.digest,
		Placement:       placement,
		Cost:            cost,
		BestOrder:       sigma,
		BestOrderCost:   cost,
		OrdersEvaluated: evaluated,
		Seed:            q.seed,
		SearchMode:      advisor.ModeFallback,
		Degraded:        true,
	}, nil
}

// EvalSelect answers a SelectRequest. Errors wrap ErrBadRequest.
func EvalSelect(req SelectRequest) (*SelectResponse, error) {
	q, err := req.parse()
	if err != nil {
		return nil, err
	}
	return evalSelect(q)
}

func evalSelect(q *parsedSelect) (*SelectResponse, error) {
	list, err := slurm.MapCPU(q.h, q.sigma, q.n)
	if err != nil {
		return nil, badf("%v", err)
	}
	resp := &SelectResponse{
		Hierarchy: q.arities,
		Order:     q.sigma,
		N:         q.n,
		MapCPU:    list,
		CPUBind:   slurm.FormatMapCPU(list),
	}
	if induced, err := slurm.InducedHierarchy(q.h, list); err == nil {
		resp.Induced = induced
		resp.Uniform = true
	} else {
		resp.Reason = err.Error()
	}
	return resp, nil
}

// EvalOrderMetrics answers an OrderMetricsRequest. Errors wrap
// ErrBadRequest.
func EvalOrderMetrics(req OrderMetricsRequest) (*OrderMetricsResponse, error) {
	q, err := req.parse()
	if err != nil {
		return nil, err
	}
	return evalOrderMetrics(q)
}

func evalOrderMetrics(q *parsedOrderMetrics) (*OrderMetricsResponse, error) {
	ch, err := metrics.Characterize(q.h, q.sigma, q.comm)
	if err != nil {
		return nil, badf("%v", err)
	}
	resp := &OrderMetricsResponse{
		Hierarchy:     q.arities,
		Order:         q.sigma,
		CommSize:      q.comm,
		RingCost:      ch.RingCost,
		PairsPerLevel: ch.Pairs,
		SpreadScore:   ch.SpreadScore(),
		Legend:        ch.String(),
	}
	if d, ok := slurm.DistributionForOrder(q.h, q.sigma); ok {
		resp.Distribution = d.String()
	}
	return resp, nil
}
