// Pure evaluation of the canonical requests: no HTTP, no caching. The
// service handlers and the mrmap -json mode both call these, so CLI and
// API outputs are byte-for-byte diffable.

package mapd

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/advisor"
	"repro/internal/metrics"
	"repro/internal/mixedradix"
	"repro/internal/perm"
	"repro/internal/slurm"
)

// EvalMap answers a MapRequest. Errors wrap ErrBadRequest.
func EvalMap(req MapRequest) (*MapResponse, error) {
	q, err := req.parse()
	if err != nil {
		return nil, err
	}
	return evalMap(q)
}

func evalMap(q *parsedMap) (*MapResponse, error) {
	resp := &MapResponse{
		Hierarchy: q.arities,
		Levels:    q.h.Names(),
		Order:     q.sigma,
	}
	switch {
	case q.rank != nil:
		resp.Rank = q.rank
		resp.Coords = mixedradix.Decompose(q.arities, *q.rank)
		nr := mixedradix.NewRank(q.arities, *q.rank, q.sigma)
		resp.NewRank = &nr
	case q.coords != nil:
		resp.Coords = q.coords
		nr, err := mixedradix.ComposeChecked(q.arities, q.coords, q.sigma)
		if err != nil {
			return nil, badf("%v", err)
		}
		resp.NewRank = &nr
	}
	if q.table {
		table, err := mixedradix.ReorderAll(q.arities, q.sigma)
		if err != nil {
			return nil, badf("%v", err)
		}
		resp.Table = table
	}
	return resp, nil
}

// EvalAdvise answers an AdviseRequest, ranking all k! orders with the
// advisor's worker pool. Errors wrap ErrBadRequest except when the context
// is cancelled. Errors wrap ErrBadRequest.
func EvalAdvise(ctx context.Context, req AdviseRequest, opts advisor.RankOptions) (*AdviseResponse, error) {
	q, err := req.parse()
	if err != nil {
		return nil, err
	}
	return evalAdvise(ctx, q, opts)
}

func evalAdvise(ctx context.Context, q *parsedAdvise, opts advisor.RankOptions) (*AdviseResponse, error) {
	sc := q.scenario()
	ranked, err := advisor.Rank(ctx, sc, nil, opts)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, badf("%v", err)
	}
	top := q.top
	if top > len(ranked) {
		top = len(ranked)
	}
	resp := &AdviseResponse{
		Machine:   q.machine,
		Hierarchy: sc.Hierarchy.Arities(),
		Evaluated: len(ranked),
		Best:      make([]AdvisePrediction, top),
		Worst:     advisePrediction(sc, ranked[len(ranked)-1]),
	}
	for i := 0; i < top; i++ {
		resp.Best[i] = advisePrediction(sc, ranked[i])
	}
	return resp, nil
}

// evalAdviseFallback is the degraded-mode answer served while the advisor
// circuit breaker is open: instead of the k! bottleneck-model search it
// ranks all orders by the §3.3 ring cost of their enumeration — a pure
// integer computation that cannot time out. The closed-form kernel makes
// each order O(k), so the whole fallback costs O(k·k!) instead of the
// O(n·k!) table walk it used to do. The response is flagged Degraded and
// never cached.
func evalAdviseFallback(q *parsedAdvise) (*AdviseResponse, error) {
	sc := q.scenario()
	h := sc.Hierarchy
	type cand struct {
		sigma []int
		cost  int
	}
	orders := perm.All(h.Depth())
	cands := make([]cand, 0, len(orders))
	for _, sigma := range orders {
		ch, err := metrics.Characterize(h, sigma, h.Size())
		if err != nil {
			return nil, badf("%v", err)
		}
		cands = append(cands, cand{sigma: sigma, cost: ch.RingCost})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cost != cands[j].cost {
			return cands[i].cost < cands[j].cost
		}
		return perm.Less(cands[i].sigma, cands[j].sigma)
	})
	pred := func(c cand) AdvisePrediction {
		return AdvisePrediction{
			Order:           c.sigma,
			BottleneckLevel: -1,
			Explain:         fmt.Sprintf("heuristic: ring cost %d (advisor breaker open)", c.cost),
		}
	}
	top := q.top
	if top > len(cands) {
		top = len(cands)
	}
	resp := &AdviseResponse{
		Machine:   q.machine,
		Hierarchy: h.Arities(),
		Evaluated: len(cands),
		Degraded:  true,
		Best:      make([]AdvisePrediction, top),
		Worst:     pred(cands[len(cands)-1]),
	}
	for i := 0; i < top; i++ {
		resp.Best[i] = pred(cands[i])
	}
	return resp, nil
}

func advisePrediction(sc advisor.Scenario, pr advisor.Prediction) AdvisePrediction {
	return AdvisePrediction{
		Order:           pr.Order,
		Seconds:         pr.Time,
		BandwidthMBs:    pr.Bandwidth / 1e6,
		BottleneckLevel: pr.BottleneckLevel,
		Explain:         advisor.Explain(sc, pr),
	}
}

// EvalSelect answers a SelectRequest. Errors wrap ErrBadRequest.
func EvalSelect(req SelectRequest) (*SelectResponse, error) {
	q, err := req.parse()
	if err != nil {
		return nil, err
	}
	return evalSelect(q)
}

func evalSelect(q *parsedSelect) (*SelectResponse, error) {
	list, err := slurm.MapCPU(q.h, q.sigma, q.n)
	if err != nil {
		return nil, badf("%v", err)
	}
	resp := &SelectResponse{
		Hierarchy: q.arities,
		Order:     q.sigma,
		N:         q.n,
		MapCPU:    list,
		CPUBind:   slurm.FormatMapCPU(list),
	}
	if induced, err := slurm.InducedHierarchy(q.h, list); err == nil {
		resp.Induced = induced
		resp.Uniform = true
	} else {
		resp.Reason = err.Error()
	}
	return resp, nil
}

// EvalOrderMetrics answers an OrderMetricsRequest. Errors wrap
// ErrBadRequest.
func EvalOrderMetrics(req OrderMetricsRequest) (*OrderMetricsResponse, error) {
	q, err := req.parse()
	if err != nil {
		return nil, err
	}
	return evalOrderMetrics(q)
}

func evalOrderMetrics(q *parsedOrderMetrics) (*OrderMetricsResponse, error) {
	ch, err := metrics.Characterize(q.h, q.sigma, q.comm)
	if err != nil {
		return nil, badf("%v", err)
	}
	resp := &OrderMetricsResponse{
		Hierarchy:     q.arities,
		Order:         q.sigma,
		CommSize:      q.comm,
		RingCost:      ch.RingCost,
		PairsPerLevel: ch.Pairs,
		SpreadScore:   ch.SpreadScore(),
		Legend:        ch.String(),
	}
	if d, ok := slurm.DistributionForOrder(q.h, q.sigma); ok {
		resp.Distribution = d.String()
	}
	return resp, nil
}
