package mapd

import (
	"errors"
	"testing"

	"repro/internal/perm"
)

// FuzzParseHierOrder drives the hierarchy/order request parser with
// arbitrary inputs across all three request shapes that embed it. The
// parser must never panic — in particular not on non-permutation orders,
// overflow-sized hierarchies, or order/hierarchy depth mismatches — and
// anything it accepts must satisfy the documented invariants.
func FuzzParseHierOrder(f *testing.F) {
	f.Add("2,2,4", "2-1-0", 5)
	f.Add("2x2x4", "0,1,2", 0)
	f.Add("[2, 4, 2, 8]", "", 100)
	f.Add("node:2,socket:2,core:4", "1-0-2", 15)
	f.Add("99999,99999,99999", "0-1-2", 0)                  // overflow-sized
	f.Add("2,2,4", "0-0-2", 1)                              // non-permutation
	f.Add("2,2,4", "0-1", 1)                                // depth mismatch
	f.Add("2,2,4", "0-1-2-3", 1)                            // depth mismatch
	f.Add("-3,5", "0-1", 0)                                 // negative arity
	f.Add("9223372036854775807,9223372036854775807", "", 0) // int64 max arities
	f.Add("2,2,2,2,2,2,2,2,2,2,2,2,2,2,2,2,2,2,2,2", "", 0) // too deep
	f.Add("", "", 0)
	f.Add("x", "-", -1)

	f.Fuzz(func(t *testing.T, hier, order string, rank int) {
		req := MapRequest{Hierarchy: hier, Order: order, Rank: &rank}
		resp, err := EvalMap(req)
		if err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("EvalMap error does not wrap ErrBadRequest: %v", err)
			}
		} else {
			size := 1
			for _, a := range resp.Hierarchy {
				if a <= 1 {
					t.Fatalf("accepted arity %d", a)
				}
				size *= a
			}
			if size > MaxCores {
				t.Fatalf("accepted hierarchy of %d cores (limit %d)", size, MaxCores)
			}
			if len(resp.Hierarchy) > MaxDepth {
				t.Fatalf("accepted depth %d (limit %d)", len(resp.Hierarchy), MaxDepth)
			}
			if !perm.IsPermutation(resp.Order) || len(resp.Order) != len(resp.Hierarchy) {
				t.Fatalf("accepted order %v for hierarchy %v", resp.Order, resp.Hierarchy)
			}
			if resp.NewRank == nil || *resp.NewRank < 0 || *resp.NewRank >= size {
				t.Fatalf("new_rank %v outside [0, %d)", resp.NewRank, size)
			}
		}

		// The same parser guards the selection and metrics endpoints;
		// neither may panic on whatever the inputs are.
		if _, err := EvalSelect(SelectRequest{Hierarchy: hier, Order: order, N: rank}); err != nil &&
			!errors.Is(err, ErrBadRequest) {
			t.Fatalf("EvalSelect error does not wrap ErrBadRequest: %v", err)
		}
		if _, err := EvalOrderMetrics(OrderMetricsRequest{Hierarchy: hier, Order: order, CommSize: rank}); err != nil &&
			!errors.Is(err, ErrBadRequest) {
			t.Fatalf("EvalOrderMetrics error does not wrap ErrBadRequest: %v", err)
		}
	})
}
