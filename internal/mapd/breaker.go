// A consecutive-failure circuit breaker guarding the k! advisor search:
// when evaluations keep failing (typically timeouts under overload), the
// breaker opens and the advise endpoint answers from the cache or a cheap
// ring-cost heuristic instead of queueing more doomed searches. After a
// cooldown one probe evaluation is let through (half-open); its outcome
// closes or reopens the breaker.

package mapd

import (
	"sync"
	"time"
)

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerHalfOpen
	breakerOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "open"
	}
}

type breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures that open the breaker
	cooldown  time.Duration // open duration before the half-open probe
	now       func() time.Time

	state    breakerState
	failures int
	openedAt time.Time

	// onState observes every state change (wired to a metrics gauge).
	onState func(breakerState)
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

func (b *breaker) setStateLocked(s breakerState) {
	if b.state == s {
		return
	}
	b.state = s
	if b.onState != nil {
		b.onState(s)
	}
}

// Allow reports whether an evaluation may start. While open it returns
// false until the cooldown elapses, then lets exactly one probe through by
// moving to half-open; further calls stay false until Record settles the
// probe.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.setStateLocked(breakerHalfOpen)
			return true
		}
		return false
	default: // half-open: a probe is already in flight
		return false
	}
}

// Record reports an evaluation outcome.
func (b *breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.failures = 0
		b.setStateLocked(breakerClosed)
		return
	}
	switch b.state {
	case breakerHalfOpen:
		b.openedAt = b.now()
		b.setStateLocked(breakerOpen)
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.openedAt = b.now()
			b.setStateLocked(breakerOpen)
		}
	}
}

// State returns the current state.
func (b *breaker) State() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// RetryAfter returns the seconds a client should wait before retrying,
// derived from the remaining cooldown (at least 1).
func (b *breaker) RetryAfter() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerOpen {
		return 1
	}
	left := b.cooldown - b.now().Sub(b.openedAt)
	if left <= 0 {
		return 1
	}
	return int(left/time.Second) + 1
}
