// Live deep-search progress: the progress table's lifecycle and the
// GET /v1/advise/progress endpoint over a real bounded search.

package mapd

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/advisor"
)

// TestProgressTableLifecycle pins the table mechanics: a started search
// shows in-flight, updates fold into its entry, finish retires it into
// the recent ring newest-first, and the ring stays bounded.
func TestProgressTableLifecycle(t *testing.T) {
	tab := newProgressTable(2)
	h := tab.start("k1")
	rep := tab.report()
	if len(rep.InFlight) != 1 || rep.InFlight[0].Key != "k1" || rep.InFlight[0].Done {
		t.Fatalf("in-flight after start = %+v", rep.InFlight)
	}
	h.update(advisor.SearchProgress{
		Kind: advisor.ProgressCoverage, Mode: advisor.ModeBnB,
		Elapsed: 250 * time.Millisecond, Nodes: 100, Covered: 90, Pruned: 10,
	})
	h.update(advisor.SearchProgress{
		Kind: advisor.ProgressIncumbent, Mode: advisor.ModeBnB,
		Elapsed: 300 * time.Millisecond, Nodes: 120, Evaluated: 4,
		IncumbentTime: 0.5, BoundGap: 0.25,
	})
	rep = tab.report()
	e := rep.InFlight[0]
	if e.Nodes != 120 || e.Improvements != 1 || e.IncumbentSeconds != 0.5 || e.BoundGap != 0.25 {
		t.Fatalf("folded entry = %+v", e)
	}
	if e.ElapsedMs != 300 || e.Mode != advisor.ModeBnB {
		t.Fatalf("entry elapsed/mode = %+v", e)
	}
	h.finish()
	rep = tab.report()
	if len(rep.InFlight) != 0 || len(rep.Recent) != 1 || !rep.Recent[0].Done {
		t.Fatalf("after finish: %+v", rep)
	}
	// Two more searches: the keep=2 ring drops the oldest.
	for _, k := range []string{"k2", "k3"} {
		h := tab.start(k)
		h.finish()
	}
	rep = tab.report()
	if len(rep.Recent) != 2 || rep.Recent[0].Key != "k3" || rep.Recent[1].Key != "k2" {
		t.Fatalf("recent ring = %+v", rep.Recent)
	}
}

// TestAdviseProgressEndpoint drives a deep (bounded-search) advise
// through the HTTP server and checks that /v1/advise/progress reports
// it afterwards with the search's tallies.
func TestAdviseProgressEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := post(t, ts, "/v1/advise",
		`{"machine":"cloud","depth":10,"collective":"alltoall","comm_size":64,"bytes":4194304}`)
	if code != http.StatusOK {
		t.Fatalf("deep advise: status %d: %s", code, body)
	}
	resp, err := http.Get(ts.URL + "/v1/advise/progress")
	if err != nil {
		t.Fatalf("GET /v1/advise/progress: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("progress status %d", resp.StatusCode)
	}
	var rep SearchProgressReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(rep.InFlight) != 0 {
		t.Fatalf("search still in flight after response: %+v", rep.InFlight)
	}
	if len(rep.Recent) == 0 {
		t.Fatal("no recent search in the progress report")
	}
	e := rep.Recent[0]
	if !e.Done || e.Mode != advisor.ModeBnB {
		t.Fatalf("recent entry = %+v", e)
	}
	if e.Nodes <= 0 || e.Improvements < 1 || e.IncumbentSeconds <= 0 {
		t.Fatalf("recent entry missing search tallies: %+v", e)
	}

	// A shallow advise runs the exact ranking and must not register.
	code, body = post(t, ts, "/v1/advise",
		`{"machine":"hydra","nodes":4,"collective":"allreduce","comm_size":16}`)
	if code != http.StatusOK {
		t.Fatalf("shallow advise: status %d: %s", code, body)
	}
	resp2, err := http.Get(ts.URL + "/v1/advise/progress")
	if err != nil {
		t.Fatalf("GET /v1/advise/progress: %v", err)
	}
	defer resp2.Body.Close()
	var rep2 SearchProgressReport
	if err := json.NewDecoder(resp2.Body).Decode(&rep2); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(rep2.Recent) != len(rep.Recent) {
		t.Fatalf("shallow advise registered in the progress table: %+v", rep2.Recent)
	}
}
