package mapd

import (
	"math/rand"
	"testing"
	"time"
)

// genShape deterministically makes the i-th distinct shape of a pool.
func genShape(i int) []int {
	return []int{2 + i%7, 2 + (i/7)%5, 2 + (i/35)%4}
}

// TestMergeStatsHeavyHitterBound is the property test of the mergeable
// Space-Saving form: partition one request stream across R replicas with
// small summaries, merge their reports, and check that for every class
// the merged report tracks, the interval [Requests − CountErr, Requests]
// still brackets the true fleet count — i.e. the merge never
// under-reports a heavy hitter beyond the combined error bound — and
// that the true heaviest class is always tracked.
func TestMergeStatsHeavyHitterBound(t *testing.T) {
	for _, tc := range []struct {
		name     string
		replicas int
		k        int
		pool     int
		requests int
	}{
		{name: "no-churn", replicas: 3, k: 16, pool: 12, requests: 4000},
		{name: "churn", replicas: 3, k: 8, pool: 64, requests: 6000},
		{name: "heavy-churn", replicas: 4, k: 4, pool: 128, requests: 8000},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(tc.name)) * 7919))
			stats := make([]*workloadStats, tc.replicas)
			for i := range stats {
				stats[i] = newWorkloadStats(tc.k)
			}
			truth := map[string]uint64{}
			zipf := rand.NewZipf(rng, 1.3, 4, uint64(tc.pool-1))
			for n := 0; n < tc.requests; n++ {
				shape := genShape(int(zipf.Uint64()))
				truth[intsKey(shape)]++
				r := rng.Intn(tc.replicas)
				stats[r].observe("advise", &statInfo{shape: shape, coll: "alltoall"},
					rng.Intn(2) == 0, time.Duration(rng.Intn(1000))*time.Microsecond)
			}
			reports := make([]StatsReport, tc.replicas)
			for i, st := range stats {
				reports[i] = st.report()
			}
			merged := MergeStats(reports)

			if merged.TotalRequests != uint64(tc.requests) {
				t.Fatalf("total %d, want %d", merged.TotalRequests, tc.requests)
			}
			if len(merged.Classes) == 0 {
				t.Fatal("no merged classes")
			}
			if got := len(merged.Classes); got > merged.MaxClasses {
				t.Fatalf("merged tracks %d classes, cap %d", got, merged.MaxClasses)
			}
			for _, c := range merged.Classes {
				true_ := truth[c.Shape]
				if c.Requests < true_ {
					t.Errorf("class %s under-reported: %d < true %d", c.Shape, c.Requests, true_)
				}
				if c.Requests-c.CountErr > true_ {
					t.Errorf("class %s error bound broken: %d − %d > true %d",
						c.Shape, c.Requests, c.CountErr, true_)
				}
			}
			// The true heaviest class must survive the merge and the trim.
			var topShape string
			var topCount uint64
			for shape, n := range truth {
				if n > topCount || (n == topCount && shape < topShape) {
					topShape, topCount = shape, n
				}
			}
			found := false
			for _, c := range merged.Classes {
				if c.Shape == topShape {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("true heavy hitter %s (%d requests) missing from merged top-K", topShape, topCount)
			}
		})
	}
}

// TestMergeStatsAggregates pins the deterministic aggregate merges:
// totals, weighted hit rate, histogram sums, sketch union, and the
// eviction floor charged to classes absent from a full summary.
func TestMergeStatsAggregates(t *testing.T) {
	a := StatsReport{
		TotalRequests:           100,
		CacheHitRate:            0.5,
		TrackedClasses:          2,
		MaxClasses:              2, // full: floor = min tracked = 40
		DistinctClassesEstimate: 3,
		Evictions:               7,
		DistinctSketch:          make([]int, sketchRegisters),
		Classes: []ClassReport{
			{Shape: "2,2", Requests: 60, CacheHits: 30, P50Ms: 1, P99Ms: 4},
			{Shape: "4,4", Requests: 40, CacheHits: 20, P50Ms: 2, P99Ms: 2},
		},
		Depths:      []DepthCount{{Depth: 2, Requests: 100}},
		Collectives: map[string]uint64{"alltoall": 100},
		SearchModes: map[string]uint64{"exact": 10},
		Endpoints:   map[string]uint64{"advise": 100},
	}
	a.DistinctSketch[0] = 3
	b := StatsReport{
		TotalRequests:           50,
		CacheHitRate:            0.2,
		TrackedClasses:          1,
		MaxClasses:              4, // not full: floor = 0
		DistinctClassesEstimate: 1,
		DistinctSketch:          make([]int, sketchRegisters),
		Classes: []ClassReport{
			{Shape: "2,2", Requests: 50, CacheHits: 10, P50Ms: 3, P99Ms: 3},
		},
		Depths:      []DepthCount{{Depth: 2, Requests: 30}, {Depth: 3, Requests: 20}},
		Collectives: map[string]uint64{"allgather": 50},
		SearchModes: map[string]uint64{"exact": 5, "bnb": 1},
		Endpoints:   map[string]uint64{"advise": 50},
	}
	b.DistinctSketch[0] = 1
	b.DistinctSketch[5] = 2

	m := MergeStats([]StatsReport{a, b})
	if m.TotalRequests != 150 {
		t.Fatalf("total %d", m.TotalRequests)
	}
	if want := (0.5*100 + 0.2*50) / 150; m.CacheHitRate < want-1e-9 || m.CacheHitRate > want+1e-9 {
		t.Fatalf("hit rate %v, want %v", m.CacheHitRate, want)
	}
	if m.Evictions != 7 || m.MaxClasses != 4 {
		t.Fatalf("evictions %d maxclasses %d", m.Evictions, m.MaxClasses)
	}
	if m.DistinctSketch[0] != 3 || m.DistinctSketch[5] != 2 {
		t.Fatalf("sketch not max-merged: %v %v", m.DistinctSketch[0], m.DistinctSketch[5])
	}
	if len(m.Classes) != 2 {
		t.Fatalf("classes %v", m.Classes)
	}
	// "2,2" tracked by both: exact sum. "4,4" absent from b, whose
	// summary is not full: no floor charged.
	if m.Classes[0].Shape != "2,2" || m.Classes[0].Requests != 110 || m.Classes[0].CountErr != 0 {
		t.Fatalf("merged 2,2 = %+v", m.Classes[0])
	}
	if m.Classes[0].P50Ms != 3 || m.Classes[0].P99Ms != 4 {
		t.Fatalf("percentile merge = %+v", m.Classes[0])
	}
	if m.Classes[1].Shape != "4,4" || m.Classes[1].Requests != 40 || m.Classes[1].CountErr != 0 {
		t.Fatalf("merged 4,4 = %+v", m.Classes[1])
	}
	if len(m.Depths) != 2 || m.Depths[0].Requests != 130 || m.Depths[1].Requests != 20 {
		t.Fatalf("depths = %+v", m.Depths)
	}
	if m.SearchModes["exact"] != 15 || m.SearchModes["bnb"] != 1 {
		t.Fatalf("modes = %+v", m.SearchModes)
	}

	// Flip b to a full summary: "4,4" must now absorb b's floor (50) in
	// both count and error.
	b.MaxClasses = 1
	m = MergeStats([]StatsReport{a, b})
	var c44 *ClassReport
	for i := range m.Classes {
		if m.Classes[i].Shape == "4,4" {
			c44 = &m.Classes[i]
		}
	}
	if c44 == nil || c44.Requests != 90 || c44.CountErr != 50 {
		t.Fatalf("floored 4,4 = %+v", c44)
	}
}
