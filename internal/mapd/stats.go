// Cardinality-bounded workload analytics. The service sees an unbounded
// stream of (shape, collective, search mode) request classes; operators
// want "what is this daemon actually serving" without an unbounded
// per-class metric explosion. The aggregator keeps exactly three bounded
// structures:
//
//   - a Space-Saving top-K summary of request counts (and cache hit rate
//     plus latency percentiles) by canonical shape class — at most K
//     tracked classes, each carrying its overestimation bound, so a
//     reader can tell a solid count from one inflated by eviction churn;
//   - a small HyperLogLog-style register file estimating how many
//     distinct shape classes were seen in total, so "top-K of how many?"
//     is answerable even after heavy eviction;
//   - fixed-size histograms keyed by validated, bounded dimensions:
//     hierarchy depth (≤ MaxDepth), collective (parse admits three), and
//     search mode (exact/pruned/bnb/beam/fallback).
//
// Everything is O(K) memory regardless of workload, which is what lets
// GET /v1/stats and the /metrics publication stay safe against a hostile
// client inventing a new hierarchy per request.

package mapd

import (
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// DefaultStatsClasses is the default Space-Saving capacity K: the
// maximum number of shape classes tracked individually.
const DefaultStatsClasses = 32

// statInfo is the per-request attribution the parse closures hand to the
// aggregator: the canonical hierarchy shape and, for advise requests,
// the collective.
type statInfo struct {
	shape []int
	coll  string
}

// statLatBuckets are the per-class latency histogram bounds: log2 from
// 1µs to ~34s. 26 buckets per class keeps the whole top-K summary at a
// few kilobytes.
const statLatBuckets = 26

func statLatBound(i int) time.Duration { return time.Microsecond << i }

// classStat is one tracked shape class.
type classStat struct {
	key      string
	requests uint64
	overErr  uint64 // Space-Saving bound: true count ≥ requests − overErr
	hits     uint64
	lat      [statLatBuckets + 1]uint64
}

func (c *classStat) observe(hit bool, d time.Duration) {
	c.requests++
	if hit {
		c.hits++
	}
	b := 0
	for b < statLatBuckets && d > statLatBound(b) {
		b++
	}
	c.lat[b]++
}

// percentile returns the latency at quantile q in milliseconds, by upper
// bucket bound — an overestimate by at most one bucket width (2×).
func (c *classStat) percentile(q float64) float64 {
	var total uint64
	for _, n := range c.lat {
		total += n
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for b, n := range c.lat {
		cum += n
		if cum >= target {
			if b >= statLatBuckets {
				b = statLatBuckets - 1
			}
			return float64(statLatBound(b)) / float64(time.Millisecond)
		}
	}
	return float64(statLatBound(statLatBuckets-1)) / float64(time.Millisecond)
}

// sketchRegisters sizes the distinct-class estimator: 64 registers is
// ±~13% standard error, plenty for "hundreds vs. tens" answers.
const sketchRegisters = 64

// workloadStats is the request-stream aggregator. All methods are
// safe for concurrent use.
type workloadStats struct {
	mu        sync.Mutex
	k         int
	classes   map[string]*classStat
	depth     [MaxDepth + 1]uint64
	colls     map[string]uint64
	modes     map[string]uint64
	endpoints map[string]uint64
	total     uint64
	hits      uint64
	evictions uint64
	sketch    [sketchRegisters]uint8
	// published remembers the shape labels ever written to the registry,
	// so publish can zero series whose class was evicted instead of
	// leaving a stale count on /metrics.
	published map[string]bool
}

func newWorkloadStats(k int) *workloadStats {
	if k <= 0 {
		k = DefaultStatsClasses
	}
	return &workloadStats{
		k:         k,
		classes:   make(map[string]*classStat, k),
		colls:     make(map[string]uint64, 4),
		modes:     make(map[string]uint64, 4),
		endpoints: make(map[string]uint64, 8),
		published: make(map[string]bool),
	}
}

// fnv64a matches hash/fnv without the allocation of the hash.Hash64
// interface on the request path. The avalanche finalizer matters: raw
// FNV's high bits barely disperse on short keys, and the sketch picks
// its register from exactly those bits.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// observe records one successfully served request. The endpoint name is
// bounded by the route table, so the endpoint mix needs no sketching.
func (st *workloadStats) observe(endpoint string, info *statInfo, hit bool, d time.Duration) {
	if st == nil || info == nil {
		return
	}
	key := intsKey(info.shape)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.total++
	if hit {
		st.hits++
	}
	if endpoint != "" {
		st.endpoints[endpoint]++
	}
	if depth := len(info.shape); depth >= 0 && depth <= MaxDepth {
		st.depth[depth]++
	}
	if info.coll != "" {
		st.colls[info.coll]++
	}
	// Distinct-class sketch: top 6 bits pick the register, the rank of
	// the remaining bits' leading zeros is the observation.
	h := fnv64a(key)
	reg := h >> (64 - 6)
	rest := h<<6 | 0x3f // low bits set so rank is bounded
	rank := uint8(1)
	for rest&(1<<63) == 0 {
		rank++
		rest <<= 1
	}
	if rank > st.sketch[reg] {
		st.sketch[reg] = rank
	}
	// Space-Saving: a known class updates in place; an unknown class
	// takes a free slot, or inherits (and overestimates by) the count of
	// the evicted minimum.
	c, ok := st.classes[key]
	if !ok {
		if len(st.classes) < st.k {
			c = &classStat{key: key}
		} else {
			var min *classStat
			for _, cand := range st.classes {
				if min == nil || cand.requests < min.requests ||
					(cand.requests == min.requests && cand.key > min.key) {
					min = cand
				}
			}
			delete(st.classes, min.key)
			st.evictions++
			c = &classStat{key: key, requests: min.requests, overErr: min.requests}
		}
		st.classes[key] = c
	}
	c.observe(hit, d)
}

// observeSearch attributes one order search to its mode
// (exact/pruned/bnb/beam/fallback).
func (st *workloadStats) observeSearch(mode string) {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.modes[mode]++
	st.mu.Unlock()
}

// distinctEstimate is the HyperLogLog estimator with the small-range
// linear-counting correction.
func (st *workloadStats) distinctEstimate() int {
	return estimateDistinct(st.sketch[:])
}

// estimateDistinct runs the HyperLogLog estimate over a 64-register
// sketch (raw registers, as workloadStats keeps them and StatsReport
// exports them). Registers from several replicas merge losslessly by
// per-register max before estimating — see MergeStats.
func estimateDistinct(sketch []uint8) int {
	const m = float64(sketchRegisters)
	var sum float64
	zeros := 0
	for _, r := range sketch {
		sum += math.Pow(2, -float64(r))
		if r == 0 {
			zeros++
		}
	}
	e := 0.709 * m * m / sum // alpha for m=64
	if e <= 2.5*m && zeros > 0 {
		e = m * math.Log(m/float64(zeros))
	}
	return int(math.Round(e))
}

// ClassReport is one tracked shape class of a StatsReport.
type ClassReport struct {
	// Shape is the canonical comma-joined arity list, e.g. "2,4,2,8".
	Shape string `json:"shape"`
	// Requests counts requests attributed to the class; the true count is
	// at least Requests − CountErr (Space-Saving overestimation bound).
	Requests uint64 `json:"requests"`
	CountErr uint64 `json:"count_err,omitempty"`
	// CacheHits and CacheHitRate cover the requests observed since the
	// class entered the top-K.
	CacheHits    uint64  `json:"cache_hits"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// P50Ms / P99Ms are served-latency percentiles (log-bucket upper
	// bounds, so at most 2× above the true quantile).
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// DepthCount is one bar of the depth histogram.
type DepthCount struct {
	Depth    int    `json:"depth"`
	Requests uint64 `json:"requests"`
}

// StatsReport is the GET /v1/stats answer.
type StatsReport struct {
	TotalRequests uint64  `json:"total_requests"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	// TrackedClasses ≤ MaxClasses always; DistinctClassesEstimate is the
	// sketch's estimate of how many distinct classes were ever seen.
	TrackedClasses          int    `json:"tracked_classes"`
	MaxClasses              int    `json:"max_classes"`
	DistinctClassesEstimate int    `json:"distinct_classes_estimate"`
	Evictions               uint64 `json:"evictions"`
	// DistinctSketch is the raw 64-register distinct-class sketch (the
	// max leading-zero rank seen per register), exported so a fleet-level
	// rollup can merge replicas' sketches losslessly (per-register max)
	// instead of summing their estimates.
	DistinctSketch []int `json:"distinct_sketch,omitempty"`
	// Classes is the top-K by request count, descending.
	Classes     []ClassReport     `json:"classes"`
	Depths      []DepthCount      `json:"depth_histogram"`
	Collectives map[string]uint64 `json:"collectives"`
	// SearchModes splits order searches into
	// exact / pruned / bnb / beam / matrix / fallback.
	SearchModes map[string]uint64 `json:"search_modes"`
	// Endpoints is the request mix by API endpoint (map, map_matrix,
	// advise, select, metrics_order).
	Endpoints map[string]uint64 `json:"endpoints"`
}

// report snapshots the aggregator.
func (st *workloadStats) report() StatsReport {
	st.mu.Lock()
	defer st.mu.Unlock()
	rep := StatsReport{
		TotalRequests:           st.total,
		TrackedClasses:          len(st.classes),
		MaxClasses:              st.k,
		DistinctClassesEstimate: st.distinctEstimate(),
		Evictions:               st.evictions,
		Collectives:             make(map[string]uint64, len(st.colls)),
		SearchModes:             make(map[string]uint64, len(st.modes)),
		Endpoints:               make(map[string]uint64, len(st.endpoints)),
	}
	if st.total > 0 {
		rep.CacheHitRate = float64(st.hits) / float64(st.total)
	}
	if st.total > 0 {
		rep.DistinctSketch = make([]int, sketchRegisters)
		for i, r := range st.sketch {
			rep.DistinctSketch[i] = int(r)
		}
	}
	for k, v := range st.colls {
		rep.Collectives[k] = v
	}
	for k, v := range st.modes {
		rep.SearchModes[k] = v
	}
	for k, v := range st.endpoints {
		rep.Endpoints[k] = v
	}
	for d, n := range st.depth {
		if n > 0 {
			rep.Depths = append(rep.Depths, DepthCount{Depth: d, Requests: n})
		}
	}
	for _, c := range st.classes {
		cr := ClassReport{
			Shape:     c.key,
			Requests:  c.requests,
			CountErr:  c.overErr,
			CacheHits: c.hits,
			P50Ms:     c.percentile(0.50),
			P99Ms:     c.percentile(0.99),
		}
		if c.requests > 0 {
			cr.CacheHitRate = float64(c.hits) / float64(c.requests)
		}
		rep.Classes = append(rep.Classes, cr)
	}
	sort.Slice(rep.Classes, func(i, j int) bool {
		if rep.Classes[i].Requests != rep.Classes[j].Requests {
			return rep.Classes[i].Requests > rep.Classes[j].Requests
		}
		return rep.Classes[i].Shape < rep.Classes[j].Shape
	})
	return rep
}

// publish mirrors the bounded aggregates onto the registry for /metrics.
// Series whose class fell out of the top-K are zeroed, not removed, so
// the exposition never reports a stale count; live non-zero class series
// therefore stay ≤ K.
func (st *workloadStats) publish(reg *obs.Registry) {
	if st == nil || reg == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	reg.Gauge("mapd_stats_tracked_classes").Set(float64(len(st.classes)))
	reg.Gauge("mapd_stats_distinct_classes_estimate").Set(float64(st.distinctEstimate()))
	reg.Gauge("mapd_stats_class_evictions").Set(float64(st.evictions))
	if st.total > 0 {
		reg.Gauge("mapd_stats_cache_hit_rate").Set(float64(st.hits) / float64(st.total))
	}
	for key := range st.published {
		if _, ok := st.classes[key]; !ok {
			reg.Gauge("mapd_stats_class_requests", obs.L("shape", key)).Set(0)
			reg.Gauge("mapd_stats_class_hit_rate", obs.L("shape", key)).Set(0)
		}
	}
	for key, c := range st.classes {
		st.published[key] = true
		reg.Gauge("mapd_stats_class_requests", obs.L("shape", key)).Set(float64(c.requests))
		hr := 0.0
		if c.requests > 0 {
			hr = float64(c.hits) / float64(c.requests)
		}
		reg.Gauge("mapd_stats_class_hit_rate", obs.L("shape", key)).Set(hr)
	}
	for d, n := range st.depth {
		if n > 0 {
			reg.Gauge("mapd_stats_depth_requests", obs.L("depth", itoa(d))).Set(float64(n))
		}
	}
	for coll, n := range st.colls {
		reg.Gauge("mapd_stats_collective_requests", obs.L("collective", coll)).Set(float64(n))
	}
	for mode, n := range st.modes {
		reg.Gauge("mapd_stats_search_requests", obs.L("mode", mode)).Set(float64(n))
	}
	for ep, n := range st.endpoints {
		reg.Gauge("mapd_stats_endpoint_requests", obs.L("endpoint", ep)).Set(float64(n))
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
