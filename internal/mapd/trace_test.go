package mapd

import (
	"encoding/json"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/rt"
)

// logBuffer is a concurrency-safe sink for the test logger.
type logBuffer struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (b *logBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *logBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func tracedServer(t *testing.T, ratio float64, cfg Config) (*Server, *httptest.Server, *rt.Tracer, *logBuffer) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	tracer := rt.NewTracer(rt.Options{Service: "mapd-test", SampleRatio: ratio, Rand: rng.Uint64})
	logs := &logBuffer{}
	cfg.Tracer = tracer
	cfg.Logger = slog.New(rt.NewLogHandler(slog.NewJSONHandler(logs, nil)))
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, tracer, logs
}

// spanNames polls the tracer for committed spans until the wanted names
// all appear (the root span commits just after the response is written).
func spanNames(t *testing.T, tracer *rt.Tracer, want ...string) map[string][]obs.Span {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		byName := map[string][]obs.Span{}
		for _, sp := range tracer.Scope().Spans() {
			byName[sp.Name] = append(byName[sp.Name], sp)
		}
		missing := ""
		for _, name := range want {
			if len(byName[name]) == 0 {
				missing = name
				break
			}
		}
		if missing == "" {
			return byName
		}
		if time.Now().After(deadline) {
			t.Fatalf("span %q never committed; have %v", missing, keys(byName))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func keys(m map[string][]obs.Span) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestTraceCoversServingPipeline is the acceptance path: one request with
// an injected traceparent yields a server-side trace whose spans cover
// middleware → cache/singleflight → advisor chunk workers, all on the
// injected trace id, with the same id in the log output.
func TestTraceCoversServingPipeline(t *testing.T) {
	const upstream = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	const traceID = "0af7651916cd43dd8448eb211c80319c"
	_, ts, tracer, logs := tracedServer(t, 1, Config{})

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/advise",
		strings.NewReader(`{"machine":"hydra","nodes":2,"collective":"alltoall","comm_size":16}`))
	req.Header.Set("traceparent", upstream)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	// The response announces the server's span on the same trace.
	tp := resp.Header.Get("traceparent")
	gt, _, flags, ok := rt.ParseTraceparent(tp)
	if !ok || gt.String() != traceID || flags&rt.FlagSampled == 0 {
		t.Fatalf("response traceparent %q does not continue trace %s", tp, traceID)
	}

	byName := spanNames(t, tracer,
		"http /v1/advise", "cache.lookup", "singleflight", "evaluate",
		"advisor.rank", "advisor.chunk")

	// Everything rides one thread track named after the injected trace id.
	tid := byName["http /v1/advise"][0].TID
	for name, spans := range byName {
		for _, sp := range spans {
			if sp.TID != tid {
				t.Fatalf("span %q on track %d, want %d (one trace, one track)", name, sp.TID, tid)
			}
		}
	}
	var buf strings.Builder
	if err := obs.WriteTraceJSON(&buf, tracer.Scope()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "trace "+traceID) {
		t.Fatalf("exported trace does not name the track after trace %s", traceID)
	}

	// The cache.lookup span recorded the miss.
	if args := byName["cache.lookup"][0].Args; len(args) == 0 || args[0].Key != "hit" || args[0].Val != 0 {
		t.Fatalf("cache.lookup args %v, want hit=0", byName["cache.lookup"][0].Args)
	}

	// The request log line carries the same trace id.
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(logs.String(), traceID) {
		if time.Now().After(deadline) {
			t.Fatalf("log output never mentioned trace %s:\n%s", traceID, logs.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	var rec struct {
		Msg     string `json:"msg"`
		Path    string `json:"path"`
		TraceID string `json:"trace_id"`
		Status  int    `json:"status"`
	}
	for _, line := range strings.Split(strings.TrimSpace(logs.String()), "\n") {
		if err := json.Unmarshal([]byte(line), &rec); err == nil && rec.Msg == "request" {
			break
		}
	}
	if rec.Path != "/v1/advise" || rec.TraceID != traceID || rec.Status != 200 {
		t.Fatalf("request log line %+v, want path=/v1/advise trace_id=%s status=200", rec, traceID)
	}
}

// TestErrorBodyCarriesTraceID: the structured 400 envelope quotes the
// trace id that the traceparent response header (and the logs) carry.
func TestErrorBodyCarriesTraceID(t *testing.T) {
	_, ts, _, logs := tracedServer(t, 1, Config{})
	resp, err := http.Post(ts.URL+"/v1/map", "application/json",
		strings.NewReader(`{"hierarchy":"not-a-hierarchy"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var body struct {
		Error struct {
			Code    int    `json:"code"`
			Status  string `json:"status"`
			TraceID string `json:"trace_id"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Error.TraceID == "" {
		t.Fatal("error body has no trace_id")
	}
	gt, _, _, ok := rt.ParseTraceparent(resp.Header.Get("traceparent"))
	if !ok || gt.String() != body.Error.TraceID {
		t.Fatalf("error body trace_id %q != response traceparent %q",
			body.Error.TraceID, resp.Header.Get("traceparent"))
	}
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(logs.String(), body.Error.TraceID) {
		if time.Now().After(deadline) {
			t.Fatalf("log output never mentioned trace %s", body.Error.TraceID)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestUnsampledRequestLeavesNoTrace: with head sampling off and no
// upstream decision, a successful request commits nothing — but a failing
// one still does (always-sample-on-error).
func TestUnsampledRequestLeavesNoTrace(t *testing.T) {
	srv, ts, tracer, _ := tracedServer(t, -1, Config{Timeout: 50 * time.Millisecond, CacheEntries: -1})
	resp, err := http.Post(ts.URL+"/v1/map", "application/json",
		strings.NewReader(`{"hierarchy":"2,2,4","rank":5}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	time.Sleep(20 * time.Millisecond)
	if n := len(tracer.Scope().Spans()); n != 0 {
		t.Fatalf("unsampled success committed %d spans", n)
	}

	// A timed-out evaluation (504) must be committed despite the head
	// decision: errors always leave a trace.
	srv.AdviseHook = func() { time.Sleep(200 * time.Millisecond) }
	resp, err = http.Post(ts.URL+"/v1/advise", "application/json",
		strings.NewReader(`{"machine":"hydra","nodes":2,"collective":"alltoall","comm_size":16}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	spanNames(t, tracer, "http /v1/advise")
}

// TestSLOEndpointAndHealthDegradation: /v1/slo reports burn rates from a
// deterministic clock, and a fast-burning SLO flips /healthz to degraded
// while the breaker is still closed.
func TestSLOEndpointAndHealthDegradation(t *testing.T) {
	clock := time.Unix(100_000, 0)
	slo := rt.NewSLOTracker(rt.SLOOptions{Now: func() time.Time { return clock }})
	srv := New(Config{SLO: slo})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (*http.Response, []byte) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, b
	}

	// Precondition: healthy, empty SLO report.
	resp, body := get("/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "healthy") {
		t.Fatalf("healthz = %d %s", resp.StatusCode, body)
	}

	// A success and 19 shed-equivalent failures inside the short window:
	// availability 5%, burn 950 ≫ 14 in both short windows.
	slo.Record("advise", 200, time.Millisecond)
	for i := 0; i < 19; i++ {
		slo.Record("advise", 503, time.Millisecond)
	}

	resp, body = get("/v1/slo")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/slo status %d", resp.StatusCode)
	}
	var rep rt.SLOReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("bad /v1/slo body %s: %v", body, err)
	}
	if !rep.FastBurning || len(rep.Endpoints) != 1 || rep.Endpoints[0].Endpoint != "advise" {
		t.Fatalf("report %+v", rep)
	}
	w := rep.Endpoints[0].Windows[0]
	if w.Requests != 20 || w.Errors != 19 {
		t.Fatalf("1m window %+v, want 20 requests 19 errors", w)
	}
	if want := (19.0 / 20.0) / 0.001; w.AvailabilityBurn < want-1e-6 || w.AvailabilityBurn > want+1e-6 {
		t.Fatalf("availability burn %g, want %g", w.AvailabilityBurn, want)
	}

	// Health degrades on the fast burn — breaker untouched.
	resp, body = get("/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "degraded") {
		t.Fatalf("healthz during fast burn = %d %s, want 200 degraded", resp.StatusCode, body)
	}

	// /metrics exposes the published burn gauges.
	_, body = get("/metrics")
	if !strings.Contains(string(body), "slo_burn_rate") || !strings.Contains(string(body), "slo_fast_burning 1") {
		t.Fatalf("/metrics missing SLO series:\n%s", body)
	}

	// 90 virtual seconds later the short window clears: healthy again.
	clock = clock.Add(90 * time.Second)
	resp, body = get("/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "healthy") {
		t.Fatalf("healthz after window rollover = %d %s", resp.StatusCode, body)
	}
}

// TestMiddlewareRecordsSLOPerEndpoint: real requests through the handler
// land in the tracker under their endpoint names.
func TestMiddlewareRecordsSLOPerEndpoint(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/v1/map", "application/json",
			strings.NewReader(`{"hierarchy":"2,2,4","rank":5}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	rep := srv.cfg.SLO.Report()
	if len(rep.Endpoints) != 1 || rep.Endpoints[0].Endpoint != "map" {
		t.Fatalf("report endpoints %+v, want just map", rep.Endpoints)
	}
	if got := rep.Endpoints[0].Windows[0].Requests; got != 3 {
		t.Fatalf("1m window holds %d requests, want 3", got)
	}
}
