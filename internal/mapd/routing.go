// RoutingKey gives routers the exact canonical cache key a replica will
// compute for a request, so a consistent-hash routing tier sends every
// syntactic variant of the same logical query to the replica already
// holding the warm cache entry.

package mapd

import "fmt"

// RoutingKey parses the request body for the given API path and returns
// the canonical cache key the serving pipeline uses for it. Requests that
// differ only in surface syntax ("2x2x4" vs "[2, 2, 4]") share a key, so
// hashing it preserves cache locality across clients. Errors wrap
// ErrBadRequest (malformed body) or name an unroutable path.
func RoutingKey(path string, body []byte) (string, error) {
	switch path {
	case "/v1/map":
		var req MapRequest
		if err := decodeStrict(body, &req); err != nil {
			return "", err
		}
		q, err := req.parse()
		if err != nil {
			return "", err
		}
		return q.Key(), nil
	case "/v1/advise":
		var req AdviseRequest
		if err := decodeStrict(body, &req); err != nil {
			return "", err
		}
		q, err := req.parse()
		if err != nil {
			return "", err
		}
		return q.Key(), nil
	case "/v1/map/matrix":
		var req MatrixMapRequest
		if err := decodeStrict(body, &req); err != nil {
			return "", err
		}
		q, err := req.parse()
		if err != nil {
			return "", err
		}
		return q.Key(), nil
	case "/v1/select":
		var req SelectRequest
		if err := decodeStrict(body, &req); err != nil {
			return "", err
		}
		q, err := req.parse()
		if err != nil {
			return "", err
		}
		return q.Key(), nil
	case "/v1/metrics/order":
		var req OrderMetricsRequest
		if err := decodeStrict(body, &req); err != nil {
			return "", err
		}
		q, err := req.parse()
		if err != nil {
			return "", err
		}
		return q.Key(), nil
	default:
		return "", fmt.Errorf("mapd: no routing key for path %q", path)
	}
}
