// Package heat is the repository's third full application: a 2D Jacobi
// heat-diffusion solver distributed over a Cartesian communicator with
// per-iteration halo exchanges. Its communication pattern (neighbour
// messages, the classic latency/bandwidth-bound stencil the paper's
// introduction alludes to with "each application … has its own optimal
// mapping which depends on its computation and communication pattern")
// responds to rank orders very differently from the collective-heavy
// Splatt and CG workloads: what matters is exclusively which *neighbours*
// share a hierarchy domain, which is exactly what CartCreate's mixed-radix
// reorder=true optimizes.
//
// The numerics are real: the distributed field equals the sequential
// solver's bit for bit (same per-cell operation order), which the tests
// assert.
package heat

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/netmodel"
)

// Problem is one heat-diffusion instance: an NX×NY plate with fixed
// (Dirichlet) edge temperatures, relaxed with Jacobi iterations.
type Problem struct {
	NX, NY                   int // grid rows (x) and columns (y)
	Iters                    int
	Top, Bottom, Left, Right float64
}

// grid returns a zeroed field with boundary conditions applied.
func (p Problem) grid() [][]float64 {
	u := make([][]float64, p.NX)
	for i := range u {
		u[i] = make([]float64, p.NY)
	}
	for j := 0; j < p.NY; j++ {
		u[0][j] = p.Top
		u[p.NX-1][j] = p.Bottom
	}
	for i := 0; i < p.NX; i++ {
		u[i][0] = p.Left
		u[i][p.NY-1] = p.Right
	}
	return u
}

// Sequential solves the problem on one core and returns the final field.
func Sequential(p Problem) [][]float64 {
	u := p.grid()
	next := p.grid()
	for it := 0; it < p.Iters; it++ {
		for i := 1; i < p.NX-1; i++ {
			for j := 1; j < p.NY-1; j++ {
				next[i][j] = 0.25 * (u[i-1][j] + u[i+1][j] + u[i][j-1] + u[i][j+1])
			}
		}
		u, next = next, u
	}
	return u
}

// Result is one distributed run's outcome.
type Result struct {
	Duration float64     // virtual seconds of the timed iteration loop
	Field    [][]float64 // final field, assembled at rank 0
}

// Run solves the problem on the machine with the given binding, over a
// px×py process grid (which must divide NX×NY), optionally letting
// CartCreate reorder the grid to match the hierarchy.
func Run(spec netmodel.Spec, binding []int, px, py int, p Problem, reorder bool, cfg mpi.Config) (*Result, error) {
	if px*py != len(binding) {
		return nil, fmt.Errorf("heat: grid %d×%d needs %d ranks, binding has %d", px, py, px*py, len(binding))
	}
	if px <= 1 && py <= 1 {
		return nil, fmt.Errorf("heat: degenerate 1×1 grid; use Sequential")
	}
	if p.NX%px != 0 || p.NY%py != 0 {
		return nil, fmt.Errorf("heat: %d×%d grid does not divide the %d×%d field", px, py, p.NX, p.NY)
	}
	tx, ty := p.NX/px, p.NY/py
	if tx < 2 || ty < 2 {
		return nil, fmt.Errorf("heat: tiles of %d×%d are too thin", tx, ty)
	}
	var result *Result
	var runErr error
	_, err := mpi.Run(spec, binding, cfg, func(r *mpi.Rank) {
		res, err := solveRank(r, px, py, tx, ty, p, reorder)
		if r.ID() == 0 {
			result, runErr = res, err
		}
	})
	if err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	return result, nil
}

// dims may be degenerate in one direction; CartCreate rejects arity-1
// levels, so fold them away.
func cartDims(px, py int) []int {
	switch {
	case px == 1:
		return []int{py}
	case py == 1:
		return []int{px}
	default:
		return []int{px, py}
	}
}

func solveRank(r *mpi.Rank, px, py, tx, ty int, p Problem, reorder bool) (*Result, error) {
	w := r.World()
	cart, err := w.CartCreate(r, cartDims(px, py), nil, reorder)
	if err != nil {
		return nil, err
	}
	var gx, gy int
	coords := cart.Coords(cart.Rank())
	switch {
	case px == 1:
		gx, gy = 0, coords[0]
	case py == 1:
		gx, gy = coords[0], 0
	default:
		gx, gy = coords[0], coords[1]
	}
	xdim, ydim := 0, 1
	if px == 1 || py == 1 {
		xdim, ydim = 0, 0
	}

	// Tile with a ghost ring; global cell (gx·tx+i-1, gy·ty+j-1) lives at
	// local (i, j) for i in [1, tx], j in [1, ty].
	u := makeTile(tx+2, ty+2)
	next := makeTile(tx+2, ty+2)
	glob := func(i, j int) (int, int) { return gx*tx + i - 1, gy*ty + j - 1 }
	isBoundary := func(I, J int) bool { return I == 0 || I == p.NX-1 || J == 0 || J == p.NY-1 }
	bc := func(I, J int) float64 {
		// Columns take precedence at the corners, matching grid()'s
		// initialization order.
		switch {
		case J == 0:
			return p.Left
		case J == p.NY-1:
			return p.Right
		case I == 0:
			return p.Top
		default:
			return p.Bottom
		}
	}
	for i := 1; i <= tx; i++ {
		for j := 1; j <= ty; j++ {
			if I, J := glob(i, j); isBoundary(I, J) {
				u[i][j] = bc(I, J)
				next[i][j] = u[i][j]
			}
		}
	}

	w.Barrier(r)
	start := r.Now()
	rowBytes := func(row []float64) mpi.Buf { return mpi.F64Buf(row[1 : ty+1]) }
	colBuf := make([]float64, tx)
	for it := 0; it < p.Iters; it++ {
		// Halo swap along x (rows): +1 then -1.
		if px > 1 {
			if got, ok := cart.NeighborExchangeDisp(r, xdim, 1, rowBytes(u[tx])); ok {
				copy(u[0][1:ty+1], got.Data)
			}
			if got, ok := cart.NeighborExchangeDisp(r, xdim, -1, rowBytes(u[1])); ok {
				copy(u[tx+1][1:ty+1], got.Data)
			}
		}
		// Halo swap along y (columns).
		if py > 1 {
			for i := 0; i < tx; i++ {
				colBuf[i] = u[i+1][ty]
			}
			if got, ok := cart.NeighborExchangeDisp(r, ydim, 1, mpi.F64Buf(colBuf)); ok {
				for i := 0; i < tx; i++ {
					u[i+1][0] = got.Data[i]
				}
			}
			for i := 0; i < tx; i++ {
				colBuf[i] = u[i+1][1]
			}
			if got, ok := cart.NeighborExchangeDisp(r, ydim, -1, mpi.F64Buf(colBuf)); ok {
				for i := 0; i < tx; i++ {
					u[i+1][ty+1] = got.Data[i]
				}
			}
		}
		// Jacobi sweep over non-boundary cells.
		for i := 1; i <= tx; i++ {
			for j := 1; j <= ty; j++ {
				if I, J := glob(i, j); !isBoundary(I, J) {
					next[i][j] = 0.25 * (u[i-1][j] + u[i+1][j] + u[i][j-1] + u[i][j+1])
				}
			}
		}
		// Roofline charge: 4 flops and ~6 8-byte accesses per cell.
		r.Compute(4*float64(tx*ty), 48*float64(tx*ty))
		u, next = next, u
	}
	w.Barrier(r)
	elapsed := r.Now() - start

	// Assemble the field at rank 0 of the Cartesian communicator, then
	// forward to world rank 0 if they differ.
	flat := make([]float64, 0, tx*ty)
	for i := 1; i <= tx; i++ {
		flat = append(flat, u[i][1:ty+1]...)
	}
	tiles := cart.Gatherv(r, 0, mpi.F64Buf(flat))
	var field [][]float64
	if cart.Rank() == 0 {
		field = make([][]float64, p.NX)
		for i := range field {
			field[i] = make([]float64, p.NY)
		}
		for rank, tile := range tiles {
			c := cart.Coords(rank)
			var cgx, cgy int
			switch {
			case px == 1:
				cgx, cgy = 0, c[0]
			case py == 1:
				cgx, cgy = c[0], 0
			default:
				cgx, cgy = c[0], c[1]
			}
			for i := 0; i < tx; i++ {
				copy(field[cgx*tx+i][cgy*ty:cgy*ty+ty], tile.Data[i*ty:(i+1)*ty])
			}
		}
	}
	// Route the result to world rank 0 (the Cartesian root may be another
	// world rank after reordering).
	rootWorld := cart.WorldRank(0)
	if rootWorld != 0 {
		if cart.Rank() == 0 {
			for i := 0; i < p.NX; i++ {
				w.Send(r, 0, 7000+int64(i), mpi.F64Buf(field[i]))
			}
		}
		if r.ID() == 0 {
			field = make([][]float64, p.NX)
			srcWorld := rootWorld
			// Translate the sender's world rank into our world-comm rank
			// (identical numbering for the world communicator).
			for i := 0; i < p.NX; i++ {
				got := w.Recv(r, srcWorld, 7000+int64(i))
				field[i] = got.Data
			}
		}
	}
	if r.ID() != 0 {
		return nil, nil
	}
	return &Result{Duration: elapsed, Field: field}, nil
}

func makeTile(nx, ny int) [][]float64 {
	t := make([][]float64, nx)
	for i := range t {
		t[i] = make([]float64, ny)
	}
	return t
}
