package heat

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/slurm"
)

func testSpec() netmodel.Spec { return cluster.Hydra(2, 1) }

func ident(n int) []int {
	b := make([]int, n)
	for i := range b {
		b[i] = i
	}
	return b
}

func sampleProblem() Problem {
	return Problem{NX: 32, NY: 24, Iters: 40, Top: 1, Bottom: 0, Left: 0.5, Right: 0}
}

func TestSequentialPhysics(t *testing.T) {
	p := sampleProblem()
	u := Sequential(p)
	// Boundary conditions preserved.
	if u[0][5] != p.Top || u[p.NX-1][5] != p.Bottom || u[5][0] != p.Left {
		t.Errorf("boundary conditions lost: %v %v %v", u[0][5], u[p.NX-1][5], u[5][0])
	}
	// Heat flows from the hot top edge: rows nearer the top are warmer.
	mid := p.NY / 2
	if !(u[1][mid] > u[p.NX/2][mid] && u[p.NX/2][mid] > u[p.NX-2][mid]) {
		t.Errorf("temperature not decreasing away from the hot edge: %v %v %v",
			u[1][mid], u[p.NX/2][mid], u[p.NX-2][mid])
	}
	// Interior values bounded by the boundary extremes.
	for i := 1; i < p.NX-1; i++ {
		for j := 1; j < p.NY-1; j++ {
			if u[i][j] < 0 || u[i][j] > 1 {
				t.Fatalf("maximum principle violated at (%d,%d): %v", i, j, u[i][j])
			}
		}
	}
}

func TestDistributedMatchesSequential(t *testing.T) {
	p := sampleProblem()
	want := Sequential(p)
	for _, cfg := range []struct {
		px, py  int
		reorder bool
	}{
		{4, 2, false}, {4, 2, true}, {2, 4, false}, {8, 1, false}, {1, 8, false}, {8, 8, true},
	} {
		res, err := Run(testSpec(), ident(cfg.px*cfg.py), cfg.px, cfg.py, p, cfg.reorder, mpi.Config{})
		if err != nil {
			t.Fatalf("%d×%d reorder=%v: %v", cfg.px, cfg.py, cfg.reorder, err)
		}
		for i := range want {
			for j := range want[i] {
				if res.Field[i][j] != want[i][j] {
					t.Fatalf("%d×%d reorder=%v: field[%d][%d] = %v, want %v",
						cfg.px, cfg.py, cfg.reorder, i, j, res.Field[i][j], want[i][j])
				}
			}
		}
		if res.Duration <= 0 {
			t.Errorf("%d×%d: duration %v", cfg.px, cfg.py, res.Duration)
		}
	}
}

func TestRunValidation(t *testing.T) {
	p := sampleProblem()
	if _, err := Run(testSpec(), ident(6), 3, 2, p, false, mpi.Config{}); err == nil {
		t.Error("non-dividing grid accepted") // 32 % 3 != 0
	}
	if _, err := Run(testSpec(), ident(4), 2, 4, p, false, mpi.Config{}); err == nil {
		t.Error("binding/grid mismatch accepted")
	}
	if _, err := Run(testSpec(), ident(1), 1, 1, p, false, mpi.Config{}); err == nil {
		t.Error("1×1 grid accepted")
	}
	thin := Problem{NX: 32, NY: 8, Iters: 2}
	if _, err := Run(testSpec(), ident(16), 2, 8, thin, false, mpi.Config{}); err == nil {
		t.Error("1-wide tiles accepted")
	}
}

// On a scattered (cyclic) launch, CartCreate's reorder must not be slower,
// and is expected to be meaningfully faster (the examples/halo effect).
func TestReorderHelpsOnCyclicBinding(t *testing.T) {
	h := cluster.HydraHierarchy(2)
	dist := slurm.Distribution{Node: slurm.Cyclic, Socket: slurm.Cyclic}
	binding, err := dist.Binding(h)
	if err != nil {
		t.Fatal(err)
	}
	p := Problem{NX: 64, NY: 64, Iters: 10, Top: 1}
	plain, err := Run(testSpec(), binding, 8, 8, p, false, mpi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	re, err := Run(testSpec(), binding, 8, 8, p, true, mpi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if re.Duration > plain.Duration*1.02 {
		t.Errorf("reorder slower: %v vs %v", re.Duration, plain.Duration)
	}
	// Numerics unchanged by the mapping.
	for i := range plain.Field {
		for j := range plain.Field[i] {
			if plain.Field[i][j] != re.Field[i][j] {
				t.Fatalf("reorder changed the physics at (%d,%d)", i, j)
			}
		}
	}
}

func TestSequentialConvergesTowardsSteadyState(t *testing.T) {
	// More iterations → closer to the steady state (residual shrinks).
	p := Problem{NX: 16, NY: 16, Iters: 50, Top: 1}
	qLong := p
	qLong.Iters = 500
	short := Sequential(p)
	long := Sequential(qLong)
	residual := func(u [][]float64) float64 {
		var r float64
		for i := 1; i < p.NX-1; i++ {
			for j := 1; j < p.NY-1; j++ {
				d := u[i][j] - 0.25*(u[i-1][j]+u[i+1][j]+u[i][j-1]+u[i][j+1])
				r += d * d
			}
		}
		return math.Sqrt(r)
	}
	if residual(long) >= residual(short) {
		t.Errorf("residual did not shrink: %v vs %v", residual(long), residual(short))
	}
}
