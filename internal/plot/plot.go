// Package plot renders tiny ASCII charts for the command-line tools: the
// horizontal bars of Figures 8 and 9 and log-scale bandwidth curves for
// the micro-benchmark figures, so a terminal user sees the paper's shapes
// without leaving the shell.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Bar is one labelled value.
type Bar struct {
	Label string
	Value float64
	Note  string
}

// Bars renders a horizontal bar chart scaled to the longest value.
// width is the number of character cells of the largest bar (default 40).
func Bars(bars []Bar, unit string, width int) string {
	return BarsMax(bars, unit, width, 0)
}

// BarsMax is Bars with an explicit full-scale value (0 = scale to the
// group's maximum), letting several charts share one scale.
func BarsMax(bars []Bar, unit string, width int, mx float64) string {
	if width <= 0 {
		width = 40
	}
	labelW := 0
	for _, b := range bars {
		if b.Value > mx {
			mx = b.Value
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	var sb strings.Builder
	for _, b := range bars {
		n := 0
		if mx > 0 {
			n = int(math.Round(b.Value / mx * float64(width)))
		}
		if n < 1 && b.Value > 0 {
			n = 1
		}
		fmt.Fprintf(&sb, "%-*s %s%s %.4g %s%s\n",
			labelW, b.Label, strings.Repeat("█", n), strings.Repeat(" ", width-n),
			b.Value, unit, b.Note)
	}
	return sb.String()
}

// Series is one named curve for Lines.
type Series struct {
	Name   string
	Points []float64 // y values, aligned with the shared x labels
}

// Lines renders aligned series as a log-scale column chart: one row per x
// label, one column of normalized magnitude glyphs per series. It is a
// reading aid, not a plot; exact numbers stay in the accompanying tables.
func Lines(xLabels []string, series []Series, unit string) string {
	const glyphs = " ▁▂▃▄▅▆▇█"
	var mn, mx float64
	mn = math.Inf(1)
	for _, s := range series {
		for _, v := range s.Points {
			if v <= 0 {
				continue
			}
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
	}
	if math.IsInf(mn, 1) || mx <= mn {
		mn, mx = 1, 10
	}
	logMin, logMax := math.Log(mn), math.Log(mx)
	scale := func(v float64) int {
		if v <= 0 {
			return 0
		}
		f := (math.Log(v) - logMin) / (logMax - logMin)
		idx := int(math.Round(f * float64(len([]rune(glyphs))-1)))
		if idx < 0 {
			idx = 0
		}
		if idx > len([]rune(glyphs))-1 {
			idx = len([]rune(glyphs)) - 1
		}
		return idx
	}
	runes := []rune(glyphs)
	var sb strings.Builder
	nameW := 0
	for _, s := range series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	fmt.Fprintf(&sb, "%-*s ", nameW, "")
	for _, x := range xLabels {
		fmt.Fprintf(&sb, "%7s", x)
	}
	fmt.Fprintf(&sb, "  (%s, log scale %s..%s)\n", unit, compact(mn), compact(mx))
	for _, s := range series {
		fmt.Fprintf(&sb, "%-*s ", nameW, s.Name)
		for _, v := range s.Points {
			fmt.Fprintf(&sb, "%6s%c", "", runes[scale(v)])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func compact(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.3gG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.3gk", v/1e3)
	}
	return fmt.Sprintf("%.3g", v)
}
