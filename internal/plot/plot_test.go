package plot

import (
	"strings"
	"testing"
)

func TestBars(t *testing.T) {
	out := Bars([]Bar{
		{Label: "0-1-2-3", Value: 30, Note: "  <- best"},
		{Label: "3-2-1-0", Value: 15},
		{Label: "zero", Value: 0},
	}, "s", 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines", len(lines))
	}
	if !strings.Contains(lines[0], strings.Repeat("█", 20)) {
		t.Errorf("max bar not full width: %q", lines[0])
	}
	if !strings.Contains(lines[1], strings.Repeat("█", 10)) {
		t.Errorf("half bar wrong: %q", lines[1])
	}
	if strings.Contains(lines[2], "█") {
		t.Errorf("zero bar should be empty: %q", lines[2])
	}
	if !strings.Contains(lines[0], "<- best") {
		t.Error("note missing")
	}
}

func TestBarsDefaultWidth(t *testing.T) {
	out := Bars([]Bar{{Label: "x", Value: 1}}, "MB/s", 0)
	if !strings.Contains(out, strings.Repeat("█", 40)) {
		t.Errorf("default width not applied: %q", out)
	}
}

func TestLines(t *testing.T) {
	out := Lines(
		[]string{"16K", "1M", "64M"},
		[]Series{
			{Name: "spread", Points: []float64{1e6, 1e8, 1e10}},
			{Name: "packed", Points: []float64{1e7, 1e7, 1e7}},
		},
		"B/s",
	)
	if !strings.Contains(out, "spread") || !strings.Contains(out, "16K") {
		t.Errorf("Lines output:\n%s", out)
	}
	// The max point renders the tallest glyph, the min the shortest.
	if !strings.Contains(out, "█") {
		t.Error("no full glyph for the maximum")
	}
}

func TestLinesDegenerate(t *testing.T) {
	out := Lines([]string{"a"}, []Series{{Name: "s", Points: []float64{0}}}, "x")
	if out == "" {
		t.Error("degenerate input should still render")
	}
}
