// Package ablate probes the robustness of the reproduction's conclusions
// against the calibration of the simulated machines: the absolute link
// bandwidths of Hydra and LUMI are estimates from public part specs, so
// every headline shape (spread-wins-alone, packed-wins-under-contention,
// packed-is-contention-immune) is re-checked under perturbed calibrations.
// If a conclusion held only for one lucky set of constants it would not be
// a reproduction of the paper's phenomenon.
package ablate

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/netmodel"
	"repro/internal/topology"
)

// Scale returns a copy of the spec with every finite bandwidth of the
// selected level multiplied by factor (level -1 scales all levels).
func Scale(spec netmodel.Spec, level int, factor float64) netmodel.Spec {
	out := spec
	out.Levels = append([]netmodel.LevelSpec(nil), spec.Levels...)
	for l := range out.Levels {
		if level >= 0 && l != level {
			continue
		}
		if out.Levels[l].UpBandwidth > 0 {
			out.Levels[l].UpBandwidth *= factor
		}
		if out.Levels[l].BusBandwidth > 0 {
			out.Levels[l].BusBandwidth *= factor
		}
		if out.Levels[l].MemBandwidth > 0 {
			out.Levels[l].MemBandwidth *= factor
		}
	}
	if level < 0 && out.FabricBandwidth > 0 {
		out.FabricBandwidth *= factor
	}
	return out
}

// Conclusion is one checked headline shape.
type Conclusion struct {
	Name string
	Hold bool
	Info string
}

// CheckHeadlines measures the §4.1.3 shapes on the given machine at the
// given total size and reports whether each holds. spread and packed are
// the extreme orders of the hierarchy; commSize must divide the machine.
func CheckHeadlines(spec netmodel.Spec, h topology.Hierarchy, commSize int, size int64, spread, packed []int) ([]Conclusion, error) {
	cfg := bench.Config{
		Spec:      spec,
		Hierarchy: h,
		CommSize:  commSize,
		Coll:      bench.Alltoall,
		Iters:     1,
	}
	s1, err := bench.Measure(cfg, spread, size, false)
	if err != nil {
		return nil, err
	}
	sa, err := bench.Measure(cfg, spread, size, true)
	if err != nil {
		return nil, err
	}
	p1, err := bench.Measure(cfg, packed, size, false)
	if err != nil {
		return nil, err
	}
	pa, err := bench.Measure(cfg, packed, size, true)
	if err != nil {
		return nil, err
	}
	ratio := pa.Bandwidth / p1.Bandwidth
	return []Conclusion{
		{
			Name: "spread wins alone",
			Hold: s1.Bandwidth > p1.Bandwidth,
			Info: fmt.Sprintf("spread %.3g vs packed %.3g B/s", s1.Bandwidth, p1.Bandwidth),
		},
		{
			Name: "packed wins under contention",
			Hold: pa.Bandwidth > sa.Bandwidth,
			Info: fmt.Sprintf("packed %.3g vs spread %.3g B/s", pa.Bandwidth, sa.Bandwidth),
		},
		{
			Name: "packed contention-immune",
			Hold: ratio > 0.9 && ratio < 1.1,
			Info: fmt.Sprintf("all/one ratio %.3f", ratio),
		},
		{
			Name: "spread collapses under contention",
			Hold: sa.Bandwidth*2 < s1.Bandwidth,
			Info: fmt.Sprintf("one %.3g vs all %.3g B/s", s1.Bandwidth, sa.Bandwidth),
		},
	}, nil
}
