package ablate

import (
	"testing"

	"repro/internal/cluster"
)

func TestScale(t *testing.T) {
	spec := cluster.Hydra(4, 1)
	doubled := Scale(spec, -1, 2)
	for l := range spec.Levels {
		if spec.Levels[l].UpBandwidth > 0 &&
			doubled.Levels[l].UpBandwidth != 2*spec.Levels[l].UpBandwidth {
			t.Errorf("level %d uplink not doubled", l)
		}
	}
	// Scaling must not mutate the original.
	if spec.Levels[0].UpBandwidth == doubled.Levels[0].UpBandwidth {
		t.Error("Scale mutated its input")
	}
	one := Scale(spec, 1, 0.5)
	if one.Levels[0].UpBandwidth != spec.Levels[0].UpBandwidth {
		t.Error("level-scoped Scale touched other levels")
	}
	if one.Levels[1].UpBandwidth != spec.Levels[1].UpBandwidth/2 {
		t.Error("level-scoped Scale missed its level")
	}
}

func TestHeadlinesHoldAtBaseline(t *testing.T) {
	spec := cluster.Hydra(16, 1)
	h := cluster.HydraHierarchy(16)
	cons, err := CheckHeadlines(spec, h, 16, 64<<20, []int{0, 1, 2, 3}, []int{3, 2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cons {
		if !c.Hold {
			t.Errorf("baseline: %q does not hold (%s)", c.Name, c.Info)
		}
	}
}

// The paper's shapes must be calibration-robust: they hold when every
// bandwidth in the machine is doubled or halved, and when only the NIC
// level is perturbed.
func TestHeadlinesRobustToCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep")
	}
	h := cluster.HydraHierarchy(16)
	cases := []struct {
		name   string
		level  int
		factor float64
	}{
		{"all-half", -1, 0.5},
		{"all-double", -1, 2},
		{"nic-half", 0, 0.5},
		{"nic-double", 0, 2},
		{"socket-double", 1, 2},
	}
	for _, c := range cases {
		spec := Scale(cluster.Hydra(16, 1), c.level, c.factor)
		cons, err := CheckHeadlines(spec, h, 16, 64<<20, []int{0, 1, 2, 3}, []int{3, 2, 1, 0})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		for _, con := range cons {
			// "spread wins alone" legitimately flips when NICs get very
			// slow relative to the memory system; the contention
			// conclusions must never flip.
			if con.Name == "spread wins alone" && c.name == "nic-half" {
				continue
			}
			if !con.Hold {
				t.Errorf("%s: %q does not hold (%s)", c.name, con.Name, con.Info)
			}
		}
	}
}
