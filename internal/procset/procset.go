// Package procset implements the paper's §5 proposal that "MPI runtimes
// could offer the possible rank orderings as process sets available as MPI
// sessions, introduced in Version 4 of the MPI standard": a registry of
// named process sets, one per mixed-radix order of the machine hierarchy,
// plus semantic aliases (packed, spread, per-level cyclic distributions).
//
// Process-set URIs follow the MPI sessions convention:
//
//	mpi://world                      the initial enumeration
//	mrr://order/0-1-2-3              explicit order
//	mrr://packed                     [k-1 … 0] (block:block, the identity)
//	mrr://spread                     [0 … k-1] (every level cyclic)
//	mrr://cyclic/<level>             the named level enumerated fastest,
//	                                 the rest in packed order
package procset

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/perm"
	"repro/internal/reorder"
	"repro/internal/topology"
)

// ErrUnknownSet reports a URI not present in the registry.
var ErrUnknownSet = errors.New("procset: unknown process set")

// Set is one named rank ordering of the machine.
type Set struct {
	URI   string
	Order []int
	ro    *reorder.Reordering
}

// Size returns the number of processes of the set.
func (s *Set) Size() int { return s.ro.Size() }

// SplitKey returns the key a world rank passes to MPI_Comm_split to adopt
// this set's numbering.
func (s *Set) SplitKey(worldRank int) int { return s.ro.SplitKey(worldRank) }

// Binding returns the rank→core binding realizing the set via a rankfile.
func (s *Set) Binding() []int { return s.ro.Binding() }

// Characterize returns the §3.3 metrics of the set's first
// subcommunicator of the given size.
func (s *Set) Characterize(commSize int) (metrics.Characterization, error) {
	return metrics.Characterize(s.ro.Hierarchy(), s.Order, commSize)
}

// Registry holds the process sets of one machine hierarchy.
type Registry struct {
	h    topology.Hierarchy
	sets map[string]*Set
	uris []string
}

// NewRegistry enumerates all k! orders of the hierarchy (k ≤ 6 to keep the
// registry bounded) and registers the canonical URIs.
func NewRegistry(h topology.Hierarchy) (*Registry, error) {
	k := h.Depth()
	if k > 6 {
		return nil, fmt.Errorf("procset: refusing to enumerate %d! process sets", k)
	}
	r := &Registry{h: h, sets: make(map[string]*Set)}
	for _, sigma := range perm.All(k) {
		uri := "mrr://order/" + perm.Format(sigma)
		if err := r.add(uri, sigma); err != nil {
			return nil, err
		}
	}
	// Aliases.
	if err := r.alias("mpi://world", perm.Reversed(k)); err != nil {
		return nil, err
	}
	if err := r.alias("mrr://packed", perm.Reversed(k)); err != nil {
		return nil, err
	}
	if err := r.alias("mrr://spread", perm.Identity(k)); err != nil {
		return nil, err
	}
	for level, name := range h.Names() {
		// Level `level` fastest, remaining levels packed (innermost next).
		sigma := make([]int, 0, k)
		sigma = append(sigma, level)
		for l := k - 1; l >= 0; l-- {
			if l != level {
				sigma = append(sigma, l)
			}
		}
		if err := r.alias("mrr://cyclic/"+name, sigma); err != nil {
			return nil, err
		}
	}
	sort.Strings(r.uris)
	return r, nil
}

func (r *Registry) add(uri string, sigma []int) error {
	ro, err := reorder.New(r.h, sigma)
	if err != nil {
		return err
	}
	r.sets[uri] = &Set{URI: uri, Order: append([]int(nil), sigma...), ro: ro}
	r.uris = append(r.uris, uri)
	return nil
}

// alias registers uri pointing at the same underlying set as the explicit
// order URI (creating it if the hierarchy has duplicate level names).
func (r *Registry) alias(uri string, sigma []int) error {
	target := "mrr://order/" + perm.Format(sigma)
	if s, ok := r.sets[target]; ok {
		r.sets[uri] = s
		r.uris = append(r.uris, uri)
		return nil
	}
	return r.add(uri, sigma)
}

// Hierarchy returns the registry's machine hierarchy.
func (r *Registry) Hierarchy() topology.Hierarchy { return r.h }

// Names returns every registered URI, sorted.
func (r *Registry) Names() []string { return append([]string(nil), r.uris...) }

// Lookup resolves a URI. A bare order like "0-1-2" is accepted as
// shorthand for mrr://order/0-1-2.
func (r *Registry) Lookup(uri string) (*Set, error) {
	if s, ok := r.sets[uri]; ok {
		return s, nil
	}
	if !strings.Contains(uri, "://") {
		if s, ok := r.sets["mrr://order/"+uri]; ok {
			return s, nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownSet, uri)
}

// ByRingCost returns the explicit-order URIs sorted by the ring cost of
// their first subcommunicator of the given size (ascending): the most
// locality-preserving numberings first.
func (r *Registry) ByRingCost(commSize int) ([]string, error) {
	type entry struct {
		uri  string
		cost int
	}
	var entries []entry
	for uri, s := range r.sets {
		if !strings.HasPrefix(uri, "mrr://order/") {
			continue
		}
		ch, err := s.Characterize(commSize)
		if err != nil {
			return nil, err
		}
		entries = append(entries, entry{uri: uri, cost: ch.RingCost})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].cost != entries[j].cost {
			return entries[i].cost < entries[j].cost
		}
		return entries[i].uri < entries[j].uri
	})
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.uri
	}
	return out, nil
}
