package procset

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/perm"
	"repro/internal/topology"
)

func testRegistry(t *testing.T) *Registry {
	t.Helper()
	r, err := NewRegistry(topology.MustNew(2, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRegistryEnumeratesAllOrders(t *testing.T) {
	r := testRegistry(t)
	count := 0
	for _, uri := range r.Names() {
		if strings.HasPrefix(uri, "mrr://order/") {
			count++
		}
	}
	if count != 6 {
		t.Errorf("%d explicit orders, want 6", count)
	}
}

func TestWorldAliasIsIdentity(t *testing.T) {
	r := testRegistry(t)
	s, err := r.Lookup("mpi://world")
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < s.Size(); rank++ {
		if s.SplitKey(rank) != rank {
			t.Errorf("world set moved rank %d to %d", rank, s.SplitKey(rank))
		}
	}
	packed, err := r.Lookup("mrr://packed")
	if err != nil {
		t.Fatal(err)
	}
	if !perm.Equal(packed.Order, s.Order) {
		t.Error("packed alias differs from world")
	}
}

func TestSpreadAlias(t *testing.T) {
	r := testRegistry(t)
	s, err := r.Lookup("mrr://spread")
	if err != nil {
		t.Fatal(err)
	}
	if !perm.Equal(s.Order, []int{0, 1, 2}) {
		t.Errorf("spread order = %v", s.Order)
	}
	// Figure 2a: world rank 1 gets key 4 under the spread order.
	if s.SplitKey(1) != 4 {
		t.Errorf("spread SplitKey(1) = %d, want 4", s.SplitKey(1))
	}
}

func TestCyclicLevelAliases(t *testing.T) {
	r := testRegistry(t)
	for _, name := range []string{"node", "socket", "core"} {
		s, err := r.Lookup("mrr://cyclic/" + name)
		if err != nil {
			t.Fatalf("cyclic/%s: %v", name, err)
		}
		if len(s.Order) != 3 {
			t.Fatalf("cyclic/%s order %v", name, s.Order)
		}
	}
	// cyclic/node must be [0, 2, 1]: nodes fastest, then cores, sockets.
	s, _ := r.Lookup("mrr://cyclic/node")
	if !perm.Equal(s.Order, []int{0, 2, 1}) {
		t.Errorf("cyclic/node order = %v, want [0 2 1]", s.Order)
	}
	// cyclic/core is the identity enumeration (cores already vary fastest).
	s, _ = r.Lookup("mrr://cyclic/core")
	if !perm.Equal(s.Order, []int{2, 1, 0}) {
		t.Errorf("cyclic/core order = %v, want [2 1 0]", s.Order)
	}
}

func TestLookupShorthandAndErrors(t *testing.T) {
	r := testRegistry(t)
	s, err := r.Lookup("0-1-2")
	if err != nil {
		t.Fatal(err)
	}
	if s.URI != "mrr://order/0-1-2" {
		t.Errorf("shorthand resolved to %q", s.URI)
	}
	if _, err := r.Lookup("mrr://nope"); !errors.Is(err, ErrUnknownSet) {
		t.Errorf("unknown URI error = %v", err)
	}
	if _, err := r.Lookup("9-9-9"); !errors.Is(err, ErrUnknownSet) {
		t.Errorf("bad shorthand error = %v", err)
	}
}

func TestSetBindingMatchesReorder(t *testing.T) {
	r := testRegistry(t)
	s, err := r.Lookup("mrr://order/0-1-2")
	if err != nil {
		t.Fatal(err)
	}
	b := s.Binding()
	// binding[new] = old: new rank 4 sits on core 1 (Figure 2a).
	if b[4] != 1 {
		t.Errorf("binding[4] = %d, want 1", b[4])
	}
	if s.Size() != 16 {
		t.Errorf("Size = %d", s.Size())
	}
}

func TestCharacterize(t *testing.T) {
	r := testRegistry(t)
	s, err := r.Lookup("mrr://spread")
	if err != nil {
		t.Fatal(err)
	}
	ch, err := s.Characterize(4)
	if err != nil {
		t.Fatal(err)
	}
	if ch.RingCost != 9 {
		t.Errorf("spread ring cost = %d, want 9 (§3.3)", ch.RingCost)
	}
}

func TestByRingCost(t *testing.T) {
	r := testRegistry(t)
	uris, err := r.ByRingCost(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(uris) != 6 {
		t.Fatalf("%d uris", len(uris))
	}
	// Packed orders (ring cost 3) first, spread (9) last.
	first, _ := r.Lookup(uris[0])
	last, _ := r.Lookup(uris[len(uris)-1])
	cf, _ := first.Characterize(4)
	cl, _ := last.Characterize(4)
	if cf.RingCost > cl.RingCost {
		t.Errorf("ring-cost ordering violated: %d … %d", cf.RingCost, cl.RingCost)
	}
	if cf.RingCost != 3 || cl.RingCost != 9 {
		t.Errorf("ring cost extremes %d, %d; want 3, 9", cf.RingCost, cl.RingCost)
	}
}

func TestRegistryDepthLimit(t *testing.T) {
	if _, err := NewRegistry(topology.MustNew(2, 2, 2, 2, 2, 2, 2)); err == nil {
		t.Error("depth-7 registry accepted")
	}
}
