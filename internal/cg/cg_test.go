package cg

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/slurm"
)

func TestGenerateSPD(t *testing.T) {
	prob := ClassS()
	m := prob.Generate()
	if m.N != prob.N {
		t.Fatalf("N = %d", m.N)
	}
	// Symmetry: every (i,j,v) must have (j,i,v).
	entries := map[[2]int32]float64{}
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			entries[[2]int32{int32(i), m.ColIdx[k]}] = m.Values[k]
		}
	}
	for key, v := range entries {
		if w, ok := entries[[2]int32{key[1], key[0]}]; !ok || math.Abs(v-w) > 1e-12 {
			t.Fatalf("asymmetric entry (%d,%d): %v vs %v", key[0], key[1], v, w)
		}
	}
	// Diagonal dominance.
	for i := 0; i < m.N; i++ {
		var diag, off float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if int(m.ColIdx[k]) == i {
				diag = m.Values[k]
			} else {
				off += math.Abs(m.Values[k])
			}
		}
		if diag <= off {
			t.Fatalf("row %d not diagonally dominant: %v vs %v", i, diag, off)
		}
	}
}

func TestSequentialConverges(t *testing.T) {
	res := Sequential(ClassS())
	if res.Residual > 1e-6 {
		t.Errorf("residual = %v", res.Residual)
	}
	if res.Zeta <= ClassS().Lambda {
		t.Errorf("zeta = %v", res.Zeta)
	}
}

func TestDistributedMatchesSequential(t *testing.T) {
	prob := Problem{N: 1024, NNZPerRow: 6, OuterIters: 2, InnerIters: 12, Lambda: 12, Seed: 77}
	want := Sequential(prob)
	spec := cluster.LUMINode()
	for _, p := range []int{1, 2, 4, 8} {
		binding := make([]int, p)
		for i := range binding {
			binding[i] = i
		}
		got, err := Run(spec, binding, prob, mpi.Config{})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if math.Abs(got.Zeta-want.Zeta) > 1e-9 {
			t.Errorf("p=%d: zeta %v, want %v", p, got.Zeta, want.Zeta)
		}
		if math.Abs(got.Residual-want.Residual) > 1e-9*(1+want.Residual) {
			t.Errorf("p=%d: residual %v, want %v", p, got.Residual, want.Residual)
		}
		if got.Duration <= 0 {
			t.Errorf("p=%d: duration %v", p, got.Duration)
		}
	}
}

func TestRowsMustDivide(t *testing.T) {
	prob := Problem{N: 10, NNZPerRow: 2, OuterIters: 1, InnerIters: 2, Lambda: 5, Seed: 1}
	if _, err := Run(cluster.LUMINode(), []int{0, 1, 2}, prob, mpi.Config{}); err == nil {
		t.Error("non-dividing rank count accepted")
	}
	if _, err := Run(cluster.LUMINode(), nil, prob, mpi.Config{}); err == nil {
		t.Error("empty binding accepted")
	}
}

// Figure 9's mechanism: with 8 ranks on one LUMI node, selecting one core
// per L3 cache of the first socket (order [2,1,0,3]) must beat the Slurm
// default block selection (cores 0-7 inside a single L3).
func TestCoreSelectionAffectsDuration(t *testing.T) {
	prob := Problem{N: 8192, NNZPerRow: 8, OuterIters: 1, InnerIters: 15, Lambda: 15, Seed: 5}
	node := cluster.LUMINodeHierarchy()
	spec := cluster.LUMINode()

	packed := []int{0, 1, 2, 3, 4, 5, 6, 7} // Slurm default: one L3
	perL3, err := slurm.MapCPU(node, []int{2, 1, 0, 3}, 8)
	if err != nil {
		t.Fatal(err)
	}
	resPacked, err := Run(spec, packed, prob, mpi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	resSpread, err := Run(spec, perL3, prob, mpi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resPacked.Zeta-resSpread.Zeta) > 1e-9 {
		t.Errorf("zeta depends on mapping: %v vs %v", resPacked.Zeta, resSpread.Zeta)
	}
	if resSpread.Duration >= resPacked.Duration {
		t.Errorf("one-per-L3 (%v) should beat packed default (%v)",
			resSpread.Duration, resPacked.Duration)
	}
}

// Strong scaling: more processes help up to a point, then flatten — and a
// good 8-core selection beats a bad 32-core one (§4.3's headline).
func TestStrongScalingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep")
	}
	prob := Problem{N: 16384, NNZPerRow: 8, OuterIters: 1, InnerIters: 15, Lambda: 15, Seed: 5}
	node := cluster.LUMINodeHierarchy()
	spec := cluster.LUMINode()
	duration := func(binding []int) float64 {
		res, err := Run(spec, binding, prob, mpi.Config{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Duration
	}
	best8, err := slurm.MapCPU(node, []int{2, 1, 0, 3}, 8) // one per L3, socket 0 first
	if err != nil {
		t.Fatal(err)
	}
	packed2 := []int{0, 1}
	packed32 := make([]int, 32)
	for i := range packed32 {
		packed32[i] = i
	}
	d2 := duration(packed2)
	d8 := duration(best8)
	d32 := duration(packed32)
	if d8 >= d2 {
		t.Errorf("8 well-placed ranks (%v) should beat 2 packed ranks (%v)", d8, d2)
	}
	// §4.3: "CG can achieve better performance using only one fourth of
	// the cores with a better mapping": a good 8-core selection is
	// competitive with the packed 32-core default.
	if d8 > d32*1.5 {
		t.Errorf("good 8-core selection (%v) should be within 1.5× of packed 32 cores (%v)", d8, d32)
	}
}
