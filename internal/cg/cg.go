// Package cg implements the conjugate-gradient benchmark of the paper's
// strong-scaling experiment (§4.3), modelled on the NAS Parallel Benchmarks
// CG kernel: repeated CG solves against a random sparse symmetric
// positive-definite matrix, with an outer eigenvalue (ζ) estimation loop.
//
// The distributed solver runs real numerics through the simulated MPI
// runtime — rows are block-distributed, the matvec gathers the input
// vector with MPI_Allgather and the dot products use MPI_Allreduce — while
// every local kernel charges the roofline compute model, so the measured
// virtual time reflects how the selected cores share L3/NUMA/socket memory
// bandwidth. That sharing is exactly what Figure 9 probes with different
// --cpu-bind=map_cpu core selections.
//
// Substitution note: NPB's CG distributes over a 2D process grid with
// pairwise reductions; on a single node the 1D row-block decomposition
// used here has the same compute/communication balance and keeps the
// numerics bit-verifiable against the sequential solver.
package cg

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/obs"
)

// Problem describes one benchmark instance (an NPB class analogue).
type Problem struct {
	N          int // matrix dimension
	NNZPerRow  int // off-diagonal nonzeros per row before symmetrization
	OuterIters int // ζ-estimation iterations
	InnerIters int // CG iterations per outer step (NPB uses 25)
	Lambda     float64
	Seed       int64
}

// ClassS is a small verification-sized instance.
func ClassS() Problem {
	return Problem{N: 1400, NNZPerRow: 7, OuterIters: 3, InnerIters: 15, Lambda: 10, Seed: 314159}
}

// ClassCScaled is the strong-scaling instance: NPB class C shrunk to keep
// the real numerics tractable while remaining firmly memory-bound per
// core. The paper's absolute durations differ; the scaling shape is
// preserved because both compute and communication scale with N/p.
func ClassCScaled() Problem {
	return Problem{N: 32768, NNZPerRow: 11, OuterIters: 3, InnerIters: 25, Lambda: 20, Seed: 271828}
}

// SparseMatrix is a symmetric positive-definite matrix in CSR form.
type SparseMatrix struct {
	N      int
	RowPtr []int32
	ColIdx []int32
	Values []float64
}

// NNZ returns the number of stored entries.
func (m *SparseMatrix) NNZ() int { return len(m.Values) }

// Generate builds the random SPD matrix of the problem: a symmetrized
// random sparsity pattern with a diagonally dominant main diagonal
// (rowsum + λ), in the spirit of NPB's makea.
func (p Problem) Generate() *SparseMatrix {
	rng := rand.New(rand.NewSource(p.Seed))
	n := p.N
	cols := make([]map[int32]float64, n)
	for i := range cols {
		cols[i] = make(map[int32]float64, 2*p.NNZPerRow)
	}
	for i := 0; i < n; i++ {
		for k := 0; k < p.NNZPerRow; k++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			v := rng.Float64() - 0.5
			cols[i][int32(j)] += v
			cols[j][int32(i)] += v // keep symmetry
		}
	}
	m := &SparseMatrix{N: n, RowPtr: make([]int32, n+1)}
	for i := 0; i < n; i++ {
		// Diagonal dominance ⇒ positive definiteness.
		var rowAbs float64
		idx := make([]int32, 0, len(cols[i])+1)
		for j := range cols[i] {
			idx = append(idx, j)
		}
		sortInt32(idx)
		for _, j := range idx {
			rowAbs += math.Abs(cols[i][j])
		}
		diag := rowAbs + p.Lambda
		inserted := false
		for _, j := range idx {
			if !inserted && j > int32(i) {
				m.ColIdx = append(m.ColIdx, int32(i))
				m.Values = append(m.Values, diag)
				inserted = true
			}
			m.ColIdx = append(m.ColIdx, j)
			m.Values = append(m.Values, cols[i][j])
		}
		if !inserted {
			m.ColIdx = append(m.ColIdx, int32(i))
			m.Values = append(m.Values, diag)
		}
		m.RowPtr[i+1] = int32(len(m.Values))
	}
	return m
}

func sortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// MatVec computes y = A·x for rows [lo, hi), reading the full x.
func (m *SparseMatrix) MatVec(lo, hi int, x, y []float64) {
	for i := lo; i < hi; i++ {
		var s float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Values[k] * x[m.ColIdx[k]]
		}
		y[i-lo] = s
	}
}

// Result is one benchmark run's outcome.
type Result struct {
	Duration float64 // virtual seconds of the timed section
	Zeta     float64 // NPB-style eigenvalue estimate
	Residual float64 // final ‖r‖ of the last CG solve
}

// Sequential runs the benchmark without MPI (the verification reference).
func Sequential(prob Problem) Result {
	m := prob.Generate()
	n := m.N
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	var zeta, res float64
	z := make([]float64, n)
	r := make([]float64, n)
	p := make([]float64, n)
	q := make([]float64, n)
	for outer := 0; outer < prob.OuterIters; outer++ {
		res = cgSolve(m, 0, n, x, z, r, p, q, prob.InnerIters, nil, nil)
		// ζ = λ + 1/(xᵀz); then x = z/‖z‖.
		var xz, zz float64
		for i := 0; i < n; i++ {
			xz += x[i] * z[i]
			zz += z[i] * z[i]
		}
		zeta = prob.Lambda + 1/xz
		norm := math.Sqrt(zz)
		for i := 0; i < n; i++ {
			x[i] = z[i] / norm
		}
	}
	return Result{Zeta: zeta, Residual: res}
}

// cgSolve performs InnerIters CG iterations solving A·z = x, writing z and
// returning the final residual norm. When comm is non-nil the caller is a
// distributed rank owning rows [lo, hi), exchanging via allgather/allreduce
// through the communicator; vectors z, r, p, q are then hi-lo long and x is
// the full vector. The distributed and sequential paths share this code so
// the numerics are identical by construction.
func cgSolve(m *SparseMatrix, lo, hi int, x []float64, z, r, p, q []float64, iters int, rk *mpi.Rank, comm *mpi.Comm) float64 {
	local := hi - lo
	for i := 0; i < local; i++ {
		z[i] = 0
		r[i] = x[lo+i]
		p[i] = r[i]
	}
	rho := dotDist(r, r, rk, comm)
	full := x
	if comm != nil {
		full = make([]float64, m.N)
	}
	for it := 0; it < iters; it++ {
		pFull := gatherDist(p, full, lo, rk, comm)
		chargeMatvec(m, lo, hi, rk)
		m.MatVec(lo, hi, pFull, q)
		d := dotDist(p, q, rk, comm)
		alpha := rho / d
		for i := 0; i < local; i++ {
			z[i] += alpha * p[i]
			r[i] -= alpha * q[i]
		}
		chargeVecOps(local, 2, rk)
		rhoNew := dotDist(r, r, rk, comm)
		beta := rhoNew / rho
		rho = rhoNew
		for i := 0; i < local; i++ {
			p[i] = r[i] + beta*p[i]
		}
		chargeVecOps(local, 1, rk)
	}
	// Final residual ‖x − A·z‖ (NPB computes it once per outer step).
	zFull := gatherDist(z, full, lo, rk, comm)
	chargeMatvec(m, lo, hi, rk)
	m.MatVec(lo, hi, zFull, q)
	var sum float64
	for i := 0; i < local; i++ {
		d := x[lo+i] - q[i]
		sum += d * d
	}
	if comm != nil {
		out := comm.Allreduce(rk, mpi.F64Buf([]float64{sum}), mpi.OpSum)
		sum = out.Data[0]
	}
	return math.Sqrt(sum)
}

// dotDist is a distributed dot product (local partial + Allreduce).
func dotDist(a, b []float64, rk *mpi.Rank, comm *mpi.Comm) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	chargeVecOps(len(a), 1, rk)
	if comm == nil {
		return s
	}
	out := comm.Allreduce(rk, mpi.F64Buf([]float64{s}), mpi.OpSum)
	return out.Data[0]
}

// gatherDist assembles the full vector from the block-distributed v.
// Sequential callers get v back unchanged.
func gatherDist(v, full []float64, lo int, rk *mpi.Rank, comm *mpi.Comm) []float64 {
	if comm == nil {
		return v
	}
	parts := comm.Allgather(rk, mpi.F64Buf(v))
	off := 0
	for _, part := range parts {
		copy(full[off:], part.Data)
		off += len(part.Data)
	}
	return full
}

// chargeMatvec charges the roofline for the local sparse matvec: 2 flops
// per nonzero, streaming the nonzeros (value + column index) and the dense
// vectors.
func chargeMatvec(m *SparseMatrix, lo, hi int, rk *mpi.Rank) {
	if rk == nil {
		return
	}
	nnz := int(m.RowPtr[hi] - m.RowPtr[lo])
	rows := hi - lo
	flops := 2 * float64(nnz)
	bytes := float64(nnz)*12 + float64(rows)*8*2 + float64(m.N)*8*0.25
	rk.Compute(flops, bytes)
}

// chargeVecOps charges n-element vector updates (k fused axpy-like ops).
func chargeVecOps(n, k int, rk *mpi.Rank) {
	if rk == nil {
		return
	}
	rk.Compute(2*float64(n*k), float64(n*k)*8*3)
}

// Run executes the distributed benchmark on the machine with the given
// rank→core binding (the map_cpu list of §3.4) and returns the timed
// duration, ζ, and final residual. The matrix is generated once and shared
// read-only by all ranks, as NPB's per-rank makea produces identical data.
func Run(spec netmodel.Spec, binding []int, prob Problem, cfg mpi.Config) (Result, error) {
	nprocs := len(binding)
	if nprocs == 0 {
		return Result{}, fmt.Errorf("cg: empty binding")
	}
	if prob.N%nprocs != 0 {
		return Result{}, fmt.Errorf("cg: %d rows do not divide over %d ranks", prob.N, nprocs)
	}
	m := prob.Generate()
	var result Result
	sc := cfg.Obs
	_, err := mpi.Run(spec, binding, cfg, func(r *mpi.Rank) {
		comm := r.World()
		local := prob.N / nprocs
		lo := r.ID() * local
		hi := lo + local
		x := make([]float64, prob.N)
		for i := range x {
			x[i] = 1
		}
		z := make([]float64, local)
		res := make([]float64, local)
		p := make([]float64, local)
		q := make([]float64, local)

		comm.Barrier(r)
		start := r.Now()
		phases := r.ID() == 0
		if phases {
			sc.Phase("cg.setup", 0, start, obs.Arg{Key: "ranks", Val: int64(nprocs)})
		}
		var zeta, finalRes float64
		for outer := 0; outer < prob.OuterIters; outer++ {
			outerStart := r.Now()
			finalRes = cgSolve(m, lo, hi, x, z, res, p, q, prob.InnerIters, r, comm)
			var xz, zz float64
			for i := 0; i < local; i++ {
				xz += x[lo+i] * z[i]
				zz += z[i] * z[i]
			}
			sums := comm.Allreduce(r, mpi.F64Buf([]float64{xz, zz}), mpi.OpSum)
			zeta = prob.Lambda + 1/sums.Data[0]
			norm := math.Sqrt(sums.Data[1])
			// x ← z/‖z‖, assembled from every rank's block.
			parts := comm.Allgather(r, mpi.F64Buf(z))
			off := 0
			for _, part := range parts {
				for i := range part.Data {
					x[off+i] = part.Data[i] / norm
				}
				off += len(part.Data)
			}
			chargeVecOps(local, 1, r)
			if phases {
				sc.Phase("cg.outer", outerStart, r.Now(), obs.Arg{Key: "outer", Val: int64(outer)})
			}
		}
		comm.Barrier(r)
		if phases {
			sc.Phase("cg.timed", start, r.Now(), obs.Arg{Key: "outer_iters", Val: int64(prob.OuterIters)})
		}
		if r.ID() == 0 {
			result = Result{Duration: r.Now() - start, Zeta: zeta, Residual: finalRes}
		}
	})
	if err != nil {
		return Result{}, err
	}
	return result, nil
}
