// Runners for the application experiments (Figures 8 and 9).

package figures

import (
	"repro/internal/cg"
	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/splatt"
)

// RunFigure8 measures the Splatt CPD duration for every configured order.
func RunFigure8(cfg Figure8Config) ([]Figure8Result, error) {
	out := make([]Figure8Result, 0, len(cfg.Orders))
	for _, sigma := range cfg.Orders {
		res, err := splatt.Run(splatt.Config{
			Spec:      cluster.Hydra(cfg.Nodes, cfg.NICs),
			Hierarchy: cluster.HydraHierarchy(cfg.Nodes),
			Order:     sigma,
			Grid:      cfg.Grid,
			Tensor:    cfg.Tensor,
			Rank:      16,
			Iters:     cfg.Iters,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, Figure8Result{
			Order:      append([]int(nil), sigma...),
			Duration:   res.Duration,
			Alltoall16: res.Trace.MaxTimeIn("Alltoall", 16),
		})
	}
	return out, nil
}

// RunFigure9 measures the CG duration for every distinct core selection of
// every process count.
func RunFigure9(procs []int, prob cg.Problem) (map[int][]Figure9Selection, error) {
	return RunFigure9MPI(procs, prob, mpi.Config{})
}

// RunFigure9MPI is RunFigure9 with an explicit MPI runtime configuration,
// so callers can attach tracers or an observability scope to every run.
func RunFigure9MPI(procs []int, prob cg.Problem, mcfg mpi.Config) (map[int][]Figure9Selection, error) {
	spec := cluster.LUMINode()
	out := map[int][]Figure9Selection{}
	for _, p := range procs {
		sels, err := DistinctSelections(p)
		if err != nil {
			return nil, err
		}
		for i := range sels {
			res, err := cg.Run(spec, sels[i].Cores, prob, mcfg)
			if err != nil {
				return nil, err
			}
			sels[i].Duration = res.Duration
		}
		out[p] = sels
	}
	return out, nil
}
