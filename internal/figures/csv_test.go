package figures

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/cg"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

func TestSeriesCSV(t *testing.T) {
	mb := MicroBench{Name: "figure3"}
	series := []bench.Series{{
		Order: []int{0, 1, 2, 3},
		Char:  metrics.Characterization{Order: []int{0, 1, 2, 3}, RingCost: 60},
		OneComm: []bench.Point{
			{Size: 1 << 20, Bandwidth: 1e9, P10: 0.9e9, P90: 1.1e9},
		},
		AllComms: []bench.Point{
			{Size: 1 << 20, Bandwidth: 2e8, P10: 1.8e8, P90: 2.2e8},
		},
	}}
	out, err := SeriesCSV(mb, series)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d CSV lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "figure,scenario,order,ring_cost") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "figure3,one,0-1-2-3,60,1048576,1e+09") {
		t.Errorf("row = %q", lines[1])
	}
	if !strings.Contains(lines[2], "figure3,all,") {
		t.Errorf("row = %q", lines[2])
	}
}

func TestFigure8CSV(t *testing.T) {
	cfg := Figure8Config{NICs: 2, Grid: tensor.Grid{4, 4, 4}}
	out, err := Figure8CSV(cfg, []Figure8Result{
		{Order: []int{1, 3, 2, 0}, Duration: 0.0325, Alltoall16: 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "2,1-3-2-0,0.0325,0.01") {
		t.Errorf("csv = %q", out)
	}
}

func TestFigure9CSV(t *testing.T) {
	_ = cg.Problem{}
	out, err := Figure9CSV(map[int][]Figure9Selection{
		8: {{Order: []int{2, 1, 0, 3}, Cores: []int{0, 8, 16, 24}, Duration: 0.005}},
		2: {{Order: []int{0, 1, 2, 3}, Cores: []int{0, 64}, Duration: 0.01}},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines", len(lines))
	}
	// Sorted by process count.
	if !strings.HasPrefix(lines[1], "2,0-1-2-3,") || !strings.HasPrefix(lines[2], "8,2-1-0-3,") {
		t.Errorf("rows out of order: %v", lines)
	}
	if !strings.Contains(lines[2], "\"0,8,16,24\"") && !strings.Contains(lines[2], "0,8,16,24") {
		t.Errorf("core list missing: %q", lines[2])
	}
}
