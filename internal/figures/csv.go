// CSV emission for downstream plotting of the regenerated figures.

package figures

import (
	"encoding/csv"
	"fmt"
	"strings"

	"repro/internal/bench"
	"repro/internal/perm"
)

// SeriesCSV renders a micro-benchmark figure's measurements as CSV with
// the columns figure, scenario, order, ring_cost, size_bytes,
// bandwidth_Bps, p10_Bps, p90_Bps.
func SeriesCSV(mb MicroBench, series []bench.Series) (string, error) {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	if err := w.Write([]string{
		"figure", "scenario", "order", "ring_cost", "size_bytes",
		"bandwidth_Bps", "p10_Bps", "p90_Bps",
	}); err != nil {
		return "", err
	}
	emit := func(scenario string, s bench.Series, pts []bench.Point) error {
		for _, pt := range pts {
			rec := []string{
				mb.Name,
				scenario,
				perm.Format(s.Order),
				fmt.Sprint(s.Char.RingCost),
				fmt.Sprint(pt.Size),
				fmt.Sprintf("%.6g", pt.Bandwidth),
				fmt.Sprintf("%.6g", pt.P10),
				fmt.Sprintf("%.6g", pt.P90),
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
		return nil
	}
	for _, s := range series {
		if err := emit("one", s, s.OneComm); err != nil {
			return "", err
		}
		if err := emit("all", s, s.AllComms); err != nil {
			return "", err
		}
	}
	w.Flush()
	return sb.String(), w.Error()
}

// Figure8CSV renders the Splatt bars as CSV.
func Figure8CSV(cfg Figure8Config, results []Figure8Result) (string, error) {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	if err := w.Write([]string{"nics", "order", "duration_s", "alltoallv16_s"}); err != nil {
		return "", err
	}
	for _, r := range results {
		rec := []string{
			fmt.Sprint(cfg.NICs),
			perm.Format(r.Order),
			fmt.Sprintf("%.6g", r.Duration),
			fmt.Sprintf("%.6g", r.Alltoall16),
		}
		if err := w.Write(rec); err != nil {
			return "", err
		}
	}
	w.Flush()
	return sb.String(), w.Error()
}

// Figure9CSV renders the CG bars as CSV.
func Figure9CSV(results map[int][]Figure9Selection) (string, error) {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	if err := w.Write([]string{"procs", "order", "cores", "duration_s"}); err != nil {
		return "", err
	}
	procs := make([]int, 0, len(results))
	for p := range results {
		procs = append(procs, p)
	}
	sortInts(procs)
	for _, p := range procs {
		for _, s := range results[p] {
			rec := []string{
				fmt.Sprint(p),
				perm.Format(s.Order),
				compactCores(s.Cores),
				fmt.Sprintf("%.6g", s.Duration),
			}
			if err := w.Write(rec); err != nil {
				return "", err
			}
		}
	}
	w.Flush()
	return sb.String(), w.Error()
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
