package figures

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/cg"
	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/perm"
	"repro/internal/tensor"
)

func TestTable1Render(t *testing.T) {
	out := Table1()
	for _, want := range []string{
		"0-1-2      [1 0 2]                [2 2 4]              9",
		"0-2-1      [1 2 0]                [2 4 2]              5",
		"2-1-0      [2 0 1]                [4 2 2]              10",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure2Render(t *testing.T) {
	out := Figure2()
	checks := []string{
		"order 0-1-2 (cyclic:cyclic)",
		"order 1-0-2 (Not possible)",
		"order 2-0-1 (plane=4)",
		"order 2-1-0 (block:block)",
		"node0 socket0:  0  4  8 12", // Figure 2a first row
		"node0 socket0:  0  1  2  3", // Figures 2e/2f first row
	}
	for _, want := range checks {
		if !strings.Contains(out, want) {
			t.Errorf("Figure2 output missing %q", want)
		}
	}
}

func TestMicroBenchConfigs(t *testing.T) {
	sizes := []int64{1 << 20}
	mbs := MicroBenches(sizes)
	wantComm := map[int]int{3: 16, 4: 128, 5: 16, 6: 64, 7: 256}
	wantRanks := map[int]int{3: 512, 4: 512, 5: 2048, 6: 512, 7: 2048}
	for fig, mb := range mbs {
		if mb.Config.CommSize != wantComm[fig] {
			t.Errorf("figure %d: comm size %d, want %d", fig, mb.Config.CommSize, wantComm[fig])
		}
		if got := mb.Config.Hierarchy.Size(); got != wantRanks[fig] {
			t.Errorf("figure %d: %d ranks, want %d", fig, got, wantRanks[fig])
		}
		for _, sigma := range mb.Config.Orders {
			if !perm.IsPermutation(sigma) {
				t.Errorf("figure %d: bad order %v", fig, sigma)
			}
		}
	}
}

// The number of distinct map_cpu selections per process count must match
// the bar counts of Figure 9.
func TestFigure9SelectionCounts(t *testing.T) {
	want := map[int]int{2: 4, 4: 8, 8: 12, 16: 18, 32: 22, 64: 24, 128: 24}
	for p, n := range want {
		sels, err := DistinctSelections(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(sels) != n {
			t.Errorf("p=%d: %d distinct selections, want %d", p, len(sels), n)
		}
	}
}

func TestRenderSeriesSmoke(t *testing.T) {
	mb := MicroBench{
		Name:     "test",
		Caption:  "caption",
		AllLabel: "2 simultaneous comm.",
		Config: bench.Config{
			Spec:      cluster.Hydra(2, 1),
			Hierarchy: cluster.HydraHierarchy(2),
			CommSize:  32,
			Coll:      bench.Alltoall,
			Orders:    [][]int{{3, 2, 1, 0}},
			Sizes:     []int64{256 << 10},
			Iters:     1,
		},
	}
	series, err := bench.Run(mb.Config)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderSeries(mb, series)
	if !strings.Contains(out, "256 KB") || !strings.Contains(out, "3-2-1-0") {
		t.Errorf("RenderSeries output:\n%s", out)
	}
}

func TestRunFigure8Small(t *testing.T) {
	if testing.Short() {
		t.Skip("application run")
	}
	cfg := Figure8Config{
		Nodes:  8,
		NICs:   1,
		Orders: [][]int{{1, 3, 2, 0}, {3, 2, 1, 0}},
		Tensor: tensor.Synthetic([3]int{100000, 1000, 1000}, 300000, 3),
		Grid:   tensor.Grid{16, 4, 4},
		Iters:  1,
	}
	results, err := RunFigure8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	out := RenderFigure8(cfg, results)
	if !strings.Contains(out, "Slurm default mapping") || !strings.Contains(out, "best") {
		t.Errorf("RenderFigure8 output:\n%s", out)
	}
}

func TestRunFigure9Small(t *testing.T) {
	if testing.Short() {
		t.Skip("application run")
	}
	prob := cg.Problem{N: 4096, NNZPerRow: 6, OuterIters: 1, InnerIters: 8, Lambda: 12, Seed: 3}
	res, err := RunFigure9([]int{2, 8}, prob)
	if err != nil {
		t.Fatal(err)
	}
	if len(res[2]) != 4 || len(res[8]) != 12 {
		t.Fatalf("selection counts: %d, %d", len(res[2]), len(res[8]))
	}
	out := RenderFigure9(8, res[8])
	if !strings.Contains(out, "8 proc.") || !strings.Contains(out, "Slurm default") {
		t.Errorf("RenderFigure9 output:\n%s", out)
	}
	for _, s := range res[8] {
		if s.Duration <= 0 {
			t.Errorf("selection %v: duration %v", s.Order, s.Duration)
		}
	}
}

func TestCompactCores(t *testing.T) {
	cases := []struct {
		in   []int
		want string
	}{
		{[]int{0, 1, 2, 3}, "0-3"},
		{[]int{0, 8, 16, 24}, "0,8,16,24"},
		{[]int{0, 1, 8, 9}, "0-1,8-9"},
		{[]int{5}, "5"},
	}
	for _, c := range cases {
		if got := compactCores(c.in); got != c.want {
			t.Errorf("compactCores(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestLegendCharacterizations(t *testing.T) {
	out := LegendCharacterizations()
	// Spot-check the paper's legend strings.
	for _, want := range []string{
		"0-1-2-3 (60 - 0.0, 0.0, 0.0, 100.0)",
		"4-3-2-1-0 (16 - 46.7, 53.3, 0.0, 0.0, 0.0)",
		"3-2-1-0 (74 - 11.1, 12.7, 25.4, 50.8)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("legend output missing %q", want)
		}
	}
}

func TestMPIBase(t *testing.T) {
	if MPIBase() != (mpi.Config{}) {
		t.Error("MPIBase should be the zero config")
	}
}
