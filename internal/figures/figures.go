// Package figures defines one runnable configuration per table and figure
// of the paper's evaluation (§4), shared by the command-line tools and the
// benchmark harness in bench_test.go. Each figure function returns the
// exact setup of the paper — machines, communicator sizes, orders from the
// legends — and the Render helpers print the regenerated rows/series.
package figures

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/mixedradix"
	"repro/internal/mpi"
	"repro/internal/perm"
	"repro/internal/plot"
	"repro/internal/reorder"
	"repro/internal/slurm"
	"repro/internal/tensor"
	"repro/internal/topology"
)

// mustOrders parses legend order names.
func mustOrders(names ...string) [][]int {
	out := make([][]int, len(names))
	for i, n := range names {
		sigma, err := perm.Parse(n)
		if err != nil {
			panic(err)
		}
		out[i] = sigma
	}
	return out
}

// Table1 regenerates Table 1: rank 10 on ⟦2,2,4⟧ under all six orders.
func Table1() string {
	h := []int{2, 2, 4}
	c := mixedradix.Decompose(h, 10)
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — rank 10 on ⟦2,2,4⟧ (coordinates %v)\n", c)
	fmt.Fprintf(&b, "%-10s %-22s %-20s %s\n", "order", "permuted coordinates", "permuted hierarchy", "new rank")
	for _, sigma := range perm.All(3) {
		pc := mixedradix.PermutedCoordinates(c, sigma)
		ph := mixedradix.PermutedHierarchy(h, sigma)
		nr := mixedradix.Compose(h, c, sigma)
		fmt.Fprintf(&b, "%-10s %-22s %-20s %d\n",
			perm.Format(sigma), fmt.Sprint(pc), fmt.Sprint(ph), nr)
	}
	return b.String()
}

// Figure2 regenerates Figure 2: the reordered rank layout of every order
// of ⟦2,2,4⟧ with the Slurm --distribution caption.
func Figure2() string {
	h := topology.MustNew(2, 2, 4)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 — all orders of %s, 4 subcommunicators of 4\n", h)
	for _, sigma := range perm.All(3) {
		ro, err := reorder.New(h, sigma)
		if err != nil {
			panic(err)
		}
		caption := "Not possible"
		if d, ok := slurm.DistributionForOrder(h, sigma); ok {
			caption = d.String()
		}
		fmt.Fprintf(&b, "order %s (%s):\n", perm.Format(sigma), caption)
		for node := 0; node < 2; node++ {
			for socket := 0; socket < 2; socket++ {
				row := make([]string, 4)
				for core := 0; core < 4; core++ {
					old := node*8 + socket*4 + core
					row[core] = fmt.Sprintf("%2d", ro.NewRank(old))
				}
				fmt.Fprintf(&b, "  node%d socket%d: %s\n", node, socket, strings.Join(row, " "))
			}
		}
	}
	return b.String()
}

// MicroBench is the configuration of one of Figures 3–7.
type MicroBench struct {
	Name     string
	Caption  string
	Config   bench.Config
	AllLabel string // e.g. "32 simultaneous comm."
}

// scaleNodes lets callers shrink the clusters for quick runs; 1 = paper
// scale (16 nodes).
func hydraBench(nodes int) (bench.Config, int) {
	return bench.Config{
		Spec:      cluster.Hydra(nodes, 1),
		Hierarchy: cluster.HydraHierarchy(nodes),
		Iters:     2,
	}, nodes * 32
}

func lumiBench(nodes int) (bench.Config, int) {
	return bench.Config{
		Spec:      cluster.LUMI(nodes),
		Hierarchy: cluster.LUMIHierarchy(nodes),
		Iters:     2,
	}, nodes * 128
}

// Figure3 — 16 Hydra nodes, 512 ranks, MPI_Alltoall, 16 ranks/comm.
func Figure3(sizes []int64) MicroBench {
	cfg, n := hydraBench(16)
	cfg.CommSize = 16
	cfg.Coll = bench.Alltoall
	cfg.Orders = mustOrders("0-1-2-3", "2-1-0-3", "1-3-0-2", "1-3-2-0", "3-1-0-2", "3-2-1-0")
	cfg.Sizes = sizes
	return MicroBench{
		Name:     "figure3",
		Caption:  fmt.Sprintf("Figure 3 — %d Hydra nodes, %d ranks, Alltoall, 16 ranks/comm", 16, n),
		Config:   cfg,
		AllLabel: fmt.Sprintf("%d simultaneous comm.", n/16),
	}
}

// Figure4 — Hydra, Alltoall, 128 ranks/comm.
func Figure4(sizes []int64) MicroBench {
	cfg, n := hydraBench(16)
	cfg.CommSize = 128
	cfg.Coll = bench.Alltoall
	cfg.Orders = mustOrders("0-1-2-3", "2-1-0-3", "1-3-0-2", "3-1-0-2", "1-3-2-0", "3-2-1-0")
	cfg.Sizes = sizes
	return MicroBench{
		Name:     "figure4",
		Caption:  fmt.Sprintf("Figure 4 — 16 Hydra nodes, %d ranks, Alltoall, 128 ranks/comm", n),
		Config:   cfg,
		AllLabel: fmt.Sprintf("%d simultaneous comm.", n/128),
	}
}

// Figure5 — 16 LUMI nodes, 2048 ranks, Alltoall, 16 ranks/comm.
func Figure5(sizes []int64) MicroBench {
	cfg, n := lumiBench(16)
	cfg.CommSize = 16
	cfg.Coll = bench.Alltoall
	cfg.Orders = mustOrders("0-1-2-3-4", "1-2-3-0-4", "3-2-1-4-0", "3-4-0-1-2", "4-3-2-1-0")
	cfg.Sizes = sizes
	return MicroBench{
		Name:     "figure5",
		Caption:  fmt.Sprintf("Figure 5 — 16 LUMI nodes, %d ranks, Alltoall, 16 ranks/comm", n),
		Config:   cfg,
		AllLabel: fmt.Sprintf("%d simultaneous comm.", n/16),
	}
}

// Figure6 — Hydra, Allreduce, 64 ranks/comm.
func Figure6(sizes []int64) MicroBench {
	cfg, n := hydraBench(16)
	cfg.CommSize = 64
	cfg.Coll = bench.Allreduce
	cfg.Orders = mustOrders("0-1-2-3", "2-1-0-3", "1-3-0-2", "3-1-0-2", "1-3-2-0", "3-2-1-0")
	cfg.Sizes = sizes
	return MicroBench{
		Name:     "figure6",
		Caption:  fmt.Sprintf("Figure 6 — 16 Hydra nodes, %d ranks, Allreduce, 64 ranks/comm", n),
		Config:   cfg,
		AllLabel: fmt.Sprintf("%d simultaneous comm.", n/64),
	}
}

// Figure7 — LUMI, Allgather, 256 ranks/comm.
func Figure7(sizes []int64) MicroBench {
	cfg, n := lumiBench(16)
	cfg.CommSize = 256
	cfg.Coll = bench.Allgather
	cfg.Orders = mustOrders("0-1-2-3-4", "1-2-3-0-4", "3-4-0-1-2", "3-2-1-4-0", "4-3-2-1-0")
	cfg.Sizes = sizes
	return MicroBench{
		Name:     "figure7",
		Caption:  fmt.Sprintf("Figure 7 — 16 LUMI nodes, %d ranks, Allgather, 256 ranks/comm", n),
		Config:   cfg,
		AllLabel: fmt.Sprintf("%d simultaneous comm.", n/256),
	}
}

// MicroBenches returns figures 3–7 keyed by number.
func MicroBenches(sizes []int64) map[int]MicroBench {
	return map[int]MicroBench{
		3: Figure3(sizes),
		4: Figure4(sizes),
		5: Figure5(sizes),
		6: Figure6(sizes),
		7: Figure7(sizes),
	}
}

// RenderSeries prints the two curve families of a micro-benchmark figure.
func RenderSeries(mb MicroBench, series []bench.Series) string {
	var b strings.Builder
	fmt.Fprintln(&b, mb.Caption)
	fmt.Fprintln(&b, "legend: order (ring cost - % of process pairs per level)")
	for _, s := range series {
		fmt.Fprintf(&b, "  %s\n", s.Char)
	}
	render := func(title string, pick func(bench.Series) []bench.Point) {
		fmt.Fprintf(&b, "%s — bandwidth (MB/s)\n", title)
		fmt.Fprintf(&b, "%-12s", "size")
		for _, s := range series {
			fmt.Fprintf(&b, "%12s", perm.Format(s.Order))
		}
		fmt.Fprintln(&b)
		for i := range pick(series[0]) {
			fmt.Fprintf(&b, "%-12s", sizeLabel(pick(series[0])[i].Size))
			for _, s := range series {
				fmt.Fprintf(&b, "%12s", bench.FormatMBps(pick(s)[i].Bandwidth))
			}
			fmt.Fprintln(&b)
		}
	}
	render("1 simultaneous comm.", func(s bench.Series) []bench.Point { return s.OneComm })
	render(mb.AllLabel, func(s bench.Series) []bench.Point { return s.AllComms })
	// Compact log-scale sketch of the two plot panes.
	xs := make([]string, len(series[0].OneComm))
	for i, pt := range series[0].OneComm {
		xs[i] = sizeLabel(pt.Size)
	}
	sketch := func(title string, pick func(bench.Series) []bench.Point) {
		rows := make([]plot.Series, len(series))
		for i, s := range series {
			pts := make([]float64, len(pick(s)))
			for j, pt := range pick(s) {
				pts[j] = pt.Bandwidth
			}
			rows[i] = plot.Series{Name: perm.Format(s.Order), Points: pts}
		}
		fmt.Fprintf(&b, "%s (sketch)\n%s", title, plot.Lines(xs, rows, "B/s"))
	}
	sketch("1 simultaneous comm.", func(s bench.Series) []bench.Point { return s.OneComm })
	sketch(mb.AllLabel, func(s bench.Series) []bench.Point { return s.AllComms })
	return b.String()
}

func sizeLabel(bytes int64) string {
	switch {
	case bytes >= 1<<20:
		return fmt.Sprintf("%d MB", bytes>>20)
	case bytes >= 1<<10:
		return fmt.Sprintf("%d KB", bytes>>10)
	}
	return fmt.Sprintf("%d B", bytes)
}

// Figure8Config parameterizes the Splatt experiment.
type Figure8Config struct {
	Nodes  int // paper: 32
	NICs   int // 1 (Figure 8a) or 2 (Figure 8b)
	Orders [][]int
	Tensor *tensor.Tensor
	Grid   tensor.Grid
	Iters  int
}

// Figure8Default returns the paper-scale setup (32 Hydra nodes, 1024
// ranks, all 24 orders) with a synthetic nell-1 stand-in sized for the
// 64×4×4 grid; the hot mode-0 band gives the layers nell-1's dominant-
// layer imbalance.
func Figure8Default(nics int) Figure8Config {
	return Figure8Config{
		Nodes:  32,
		NICs:   nics,
		Orders: perm.All(4),
		Tensor: tensor.SyntheticNell([3]int{1_600_000, 8_000, 8_000}, 4_000_000, 1001),
		Grid:   tensor.Grid{64, 4, 4},
		Iters:  2,
	}
}

// Figure8Result is one order's bar.
type Figure8Result struct {
	Order      []int
	Duration   float64
	Alltoall16 float64 // time in Alltoall on the 16-rank layer comms
}

// RenderFigure8 prints the per-order durations, flagging the Slurm default.
func RenderFigure8(cfg Figure8Config, results []Figure8Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8 — Splatt CPD on %d Hydra nodes (%d ranks), %d NIC(s) per node\n",
		cfg.Nodes, cfg.Grid.Size(), cfg.NICs)
	fmt.Fprintf(&b, "%-12s %-14s %-18s\n", "order", "duration (s)", "alltoallv@16 (s)")
	def := perm.Format(cluster.HydraSlurmDefaultOrder())
	best := results[0]
	for _, r := range results {
		if r.Duration < best.Duration {
			best = r
		}
	}
	for _, r := range results {
		mark := ""
		if perm.Format(r.Order) == def {
			mark = "  <- Slurm default mapping"
		}
		if perm.Format(r.Order) == perm.Format(best.Order) {
			mark += "  <- best"
		}
		fmt.Fprintf(&b, "%-12s %-14.4f %-18.4f%s\n", perm.Format(r.Order), r.Duration, r.Alltoall16, mark)
	}
	var defDur float64
	for _, r := range results {
		if perm.Format(r.Order) == def {
			defDur = r.Duration
		}
	}
	if defDur > 0 {
		fmt.Fprintf(&b, "best order %s improves the Slurm default by %.0f%%\n",
			perm.Format(best.Order), 100*(defDur-best.Duration)/defDur)
	}
	bars := make([]plot.Bar, len(results))
	for i, r := range results {
		note := ""
		if perm.Format(r.Order) == def {
			note = "  <- Slurm default"
		}
		bars[i] = plot.Bar{Label: perm.Format(r.Order), Value: r.Duration, Note: note}
	}
	b.WriteString(plot.Bars(bars, "s", 40))
	return b.String()
}

// Figure9Config parameterizes the CG strong-scaling experiment.
type Figure9Config struct {
	Procs []int // paper: 2,4,8,16,32,64,128
}

// Figure9Selection is one bar of Figure 9: an order, the core list it
// selects, and the measured duration.
type Figure9Selection struct {
	Order    []int
	Cores    []int
	Duration float64
}

// DistinctSelections enumerates, for p processes on a LUMI node, every
// order of the ⟦2,4,2,8⟧ hierarchy whose map_cpu list is distinct (the
// paper keeps lists that reuse a core set in a different order).
func DistinctSelections(p int) ([]Figure9Selection, error) {
	node := cluster.LUMINodeHierarchy()
	seen := map[string]bool{}
	var out []Figure9Selection
	for _, sigma := range perm.All(node.Depth()) {
		list, err := slurm.MapCPU(node, sigma, p)
		if err != nil {
			return nil, err
		}
		key := fmt.Sprint(list)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, Figure9Selection{Order: append([]int(nil), sigma...), Cores: list})
	}
	return out, nil
}

// RenderFigure9 prints one process count's bars grouped by core set.
func RenderFigure9(p int, sels []Figure9Selection) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d proc.\n", p)
	// Group by sorted core set like the figure's colour groups.
	bySet := map[string][]Figure9Selection{}
	var setKeys []string
	for _, s := range sels {
		key := fmt.Sprint(slurm.SelectionSet(s.Cores))
		if _, ok := bySet[key]; !ok {
			setKeys = append(setKeys, key)
		}
		bySet[key] = append(bySet[key], s)
	}
	sort.Strings(setKeys)
	var global float64
	for _, s := range sels {
		if s.Duration > global {
			global = s.Duration
		}
	}
	for _, key := range setKeys {
		group := bySet[key]
		fmt.Fprintf(&b, "  cores %s\n", compactCores(slurm.SelectionSet(group[0].Cores)))
		bars := make([]plot.Bar, len(group))
		for i, s := range group {
			mark := ""
			if isSlurmDefault(s.Cores) {
				mark = "  <- Slurm default mapping"
			}
			bars[i] = plot.Bar{Label: "    " + perm.Format(s.Order), Value: s.Duration, Note: mark}
		}
		b.WriteString(plot.BarsMax(bars, "s", 30, global))
	}
	return b.String()
}

// isSlurmDefault reports whether the core list is the block selection
// 0..p-1 in order (Slurm's default on LUMI).
func isSlurmDefault(cores []int) bool {
	for i, c := range cores {
		if c != i {
			return false
		}
	}
	return true
}

// compactCores renders a core list as ranges ("0-3,8-11").
func compactCores(cores []int) string {
	if len(cores) == 0 {
		return ""
	}
	var parts []string
	start, prev := cores[0], cores[0]
	flush := func() {
		if start == prev {
			parts = append(parts, fmt.Sprintf("%d", start))
		} else {
			parts = append(parts, fmt.Sprintf("%d-%d", start, prev))
		}
	}
	for _, c := range cores[1:] {
		if c == prev+1 {
			prev = c
			continue
		}
		flush()
		start, prev = c, c
	}
	flush()
	return strings.Join(parts, ",")
}

// LegendCharacterizations regenerates every figure legend's metrics (the
// M1 experiment of DESIGN.md).
func LegendCharacterizations() string {
	var b strings.Builder
	type entry struct {
		fig      string
		h        topology.Hierarchy
		commSize int
		orders   []string
	}
	entries := []entry{
		{"Figure 3", cluster.HydraHierarchy(16), 16, []string{"0-1-2-3", "2-1-0-3", "1-3-0-2", "1-3-2-0", "3-1-0-2", "3-2-1-0"}},
		{"Figure 4", cluster.HydraHierarchy(16), 128, []string{"0-1-2-3", "2-1-0-3", "1-3-0-2", "3-1-0-2", "1-3-2-0", "3-2-1-0"}},
		{"Figure 5", cluster.LUMIHierarchy(16), 16, []string{"0-1-2-3-4", "1-2-3-0-4", "3-2-1-4-0", "3-4-0-1-2", "4-3-2-1-0"}},
		{"Figure 6", cluster.HydraHierarchy(16), 64, []string{"0-1-2-3", "2-1-0-3", "1-3-0-2", "3-1-0-2", "1-3-2-0", "3-2-1-0"}},
		{"Figure 7", cluster.LUMIHierarchy(16), 256, []string{"0-1-2-3-4", "1-2-3-0-4", "3-4-0-1-2", "3-2-1-4-0", "4-3-2-1-0"}},
	}
	for _, e := range entries {
		fmt.Fprintf(&b, "%s (%s, %d ranks/comm):\n", e.fig, e.h, e.commSize)
		for _, name := range e.orders {
			sigma, err := perm.Parse(name)
			if err != nil {
				panic(err)
			}
			ch, err := metrics.Characterize(e.h, sigma, e.commSize)
			if err != nil {
				panic(err)
			}
			fmt.Fprintf(&b, "  %s\n", ch)
		}
	}
	return b.String()
}

// MPIBase returns the default runtime configuration used by all figures.
func MPIBase() mpi.Config { return mpi.Config{} }
