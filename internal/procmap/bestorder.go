// The mixed-radix baseline: evaluate all k! digit orders of the hierarchy
// against the matrix under the weighted objective and return the winner.
// This is both the yardstick matrix-aware mappings must beat and the
// breaker-open fallback answer of the served endpoint — an order-induced
// placement is always valid, cheap to compute at serving depths (k ≤ 6 ⇒
// ≤ 720 orders), and never worse than the default enumeration order.

package procmap

import (
	"fmt"

	"repro/internal/commmatrix"
	"repro/internal/mixedradix"
	"repro/internal/perm"
	"repro/internal/topology"
)

// BestOrder evaluates every mixed-radix order of the hierarchy and returns
// the order with the lowest weighted cost, the placement it induces
// (rank i runs on core InverseTable[i]), that cost, and the number of
// orders actually evaluated — callers report the engine's own count
// instead of recomputing k! (which overflows int at depth ≥ 21/13 on
// 64/32-bit). Nil weights select DefaultWeights. Ties resolve to the
// lexicographically smallest order.
func BestOrder(m *commmatrix.Matrix, h topology.Hierarchy, weights []float64) (sigma []int, placement []int, cost float64, evaluated int64, err error) {
	n := m.Size()
	if n != h.Size() {
		return nil, nil, 0, 0, fmt.Errorf("procmap: %d ranks for a machine with %d cores", n, h.Size())
	}
	if weights == nil {
		weights = DefaultWeights(h)
	}
	cm, err := newCostModel(h, weights)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	edges := m.Sparse().Edges
	ar := h.Arities()
	inv := make([]int, n)
	best := -1.0
	var bestSigma, bestInv []int
	for _, s := range perm.All(h.Depth()) {
		ro, rerr := mixedradix.NewReorderer(ar, s)
		if rerr != nil {
			return nil, nil, 0, 0, rerr
		}
		ro.InverseTableInto(inv)
		evaluated++
		var c float64
		for _, e := range edges {
			c += e.Bytes * cm.pairCost(inv[e.A], inv[e.B])
		}
		// perm.All enumerates lexicographically, so strict < keeps the
		// lexicographically smallest order among ties.
		if best < 0 || c < best {
			best = c
			bestSigma = append(bestSigma[:0], s...)
			bestInv = append(bestInv[:0], inv...)
		}
	}
	return bestSigma, bestInv, best, evaluated, nil
}
