// Package procmap maps application processes onto a deeply hierarchical
// machine directly from a sparse communication matrix, instead of only
// permuting the paper's k! mixed-radix digit orders. It follows the
// hierarchical process-mapping line of work (Schulz & Träff's sparse
// quadratic assignment; Schulz & Woydt's shared-memory hierarchical
// mapping): a greedy bottom-up construction packs heavy-traffic process
// groups into hierarchy domains level by level, and a goroutine-
// partitioned local search refines the result with pairwise swaps inside
// each level's domains.
//
// The objective is the closed-form crossing-cost model of §3.3: each
// traffic edge pays its volume times a per-level weight selected by the
// outermost hierarchy level the pair's cores differ in. With the default
// weights this is exactly topology.CrossCost (and therefore
// commmatrix.Cost); SpecWeights derives calibrated weights from a
// netmodel machine description instead.
//
// Everything is deterministic for a fixed Options.Seed: the parallel
// refinement seeds one RNG per (round, level, domain), so results are
// independent of the worker count and race-clean by construction
// (parallel propose over a read-only snapshot, sequential commit).
package procmap

import (
	"context"
	"fmt"
	"math"

	"repro/internal/commmatrix"
	"repro/internal/netmodel"
	"repro/internal/topology"
)

// Options tunes Map and Refine.
type Options struct {
	// Seed drives the refinement's candidate sampling. Two runs with the
	// same seed (and any worker counts) produce identical placements.
	Seed int64
	// Workers bounds the refinement goroutines (0 = GOMAXPROCS).
	Workers int
	// MaxRounds bounds refinement sweeps over the levels (0 = 16).
	MaxRounds int
	// NoRefine stops after the greedy construction.
	NoRefine bool
	// Weights holds one pair cost per hierarchy level: the price of an
	// edge whose endpoints first differ at that level. Nil selects
	// DefaultWeights (the §3.3 crossing cost).
	Weights []float64
	// InitPlacement, when non-nil, is an additional starting placement
	// (rank → core): refinement starts from it when it costs less than the
	// greedy construction. Callers that already ran BestOrder pass its
	// placement here so Map never answers worse than the σ baseline.
	InitPlacement []int
	// NoOrderInit disables the automatic BestOrder initialization that Map
	// performs when InitPlacement is nil and the hierarchy is shallow
	// enough to enumerate (the pure greedy+refine path, benchmarked by the
	// perf suite).
	NoOrderInit bool
}

const defaultMaxRounds = 16

func (o Options) withDefaults(h topology.Hierarchy) Options {
	if o.MaxRounds <= 0 {
		o.MaxRounds = defaultMaxRounds
	}
	if o.Weights == nil {
		o.Weights = DefaultWeights(h)
	}
	return o
}

// Result is a computed mapping.
type Result struct {
	// Placement maps rank → core.
	Placement []int
	// Cost is the weighted crossing cost of Placement.
	Cost float64
	// GreedyCost is the cost after the greedy construction, before any
	// refinement (Cost == GreedyCost when refinement is disabled or finds
	// nothing).
	GreedyCost float64
	// Rounds and Swaps describe the refinement effort actually spent.
	Rounds int
	Swaps  int
}

// DefaultWeights returns the §3.3 crossing-cost weights: a pair first
// differing at level l costs depth−l, exactly topology.CrossCost.
func DefaultWeights(h topology.Hierarchy) []float64 {
	k := h.Depth()
	w := make([]float64, k)
	for l := 0; l < k; l++ {
		w[l] = float64(k - l)
	}
	return w
}

// SpecWeights derives per-level pair costs from a netmodel machine
// description: the cost of a pair whose cores first differ at level l is
// that crossing's one-way latency plus msgBytes over the narrowest link on
// the path (the level's bus and every up-link climbed to reach it). When
// the spec carries no timing information at all the function falls back to
// DefaultWeights, so it is always safe to call.
func SpecWeights(spec netmodel.Spec, msgBytes float64) []float64 {
	k := len(spec.Levels)
	w := make([]float64, k)
	informative := false
	for l := 0; l < k; l++ {
		cost := spec.Levels[l].Latency
		minBW := math.Inf(1)
		if bw := spec.Levels[l].BusBandwidth; bw > 0 {
			minBW = bw
		}
		for j := l + 1; j < k; j++ {
			if bw := spec.Levels[j].UpBandwidth; bw > 0 && bw < minBW {
				minBW = bw
			}
		}
		if !math.IsInf(minBW, 1) && msgBytes > 0 {
			cost += msgBytes / minBW
		}
		w[l] = cost
		if cost > 0 {
			informative = true
		}
	}
	if !informative {
		return DefaultWeights(spec.Hierarchy())
	}
	return w
}

// costModel evaluates pair costs without per-call allocation: suffix[l] is
// the core count of one level-l domain (suffix[k] = 1), so the first
// differing level of two cores falls out of repeated division.
type costModel struct {
	suffix []int
	w      []float64
}

func newCostModel(h topology.Hierarchy, weights []float64) (*costModel, error) {
	ar := h.Arities()
	k := len(ar)
	if len(weights) != k {
		return nil, fmt.Errorf("procmap: %d weights for a depth-%d hierarchy", len(weights), k)
	}
	for l, wl := range weights {
		if math.IsNaN(wl) || math.IsInf(wl, 0) || wl < 0 {
			return nil, fmt.Errorf("procmap: level %d weight %g is not a finite non-negative number", l, wl)
		}
	}
	suffix := make([]int, k+1)
	suffix[k] = 1
	for l := k - 1; l >= 0; l-- {
		suffix[l] = suffix[l+1] * ar[l]
	}
	return &costModel{suffix: suffix, w: append([]float64(nil), weights...)}, nil
}

// pairCost returns the weight of the outermost level cores a and b differ
// in, or 0 when they are the same core.
func (c *costModel) pairCost(a, b int) float64 {
	if a == b {
		return 0
	}
	for l := 0; l < len(c.w); l++ {
		s := c.suffix[l+1]
		if a/s != b/s {
			return c.w[l]
		}
		a, b = a%s, b%s
	}
	return 0
}

// Cost evaluates a rank→core placement under the weighted crossing-cost
// objective. Nil weights select DefaultWeights, making the result equal to
// commmatrix.Cost.
func Cost(m *commmatrix.Matrix, h topology.Hierarchy, placement []int, weights []float64) (float64, error) {
	if len(placement) != m.Size() {
		return 0, fmt.Errorf("procmap: placement has %d ranks, matrix %d", len(placement), m.Size())
	}
	if weights == nil {
		weights = DefaultWeights(h)
	}
	cm, err := newCostModel(h, weights)
	if err != nil {
		return 0, err
	}
	var total float64
	m.Edges(func(a, b int, v float64) {
		total += v * cm.pairCost(placement[a], placement[b])
	})
	return total, nil
}

// orderInitMaxDepth bounds the automatic BestOrder initialization: beyond
// this depth the k! enumeration is no longer a cheap warm start.
const orderInitMaxDepth = 7

// Map computes a matrix-aware rank→core placement: greedy bottom-up
// construction, then parallel local-search refinement from the better of
// the greedy and best-σ-order starting points (so the result never loses
// to the mixed-radix baseline the endpoint falls back to). The matrix size
// must equal the hierarchy's core count. The context cancels the
// refinement; the greedy phase is fast enough to always run to completion.
func Map(ctx context.Context, m *commmatrix.Matrix, h topology.Hierarchy, opts Options) (*Result, error) {
	opts = opts.withDefaults(h)
	cm, err := newCostModel(h, opts.Weights)
	if err != nil {
		return nil, err
	}
	placement, err := Build(m, h)
	if err != nil {
		return nil, err
	}
	res := &Result{Placement: placement}
	res.GreedyCost = costOf(m, cm, placement)
	res.Cost = res.GreedyCost
	if opts.NoRefine {
		return res, nil
	}
	init := opts.InitPlacement
	if init == nil && !opts.NoOrderInit && h.Depth() <= orderInitMaxDepth {
		if _, inv, _, _, oerr := BestOrder(m, h, opts.Weights); oerr == nil {
			init = inv
		}
	}
	if init != nil && len(init) == m.Size() {
		if ic := costOf(m, cm, init); ic < res.GreedyCost {
			copy(res.Placement, init)
			res.Cost = ic
		}
	}
	rounds, swaps, err := refine(ctx, m, cm, placement, opts)
	if err != nil {
		return nil, err
	}
	res.Rounds, res.Swaps = rounds, swaps
	res.Cost = costOf(m, cm, placement)
	return res, nil
}

func costOf(m *commmatrix.Matrix, cm *costModel, placement []int) float64 {
	var total float64
	m.Edges(func(a, b int, v float64) {
		total += v * cm.pairCost(placement[a], placement[b])
	})
	return total
}
