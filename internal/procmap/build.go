// The greedy bottom-up construction: starting from singleton process
// groups, repeatedly merge the heaviest-communicating groups into
// super-groups of the current level's arity — innermost level first — so
// chatty processes land in the same lowest domain, then the same next
// domain, and so on (the TreeMatch family's strategy, run bottom-up over
// the paper's explicit per-level arities). Every tie breaks toward the
// lowest group index, making the construction fully deterministic.

package procmap

import (
	"fmt"

	"repro/internal/commmatrix"
	"repro/internal/topology"
)

// Build computes the greedy bottom-up placement (rank → core). The matrix
// size must equal the hierarchy's core count.
func Build(m *commmatrix.Matrix, h topology.Hierarchy) ([]int, error) {
	n := m.Size()
	if n != h.Size() {
		return nil, fmt.Errorf("procmap: %d ranks for a machine with %d cores", n, h.Size())
	}
	ar := h.Arities()
	// groups[i] is the ordered member-rank list of group i; coarse is the
	// dense group×group volume matrix of the current level.
	groups := make([][]int, n)
	for i := range groups {
		groups[i] = []int{i}
	}
	coarse := make([]float64, n*n)
	m.Edges(func(a, b int, v float64) {
		coarse[a*n+b] = v
		coarse[b*n+a] = v
	})
	g := n
	for l := len(ar) - 1; l >= 0; l-- {
		k := ar[l]
		if k == 1 {
			continue
		}
		ng := g / k
		used := make([]bool, g)
		superOf := make([]int, g)
		// tot[i] is group i's remaining volume to other unused groups — the
		// seed-selection score, maintained incrementally as groups are taken.
		tot := make([]float64, g)
		for i := 0; i < g; i++ {
			for j := 0; j < g; j++ {
				if j != i {
					tot[i] += coarse[i*g+j]
				}
			}
		}
		take := func(i int) {
			used[i] = true
			for j := 0; j < g; j++ {
				if !used[j] {
					tot[j] -= coarse[j*g+i]
				}
			}
		}
		newGroups := make([][]int, 0, ng)
		gain := make([]float64, g) // volume from each unused group to the growing super
		for s := 0; s < ng; s++ {
			// Seed: the unused group with the most remaining traffic.
			seed := -1
			for i := 0; i < g; i++ {
				if used[i] {
					continue
				}
				if seed < 0 || tot[i] > tot[seed] {
					seed = i
				}
			}
			take(seed)
			members := append(make([]int, 0, k), seed)
			for i := 0; i < g; i++ {
				gain[i] = coarse[i*g+seed]
			}
			for len(members) < k {
				pick := -1
				for i := 0; i < g; i++ {
					if used[i] {
						continue
					}
					if pick < 0 || gain[i] > gain[pick] {
						pick = i
					}
				}
				take(pick)
				members = append(members, pick)
				for i := 0; i < g; i++ {
					if !used[i] {
						gain[i] += coarse[i*g+pick]
					}
				}
			}
			for _, i := range members {
				superOf[i] = s
			}
			var merged []int
			for _, i := range members {
				merged = append(merged, groups[i]...)
			}
			newGroups = append(newGroups, merged)
		}
		// Coarsen the volume matrix onto the supers.
		nc := make([]float64, ng*ng)
		for i := 0; i < g; i++ {
			for j := i + 1; j < g; j++ {
				v := coarse[i*g+j]
				if v == 0 {
					continue
				}
				si, sj := superOf[i], superOf[j]
				if si == sj {
					continue
				}
				nc[si*ng+sj] += v
				nc[sj*ng+si] += v
			}
		}
		coarse, groups, g = nc, newGroups, ng
	}
	// One group remains; its member order enumerates the cores. Because
	// each merge keeps deeper groups contiguous, positions nest correctly
	// into the hierarchy's domains.
	placement := make([]int, n)
	for pos, r := range groups[0] {
		placement[r] = pos
	}
	return placement, nil
}
