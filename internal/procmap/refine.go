// The parallel local-search refinement, Schulz & Woydt style: sweep the
// hierarchy levels; at each level partition the enclosing domains among
// goroutines; each worker proposes a swap sequence for its domains against
// a read-only snapshot of the placement; then a sequential commit pass
// replays each proposal on the current state and applies the best
// still-improving prefix in domain order.
//
// Two proposal kinds run per domain: the best single cross-child swap
// (exhaustive for small domains, deterministically sampled for large
// ones), and — when the child domains are small enough — a bounded
// Kernighan–Lin chain between one rotating pair of sibling children.
// The KL chain applies the locally best swap even when its gain is
// negative and keeps the best cumulative prefix, so it escapes the
// single-swap local optima that digit-order placements often are
// (regrouping half a radix class requires several coordinated swaps whose
// first steps lose before the last ones win).
//
// Determinism does not depend on the worker count: candidate sampling is
// driven by one RNG per (seed, round, level, domain), KL pair rotation by
// (round, domain), and the commit order is the domain order — so a
// 1-worker and a 16-worker run produce the same placement. Races cannot
// occur by construction: the propose phase only reads shared state and
// writes disjoint proposal slots.

package procmap

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/commmatrix"
)

const (
	// exhaustivePairLimit bounds the per-domain cross-child pair count up
	// to which the propose phase scans every pair; larger domains sample.
	exhaustivePairLimit = 1024
	// sampleFloor / sampleFactor size the sampled candidate set: at least
	// sampleFloor pairs, scaling with the domain's core count.
	sampleFloor  = 128
	sampleFactor = 2
	// klMaxChild caps the child-domain size the Kernighan–Lin chain runs
	// on: each chain step scans child² candidate pairs, so chains stay
	// cheap exactly where the radix-class locks live (small inner levels).
	klMaxChild = 16
	// improveEps is the minimum absolute gain a swap must have; it guards
	// against oscillating on floating-point noise.
	improveEps = 1e-9
)

// neighbor is one adjacency entry of a rank.
type neighbor struct {
	to  int
	vol float64
}

// swapPair exchanges the ranks on cores c1 and c2.
type swapPair struct{ c1, c2 int }

// proposal is a worker's swap sequence for one domain. The commit pass
// replays it against the live placement and applies the best prefix.
type proposal struct {
	chain []swapPair
	ok    bool
}

// refine improves placement in place and reports the rounds and swaps
// performed. It honors ctx between domains.
func refine(ctx context.Context, m *commmatrix.Matrix, cm *costModel, placement []int, opts Options) (rounds, swaps int, err error) {
	n := m.Size()
	adj := make([][]neighbor, n)
	m.Edges(func(a, b int, v float64) {
		adj[a] = append(adj[a], neighbor{b, v})
		adj[b] = append(adj[b], neighbor{a, v})
	})
	owner := make([]int, n) // core → rank
	for r, c := range placement {
		owner[c] = r
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	k := len(cm.w)
	for round := 0; round < opts.MaxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return rounds, swaps, err
		}
		roundSwaps := 0
		for l := 0; l < k; l++ {
			size := cm.suffix[l]    // cores per enclosing domain
			child := cm.suffix[l+1] // cores per child domain
			arity := size / child
			if arity < 2 {
				continue
			}
			domains := n / size
			proposals := make([]proposal, domains)
			var wg sync.WaitGroup
			for w := 0; w < workers && w < domains; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for d := w; d < domains; d += workers {
						if ctx.Err() != nil {
							return
						}
						proposals[d] = propose(adj, cm, placement, owner,
							opts.Seed, round, l, d, size, child)
					}
				}(w)
			}
			wg.Wait()
			if err := ctx.Err(); err != nil {
				return rounds, swaps, err
			}
			// Sequential commit in domain order: replay each proposal against
			// the current placement (an earlier commit this level may have
			// changed a neighbor's position) and apply the best prefix that
			// still improves.
			for d := 0; d < domains; d++ {
				p := proposals[d]
				if !p.ok {
					continue
				}
				roundSwaps += commitChain(adj, cm, placement, owner, p.chain)
			}
		}
		rounds++
		swaps += roundSwaps
		if roundSwaps == 0 {
			break
		}
	}
	return rounds, swaps, nil
}

// propose builds one domain's swap sequence: the better of the best single
// cross-child swap and a Kernighan–Lin chain on a rotating pair of child
// domains (when the children are small enough for exhaustive chain steps).
func propose(adj [][]neighbor, cm *costModel, placement, owner []int, seed int64, round, level, dom, size, child int) proposal {
	best, bestGain := proposeSwap(adj, cm, placement, owner, seed, round, level, dom, size, child)
	if child >= 2 && child <= klMaxChild {
		arity := size / child
		npairs := arity * (arity - 1) / 2
		a, b := unrankPair((round+dom)%npairs, arity)
		base := dom * size
		st := newTentState(placement, owner)
		chain, gain := klChain(adj, cm, st, base+a*child, base+b*child, child)
		if len(chain) > 0 && gain > bestGain {
			return proposal{chain: chain, ok: true}
		}
	}
	return best
}

// unrankPair maps an index in [0, arity·(arity−1)/2) to the idx-th pair
// (a, b) with a < b < arity, in lexicographic order.
func unrankPair(idx, arity int) (int, int) {
	for a := 0; a < arity-1; a++ {
		row := arity - 1 - a
		if idx < row {
			return a, a + 1 + idx
		}
		idx -= row
	}
	return arity - 2, arity - 1 // unreachable for valid idx
}

// proposeSwap scans candidate cross-child core pairs of one domain and
// returns the pair with the largest gain (if any improves). Domains whose
// cross pair count is small are scanned exhaustively; larger ones draw a
// deterministic sample from the (seed, round, level, domain) RNG.
func proposeSwap(adj [][]neighbor, cm *costModel, placement, owner []int, seed int64, round, level, dom, size, child int) (proposal, float64) {
	base := dom * size
	arity := size / child
	crossPairs := size * size * (arity - 1) / arity / 2
	var best proposal
	bestGain := improveEps
	consider := func(c1, c2 int) {
		if g := swapGain(adj, cm, placement, owner, c1, c2); g > bestGain {
			bestGain = g
			best = proposal{chain: []swapPair{{c1, c2}}, ok: true}
		}
	}
	if crossPairs <= exhaustivePairLimit {
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if i/child != j/child {
					consider(base+i, base+j)
				}
			}
		}
		return best, bestGain
	}
	rng := rand.New(rand.NewSource(mix(seed, round, level, dom)))
	samples := sampleFactor * size
	if samples < sampleFloor {
		samples = sampleFloor
	}
	for s := 0; s < samples; s++ {
		i := rng.Intn(size)
		j := rng.Intn(size)
		if i/child == j/child {
			continue
		}
		consider(base+i, base+j)
	}
	return best, bestGain
}

// tentState overlays tentative swaps on a read-only placement/owner
// snapshot, so KL chains can be explored (and later replayed during
// commit) without mutating shared state.
type tentState struct {
	placement, owner []int
	tp               map[int]int // rank → core overrides
	to               map[int]int // core → rank overrides
}

func newTentState(placement, owner []int) *tentState {
	return &tentState{placement: placement, owner: owner,
		tp: make(map[int]int), to: make(map[int]int)}
}

func (t *tentState) place(r int) int {
	if c, ok := t.tp[r]; ok {
		return c
	}
	return t.placement[r]
}

func (t *tentState) own(c int) int {
	if r, ok := t.to[c]; ok {
		return r
	}
	return t.owner[c]
}

func (t *tentState) swap(c1, c2 int) {
	u, v := t.own(c1), t.own(c2)
	t.tp[u], t.tp[v] = c2, c1
	t.to[c1], t.to[c2] = v, u
}

// gain is swapGain evaluated on the tentative state.
func (t *tentState) gain(adj [][]neighbor, cm *costModel, c1, c2 int) float64 {
	u, v := t.own(c1), t.own(c2)
	var delta float64
	for _, nb := range adj[u] {
		if nb.to == v {
			continue
		}
		pc := t.place(nb.to)
		delta += nb.vol * (cm.pairCost(c1, pc) - cm.pairCost(c2, pc))
	}
	for _, nb := range adj[v] {
		if nb.to == u {
			continue
		}
		pc := t.place(nb.to)
		delta += nb.vol * (cm.pairCost(c2, pc) - cm.pairCost(c1, pc))
	}
	return delta
}

// klChain runs a bounded Kernighan–Lin exchange between two sibling child
// domains of s cores each (bases baseA, baseB): repeatedly apply the best
// available swap — even at a loss — locking the touched cores, and return
// the prefix with the largest positive cumulative gain (empty if none).
func klChain(adj [][]neighbor, cm *costModel, st *tentState, baseA, baseB, s int) ([]swapPair, float64) {
	lockedA := make([]bool, s)
	lockedB := make([]bool, s)
	var chain []swapPair
	cum, bestCum := 0.0, improveEps
	bestLen := 0
	for step := 0; step < s; step++ {
		bg := math.Inf(-1)
		bi, bj := -1, -1
		for i := 0; i < s; i++ {
			if lockedA[i] {
				continue
			}
			for j := 0; j < s; j++ {
				if lockedB[j] {
					continue
				}
				if g := st.gain(adj, cm, baseA+i, baseB+j); g > bg {
					bg, bi, bj = g, i, j
				}
			}
		}
		if bi < 0 {
			break
		}
		st.swap(baseA+bi, baseB+bj)
		lockedA[bi], lockedB[bj] = true, true
		cum += bg
		chain = append(chain, swapPair{baseA + bi, baseB + bj})
		if cum > bestCum {
			bestCum = cum
			bestLen = len(chain)
		}
	}
	if bestLen == 0 {
		return nil, 0
	}
	return chain[:bestLen], bestCum
}

// commitChain replays a proposed swap sequence against the live placement,
// finds the prefix with the best cumulative gain under current conditions,
// and applies it for real. Returns the number of swaps applied.
func commitChain(adj [][]neighbor, cm *costModel, placement, owner []int, chain []swapPair) int {
	st := newTentState(placement, owner)
	cum, bestCum := 0.0, improveEps
	bestLen := 0
	for i, sp := range chain {
		cum += st.gain(adj, cm, sp.c1, sp.c2)
		st.swap(sp.c1, sp.c2)
		if cum > bestCum {
			bestCum = cum
			bestLen = i + 1
		}
	}
	for _, sp := range chain[:bestLen] {
		u, v := owner[sp.c1], owner[sp.c2]
		placement[u], placement[v] = sp.c2, sp.c1
		owner[sp.c1], owner[sp.c2] = v, u
	}
	return bestLen
}

// swapGain returns the cost decrease of exchanging the ranks on cores c1
// and c2 (positive = improvement). The c1↔c2 edge itself is unaffected:
// pair costs are symmetric.
func swapGain(adj [][]neighbor, cm *costModel, placement, owner []int, c1, c2 int) float64 {
	u, v := owner[c1], owner[c2]
	var delta float64
	for _, nb := range adj[u] {
		if nb.to == v {
			continue
		}
		pc := placement[nb.to]
		delta += nb.vol * (cm.pairCost(c1, pc) - cm.pairCost(c2, pc))
	}
	for _, nb := range adj[v] {
		if nb.to == u {
			continue
		}
		pc := placement[nb.to]
		delta += nb.vol * (cm.pairCost(c2, pc) - cm.pairCost(c1, pc))
	}
	return delta
}

// mix hashes the sampling coordinates into an RNG seed (splitmix64-style
// finalizer over the packed words).
func mix(seed int64, round, level, dom int) int64 {
	z := uint64(seed)
	for _, v := range [3]uint64{uint64(round), uint64(level), uint64(dom)} {
		z += 0x9e3779b97f4a7c15 + v
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
	}
	return int64(z)
}
