package procmap

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/commmatrix"
	"repro/internal/netmodel"
	"repro/internal/topology"
)

// interleaved builds the adversarial matrix of the commmatrix tests: on 16
// ranks, blocks {k, k+4, k+8, k+12} communicate heavily — no consecutive
// packing helps, so mapping quality is visible.
func interleaved(bytes float64) *commmatrix.Matrix {
	m := commmatrix.New(16)
	for k := 0; k < 4; k++ {
		ranks := []int{k, k + 4, k + 8, k + 12}
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				m.Add(ranks[i], ranks[j], bytes)
			}
		}
	}
	return m
}

func TestDefaultCostMatchesCommmatrix(t *testing.T) {
	h := topology.MustNew(2, 2, 4)
	m := interleaved(100)
	placement := make([]int, 16)
	for i := range placement {
		placement[i] = (i*5 + 3) % 16 // an arbitrary permutation
	}
	got, err := Cost(m, h, placement, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := commmatrix.Cost(m, h, placement)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("procmap.Cost = %g, commmatrix.Cost = %g", got, want)
	}
}

func TestBuildPacksBlocks(t *testing.T) {
	// Each interleaved block fits exactly one innermost domain of ⟦2,2,4⟧;
	// the greedy construction must find that optimum: cost = 4 blocks × 6
	// pairs × 100 bytes × crossing cost 1.
	h := topology.MustNew(2, 2, 4)
	m := interleaved(100)
	placement, err := Build(m, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := checkPermutation(placement, 16); err != nil {
		t.Fatal(err)
	}
	cost, err := Cost(m, h, placement, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * 6 * 100.0; cost != want {
		t.Fatalf("greedy cost = %g, want %g", cost, want)
	}
}

func TestRefineNeverWorsens(t *testing.T) {
	h := topology.MustNew(2, 4, 2, 8)
	m, err := GridLayers([3]int{8, 4, 4}, [3]float64{1000, 100, 100})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Map(context.Background(), m, h, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > res.GreedyCost {
		t.Fatalf("refinement worsened: greedy %g → %g", res.GreedyCost, res.Cost)
	}
	if err := checkPermutation(res.Placement, m.Size()); err != nil {
		t.Fatal(err)
	}
	// The reported cost must be the placement's actual cost.
	actual, err := Cost(m, h, res.Placement, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(actual-res.Cost) > 1e-6 {
		t.Fatalf("reported cost %g, placement evaluates to %g", res.Cost, actual)
	}
}

func TestRefineDeterministic(t *testing.T) {
	h := topology.MustNew(2, 4, 2, 8)
	m, err := Halo(8, 16, 4096)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Map(context.Background(), m, h, Options{Seed: 42, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 7, 16} {
		got, err := Map(context.Background(), m, h, Options{Seed: 42, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Placement, base.Placement) {
			t.Fatalf("placement differs between 1 and %d workers", workers)
		}
		if got.Cost != base.Cost || got.Swaps != base.Swaps || got.Rounds != base.Rounds {
			t.Fatalf("stats differ between 1 and %d workers: %+v vs %+v", workers, got, base)
		}
	}
	// A different seed may sample differently but must stay a valid,
	// no-worse-than-greedy mapping.
	other, err := Map(context.Background(), m, h, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if other.Cost > other.GreedyCost {
		t.Fatalf("seed 7 worsened: %g > %g", other.Cost, other.GreedyCost)
	}
}

func TestMapHonorsCancellation(t *testing.T) {
	h := topology.MustNew(2, 4, 2, 8)
	m, err := Halo(8, 16, 4096)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Map(ctx, m, h, Options{Seed: 1}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// NoRefine skips the cancellable phase entirely.
	if _, err := Map(ctx, m, h, Options{Seed: 1, NoRefine: true}); err != nil {
		t.Fatalf("NoRefine under cancelled ctx: %v", err)
	}
}

func TestMapRejectsSizeMismatch(t *testing.T) {
	h := topology.MustNew(2, 2, 4)
	m := commmatrix.New(8)
	if _, err := Map(context.Background(), m, h, Options{}); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, _, _, _, err := BestOrder(m, h, nil); err == nil {
		t.Fatal("BestOrder size mismatch accepted")
	}
}

func TestWeightsValidation(t *testing.T) {
	h := topology.MustNew(2, 2, 4)
	m := interleaved(10)
	for _, w := range [][]float64{
		{1, 2},              // wrong length
		{1, math.NaN(), 1},  // NaN
		{1, math.Inf(1), 1}, // Inf
		{1, -1, 1},          // negative
	} {
		if _, err := Cost(m, h, make([]int, 16), w); err == nil {
			t.Fatalf("weights %v accepted", w)
		}
	}
}

func TestBestOrderMatchesCommmatrix(t *testing.T) {
	h := topology.MustNew(2, 2, 4)
	m := interleaved(100)
	sigma, placement, cost, _, err := BestOrder(m, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantSigma, wantCost, err := commmatrix.BestOrder(m, h)
	if err != nil {
		t.Fatal(err)
	}
	if cost != wantCost {
		t.Fatalf("cost = %g, commmatrix says %g", cost, wantCost)
	}
	_ = wantSigma // ties may resolve differently; costs must agree
	actual, err := Cost(m, h, placement, nil)
	if err != nil {
		t.Fatal(err)
	}
	if actual != cost {
		t.Fatalf("returned placement costs %g, reported %g", actual, cost)
	}
	if len(sigma) != h.Depth() {
		t.Fatalf("sigma = %v", sigma)
	}
}

func TestSpecWeights(t *testing.T) {
	spec := cluster.Hydra(4, 1)
	w := SpecWeights(spec, 1<<20)
	if len(w) != len(spec.Levels) {
		t.Fatalf("got %d weights for %d levels", len(w), len(spec.Levels))
	}
	// Outer crossings must not be cheaper than inner ones on Hydra.
	for l := 1; l < len(w); l++ {
		if w[l-1] < w[l] {
			t.Fatalf("weights not monotone: %v", w)
		}
	}
	// A timing-free spec falls back to the crossing-cost weights.
	bare := netmodel.Spec{Levels: []netmodel.LevelSpec{{Arity: 2}, {Arity: 4}}}
	if got := SpecWeights(bare, 0); !reflect.DeepEqual(got, []float64{2, 1}) {
		t.Fatalf("fallback weights = %v", got)
	}
}

func TestHaloGenerator(t *testing.T) {
	m, err := Halo(4, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Periodic 4×4 torus: every rank has 4 neighbors at 100 bytes.
	if got, want := m.Total(), float64(2*16*100); got != want {
		t.Fatalf("total = %g, want %g", got, want)
	}
	if m.At(0, 1) != 100 || m.At(0, 4) != 100 || m.At(0, 3) != 100 || m.At(0, 12) != 100 {
		t.Fatal("neighbor volumes wrong")
	}
	if m.At(0, 5) != 0 {
		t.Fatal("diagonal neighbors must not communicate")
	}
	if _, err := Halo(0, 4, 1); err == nil {
		t.Fatal("degenerate grid accepted")
	}
}

func TestGridLayersGenerator(t *testing.T) {
	m, err := GridLayers([3]int{2, 2, 2}, [3]float64{7, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Ranks 0=(0,0,0) and 1=(0,0,1) share modes 0 and 1.
	if got := m.At(0, 1); got != 10 {
		t.Fatalf("At(0,1) = %g, want 10", got)
	}
	// Ranks 0=(0,0,0) and 7=(1,1,1) share nothing.
	if m.At(0, 7) != 0 {
		t.Fatal("opposite corners must not communicate")
	}
	if _, err := GridLayers([3]int{0, 2, 2}, [3]float64{1, 1, 1}); err == nil {
		t.Fatal("degenerate grid accepted")
	}
}

func checkPermutation(p []int, n int) error {
	if len(p) != n {
		return fmt.Errorf("placement has %d entries, want %d", len(p), n)
	}
	seen := make([]bool, n)
	for _, c := range p {
		if c < 0 || c >= n || seen[c] {
			return fmt.Errorf("placement %v is not a permutation", p)
		}
		seen[c] = true
	}
	return nil
}
